package parclass

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// Predictor is a trained classifier ready to serve: the interface both
// *Model (one tree) and *Forest (a bagged ensemble) satisfy. The serving
// layer, the CLIs and the model registry operate on Predictor, so a hot
// swap can replace a single tree with a 100-tree forest (or back) without
// the caller caring which shape is loaded.
type Predictor interface {
	// Predict classifies one example given as attribute-name → value
	// strings.
	Predict(row map[string]string) (string, error)
	// PredictValues classifies one positional row (one string per schema
	// attribute, in Dataset.AttrNames order) — the fast single-row path.
	PredictValues(vals []string) (string, error)
	// PredictBatch classifies many named rows at once.
	PredictBatch(rows []map[string]string) ([]string, error)
	// PredictValuesBatch classifies many positional rows at once — the
	// bulk fast path the server's micro-batcher dispatches into.
	PredictValuesBatch(rows [][]string) ([]string, error)
	// PredictDataset classifies every row of ds in order.
	PredictDataset(ds *Dataset) []string
	// Accuracy returns the fraction of ds classified correctly.
	Accuracy(ds *Dataset) float64
	// Compile builds the flat-array predictor eagerly (idempotent); the
	// predict paths compile on demand otherwise.
	Compile() error
	// Stats returns structural statistics (summed over trees for forests).
	Stats() TreeStats
	// NumTrees reports the ensemble size: 1 for a Model.
	NumTrees() int
	// Schema exposes the classifier's schema to in-module tooling. It is
	// not part of the stable API.
	Schema() *dataset.Schema
	// WriteModel serializes the classifier as versioned JSON: the v1
	// single-tree envelope for a Model, the v2 multi-tree envelope for a
	// Forest. ReadModel round-trips both.
	WriteModel(w io.Writer) error
	// SaveModel writes the classifier to the named file.
	SaveModel(path string) error
}

// Statically assert both shapes satisfy the interface.
var (
	_ Predictor = (*Model)(nil)
	_ Predictor = (*Forest)(nil)
)

// ProbaPredictor is the optional vote-distribution interface: forests
// report per-class vote fractions alongside the majority class. Single
// trees do not implement it (a leaf's class distribution is available via
// Model.PredictProb but is not a vote).
type ProbaPredictor interface {
	Predictor
	// PredictProba classifies one named row, also returning the fraction
	// of trees voting for each class.
	PredictProba(row map[string]string) (string, map[string]float64, error)
	// PredictValuesProba is PredictProba for one positional row.
	PredictValuesProba(vals []string) (string, map[string]float64, error)
}

var _ ProbaPredictor = (*Forest)(nil)

// rowDecoder converts name→string and positional string rows into schema
// tuples, resolving categorical values through a precomputed name→code
// index. Model and Forest share it, so both decode identically.
type rowDecoder struct {
	schema *dataset.Schema
	// catCodes[a] maps category name → code for categorical attribute a
	// (nil for continuous), built once so row decoding is a map lookup
	// instead of a linear scan over attr.Categories.
	catCodes []map[string]int32
}

// newRowDecoder precomputes the categorical decode index for s.
func newRowDecoder(s *dataset.Schema) rowDecoder {
	d := rowDecoder{schema: s, catCodes: make([]map[string]int32, len(s.Attrs))}
	for a := range s.Attrs {
		attr := &s.Attrs[a]
		if attr.Kind != dataset.Categorical {
			continue
		}
		codes := make(map[string]int32, len(attr.Categories))
		for c, name := range attr.Categories {
			codes[name] = int32(c)
		}
		d.catCodes[a] = codes
	}
	return d
}

// decodeRow converts a name→string row into a freshly allocated tuple.
func (d *rowDecoder) decodeRow(row map[string]string) (dataset.Tuple, error) {
	s := d.schema
	tu := dataset.Tuple{
		Cont: make([]float64, len(s.Attrs)),
		Cat:  make([]int32, len(s.Attrs)),
	}
	return tu, d.decodeRowInto(row, tu)
}

// decodeRowInto decodes row into the caller-provided tuple buffers.
func (d *rowDecoder) decodeRowInto(row map[string]string, tu dataset.Tuple) error {
	s := d.schema
	for a := range s.Attrs {
		attr := &s.Attrs[a]
		raw, ok := row[attr.Name]
		if !ok {
			return fmt.Errorf("%w: missing attribute %q", ErrUnknownAttribute, attr.Name)
		}
		if err := d.decodeValue(a, raw, tu); err != nil {
			return err
		}
	}
	return nil
}

// decodeValue decodes one attribute's string value into the tuple.
func (d *rowDecoder) decodeValue(a int, raw string, tu dataset.Tuple) error {
	attr := &d.schema.Attrs[a]
	if attr.Kind == dataset.Continuous {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			// Slow path: tolerate surrounding whitespace.
			if v, err = strconv.ParseFloat(strings.TrimSpace(raw), 64); err != nil {
				return fmt.Errorf("%w: attribute %q: %v", ErrUnknownValue, attr.Name, err)
			}
		}
		tu.Cont[a] = v
		return nil
	}
	code, ok := d.catCodes[a][raw]
	if !ok {
		return fmt.Errorf("%w: attribute %q: unknown category %q", ErrUnknownValue, attr.Name, raw)
	}
	tu.Cat[a] = code
	return nil
}
