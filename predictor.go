package parclass

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/dataset"
)

// Predictor is a trained classifier ready to serve: the interface both
// *Model (one tree) and *Forest (a bagged ensemble) satisfy. The serving
// layer, the CLIs and the model registry operate on Predictor, so a hot
// swap can replace a single tree with a 100-tree forest (or back) without
// the caller caring which shape is loaded.
type Predictor interface {
	// Predict classifies one example given as attribute-name → value
	// strings.
	Predict(row map[string]string) (string, error)
	// PredictValues classifies one positional row (one string per schema
	// attribute, in Dataset.AttrNames order) — the fast single-row path.
	PredictValues(vals []string) (string, error)
	// PredictBatch classifies many named rows at once.
	PredictBatch(rows []map[string]string) ([]string, error)
	// PredictValuesBatch classifies many positional rows at once — the
	// bulk fast path the server's micro-batcher dispatches into.
	PredictValuesBatch(rows [][]string) ([]string, error)
	// PredictDataset classifies every row of ds in order.
	PredictDataset(ds *Dataset) []string
	// Accuracy returns the fraction of ds classified correctly.
	Accuracy(ds *Dataset) float64
	// Compile builds the flat-array predictor eagerly (idempotent); the
	// predict paths compile on demand otherwise.
	Compile() error
	// Stats returns structural statistics (summed over trees for forests).
	Stats() TreeStats
	// NumTrees reports the ensemble size: 1 for a Model.
	NumTrees() int
	// Schema exposes the classifier's schema to in-module tooling. It is
	// not part of the stable API.
	Schema() *dataset.Schema
	// WriteModel serializes the classifier as versioned JSON: the v1
	// single-tree envelope for a Model, the v2 multi-tree envelope for a
	// Forest. ReadModel round-trips both.
	WriteModel(w io.Writer) error
	// SaveModel writes the classifier to the named file.
	SaveModel(path string) error

	// SetLevelSync selects the batch-predict kernel: the branch-free
	// level-synchronous kernel (LevelSyncOn), the preorder walker
	// (LevelSyncOff), or the measured crossover heuristic (LevelSyncAuto,
	// the default). Both kernels classify identically; the setting is pure
	// performance. Safe to call at any time, including while serving.
	SetLevelSync(mode LevelSyncMode)
	// LevelSync reports the current kernel selection.
	LevelSync() LevelSyncMode
	// PredictValuesBatchMode is PredictValuesBatch with a per-call kernel
	// override; LevelSyncAuto inherits the predictor's SetLevelSync mode.
	PredictValuesBatchMode(rows [][]string, mode LevelSyncMode) ([]string, error)
	// PredictBatchMode is PredictBatch with a per-call kernel override.
	PredictBatchMode(rows []map[string]string, mode LevelSyncMode) ([]string, error)
}

// LevelSyncMode selects which compiled layout serves a batch predict: the
// preorder walker (one branchy pointer-free descent per row) or the
// level-synchronous kernel (the whole batch advanced one tree level per
// pass with branch-free index arithmetic over SoA row buffers).
type LevelSyncMode int32

const (
	// LevelSyncAuto picks the kernel for batches of at least
	// LevelSyncCrossover rows when a level layout exists — the measured
	// break-even point — and the walker below it. On a predictor it is the
	// default; as a per-call override it means "inherit the predictor's
	// setting".
	LevelSyncAuto LevelSyncMode = iota
	// LevelSyncOn forces the level-synchronous kernel on every batch that
	// has a compiled level layout (falling back to the walker only when
	// the layout could not be built, e.g. past flat.MaxLevelDepth).
	LevelSyncOn
	// LevelSyncOff forces the preorder walker.
	LevelSyncOff
)

// String names the mode ("auto", "on", "off").
func (m LevelSyncMode) String() string {
	switch m {
	case LevelSyncOn:
		return "on"
	case LevelSyncOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseLevelSyncMode parses "auto" (or ""), "on" and "off".
func ParseLevelSyncMode(s string) (LevelSyncMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return LevelSyncAuto, nil
	case "on":
		return LevelSyncOn, nil
	case "off":
		return LevelSyncOff, nil
	}
	return 0, fmt.Errorf("%w: level sync mode %q (want auto, on or off)", ErrBadOption, s)
}

// DefaultLevelSyncCrossover is the batch size at which LevelSyncAuto
// switches from the preorder walker to the level-synchronous kernel,
// measured by `benchjson -serve`'s A/B sweep on the reference host (see
// BENCH_build.json "levelsync_crossover_rows" and the EXPERIMENTS table):
// below it the walker's shorter average path wins. On the checked-in
// 1-vCPU measurement the walker holds until 2048-row batches — with one
// core there is no memory-level parallelism for the level passes to hide
// latency behind, so auto is deliberately conservative; hosts with wider
// cores should re-run `make servebench` and SetLevelSyncCrossover.
const DefaultLevelSyncCrossover = 2048

// levelSyncCrossover is the live crossover threshold (rows per batch).
var levelSyncCrossover atomic.Int64

func init() { levelSyncCrossover.Store(DefaultLevelSyncCrossover) }

// SetLevelSyncCrossover overrides the LevelSyncAuto batch-size threshold;
// rows <= 0 disables the kernel in auto mode entirely (auto then always
// walks). Returns the previous value.
func SetLevelSyncCrossover(rows int) int {
	return int(levelSyncCrossover.Swap(int64(rows)))
}

// LevelSyncCrossover reports the LevelSyncAuto batch-size threshold.
func LevelSyncCrossover() int { return int(levelSyncCrossover.Load()) }

// resolveLevelSync folds a per-call override into a predictor's stored
// mode and decides whether a batch of n rows takes the level kernel.
// haveLayout reports whether the predictor compiled a level layout.
func resolveLevelSync(override LevelSyncMode, stored int32, n int, haveLayout bool) bool {
	mode := override
	if mode == LevelSyncAuto {
		mode = LevelSyncMode(stored)
	}
	switch mode {
	case LevelSyncOn:
		return haveLayout
	case LevelSyncOff:
		return false
	default:
		c := int(levelSyncCrossover.Load())
		return haveLayout && c > 0 && n >= c
	}
}

// Statically assert both shapes satisfy the interface.
var (
	_ Predictor = (*Model)(nil)
	_ Predictor = (*Forest)(nil)
)

// ProbaPredictor is the optional vote-distribution interface: forests
// report per-class vote fractions alongside the majority class. Single
// trees do not implement it (a leaf's class distribution is available via
// Model.PredictProb but is not a vote).
type ProbaPredictor interface {
	Predictor
	// PredictProba classifies one named row, also returning the fraction
	// of trees voting for each class.
	PredictProba(row map[string]string) (string, map[string]float64, error)
	// PredictValuesProba is PredictProba for one positional row.
	PredictValuesProba(vals []string) (string, map[string]float64, error)
}

var _ ProbaPredictor = (*Forest)(nil)

// rowDecoder converts name→string and positional string rows into schema
// tuples, resolving categorical values through a precomputed name→code
// index. Model and Forest share it, so both decode identically.
type rowDecoder struct {
	schema *dataset.Schema
	// catCodes[a] maps category name → code for categorical attribute a
	// (nil for continuous), built once so row decoding is a map lookup
	// instead of a linear scan over attr.Categories.
	catCodes []map[string]int32
}

// newRowDecoder precomputes the categorical decode index for s.
func newRowDecoder(s *dataset.Schema) rowDecoder {
	d := rowDecoder{schema: s, catCodes: make([]map[string]int32, len(s.Attrs))}
	for a := range s.Attrs {
		attr := &s.Attrs[a]
		if attr.Kind != dataset.Categorical {
			continue
		}
		codes := make(map[string]int32, len(attr.Categories))
		for c, name := range attr.Categories {
			codes[name] = int32(c)
		}
		d.catCodes[a] = codes
	}
	return d
}

// decodeRow converts a name→string row into a freshly allocated tuple.
func (d *rowDecoder) decodeRow(row map[string]string) (dataset.Tuple, error) {
	s := d.schema
	tu := dataset.Tuple{
		Cont: make([]float64, len(s.Attrs)),
		Cat:  make([]int32, len(s.Attrs)),
	}
	return tu, d.decodeRowInto(row, tu)
}

// decodeRowInto decodes row into the caller-provided tuple buffers.
func (d *rowDecoder) decodeRowInto(row map[string]string, tu dataset.Tuple) error {
	s := d.schema
	for a := range s.Attrs {
		attr := &s.Attrs[a]
		raw, ok := row[attr.Name]
		if !ok {
			return fmt.Errorf("%w: missing attribute %q", ErrUnknownAttribute, attr.Name)
		}
		if err := d.decodeValue(a, raw, tu); err != nil {
			return err
		}
	}
	return nil
}

// decodeValue decodes one attribute's string value into the tuple.
func (d *rowDecoder) decodeValue(a int, raw string, tu dataset.Tuple) error {
	attr := &d.schema.Attrs[a]
	if attr.Kind == dataset.Continuous {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			// Slow path: tolerate surrounding whitespace.
			if v, err = strconv.ParseFloat(strings.TrimSpace(raw), 64); err != nil {
				return fmt.Errorf("%w: attribute %q: %v", ErrUnknownValue, attr.Name, err)
			}
		}
		tu.Cont[a] = v
		return nil
	}
	code, ok := d.catCodes[a][raw]
	if !ok {
		return fmt.Errorf("%w: attribute %q: unknown category %q", ErrUnknownValue, attr.Name, raw)
	}
	tu.Cat[a] = code
	return nil
}
