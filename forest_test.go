package parclass

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/alist"
	"repro/internal/alist/faultstore"
	"repro/internal/tree"
)

// A degenerate forest — one tree, full sample in original order, every
// attribute — must be the tree Train grows, and must predict identically
// on every row.
func TestForestSingleTreeMatchesModel(t *testing.T) {
	for fn := 1; fn <= 7; fn++ {
		t.Run(fmt.Sprintf("F%d", fn), func(t *testing.T) {
			ds := synthDS(t, fn, 10000)
			m, err := Train(ds, Options{})
			if err != nil {
				t.Fatal(err)
			}
			f, err := TrainForest(ds, Options{Trees: 1, SampleFrac: 1, FeatureFrac: 1})
			if err != nil {
				t.Fatal(err)
			}
			if f.NumTrees() != 1 {
				t.Fatalf("NumTrees = %d, want 1", f.NumTrees())
			}
			if !tree.Equal(m.Tree(), f.Trees()[0]) {
				t.Fatalf("member tree differs from Train's tree:\n%s", tree.Diff(m.Tree(), f.Trees()[0]))
			}
			mp, fp := m.PredictDataset(ds), f.PredictDataset(ds)
			for i := range mp {
				if mp[i] != fp[i] {
					t.Fatalf("row %d: model=%s forest=%s", i, mp[i], fp[i])
				}
			}
			if ma, fa := m.Accuracy(ds), f.Accuracy(ds); ma != fa {
				t.Fatalf("accuracy %g != %g", ma, fa)
			}
		})
	}
}

// The forest is a pure function of (data, options, seed): the worker count
// schedules the same member trees, it never changes them.
func TestForestDeterministicAcrossProcs(t *testing.T) {
	ds := synthDS(t, 2, 2000)
	opt := Options{Trees: 8, ForestSeed: 42, FeatureFrac: 0.5, MaxDepth: 8}
	var base *Forest
	for _, procs := range []int{1, 2, 4} {
		opt.Procs = procs
		f, err := TrainForest(ds, opt)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if base == nil {
			base = f
			continue
		}
		for i := range base.trees {
			if !tree.Equal(base.trees[i], f.trees[i]) {
				t.Fatalf("procs=%d: member %d differs from procs=1:\n%s",
					procs, i, tree.Diff(base.trees[i], f.trees[i]))
			}
		}
	}
}

// Proba must be the member vote distribution and agree with the majority
// prediction on every path (named, positional, batch).
func TestForestProbaMatchesVotes(t *testing.T) {
	ds := synthDS(t, 6, 3000)
	f, err := TrainForest(ds, Options{Trees: 9, ForestSeed: 3, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	names := ds.AttrNames()
	vrows := datasetValueRows(ds, 50)
	for i, vals := range vrows {
		pred, proba, err := f.PredictValuesProba(vals)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		best, bestP := "", -1.0
		for _, c := range f.schema.Classes {
			p := proba[c]
			sum += p
			if p > bestP {
				best, bestP = c, p
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d: proba sums to %g", i, sum)
		}
		if proba[pred] != bestP || best != pred {
			// Ties go to the lowest class code; best scans in class order,
			// so a disagreement means proba and the vote diverged.
			t.Fatalf("row %d: prediction %s has proba %g, max is %s=%g",
				i, pred, proba[pred], best, bestP)
		}
		row := make(map[string]string, len(names))
		for a, name := range names {
			row[name] = vals[a]
		}
		pred2, proba2, err := f.PredictProba(row)
		if err != nil {
			t.Fatal(err)
		}
		if pred2 != pred {
			t.Fatalf("row %d: named path predicts %s, positional %s", i, pred2, pred)
		}
		for c, p := range proba {
			if proba2[c] != p {
				t.Fatalf("row %d class %s: named proba %g != positional %g", i, c, proba2[c], p)
			}
		}
	}
}

// Batch paths must agree with the single-row vote.
func TestForestBatchMatchesSingle(t *testing.T) {
	ds := synthDS(t, 3, 2500)
	f, err := TrainForest(ds, Options{Trees: 5, ForestSeed: 1, Procs: 2, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	rows := datasetValueRows(ds, n)
	batch, err := f.PredictValuesBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, vals := range rows {
		single, err := f.PredictValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if single != batch[i] {
			t.Fatalf("row %d: single=%s batch=%s", i, single, batch[i])
		}
	}
	dsPreds := f.PredictDataset(ds)
	for i := 0; i < n; i++ {
		if dsPreds[i] != batch[i] {
			t.Fatalf("row %d: dataset=%s batch=%s", i, dsPreds[i], batch[i])
		}
	}
}

// The v2 envelope round-trips a forest through the public API, and the
// loaded shape is a *Forest that predicts identically.
func TestForestSaveLoadRoundTrip(t *testing.T) {
	ds := synthDS(t, 5, 2000)
	f, err := TrainForest(ds, Options{Trees: 4, ForestSeed: 9, SampleFrac: 0.8, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "forest.json")
	if err := f.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := back.(*Forest)
	if !ok {
		t.Fatalf("loaded %T, want *Forest", back)
	}
	if bf.NumTrees() != 4 {
		t.Fatalf("loaded NumTrees = %d, want 4", bf.NumTrees())
	}
	if bf.sampleFrac != 0.8 || bf.seed != 9 {
		t.Fatalf("forest meta lost: sampleFrac=%g seed=%d", bf.sampleFrac, bf.seed)
	}
	a, b := f.PredictDataset(ds), bf.PredictDataset(ds)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: prediction changed after reload: %s vs %s", i, a[i], b[i])
		}
	}
	// A streamed write round-trips the same way.
	var buf bytes.Buffer
	if err := f.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); err != nil {
		t.Fatal(err)
	}
}

// Pre-forest v1 artifacts must keep loading byte-for-byte: the pinned
// testdata file was written by the v1 single-tree encoder.
func TestLoadModelAcceptsPinnedV1Artifact(t *testing.T) {
	back, err := LoadModel(filepath.Join("testdata", "model_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := back.(*Model)
	if !ok {
		t.Fatalf("v1 artifact loaded as %T, want *Model", back)
	}
	if m.NumTrees() != 1 {
		t.Fatalf("NumTrees = %d, want 1", m.NumTrees())
	}
	// The artifact is an F1 model: the age rule. Young (age < 40) and old
	// (age >= 60) are GroupA, the middle band GroupB.
	pred, err := m.Predict(map[string]string{
		"salary": "60000", "commission": "20000", "age": "30", "elevel": "e2",
		"car": "make3", "zipcode": "zip1", "hvalue": "100000", "hyears": "10",
		"loan": "100000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred != "GroupA" {
		t.Fatalf("pinned v1 model predicts %q for age 30, want GroupA", pred)
	}
}

// Train must refuse forest knobs rather than silently ignore them.
func TestTrainRejectsForestOptions(t *testing.T) {
	ds := synthDS(t, 1, 500)
	for _, opt := range []Options{
		{Trees: 3},
		{SampleFrac: 0.5},
		{FeatureFrac: 0.5},
		{ForestSeed: 7},
	} {
		if _, err := Train(ds, opt); !errors.Is(err, ErrBadOption) {
			t.Fatalf("Train(%+v) err = %v, want ErrBadOption", opt, err)
		}
	}
}

// --- chaos: a failing or panicking member build aborts the whole forest ---

// TestChaosForestMemberError injects a hard store fault into one member
// build; the forest must fail promptly with the member's wrapped error and
// skip remaining trees rather than hang or return a partial ensemble.
func TestChaosForestMemberError(t *testing.T) {
	ds := synthDS(t, 2, 2000)
	opt := Options{Trees: 6, Procs: 2, ForestSeed: 1}
	opt.forestStoreWrap = func(inner alist.Store) alist.Store {
		return faultstore.New(inner, faultstore.Match(faultstore.OpScan, 40, 0, faultstore.Fail))
	}
	f, err := TrainForest(ds, opt)
	if err == nil {
		t.Fatal("forest with a permanently failing store built successfully")
	}
	if f != nil {
		t.Fatal("failed TrainForest returned a non-nil forest")
	}
	if !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("error does not wrap the injected fault: %v", err)
	}
}

// TestChaosForestMemberPanic panics inside one member's build task; the
// scheduler must contain it, abort the siblings and surface ErrWorkerPanic.
func TestChaosForestMemberPanic(t *testing.T) {
	ds := synthDS(t, 1, 1000)
	opt := Options{Trees: 8, Procs: 4, ForestSeed: 2}
	opt.forestTreeHook = func(idx int) error {
		if idx == 5 {
			panic("injected member panic")
		}
		return nil
	}
	_, err := TrainForest(ds, opt)
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
}

// TestChaosForestMemberHookError fails one member at task start; the error
// must name the member and abort the run.
func TestChaosForestMemberHookError(t *testing.T) {
	ds := synthDS(t, 1, 1000)
	boom := errors.New("boom")
	opt := Options{Trees: 4, Procs: 2}
	opt.forestTreeHook = func(idx int) error {
		if idx == 2 {
			return boom
		}
		return nil
	}
	_, err := TrainForest(ds, opt)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// BenchmarkForestFusedVsPerTree is the fused-voting proof: a 25-tree
// forest served through one PredictValuesBatch call versus the same
// ensemble served as 25 separate single-tree batch dispatches plus a vote
// reduce. The fused path decodes each row once and walks the contiguous
// node pool row-major; the per-tree path pays 25 decodes and dispatches.
func BenchmarkForestFusedVsPerTree(b *testing.B) {
	ds, err := Synthetic(SyntheticConfig{Function: 6, Tuples: 4000, Seed: 7, Perturbation: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	f, err := TrainForest(ds, Options{Trees: 25, ForestSeed: 11, MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Compile(); err != nil {
		b.Fatal(err)
	}
	const rowsN = 1024
	rows := datasetValueRows(ds, rowsN)
	members := make([]*Model, f.NumTrees())
	for i, tr := range f.Trees() {
		members[i] = newModel(tr)
		if err := members[i].Compile(); err != nil {
			b.Fatal(err)
		}
	}
	classIdx := make(map[string]int, len(f.schema.Classes))
	for j, c := range f.schema.Classes {
		classIdx[c] = j
	}

	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.PredictValuesBatch(rows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			votes := make([][]int16, rowsN)
			for r := range votes {
				votes[r] = make([]int16, len(f.schema.Classes))
			}
			for _, m := range members {
				preds, err := m.PredictValuesBatch(rows)
				if err != nil {
					b.Fatal(err)
				}
				for r, p := range preds {
					votes[r][classIdx[p]]++
				}
			}
			out := make([]string, rowsN)
			for r := range votes {
				best := 0
				for j := 1; j < len(votes[r]); j++ {
					if votes[r][j] > votes[r][best] {
						best = j
					}
				}
				out[r] = f.schema.Classes[best]
			}
			_ = out
		}
	})
}
