package parclass

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// PhaseBreakdown is the time one worker (or an aggregate of workers) spent
// in each build phase, in seconds, with the work-unit counts that produced
// it. The phases are the paper's E (split evaluation), W (winner selection
// and probe construction) and S (attribute-list splitting), plus the two
// waiting states the parallel schemes introduce: barrier stalls and idle
// time (MWK window waits, SUBTREE free-queue sleeps). The Hist engine adds
// a sixth bucket, bin: its one-time quantile-sketch binning pass (always
// zero for the exact engines).
type PhaseBreakdown struct {
	Eval    float64 `json:"eval_seconds"`
	Winner  float64 `json:"winner_seconds"`
	Split   float64 `json:"split_seconds"`
	Barrier float64 `json:"barrier_seconds"`
	Idle    float64 `json:"idle_seconds"`
	Bin     float64 `json:"bin_seconds,omitempty"`

	EvalUnits   int64 `json:"eval_units"`
	WinnerUnits int64 `json:"winner_units"`
	SplitUnits  int64 `json:"split_units"`
	BinUnits    int64 `json:"bin_units,omitempty"`
}

// Busy returns the productive time: E + W + S (+ bin for Hist).
func (p PhaseBreakdown) Busy() float64 { return p.Eval + p.Winner + p.Split + p.Bin }

// Waiting returns the unproductive time: barrier + idle.
func (p PhaseBreakdown) Waiting() float64 { return p.Barrier + p.Idle }

// Total returns busy + waiting.
func (p PhaseBreakdown) Total() float64 { return p.Busy() + p.Waiting() }

func (p *PhaseBreakdown) add(q PhaseBreakdown) {
	p.Eval += q.Eval
	p.Winner += q.Winner
	p.Split += q.Split
	p.Barrier += q.Barrier
	p.Idle += q.Idle
	p.Bin += q.Bin
	p.EvalUnits += q.EvalUnits
	p.WinnerUnits += q.WinnerUnits
	p.SplitUnits += q.SplitUnits
	p.BinUnits += q.BinUnits
}

// WorkerTrace is one worker's per-level breakdown; Levels[d] covers tree
// depth d.
type WorkerTrace struct {
	Levels []PhaseBreakdown `json:"levels"`
}

// Total aggregates the worker's levels.
func (w WorkerTrace) Total() PhaseBreakdown {
	var out PhaseBreakdown
	for _, lv := range w.Levels {
		out.add(lv)
	}
	return out
}

// BuildTrace is the build-phase observability record of a training run:
// per worker, per tree level, where the wall clock went. It reproduces the
// paper's per-processor E/W/S breakdown tables and derives the two numbers
// the paper reads off them — load skew and parallel efficiency.
type BuildTrace struct {
	// Algorithm is the scheme that ran.
	Algorithm Algorithm `json:"algorithm"`
	// Procs is the worker count the build ran with.
	Procs int `json:"procs"`
	// BuildSeconds is the measured tree-growth wall clock (Timings.Build).
	BuildSeconds float64 `json:"build_seconds"`
	// Workers holds one trace per worker, index = worker id.
	Workers []WorkerTrace `json:"workers"`
}

// WorkerTotals returns each worker's all-level aggregate.
func (b *BuildTrace) WorkerTotals() []PhaseBreakdown {
	out := make([]PhaseBreakdown, len(b.Workers))
	for i, w := range b.Workers {
		out[i] = w.Total()
	}
	return out
}

// LevelTotals returns per-level aggregates summed over workers.
func (b *BuildTrace) LevelTotals() []PhaseBreakdown {
	var out []PhaseBreakdown
	for _, w := range b.Workers {
		for d, lv := range w.Levels {
			for d >= len(out) {
				out = append(out, PhaseBreakdown{})
			}
			out[d].add(lv)
		}
	}
	return out
}

// Totals returns the whole build's aggregate across workers and levels.
func (b *BuildTrace) Totals() PhaseBreakdown {
	var out PhaseBreakdown
	for _, w := range b.Workers {
		out.add(w.Total())
	}
	return out
}

// Skew measures load imbalance as max/mean of the workers' busy (E+W+S)
// times: 1.0 is perfect balance, P is one worker doing everything. Returns
// 0 when nothing was recorded.
func (b *BuildTrace) Skew() float64 {
	tot := b.WorkerTotals()
	var sum, max float64
	for _, w := range tot {
		busy := w.Busy()
		sum += busy
		if busy > max {
			max = busy
		}
	}
	if sum == 0 || len(tot) == 0 {
		return 0
	}
	return max / (sum / float64(len(tot)))
}

// Efficiency is parallel efficiency: the fraction of the P×wall processor
// budget spent on productive E/W/S work. A serial build is ~1.0; barrier
// stalls and idle waits pull it down.
func (b *BuildTrace) Efficiency() float64 {
	if b.BuildSeconds == 0 || b.Procs == 0 {
		return 0
	}
	return b.Totals().Busy() / (float64(b.Procs) * b.BuildSeconds)
}

// Format renders the per-worker breakdown as a fixed-width table, one row
// per worker plus a totals row — the shape of the paper's Table 2.
func (b *BuildTrace) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s P=%d build=%.3fs skew=%.2f eff=%.2f\n",
		b.Algorithm, b.Procs, b.BuildSeconds, b.Skew(), b.Efficiency())
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %10s %10s %10s %10s\n",
		"worker", "bin", "E", "W", "S", "barrier", "idle", "busy")
	row := func(name string, p PhaseBreakdown) {
		fmt.Fprintf(&sb, "%-8s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			name, p.Bin, p.Eval, p.Winner, p.Split, p.Barrier, p.Idle, p.Busy())
	}
	for i, p := range b.WorkerTotals() {
		row(fmt.Sprintf("p%d", i), p)
	}
	row("total", b.Totals())
	return sb.String()
}

// breakdownFrom converts one internal per-level cell.
func breakdownFrom(lv trace.BuildLevel) PhaseBreakdown {
	return PhaseBreakdown{
		Eval:        lv.Seconds[trace.PhaseEval],
		Winner:      lv.Seconds[trace.PhaseWinner],
		Split:       lv.Seconds[trace.PhaseSplit],
		Barrier:     lv.Seconds[trace.PhaseBarrier],
		Idle:        lv.Seconds[trace.PhaseIdle],
		Bin:         lv.Seconds[trace.PhaseBin],
		EvalUnits:   lv.Units[trace.PhaseEval],
		WinnerUnits: lv.Units[trace.PhaseWinner],
		SplitUnits:  lv.Units[trace.PhaseSplit],
		BinUnits:    lv.Units[trace.PhaseBin],
	}
}

// buildTraceFrom converts the internal recorder aggregate to the public
// shape.
func buildTraceFrom(alg Algorithm, procs int, wall time.Duration, b trace.Build) *BuildTrace {
	bt := &BuildTrace{
		Algorithm:    alg,
		Procs:        procs,
		BuildSeconds: wall.Seconds(),
		Workers:      make([]WorkerTrace, len(b.Workers)),
	}
	for w, bw := range b.Workers {
		bt.Workers[w].Levels = make([]PhaseBreakdown, len(bw.Levels))
		for d, lv := range bw.Levels {
			bt.Workers[w].Levels[d] = breakdownFrom(lv)
		}
	}
	return bt
}

// BuildMonitor observes a training run live. Attach one via Options.Monitor,
// hand it to a serving layer (parclassd exposes it on /metrics), and poll
// Snapshot while Train runs: it reports the build state and the current
// phase totals straight from the workers' recorder lanes. A monitor is
// single-use — one training run per BuildMonitor.
type BuildMonitor struct {
	mu    sync.Mutex
	state string // "pending" → "training" → "done" | "failed"
	alg   Algorithm
	procs int
	rec   *trace.Recorder
	start time.Time
	final *BuildTrace
}

// NewBuildMonitor returns a monitor in the "pending" state.
func NewBuildMonitor() *BuildMonitor { return &BuildMonitor{state: "pending"} }

func (bm *BuildMonitor) begin(alg Algorithm, procs int, rec *trace.Recorder) {
	bm.mu.Lock()
	bm.state = "training"
	bm.alg = alg
	bm.procs = procs
	bm.rec = rec
	bm.start = time.Now()
	bm.mu.Unlock()
}

func (bm *BuildMonitor) finish(bt *BuildTrace, err error) {
	bm.mu.Lock()
	if err != nil {
		bm.state = "failed"
	} else {
		bm.state = "done"
	}
	bm.final = bt
	bm.mu.Unlock()
}

// State returns "pending", "training", "done" or "failed".
func (bm *BuildMonitor) State() string {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	return bm.state
}

// Snapshot returns the monitor state and the current trace: the finished
// build's trace when done, or a live aggregate (BuildSeconds = elapsed so
// far) while training. The trace is nil while pending.
func (bm *BuildMonitor) Snapshot() (state string, bt *BuildTrace) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	if bm.final != nil {
		return bm.state, bm.final
	}
	if bm.rec == nil {
		return bm.state, nil
	}
	return bm.state, buildTraceFrom(bm.alg, bm.procs, time.Since(bm.start), bm.rec.Snapshot())
}
