package parclass

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Table 1, Figures 8–11) plus the ablations the text
// discusses and micro-benchmarks of the hot paths. The benchmarks run the
// same harness as cmd/benchtab at a reduced default scale so that
// `go test -bench=. -benchmem` finishes in minutes; paper-scale runs
// (250K tuples) go through `go run ./cmd/benchtab -tuples 250000`.
//
// Speedup shapes are reported as benchmark metrics (speedup4/B-F7 etc. —
// build speedup at the figure's maximum processor count) so regressions in
// the scheduling policies show up in benchstat diffs.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// benchTuples is the default benchmark dataset size. The paper uses 250K;
// 10K preserves the tree shapes at ~1/25 the cost.
const benchTuples = 10000

// reportSeries attaches each series' max-processor build speedup as a
// metric named speedup<P>/<scheme>-F<fn>.
func reportSeries(b *testing.B, series []bench.Series) {
	b.Helper()
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		fn := "?"
		if n := len(s.Dataset); n > 1 {
			fn = s.Dataset[:2]
		}
		b.ReportMetric(last.BuildSpeedup, fmt.Sprintf("speedup%d/%s-%s", last.Procs, s.Scheme, fn))
	}
}

func runFigureBench(b *testing.B, attrs int, storage core.Storage, maxP int) {
	b.Helper()
	procs := make([]int, maxP)
	for i := range procs {
		procs[i] = i + 1
	}
	var series []bench.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = bench.RunFigure(bench.FigureOpts{
			Specs: []bench.DataSpec{
				{Function: 1, Attrs: attrs, Tuples: benchTuples, Seed: 1},
				{Function: 7, Attrs: attrs, Tuples: benchTuples, Seed: 1},
			},
			Storage: storage,
			Procs:   procs,
			Schemes: []sim.Scheme{sim.MWK, sim.Subtree},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, series)
}

// BenchmarkTable1DatasetCharacteristics regenerates Table 1: serial builds
// of the four paper datasets, measuring setup/sort/build decomposition.
func BenchmarkTable1DatasetCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1(bench.PaperSpecs(benchTuples), core.Memory, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the paper's headline ratios for the two functions.
			b.ReportMetric(rows[0].SetupPct+rows[0].SortPct, "setupsort%/F1-A32")
			b.ReportMetric(rows[1].SetupPct+rows[1].SortPct, "setupsort%/F7-A32")
			b.ReportMetric(float64(rows[1].Levels), "levels/F7-A32")
		}
	}
}

// BenchmarkFig8LocalDiskA32 regenerates Figure 8: MWK and SUBTREE build
// time and speedup, disk-resident attribute lists, 32 attributes, P=1..4.
func BenchmarkFig8LocalDiskA32(b *testing.B) {
	runFigureBench(b, 32, core.Disk, 4)
}

// BenchmarkFig9LocalDiskA64 regenerates Figure 9 (64 attributes).
func BenchmarkFig9LocalDiskA64(b *testing.B) {
	runFigureBench(b, 64, core.Disk, 4)
}

// BenchmarkFig10MainMemoryA32 regenerates Figure 10: memory-resident
// lists, 32 attributes, P=1..8.
func BenchmarkFig10MainMemoryA32(b *testing.B) {
	runFigureBench(b, 32, core.Memory, 8)
}

// BenchmarkFig11MainMemoryA64 regenerates Figure 11 (64 attributes).
func BenchmarkFig11MainMemoryA64(b *testing.B) {
	runFigureBench(b, 64, core.Memory, 8)
}

// BenchmarkAblationSchemes compares all four schemes (§4.2: "MWK was indeed
// better than BASIC ... and performs as well or better than FWK").
func BenchmarkAblationSchemes(b *testing.B) {
	var series []bench.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = bench.RunFigure(bench.FigureOpts{
			Specs:   []bench.DataSpec{{Function: 7, Attrs: 32, Tuples: benchTuples, Seed: 1}},
			Storage: core.Memory,
			Procs:   []int{1, 4},
			Schemes: []sim.Scheme{sim.Basic, sim.FWK, sim.MWK, sim.Subtree},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, series)
}

// BenchmarkAblationWindow sweeps MWK's window size K (the paper found K=4
// works well in practice).
func BenchmarkAblationWindow(b *testing.B) {
	tbl, err := synth.Generate(synth.Config{
		Function: 7, Attrs: 32, Tuples: benchTuples, Seed: 1, Perturbation: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr := &trace.Trace{}
	if _, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, Trace: tr}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{1, 2, 4, 8, 16} {
			res, err := sim.Simulate(tr, sim.MWK, 4, k, sim.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.BuildSeconds*1000, fmt.Sprintf("buildms/K%d", k))
			}
		}
	}
}

// BenchmarkAblationProbe compares the three probe designs of §3.2.1 with
// real serial builds.
func BenchmarkAblationProbe(b *testing.B) {
	tbl, err := synth.Generate(synth.Config{
		Function: 7, Attrs: 16, Tuples: benchTuples, Seed: 1, Perturbation: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, pk := range []struct {
		name  string
		probe ProbeKind
	}{{"GlobalBit", GlobalBitProbe}, {"LeafHash", LeafHashProbe}, {"LeafRelabel", LeafRelabelProbe}} {
		b.Run(pk.name, func(b *testing.B) {
			ds := &Dataset{tbl: tbl}
			for i := 0; i < b.N; i++ {
				if _, err := Train(ds, Options{Probe: pk.probe}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Micro-benchmarks of the hot paths ----

// BenchmarkSerialBuild measures end-to-end serial SPRINT throughput.
func BenchmarkSerialBuild(b *testing.B) {
	ds := synthDS(b, 7, benchTuples)
	b.SetBytes(int64(ds.NumRows()) * int64(ds.NumAttrs()) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, Options{Algorithm: Serial}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBuild measures the goroutine schemes' wall clock at
// GOMAXPROCS workers (true speedup needs a multi-core host; see DESIGN.md).
func BenchmarkParallelBuild(b *testing.B) {
	ds := synthDS(b, 7, benchTuples)
	for _, alg := range []Algorithm{Basic, FWK, MWK, Subtree} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Train(ds, Options{Algorithm: alg, Procs: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiskBuild measures the file-backed attribute-list path.
func BenchmarkDiskBuild(b *testing.B) {
	ds := synthDS(b, 7, benchTuples/2)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, Options{Algorithm: Serial, Storage: Disk, TempDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Serving hot path (flat predictor vs pointer tree) ----

// servingBenchSetup trains one F7 model and materializes the benchmark
// batch both as wire-form string rows and as decoded tuples.
func servingBenchSetup(b *testing.B) (*Model, []map[string]string, []dataset.Tuple) {
	b.Helper()
	ds := synthDS(b, 7, benchTuples)
	m, err := Train(ds, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rows := datasetRows(ds, benchTuples)
	tus := make([]dataset.Tuple, ds.NumRows())
	for i := range tus {
		tus[i] = ds.tbl.Row(i)
	}
	return m, rows, tus
}

// reportRowRate attaches classified rows/second so the three serving
// benchmarks compare directly in benchstat output.
func reportRowRate(b *testing.B, rows int) {
	b.Helper()
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkPredictPointer is the pre-serving baseline: per-row map decode
// plus a pointer-chasing tree walk (the Model.Predict loop).
func BenchmarkPredictPointer(b *testing.B) {
	m, rows, _ := servingBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range rows {
			if _, err := m.Predict(row); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportRowRate(b, len(rows))
}

// BenchmarkPredictFlat isolates the compiled flat-array tree walk over
// pre-decoded tuples.
func BenchmarkPredictFlat(b *testing.B) {
	m, _, tus := servingBenchSetup(b)
	if err := m.Compile(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range tus {
			m.compiled.Predict(tus[j])
		}
	}
	reportRowRate(b, len(tus))
}

// BenchmarkPredictBatchParallel is the full serving path: PredictBatch's
// sharded decode + compiled walk over string rows, the path parclassd's
// /predict batches take.
func BenchmarkPredictBatchParallel(b *testing.B) {
	m, rows, _ := servingBenchSetup(b)
	if err := m.Compile(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(rows); err != nil {
			b.Fatal(err)
		}
	}
	reportRowRate(b, len(rows))
}

// BenchmarkSyntheticGeneration measures the data generator.
func BenchmarkSyntheticGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Synthetic(SyntheticConfig{
			Function: 7, Attrs: 32, Tuples: benchTuples, Seed: int64(i), Perturbation: 0.05,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
