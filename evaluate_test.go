package parclass

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadModel(t *testing.T) {
	ds := synthDS(t, 2, 2000)
	m, err := Train(ds, Options{Algorithm: MWK, Procs: 2, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	backM, ok := back.(*Model)
	if !ok {
		t.Fatalf("v1 file loaded as %T, want *Model", back)
	}
	if backM.String() != m.String() {
		t.Fatal("loaded model renders differently")
	}
	if got, want := back.Accuracy(ds), m.Accuracy(ds); got != want {
		t.Fatalf("loaded accuracy %g != %g", got, want)
	}
	// Predict via name-based API still works.
	row := map[string]string{
		"salary": "60000", "commission": "20000", "age": "45", "elevel": "e2",
		"car": "make3", "zipcode": "zip1", "hvalue": "100000", "hyears": "10",
		"loan": "100000",
	}
	a, err := m.Predict(row)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Predict(row)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("prediction changed after reload: %s vs %s", a, b)
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	ds := synthDS(t, 1, 3000)
	train, test := ds.SplitHoldout(0.3)
	m, err := Train(train, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	metrics := m.Evaluate(test)
	if math.Abs(metrics.Accuracy-m.Accuracy(test)) > 1e-12 {
		t.Fatal("Evaluate accuracy disagrees with Accuracy")
	}
	if len(metrics.Classes) != 2 || len(metrics.PerClass) != 2 {
		t.Fatalf("metrics shape: %+v", metrics)
	}
	var total int64
	for _, row := range metrics.ConfusionMatrix {
		for _, v := range row {
			total += v
		}
	}
	if total != int64(test.NumRows()) {
		t.Fatalf("confusion total %d != rows %d", total, test.NumRows())
	}
	if !strings.Contains(metrics.Pretty, "precision=") {
		t.Fatal("pretty rendering missing metrics")
	}
}

func TestCrossValidatePublic(t *testing.T) {
	ds := synthDS(t, 1, 1500)
	res, err := CrossValidate(ds, 3, 11, Options{Algorithm: Subtree, Procs: 2, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 3 || res.Mean < 0.95 {
		t.Fatalf("CV result: %+v", res)
	}
	if _, err := CrossValidate(ds, 1, 0, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestCrossValidateCancellation(t *testing.T) {
	ds := synthDS(t, 7, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CrossValidateContext(ctx, ds, 4, 1, Options{Algorithm: MWK, Procs: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestPredictDataset(t *testing.T) {
	ds := synthDS(t, 1, 500)
	m, err := Train(ds, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.PredictDataset(ds)
	if len(preds) != ds.NumRows() {
		t.Fatalf("predictions = %d", len(preds))
	}
	correct := 0
	names := ds.ClassNames()
	for i, p := range preds {
		if p != names[0] && p != names[1] {
			t.Fatalf("prediction %d is %q", i, p)
		}
		if p == names[ds.Table().Class(i)] {
			correct++
		}
	}
	if math.Abs(float64(correct)/float64(len(preds))-m.Accuracy(ds)) > 1e-12 {
		t.Fatal("PredictDataset disagrees with Accuracy")
	}
}
