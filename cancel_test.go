package parclass

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestTrainContextCancel proves TrainContext aborts promptly when its
// context is cancelled mid-build, under the window (MWK) and task-parallel
// (Subtree) schemes whose workers block on condition waits and queue
// channels — the paths where a missed cancellation check would hang, which
// is why the suite runs this under -race in make verify.
func TestTrainContextCancel(t *testing.T) {
	ds := synthDS(t, 7, 30000)
	for _, alg := range []Algorithm{MWK, Subtree} {
		t.Run(alg.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := TrainContext(ctx, ds, Options{Algorithm: alg, Procs: 4})
				done <- err
			}()
			// Let the build get going, then pull the plug.
			time.Sleep(5 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					// The build may legitimately have finished before the
					// cancel landed on a fast machine.
					if err != nil {
						t.Fatalf("error = %v, want context.Canceled or nil", err)
					}
					t.Log("build completed before cancellation")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("TrainContext did not return after cancel")
			}
		})
	}
}
