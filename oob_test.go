package parclass

import "testing"

// TestForestOOBError checks the out-of-bag estimate: it exists for
// bootstrapped forests, lands in [0,1] near the holdout error, is
// deterministic across Procs (vote adds commute), and disappears when
// SampleFrac 1 gives members nothing out-of-bag.
func TestForestOOBError(t *testing.T) {
	ds := synthDS(t, 1, 3000)
	f, err := TrainForest(ds, Options{Trees: 15, MaxDepth: 8, ForestSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	oob, ok := f.OOBError()
	if !ok {
		t.Fatal("bootstrapped forest has no OOB estimate")
	}
	if oob < 0 || oob > 1 {
		t.Fatalf("OOB error %g outside [0,1]", oob)
	}
	if f.OOBRows() <= 0 || f.OOBRows() > 3000 {
		t.Fatalf("OOB scored %d rows of 3000", f.OOBRows())
	}
	// F1 is an easy function: the estimate should resemble the training
	// error's order of magnitude, not coin-flipping.
	if oob > 0.30 {
		t.Fatalf("OOB error %g implausibly high for F1", oob)
	}

	// Same seed, parallel build: the estimate must not depend on member
	// completion order.
	par, err := TrainForest(ds, Options{Trees: 15, MaxDepth: 8, ForestSeed: 5, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	poob, pok := par.OOBError()
	if !pok || poob != oob || par.OOBRows() != f.OOBRows() {
		t.Fatalf("parallel build OOB %g/%d, serial %g/%d", poob, par.OOBRows(), oob, f.OOBRows())
	}

	// SampleFrac 1 trains every member on the full table: nothing is
	// out-of-bag, so no estimate may be claimed.
	full, err := TrainForest(ds, Options{Trees: 5, MaxDepth: 6, SampleFrac: 1, ForestSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := full.OOBError(); ok || full.OOBRows() != 0 {
		t.Fatal("SampleFrac=1 forest claims an OOB estimate")
	}
}
