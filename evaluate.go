package parclass

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/tree"
)

// SaveModel writes the trained model to path as versioned JSON, including
// the schema, so it can be loaded and used for prediction without the
// training data.
func (m *Model) SaveModel(path string) error {
	return m.tree.WriteFile(path)
}

// WriteModel serializes the model as versioned JSON to w — the streaming
// form of SaveModel, used by the model server's hot-swap endpoint.
func (m *Model) WriteModel(w io.Writer) error {
	return m.tree.Write(w)
}

// LoadModel reads a classifier previously written with SaveModel — either
// shape: a v1 file yields a *Model, a v2 forest file a *Forest.
func LoadModel(path string) (Predictor, error) {
	f, err := tree.ReadAnyFile(path)
	if err != nil {
		return nil, err
	}
	return predictorFromFile(f)
}

// ReadModel deserializes a classifier from r — the streaming form of
// LoadModel. It accepts both the v1 single-tree envelope and the v2
// multi-tree envelope.
func ReadModel(r io.Reader) (Predictor, error) {
	f, err := tree.ReadAny(r)
	if err != nil {
		return nil, err
	}
	return predictorFromFile(f)
}

// predictorFromFile wraps a decoded model file in the matching shape.
func predictorFromFile(f *tree.File) (Predictor, error) {
	if len(f.Trees) == 1 && f.Forest == nil {
		return newModel(f.Trees[0]), nil
	}
	meta := f.Forest
	if meta == nil {
		meta = &tree.ForestMeta{}
	}
	return newForest(f.Trees, meta.SampleFrac, meta.FeatureFrac, meta.Seed), nil
}

// Metrics summarizes a model's performance on a dataset.
type Metrics struct {
	// Accuracy is the fraction classified correctly.
	Accuracy float64
	// Classes lists the class names, indexing ConfusionMatrix and PerClass.
	Classes []string
	// ConfusionMatrix is indexed [actual][predicted].
	ConfusionMatrix [][]int64
	// PerClass holds one-vs-rest precision/recall/F1 per class.
	PerClass []ClassMetrics
	// Pretty is a ready-to-print rendering.
	Pretty string
}

// ClassMetrics holds one class's one-vs-rest measures.
type ClassMetrics struct {
	Class     string
	Support   int64
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate computes the confusion matrix and per-class metrics of the
// model on ds.
func (m *Model) Evaluate(ds *Dataset) Metrics {
	cm := eval.Confuse(m.tree, ds.tbl)
	out := Metrics{
		Accuracy:        cm.Accuracy(),
		Classes:         cm.Classes,
		ConfusionMatrix: cm.Counts,
		Pretty:          cm.String(),
	}
	for _, pc := range cm.PerClass() {
		out.PerClass = append(out.PerClass, ClassMetrics{
			Class: pc.Class, Support: pc.Support,
			Precision: pc.Precision, Recall: pc.Recall, F1: pc.F1,
		})
	}
	return out
}

// CVResult summarizes a cross-validation run.
type CVResult struct {
	FoldAccuracy []float64
	Mean         float64
	StdDev       float64
}

// CrossValidate runs k-fold cross-validation of the given training options
// over ds, with deterministic fold assignment from seed.
func CrossValidate(ds *Dataset, k int, seed int64, opt Options) (CVResult, error) {
	return CrossValidateContext(context.Background(), ds, k, seed, opt)
}

// CrossValidateContext is CrossValidate with cancellation.
func CrossValidateContext(ctx context.Context, ds *Dataset, k int, seed int64, opt Options) (CVResult, error) {
	res, err := eval.CrossValidate(ds.tbl, k, seed, func(train *dataset.Table) (*tree.Tree, error) {
		cfg := opt.coreConfig()
		cfg.Context = ctx
		tr, _, err := core.Build(train, cfg)
		return tr, err
	})
	if err != nil {
		return CVResult{}, fmt.Errorf("parclass: %w", err)
	}
	return CVResult{FoldAccuracy: res.FoldAccuracy, Mean: res.Mean, StdDev: res.StdDev}, nil
}

// PredictProb returns the class-probability estimate for one example: the
// training class distribution of the leaf the example lands in.
func (m *Model) PredictProb(row map[string]string) (map[string]float64, error) {
	tu, err := m.decodeRow(row)
	if err != nil {
		return nil, err
	}
	n := m.tree.Root
	for !n.IsLeaf() {
		var v float64
		if n.Split.Kind == dataset.Continuous {
			v = tu.Cont[n.Split.Attr]
		} else {
			v = float64(tu.Cat[n.Split.Attr])
		}
		if n.Split.GoesLeft(v) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	out := make(map[string]float64, len(m.tree.Schema.Classes))
	for j, name := range m.tree.Schema.Classes {
		if n.N > 0 {
			out[name] = float64(n.ClassCounts[j]) / float64(n.N)
		} else {
			out[name] = 0
		}
	}
	return out, nil
}

// PredictDataset classifies every row of ds (ignoring its labels) and
// returns the predicted class names in row order. Rows are already decoded
// columnar data, so this takes the compiled flat-tree batch path directly.
func (m *Model) PredictDataset(ds *Dataset) []string {
	n := ds.NumRows()
	out := make([]string, n)
	if n == 0 {
		return out
	}
	if err := m.Compile(); err != nil {
		// Compile only fails on malformed trees, which Train and LoadModel
		// never produce; fall back to the pointer walk regardless.
		for i := 0; i < n; i++ {
			out[i] = m.tree.Schema.Classes[m.tree.Predict(ds.tbl.Row(i))]
		}
		return out
	}
	tus := make([]dataset.Tuple, n)
	for i := range tus {
		tus[i] = ds.tbl.Row(i)
	}
	codes := m.compiled.PredictBatch(tus, runtime.GOMAXPROCS(0))
	for i, c := range codes {
		out[i] = m.tree.Schema.Classes[c]
	}
	return out
}
