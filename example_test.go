package parclass_test

import (
	"fmt"
	"os"
	"path/filepath"

	parclass "repro"
)

// ExampleTrain demonstrates the basic train/predict workflow on the
// paper's Function 1 population (the age rule).
func ExampleTrain() {
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 5000, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	model, err := parclass.Train(ds, parclass.Options{
		Algorithm: parclass.MWK, // the paper's best SMP scheme
		Procs:     4,
	})
	if err != nil {
		panic(err)
	}
	class, err := model.Predict(map[string]string{
		"salary": "60000", "commission": "20000", "age": "30", "elevel": "e2",
		"car": "make5", "zipcode": "zip4", "hvalue": "500000", "hyears": "15",
		"loan": "200000",
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(class)
	// Output: GroupA
}

// ExampleModel_SQL shows the paper's database-integration point: a trained
// tree converts directly into a SQL CASE expression.
func ExampleModel_SQL() {
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 5000, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	model, err := parclass.Train(ds, parclass.Options{MaxDepth: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(model.SQL())
	// Output:
	// CASE
	//   WHEN (age < 39.997817984370286) THEN 'GroupA'
	//   WHEN NOT (age < 39.997817984370286) THEN 'GroupB'
	// END
}

// ExampleModel_SaveModel round-trips a model through its JSON form.
func ExampleModel_SaveModel() {
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 2000, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	model, err := parclass.Train(ds, parclass.Options{MaxDepth: 4})
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "parclass-example-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.json")
	if err := model.SaveModel(path); err != nil {
		panic(err)
	}
	loaded, err := parclass.LoadModel(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("identical after reload: %v\n", loaded.(*parclass.Model).String() == model.String())
	// Output: identical after reload: true
}

// ExampleCrossValidate estimates generalization accuracy with k-fold CV.
func ExampleCrossValidate() {
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 3000, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	res, err := parclass.CrossValidate(ds, 5, 42, parclass.Options{
		Algorithm: parclass.Subtree, Procs: 2, MaxDepth: 6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("folds: %d, mean accuracy > 0.97: %v\n",
		len(res.FoldAccuracy), res.Mean > 0.97)
	// Output: folds: 5, mean accuracy > 0.97: true
}
