package parclass

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func synthDS(t testing.TB, fn, tuples int) *Dataset {
	t.Helper()
	ds, err := Synthetic(SyntheticConfig{
		Function: fn, Tuples: tuples, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainAndEvaluate(t *testing.T) {
	ds := synthDS(t, 1, 3000)
	train, test := ds.SplitHoldout(0.25)
	if train.NumRows()+test.NumRows() != ds.NumRows() {
		t.Fatal("holdout lost rows")
	}
	m, err := Train(train, Options{Algorithm: MWK, Procs: 3, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// F1 is the trivial age rule; the tree should nail it.
	if acc := m.Accuracy(test); acc < 0.95 {
		t.Fatalf("F1 holdout accuracy %.3f < 0.95", acc)
	}
	st := m.Stats()
	if st.Nodes < 3 || st.Levels < 2 {
		t.Fatalf("degenerate tree: %+v", st)
	}
	if m.Timings().Total() <= 0 {
		t.Fatal("timings missing")
	}
	if len(m.Rules()) != st.Leaves {
		t.Fatal("one rule per leaf expected")
	}
	if !strings.Contains(m.SQL(), "CASE") {
		t.Fatal("SQL export broken")
	}
	if len(m.AttrImportance()) == 0 {
		t.Fatal("importance empty")
	}
	// F1's concept depends only on age.
	if !strings.HasPrefix(m.AttrImportance()[0], "age") {
		t.Fatalf("top attribute should be age, got %v", m.AttrImportance()[0])
	}
}

func TestAllPublicAlgorithmsAgree(t *testing.T) {
	ds := synthDS(t, 7, 1200)
	ref, err := Train(ds, Options{Algorithm: Serial, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Basic, FWK, MWK, Subtree, RecordParallel, SLIQ} {
		m, err := Train(ds, Options{Algorithm: alg, Procs: 4, MaxDepth: 8})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if m.String() != ref.String() {
			t.Fatalf("%v grew a different tree", alg)
		}
	}
}

func TestPredict(t *testing.T) {
	ds := synthDS(t, 1, 2000)
	m, err := Train(ds, Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]string{
		"salary": "50000", "commission": "20000", "elevel": "e2",
		"car": "make3", "zipcode": "zip1", "hvalue": "100000",
		"hyears": "10", "loan": "100000",
	}
	young := cloneRow(base)
	young["age"] = "25"
	mid := cloneRow(base)
	mid["age"] = "50"
	old := cloneRow(base)
	old["age"] = "70"
	for row, want := range map[*map[string]string]string{
		&young: "GroupA", &mid: "GroupB", &old: "GroupA",
	} {
		got, err := m.Predict(*row)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("age %s → %s, want %s", (*row)["age"], got, want)
		}
	}

	// Error paths.
	if _, err := m.Predict(map[string]string{}); err == nil {
		t.Fatal("missing attributes accepted")
	}
	bad := cloneRow(base)
	bad["age"] = "not-a-number"
	if _, err := m.Predict(bad); err == nil {
		t.Fatal("bad float accepted")
	}
	bad2 := cloneRow(base)
	bad2["age"] = "30"
	bad2["car"] = "spaceship"
	if _, err := m.Predict(bad2); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func cloneRow(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func TestCSVRoundTripThroughAPI(t *testing.T) {
	ds := synthDS(t, 2, 200)
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() || back.NumAttrs() != ds.NumAttrs() {
		t.Fatal("CSV round trip lost shape")
	}
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDiskStorageAndPruneThroughAPI(t *testing.T) {
	ds := synthDS(t, 7, 1500)
	m, err := Train(ds, Options{
		Algorithm: Subtree, Procs: 2, Storage: Disk, TempDir: t.TempDir(),
		Prune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.PrunedSubtrees() == 0 {
		t.Log("note: pruning found nothing to collapse (acceptable)")
	}
	if m.Accuracy(ds) < 0.8 {
		t.Fatalf("training accuracy %.3f unexpectedly low", m.Accuracy(ds))
	}
}

func TestDatasetMetadata(t *testing.T) {
	ds := synthDS(t, 1, 100)
	if ds.NumAttrs() != 9 {
		t.Fatalf("attrs = %d", ds.NumAttrs())
	}
	names := ds.AttrNames()
	if names[0] != "salary" || names[2] != "age" {
		t.Fatalf("names = %v", names)
	}
	classes := ds.ClassNames()
	if len(classes) != 2 || classes[0] != "GroupA" {
		t.Fatalf("classes = %v", classes)
	}
	dist := ds.ClassDistribution()
	if dist["GroupA"]+dist["GroupB"] != 100 {
		t.Fatalf("distribution = %v", dist)
	}
}

func TestAlgorithmString(t *testing.T) {
	for a, want := range map[Algorithm]string{
		Serial: "SERIAL", Basic: "BASIC", FWK: "FWK", MWK: "MWK", Subtree: "SUBTREE",
	} {
		if a.String() != want {
			t.Fatalf("%d → %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
