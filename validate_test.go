package parclass

import (
	"errors"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"full parallel", Options{Algorithm: MWK, Procs: 4, WindowK: 8, Storage: Disk}, true},
		{"sliq memory", Options{Algorithm: SLIQ}, true},
		{"unknown algorithm", Options{Algorithm: Algorithm(42)}, false},
		{"unknown storage", Options{Storage: Storage(9)}, false},
		{"unknown probe", Options{Probe: ProbeKind(7)}, false},
		{"negative procs", Options{Procs: -1}, false},
		{"negative window", Options{WindowK: -2}, false},
		{"minsplit one", Options{MinSplit: 1}, false},
		{"negative minsplit", Options{MinSplit: -3}, false},
		{"negative depth", Options{MaxDepth: -1}, false},
		{"negative gain", Options{MinGiniGain: -0.5}, false},
		{"recpar hash probe", Options{Algorithm: RecordParallel, Probe: LeafHashProbe}, false},
		{"recpar global bit", Options{Algorithm: RecordParallel}, true},
		{"sliq on disk", Options{Algorithm: SLIQ, Storage: Disk}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, ErrBadOption) {
					t.Fatalf("error %v does not wrap ErrBadOption", err)
				}
			}
		})
	}
}

// TestTrainValidates checks Train rejects bad options before touching the
// dataset, wrapping ErrBadOption.
func TestTrainValidates(t *testing.T) {
	ds := synthDS(t, 1, 100)
	_, err := Train(ds, Options{Procs: -2})
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("Train error = %v, want ErrBadOption", err)
	}
}
