package parclass

import (
	"errors"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"full parallel", Options{Algorithm: MWK, Procs: 4, WindowK: 8, Storage: Disk}, true},
		{"sliq memory", Options{Algorithm: SLIQ}, true},
		{"unknown algorithm", Options{Algorithm: Algorithm(42)}, false},
		{"unknown storage", Options{Storage: Storage(9)}, false},
		{"unknown probe", Options{Probe: ProbeKind(7)}, false},
		{"negative procs", Options{Procs: -1}, false},
		{"negative window", Options{WindowK: -2}, false},
		{"minsplit one", Options{MinSplit: 1}, false},
		{"negative minsplit", Options{MinSplit: -3}, false},
		{"negative depth", Options{MaxDepth: -1}, false},
		{"negative gain", Options{MinGiniGain: -0.5}, false},
		{"recpar hash probe", Options{Algorithm: RecordParallel, Probe: LeafHashProbe}, false},
		{"recpar global bit", Options{Algorithm: RecordParallel}, true},
		{"sliq on disk", Options{Algorithm: SLIQ, Storage: Disk}, false},
		{"hist defaults", Options{Algorithm: Hist}, true},
		{"hist max bins", Options{Algorithm: Hist, MaxBins: 64, Procs: 4}, true},
		{"hist bins floor", Options{Algorithm: Hist, MaxBins: 65536}, true},
		{"hist bins too few", Options{Algorithm: Hist, MaxBins: 1}, false},
		{"hist bins negative", Options{Algorithm: Hist, MaxBins: -8}, false},
		{"hist bins too many", Options{Algorithm: Hist, MaxBins: 65537}, false},
		{"max bins without hist", Options{Algorithm: MWK, MaxBins: 64}, false},
		{"max bins default alg", Options{MaxBins: 256}, false},
		{"hist on disk", Options{Algorithm: Hist, Storage: Disk}, false},
		{"hist temp dir", Options{Algorithm: Hist, TempDir: "/tmp/x"}, false},
		{"hist hash probe", Options{Algorithm: Hist, Probe: LeafHashProbe}, false},
		{"hist relabel probe", Options{Algorithm: Hist, Probe: LeafRelabelProbe}, false},
		{"hist window", Options{Algorithm: Hist, WindowK: 4}, false},
		{"forest defaults", Options{Trees: 25, ForestSeed: 7}, true},
		{"forest hist", Options{Algorithm: Hist, Trees: 8, Procs: 4}, true},
		{"forest fracs", Options{Trees: 4, SampleFrac: 0.8, FeatureFrac: 0.5}, true},
		{"degenerate forest", Options{Trees: 1, SampleFrac: 1, FeatureFrac: 1}, true},
		{"negative trees", Options{Trees: -1}, false},
		{"sample frac too big", Options{Trees: 2, SampleFrac: 1.5}, false},
		{"sample frac negative", Options{SampleFrac: -0.2}, false},
		{"feature frac too big", Options{Trees: 2, FeatureFrac: 2}, false},
		{"feature frac negative", Options{FeatureFrac: -1}, false},
		{"forest mwk", Options{Algorithm: MWK, Trees: 4}, false},
		{"forest subtree", Options{Algorithm: Subtree, Trees: 4}, false},
		{"forest monitor", Options{Trees: 4, Monitor: NewBuildMonitor()}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, ErrBadOption) {
					t.Fatalf("error %v does not wrap ErrBadOption", err)
				}
			}
		})
	}
}

// TestValidateNamesField checks the Hist rejections name the offending
// option, so a server operator can fix the request from the message alone.
func TestValidateNamesField(t *testing.T) {
	cases := []struct {
		opt   Options
		field string
	}{
		{Options{Algorithm: Hist, MaxBins: 1}, "MaxBins"},
		{Options{Algorithm: Basic, MaxBins: 64}, "MaxBins"},
		{Options{Algorithm: Hist, TempDir: "/tmp/x"}, "TempDir"},
		{Options{Algorithm: Hist, Probe: LeafHashProbe}, "Probe"},
		{Options{Algorithm: Hist, WindowK: 2}, "WindowK"},
		{Options{Trees: -2}, "Trees"},
		{Options{SampleFrac: 3}, "SampleFrac"},
		{Options{FeatureFrac: -0.5}, "FeatureFrac"},
		{Options{Algorithm: MWK, Trees: 2}, "Algorithm"},
		{Options{Trees: 2, Monitor: NewBuildMonitor()}, "Monitor"},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.field) {
			t.Errorf("Validate(%+v) = %v, want error naming %s", tc.opt, err, tc.field)
		}
	}
}

// TestTrainValidates checks Train rejects bad options before touching the
// dataset, wrapping ErrBadOption.
func TestTrainValidates(t *testing.T) {
	ds := synthDS(t, 1, 100)
	_, err := Train(ds, Options{Procs: -2})
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("Train error = %v, want ErrBadOption", err)
	}
}
