package synth

import (
	"math/rand"

	"repro/internal/dataset"
)

// Streamer produces the same tuple sequence as Generate one tuple at a
// time, so datasets far larger than memory (D1M, D10M) can be written
// straight to disk. The generator state is a few RNGs and one reusable
// tuple buffer; memory use is constant in the tuple count. For any Config,
// streaming and materializing draw from the RNG streams in the same order,
// so the outputs are identical row for row.
type Streamer struct {
	cfg    Config
	k      int
	schema *dataset.Schema

	rng        *rand.Rand
	perturbRng *rand.Rand
	noiseRng   *rand.Rand

	tu   dataset.Tuple
	next int
}

// NewStreamer validates the configuration and positions the stream at the
// first tuple.
func NewStreamer(c Config) (*Streamer, error) {
	if c.Attrs == 0 {
		c.Attrs = numBaseAttrs
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	k := c.Classes
	if k == 0 {
		k = 2
	}
	schema := SchemaK(c.Attrs, k)
	return &Streamer{
		cfg:    c,
		k:      k,
		schema: schema,
		// Separate streams keep the drawn tuples identical across runs
		// that differ only in perturbation or label-noise settings
		// (mirrors Generate). The main stream is seeded with Seed directly
		// so unperturbed datasets match historical output; the side streams
		// take splitmix64-derived sub-seeds (like forest.go's memberSeed)
		// rather than XOR'd constants, which collide across seeds (Seed=0's
		// perturbation stream equaled Seed=0x5DEECE66D's main stream).
		rng:        rand.New(rand.NewSource(c.Seed)),
		perturbRng: rand.New(rand.NewSource(subSeed(c.Seed, 1))),
		noiseRng:   rand.New(rand.NewSource(subSeed(c.Seed, 2))),
		tu: dataset.Tuple{
			Cont: make([]float64, len(schema.Attrs)),
			Cat:  make([]int32, len(schema.Attrs)),
		},
	}, nil
}

// subSeed derives the seed for side stream i from the user's seed with a
// splitmix64 round, so distinct (seed, stream) pairs land in statistically
// independent sequences.
func subSeed(seed int64, stream int) int64 {
	z := uint64(seed) + uint64(stream)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Schema returns the stream's dataset schema.
func (s *Streamer) Schema() *dataset.Schema { return s.schema }

// Remaining returns how many tuples the stream will still produce.
func (s *Streamer) Remaining() int { return s.cfg.Tuples - s.next }

// Next draws the next labeled tuple, or returns false when the configured
// tuple count is exhausted. The returned tuple aliases an internal buffer
// that the following Next call overwrites; copy it to retain it.
func (s *Streamer) Next() (dataset.Tuple, bool) {
	if s.next >= s.cfg.Tuples {
		return dataset.Tuple{}, false
	}
	row := s.next
	s.next++
	c, k := s.cfg, s.k
	v := drawTuple(s.rng)
	fn := c.Function
	if c.DriftFunction != 0 && row >= c.DriftAt {
		fn = c.DriftFunction
	}
	code := classifyK(fn, v, k)
	if c.Perturbation > 0 {
		perturb(s.perturbRng, &v, c.Perturbation)
	}
	if c.LabelNoise > 0 && s.noiseRng.Float64() < c.LabelNoise {
		flip := int32(s.noiseRng.Intn(k - 1))
		if flip >= code {
			flip++
		}
		code = flip
	}
	tu := &s.tu
	tu.Cont[AttrSalary] = v.salary
	tu.Cont[AttrCommission] = v.commission
	tu.Cont[AttrAge] = v.age
	tu.Cat[AttrElevel] = v.elevel
	tu.Cat[AttrCar] = v.car
	tu.Cat[AttrZipcode] = v.zipcode
	tu.Cont[AttrHvalue] = v.hvalue
	tu.Cont[AttrHyears] = v.hyears
	tu.Cont[AttrLoan] = v.loan
	for a := numBaseAttrs; a < len(s.schema.Attrs); a++ {
		if s.schema.Attrs[a].Kind == dataset.Continuous {
			tu.Cont[a] = s.rng.Float64() * 1000
		} else {
			tu.Cat[a] = int32(s.rng.Intn(len(s.schema.Attrs[a].Categories)))
		}
	}
	tu.Class = code
	return *tu, true
}
