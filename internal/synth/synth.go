// Package synth implements the synthetic training-data generator of
// Agrawal, Imielinski and Swami ("Database Mining: A Performance
// Perspective", IEEE TKDE 1993), the generator used by SLIQ, SPRINT and by
// the paper reproduced here. It produces tuples over nine canonical
// attributes and labels them with one of ten classification functions of
// increasing complexity; Function 1 (simple, tiny trees) and Function 7
// (complex, large trees) are the two the paper evaluates.
//
// The paper's datasets are named Fx-Ay-DzK: function x, y attributes, z
// thousand tuples. Widths beyond the nine canonical attributes are reached
// by appending synthetic noise attributes (alternating uniform continuous
// and uniform categorical), mirroring how the SPRINT-family studies widened
// their inputs; the noise attributes carry no class signal, so they only add
// per-attribute work — exactly their role in the scaling experiments.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Canonical attribute indices within the base schema.
const (
	AttrSalary = iota
	AttrCommission
	AttrAge
	AttrElevel
	AttrCar
	AttrZipcode
	AttrHvalue
	AttrHyears
	AttrLoan
	numBaseAttrs
)

// Config parameterizes dataset generation.
type Config struct {
	// Function selects the classification function, 1..10.
	Function int
	// Tuples is the number of tuples to generate.
	Tuples int
	// Attrs is the total attribute count; must be >= 9. Attributes beyond
	// the canonical nine are uniform noise (alternating continuous and
	// categorical with 10 categories).
	Attrs int
	// Seed seeds the deterministic generator.
	Seed int64
	// Perturbation is the fraction p used to perturb continuous values of
	// the canonical attributes after labeling, as in the original
	// generator (section 4 of AIS): v' = v + r*p*range, r uniform in
	// [-0.5, 0.5]. Zero disables perturbation.
	Perturbation float64
	// LabelNoise flips the class of each tuple with this probability
	// after labeling (uniformly to another class). Zero disables.
	LabelNoise float64
	// Classes selects a multi-way labeling (default 2, the paper's
	// two-group functions). Function 1 supports 3 classes (its natural
	// age bands: <40, 40–60, ≥60); functions 7–10 support any k ≥ 2 by
	// banding their disposable-income score into equal-width ranges.
	Classes int
	// DriftFunction, when non-zero, is the concept-drift scenario: tuples
	// at row offsets >= DriftAt are labeled with this function instead of
	// Function. The attribute draws are unchanged — only the labeling
	// concept flips — so a model trained before the drift point sees the
	// same input distribution but a different ground truth after it.
	DriftFunction int
	// DriftAt is the zero-based row offset at which DriftFunction takes
	// over. Ignored when DriftFunction is zero.
	DriftAt int
}

// Name returns the paper-style dataset name, e.g. "F7-A32-D250K", or
// "F1toF7-A9-D10K" for a drift scenario.
func (c Config) Name() string {
	fn := fmt.Sprintf("F%d", c.Function)
	if c.DriftFunction != 0 {
		fn = fmt.Sprintf("F%dtoF%d", c.Function, c.DriftFunction)
	}
	d := c.Tuples
	if d%1000 == 0 {
		return fmt.Sprintf("%s-A%d-D%dK", fn, c.Attrs, d/1000)
	}
	return fmt.Sprintf("%s-A%d-D%d", fn, c.Attrs, d)
}

func (c Config) validate() error {
	if c.Function < 1 || c.Function > 10 {
		return fmt.Errorf("synth: function must be 1..10, got %d", c.Function)
	}
	if c.Tuples < 0 {
		return fmt.Errorf("synth: negative tuple count %d", c.Tuples)
	}
	if c.Attrs == 0 {
		c.Attrs = numBaseAttrs
	}
	if c.Attrs < numBaseAttrs {
		return fmt.Errorf("synth: need at least %d attributes, got %d", numBaseAttrs, c.Attrs)
	}
	if c.Perturbation < 0 || c.Perturbation > 1 {
		return fmt.Errorf("synth: perturbation must be in [0,1], got %g", c.Perturbation)
	}
	if c.LabelNoise < 0 || c.LabelNoise > 1 {
		return fmt.Errorf("synth: label noise must be in [0,1], got %g", c.LabelNoise)
	}
	if err := classesOK(c.Function, c.Classes); err != nil {
		return err
	}
	if c.DriftFunction != 0 {
		if c.DriftFunction < 1 || c.DriftFunction > 10 {
			return fmt.Errorf("synth: drift function must be 1..10, got %d", c.DriftFunction)
		}
		if c.DriftAt < 0 {
			return fmt.Errorf("synth: negative drift offset %d", c.DriftAt)
		}
		if err := classesOK(c.DriftFunction, c.Classes); err != nil {
			return err
		}
	}
	return nil
}

// classesOK checks that function fn supports a k-way labeling.
func classesOK(fn, k int) error {
	if k == 0 || k == 2 {
		return nil
	}
	switch {
	case fn == 1 && k == 3:
	case fn >= 7 && fn <= 10 && k >= 2 && k <= 26:
	default:
		return fmt.Errorf("synth: function %d does not support %d classes", fn, k)
	}
	return nil
}

// Schema builds the dataset schema for the given total attribute width and
// a two-class labeling.
func Schema(attrs int) *dataset.Schema { return SchemaK(attrs, 2) }

// SchemaK builds the dataset schema with k class labels GroupA, GroupB, ….
func SchemaK(attrs, k int) *dataset.Schema {
	if attrs < numBaseAttrs {
		attrs = numBaseAttrs
	}
	if k < 2 {
		k = 2
	}
	classes := make([]string, k)
	for i := range classes {
		classes[i] = "Group" + string(rune('A'+i))
	}
	s := &dataset.Schema{Classes: classes}
	elevels := []string{"e0", "e1", "e2", "e3", "e4"}
	cars := make([]string, 20)
	for i := range cars {
		cars[i] = fmt.Sprintf("make%d", i+1)
	}
	zips := make([]string, 9)
	for i := range zips {
		zips[i] = fmt.Sprintf("zip%d", i+1)
	}
	s.Attrs = []dataset.Attribute{
		{Name: "salary", Kind: dataset.Continuous},
		{Name: "commission", Kind: dataset.Continuous},
		{Name: "age", Kind: dataset.Continuous},
		{Name: "elevel", Kind: dataset.Categorical, Categories: elevels},
		{Name: "car", Kind: dataset.Categorical, Categories: cars},
		{Name: "zipcode", Kind: dataset.Categorical, Categories: zips},
		{Name: "hvalue", Kind: dataset.Continuous},
		{Name: "hyears", Kind: dataset.Continuous},
		{Name: "loan", Kind: dataset.Continuous},
	}
	// Noise attributes: alternate continuous and 10-way categorical.
	noiseCats := make([]string, 10)
	for i := range noiseCats {
		noiseCats[i] = fmt.Sprintf("v%d", i)
	}
	for i := numBaseAttrs; i < attrs; i++ {
		if (i-numBaseAttrs)%2 == 0 {
			s.Attrs = append(s.Attrs, dataset.Attribute{
				Name: fmt.Sprintf("noise%dc", i-numBaseAttrs),
				Kind: dataset.Continuous,
			})
		} else {
			s.Attrs = append(s.Attrs, dataset.Attribute{
				Name:       fmt.Sprintf("noise%dd", i-numBaseAttrs),
				Kind:       dataset.Categorical,
				Categories: append([]string(nil), noiseCats...),
			})
		}
	}
	return s
}

// tuple holds the canonical attribute values before encoding.
type tuple struct {
	salary, commission, age float64
	elevel, car, zipcode    int32
	hvalue, hyears, loan    float64
}

// Generate produces a labeled table according to the configuration. It is
// the materializing front of NewStreamer: both draw the same RNG streams in
// the same order, so a streamed dataset is row-for-row identical to a
// generated one.
func Generate(c Config) (*dataset.Table, error) {
	s, err := NewStreamer(c)
	if err != nil {
		return nil, err
	}
	tbl, err := dataset.NewTable(s.Schema())
	if err != nil {
		return nil, err
	}
	tbl.Grow(c.Tuples)
	for {
		tu, ok := s.Next()
		if !ok {
			return tbl, nil
		}
		tbl.AppendFast(tu)
	}
}

// drawTuple samples the nine canonical attributes per the AIS distributions.
func drawTuple(rng *rand.Rand) tuple {
	var v tuple
	v.salary = uniform(rng, 20000, 150000)
	if v.salary >= 75000 {
		v.commission = 0
	} else {
		v.commission = uniform(rng, 10000, 75000)
	}
	v.age = uniform(rng, 20, 80)
	v.elevel = int32(rng.Intn(5))
	v.car = int32(rng.Intn(20))
	v.zipcode = int32(rng.Intn(9))
	// hvalue depends on zipcode: uniform in [0.5*k*100000, 1.5*k*100000]
	// where k depends on zipcode (k = zipcode+1 in 1..9).
	k := float64(v.zipcode + 1)
	v.hvalue = uniform(rng, 0.5*k*100000, 1.5*k*100000)
	v.hyears = uniform(rng, 1, 30)
	v.loan = uniform(rng, 0, 500000)
	return v
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// perturb applies the AIS perturbation to continuous canonical attributes.
func perturb(rng *rand.Rand, v *tuple, p float64) {
	jitter := func(x, lo, hi float64) float64 {
		x += (rng.Float64() - 0.5) * p * (hi - lo)
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		return x
	}
	v.salary = jitter(v.salary, 20000, 150000)
	if v.commission > 0 {
		v.commission = jitter(v.commission, 10000, 75000)
	}
	v.age = jitter(v.age, 20, 80)
	k := float64(v.zipcode + 1)
	v.hvalue = jitter(v.hvalue, 0.5*k*100000, 1.5*k*100000)
	v.hyears = jitter(v.hyears, 1, 30)
	v.loan = jitter(v.loan, 0, 500000)
}

// classifyK returns the class code for a k-way labeling.
func classifyK(fn int, v tuple, k int) int32 {
	if k <= 2 {
		if classify(fn, v) {
			return 0
		}
		return 1
	}
	if fn == 1 { // natural age bands
		switch {
		case v.age < 40:
			return 0
		case v.age < 60:
			return 1
		default:
			return 2
		}
	}
	// Functions 7-10: band the disposable score into k equal-width ranges
	// over its practical span.
	var score, lo, hi float64
	switch fn {
	case 7:
		score = 0.67*(v.salary+v.commission) - 0.2*v.loan - 20000
		lo, hi = -100000, 120000
	case 8:
		score = 0.67*(v.salary+v.commission) - 5000*float64(v.elevel) - 20000
		lo, hi = -25000, 110000
	case 9:
		score = 0.67*(v.salary+v.commission) - 5000*float64(v.elevel) - 0.2*v.loan - 10000
		lo, hi = -120000, 115000
	default: // 10
		equity := 0.0
		if v.hyears >= 20 {
			equity = 0.1 * v.hvalue * (v.hyears - 20)
		}
		score = 0.67*(v.salary+v.commission) - 5000*float64(v.elevel) + 0.2*equity - 10000
		lo, hi = -25000, 300000
	}
	band := int((score - lo) / (hi - lo) * float64(k))
	if band < 0 {
		band = 0
	}
	if band >= k {
		band = k - 1
	}
	return int32(band)
}

// classify applies classification function fn (1..10); true means Group A.
func classify(fn int, v tuple) bool {
	switch fn {
	case 1:
		return v.age < 40 || v.age >= 60
	case 2:
		return (v.age < 40 && between(v.salary, 50000, 100000)) ||
			(v.age >= 40 && v.age < 60 && between(v.salary, 75000, 125000)) ||
			(v.age >= 60 && between(v.salary, 25000, 75000))
	case 3:
		return (v.age < 40 && (v.elevel == 0 || v.elevel == 1)) ||
			(v.age >= 40 && v.age < 60 && v.elevel >= 1 && v.elevel <= 3) ||
			(v.age >= 60 && v.elevel >= 2 && v.elevel <= 4)
	case 4:
		switch {
		case v.age < 40:
			if v.elevel <= 1 {
				return between(v.salary, 25000, 75000)
			}
			return between(v.salary, 50000, 100000)
		case v.age < 60:
			if v.elevel >= 1 && v.elevel <= 3 {
				return between(v.salary, 50000, 100000)
			}
			return between(v.salary, 75000, 125000)
		default:
			if v.elevel >= 2 && v.elevel <= 4 {
				return between(v.salary, 50000, 100000)
			}
			return between(v.salary, 25000, 75000)
		}
	case 5:
		switch {
		case v.age < 40:
			if between(v.salary, 50000, 100000) {
				return between(v.loan, 100000, 300000)
			}
			return between(v.loan, 200000, 400000)
		case v.age < 60:
			if between(v.salary, 75000, 125000) {
				return between(v.loan, 200000, 400000)
			}
			return between(v.loan, 300000, 500000)
		default:
			if between(v.salary, 25000, 75000) {
				return between(v.loan, 300000, 500000)
			}
			return between(v.loan, 100000, 300000)
		}
	case 6:
		total := v.salary + v.commission
		return (v.age < 40 && between(total, 50000, 100000)) ||
			(v.age >= 40 && v.age < 60 && between(total, 75000, 125000)) ||
			(v.age >= 60 && between(total, 25000, 75000))
	case 7:
		return disposable7(v) > 0
	case 8:
		return 0.67*(v.salary+v.commission)-5000*float64(v.elevel)-20000 > 0
	case 9:
		return 0.67*(v.salary+v.commission)-5000*float64(v.elevel)-0.2*v.loan-10000 > 0
	case 10:
		equity := 0.0
		if v.hyears >= 20 {
			equity = 0.1 * v.hvalue * (v.hyears - 20)
		}
		return 0.67*(v.salary+v.commission)-5000*float64(v.elevel)+0.2*equity-10000 > 0
	default:
		panic(fmt.Sprintf("synth: invalid function %d", fn))
	}
}

// disposable7 is Function 7's disposable income:
// 0.67*(salary+commission) - 0.2*loan - 20000.
func disposable7(v tuple) float64 {
	return 0.67*(v.salary+v.commission) - 0.2*v.loan - 20000
}

func between(x, lo, hi float64) bool { return x >= lo && x <= hi }
