package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestSchemaShape(t *testing.T) {
	s := Schema(9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumAttrs() != 9 || s.NumClasses() != 2 {
		t.Fatalf("shape %d/%d", s.NumAttrs(), s.NumClasses())
	}
	wantKinds := []dataset.Kind{
		dataset.Continuous, dataset.Continuous, dataset.Continuous,
		dataset.Categorical, dataset.Categorical, dataset.Categorical,
		dataset.Continuous, dataset.Continuous, dataset.Continuous,
	}
	for i, k := range wantKinds {
		if s.Attrs[i].Kind != k {
			t.Fatalf("attr %d kind %v, want %v", i, s.Attrs[i].Kind, k)
		}
	}
	// Padded schema alternates noise kinds and validates.
	s32 := Schema(32)
	if err := s32.Validate(); err != nil {
		t.Fatal(err)
	}
	if s32.NumAttrs() != 32 {
		t.Fatalf("want 32 attrs, got %d", s32.NumAttrs())
	}
	if s32.Attrs[9].Kind != dataset.Continuous || s32.Attrs[10].Kind != dataset.Categorical {
		t.Fatal("noise attributes should alternate continuous/categorical")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Function: 0, Tuples: 1},
		{Function: 11, Tuples: 1},
		{Function: 1, Tuples: -1},
		{Function: 1, Tuples: 1, Attrs: 5},
		{Function: 1, Tuples: 1, Perturbation: 2},
		{Function: 1, Tuples: 1, LabelNoise: -0.1},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestName(t *testing.T) {
	if got := (Config{Function: 7, Attrs: 32, Tuples: 250000}).Name(); got != "F7-A32-D250K" {
		t.Fatalf("Name = %q", got)
	}
	if got := (Config{Function: 1, Attrs: 9, Tuples: 123}).Name(); got != "F1-A9-D123" {
		t.Fatalf("Name = %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Function: 7, Attrs: 12, Tuples: 100, Seed: 42, Perturbation: 0.05}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumTuples(); i++ {
		if a.Class(i) != b.Class(i) || a.ContValue(0, i) != b.ContValue(0, i) {
			t.Fatalf("generation not deterministic at tuple %d", i)
		}
	}
	c, err := Generate(Config{Function: 7, Attrs: 12, Tuples: 100, Seed: 43, Perturbation: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumTuples(); i++ {
		if a.ContValue(0, i) != c.ContValue(0, i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different data")
	}
}

func TestAttributeRanges(t *testing.T) {
	tbl, err := Generate(Config{Function: 1, Attrs: 9, Tuples: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumTuples(); i++ {
		salary := tbl.ContValue(AttrSalary, i)
		if salary < 20000 || salary > 150000 {
			t.Fatalf("salary %g out of range", salary)
		}
		comm := tbl.ContValue(AttrCommission, i)
		if salary >= 75000 && comm != 0 {
			t.Fatalf("commission must be 0 for salary %g, got %g", salary, comm)
		}
		if salary < 75000 && (comm < 10000 || comm > 75000) {
			t.Fatalf("commission %g out of range", comm)
		}
		age := tbl.ContValue(AttrAge, i)
		if age < 20 || age > 80 {
			t.Fatalf("age %g out of range", age)
		}
		zip := tbl.CatValue(AttrZipcode, i)
		k := float64(zip + 1)
		hv := tbl.ContValue(AttrHvalue, i)
		if hv < 0.5*k*100000 || hv > 1.5*k*100000 {
			t.Fatalf("hvalue %g out of range for zip %d", hv, zip)
		}
		loan := tbl.ContValue(AttrLoan, i)
		if loan < 0 || loan > 500000 {
			t.Fatalf("loan %g out of range", loan)
		}
	}
}

// TestFunctionLabels verifies each classification function against a direct
// recomputation on the generated (unperturbed) attributes.
func TestFunctionLabels(t *testing.T) {
	for fn := 1; fn <= 10; fn++ {
		tbl, err := Generate(Config{Function: fn, Attrs: 9, Tuples: 500, Seed: int64(fn)})
		if err != nil {
			t.Fatal(err)
		}
		hist := tbl.ClassHistogram()
		if hist[0] == 0 || hist[1] == 0 {
			t.Errorf("F%d: degenerate class distribution %v", fn, hist)
		}
		for i := 0; i < tbl.NumTuples(); i++ {
			v := tuple{
				salary:     tbl.ContValue(AttrSalary, i),
				commission: tbl.ContValue(AttrCommission, i),
				age:        tbl.ContValue(AttrAge, i),
				elevel:     tbl.CatValue(AttrElevel, i),
				car:        tbl.CatValue(AttrCar, i),
				zipcode:    tbl.CatValue(AttrZipcode, i),
				hvalue:     tbl.ContValue(AttrHvalue, i),
				hyears:     tbl.ContValue(AttrHyears, i),
				loan:       tbl.ContValue(AttrLoan, i),
			}
			want := int32(1)
			if classify(fn, v) {
				want = 0
			}
			if tbl.Class(i) != want {
				t.Fatalf("F%d tuple %d: class %d, want %d", fn, i, tbl.Class(i), want)
			}
		}
	}
}

func TestF1IsAgeRule(t *testing.T) {
	tbl, err := Generate(Config{Function: 1, Attrs: 9, Tuples: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumTuples(); i++ {
		age := tbl.ContValue(AttrAge, i)
		want := int32(1)
		if age < 40 || age >= 60 {
			want = 0
		}
		if tbl.Class(i) != want {
			t.Fatalf("tuple %d age %g class %d", i, age, tbl.Class(i))
		}
	}
}

func TestLabelNoiseRate(t *testing.T) {
	n := 20000
	clean, err := Generate(Config{Function: 1, Attrs: 9, Tuples: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Generate(Config{Function: 1, Attrs: 9, Tuples: n, Seed: 5, LabelNoise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := 0; i < n; i++ {
		if clean.Class(i) != noisy.Class(i) {
			flipped++
		}
	}
	rate := float64(flipped) / float64(n)
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("label noise rate %.3f, want ≈0.10", rate)
	}
}

// Property: perturbation keeps canonical attributes within their domains.
func TestPerturbationStaysInRange(t *testing.T) {
	f := func(seed int64) bool {
		tbl, err := Generate(Config{Function: 7, Attrs: 9, Tuples: 50, Seed: seed, Perturbation: 0.3})
		if err != nil {
			return false
		}
		for i := 0; i < tbl.NumTuples(); i++ {
			s := tbl.ContValue(AttrSalary, i)
			a := tbl.ContValue(AttrAge, i)
			l := tbl.ContValue(AttrLoan, i)
			if s < 20000 || s > 150000 || a < 20 || a > 80 || l < 0 || l > 500000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTuples(t *testing.T) {
	tbl, err := Generate(Config{Function: 1, Attrs: 9, Tuples: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumTuples() != 0 {
		t.Fatal("want empty table")
	}
}

// TestStreamerMatchesGenerate checks the streaming generator is
// row-for-row identical to the materializing one for a config exercising
// every feature: noise attributes, perturbation, label noise and a
// multi-class labeling.
func TestStreamerMatchesGenerate(t *testing.T) {
	cfg := Config{
		Function: 7, Attrs: 14, Tuples: 5000, Seed: 99,
		Perturbation: 0.05, LabelNoise: 0.1, Classes: 3,
	}
	tbl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Remaining() != cfg.Tuples {
		t.Fatalf("Remaining() = %d, want %d", s.Remaining(), cfg.Tuples)
	}
	for i := 0; i < cfg.Tuples; i++ {
		tu, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at tuple %d of %d", i, cfg.Tuples)
		}
		if tu.Class != tbl.Class(i) {
			t.Fatalf("tuple %d: class %d, table has %d", i, tu.Class, tbl.Class(i))
		}
		for a := range s.Schema().Attrs {
			if s.Schema().Attrs[a].Kind == dataset.Continuous {
				if tu.Cont[a] != tbl.ContColumn(a)[i] {
					t.Fatalf("tuple %d attr %d: %v vs %v", i, a, tu.Cont[a], tbl.ContColumn(a)[i])
				}
			} else if tu.Cat[a] != tbl.CatColumn(a)[i] {
				t.Fatalf("tuple %d attr %d: %v vs %v", i, a, tu.Cat[a], tbl.CatColumn(a)[i])
			}
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream produced more than Tuples rows")
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining() = %d after exhaustion", s.Remaining())
	}
}

// TestSubSeedNoStreamCollision is the regression test for the hand-picked
// XOR sub-seed constants: under `Seed ^ 0x5DEECE66D` derivation, Seed=0's
// perturbation stream was Seed=0x5DEECE66D's main stream (and vice versa),
// so those two datasets shared perturbation jitter with each other's
// attribute draws. splitmix64 derivation must keep every (seed, stream)
// pair distinct.
func TestSubSeedNoStreamCollision(t *testing.T) {
	collides := func(a, b *rand.Rand) bool {
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	mk := func(seed int64) *Streamer {
		s, err := NewStreamer(Config{Function: 1, Tuples: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// The historical collisions: each side stream of seed 0 equaled the
	// main stream of the seed matching its old XOR constant.
	if collides(mk(0).perturbRng, mk(0x5DEECE66D).rng) {
		t.Fatal("seed 0 perturbation stream collides with seed 0x5DEECE66D main stream")
	}
	if collides(mk(0).noiseRng, mk(0x2545F4914F6CDD1D).rng) {
		t.Fatal("seed 0 noise stream collides with seed 0x2545F4914F6CDD1D main stream")
	}
	// And within one seed the three streams must be pairwise distinct.
	for _, seed := range []int64{0, 1, 42, -7} {
		a, b, c := mk(seed), mk(seed), mk(seed)
		if collides(a.rng, b.perturbRng) || collides(a.perturbRng, c.noiseRng) || collides(b.rng, c.noiseRng) {
			t.Fatalf("seed %d: sub-streams collide", seed)
		}
	}
}

// TestMainStreamUnchanged pins that the splitmix64 change left the main
// attribute stream seeded with Seed directly: unperturbed, noise-free
// datasets are byte-identical to historical output (first F1/seed-1 row).
func TestMainStreamUnchanged(t *testing.T) {
	s, err := NewStreamer(Config{Function: 1, Tuples: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tu, ok := s.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	// rand.New(rand.NewSource(1)) draws pinned by math/rand's generator.
	want := 20000 + rand.New(rand.NewSource(1)).Float64()*(150000-20000)
	if tu.Cont[AttrSalary] != want {
		t.Fatalf("salary %v, want %v: main stream no longer seeded with Seed", tu.Cont[AttrSalary], want)
	}
}

// TestDriftFlipsLabels checks the concept-drift scenario: same attribute
// draws as the no-drift stream, pre-drift labels from Function, post-drift
// labels from DriftFunction (matching a pure-DriftFunction stream row for
// row, since labeling consumes no RNG draws).
func TestDriftFlipsLabels(t *testing.T) {
	const at = 500
	base := Config{Function: 1, Tuples: 1500, Seed: 11}
	drifted := base
	drifted.DriftFunction = 7
	drifted.DriftAt = at
	pure7 := base
	pure7.Function = 7

	tb, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	td, err := Generate(drifted)
	if err != nil {
		t.Fatal(err)
	}
	t7, err := Generate(pure7)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < base.Tuples; i++ {
		if tb.ContValue(AttrSalary, i) != td.ContValue(AttrSalary, i) {
			t.Fatalf("row %d: drift changed attribute draws", i)
		}
		if i < at {
			if td.Class(i) != tb.Class(i) {
				t.Fatalf("row %d: pre-drift label differs from Function %d", i, base.Function)
			}
		} else {
			if td.Class(i) != t7.Class(i) {
				t.Fatalf("row %d: post-drift label differs from DriftFunction", i)
			}
			if td.Class(i) != tb.Class(i) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("drift never changed a label; F1 and F7 should disagree")
	}
}

// TestDriftValidation covers the drift config checks, including that the
// Classes setting must be valid for both functions.
func TestDriftValidation(t *testing.T) {
	bad := []Config{
		{Function: 1, Tuples: 1, DriftFunction: 11},
		{Function: 1, Tuples: 1, DriftFunction: -1},
		{Function: 1, Tuples: 1, DriftFunction: 7, DriftAt: -1},
		{Function: 1, Tuples: 1, Classes: 3, DriftFunction: 2}, // F2 has no 3-class form
		{Function: 7, Tuples: 1, Classes: 5, DriftFunction: 1}, // F1 has no 5-class form
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("drift config %d should fail", i)
		}
	}
	if _, err := Generate(Config{Function: 1, Tuples: 10, DriftFunction: 7, DriftAt: 5}); err != nil {
		t.Errorf("valid drift config rejected: %v", err)
	}
	if got := (Config{Function: 1, Attrs: 9, Tuples: 10000, DriftFunction: 7}).Name(); got != "F1toF7-A9-D10K" {
		t.Errorf("drift Name = %q", got)
	}
}
