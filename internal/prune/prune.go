// Package prune implements MDL-based decision-tree pruning in the style of
// SLIQ (Mehta, Agrawal, Rissanen, EDBT 1996), the pruning used by the
// SPRINT family. The paper reproduced here concentrates on the growth phase
// (pruning is <1% of total time and needs only the grown tree), but a
// complete classifier ships with it.
//
// The code length of a subtree rooted at t is
//
//	C_leaf(t)  = 1 + Errors(t)·log2(k)            (encode "leaf" + exceptions)
//	C_split(t) = 1 + L(test) + C(t.left) + C(t.right)
//
// where k is the number of classes and L(test) is the cost of describing
// the split test: log2(d) bits to pick the attribute plus log2(n−1) bits
// for a continuous cut point among the node's records or `card` bits for a
// categorical subset. The subtree is pruned to a leaf whenever
// C_leaf ≤ C_split. Costs are in bits; the model is deliberately the
// textbook one — simple, deterministic, and monotone in subtree error.
package prune

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/tree"
)

// Result summarizes a pruning pass.
type Result struct {
	// NodesBefore and NodesAfter count tree nodes around the pass.
	NodesBefore, NodesAfter int
	// Pruned is the number of subtrees collapsed into leaves.
	Pruned int
}

// MDL prunes the tree in place bottom-up and returns a summary. The tree's
// node class counts must be populated (they always are for trees built by
// internal/core).
func MDL(t *tree.Tree) Result {
	res := Result{NodesBefore: t.Stats().Nodes}
	if t.Root != nil {
		prune(t, t.Root, &res)
	}
	res.NodesAfter = t.Stats().Nodes
	return res
}

// leafCost is the bits needed to encode the node as a leaf.
func leafCost(t *tree.Tree, n *tree.Node) float64 {
	k := float64(len(t.Schema.Classes))
	return 1 + float64(n.Errors())*math.Log2(k)
}

// testCost is the bits needed to encode the node's split test.
func testCost(t *tree.Tree, n *tree.Node) float64 {
	d := float64(len(t.Schema.Attrs))
	cost := math.Log2(d)
	if n.Split.Kind == dataset.Continuous {
		points := float64(n.N - 1)
		if points < 1 {
			points = 1
		}
		cost += math.Log2(points)
	} else {
		cost += float64(t.Schema.Attrs[n.Split.Attr].Cardinality())
	}
	return cost
}

// prune returns the MDL cost of the (possibly pruned) subtree at n.
func prune(t *tree.Tree, n *tree.Node, res *Result) float64 {
	lc := leafCost(t, n)
	if n.IsLeaf() {
		return lc
	}
	sc := 1 + testCost(t, n) + prune(t, n.Left, res) + prune(t, n.Right, res)
	if lc <= sc {
		n.Split = nil
		n.Left = nil
		n.Right = nil
		res.Pruned++
		return lc
	}
	return sc
}

// MDLPartial prunes with SLIQ's partial-pruning option set: each internal
// node may stay a split, collapse to a leaf, or keep the split while
// collapsing just one child to a leaf. The option is encoded with 2 bits
// (4 outcomes) instead of full pruning's 1 bit. Partial pruning can only
// produce trees at most as large as full pruning's, at slightly higher
// code-length bookkeeping.
func MDLPartial(t *tree.Tree) Result {
	res := Result{NodesBefore: t.Stats().Nodes}
	if t.Root != nil {
		prunePartial(t, t.Root, &res)
	}
	res.NodesAfter = t.Stats().Nodes
	return res
}

// collapse turns n into a leaf, counting every removed split.
func collapse(n *tree.Node, res *Result) {
	if n.IsLeaf() {
		return
	}
	collapse(n.Left, res)
	collapse(n.Right, res)
	n.Split = nil
	n.Left = nil
	n.Right = nil
	res.Pruned++
}

// prunePartial returns the minimum MDL cost over the four SLIQ options and
// applies the winning one in place.
func prunePartial(t *tree.Tree, n *tree.Node, res *Result) float64 {
	lc := 2 + float64(n.Errors())*math.Log2(float64(len(t.Schema.Classes)))
	if n.IsLeaf() {
		return lc
	}
	test := testCost(t, n)
	cl := prunePartial(t, n.Left, res)
	cr := prunePartial(t, n.Right, res)
	leafL := 2 + float64(n.Left.Errors())*math.Log2(float64(len(t.Schema.Classes)))
	leafR := 2 + float64(n.Right.Errors())*math.Log2(float64(len(t.Schema.Classes)))

	both := 2 + test + cl + cr
	pruneAll := lc
	pruneLeft := 2 + test + leafL + cr
	pruneRight := 2 + test + cl + leafR

	best := both
	choice := 0
	if pruneLeft < best {
		best, choice = pruneLeft, 1
	}
	if pruneRight < best {
		best, choice = pruneRight, 2
	}
	if pruneAll <= best {
		best, choice = pruneAll, 3
	}
	switch choice {
	case 1:
		collapse(n.Left, res)
	case 2:
		collapse(n.Right, res)
	case 3:
		collapse(n, res)
	}
	return best
}
