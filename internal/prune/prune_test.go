package prune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/tree"
)

func buildNoisy(t *testing.T, noise float64) *tree.Tree {
	t.Helper()
	tbl, err := synth.Generate(synth.Config{
		Function: 1, Attrs: 9, Tuples: 3000, Seed: 11, LabelNoise: noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, MaxDepth: 14})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMDLShrinksNoisyTree(t *testing.T) {
	tr := buildNoisy(t, 0.08)
	before := tr.Stats()
	res := MDL(tr)
	after := tr.Stats()
	if res.NodesBefore != before.Nodes || res.NodesAfter != after.Nodes {
		t.Fatalf("result bookkeeping wrong: %+v vs %d→%d", res, before.Nodes, after.Nodes)
	}
	if after.Nodes >= before.Nodes {
		t.Fatalf("pruning did not shrink a noisy tree: %d → %d", before.Nodes, after.Nodes)
	}
	if res.Pruned == 0 {
		t.Fatal("no subtrees pruned")
	}
	// The pruned tree is still a valid binary tree with consistent counts.
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if n.IsLeaf() {
			if n.Left != nil || n.Right != nil {
				t.Fatal("leaf with children")
			}
			return
		}
		if n.Left == nil || n.Right == nil {
			t.Fatal("internal node missing children")
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root)
}

func TestMDLKeepsCleanStructure(t *testing.T) {
	// On clean F1 data, the true concept needs ~2 age splits; pruning must
	// not collapse the tree to a single leaf.
	tr := buildNoisy(t, 0)
	MDL(tr)
	if tr.Root.IsLeaf() {
		t.Fatal("pruning destroyed a clean tree")
	}
	// The surviving tree must still classify the training concept well —
	// check via its own error counts: total errors small.
	var errs, n int64
	for _, leaf := range tr.CollectLeaves() {
		errs += leaf.Errors()
		n += leaf.N
	}
	if float64(errs)/float64(n) > 0.05 {
		t.Fatalf("pruned clean tree has %.1f%% training error", 100*float64(errs)/float64(n))
	}
}

func TestMDLIdempotent(t *testing.T) {
	tr := buildNoisy(t, 0.05)
	MDL(tr)
	mid := tr.Stats()
	res := MDL(tr)
	if tr.Stats().Nodes != mid.Nodes || res.Pruned != 0 {
		t.Fatalf("second pass pruned %d more nodes", res.Pruned)
	}
}

func TestMDLOnLeafOnlyTree(t *testing.T) {
	tbl, err := synth.Generate(synth.Config{Function: 1, Attrs: 9, Tuples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, MaxDepth: 1, MinSplit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() {
		t.Skip("expected a leaf-only tree")
	}
	res := MDL(tr)
	if res.Pruned != 0 || res.NodesBefore != 1 || res.NodesAfter != 1 {
		t.Fatalf("leaf-only prune result %+v", res)
	}
}

func TestMDLImprovesNoisyHoldout(t *testing.T) {
	train, err := synth.Generate(synth.Config{
		Function: 2, Attrs: 9, Tuples: 4000, Seed: 21, LabelNoise: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clean test data from a different seed: pruning should generalize at
	// least as well as the overfit tree.
	test, err := synth.Generate(synth.Config{Function: 2, Attrs: 9, Tuples: 4000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Build(train, core.Config{Algorithm: core.Serial})
	if err != nil {
		t.Fatal(err)
	}
	accBefore := tr.Accuracy(test)
	MDL(tr)
	accAfter := tr.Accuracy(test)
	if accAfter+0.01 < accBefore {
		t.Fatalf("pruning hurt holdout accuracy: %.4f → %.4f", accBefore, accAfter)
	}
}

func TestMDLPartialAtLeastAsAggressive(t *testing.T) {
	full := buildNoisy(t, 0.08)
	part := buildNoisy(t, 0.08) // identical tree (deterministic build)
	MDL(full)
	MDLPartial(part)
	if part.Stats().Nodes > full.Stats().Nodes {
		t.Fatalf("partial pruning left more nodes (%d) than full pruning (%d)",
			part.Stats().Nodes, full.Stats().Nodes)
	}
	// Structure stays a valid binary tree.
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if n.IsLeaf() {
			if n.Left != nil || n.Right != nil {
				t.Fatal("leaf with children")
			}
			return
		}
		if n.Left == nil || n.Right == nil {
			t.Fatal("internal node missing children")
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(part.Root)
}

func TestMDLPartialIdempotent(t *testing.T) {
	tr := buildNoisy(t, 0.05)
	MDLPartial(tr)
	mid := tr.Stats().Nodes
	res := MDLPartial(tr)
	if tr.Stats().Nodes != mid || res.Pruned != 0 {
		t.Fatalf("second partial pass pruned %d more nodes", res.Pruned)
	}
}

func TestMDLPartialHoldout(t *testing.T) {
	train, err := synth.Generate(synth.Config{
		Function: 2, Attrs: 9, Tuples: 4000, Seed: 21, LabelNoise: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := synth.Generate(synth.Config{Function: 2, Attrs: 9, Tuples: 4000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Build(train, core.Config{Algorithm: core.Serial})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Accuracy(test)
	MDLPartial(tr)
	if after := tr.Accuracy(test); after+0.01 < before {
		t.Fatalf("partial pruning hurt holdout accuracy: %.4f -> %.4f", before, after)
	}
}
