package sliq

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/tree"
)

// TestSLIQMatchesSPRINT is the headline invariant: SLIQ's class-list
// organization and SPRINT's partitioned attribute lists are different data
// layouts for the same algorithm, so the trees must be identical. This is a
// second, independent cross-check of the SPRINT engine (besides the
// direct-recursion oracle).
func TestSLIQMatchesSPRINT(t *testing.T) {
	for _, cse := range []struct {
		fn, attrs, n int
		seed         int64
		perturb      float64
		classes      int
	}{
		{1, 9, 800, 1, 0, 0},
		{2, 9, 600, 2, 0.05, 0},
		{5, 12, 500, 3, 0.05, 0},
		{7, 9, 1000, 4, 0.05, 0},
		{7, 9, 800, 5, 0, 4}, // multiclass
		{10, 9, 600, 6, 0.05, 0},
	} {
		name := fmt.Sprintf("F%d-seed%d", cse.fn, cse.seed)
		t.Run(name, func(t *testing.T) {
			tbl, err := synth.Generate(synth.Config{
				Function: cse.fn, Attrs: cse.attrs, Tuples: cse.n,
				Seed: cse.seed, Perturbation: cse.perturb, Classes: cse.classes,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, MaxDepth: 10})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Build(tbl, Config{MaxDepth: 10})
			if err != nil {
				t.Fatal(err)
			}
			if !tree.Equal(want, got) {
				t.Fatalf("SLIQ differs from SPRINT: %s", tree.Diff(want, got))
			}
			// Identical BFS ids too, since both renumber the same way.
			if want.Root.ID != got.Root.ID {
				t.Fatal("id numbering differs")
			}
		})
	}
}

func TestSLIQStoppingRules(t *testing.T) {
	tbl, err := synth.Generate(synth.Config{Function: 7, Attrs: 9, Tuples: 800, Seed: 9, Perturbation: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := Build(tbl, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st := shallow.Stats(); st.Levels > 4 {
		t.Fatalf("levels = %d with MaxDepth 3", st.Levels)
	}
	chunky, err := Build(tbl, Config{MinSplit: 200})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if n.IsLeaf() {
			return
		}
		if n.N < 200 {
			t.Fatalf("internal node smaller than MinSplit: %d", n.N)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(chunky.Root)
}

func TestSLIQValidation(t *testing.T) {
	tbl, err := synth.Generate(synth.Config{Function: 1, Attrs: 9, Tuples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(tbl, Config{MinSplit: 1}); err == nil {
		t.Fatal("MinSplit=1 accepted")
	}
	empty, err := synth.Generate(synth.Config{Function: 1, Attrs: 9, Tuples: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(empty, Config{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestSLIQPureRoot(t *testing.T) {
	// All one class: a single-leaf tree.
	tbl, err := synth.Generate(synth.Config{Function: 1, Attrs: 9, Tuples: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Filter to a pure subset via MinSplit larger than n.
	tr, err := Build(tbl, Config{MinSplit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() {
		t.Fatal("root should stay a leaf when below MinSplit")
	}
}

// BenchmarkSLIQvsSPRINT compares the two organizations' serial build
// throughput on the same dataset (SLIQ avoids list repartitioning but pays
// class-list indirection on every record touch).
func BenchmarkSLIQvsSPRINT(b *testing.B) {
	tbl, err := synth.Generate(synth.Config{
		Function: 7, Attrs: 16, Tuples: 20000, Seed: 1, Perturbation: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SLIQ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(tbl, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SPRINT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
