// Package sliq implements the SLIQ classifier (Mehta, Agrawal & Rissanen,
// EDBT 1996), the direct predecessor of SPRINT that the paper's §2 builds
// on. SLIQ differs from SPRINT in its data organization, not its output:
//
//   - attribute lists hold (value, record-id) pairs only and are created
//     and sorted ONCE — they are never partitioned as the tree grows;
//   - a memory-resident *class list* maps every record to its current leaf
//     (this in-memory structure is SLIQ's scalability limit and SPRINT's
//     raison d'être);
//   - one scan of an attribute's static list evaluates that attribute for
//     EVERY leaf of the level simultaneously, because each record's leaf is
//     found through the class list and records of a leaf appear in sorted
//     order within the global sorted list.
//
// Given the same split-selection rules, SLIQ grows exactly the same tree as
// SPRINT; the test suite uses this as another independent cross-check of
// the SPRINT engine. (The class-list update after a level is done by
// re-evaluating each leaf's winning test against the columnar table, which
// is equivalent to SLIQ's winner-list scan.)
package sliq

import (
	"fmt"
	"sort"

	"repro/internal/alist"
	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/tree"
)

// Config parameterizes a SLIQ build.
type Config struct {
	// MinSplit stops splitting leaves with fewer tuples. Default 2.
	MinSplit int64
	// MaxDepth bounds the tree depth when > 0.
	MaxDepth int
	// MaxEnumCard overrides the categorical subset-enumeration threshold
	// when > 0.
	MaxEnumCard int
}

// entry is one attribute-list element: a value and the record it belongs to.
type entry struct {
	value float64
	rec   int32
}

// Build grows a decision tree over tbl with the SLIQ organization.
func Build(tbl *dataset.Table, cfg Config) (*tree.Tree, error) {
	if cfg.MinSplit == 0 {
		cfg.MinSplit = 2
	}
	if cfg.MinSplit < 2 {
		return nil, fmt.Errorf("sliq: MinSplit must be >= 2, got %d", cfg.MinSplit)
	}
	n := tbl.NumTuples()
	if n == 0 {
		return nil, fmt.Errorf("sliq: empty training set")
	}
	schema := tbl.Schema()
	nattr := schema.NumAttrs()
	nclass := schema.NumClasses()

	// Setup: one static attribute list per attribute, sorted once for
	// continuous attributes (ties broken by record id for determinism,
	// matching the SPRINT engine's pre-sort).
	lists := make([][]entry, nattr)
	for a := 0; a < nattr; a++ {
		list := make([]entry, n)
		if schema.Attrs[a].Kind == dataset.Continuous {
			col := tbl.ContColumn(a)
			for i := 0; i < n; i++ {
				list[i] = entry{value: col[i], rec: int32(i)}
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].value != list[j].value {
					return list[i].value < list[j].value
				}
				return list[i].rec < list[j].rec
			})
		} else {
			col := tbl.CatColumn(a)
			for i := 0; i < n; i++ {
				list[i] = entry{value: float64(col[i]), rec: int32(i)}
			}
		}
		lists[a] = list
	}

	// The class list: each record's class and current leaf.
	leafOf := make([]int32, n)

	rootHist := make([]int64, nclass)
	for i := 0; i < n; i++ {
		rootHist[tbl.Class(i)]++
	}
	root := &tree.Node{
		Level:       0,
		N:           int64(n),
		ClassCounts: rootHist,
		Class:       tree.MajorityClass(rootHist),
	}

	terminal := func(level int, cnt int64, hist []int64) bool {
		if cnt < cfg.MinSplit {
			return true
		}
		if cfg.MaxDepth > 0 && level >= cfg.MaxDepth {
			return true
		}
		for _, c := range hist {
			if c == cnt {
				return true
			}
		}
		return false
	}

	type liveLeaf struct {
		node *tree.Node
		hist []int64
		win  split.Candidate
	}
	frontier := []*liveLeaf{}
	if !terminal(0, root.N, rootHist) {
		frontier = append(frontier, &liveLeaf{node: root, hist: rootHist})
	}

	level := 0
	for len(frontier) > 0 {
		// E: one scan per attribute evaluates every leaf of the level.
		for a := 0; a < nattr; a++ {
			if schema.Attrs[a].Kind == dataset.Continuous {
				evals := make([]*split.ContEval, len(frontier))
				for _, en := range lists[a] {
					li := leafOf[en.rec]
					if li < 0 {
						continue // record parked in a dead subtree
					}
					l := frontier[li]
					if evals[li] == nil {
						evals[li] = split.NewContEval(a, l.hist)
					}
					evals[li].Push(toRecord(en, tbl))
				}
				for li, ev := range evals {
					if ev == nil {
						continue
					}
					if cand := ev.Finish(); cand.Better(frontier[li].win) {
						frontier[li].win = cand
					}
				}
				continue
			}
			card := schema.Attrs[a].Cardinality()
			evals := make([]*split.CatEval, len(frontier))
			for _, en := range lists[a] {
				li := leafOf[en.rec]
				if li < 0 {
					continue
				}
				if evals[li] == nil {
					evals[li] = split.NewCatEval(a, card, frontier[li].hist, cfg.MaxEnumCard)
				}
				evals[li].Push(toRecord(en, tbl))
			}
			for li, ev := range evals {
				if ev == nil {
					continue
				}
				if cand := ev.Finish(); cand.Better(frontier[li].win) {
					frontier[li].win = cand
				}
			}
		}

		// W + class-list update: apply each leaf's winner to its records,
		// gathering child histograms and reassigning leaf pointers.
		type childSlot struct {
			node *tree.Node
			hist []int64
			live int32 // index in the next frontier, or -1
		}
		children := make([][2]*childSlot, len(frontier))
		for li, l := range frontier {
			if !l.win.Valid {
				continue
			}
			mk := func() *childSlot {
				return &childSlot{hist: make([]int64, nclass), live: -1}
			}
			children[li] = [2]*childSlot{mk(), mk()}
		}
		for rec := 0; rec < n; rec++ {
			li := leafOf[rec]
			if li < 0 {
				continue
			}
			l := frontier[li]
			if !l.win.Valid {
				continue
			}
			var v float64
			if l.win.Kind == dataset.Continuous {
				v = tbl.ContValue(l.win.Attr, rec)
			} else {
				v = float64(tbl.CatValue(l.win.Attr, rec))
			}
			side := 1
			if l.win.GoesLeft(v) {
				side = 0
			}
			children[li][side].hist[tbl.Class(rec)]++
		}

		// Materialize child nodes, decide which stay live, and build the
		// next frontier in leaf order (left before right) so the result
		// is structurally identical to the SPRINT engine's.
		var next []*liveLeaf
		for li, l := range frontier {
			if !l.win.Valid {
				continue
			}
			winCopy := l.win
			l.node.Split = &winCopy
			for side, c := range children[li] {
				var cnt int64
				for _, x := range c.hist {
					cnt += x
				}
				c.node = &tree.Node{
					Level:       level + 1,
					N:           cnt,
					ClassCounts: c.hist,
					Class:       tree.MajorityClass(c.hist),
				}
				if side == 0 {
					l.node.Left = c.node
				} else {
					l.node.Right = c.node
				}
				if !terminal(level+1, cnt, c.hist) {
					c.live = int32(len(next))
					next = append(next, &liveLeaf{node: c.node, hist: c.hist})
				}
			}
		}

		// Reassign the class list to next-frontier indices.
		for rec := 0; rec < n; rec++ {
			li := leafOf[rec]
			if li < 0 {
				continue
			}
			l := frontier[li]
			if !l.win.Valid {
				leafOf[rec] = -1 // leaf stayed a leaf; record is done
				continue
			}
			var v float64
			if l.win.Kind == dataset.Continuous {
				v = tbl.ContValue(l.win.Attr, rec)
			} else {
				v = float64(tbl.CatValue(l.win.Attr, rec))
			}
			side := 1
			if l.win.GoesLeft(v) {
				side = 0
			}
			leafOf[rec] = children[li][side].live
		}
		frontier = next
		level++
	}

	t := &tree.Tree{Root: root, Schema: schema}
	renumberBFS(t)
	return t, nil
}

// toRecord adapts a list entry to the split evaluators' record type. SLIQ
// lists do not carry the class; it comes from the class list (here: the
// table's class column, which is that list's backing data).
func toRecord(en entry, tbl *dataset.Table) alist.Record {
	return alist.Record{Value: en.value, Tid: uint32(en.rec), Class: tbl.Class(int(en.rec))}
}

func renumberBFS(t *tree.Tree) {
	if t.Root == nil {
		return
	}
	id := 0
	queue := []*tree.Node{t.Root}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		nd.ID = id
		id++
		if !nd.IsLeaf() {
			queue = append(queue, nd.Left, nd.Right)
		}
	}
}
