package sim

import (
	"math"

	"repro/internal/trace"
)

// runWindow simulates the two windowed attribute-data-parallel schemes.
//
// FWK (moving=false): leaves of a level are processed in blocks of K; inside
// a block, processors grab (leaf, attribute) E units leaf by leaf, the last
// processor finishing a leaf's evaluation immediately performs its W
// (pipelining W_i with E_{i+1..K}), a barrier ends the block's evaluation,
// the block's S units are grabbed dynamically, and a second barrier ends the
// block.
//
// MWK (moving=true): no block barriers. Each processor walks the level's
// leaves in order; before touching leaf i it waits on leaf i−K's "done"
// condition (W complete); after a leaf's E units are exhausted it waits for
// that leaf's W and grabs the leaf's S units. One barrier per level.
func (s *simState) runWindow(moving bool) {
	ws := identity(s.procs)
	K := s.windowK
	for li := range s.tr.Levels {
		lv := &s.tr.Levels[li]
		n := len(lv.Leaves)
		if n == 0 {
			continue
		}
		if !moving {
			for lo := 0; lo < n; lo += K {
				hi := lo + K
				if hi > n {
					hi = n
				}
				s.fwkBlock(ws, li, lo, hi)
			}
			// Level bookkeeping barrier (frontier swap by the master).
			s.barrierAll(ws)
			continue
		}
		s.mwkLeaves(ws, lv, 0, n)
		s.barrierAll(ws)
	}
}

// fwkBlock simulates one FWK block: pipelined E+W, barrier, dynamic S,
// barrier.
func (s *simState) fwkBlock(ws []int, level, lo, hi int) {
	lv := &s.tr.Levels[level]
	nattr := s.tr.NAttrs
	type leafSt struct {
		next int // next E attribute to grab
		done int // completed E units
	}
	leaves := make([]leafSt, hi-lo)
	pos := make([]int, len(ws)) // per-processor leaf cursor within the block
	active := len(ws)
	for active > 0 {
		// Dispatch the runnable processor with the smallest clock.
		w := -1
		for i := range ws {
			if pos[i] >= hi-lo {
				continue
			}
			if w < 0 || s.clock[ws[i]] < s.clock[ws[w]] {
				w = i
			}
		}
		if w < 0 {
			break
		}
		i := pos[w]
		lf := &lv.Leaves[lo+i]
		st := &leaves[i]
		if st.next < nattr {
			a := st.next
			st.next++
			s.exec(ws[w], lf.E[a])
			st.done++
			if st.done == nattr {
				// Last processor finishing leaf i performs W, overlapped
				// with other processors' evaluation of later leaves.
				s.clock[ws[w]] += lf.W
				s.busy[ws[w]] += lf.W
			}
			continue
		}
		pos[w]++
		if pos[w] >= hi-lo {
			active--
		}
	}
	// End-of-block barrier, then the block's S units dynamically.
	s.barrierAll(ws)
	var sCosts []float64
	for i := lo; i < hi; i++ {
		sCosts = append(sCosts, lv.Leaves[i].S...)
	}
	s.listSchedule(ws, sCosts)
	s.barrierAll(ws)
}

// mwkLeaves simulates the MWK policy over leaves [lo,hi) of a level with
// the given processors (the whole level for the MWK scheme; a group's
// slice for the SUBTREE+MWK hybrid). Mirroring the
// goroutine driver: processors sweep the leaves in order; the last
// processor to finish a leaf's E units executes its W and signals the leaf
// done; S units are grabbed during the sweep only when the leaf's W has
// already completed at the processor's current time (otherwise the
// processor keeps moving — this is the W/E pipeline overlap); a completion
// sweep then drains any deferred S units.
func (s *simState) mwkLeaves(ws []int, lv *trace.Level, lo, hi int) {
	nattr := s.tr.NAttrs
	n := hi - lo
	K := s.windowK

	type leafSt struct {
		eNext int
		sNext int
		wDone float64 // time W completed; NaN while pending
	}
	leaves := make([]leafSt, n)
	for i := range leaves {
		leaves[i].wDone = math.NaN()
	}
	// Each processor runs two cursors, exactly as a driver worker does:
	// the main sweep (E + pipelined W + opportunistic S) over all leaves,
	// then — immediately, without waiting for other processors — its own
	// completion sweep draining deferred S units.
	pos := make([]int, len(ws))  // main-sweep leaf cursor
	cpos := make([]int, len(ws)) // completion-sweep leaf cursor

	for {
		// Pick the runnable processor with the smallest clock. A
		// main-sweep processor is blocked while the window throttle's
		// condition (leaf pos−K done) is unresolved; a completion-sweep
		// processor while its current leaf's W is unsignalled.
		w := -1
		for i := range ws {
			switch {
			case pos[i] < n:
				if pos[i] >= K && math.IsNaN(leaves[pos[i]-K].wDone) {
					continue
				}
			case cpos[i] < n:
				if math.IsNaN(leaves[cpos[i]].wDone) {
					continue
				}
			default:
				continue
			}
			if w < 0 || s.clock[ws[i]] < s.clock[ws[w]] {
				w = i
			}
		}
		if w < 0 {
			done := true
			for i := range ws {
				if pos[i] < n || cpos[i] < n {
					done = false
					break
				}
			}
			if done {
				break
			}
			// Cannot happen: the smallest unfinished position's
			// dependency leaf has all units executed, hence wDone set.
			panic("sim: MWK deadlock — no runnable processor")
		}

		if pos[w] < n {
			// Main sweep.
			i := pos[w]
			lf := &lv.Leaves[lo+i]
			st := &leaves[i]
			// Condition wait on leaf i−K: charge a cond pair if the
			// processor actually had to wait.
			if i >= K {
				if t := leaves[i-K].wDone; s.clock[ws[w]] < t {
					s.clock[ws[w]] = t + s.p.Cond
				}
			}
			if st.eNext < nattr {
				a := st.eNext
				st.eNext++
				s.exec(ws[w], lf.E[a])
				if st.eNext == nattr {
					// Last processor finishing leaf i performs W and
					// signals the leaf done.
					s.clock[ws[w]] += lf.W
					s.busy[ws[w]] += lf.W
					st.wDone = s.clock[ws[w]]
				}
				continue
			}
			// Opportunistic S: only if the leaf's W completed by now.
			if !math.IsNaN(st.wDone) && st.wDone <= s.clock[ws[w]] && st.sNext < nattr {
				a := st.sNext
				st.sNext++
				s.exec(ws[w], lf.S[a])
				continue
			}
			pos[w]++
			continue
		}

		// Completion sweep (wDone of cpos[w] is set here).
		i := cpos[w]
		lf := &lv.Leaves[lo+i]
		st := &leaves[i]
		if t := st.wDone; s.clock[ws[w]] < t {
			s.clock[ws[w]] = t + s.p.Cond
		}
		if st.sNext < nattr {
			a := st.sNext
			st.sNext++
			s.exec(ws[w], lf.S[a])
			continue
		}
		cpos[w]++
	}
}
