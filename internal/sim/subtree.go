package sim

import (
	"container/heap"
	"sort"
)

// stGroup is a simulated processor group working on a contiguous slice of
// one level's leaves.
type stGroup struct {
	procs  []int
	level  int
	lo, hi int     // leaf range within the level
	end    float64 // completion time of the group's level
}

// runSubtree simulates the SUBTREE scheme. When a group is formed, its
// level is simulated immediately (its processors are private, so clocks can
// advance eagerly); the group *transitions* — dying into the FREE queue, or
// grabbing idle processors and continuing/splitting — are processed in
// completion-time order, which keeps the FREE queue faithful: a master
// draining the queue at time T sees exactly the processors enqueued by
// groups that completed before T.
func (s *simState) runSubtree() {
	if len(s.tr.Levels) == 0 {
		return
	}
	// childStart[l][j] = index in level l+1 of the first child of leaf j.
	childStart := make([][]int, len(s.tr.Levels))
	for l := range s.tr.Levels {
		lv := &s.tr.Levels[l]
		starts := make([]int, len(lv.Leaves)+1)
		for j := range lv.Leaves {
			starts[j+1] = starts[j] + lv.Leaves[j].NValidChildren
		}
		childStart[l] = starts
	}

	var events groupHeap
	var free []int // FREE queue of idle processor ids

	form := func(procs []int, level, lo, hi int) {
		g := &stGroup{procs: procs, level: level, lo: lo, hi: hi}
		s.simulateGroupLevel(g)
		heap.Push(&events, g)
	}

	form(identity(s.procs), 0, 0, len(s.tr.Levels[0].Leaves))

	for events.Len() > 0 {
		g := heap.Pop(&events).(*stGroup)

		// The group's next frontier is its leaves' children.
		nextLo := childStart[g.level][g.lo]
		nextHi := childStart[g.level][g.hi]
		if g.level+1 >= len(s.tr.Levels) || nextLo == nextHi {
			// Subtree finished: members join the FREE queue.
			for _, w := range g.procs {
				s.clock[w] += s.p.Queue
			}
			free = append(free, g.procs...)
			continue
		}

		// Master grabs all idle processors; they resume at this group's
		// completion time (they were enqueued earlier and slept since).
		procs := append(append([]int(nil), g.procs...), free...)
		for _, w := range free {
			if s.clock[w] < g.end {
				s.clock[w] = g.end
			}
		}
		free = free[:0]
		sort.Ints(procs)

		if nextHi-nextLo == 1 || len(procs) == 1 {
			// One leaf (all processors attack it) or one processor (it
			// keeps the whole frontier).
			form(procs, g.level+1, nextLo, nextHi)
			continue
		}
		// Split leaves by tuple weight (contiguous halves) and processors
		// in half; recurse as two groups.
		nlv := &s.tr.Levels[g.level+1]
		var total int64
		for j := nextLo; j < nextHi; j++ {
			total += nlv.Leaves[j].N
		}
		var acc int64
		cut := nextLo + 1
		for j := nextLo; j < nextHi; j++ {
			acc += nlv.Leaves[j].N
			if acc >= total/2 {
				cut = j + 1
				break
			}
		}
		if cut >= nextHi {
			cut = nextHi - 1
		}
		if cut <= nextLo {
			cut = nextLo + 1
		}
		half := (len(procs) + 1) / 2
		form(procs[:half], g.level+1, nextLo, cut)
		form(procs[half:], g.level+1, cut, nextHi)
	}
}

// simulateGroupLevel runs one level over the group's leaf slice — with the
// BASIC policy by default, or the MWK policy for the SUBTREE+MWK hybrid —
// and records the group's completion time.
func (s *simState) simulateGroupLevel(g *stGroup) {
	lv := &s.tr.Levels[g.level]
	if s.subtreeInnerMWK {
		s.mwkLeaves(g.procs, lv, g.lo, g.hi)
		end := s.barrierAll(g.procs)
		s.clock[g.procs[0]] += s.p.Queue
		g.end = end + s.p.Queue
		return
	}
	eCosts := make([]float64, s.tr.NAttrs)
	sCosts := make([]float64, s.tr.NAttrs)
	var wCost float64
	for j := g.lo; j < g.hi; j++ {
		lf := &lv.Leaves[j]
		for a := 0; a < s.tr.NAttrs; a++ {
			eCosts[a] += lf.E[a]
			sCosts[a] += lf.S[a]
		}
		wCost += lf.W
	}
	s.listSchedule(g.procs, eCosts)
	s.barrierAll(g.procs)
	s.clock[g.procs[0]] += wCost
	s.busy[g.procs[0]] += wCost
	s.barrierAll(g.procs)
	s.listSchedule(g.procs, sCosts)
	end := s.barrierAll(g.procs)
	// Master checks the FREE queue once per level.
	s.clock[g.procs[0]] += s.p.Queue
	g.end = end + s.p.Queue
}

// groupHeap orders groups by completion time.
type groupHeap []*stGroup

func (h groupHeap) Len() int           { return len(h) }
func (h groupHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h groupHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x any)        { *h = append(*h, x.(*stGroup)) }
func (h *groupHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
