package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/trace"
)

// flatTrace builds a synthetic one-level trace with uniform unit costs.
func flatTrace(leaves, attrs int, e, w, s float64) *trace.Trace {
	tr := &trace.Trace{Dataset: "flat", NAttrs: attrs, NTuples: leaves * 10}
	lv := trace.Level{}
	for i := 0; i < leaves; i++ {
		lf := trace.Leaf{Parent: 0, N: 10, E: make([]float64, attrs), S: make([]float64, attrs), Split: true}
		if i == 0 {
			lf.Parent = -1
		}
		for a := 0; a < attrs; a++ {
			lf.E[a] = e
			lf.S[a] = s
		}
		lf.W = w
		lv.Leaves = append(lv.Leaves, lf)
	}
	// Single-level trace: leaves beyond the first need a one-leaf root
	// chain; simpler: put all leaves at level 0 is invalid (only one root),
	// so build two levels: a cheap root producing the leaves.
	if leaves == 1 {
		lv.Leaves[0].NValidChildren = 0
		tr.Levels = []trace.Level{lv}
		return tr
	}
	root := trace.Leaf{
		Parent: -1, N: int64(leaves * 10),
		E: make([]float64, attrs), S: make([]float64, attrs),
		W: 1e-9, Split: true, NValidChildren: leaves,
	}
	for a := 0; a < attrs; a++ {
		root.E[a] = 1e-9
		root.S[a] = 1e-9
	}
	for i := range lv.Leaves {
		lv.Leaves[i].Parent = 0
	}
	tr.Levels = []trace.Level{{Leaves: []trace.Leaf{root}}, lv}
	return tr
}

// NValidChildren of the second level's leaves default to 0 — consistent.

func TestSimulateValidation(t *testing.T) {
	tr := flatTrace(1, 2, 1e-3, 1e-4, 1e-3)
	if _, err := Simulate(tr, Basic, 0, 4, DefaultParams()); err == nil {
		t.Fatal("procs=0 accepted")
	}
	if _, err := Simulate(tr, MWK, 1, -1, DefaultParams()); err == nil {
		t.Fatal("windowK<0 accepted")
	}
	if _, err := Simulate(tr, Scheme(9), 1, 4, DefaultParams()); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	bad := flatTrace(1, 2, 1e-3, 1e-4, 1e-3)
	bad.Levels[0].Leaves[0].E = nil
	if _, err := Simulate(bad, Basic, 1, 4, DefaultParams()); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{Basic: "BASIC", FWK: "FWK", MWK: "MWK", Subtree: "SUBTREE", RecPar: "RECPAR"} {
		if s.String() != want {
			t.Fatalf("%d → %q", int(s), s.String())
		}
	}
}

// Property: simulated time at P=1 ≈ serial sum + synchronization; more
// processors never increase BASIC's E+S portions beyond the P=1 time.
func TestMonotoneSpeedup(t *testing.T) {
	tr := flatTrace(8, 16, 2e-3, 5e-4, 1e-3)
	for _, scheme := range []Scheme{Basic, FWK, MWK, Subtree, RecPar, SubtreeMWK} {
		prev := math.Inf(1)
		for _, p := range []int{1, 2, 4, 8} {
			r, err := Simulate(tr, scheme, p, 4, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if r.BuildSeconds <= 0 {
				t.Fatalf("%v P%d: nonpositive time", scheme, p)
			}
			// Allow a tiny tolerance: sync overhead grows with P.
			if r.BuildSeconds > prev*1.10 {
				t.Fatalf("%v: time grew from %g to %g at P=%d", scheme, prev, r.BuildSeconds, p)
			}
			prev = r.BuildSeconds
			if eff := r.Efficiency(); eff < 0 || eff > 1.0001 {
				t.Fatalf("%v P%d: efficiency %g out of range", scheme, p, eff)
			}
		}
	}
}

// Serial consistency: at P=1 each scheme's time is close to the trace's
// serial unit-cost sum (plus small synchronization overhead).
func TestSerialConsistency(t *testing.T) {
	tr := flatTrace(6, 8, 1e-3, 2e-4, 5e-4)
	serial := tr.SerialSeconds()
	for _, scheme := range []Scheme{Basic, FWK, MWK, Subtree} {
		r, err := Simulate(tr, scheme, 1, 4, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if r.BuildSeconds < serial {
			t.Fatalf("%v: simulated %g < serial work %g", scheme, r.BuildSeconds, serial)
		}
		if r.BuildSeconds > serial*1.5 {
			t.Fatalf("%v: simulated %g ≫ serial work %g (overhead model broken)",
				scheme, r.BuildSeconds, serial)
		}
	}
}

// BASIC's W phase is a serial bottleneck: with W dominating, speedup must
// stay near 1 for BASIC while MWK pipelines it across leaves.
func TestBasicWBottleneck(t *testing.T) {
	tr := flatTrace(16, 4, 1e-5, 5e-3, 1e-5) // W ≫ E,S
	basic1, _ := Simulate(tr, Basic, 1, 4, DefaultParams())
	basic4, _ := Simulate(tr, Basic, 4, 4, DefaultParams())
	mwk4, _ := Simulate(tr, MWK, 4, 4, DefaultParams())
	basicSpeedup := basic1.BuildSeconds / basic4.BuildSeconds
	if basicSpeedup > 1.5 {
		t.Fatalf("BASIC speedup %g despite serial W bottleneck", basicSpeedup)
	}
	if mwk4.BuildSeconds >= basic4.BuildSeconds {
		t.Fatalf("MWK (%g) should beat BASIC (%g) on W-heavy workloads",
			mwk4.BuildSeconds, basic4.BuildSeconds)
	}
}

// With many uniform leaves and attributes, all schemes should speed up well.
func TestGoodSpeedupOnWideLevels(t *testing.T) {
	tr := flatTrace(32, 32, 1e-3, 1e-5, 5e-4)
	for _, scheme := range []Scheme{Basic, FWK, MWK, Subtree} {
		r1, _ := Simulate(tr, scheme, 1, 4, DefaultParams())
		r4, _ := Simulate(tr, scheme, 4, 4, DefaultParams())
		sp := r1.BuildSeconds / r4.BuildSeconds
		if sp < 3.0 {
			t.Fatalf("%v: speedup %g < 3.0 on embarrassingly parallel level", scheme, sp)
		}
		if sp > 4.01 {
			t.Fatalf("%v: speedup %g > P", scheme, sp)
		}
	}
}

// Integration: simulate over a real profiling trace and check paper-shape
// properties end to end.
func TestRealTraceShapes(t *testing.T) {
	tbl, err := synth.Generate(synth.Config{
		Function: 7, Attrs: 16, Tuples: 6000, Seed: 2, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Dataset: "F7-A16-D6K"}
	if _, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, Trace: tr, MaxDepth: 14}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.SerialSeconds() <= 0 || len(tr.Levels) < 3 {
		t.Fatalf("profiling trace too small: %g s, %d levels", tr.SerialSeconds(), len(tr.Levels))
	}
	for _, scheme := range []Scheme{Basic, FWK, MWK, Subtree} {
		t.Run(scheme.String(), func(t *testing.T) {
			r1, err := Simulate(tr, scheme, 1, 4, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			r4, err := Simulate(tr, scheme, 4, 4, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			sp := r1.BuildSeconds / r4.BuildSeconds
			if sp < 1.5 || sp > 4.01 {
				t.Fatalf("speedup %v at P=4: %.2f outside (1.5, 4]", scheme, sp)
			}
		})
	}
}

// Determinism: identical inputs give bit-identical results.
func TestSimulateDeterministic(t *testing.T) {
	tr := flatTrace(10, 8, 1.3e-3, 2.1e-4, 7e-4)
	for _, scheme := range []Scheme{Basic, FWK, MWK, Subtree, RecPar} {
		a, err := Simulate(tr, scheme, 3, 2, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(tr, scheme, 3, 2, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if a.BuildSeconds != b.BuildSeconds || a.Grabs != b.Grabs || a.Barriers != b.Barriers {
			t.Fatalf("%v: nondeterministic simulation", scheme)
		}
	}
}

func TestWindowKEffect(t *testing.T) {
	// Deep, narrow trace with heavy W: larger K should not hurt MWK; K=1
	// serializes the pipeline and must be slowest (or equal).
	tr := flatTrace(24, 4, 1e-4, 2e-3, 1e-4)
	var times []float64
	for _, k := range []int{1, 4, 16} {
		r, err := Simulate(tr, MWK, 4, k, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.BuildSeconds)
	}
	if times[1] > times[0]*1.001 {
		t.Fatalf("K=4 (%g) slower than K=1 (%g)", times[1], times[0])
	}
	fmt.Printf("MWK window sweep: K=1 %.4g, K=4 %.4g, K=16 %.4g\n", times[0], times[1], times[2])
}

// RECPAR pays a barrier per (leaf, attribute) unit; on a trace with many
// tiny leaves its speedup must collapse relative to MWK — the paper's
// argument against record parallelism on SMPs.
func TestRecParBarrierCollapse(t *testing.T) {
	// 64 leaves, tiny unit costs comparable to the barrier cost.
	tr := flatTrace(64, 16, 6e-6, 2e-6, 4e-6)
	rp1, _ := Simulate(tr, RecPar, 1, 4, DefaultParams())
	rp4, _ := Simulate(tr, RecPar, 4, 4, DefaultParams())
	mwk4, _ := Simulate(tr, MWK, 4, 4, DefaultParams())
	rpSpeedup := rp1.BuildSeconds / rp4.BuildSeconds
	if rpSpeedup > 1.5 {
		t.Fatalf("RECPAR speedup %.2f despite barrier-dominated units", rpSpeedup)
	}
	if rp4.BuildSeconds < 2*mwk4.BuildSeconds {
		t.Fatalf("RECPAR (%g) should be far slower than MWK (%g) on fine-grained levels",
			rp4.BuildSeconds, mwk4.BuildSeconds)
	}
}

// SUBTREE+MWK removes the group master's serial W; on W-heavy traces it
// must beat plain SUBTREE.
func TestSubtreeMWKBeatsSubtreeOnWHeavy(t *testing.T) {
	tr := flatTrace(16, 4, 1e-5, 5e-3, 1e-5)
	st4, err := Simulate(tr, Subtree, 4, 4, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	hy4, err := Simulate(tr, SubtreeMWK, 4, 4, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if hy4.BuildSeconds >= st4.BuildSeconds {
		t.Fatalf("hybrid (%g) should beat plain SUBTREE (%g) when W dominates",
			hy4.BuildSeconds, st4.BuildSeconds)
	}
}
