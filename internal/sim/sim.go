// Package sim is a discrete-event, virtual-time simulator of the paper's
// SMP schemes. It replays the exact scheduling policy of each scheme —
// dynamic attribute grabbing, BASIC's master-serial W phase, FWK's
// fixed-window pipelining, MWK's per-leaf condition variables, and
// SUBTREE's processor groups with a FREE queue — over the *measured*
// per-work-unit costs recorded in a trace (internal/trace) by a serial
// profiling run.
//
// This is the hardware substitution documented in DESIGN.md §2: the paper's
// results are wall-clock speedup curves on 4- and 8-way SMPs; on a host
// without multiple processors those curves cannot materialize physically,
// but every scheduling decision, barrier wait, serial bottleneck and load
// imbalance the paper studies is a function of unit costs and policy, both
// of which the simulator preserves. It never invents costs — it only
// re-orders measured ones across P virtual processors.
package sim

import (
	"fmt"

	"repro/internal/trace"
)

// Scheme selects the parallel algorithm to simulate.
type Scheme int

const (
	// Basic is the BASIC scheme (paper Fig. 3).
	Basic Scheme = iota
	// FWK is Fixed-Window-K (Fig. 4).
	FWK
	// MWK is Moving-Window-K (Fig. 6).
	MWK
	// Subtree is the SUBTREE task-parallel scheme (Fig. 7).
	Subtree
	// RecPar is the record-data-parallel baseline (§3.1).
	RecPar
	// SubtreeMWK is SUBTREE with the MWK subroutine inside each group,
	// the hybrid the paper suggests in §3.4.
	SubtreeMWK
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case Basic:
		return "BASIC"
	case FWK:
		return "FWK"
	case MWK:
		return "MWK"
	case Subtree:
		return "SUBTREE"
	case RecPar:
		return "RECPAR"
	case SubtreeMWK:
		return "SUBTREE+MWK"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Params holds the synchronization cost constants, in seconds. They model
// the light-weight primitives of the paper's pthread implementation; the
// defaults are calibrated to contemporary shared-memory synchronization and
// produce the second-order effects the paper reports (MWK's per-leaf lock
// overhead growing with processors, SUBTREE's FREE-queue waits growing with
// attributes).
type Params struct {
	// Barrier is the cost of one barrier crossing per processor.
	Barrier float64
	// Lock is the cost of one dynamic-scheduling counter acquisition.
	Lock float64
	// Cond is the cost of a condition-variable wait/signal pair.
	Cond float64
	// Queue is the cost of one FREE-queue check or insertion.
	Queue float64
}

// DefaultParams returns the calibrated defaults: an uncontended atomic
// fetch-add is ~100 ns on current hardware, a barrier crossing a few µs, a
// condition-variable hand-off ~1 µs. The constants scale the second-order
// effects (per-leaf lock overhead, FREE-queue churn) against unit costs
// measured on the same hardware.
func DefaultParams() Params {
	return Params{Barrier: 5e-6, Lock: 1e-7, Cond: 1e-6, Queue: 2e-7}
}

// Result reports one simulated build.
type Result struct {
	Scheme  Scheme
	Procs   int
	WindowK int
	// BuildSeconds is the simulated wall-clock of the growth phase.
	BuildSeconds float64
	// BusySeconds[p] is processor p's total working (non-waiting) time;
	// the gap to BuildSeconds is synchronization/idle time.
	BusySeconds []float64
	// Barriers counts barrier episodes.
	Barriers int
	// Grabs counts dynamic work-unit acquisitions.
	Grabs int
}

// Efficiency returns the mean processor utilization.
func (r Result) Efficiency() float64 {
	if r.BuildSeconds == 0 || len(r.BusySeconds) == 0 {
		return 0
	}
	var busy float64
	for _, b := range r.BusySeconds {
		busy += b
	}
	return busy / (float64(len(r.BusySeconds)) * r.BuildSeconds)
}

// Simulate replays the trace under the given scheme with procs virtual
// processors. windowK is used by FWK and MWK (0 means the default 4).
func Simulate(tr *trace.Trace, scheme Scheme, procs, windowK int, p Params) (Result, error) {
	if procs < 1 {
		return Result{}, fmt.Errorf("sim: procs must be >= 1, got %d", procs)
	}
	if windowK == 0 {
		windowK = 4
	}
	if windowK < 1 {
		return Result{}, fmt.Errorf("sim: windowK must be >= 1, got %d", windowK)
	}
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	st := &simState{tr: tr, p: p, procs: procs, windowK: windowK,
		clock: make([]float64, procs), busy: make([]float64, procs)}
	switch scheme {
	case Basic:
		st.runBasic()
	case FWK:
		st.runWindow(false)
	case MWK:
		st.runWindow(true)
	case Subtree:
		st.runSubtree()
	case RecPar:
		st.runRecPar()
	case SubtreeMWK:
		st.subtreeInnerMWK = true
		st.runSubtree()
	default:
		return Result{}, fmt.Errorf("sim: unknown scheme %d", int(scheme))
	}
	res := Result{
		Scheme: scheme, Procs: procs, WindowK: windowK,
		BuildSeconds: maxf(st.clock), BusySeconds: st.busy,
		Barriers: st.barriers, Grabs: st.grabs,
	}
	return res, nil
}

// simState carries the virtual clocks of the processors.
type simState struct {
	tr              *trace.Trace
	p               Params
	procs           int
	windowK         int
	subtreeInnerMWK bool
	clock           []float64
	busy            []float64
	barriers        int
	grabs           int
}

// exec runs a work unit of the given cost on processor w at its current
// clock, charging one dynamic-scheduling lock.
func (s *simState) exec(w int, cost float64) {
	s.clock[w] += s.p.Lock + cost
	s.busy[w] += cost
	s.grabs++
}

// barrierAll synchronizes a set of processors: every clock advances to the
// maximum plus the barrier cost.
func (s *simState) barrierAll(ws []int) float64 {
	m := 0.0
	for _, w := range ws {
		if s.clock[w] > m {
			m = s.clock[w]
		}
	}
	m += s.p.Barrier
	for _, w := range ws {
		s.clock[w] = m
	}
	s.barriers++
	return m
}

// minClockProc returns the index in ws of the processor with the smallest
// clock (ties toward the lower id, matching deterministic lock handoff).
func (s *simState) minClockProc(ws []int) int {
	best := 0
	for i := 1; i < len(ws); i++ {
		if s.clock[ws[i]] < s.clock[ws[best]] {
			best = i
		}
	}
	return best
}

// listSchedule dynamically assigns the unit costs, in order, each to the
// processor that becomes free first — exactly what grab-a-counter
// scheduling converges to in virtual time.
func (s *simState) listSchedule(ws []int, costs []float64) {
	for _, c := range costs {
		w := ws[s.minClockProc(ws)]
		s.exec(w, c)
	}
}

// runBasic simulates BASIC: per level, attribute-parallel E with dynamic
// scheduling, a barrier, the master serially doing W for every leaf, a
// barrier, attribute-parallel S, and a final level barrier.
func (s *simState) runBasic() {
	ws := identity(s.procs)
	for li := range s.tr.Levels {
		lv := &s.tr.Levels[li]
		// E: one unit per attribute covering all leaves of the level.
		eCosts := make([]float64, s.tr.NAttrs)
		sCosts := make([]float64, s.tr.NAttrs)
		var wCost float64
		for i := range lv.Leaves {
			lf := &lv.Leaves[i]
			for a := 0; a < s.tr.NAttrs; a++ {
				eCosts[a] += lf.E[a]
				sCosts[a] += lf.S[a]
			}
			wCost += lf.W
		}
		s.listSchedule(ws, eCosts)
		s.barrierAll(ws)
		// W: the pre-designated master works; everyone else sleeps at the
		// barrier — BASIC's sequential bottleneck.
		s.clock[ws[0]] += wCost
		s.busy[ws[0]] += wCost
		s.barrierAll(ws)
		s.listSchedule(ws, sCosts)
		s.barrierAll(ws)
	}
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func maxf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
