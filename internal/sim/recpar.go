package sim

// runRecPar simulates the record-data-parallel baseline: every (leaf,
// attribute) work unit is split across all P processors as contiguous
// record chunks, at the price of per-unit synchronization:
//
//   - a continuous E unit takes two scans (chunk histograms, then seeded
//     candidate scoring) and two barriers; the measured cost E[a] covers
//     one evaluating scan, and the counting pass is charged at half that
//     (no gini bookkeeping), so the parallel work is 1.5·E[a]/P;
//   - a W unit parallelizes the probe scan (W/P) with one barrier before
//     (winner publication) and one after (histogram merge);
//   - an S unit takes a counting pass plus a writing pass (1.5·S[a]/P) and
//     two barriers for the prefix-sum exchange.
//
// The Θ(leaves × attributes) barriers per level — versus BASIC's constant
// four — are the "excessive synchronization" the paper predicts for this
// design on SMP hardware.
func (s *simState) runRecPar() {
	ws := identity(s.procs)
	P := float64(s.procs)
	for li := range s.tr.Levels {
		lv := &s.tr.Levels[li]
		for j := range lv.Leaves {
			lf := &lv.Leaves[j]
			// E units.
			for a := 0; a < s.tr.NAttrs; a++ {
				s.chunkUnit(ws, 1.5*lf.E[a]/P, 2)
			}
			// W unit.
			if lf.Split {
				s.chunkUnit(ws, lf.W/P, 2)
				// S units.
				for a := 0; a < s.tr.NAttrs; a++ {
					s.chunkUnit(ws, 1.5*lf.S[a]/P, 2)
				}
			}
		}
		// Level bookkeeping barrier.
		s.barrierAll(ws)
	}
}

// chunkUnit charges every processor the chunked work plus the unit's
// barriers.
func (s *simState) chunkUnit(ws []int, perProc float64, barriers int) {
	for _, w := range ws {
		s.clock[w] += s.p.Lock + perProc
		s.busy[w] += perProc
	}
	s.grabs++
	for b := 0; b < barriers; b++ {
		s.barrierAll(ws)
	}
}
