package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	parclass "repro"
	"repro/internal/dataset"
	"repro/internal/ingest"
	"repro/internal/synth"
)

// newIngestServer is newTestServer plus EnableIngest.
func newIngestServer(t testing.TB, m parclass.Predictor, windowCap int) (*Server, *httptest.Server) {
	t.Helper()
	s := New("")
	if _, err := s.Load("default", m, "test"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableIngest(IngestConfig{WindowCap: windowCap}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tupleValues renders a streamer tuple as the positional string row the
// ingest/predict wire forms use.
func tupleValues(schema *dataset.Schema, tu dataset.Tuple) []string {
	vals := make([]string, len(schema.Attrs))
	for a := range schema.Attrs {
		if schema.Attrs[a].Kind == dataset.Continuous {
			vals[a] = strconv.FormatFloat(tu.Cont[a], 'g', -1, 64)
		} else {
			vals[a] = schema.Attrs[a].Categories[tu.Cat[a]]
		}
	}
	return vals
}

// labeledRow is one wire-form row with its ground truth.
type labeledRow struct {
	vals  []string
	class string
}

// drawRows pulls n labeled rows off the streamer.
func drawRows(t testing.TB, st *synth.Streamer, n int) []labeledRow {
	t.Helper()
	out := make([]labeledRow, 0, n)
	for len(out) < n {
		tu, ok := st.Next()
		if !ok {
			t.Fatalf("stream exhausted after %d rows", len(out))
		}
		out = append(out, labeledRow{
			vals:  tupleValues(st.Schema(), tu),
			class: st.Schema().Classes[tu.Class],
		})
	}
	return out
}

// ingestRows posts rows as one bulk ingest request and asserts 200.
func ingestRows(t testing.TB, url string, rows []labeledRow) ingestResponse {
	t.Helper()
	req := ingestRequest{Rows: make([]ingestRow, len(rows))}
	for i, r := range rows {
		req.Rows[i] = ingestRow{Values: r.vals, Class: r.class}
	}
	var resp ingestResponse
	if code := postJSON(t, url+"/v1/ingest", req, &resp); code != 200 {
		t.Fatalf("bulk ingest status %d", code)
	}
	if resp.Accepted != len(rows) {
		t.Fatalf("accepted %d of %d rows", resp.Accepted, len(rows))
	}
	return resp
}

// servedAccuracy classifies rows through POST /v1/predict and returns the
// fraction matching their labels.
func servedAccuracy(t testing.TB, url string, rows []labeledRow) float64 {
	t.Helper()
	req := predictRequest{ValuesRows: make([][]string, len(rows))}
	for i, r := range rows {
		req.ValuesRows[i] = r.vals
	}
	var resp predictResponse
	if code := postJSON(t, url+"/v1/predict", req, &resp); code != 200 {
		t.Fatalf("probe predict status %d", code)
	}
	hit := 0
	for i, r := range rows {
		if resp.Predictions[i] == r.class {
			hit++
		}
	}
	return float64(hit) / float64(len(rows))
}

func TestIngestDisabled503(t *testing.T) {
	m := trainModel(t, 1, 1000)
	_, ts := newTestServer(t, m) // no EnableIngest
	code, doc := postRaw(t, ts.URL+"/v1/ingest", `{"values":["1"],"class":"GroupA"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("disabled ingest status %d, want 503", code)
	}
	if !strings.Contains(doc["error"], "not enabled") {
		t.Fatalf("503 body %q", doc["error"])
	}
}

func TestIngestContract(t *testing.T) {
	m := trainModel(t, 1, 1000)
	s, ts := newIngestServer(t, m, 100)

	// Wrong method → 405 + Allow, like every route.
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET ingest: status %d Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	st, err := synth.NewStreamer(synth.Config{Function: 1, Tuples: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := drawRows(t, st, 10)

	// Unknown model → 404.
	bad := ingestRequest{Model: "nope", Values: rows[0].vals, Class: rows[0].class}
	if code := postJSON(t, ts.URL+"/v1/ingest", bad, nil); code != 404 {
		t.Fatalf("unknown model status %d, want 404", code)
	}

	// Form errors → 400.
	for name, body := range map[string]string{
		"neither form": `{}`,
		"both forms":   `{"values":["1"],"class":"GroupA","rows":[{"values":["1"],"class":"GroupA"}]}`,
		"no class":     fmt.Sprintf(`{"values":%s}`, mustJSON(t, rows[0].vals)),
	} {
		if code, _ := postRaw(t, ts.URL+"/v1/ingest", body); code != 400 {
			t.Fatalf("%s: status %d, want 400", name, code)
		}
	}

	// Trailing garbage → 400, same contract as predict.
	doc := fmt.Sprintf(`{"values":%s,"class":%q}{"junk":1}`, mustJSON(t, rows[0].vals), rows[0].class)
	if code, _ := postRaw(t, ts.URL+"/v1/ingest", doc); code != 400 {
		t.Fatalf("trailing garbage status %d, want 400", code)
	}

	// Body cap → 413, shared with predict (SetPredictMaxBytes governs both).
	s.SetPredictMaxBytes(1 << 10)
	big := fmt.Sprintf(`{"values":[%q],"class":"x"}`, strings.Repeat("x", 4<<10))
	if code, _ := postRaw(t, ts.URL+"/v1/ingest", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", code)
	}
	s.SetPredictMaxBytes(0)

	// Row validation → 422 with the offending row's index.
	reqBad := ingestRequest{Rows: []ingestRow{
		{Values: rows[0].vals, Class: rows[0].class},
		{Values: rows[1].vals, Class: "NotAClass"},
	}}
	code, errDoc := postRaw(t, ts.URL+"/v1/ingest", mustJSON(t, reqBad))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("bad row status %d, want 422", code)
	}
	if !strings.Contains(errDoc["error"], "row 1:") {
		t.Fatalf("422 body %q does not name row 1", errDoc["error"])
	}
	// All-or-nothing: the valid row 0 must not have landed.
	if got := s.ing.Load().windows["default"].Size(); got != 0 {
		t.Fatalf("window holds %d rows after rejected bulk, want 0", got)
	}

	// Single-row and bulk happy paths, on both the /v1 and alias paths.
	var single ingestResponse
	if code := postJSON(t, ts.URL+"/v1/ingest",
		ingestRequest{Values: rows[0].vals, Class: rows[0].class}, &single); code != 200 {
		t.Fatalf("single ingest status %d", code)
	}
	if single.Accepted != 1 || single.WindowSize != 1 || single.WindowTotal != 1 {
		t.Fatalf("single ingest = %+v", single)
	}
	bulk := ingestRows(t, ts.URL, rows[1:])
	if bulk.WindowSize != 10 || bulk.WindowTotal != 10 {
		t.Fatalf("bulk ingest = %+v", bulk)
	}
	var alias ingestResponse
	if code := postJSON(t, ts.URL+"/ingest",
		ingestRequest{Values: rows[0].vals, Class: rows[0].class}, &alias); code != 200 {
		t.Fatalf("alias ingest status %d", code)
	}
	if alias.WindowTotal != 11 {
		t.Fatalf("alias ingest = %+v", alias)
	}
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestIngestWindowEviction(t *testing.T) {
	m := trainModel(t, 1, 1000)
	_, ts := newIngestServer(t, m, 50)
	st, err := synth.NewStreamer(synth.Config{Function: 1, Tuples: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp := ingestRows(t, ts.URL, drawRows(t, st, 80))
	if resp.WindowSize != 50 || resp.WindowTotal != 80 {
		t.Fatalf("after 80 rows into a 50-cap window: %+v", resp)
	}
}

// TestOnlineLoopSkipRejectAcceptSwap walks the full online loop: ingest →
// retrain skip (window too small) → tripwire accept (stale serving model
// loses to a window-trained candidate) → swap → tripwire reject (margin
// keeps the now-fresh serving model), with /v1/metrics tracking every
// decision.
func TestOnlineLoopSkipRejectAcceptSwap(t *testing.T) {
	m := trainModel(t, 1, 2000) // serving model learned F1
	s, ts := newIngestServer(t, m, 4000)

	// Cycle 1: empty window → skipped.
	res, err := s.RetrainOnce("default", ingest.RetrainConfig{MinRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ingest.OutcomeSkipped {
		t.Fatalf("empty-window outcome %q, want skipped", res.Outcome)
	}

	// The concept has drifted: live traffic is now F7-labeled.
	st, err := synth.NewStreamer(synth.Config{Function: 7, Tuples: 10000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ingestRows(t, ts.URL, drawRows(t, st, 500))
	}

	// Cycle 2: candidate trained on the F7 window beats the stale F1 model.
	res, err = s.RetrainOnce("default", ingest.RetrainConfig{MinRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ingest.OutcomeSwapped {
		t.Fatalf("drifted-window outcome %q (cand %.3f serv %.3f), want swapped",
			res.Outcome, res.CandidateAcc, res.ServingAcc)
	}

	// The swap is visible on /v1/model/{name}: retrain source, bumped swaps.
	var info ModelInfo
	if code := getJSON(t, ts.URL+"/v1/model/default", &info); code != 200 {
		t.Fatalf("model info status %d", code)
	}
	if !strings.Contains(info.Source, "retrain") || info.Swaps != 2 {
		t.Fatalf("post-swap info source %q swaps %d", info.Source, info.Swaps)
	}

	// Cycle 3: the serving model is now window-trained; an impossible
	// margin forces a reject and the model must keep serving.
	res, err = s.RetrainOnce("default", ingest.RetrainConfig{MinRows: 500, Margin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ingest.OutcomeRejected {
		t.Fatalf("margin outcome %q, want rejected", res.Outcome)
	}

	// /v1/metrics carries the whole story.
	var met metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	ing := met.Ingest
	if ing == nil {
		t.Fatal("metrics has no ingest section")
	}
	if ing.IngestedTotal != 3000 {
		t.Fatalf("ingested_total %d, want 3000", ing.IngestedTotal)
	}
	if ing.RowsPerSec <= 0 {
		t.Fatalf("rows_per_sec %v, want > 0", ing.RowsPerSec)
	}
	r := ing.Retrain
	if r.Cycles != 3 || r.Swaps != 1 || r.Rejects != 1 || r.Skips != 1 {
		t.Fatalf("retrain counters %+v", r)
	}
	if r.LastOutcome != string(ingest.OutcomeRejected) || r.LastCandidateAccuracy <= 0 {
		t.Fatalf("last decision %+v", r)
	}
	w, ok := ing.Windows["default"]
	if !ok || w.Size != 3000 || w.Capacity != 4000 || w.Total != 3000 {
		t.Fatalf("window snapshot %+v ok=%v", w, ok)
	}
}

// TestDriftRecovery is the deterministic end-to-end drift scenario: the
// labeling function flips F1→F7 mid-stream, served accuracy on the
// freshest labeled rows craters, and the retrain loop must recover to
// within 0.02 of the pre-drift accuracy — with the swap firing only when
// the candidate beat the serving model on the window holdout.
func TestDriftRecovery(t *testing.T) {
	m := trainModel(t, 1, 3000)
	s, ts := newIngestServer(t, m, 4000)

	const (
		batch   = 500
		driftAt = 3000
		total   = 12000
		probeN  = 500
		tol     = 0.02
		minRows = 1000
	)
	st, err := synth.NewStreamer(synth.Config{
		Function: 1, DriftFunction: 7, DriftAt: driftAt, Tuples: total, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ingest.RetrainConfig{MinRows: minRows}

	var recent []labeledRow // the freshest probeN labeled rows
	probe := func() float64 {
		return servedAccuracy(t, ts.URL, recent)
	}

	preDrift, minPost, recovered := 0.0, 1.0, -1
	cycle := 0
	for sent := 0; sent < total; sent += batch {
		rows := drawRows(t, st, batch)
		ingestRows(t, ts.URL, rows)
		recent = append(recent, rows...)
		if len(recent) > probeN {
			recent = recent[len(recent)-probeN:]
		}
		if _, err := s.RetrainOnce("default", cfg); err != nil {
			t.Fatal(err)
		}
		acc := probe()
		if sent+batch == driftAt {
			preDrift = acc
		}
		if sent+batch > driftAt {
			cycle++
			if acc < minPost {
				minPost = acc
			}
			if recovered < 0 && acc >= preDrift-tol {
				recovered = cycle
			}
		}
	}
	t.Logf("pre-drift %.4f, post-drift min %.4f, recovered at cycle %d of %d",
		preDrift, minPost, recovered, cycle)
	if preDrift < 0.9 {
		t.Fatalf("pre-drift accuracy %.4f implausibly low", preDrift)
	}
	if minPost > preDrift-0.1 {
		t.Fatalf("drift should crater accuracy: min %.4f vs pre-drift %.4f", minPost, preDrift)
	}
	if recovered < 0 {
		t.Fatalf("accuracy never recovered to within %.2f of pre-drift %.4f (min %.4f)",
			tol, preDrift, minPost)
	}

	// Every swap the loop made was tripwire-approved; at least one fired
	// after the drift, and no model failure was recorded along the way.
	var met metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if met.Ingest.Retrain.Swaps == 0 {
		t.Fatal("drift recovery without a single model swap")
	}
	if met.Degraded {
		t.Fatal("retrain loop left the server degraded")
	}
}

// postCode posts v as JSON and returns the status code; goroutine-safe
// (no t.Fatal), for the soak workers.
func postCode(url string, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestIngestPredictSoak is the `make ingest-soak` workload: open-loop
// concurrent ingest + predict traffic with the periodic retrain loop
// hot-swapping underneath, under -race. Zero 5xx allowed (429 shedding is
// fine; it's the designed overload response).
func TestIngestPredictSoak(t *testing.T) {
	m := trainModel(t, 1, 2000)
	s, ts := newIngestServer(t, m, 3000)
	if err := s.EnableBatching(BatchConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	stop := s.StartRetrainLoop("default", 100*time.Millisecond, ingest.RetrainConfig{MinRows: 500})
	defer stop()

	deadline := time.Now().Add(1200 * time.Millisecond)
	var server5xx atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ { // ingest workers, drifting traffic
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := synth.NewStreamer(synth.Config{
				Function: 1, DriftFunction: 7, DriftAt: 2000,
				Tuples: 1 << 20, Seed: int64(100 + g),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for time.Now().Before(deadline) {
				rows := drawRows(t, st, 64)
				req := ingestRequest{Rows: make([]ingestRow, len(rows))}
				for i, r := range rows {
					req.Rows[i] = ingestRow{Values: r.vals, Class: r.class}
				}
				code, err := postCode(ts.URL+"/v1/ingest", req)
				if err != nil {
					t.Error(err)
					return
				}
				if code >= 500 {
					server5xx.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ { // predict workers
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := synth.NewStreamer(synth.Config{
				Function: 1, Tuples: 1 << 20, Seed: int64(200 + g),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for time.Now().Before(deadline) {
				rows := drawRows(t, st, 16)
				req := predictRequest{ValuesRows: make([][]string, len(rows))}
				for i, r := range rows {
					req.ValuesRows[i] = r.vals
				}
				code, err := postCode(ts.URL+"/v1/predict", req)
				if err != nil {
					t.Error(err)
					return
				}
				if code >= 500 {
					server5xx.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d 5xx responses during soak", n)
	}
	var met metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if met.Ingest == nil || met.Ingest.IngestedTotal == 0 || met.Ingest.RowsPerSec <= 0 {
		t.Fatalf("soak ingest metrics %+v", met.Ingest)
	}
	if met.Ingest.Retrain.Cycles == 0 {
		t.Fatal("retrain loop never ran during soak")
	}
	t.Logf("soak: %d rows ingested (%.0f rows/s), %d retrain cycles, %d swaps, %d rejects",
		met.Ingest.IngestedTotal, met.Ingest.RowsPerSec,
		met.Ingest.Retrain.Cycles, met.Ingest.Retrain.Swaps, met.Ingest.Retrain.Rejects)
}
