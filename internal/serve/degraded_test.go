package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// newBareServer starts an httptest server over s with no model loaded.
func newBareServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// healthzDoc mirrors the /healthz body the degradation tests inspect.
type healthzDoc struct {
	Status   string                    `json:"status"`
	Models   int                       `json:"models"`
	Failures map[string]map[string]any `json:"failures"`
}

func getHealthz(t *testing.T, url string) (int, healthzDoc) {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc healthzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, doc
}

// TestHealthzDegradedStillServing: a failed retrain of a model whose older
// version still serves must flip the status to "degraded" but keep the
// probe at 200, so orchestrators do not kill a working replica.
func TestHealthzDegradedStillServing(t *testing.T) {
	m := trainModel(t, 1, 500)
	s, ts := newTestServer(t, m)

	if code, doc := getHealthz(t, ts.URL); code != 200 || doc.Status != "ok" || doc.Models != 1 {
		t.Fatalf("healthy baseline: code %d, doc %+v", code, doc)
	}

	s.RecordFailure("default", errors.New("retrain blew up"))
	code, doc := getHealthz(t, ts.URL)
	if code != 200 {
		t.Fatalf("degraded-but-serving must stay 200, got %d", code)
	}
	if doc.Status != "degraded" || doc.Models != 1 {
		t.Fatalf("doc = %+v, want degraded with 1 serving model", doc)
	}
	if f := doc.Failures["default"]; f == nil || f["error"] != "retrain blew up" {
		t.Fatalf("failures = %v, want the recorded error", doc.Failures)
	}

	// The prediction path must be unaffected.
	var pr predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, &pr); code != 200 {
		t.Fatalf("predict during degradation: status %d", code)
	}

	// A successful reload clears the degraded state.
	if _, err := s.Load("default", m, "reload"); err != nil {
		t.Fatal(err)
	}
	if code, doc := getHealthz(t, ts.URL); code != 200 || doc.Status != "ok" || len(doc.Failures) != 0 {
		t.Fatalf("after reload: code %d, doc %+v", code, doc)
	}
}

// TestHealthzUnhealthyWhenNothingServes: a failure for a name with no
// published model at all makes the probe unhealthy (503).
func TestHealthzUnhealthyWhenNothingServes(t *testing.T) {
	s := New("")
	ts := newBareServer(t, s)

	s.RecordFailure("", errors.New("initial training failed"))
	code, doc := getHealthz(t, ts)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failed name with no serving model must 503, got %d", code)
	}
	if doc.Status != "degraded" || doc.Models != 0 {
		t.Fatalf("doc = %+v, want degraded with 0 models", doc)
	}

	// Loading the model repairs the probe.
	m := trainModel(t, 1, 500)
	if _, err := s.Load("default", m, "late train"); err != nil {
		t.Fatal(err)
	}
	if code, doc := getHealthz(t, ts); code != 200 || doc.Status != "ok" || doc.Models != 1 {
		t.Fatalf("after late load: code %d, doc %+v", code, doc)
	}
}

// TestMetricsCarriesFailure: /metrics reports Degraded plus the per-model
// last error until a successful reload clears it.
func TestMetricsCarriesFailure(t *testing.T) {
	m := trainModel(t, 1, 500)
	s, ts := newTestServer(t, m)

	s.RecordFailure("default", errors.New("oom during retrain"))
	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if !snap.Degraded {
		t.Error("metrics should report Degraded")
	}
	mc := snap.Models["default"]
	if mc.LastError != "oom during retrain" || mc.LastErrorAt.IsZero() {
		t.Fatalf("model counters = %+v, want the recorded failure", mc)
	}

	if _, err := s.Load("default", m, "reload"); err != nil {
		t.Fatal(err)
	}
	snap = metricsSnapshot{}
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Degraded || snap.Models["default"].LastError != "" {
		t.Fatalf("reload must clear the failure, got %+v", snap.Models["default"])
	}
}
