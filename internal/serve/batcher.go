package serve

// The predict micro-batcher. The paper's throughput argument — amortize
// per-record work by operating on whole attribute lists at once — applies
// to the serving side too: N concurrent /v1/predict requests each walking
// the tree alone cost N dispatches, while coalescing them into one
// PredictBatch/PredictValuesBatch call pays the fan-out once and lets the
// sharded flat walker chew a contiguous row block (Spencer's GPGPU
// tree-evaluation result: classification-tree throughput is won by
// evaluating many rows per dispatch). The shape is the FastFlow
// farm-with-accelerator idiom the training engines already use: a bounded
// admission queue in front (backpressure: a full queue sheds with 429 +
// Retry-After instead of letting goroutines and memory grow without
// bound), one dispatcher goroutine that collects requests until either
// MaxRows rows have coalesced or Linger has passed since the first, then
// one batched walk per (model, form) group per window.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	parclass "repro"
)

// BatchConfig configures the predict micro-batcher (Server.EnableBatching).
type BatchConfig struct {
	// MaxRows flushes a window once this many rows have coalesced.
	MaxRows int
	// Linger flushes a window this long after its first request even if
	// MaxRows has not been reached, bounding the latency cost of batching.
	Linger time.Duration
	// QueueDepth is the admission queue capacity in requests; a request
	// arriving to a full queue is shed with 429 + Retry-After.
	QueueDepth int
}

// Batching defaults: a 256-row window mirrors flat.minShard (the smallest
// batch the sharded walker fans out), 200µs linger keeps the added latency
// an order of magnitude under the decode cost it buys back, and 256 queued
// requests bound admission at roughly one linger window of overload.
const (
	DefaultBatchMaxRows    = 256
	DefaultBatchLinger     = 200 * time.Microsecond
	DefaultBatchQueueDepth = 256
)

// withDefaults fills zero fields.
func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxRows <= 0 {
		c.MaxRows = DefaultBatchMaxRows
	}
	if c.Linger <= 0 {
		c.Linger = DefaultBatchLinger
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultBatchQueueDepth
	}
	return c
}

// predictOutcome is what the dispatcher hands back to a waiting request.
type predictOutcome struct {
	preds []string
	// trees is the ensemble size of the model that actually served the
	// batch (the dispatch-time version, which may be newer than the one
	// current when the request was admitted). The response's "trees" field
	// must come from here, not from a request-time snapshot: reading model
	// metadata from one version while the predictions came from another is
	// exactly the torn view a hot swap must never produce.
	trees int
	code  int    // HTTP status; http.StatusOK on success
	err   string // error body when code != http.StatusOK
}

// pendingPredict is one admitted predict request parked in the queue.
// Exactly one of rows/vrows is set; single marks the one-row request forms
// (row, values) whose response carries "prediction" instead of
// "predictions".
type pendingPredict struct {
	model      string
	positional bool
	single     bool
	// level is the request's batch-kernel override; requests with different
	// overrides never coalesce into one dispatch (groupKey separates them),
	// so a forced-"off" probe is never silently served by the level kernel.
	level parclass.LevelSyncMode
	rows  []map[string]string
	vrows [][]string
	// quit is the dispatcher shutdown sentinel (see batcher.close).
	quit bool
	// done is buffered so the dispatcher never blocks on a caller that
	// gave up (client disconnect).
	done chan predictOutcome
}

// newPending parks a decoded predict request for the dispatcher.
func newPending(model string, level parclass.LevelSyncMode, req *predictRequest) *pendingPredict {
	p := &pendingPredict{model: model, level: level, done: make(chan predictOutcome, 1)}
	switch {
	case req.Row != nil:
		p.single = true
		p.rows = []map[string]string{req.Row}
	case len(req.Values) > 0:
		p.single = true
		p.positional = true
		p.vrows = [][]string{req.Values}
	case len(req.ValuesRows) > 0:
		p.positional = true
		p.vrows = req.ValuesRows
	default:
		p.rows = req.Rows
	}
	return p
}

// nrows is the request's row count.
func (p *pendingPredict) nrows() int {
	if p.positional {
		return len(p.vrows)
	}
	return len(p.rows)
}

// batcher owns the admission queue and the dispatcher goroutine.
type batcher struct {
	s    *Server
	cfg  BatchConfig
	ch   chan *pendingPredict
	done chan struct{}
	// holdExec, when non-nil (tests only), runs at the start of every
	// flush; tests use it to park the dispatcher and make queue-full
	// shedding deterministic.
	holdExec func()
}

// EnableBatching turns on server-side micro-batching for /v1/predict with
// cfg (zero fields take the Default* values). Call once, before serving;
// requests opt out individually with "no_batch": true. Stop the dispatcher
// with Close.
func (s *Server) EnableBatching(cfg BatchConfig) error {
	cfg = cfg.withDefaults()
	b := &batcher{
		s:    s,
		cfg:  cfg,
		ch:   make(chan *pendingPredict, cfg.QueueDepth),
		done: make(chan struct{}),
	}
	if !s.batch.CompareAndSwap(nil, b) {
		return fmt.Errorf("serve: batching already enabled")
	}
	go b.run()
	return nil
}

// Close stops the micro-batcher's dispatcher, failing any still-queued
// requests with 503. Predict requests arriving afterwards run inline. A
// server without batching enabled has nothing to stop.
func (s *Server) Close() {
	b := s.batch.Swap(nil)
	if b == nil {
		return
	}
	// The sentinel is a blocking send: it lands behind every request
	// admitted before the pointer swap, so those are still dispatched.
	b.ch <- &pendingPredict{quit: true}
	<-b.done
}

// submit enqueues p, reporting false when the admission queue is full.
func (b *batcher) submit(p *pendingPredict) bool {
	select {
	case b.ch <- p:
		return true
	default:
		return false
	}
}

// maxRetryAfterSecs caps the Retry-After hint: past a minute the estimate
// says more about a pathological linger configuration than about when the
// queue will actually have room.
const maxRetryAfterSecs = 60

// retryAfter is the Retry-After header value for shed requests. The hint
// scales with the admission queue's actual occupancy: a shed client is
// told to stay away for the estimated drain time of the CURRENT backlog —
// the queued requests (at the running average rows per request) divided
// into MaxRows-row linger windows. The old hint was one linger window
// regardless of depth, so under sustained overload every shed client
// retried into a queue that was still full and was shed again, forever.
// Rounded up to a whole second per RFC 9110, floored at 1s and capped at
// maxRetryAfterSecs.
func (b *batcher) retryAfter() string {
	depth := int64(len(b.ch))
	if depth < 1 {
		depth = 1
	}
	// Rows per request from the live request-size histogram; 1 until any
	// traffic has completed.
	avgRows := int64(1)
	if n := b.s.met.batchRows.count.Load(); n > 0 {
		if m := b.s.met.batchRows.sum.Load() / n; m > 1 {
			avgRows = m
		}
	}
	windows := (depth*avgRows + int64(b.cfg.MaxRows) - 1) / int64(b.cfg.MaxRows)
	if windows < 1 {
		windows = 1
	}
	drain := time.Duration(windows) * b.cfg.Linger
	secs := int64(drain+time.Second-1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSecs {
		secs = maxRetryAfterSecs
	}
	return strconv.FormatInt(secs, 10)
}

// run is the dispatcher loop: block for a window's first request, collect
// until MaxRows rows or the linger timer, flush, repeat.
func (b *batcher) run() {
	defer close(b.done)
	for {
		first := <-b.ch
		if first.quit {
			b.drain()
			return
		}
		items := []*pendingPredict{first}
		rows := first.nrows()
		timer := time.NewTimer(b.cfg.Linger)
		quit := false
	collect:
		for rows < b.cfg.MaxRows {
			select {
			case p := <-b.ch:
				if p.quit {
					quit = true
					break collect
				}
				items = append(items, p)
				rows += p.nrows()
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.flush(items, rows)
		if quit {
			b.drain()
			return
		}
	}
}

// drain fails everything still queued at shutdown.
func (b *batcher) drain() {
	for {
		select {
		case p := <-b.ch:
			if !p.quit {
				p.done <- predictOutcome{code: http.StatusServiceUnavailable, err: "server shutting down"}
			}
		default:
			return
		}
	}
}

// groupKey buckets a window's requests into batchable calls: one flat-tree
// dispatch serves one model, one row form and one kernel override.
type groupKey struct {
	model      string
	positional bool
	level      parclass.LevelSyncMode
}

// flush resolves one collected window: group by (model, form), one batched
// walk per group.
func (b *batcher) flush(items []*pendingPredict, rows int) {
	if b.holdExec != nil {
		b.holdExec()
	}
	b.s.met.batches.Add(1)
	b.s.met.coalescedRows.observe(int64(rows))
	b.s.met.coalescedReqs.observe(int64(len(items)))
	groups := make(map[groupKey][]*pendingPredict)
	var order []groupKey
	for _, p := range items {
		k := groupKey{model: p.model, positional: p.positional, level: p.level}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	for _, k := range order {
		b.execute(k, groups[k])
	}
}

// execute runs one group as a single batched call against the model
// version current at dispatch time (requests admitted before a hot swap
// may thus be answered by the newer version — the same guarantee an inline
// request racing the swap gets).
func (b *batcher) execute(k groupKey, group []*pendingPredict) {
	sl, cur := b.s.current(k.model)
	if cur == nil {
		for _, p := range group {
			p.done <- predictOutcome{code: http.StatusNotFound, err: fmt.Sprintf("no model %q", k.model)}
		}
		return
	}
	total := 0
	for _, p := range group {
		total += p.nrows()
	}
	var (
		preds []string
		err   error
	)
	if k.positional {
		all := make([][]string, 0, total)
		for _, p := range group {
			all = append(all, p.vrows...)
		}
		preds, err = cur.model.PredictValuesBatchMode(all, k.level)
	} else {
		all := make([]map[string]string, 0, total)
		for _, p := range group {
			all = append(all, p.rows...)
		}
		preds, err = cur.model.PredictBatchMode(all, k.level)
	}
	if err != nil {
		// One malformed row must fail only its own request, with row
		// indices relative to that request — re-run each request alone.
		for _, p := range group {
			b.executeOne(p, cur.model)
		}
		return
	}
	sl.predictions.Add(int64(total))
	b.s.met.predictions.Add(int64(total))
	nt := cur.model.NumTrees()
	off := 0
	for _, p := range group {
		n := p.nrows()
		p.done <- predictOutcome{preds: preds[off : off+n], trees: nt, code: http.StatusOK}
		off += n
	}
}

// executeOne is the per-request fallback when a coalesced batch fails: it
// reproduces the inline path's calls exactly, so error text and row
// attribution match what the request would have seen unbatched.
func (b *batcher) executeOne(p *pendingPredict, m parclass.Predictor) {
	var (
		preds []string
		err   error
	)
	switch {
	case p.single && p.positional:
		var pred string
		pred, err = m.PredictValues(p.vrows[0])
		preds = []string{pred}
	case p.single:
		var pred string
		pred, err = m.Predict(p.rows[0])
		preds = []string{pred}
	case p.positional:
		preds, err = m.PredictValuesBatchMode(p.vrows, p.level)
	default:
		preds, err = m.PredictBatchMode(p.rows, p.level)
	}
	if err != nil {
		p.done <- predictOutcome{code: predictErrCode(err), err: err.Error()}
		return
	}
	if sl := b.s.slot(p.model, false); sl != nil {
		sl.predictions.Add(int64(len(preds)))
	}
	b.s.met.predictions.Add(int64(len(preds)))
	p.done <- predictOutcome{preds: preds, trees: m.NumTrees(), code: http.StatusOK}
}
