package serve

// Regression tests for the Retry-After backpressure hint. The old code
// answered one linger window (rounded up to 1s) regardless of queue
// depth, so under sustained overload every shed client was invited to
// retry into a queue that was still full. The hint must scale with the
// backlog actually observed at shed time.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestRetryAfterScalesWithQueueDepth parks the dispatcher, fills the
// admission queue, and asserts the shed response's Retry-After covers
// draining the whole backlog — not the old constant single-linger hint.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	m := trainModel(t, 1, 2000)
	s, ts := newTestServer(t, m)
	// MaxRows 1: every queued request needs its own dispatch window, so the
	// expected drain time of a depth-8 backlog is 8 lingers = 16s.
	b := enableBatching(t, s, BatchConfig{MaxRows: 1, Linger: 2 * time.Second, QueueDepth: 8})
	gateEntered := make(chan struct{}, 1)
	gate := make(chan struct{})
	var once sync.Once
	b.holdExec = func() { once.Do(func() { gateEntered <- struct{}{} }); <-gate }

	post := func() (*http.Response, error) {
		body, err := json.Marshal(map[string]any{"row": sampleRow("25")})
		if err != nil {
			return nil, err
		}
		return http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	}

	// Sacrificial request parks the dispatcher mid-flush; the next 8 fill
	// the queue to capacity.
	var wg sync.WaitGroup
	fire := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp, err := post(); err == nil {
				resp.Body.Close()
			}
		}()
	}
	fire()
	<-gateEntered
	for i := 0; i < 8; i++ {
		fire()
	}
	waitFor(t, func() bool { return len(b.ch) == 8 })

	resp, err := post()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// depth 8 × one 2s linger window each = 16s. The old constant hint
	// answered ceil(linger) = 2s no matter how deep the backlog was.
	if got := resp.Header.Get("Retry-After"); got != "16" {
		t.Fatalf("Retry-After = %q, want %q (8-deep queue × 2s windows); the constant-hint code answers \"2\"", got, "16")
	}
	close(gate)
	wg.Wait()
}

// TestRetryAfterFloorAndCap pins the RFC 9110 whole-second floor and the
// sanity cap on pathological linger configurations.
func TestRetryAfterFloorAndCap(t *testing.T) {
	m := trainModel(t, 1, 2000)
	s := New("")
	if _, err := s.Load("default", m, "test"); err != nil {
		t.Fatal(err)
	}
	// Empty queue, microsecond linger: the hint still tells clients a full
	// second, the smallest honest Retry-After.
	b := enableBatching(t, s, BatchConfig{MaxRows: 256, Linger: 200 * time.Microsecond, QueueDepth: 4})
	if got := b.retryAfter(); got != "1" {
		t.Fatalf("floor: Retry-After = %q, want \"1\"", got)
	}

	s2 := New("")
	if _, err := s2.Load("default", m, "test"); err != nil {
		t.Fatal(err)
	}
	// A 2-minute linger estimates a 120s drain even at depth 1; the cap
	// keeps the hint at a minute.
	b2 := enableBatching(t, s2, BatchConfig{MaxRows: 1, Linger: 2 * time.Minute, QueueDepth: 4})
	if got := b2.retryAfter(); got != "60" {
		t.Fatalf("cap: Retry-After = %q, want \"60\"", got)
	}
}
