package serve

// Fake-clock tests pinning the rateMeter's trailing-window semantics. The
// ring indexes buckets by wall second modulo the ring size, so after a
// silence the ring pointer can land on a bucket written during an earlier
// lap; the age check must keep that stale count out of the rate. The old
// meter lived inline in ingest.go with a hardwired time.Now, so none of
// this was deterministically testable.

import (
	"testing"
	"time"
)

// fakeMeter returns a meter on an injected clock starting at start.
func fakeMeter(start int64) (*rateMeter, *int64) {
	now := start
	return &rateMeter{now: func() int64 { return now }}, &now
}

// TestRateMeterTrailingWindow checks the basic gauge: events inside the
// trailing window count, the uptime clamp keeps a fresh meter honest.
func TestRateMeterTrailingWindow(t *testing.T) {
	m, now := fakeMeter(1_000)
	for i := 0; i < 5; i++ {
		m.add(100)
		*now++
	}
	// 500 events over the last 5s of a 5s uptime → 100/s.
	if got := m.rate(5 * time.Second); got != 100 {
		t.Fatalf("rate = %v, want 100", got)
	}
	// Same events judged against a long uptime average over the full
	// 10s window → 50/s.
	if got := m.rate(time.Hour); got != 50 {
		t.Fatalf("rate = %v, want 50", got)
	}
}

// TestRateMeterSilenceReadsZero is the headline regression: after more
// than a window of silence every bucket is stale and the gauge must read
// exactly 0, not replay counts the ring pointer happens to sit on.
func TestRateMeterSilenceReadsZero(t *testing.T) {
	m, now := fakeMeter(1_000)
	for i := 0; i < 5; i++ {
		m.add(100)
		*now++
	}
	if got := m.rate(time.Hour); got == 0 {
		t.Fatal("active meter reads 0")
	}
	*now += rateWindowSecs + 1
	if got := m.rate(time.Hour); got != 0 {
		t.Fatalf("after %ds of silence rate = %v, want exactly 0", rateWindowSecs+1, got)
	}
}

// TestRateMeterWraparoundNoReplay fills every ring slot on one lap, then
// stays silent for exactly one full lap so the ring pointer returns to
// the same slots. None of the previous lap's counts may leak into the
// rate, and the first fresh add afterwards must count only itself.
func TestRateMeterWraparoundNoReplay(t *testing.T) {
	m, now := fakeMeter(2_000)
	ring := int64(len(m.secs))
	for i := int64(0); i < ring; i++ {
		m.add(7)
		*now++
	}
	*now += ring // silent lap: same slot indices, stale seconds
	if got := m.rate(time.Hour); got != 0 {
		t.Fatalf("stale lap replayed into rate: %v, want 0", got)
	}
	// This add lands on a slot holding a count from two laps ago; the
	// second mismatch must reset it rather than accumulate onto it.
	m.add(3)
	if got := m.rate(time.Hour); got != 3.0/rateWindowSecs {
		t.Fatalf("rate after fresh add = %v, want %v", got, 3.0/rateWindowSecs)
	}
}

// TestRateMeterWindowBoundary pins the window edges: a bucket aged
// exactly rateWindowSecs has just fallen out; one second younger is
// still in.
func TestRateMeterWindowBoundary(t *testing.T) {
	m, now := fakeMeter(3_000)
	m.add(40)
	*now += rateWindowSecs - 1
	if got := m.rate(time.Hour); got != 4 {
		t.Fatalf("bucket aged %ds: rate = %v, want 4", rateWindowSecs-1, got)
	}
	*now++
	if got := m.rate(time.Hour); got != 0 {
		t.Fatalf("bucket aged %ds: rate = %v, want 0", rateWindowSecs, got)
	}
}
