package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	parclass "repro"
)

// trainForest grows a small bagged ensemble over synthetic data.
func trainForest(t testing.TB, trees int) *parclass.Forest {
	t.Helper()
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 2000, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := parclass.TrainForest(ds, parclass.Options{
		Trees: trees, ForestSeed: 11, MaxDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// A forest-served single-row predict answers with the vote distribution
// and the ensemble size; batch responses carry the size only.
func TestForestPredictProbaAndTrees(t *testing.T) {
	f := trainForest(t, 5)
	s := New("")
	if _, err := s.Load("default", f, "test"); err != nil {
		t.Fatal(err)
	}
	// Enable batching to prove single-row forest requests bypass the
	// coalescing queue and still produce proba inline.
	if err := s.EnableBatching(BatchConfig{MaxRows: 64, Linger: time.Millisecond, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	var single predictResponse
	if code := postJSON(t, ts+"/v1/predict", predictRequest{Row: sampleRow("25")}, &single); code != 200 {
		t.Fatalf("single predict status %d", code)
	}
	if single.Trees != 5 {
		t.Fatalf("trees = %d, want 5", single.Trees)
	}
	if len(single.Proba) == 0 {
		t.Fatal("single-row forest response has no proba")
	}
	var sum float64
	for _, p := range single.Proba {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("proba sums to %g", sum)
	}
	want, wantProba, err := f.PredictProba(sampleRow("25"))
	if err != nil {
		t.Fatal(err)
	}
	if single.Prediction != want {
		t.Fatalf("prediction %q, want %q", single.Prediction, want)
	}
	for c, p := range wantProba {
		if single.Proba[c] != p {
			t.Fatalf("proba[%s] = %g, want %g", c, single.Proba[c], p)
		}
	}

	var batch predictResponse
	rows := []map[string]string{sampleRow("25"), sampleRow("50")}
	if code := postJSON(t, ts+"/v1/predict", predictRequest{Rows: rows}, &batch); code != 200 {
		t.Fatalf("batch predict status %d", code)
	}
	if batch.Trees != 5 {
		t.Fatalf("batch trees = %d, want 5", batch.Trees)
	}
	if batch.Proba != nil {
		t.Fatalf("batch response carries proba: %v", batch.Proba)
	}

	// Model info reports the ensemble size too.
	var info ModelInfo
	if code := getJSON(t, ts+"/v1/model/default", &info); code != 200 {
		t.Fatalf("model info status %d", code)
	}
	if info.Trees != 5 {
		t.Fatalf("info.Trees = %d, want 5", info.Trees)
	}
}

// Single-tree responses must not change shape: no proba or trees keys may
// appear in the raw body, so pre-forest clients see byte-identical output.
func TestSingleTreeResponseShapeUnchanged(t *testing.T) {
	m := trainModel(t, 1, 2000)
	_, ts := newTestServer(t, m)
	body := postRawBody(t, ts.URL+"/v1/predict", `{"row":{"salary":"50000","commission":"20000","age":"25","elevel":"e2","car":"make3","zipcode":"zip1","hvalue":"100000","hyears":"10","loan":"100000"}}`)
	for _, key := range []string{`"proba"`, `"trees"`} {
		if strings.Contains(body, key) {
			t.Fatalf("single-tree response leaked %s: %s", key, body)
		}
	}
	var info ModelInfo
	if code := getJSON(t, ts.URL+"/v1/model/default", &info); code != 200 {
		t.Fatalf("model info status %d", code)
	}
	if info.Trees != 0 {
		t.Fatalf("single-tree info.Trees = %d, want omitted 0", info.Trees)
	}
}

// A hot swap can replace a single tree with a forest: the v2 envelope
// uploads through the same endpoint and the response shape follows.
func TestModelSwapTreeToForest(t *testing.T) {
	m := trainModel(t, 1, 2000)
	_, ts := newTestServer(t, m)

	f := trainForest(t, 3)
	var buf bytes.Buffer
	if err := f.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/default", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forest upload status %d", resp.StatusCode)
	}

	var single predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, &single); code != 200 {
		t.Fatalf("predict after swap status %d", code)
	}
	if single.Trees != 3 || len(single.Proba) == 0 {
		t.Fatalf("post-swap response not forest-shaped: %+v", single)
	}
}

// postRawBody posts a raw JSON string and returns the raw response body.
func postRawBody(t testing.TB, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newHTTPServer mounts s on an httptest listener and returns its base URL.
func newHTTPServer(t testing.TB, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
