// Package serve is the model-serving subsystem: a stdlib-only net/http
// server over a registry of trained parclass models. The request path is
// the FastFlow farm shape the training engines already use — accept,
// decode, fan a batch out over worker shards (Model.PredictBatch), reduce
// — and models are hot-swappable: POST /models/{name} parses and compiles
// the replacement off to the side, then publishes it with one atomic
// pointer store, so in-flight requests finish on the model they started
// with and no request is ever dropped during a swap.
//
// Routes:
//
//	POST /predict          classify one row or a batch of rows
//	GET  /healthz          liveness + model count
//	GET  /metrics          request counts, latency/batch histograms
//	GET  /models           list registered models
//	GET  /model/{name}     stats, schema, optional rules (?rules=1)
//	POST /models/{name}    load/replace a model from model JSON
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	parclass "repro"
	"repro/internal/dataset"
)

// DefaultModelName is the registry name used when a request names no model.
const DefaultModelName = "default"

// maxModelBytes bounds a POST /models/{name} body.
const maxModelBytes = 256 << 20

// loadedModel is one immutable published model version.
type loadedModel struct {
	model    *parclass.Model
	loadedAt time.Time
	source   string
}

// slot is a registry entry: the atomically swappable current version plus
// per-model counters that survive swaps.
type slot struct {
	ptr         atomic.Pointer[loadedModel]
	predictions atomic.Int64
	swaps       atomic.Int64
}

// Server serves predictions over a registry of named models. Create with
// New, register models with Load, and mount Handler.
type Server struct {
	defaultModel string
	mu           sync.RWMutex // guards the name→slot map, not the models
	models       map[string]*slot
	met          *metrics
}

// New creates an empty server. defaultModel is the name resolved when a
// predict request omits "model" ("" means DefaultModelName).
func New(defaultModel string) *Server {
	if defaultModel == "" {
		defaultModel = DefaultModelName
	}
	return &Server{
		defaultModel: defaultModel,
		models:       make(map[string]*slot),
		met:          newMetrics(),
	}
}

// Load registers (or hot-swaps) a model under name and reports whether an
// earlier version was replaced. The model is compiled before publication
// so no request pays the flat-tree build.
func (s *Server) Load(name string, m *parclass.Model, source string) (swapped bool, err error) {
	if name == "" {
		name = s.defaultModel
	}
	if err := m.Compile(); err != nil {
		return false, err
	}
	sl := s.slot(name, true)
	old := sl.ptr.Swap(&loadedModel{model: m, loadedAt: time.Now(), source: source})
	sl.swaps.Add(1)
	return old != nil, nil
}

// slot returns name's registry entry, creating it when create is set.
func (s *Server) slot(name string, create bool) *slot {
	s.mu.RLock()
	sl := s.models[name]
	s.mu.RUnlock()
	if sl != nil || !create {
		return sl
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sl = s.models[name]; sl == nil {
		sl = &slot{}
		s.models[name] = sl
	}
	return sl
}

// current returns the published version of name's model, or nil.
func (s *Server) current(name string) (*slot, *loadedModel) {
	sl := s.slot(name, false)
	if sl == nil {
		return nil, nil
	}
	return sl, sl.ptr.Load()
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /models", s.handleList)
	mux.HandleFunc("GET /model/{name}", s.handleModelInfo)
	mux.HandleFunc("POST /models/{name}", s.handleModelSwap)
	return mux
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr renders an error body and bumps the route's error counter.
func writeErr(w http.ResponseWriter, rs *routeStats, code int, format string, args ...any) {
	rs.errors.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// predictRequest is the POST /predict body: exactly one of Row (single)
// or Rows (batch), plus an optional model name.
type predictRequest struct {
	Model string              `json:"model,omitempty"`
	Row   map[string]string   `json:"row,omitempty"`
	Rows  []map[string]string `json:"rows,omitempty"`
}

type predictResponse struct {
	Model       string   `json:"model"`
	Prediction  string   `json:"prediction,omitempty"`
	Predictions []string `json:"predictions,omitempty"`
	Rows        int      `json:"rows"`
	ElapsedUS   int64    `json:"elapsed_us"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.predict
	rs.requests.Add(1)
	start := time.Now()
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxModelBytes)).Decode(&req); err != nil {
		writeErr(w, rs, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if (req.Row == nil) == (len(req.Rows) == 0) {
		writeErr(w, rs, http.StatusBadRequest, `need exactly one of "row" and "rows"`)
		return
	}
	name := req.Model
	if name == "" {
		name = s.defaultModel
	}
	sl, cur := s.current(name)
	if cur == nil {
		writeErr(w, rs, http.StatusNotFound, "no model %q", name)
		return
	}
	resp := predictResponse{Model: name}
	if req.Row != nil {
		pred, err := cur.model.Predict(req.Row)
		if err != nil {
			writeErr(w, rs, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.Prediction = pred
		resp.Rows = 1
	} else {
		preds, err := cur.model.PredictBatch(req.Rows)
		if err != nil {
			writeErr(w, rs, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.Predictions = preds
		resp.Rows = len(preds)
	}
	sl.predictions.Add(int64(resp.Rows))
	s.met.predictions.Add(int64(resp.Rows))
	resp.ElapsedUS = time.Since(start).Microseconds()
	s.met.latencyUS.observe(resp.ElapsedUS)
	s.met.batchRows.observe(int64(resp.Rows))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.health.requests.Add(1)
	s.mu.RLock()
	n := len(s.models)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"models":         n,
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	})
}

// metricsSnapshot is the GET /metrics document.
type metricsSnapshot struct {
	UptimeSeconds    float64                  `json:"uptime_seconds"`
	Requests         map[string]routeSnapshot `json:"requests"`
	PredictionsTotal int64                    `json:"predictions_total"`
	PredictLatencyUS histogramSnapshot        `json:"predict_latency_us"`
	PredictBatchRows histogramSnapshot        `json:"predict_batch_rows"`
	Models           map[string]modelCounters `json:"models"`
}

type modelCounters struct {
	Predictions int64     `json:"predictions"`
	Swaps       int64     `json:"swaps"`
	LoadedAt    time.Time `json:"loaded_at"`
	Source      string    `json:"source,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.stats.requests.Add(1)
	snap := metricsSnapshot{
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Requests: map[string]routeSnapshot{
			"predict":    s.met.predict.snapshot(),
			"model_swap": s.met.swap.snapshot(),
			"model_info": s.met.info.snapshot(),
			"models":     s.met.list.snapshot(),
			"healthz":    s.met.health.snapshot(),
			"metrics":    s.met.stats.snapshot(),
		},
		PredictionsTotal: s.met.predictions.Load(),
		PredictLatencyUS: s.met.latencyUS.snapshot(),
		PredictBatchRows: s.met.batchRows.snapshot(),
		Models:           make(map[string]modelCounters),
	}
	s.mu.RLock()
	for name, sl := range s.models {
		mc := modelCounters{
			Predictions: sl.predictions.Load(),
			Swaps:       sl.swaps.Load(),
		}
		if cur := sl.ptr.Load(); cur != nil {
			mc.LoadedAt = cur.loadedAt
			mc.Source = cur.source
		}
		snap.Models[name] = mc
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.met.list.requests.Add(1)
	type entry struct {
		Name        string    `json:"name"`
		LoadedAt    time.Time `json:"loaded_at"`
		Source      string    `json:"source,omitempty"`
		Predictions int64     `json:"predictions"`
		Swaps       int64     `json:"swaps"`
	}
	var out []entry
	s.mu.RLock()
	for name, sl := range s.models {
		cur := sl.ptr.Load()
		if cur == nil {
			continue
		}
		out = append(out, entry{
			Name: name, LoadedAt: cur.loadedAt, Source: cur.source,
			Predictions: sl.predictions.Load(), Swaps: sl.swaps.Load(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

// attrInfo is the schema exposure cmd/loadgen uses to synthesize rows.
type attrInfo struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Categories []string `json:"categories,omitempty"`
}

// ModelInfo is the GET /model/{name} document.
type ModelInfo struct {
	Name        string    `json:"name"`
	LoadedAt    time.Time `json:"loaded_at"`
	Source      string    `json:"source,omitempty"`
	Predictions int64     `json:"predictions"`
	Swaps       int64     `json:"swaps"`
	Stats       struct {
		Nodes             int `json:"nodes"`
		Leaves            int `json:"leaves"`
		Levels            int `json:"levels"`
		MaxLeavesPerLevel int `json:"max_leaves_per_level"`
	} `json:"stats"`
	Classes []string   `json:"classes"`
	Attrs   []attrInfo `json:"attrs"`
	Rules   []string   `json:"rules,omitempty"`
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.info
	rs.requests.Add(1)
	name := r.PathValue("name")
	sl, cur := s.current(name)
	if cur == nil {
		writeErr(w, rs, http.StatusNotFound, "no model %q", name)
		return
	}
	info := ModelInfo{
		Name: name, LoadedAt: cur.loadedAt, Source: cur.source,
		Predictions: sl.predictions.Load(), Swaps: sl.swaps.Load(),
	}
	st := cur.model.Stats()
	info.Stats.Nodes = st.Nodes
	info.Stats.Leaves = st.Leaves
	info.Stats.Levels = st.Levels
	info.Stats.MaxLeavesPerLevel = st.MaxLeavesPerLevel
	schema := cur.model.Tree().Schema
	info.Classes = append(info.Classes, schema.Classes...)
	for i := range schema.Attrs {
		a := &schema.Attrs[i]
		kind := "continuous"
		if a.Kind == dataset.Categorical {
			kind = "categorical"
		}
		info.Attrs = append(info.Attrs, attrInfo{Name: a.Name, Kind: kind, Categories: a.Categories})
	}
	if r.URL.Query().Get("rules") == "1" {
		info.Rules = cur.model.Rules()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModelSwap(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.swap
	rs.requests.Add(1)
	name := r.PathValue("name")
	m, err := parclass.ReadModel(http.MaxBytesReader(w, r.Body, maxModelBytes))
	if err != nil {
		writeErr(w, rs, http.StatusBadRequest, "loading model: %v", err)
		return
	}
	swapped, err := s.Load(name, m, "upload from "+r.RemoteAddr)
	if err != nil {
		writeErr(w, rs, http.StatusBadRequest, "compiling model: %v", err)
		return
	}
	st := m.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"swapped": swapped,
		"nodes":   st.Nodes,
		"leaves":  st.Leaves,
		"levels":  st.Levels,
	})
}
