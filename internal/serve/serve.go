// Package serve is the model-serving subsystem: a stdlib-only net/http
// server over a registry of trained parclass models. The request path is
// the FastFlow farm shape the training engines already use — accept,
// decode, fan a batch out over worker shards (Model.PredictBatch), reduce
// — and models are hot-swappable: POST /models/{name} parses and compiles
// the replacement off to the side, then publishes it with one atomic
// pointer store, so in-flight requests finish on the model they started
// with and no request is ever dropped during a swap.
//
// Routes (each also available under the versioned /v1 prefix, the stable
// contract; the unversioned paths are aliases kept for old clients):
//
//	POST /v1/predict          classify one row or a batch of rows
//	POST /v1/ingest           append labeled rows to the retrain window
//	GET  /v1/healthz          liveness + model count
//	GET  /v1/metrics          request counts, latency/batch histograms,
//	                          live build-phase gauges
//	GET  /v1/models           list registered models
//	GET  /v1/model/{name}     stats, schema, optional rules (?rules=1)
//	POST /v1/models/{name}    load/replace a model from model JSON
//
// A known path hit with the wrong method answers 405 with an Allow header
// and a JSON error body.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	parclass "repro"
	"repro/internal/dataset"
)

// DefaultModelName is the registry name used when a request names no model.
const DefaultModelName = "default"

// maxModelBytes bounds a POST /models/{name} body. Model uploads are rare
// and legitimately large; the predict hot path gets its own, much smaller
// cap (DefaultPredictMaxBytes) so one client cannot make the server
// buffer-decode a quarter-gigabyte JSON body per request.
const maxModelBytes = 256 << 20

// DefaultPredictMaxBytes is the default POST /predict body cap; override
// with Server.SetPredictMaxBytes (parclassd: -predict-max-bytes).
const DefaultPredictMaxBytes = 8 << 20

// loadedModel is one immutable published model version. The registry
// holds Predictors, so a slot can serve a single tree or a forest and a
// hot swap can change the shape.
type loadedModel struct {
	model    parclass.Predictor
	loadedAt time.Time
	source   string
}

// slot is a registry entry: the atomically swappable current version plus
// per-model counters that survive swaps.
type slot struct {
	ptr         atomic.Pointer[loadedModel]
	predictions atomic.Int64
	swaps       atomic.Int64
	// failure is the last failed training/load attempt, nil when healthy;
	// a successful Load clears it.
	failure atomic.Pointer[trainFailure]
}

// trainFailure records one failed training or load attempt for a model name.
type trainFailure struct {
	msg string
	at  time.Time
}

// Server serves predictions over a registry of named models. Create with
// New, register models with Load, and mount Handler.
type Server struct {
	defaultModel string
	mu           sync.RWMutex // guards the name→slot map, not the models
	models       map[string]*slot
	met          *metrics
	// buildMon, when set, surfaces a training run's live phase totals on
	// /metrics (see SetBuildMonitor).
	buildMon atomic.Pointer[parclass.BuildMonitor]
	// predictCap overrides DefaultPredictMaxBytes when positive.
	predictCap atomic.Int64
	// batch is the predict micro-batcher, nil until EnableBatching.
	batch atomic.Pointer[batcher]
	// ing is the online-learning subsystem (labeled-row windows + retrain
	// counters), nil until EnableIngest.
	ing atomic.Pointer[ingestState]
	// levelMode is the server-wide batch-kernel selection (a
	// parclass.LevelSyncMode), applied to every model at Load.
	levelMode atomic.Int32
	// swapHook, when set, observes every locally published model version
	// (uploads and retrain swaps) with its serialized artifact — the seam
	// the cluster replicator hangs off (see SetSwapHook).
	swapHook atomic.Pointer[SwapHook]
}

// SwapHook observes one locally published model version: a successful
// POST /v1/models/{name} upload or a retrain-loop swap. raw is the
// artifact as versioned model JSON (the upload body, or the candidate
// re-serialized), so the observer can ship the exact bytes elsewhere
// without re-encoding. The hook runs on the publishing goroutine after
// the registry swap — keep it fast or hand off.
//
// Replication-applied loads go through Load directly and do NOT fire the
// hook; only local publishes do, which is what keeps a replicated swap
// from echoing around the fleet forever.
type SwapHook func(name string, m parclass.Predictor, raw []byte, source string)

// SetSwapHook installs the local-publish observer (nil clears it). Safe
// to call at any time, but install it before serving so no publish is
// missed.
func (s *Server) SetSwapHook(h SwapHook) {
	if h == nil {
		s.swapHook.Store(nil)
		return
	}
	s.swapHook.Store(&h)
}

// firePublish invokes the swap hook for a locally published version,
// serializing the predictor when the caller has no upload bytes in hand.
func (s *Server) firePublish(name string, m parclass.Predictor, raw []byte, source string) {
	hp := s.swapHook.Load()
	if hp == nil {
		return
	}
	if raw == nil {
		var buf bytes.Buffer
		if err := m.WriteModel(&buf); err != nil {
			// A model that cannot re-serialize cannot replicate; surface it
			// as a degraded-health failure instead of dropping it silently.
			s.RecordFailure(name, fmt.Errorf("serializing %q for replication: %w", name, err))
			return
		}
		raw = buf.Bytes()
	}
	(*hp)(name, m, raw, source)
}

// SetLevelSyncMode sets the server-wide batch-kernel selection (see
// parclass.LevelSyncMode): it applies to every currently loaded model and
// to models loaded afterwards. Per-request "level_sync" overrides it.
// Safe to call at any time, including while serving.
func (s *Server) SetLevelSyncMode(mode parclass.LevelSyncMode) {
	s.levelMode.Store(int32(mode))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sl := range s.models {
		if cur := sl.ptr.Load(); cur != nil {
			cur.model.SetLevelSync(mode)
		}
	}
}

// SetPredictMaxBytes overrides the POST /predict body cap (bytes); n <= 0
// restores DefaultPredictMaxBytes. Safe to call at any time.
func (s *Server) SetPredictMaxBytes(n int64) { s.predictCap.Store(n) }

// predictMaxBytes is the effective predict body cap.
func (s *Server) predictMaxBytes() int64 {
	if n := s.predictCap.Load(); n > 0 {
		return n
	}
	return DefaultPredictMaxBytes
}

// SetBuildMonitor attaches a training run's monitor; GET /metrics then
// reports the build state and per-phase totals live while the build runs
// and the final breakdown afterwards. Safe to call at any time, including
// while serving.
func (s *Server) SetBuildMonitor(bm *parclass.BuildMonitor) { s.buildMon.Store(bm) }

// New creates an empty server. defaultModel is the name resolved when a
// predict request omits "model" ("" means DefaultModelName).
func New(defaultModel string) *Server {
	if defaultModel == "" {
		defaultModel = DefaultModelName
	}
	return &Server{
		defaultModel: defaultModel,
		models:       make(map[string]*slot),
		met:          newMetrics(),
	}
}

// Load registers (or hot-swaps) a classifier — a single tree or a forest
// — under name and reports whether an earlier version was replaced. The
// predictor is compiled before publication so no request pays the
// flat-pool build.
func (s *Server) Load(name string, m parclass.Predictor, source string) (swapped bool, err error) {
	return s.loadGuarded(name, m, source, nil)
}

// loadGuarded is Load with an optional admission guard: the new version
// is published only while guard(current model) holds, re-checked
// atomically against the registry pointer (CAS loop), so a publish racing
// another swap can never install a version its guard would have refused.
// guard sees nil when the name has no serving model. It returns
// (published, swapped, err); published is false only when the guard
// refused.
func (s *Server) loadGuarded(name string, m parclass.Predictor, source string, guard func(old parclass.Predictor) bool) (swapped bool, err error) {
	if name == "" {
		name = s.defaultModel
	}
	if err := m.Compile(); err != nil {
		return false, err
	}
	m.SetLevelSync(parclass.LevelSyncMode(s.levelMode.Load()))
	sl := s.slot(name, true)
	lm := &loadedModel{model: m, loadedAt: time.Now(), source: source}
	for {
		old := sl.ptr.Load()
		if guard != nil {
			var oldm parclass.Predictor
			if old != nil {
				oldm = old.model
			}
			if !guard(oldm) {
				return false, errStaleGuard
			}
		}
		if sl.ptr.CompareAndSwap(old, lm) {
			sl.swaps.Add(1)
			sl.failure.Store(nil) // a successful load ends the degraded state
			return old != nil, nil
		}
	}
}

// errStaleGuard reports a loadGuarded publish refused by its guard: the
// registry moved to a version the guard no longer accepts.
var errStaleGuard = errors.New("serve: guarded load refused, serving model changed")

// RecordFailure records a failed training or load attempt for name: GET
// /healthz reports the server degraded — 503 when the name has no serving
// model at all, 200 when an older version still serves — and GET /metrics
// carries the error until a later Load of the same name succeeds.
func (s *Server) RecordFailure(name string, err error) {
	if err == nil {
		return
	}
	if name == "" {
		name = s.defaultModel
	}
	sl := s.slot(name, true)
	sl.failure.Store(&trainFailure{msg: err.Error(), at: time.Now()})
}

// slot returns name's registry entry, creating it when create is set.
func (s *Server) slot(name string, create bool) *slot {
	s.mu.RLock()
	sl := s.models[name]
	s.mu.RUnlock()
	if sl != nil || !create {
		return sl
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sl = s.models[name]; sl == nil {
		sl = &slot{}
		s.models[name] = sl
	}
	return sl
}

// current returns the published version of name's model, or nil.
func (s *Server) current(name string) (*slot, *loadedModel) {
	sl := s.slot(name, false)
	if sl == nil {
		return nil, nil
	}
	return sl, sl.ptr.Load()
}

// Handler builds the route table: every route under /v1 (the stable
// contract) and again unversioned (aliases for old clients), with a
// methodless fallback per path answering 405 + Allow for wrong-method hits.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, p := range []string{"", "/v1"} {
		route(mux, "POST", p+"/predict", s.handlePredict)
		route(mux, "POST", p+"/ingest", s.handleIngest)
		route(mux, "GET", p+"/healthz", s.handleHealthz)
		route(mux, "GET", p+"/metrics", s.handleMetrics)
		route(mux, "GET", p+"/models", s.handleList)
		route(mux, "GET", p+"/model/{name}", s.handleModelInfo)
		route(mux, "POST", p+"/models/{name}", s.handleModelSwap)
	}
	return mux
}

// route registers h for method+path plus a methodless fallback on the same
// pattern. The Go 1.22 mux prefers the method-specific pattern, so the
// fallback only sees requests with the wrong method and can answer 405
// with the Allow header and a JSON body instead of the mux's plain-text
// default.
func route(mux *http.ServeMux, method, path string, h http.HandlerFunc) {
	mux.HandleFunc(method+" "+path, h)
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", method)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{
			"error": fmt.Sprintf("method %s not allowed on %s (allow: %s)",
				r.Method, strings.TrimPrefix(r.URL.Path, "/v1"), method),
		})
	})
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// predictErrCode maps prediction failures to status codes: malformed rows
// are the client's fault (422), anything else is a server-side failure.
func predictErrCode(err error) int {
	if errors.Is(err, parclass.ErrUnknownAttribute) || errors.Is(err, parclass.ErrUnknownValue) {
		return http.StatusUnprocessableEntity
	}
	if errors.Is(err, parclass.ErrNotCompiled) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

// writeErr renders an error body and bumps the route's error counter.
func writeErr(w http.ResponseWriter, rs *routeStats, code int, format string, args ...any) {
	rs.errors.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// predictRequest is the POST /predict body: exactly one of Row (single,
// name→value), Rows (batch of the same), Values (single positional row in
// schema attribute order — the fast path, no per-attribute keys on the
// wire) or ValuesRows (batch positional), plus an optional model name.
// NoBatch opts this one request out of server-side micro-batching: it runs
// inline instead of joining the coalescing queue (useful for latency-
// sensitive probes while bulk traffic batches). LevelSync overrides the
// batch kernel for this request: "on" forces the level-synchronous kernel,
// "off" the preorder walker, "auto"/"" inherits the server's setting —
// purely a performance knob, the predictions are identical either way.
type predictRequest struct {
	Model      string              `json:"model,omitempty"`
	Row        map[string]string   `json:"row,omitempty"`
	Rows       []map[string]string `json:"rows,omitempty"`
	Values     []string            `json:"values,omitempty"`
	ValuesRows [][]string          `json:"values_rows,omitempty"`
	NoBatch    bool                `json:"no_batch,omitempty"`
	LevelSync  string              `json:"level_sync,omitempty"`
}

// predictResponse is the POST /predict reply. Proba and Trees appear only
// when the serving predictor is a forest — single-tree responses carry
// exactly the pre-forest field set, byte for byte.
type predictResponse struct {
	Model       string   `json:"model"`
	Prediction  string   `json:"prediction,omitempty"`
	Predictions []string `json:"predictions,omitempty"`
	// Proba is the per-class vote fraction for a single-row request served
	// by a forest.
	Proba map[string]float64 `json:"proba,omitempty"`
	// Trees is the ensemble size when > 1 (forest models).
	Trees     int   `json:"trees,omitempty"`
	Rows      int   `json:"rows"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// decodeBody decodes exactly one JSON document from r's body under cap
// bytes into v, answering 413 on an oversized body (http.MaxBytesError)
// and 400 on malformed JSON or trailing garbage after the document, and
// reports whether the caller may proceed.
func decodeBody(w http.ResponseWriter, r *http.Request, rs *routeStats, cap int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, cap))
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, rs, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeErr(w, rs, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	// The second Decode must hit io.EOF: `{"rows":[...]}{"junk":1}` is a
	// malformed request, not a request plus ignorable noise.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeErr(w, rs, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.predict
	rs.requests.Add(1)
	start := time.Now()
	var req predictRequest
	if !decodeBody(w, r, rs, s.predictMaxBytes(), &req) {
		return
	}
	forms := 0
	for _, set := range []bool{req.Row != nil, len(req.Rows) > 0, len(req.Values) > 0, len(req.ValuesRows) > 0} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		writeErr(w, rs, http.StatusBadRequest, `need exactly one of "row", "rows", "values" and "values_rows"`)
		return
	}
	lsMode, lsErr := parclass.ParseLevelSyncMode(req.LevelSync)
	if lsErr != nil {
		writeErr(w, rs, http.StatusBadRequest, `bad "level_sync" %q (want "auto", "on" or "off")`, req.LevelSync)
		return
	}
	name := req.Model
	if name == "" {
		name = s.defaultModel
	}
	sl, cur := s.current(name)
	// Single-row requests served by a forest answer inline even when
	// batching is on: the vote distribution (proba) comes out of the same
	// fused walk, and the coalesced batch path would drop it.
	var pp parclass.ProbaPredictor
	if cur != nil {
		pp, _ = cur.model.(parclass.ProbaPredictor)
	}
	inlineProba := pp != nil && (req.Row != nil || len(req.Values) > 0)
	// The coalescing path: join the admission queue and let the dispatcher
	// fold this request into one sharded batch walk per linger window. The
	// queue is bounded; a full queue sheds the request with 429 instead of
	// queueing goroutines and memory without bound.
	if b := s.batch.Load(); b != nil && !req.NoBatch && !inlineProba {
		p := newPending(name, lsMode, &req)
		if !b.submit(p) {
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", b.retryAfter())
			writeErr(w, rs, http.StatusTooManyRequests, "prediction queue full, retry later")
			return
		}
		select {
		case out := <-p.done:
			if out.code != http.StatusOK {
				writeErr(w, rs, out.code, "%s", out.err)
				return
			}
			resp := predictResponse{Model: name, Rows: p.nrows()}
			// Trees comes from the outcome — the model that actually served
			// the batch at dispatch time — not from the version current when
			// the request was admitted, so a hot swap mid-queue cannot
			// produce predictions from one model labeled with another's
			// ensemble size.
			if out.trees > 1 {
				resp.Trees = out.trees
			}
			if p.single {
				resp.Prediction = out.preds[0]
			} else {
				resp.Predictions = out.preds
			}
			resp.ElapsedUS = time.Since(start).Microseconds()
			s.met.latencyUS.observe(resp.ElapsedUS)
			s.met.batchRows.observe(int64(resp.Rows))
			writeJSON(w, http.StatusOK, resp)
		case <-r.Context().Done():
			// Client gone; the dispatcher's send lands in the buffered done
			// channel and is garbage collected with it.
			rs.errors.Add(1)
		}
		return
	}
	if cur == nil {
		writeErr(w, rs, http.StatusNotFound, "no model %q", name)
		return
	}
	resp := predictResponse{Model: name}
	if nt := cur.model.NumTrees(); nt > 1 {
		resp.Trees = nt
	}
	switch {
	case req.Row != nil:
		var pred string
		var err error
		if pp != nil {
			pred, resp.Proba, err = pp.PredictProba(req.Row)
		} else {
			pred, err = cur.model.Predict(req.Row)
		}
		if err != nil {
			writeErr(w, rs, predictErrCode(err), "%v", err)
			return
		}
		resp.Prediction = pred
		resp.Rows = 1
	case len(req.Values) > 0:
		var pred string
		var err error
		if pp != nil {
			pred, resp.Proba, err = pp.PredictValuesProba(req.Values)
		} else {
			pred, err = cur.model.PredictValues(req.Values)
		}
		if err != nil {
			writeErr(w, rs, predictErrCode(err), "%v", err)
			return
		}
		resp.Prediction = pred
		resp.Rows = 1
	case len(req.ValuesRows) > 0:
		// One sharded batch walk, not a row-at-a-time PredictValues loop;
		// PredictValuesBatch keeps the "row %d:" error attribution.
		preds, err := cur.model.PredictValuesBatchMode(req.ValuesRows, lsMode)
		if err != nil {
			writeErr(w, rs, predictErrCode(err), "%v", err)
			return
		}
		resp.Predictions = preds
		resp.Rows = len(preds)
	default:
		preds, err := cur.model.PredictBatchMode(req.Rows, lsMode)
		if err != nil {
			writeErr(w, rs, predictErrCode(err), "%v", err)
			return
		}
		resp.Predictions = preds
		resp.Rows = len(preds)
	}
	sl.predictions.Add(int64(resp.Rows))
	s.met.predictions.Add(int64(resp.Rows))
	resp.ElapsedUS = time.Since(start).Microseconds()
	s.met.latencyUS.observe(resp.ElapsedUS)
	s.met.batchRows.observe(int64(resp.Rows))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.health.requests.Add(1)
	published := 0
	failures := make(map[string]any)
	unserved := false
	s.mu.RLock()
	for name, sl := range s.models {
		cur := sl.ptr.Load()
		if cur != nil {
			published++
		}
		if f := sl.failure.Load(); f != nil {
			failures[name] = map[string]any{"error": f.msg, "at": f.at}
			if cur == nil {
				unserved = true
			}
		}
	}
	s.mu.RUnlock()
	// Degradation policy: any recorded failure flips the status to
	// "degraded"; the probe only turns unhealthy (503) when a failed name
	// has no serving model at all — a failed retrain of a model that still
	// serves its previous version keeps answering 200 so orchestrators do
	// not kill a working replica.
	status, code := "ok", http.StatusOK
	if len(failures) > 0 {
		status = "degraded"
		if unserved {
			code = http.StatusServiceUnavailable
		}
	}
	body := map[string]any{
		"status":         status,
		"models":         published,
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	}
	if len(failures) > 0 {
		body["failures"] = failures
	}
	writeJSON(w, code, body)
}

// metricsSnapshot is the GET /metrics document.
type metricsSnapshot struct {
	UptimeSeconds    float64                  `json:"uptime_seconds"`
	Requests         map[string]routeSnapshot `json:"requests"`
	PredictionsTotal int64                    `json:"predictions_total"`
	PredictLatencyUS histogramSnapshot        `json:"predict_latency_us"`
	PredictBatchRows histogramSnapshot        `json:"predict_batch_rows"`
	// Degraded mirrors /healthz: true while any model carries an uncleared
	// training/load failure.
	Degraded bool                     `json:"degraded"`
	Models   map[string]modelCounters `json:"models"`
	// Build is present when a BuildMonitor is attached: the training run's
	// state and per-phase gauges, live while the build is in progress.
	Build *buildStatus `json:"build,omitempty"`
	// Batching is present when the micro-batcher is enabled: its knobs, a
	// live queue-depth gauge, shed/dispatch counters and coalescing
	// histograms.
	Batching *batchingSnapshot `json:"batching,omitempty"`
	// Ingest is present when online learning is enabled: window sizes,
	// ingested rows/s, retrain cycle counters and the last swap/reject
	// decision with its holdout accuracies.
	Ingest *ingestSnapshot `json:"ingest,omitempty"`
}

// batchingSnapshot is the /metrics micro-batcher section.
type batchingSnapshot struct {
	MaxRows  int   `json:"max_rows"`
	LingerUS int64 `json:"linger_us"`
	QueueCap int   `json:"queue_cap"`
	// QueueDepth is the live number of admitted requests waiting for the
	// dispatcher at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// ShedTotal counts requests rejected 429 by admission control.
	ShedTotal int64 `json:"shed_total"`
	// BatchesTotal counts coalesced dispatches (flat-tree batch walks).
	BatchesTotal int64 `json:"batches_total"`
	// CoalescedRows / CoalescedRequests distribute the rows and HTTP
	// requests folded into each dispatch.
	CoalescedRows     histogramSnapshot `json:"coalesced_rows"`
	CoalescedRequests histogramSnapshot `json:"coalesced_requests"`
}

// buildStatus is the /metrics build section.
type buildStatus struct {
	State          string             `json:"state"`
	Algorithm      string             `json:"algorithm,omitempty"`
	Procs          int                `json:"procs,omitempty"`
	BuildSeconds   float64            `json:"build_seconds,omitempty"`
	PhaseSeconds   map[string]float64 `json:"phase_seconds,omitempty"`
	Skew           float64            `json:"skew,omitempty"`
	Efficiency     float64            `json:"efficiency,omitempty"`
	WorkerBusySecs []float64          `json:"worker_busy_seconds,omitempty"`
}

// buildStatusFrom renders a monitor snapshot.
func buildStatusFrom(bm *parclass.BuildMonitor) *buildStatus {
	state, bt := bm.Snapshot()
	bs := &buildStatus{State: state}
	if bt == nil {
		return bs
	}
	tot := bt.Totals()
	bs.Algorithm = bt.Algorithm.String()
	bs.Procs = bt.Procs
	bs.BuildSeconds = bt.BuildSeconds
	bs.PhaseSeconds = map[string]float64{
		"eval": tot.Eval, "winner": tot.Winner, "split": tot.Split,
		"barrier": tot.Barrier, "idle": tot.Idle, "bin": tot.Bin,
	}
	bs.Skew = bt.Skew()
	bs.Efficiency = bt.Efficiency()
	for _, w := range bt.WorkerTotals() {
		bs.WorkerBusySecs = append(bs.WorkerBusySecs, w.Busy())
	}
	return bs
}

type modelCounters struct {
	Predictions int64     `json:"predictions"`
	Swaps       int64     `json:"swaps"`
	LoadedAt    time.Time `json:"loaded_at"`
	Source      string    `json:"source,omitempty"`
	// LastError/LastErrorAt carry the model's uncleared training or load
	// failure, empty while healthy.
	LastError   string    `json:"last_error,omitempty"`
	LastErrorAt time.Time `json:"last_error_at,omitzero"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.stats.requests.Add(1)
	snap := metricsSnapshot{
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Requests: map[string]routeSnapshot{
			"predict":    s.met.predict.snapshot(),
			"ingest":     s.met.ingest.snapshot(),
			"model_swap": s.met.swap.snapshot(),
			"model_info": s.met.info.snapshot(),
			"models":     s.met.list.snapshot(),
			"healthz":    s.met.health.snapshot(),
			"metrics":    s.met.stats.snapshot(),
		},
		PredictionsTotal: s.met.predictions.Load(),
		PredictLatencyUS: s.met.latencyUS.snapshot(),
		PredictBatchRows: s.met.batchRows.snapshot(),
		Models:           make(map[string]modelCounters),
	}
	if bm := s.buildMon.Load(); bm != nil {
		snap.Build = buildStatusFrom(bm)
	}
	if st := s.ing.Load(); st != nil {
		snap.Ingest = st.snapshot()
	}
	if b := s.batch.Load(); b != nil {
		snap.Batching = &batchingSnapshot{
			MaxRows:           b.cfg.MaxRows,
			LingerUS:          b.cfg.Linger.Microseconds(),
			QueueCap:          b.cfg.QueueDepth,
			QueueDepth:        len(b.ch),
			ShedTotal:         s.met.shed.Load(),
			BatchesTotal:      s.met.batches.Load(),
			CoalescedRows:     s.met.coalescedRows.snapshot(),
			CoalescedRequests: s.met.coalescedReqs.snapshot(),
		}
	}
	s.mu.RLock()
	for name, sl := range s.models {
		mc := modelCounters{
			Predictions: sl.predictions.Load(),
			Swaps:       sl.swaps.Load(),
		}
		if cur := sl.ptr.Load(); cur != nil {
			mc.LoadedAt = cur.loadedAt
			mc.Source = cur.source
		}
		if f := sl.failure.Load(); f != nil {
			mc.LastError = f.msg
			mc.LastErrorAt = f.at
			snap.Degraded = true
		}
		snap.Models[name] = mc
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.met.list.requests.Add(1)
	type entry struct {
		Name        string    `json:"name"`
		LoadedAt    time.Time `json:"loaded_at"`
		Source      string    `json:"source,omitempty"`
		Predictions int64     `json:"predictions"`
		Swaps       int64     `json:"swaps"`
	}
	var out []entry
	s.mu.RLock()
	for name, sl := range s.models {
		cur := sl.ptr.Load()
		if cur == nil {
			continue
		}
		out = append(out, entry{
			Name: name, LoadedAt: cur.loadedAt, Source: cur.source,
			Predictions: sl.predictions.Load(), Swaps: sl.swaps.Load(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

// attrInfo is the schema exposure cmd/loadgen uses to synthesize rows.
type attrInfo struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Categories []string `json:"categories,omitempty"`
}

// ModelInfo is the GET /model/{name} document.
type ModelInfo struct {
	Name        string    `json:"name"`
	LoadedAt    time.Time `json:"loaded_at"`
	Source      string    `json:"source,omitempty"`
	Predictions int64     `json:"predictions"`
	Swaps       int64     `json:"swaps"`
	Stats       struct {
		Nodes             int `json:"nodes"`
		Leaves            int `json:"leaves"`
		Levels            int `json:"levels"`
		MaxLeavesPerLevel int `json:"max_leaves_per_level"`
	} `json:"stats"`
	// Trees is the ensemble size when > 1 (forest models).
	Trees int `json:"trees,omitempty"`
	// OOB is a forest's out-of-bag error estimate (fraction of scored
	// training rows misclassified by the members whose bootstrap left them
	// out); absent for single trees and forests without an estimate.
	OOB *float64 `json:"oob,omitempty"`
	// OOBRows is how many training rows the estimate scored.
	OOBRows int        `json:"oob_rows,omitempty"`
	Classes []string   `json:"classes"`
	Attrs   []attrInfo `json:"attrs"`
	Rules   []string   `json:"rules,omitempty"`
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.info
	rs.requests.Add(1)
	name := r.PathValue("name")
	sl, cur := s.current(name)
	if cur == nil {
		writeErr(w, rs, http.StatusNotFound, "no model %q", name)
		return
	}
	info := ModelInfo{
		Name: name, LoadedAt: cur.loadedAt, Source: cur.source,
		Predictions: sl.predictions.Load(), Swaps: sl.swaps.Load(),
	}
	st := cur.model.Stats()
	info.Stats.Nodes = st.Nodes
	info.Stats.Leaves = st.Leaves
	info.Stats.Levels = st.Levels
	info.Stats.MaxLeavesPerLevel = st.MaxLeavesPerLevel
	if nt := cur.model.NumTrees(); nt > 1 {
		info.Trees = nt
	}
	if om, ok := cur.model.(interface {
		OOBError() (float64, bool)
		OOBRows() int
	}); ok {
		if oob, ok := om.OOBError(); ok {
			info.OOB = &oob
			info.OOBRows = om.OOBRows()
		}
	}
	schema := cur.model.Schema()
	info.Classes = append(info.Classes, schema.Classes...)
	for i := range schema.Attrs {
		a := &schema.Attrs[i]
		kind := "continuous"
		if a.Kind == dataset.Categorical {
			kind = "categorical"
		}
		info.Attrs = append(info.Attrs, attrInfo{Name: a.Name, Kind: kind, Categories: a.Categories})
	}
	// Rules rendering is single-tree only; forests omit the field.
	if r.URL.Query().Get("rules") == "1" {
		if rm, ok := cur.model.(interface{ Rules() []string }); ok {
			info.Rules = rm.Rules()
		}
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModelSwap(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.swap
	rs.requests.Add(1)
	name := r.PathValue("name")
	// ReadModel itself rejects trailing garbage after the model document
	// (tree.Read requires io.EOF after the first JSON value). With a swap
	// hook installed the body is buffered first so the hook receives the
	// exact uploaded artifact bytes; model uploads are rare, so the extra
	// copy is off every hot path.
	var (
		m   parclass.Predictor
		raw []byte
		err error
	)
	body := http.MaxBytesReader(w, r.Body, maxModelBytes)
	if s.swapHook.Load() != nil {
		if raw, err = io.ReadAll(body); err == nil {
			m, err = parclass.ReadModel(bytes.NewReader(raw))
		}
	} else {
		m, err = parclass.ReadModel(body)
	}
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, rs, http.StatusRequestEntityTooLarge,
				"model body exceeds %d bytes", mbe.Limit)
			return
		}
		writeErr(w, rs, http.StatusBadRequest, "loading model: %v", err)
		return
	}
	source := "upload from " + r.RemoteAddr
	swapped, err := s.Load(name, m, source)
	if err != nil {
		writeErr(w, rs, http.StatusBadRequest, "compiling model: %v", err)
		return
	}
	s.firePublish(name, m, raw, source)
	st := m.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"swapped": swapped,
		"nodes":   st.Nodes,
		"leaves":  st.Leaves,
		"levels":  st.Levels,
	})
}
