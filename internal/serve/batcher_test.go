package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// postRaw posts a raw body and returns status + decoded JSON error (if any).
func postRaw(t testing.TB, url, body string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]string
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

// TestPredictBodyCap413 checks the predict route has its own small body
// cap (not the 256 MiB model-upload cap) and maps http.MaxBytesError to
// 413 with the JSON error contract.
func TestPredictBodyCap413(t *testing.T) {
	m := trainModel(t, 1, 1000)
	s, ts := newTestServer(t, m)
	s.SetPredictMaxBytes(1 << 10)

	big := fmt.Sprintf(`{"row":{"pad":%q}}`, strings.Repeat("x", 4<<10))
	code, doc := postRaw(t, ts.URL+"/v1/predict", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", code)
	}
	if !strings.Contains(doc["error"], "1024") {
		t.Fatalf("413 body %q does not name the cap", doc["error"])
	}
	// Under the cap still works.
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, nil); code != 200 {
		t.Fatalf("small body status %d, want 200", code)
	}
	// Restoring the default widens the cap again.
	s.SetPredictMaxBytes(0)
	if code, _ := postRaw(t, ts.URL+"/v1/predict", big); code == http.StatusRequestEntityTooLarge {
		t.Fatal("default cap rejected a 4 KiB body")
	}
}

// TestTrailingGarbageRejected checks the second-Decode-must-EOF rule on
// both JSON-accepting routes: a concatenated document is 400, trailing
// whitespace is fine.
func TestTrailingGarbageRejected(t *testing.T) {
	m := trainModel(t, 1, 1000)
	_, ts := newTestServer(t, m)

	row, _ := json.Marshal(predictRequest{Row: sampleRow("25")})
	code, doc := postRaw(t, ts.URL+"/v1/predict", string(row)+`{"junk":1}`)
	if code != http.StatusBadRequest || !strings.Contains(doc["error"], "trailing") {
		t.Fatalf("trailing garbage: status %d body %v, want 400 trailing", code, doc)
	}
	if code, _ := postRaw(t, ts.URL+"/v1/predict", string(row)+"\n\t "); code != 200 {
		t.Fatalf("trailing whitespace status %d, want 200", code)
	}

	// Model swap: a valid model document followed by junk must not be
	// half-accepted.
	mb := modelBytes(t, m)
	resp, err := http.Post(ts.URL+"/v1/models/garbage", "application/json",
		bytes.NewReader(append(append([]byte{}, mb...), []byte(`{"junk":1}`)...)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("model swap trailing garbage status %d, want 400", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/model/garbage", nil); code != 404 {
		t.Fatalf("garbage upload registered a model (info status %d, want 404)", code)
	}
	// Trailing whitespace after the model document is accepted.
	resp, err = http.Post(ts.URL+"/v1/models/ok", "application/json",
		bytes.NewReader(append(append([]byte{}, mb...), '\n')))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("model swap trailing newline status %d, want 200", resp.StatusCode)
	}
}

// enableBatching turns the micro-batcher on for a test server and stops it
// at cleanup.
func enableBatching(t testing.TB, s *Server, cfg BatchConfig) *batcher {
	t.Helper()
	if err := s.EnableBatching(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s.batch.Load()
}

// TestBatchedPredictMatchesInline drives every request form through the
// micro-batcher and checks predictions and error attribution are identical
// to the inline path.
func TestBatchedPredictMatchesInline(t *testing.T) {
	m := trainModel(t, 1, 2000)
	s, ts := newTestServer(t, m)
	enableBatching(t, s, BatchConfig{})

	// Single row form.
	var single predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, &single); code != 200 {
		t.Fatalf("batched single status %d", code)
	}
	want, err := m.Predict(sampleRow("25"))
	if err != nil {
		t.Fatal(err)
	}
	if single.Prediction != want || single.Rows != 1 {
		t.Fatalf("batched single = %+v, want %q", single, want)
	}

	// Positional batch form.
	vrows := [][]string{sampleValues(m, "25"), sampleValues(m, "50"), sampleValues(m, "70")}
	var batch predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{ValuesRows: vrows}, &batch); code != 200 {
		t.Fatalf("batched values_rows status %d", code)
	}
	if batch.Rows != 3 || len(batch.Predictions) != 3 {
		t.Fatalf("batched values_rows = %+v", batch)
	}
	for i, vals := range vrows {
		w, err := m.PredictValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Predictions[i] != w {
			t.Fatalf("row %d: batched %q, direct %q", i, batch.Predictions[i], w)
		}
	}

	// Unknown model resolves at dispatch time, still 404.
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: "nope", Row: sampleRow("25")}, nil); code != 404 {
		t.Fatalf("batched unknown model status %d, want 404", code)
	}

	// Per-row error attribution survives coalescing: a bad value at row 2
	// fails only with "row 2:", regardless of batching.
	bad := [][]string{sampleValues(m, "25"), sampleValues(m, "50"), nil}
	bad[2] = append([]string(nil), sampleValues(m, "70")...)
	schema := m.Tree().Schema
	for a := range schema.Attrs {
		if schema.Attrs[a].Name == "car" {
			bad[2][a] = "spaceship"
		}
	}
	for _, noBatch := range []bool{false, true} {
		body, _ := json.Marshal(predictRequest{ValuesRows: bad, NoBatch: noBatch})
		code, doc := postRaw(t, ts.URL+"/v1/predict", string(body))
		if code != 422 {
			t.Fatalf("no_batch=%v bad row status %d, want 422", noBatch, code)
		}
		if !strings.Contains(doc["error"], "row 2:") {
			t.Fatalf("no_batch=%v error %q does not name row 2", noBatch, doc["error"])
		}
	}
}

// TestQueueFullSheds429 makes admission control deterministic with the
// dispatcher's exec gate: with the dispatcher blocked mid-flush and the
// queue (capacity 1) occupied, the next request must shed with 429 and a
// Retry-After header — and the parked requests must complete once the gate
// opens.
func TestQueueFullSheds429(t *testing.T) {
	m := trainModel(t, 1, 1000)
	s, ts := newTestServer(t, m)
	gateEntered := make(chan struct{}, 8)
	gate := make(chan struct{})
	b := enableBatching(t, s, BatchConfig{MaxRows: 1, Linger: time.Millisecond, QueueDepth: 1})
	b.holdExec = func() { gateEntered <- struct{}{}; <-gate }

	body, _ := json.Marshal(predictRequest{Row: sampleRow("25")})
	type result struct {
		code int
		err  error
	}
	results := make(chan result, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			results <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- result{code: resp.StatusCode}
	}
	// First request: dequeued by the dispatcher, which parks at the gate.
	go post()
	<-gateEntered
	// Second request: admitted, parked in the queue (capacity 1 → full).
	go post()
	waitFor(t, func() bool { return len(b.ch) == 1 })

	// Third request: the queue is full — shed.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]string
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
	}
	if doc["error"] == "" {
		t.Fatal("429 response missing JSON error body")
	}
	if s.met.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.met.shed.Load())
	}

	// Open the gate: both parked requests complete normally.
	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.code != 200 {
			t.Fatalf("parked request %d: code %d err %v", i, r.code, r.err)
		}
	}

	// The metrics document carries the shed and the knobs.
	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	bs := snap.Batching
	if bs == nil {
		t.Fatal("metrics missing batching section")
	}
	if bs.ShedTotal != 1 || bs.QueueCap != 1 || bs.MaxRows != 1 || bs.BatchesTotal < 2 {
		t.Fatalf("batching section = %+v", bs)
	}
}

// waitFor polls cond for up to a second.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 1s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNoBatchBypassesQueue proves the per-request toggle: with the
// dispatcher gated and the queue full, a no_batch request still answers
// 200 inline.
func TestNoBatchBypassesQueue(t *testing.T) {
	m := trainModel(t, 1, 1000)
	s, ts := newTestServer(t, m)
	gateEntered := make(chan struct{}, 8)
	gate := make(chan struct{})
	defer close(gate)
	b := enableBatching(t, s, BatchConfig{MaxRows: 1, Linger: time.Millisecond, QueueDepth: 1})
	b.holdExec = func() { gateEntered <- struct{}{}; <-gate }

	body, _ := json.Marshal(predictRequest{Row: sampleRow("25")})
	// Fill dispatcher + queue: one request parked at the gate, one queued.
	for i := 0; i < 2; i++ {
		go http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(append([]byte{}, body...)))
	}
	<-gateEntered
	waitFor(t, func() bool { return len(b.ch) == 1 })

	var out predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25"), NoBatch: true}, &out); code != 200 {
		t.Fatalf("no_batch status %d with gated dispatcher, want 200", code)
	}
	if out.Prediction == "" {
		t.Fatalf("no_batch response %+v has no prediction", out)
	}
}

// TestBatchingMetricsCoalescing checks concurrent requests actually fold
// into shared dispatches: with a generous linger, 8 concurrent positional
// requests must produce fewer batches than requests.
func TestBatchingMetricsCoalescing(t *testing.T) {
	m := trainModel(t, 1, 2000)
	s, ts := newTestServer(t, m)
	enableBatching(t, s, BatchConfig{MaxRows: 512, Linger: 20 * time.Millisecond, QueueDepth: 64})

	const reqs = 8
	var wg sync.WaitGroup
	errc := make(chan error, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vrows := [][]string{sampleValues(m, "25"), sampleValues(m, "50")}
			body, _ := json.Marshal(predictRequest{ValuesRows: vrows})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errc <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	bs := snap.Batching
	if bs == nil {
		t.Fatal("metrics missing batching section")
	}
	if bs.BatchesTotal < 1 || bs.BatchesTotal >= reqs {
		t.Fatalf("batches_total = %d for %d concurrent requests, want coalescing (1..%d)",
			bs.BatchesTotal, reqs, reqs-1)
	}
	if got := bs.CoalescedRows.Count; got != bs.BatchesTotal {
		t.Fatalf("coalesced_rows count %d != batches_total %d", got, bs.BatchesTotal)
	}
	if snap.PredictionsTotal != 2*reqs {
		t.Fatalf("predictions_total = %d, want %d", snap.PredictionsTotal, 2*reqs)
	}
}

// TestBatchedPredictHotSwapRace is the batched analogue of
// TestHotSwapUnderLoad (run under -race via make race): workers hammer the
// micro-batched predict path with positional batches and map rows while
// the model is continuously hot-swapped. Every request must succeed with a
// prediction valid under one of the two versions.
func TestBatchedPredictHotSwapRace(t *testing.T) {
	mA := trainModel(t, 1, 2000)
	mB := trainModel(t, 7, 2000)
	s, ts := newTestServer(t, mA)
	enableBatching(t, s, BatchConfig{MaxRows: 64, Linger: 500 * time.Microsecond, QueueDepth: 512})
	bodyA, bodyB := modelBytes(t, mA), modelBytes(t, mB)

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	errc := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				age := strconv.Itoa(20 + rng.Intn(60))
				var req predictRequest
				if i%2 == 0 {
					req.ValuesRows = [][]string{sampleValues(mA, age), sampleValues(mA, "33")}
				} else {
					req.Rows = []map[string]string{sampleRow(age), sampleRow("71")}
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var out predictResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					errc <- fmt.Errorf("worker %d req %d: status %d err %v", w, i, resp.StatusCode, err)
					return
				}
				for _, p := range out.Predictions {
					if p != "GroupA" && p != "GroupB" {
						errc <- fmt.Errorf("worker %d: impossible class %q", w, p)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			body := bodyA
			if i%2 == 0 {
				body = bodyB
			}
			resp, err := http.Post(ts.URL+"/v1/models/default", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errc <- fmt.Errorf("swap %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if got := snap.Requests["predict"]; got.Errors != 0 || got.Requests != workers*perWorker {
		t.Fatalf("predict route after batched swap storm = %+v", got)
	}
}

// TestCloseFailsQueuedAndFallsBackInline checks shutdown semantics: Close
// stops the dispatcher, and later predicts run inline (still 200).
func TestCloseFailsQueuedAndFallsBackInline(t *testing.T) {
	m := trainModel(t, 1, 1000)
	s, ts := newTestServer(t, m)
	if err := s.EnableBatching(BatchConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableBatching(BatchConfig{}); err == nil {
		t.Fatal("double EnableBatching did not error")
	}
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, nil); code != 200 {
		t.Fatalf("batched predict status %d", code)
	}
	s.Close()
	s.Close() // idempotent
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, nil); code != 200 {
		t.Fatalf("inline predict after Close status %d", code)
	}
	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Batching != nil {
		t.Fatal("batching section still present after Close")
	}
}
