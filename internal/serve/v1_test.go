package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	parclass "repro"
)

// sampleValues is sampleRow in schema attribute order, for the positional
// predict form.
func sampleValues(m *parclass.Model, age string) []string {
	row := sampleRow(age)
	schema := m.Tree().Schema
	vals := make([]string, len(schema.Attrs))
	for a := range schema.Attrs {
		vals[a] = row[schema.Attrs[a].Name]
	}
	return vals
}

// TestV1Routes exercises every route under the /v1 prefix and checks it
// answers identically to its unversioned alias.
func TestV1Routes(t *testing.T) {
	m := trainModel(t, 1, 2000)
	_, ts := newTestServer(t, m)

	var v1, alias predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Row: sampleRow("25")}, &v1); code != 200 {
		t.Fatalf("/v1/predict status %d", code)
	}
	if code := postJSON(t, ts.URL+"/predict", predictRequest{Row: sampleRow("25")}, &alias); code != 200 {
		t.Fatalf("/predict status %d", code)
	}
	if v1.Prediction != alias.Prediction {
		t.Fatalf("v1 %q != alias %q", v1.Prediction, alias.Prediction)
	}

	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/models", "/v1/model/default"} {
		var doc map[string]any
		if code := getJSON(t, ts.URL+path, &doc); code != 200 {
			t.Fatalf("GET %s status %d", path, code)
		}
		if len(doc) == 0 {
			t.Fatalf("GET %s returned empty document", path)
		}
	}
}

// TestMethodNotAllowed checks wrong-method hits on known paths answer 405
// with an Allow header and a JSON error body, on both route families.
func TestMethodNotAllowed(t *testing.T) {
	m := trainModel(t, 1, 1000)
	_, ts := newTestServer(t, m)

	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/predict", "POST"},
		{http.MethodGet, "/v1/predict", "POST"},
		{http.MethodDelete, "/v1/models/default", "POST"},
		{http.MethodPost, "/v1/healthz", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodPut, "/v1/model/default", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Fatalf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: non-JSON 405 body: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if body["error"] == "" {
			t.Fatalf("%s %s: empty error body", tc.method, tc.path)
		}
	}
}

// TestPredictValuesRoute exercises the positional forms, single and batch,
// and their error mapping.
func TestPredictValuesRoute(t *testing.T) {
	m := trainModel(t, 1, 2000)
	_, ts := newTestServer(t, m)

	want, err := m.Predict(sampleRow("25"))
	if err != nil {
		t.Fatal(err)
	}
	var single predictResponse
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Values: sampleValues(m, "25")}, &single); code != 200 {
		t.Fatalf("values predict status %d", code)
	}
	if single.Prediction != want || single.Rows != 1 {
		t.Fatalf("values = %+v, want %q", single, want)
	}

	var batch predictResponse
	vrows := [][]string{sampleValues(m, "25"), sampleValues(m, "50"), sampleValues(m, "70")}
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{ValuesRows: vrows}, &batch); code != 200 {
		t.Fatalf("values_rows status %d", code)
	}
	if batch.Rows != 3 || len(batch.Predictions) != 3 {
		t.Fatalf("values_rows = %+v", batch)
	}

	// Wrong width → 422.
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{Values: []string{"1", "2"}}, nil); code != 422 {
		t.Fatalf("short values status %d, want 422", code)
	}
	// Two forms at once → 400.
	if code := postJSON(t, ts.URL+"/v1/predict", predictRequest{
		Row: sampleRow("25"), Values: sampleValues(m, "25"),
	}, nil); code != 400 {
		t.Fatalf("two forms status %d, want 400", code)
	}
}

// TestMetricsBuildSection attaches a finished build's monitor and checks
// /metrics surfaces its state and phase gauges.
func TestMetricsBuildSection(t *testing.T) {
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 7, Tuples: 2000, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := parclass.NewBuildMonitor()
	m, err := parclass.Train(ds, parclass.Options{Algorithm: parclass.MWK, Procs: 2, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, m)
	// No monitor attached yet: no build section.
	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Build != nil {
		t.Fatalf("unexpected build section %+v", snap.Build)
	}
	s.SetBuildMonitor(mon)
	snap = metricsSnapshot{}
	if code := getJSON(t, ts.URL+"/v1/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	b := snap.Build
	if b == nil || b.State != "done" {
		t.Fatalf("build section %+v, want state done", b)
	}
	if !strings.EqualFold(b.Algorithm, "MWK") || b.Procs != 2 {
		t.Fatalf("build identity %+v", b)
	}
	var busy float64
	for _, ph := range []string{"eval", "winner", "split"} {
		busy += b.PhaseSeconds[ph]
	}
	if busy <= 0 {
		t.Fatalf("no busy phase time in %+v", b.PhaseSeconds)
	}
	if b.Skew < 1 || b.Efficiency <= 0 {
		t.Fatalf("skew/efficiency %+v", b)
	}
	if len(b.WorkerBusySecs) != 2 {
		t.Fatalf("worker busy list %+v", b.WorkerBusySecs)
	}
}
