package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	parclass "repro"
)

// trainModel grows a small model over synthetic data.
func trainModel(t testing.TB, fn, tuples int) *parclass.Model {
	t.Helper()
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: fn, Tuples: tuples, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := parclass.Train(ds, parclass.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTestServer starts an httptest server with one registered model.
func newTestServer(t testing.TB, m *parclass.Model) (*Server, *httptest.Server) {
	t.Helper()
	s := New("")
	if _, err := s.Load("default", m, "test"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and decodes the response into out (when non-nil).
func postJSON(t testing.TB, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// sampleRow builds a row the F1/F7 schema accepts; age steers F1's rule.
func sampleRow(age string) map[string]string {
	return map[string]string{
		"salary": "50000", "commission": "20000", "age": age, "elevel": "e2",
		"car": "make3", "zipcode": "zip1", "hvalue": "100000",
		"hyears": "10", "loan": "100000",
	}
}

func TestPredictSingleAndBatch(t *testing.T) {
	m := trainModel(t, 1, 2000)
	_, ts := newTestServer(t, m)

	var single predictResponse
	if code := postJSON(t, ts.URL+"/predict", predictRequest{Row: sampleRow("25")}, &single); code != 200 {
		t.Fatalf("single predict status %d", code)
	}
	want, err := m.Predict(sampleRow("25"))
	if err != nil {
		t.Fatal(err)
	}
	if single.Prediction != want || single.Rows != 1 {
		t.Fatalf("single = %+v, want prediction %q", single, want)
	}

	rows := []map[string]string{sampleRow("25"), sampleRow("50"), sampleRow("70")}
	var batch predictResponse
	if code := postJSON(t, ts.URL+"/predict", predictRequest{Rows: rows}, &batch); code != 200 {
		t.Fatalf("batch predict status %d", code)
	}
	if len(batch.Predictions) != 3 || batch.Rows != 3 {
		t.Fatalf("batch = %+v", batch)
	}
	for i, row := range rows {
		w, _ := m.Predict(row)
		if batch.Predictions[i] != w {
			t.Fatalf("row %d: got %q want %q", i, batch.Predictions[i], w)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	m := trainModel(t, 1, 1000)
	_, ts := newTestServer(t, m)

	// Unknown model.
	if code := postJSON(t, ts.URL+"/predict", predictRequest{Model: "nope", Row: sampleRow("25")}, nil); code != 404 {
		t.Fatalf("unknown model status %d, want 404", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body status %d, want 400", resp.StatusCode)
	}
	// Neither / both of row and rows.
	if code := postJSON(t, ts.URL+"/predict", predictRequest{}, nil); code != 400 {
		t.Fatalf("empty request status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/predict", predictRequest{
		Row: sampleRow("25"), Rows: []map[string]string{sampleRow("30")},
	}, nil); code != 400 {
		t.Fatalf("row+rows status %d, want 400", code)
	}
	// Undecodable row.
	bad := sampleRow("25")
	bad["car"] = "spaceship"
	if code := postJSON(t, ts.URL+"/predict", predictRequest{Row: bad}, nil); code != 422 {
		t.Fatalf("bad category status %d, want 422", code)
	}
	if code := postJSON(t, ts.URL+"/predict", predictRequest{
		Rows: []map[string]string{sampleRow("25"), bad},
	}, nil); code != 422 {
		t.Fatalf("bad batch row status %d, want 422", code)
	}
}

func TestHealthzMetricsAndInfo(t *testing.T) {
	m := trainModel(t, 1, 1500)
	_, ts := newTestServer(t, m)

	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Generate some traffic, then check the counters moved.
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/predict", predictRequest{Rows: []map[string]string{
			sampleRow("25"), sampleRow("60"),
		}}, nil)
	}
	postJSON(t, ts.URL+"/predict", predictRequest{Model: "nope", Row: sampleRow("25")}, nil)

	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	pr := snap.Requests["predict"]
	if pr.Requests != 6 || pr.Errors != 1 {
		t.Fatalf("predict route = %+v", pr)
	}
	if snap.PredictionsTotal != 10 {
		t.Fatalf("predictions_total = %d, want 10", snap.PredictionsTotal)
	}
	if snap.PredictLatencyUS.Count != 5 || snap.PredictBatchRows.Count != 5 {
		t.Fatalf("histograms = %+v / %+v", snap.PredictLatencyUS, snap.PredictBatchRows)
	}
	var total int64
	for _, b := range snap.PredictLatencyUS.Buckets {
		total += b
	}
	if total != snap.PredictLatencyUS.Count {
		t.Fatalf("latency buckets sum %d != count %d", total, snap.PredictLatencyUS.Count)
	}
	if snap.Models["default"].Predictions != 10 {
		t.Fatalf("per-model counters = %+v", snap.Models["default"])
	}

	var info ModelInfo
	if code := getJSON(t, ts.URL+"/model/default?rules=1", &info); code != 200 {
		t.Fatalf("model info status %d", code)
	}
	if info.Stats.Nodes < 3 || len(info.Classes) != 2 || len(info.Attrs) != 9 {
		t.Fatalf("model info = %+v", info)
	}
	if len(info.Rules) != info.Stats.Leaves {
		t.Fatalf("rules %d != leaves %d", len(info.Rules), info.Stats.Leaves)
	}
	if code := getJSON(t, ts.URL+"/model/nope", nil); code != 404 {
		t.Fatalf("missing model info status %d, want 404", code)
	}

	var list struct {
		Models []struct {
			Name string `json:"name"`
		} `json:"models"`
	}
	if code := getJSON(t, ts.URL+"/models", &list); code != 200 {
		t.Fatalf("models list status %d", code)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "default" {
		t.Fatalf("models list = %+v", list)
	}
}

// modelBytes serializes a model the way SaveModel does.
func modelBytes(t testing.TB, m *parclass.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestModelSwapEndpoint(t *testing.T) {
	m1 := trainModel(t, 1, 1500)
	s, ts := newTestServer(t, m1)

	// Upload a new version under the same name and a fresh name.
	m2 := trainModel(t, 7, 1500)
	for i, tc := range []struct {
		name    string
		swapped bool
	}{{"default", true}, {"fresh", false}} {
		resp, err := http.Post(ts.URL+"/models/"+tc.name, "application/json",
			bytes.NewReader(modelBytes(t, m2)))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Swapped bool `json:"swapped"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("case %d: status %d err %v", i, resp.StatusCode, err)
		}
		if out.Swapped != tc.swapped {
			t.Fatalf("case %d: swapped = %v, want %v", i, out.Swapped, tc.swapped)
		}
	}
	if _, cur := s.current("default"); cur == nil || cur.model.Stats() != m2.Stats() {
		t.Fatal("default model was not replaced")
	}

	// Garbage body is rejected and leaves the registry untouched.
	resp, err := http.Post(ts.URL+"/models/default", "application/json",
		bytes.NewReader([]byte("not a model")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage model status %d, want 400", resp.StatusCode)
	}
	if _, cur := s.current("default"); cur == nil || cur.model.Stats() != m2.Stats() {
		t.Fatal("failed upload disturbed the registry")
	}
}

// TestHotSwapUnderLoad is the subsystem's survival test (run under -race by
// the Makefile verify target): worker goroutines hammer /predict with
// single and batch requests while the main goroutine repeatedly hot-swaps
// the model between two versions. Every request must succeed with a
// prediction valid under one of the two versions.
func TestHotSwapUnderLoad(t *testing.T) {
	mA := trainModel(t, 1, 2000)
	mB := trainModel(t, 7, 2000)
	_, ts := newTestServer(t, mA)
	bodyA, bodyB := modelBytes(t, mA), modelBytes(t, mB)

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				age := strconv.Itoa(20 + rng.Intn(60))
				var req predictRequest
				if i%2 == 0 {
					req.Row = sampleRow(age)
				} else {
					req.Rows = []map[string]string{sampleRow(age), sampleRow("33"), sampleRow("71")}
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var out predictResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					errc <- fmt.Errorf("worker %d req %d: status %d err %v", w, i, resp.StatusCode, err)
					return
				}
				preds := out.Predictions
				if out.Prediction != "" {
					preds = []string{out.Prediction}
				}
				for _, p := range preds {
					if p != "GroupA" && p != "GroupB" {
						errc <- fmt.Errorf("worker %d: impossible class %q", w, p)
						return
					}
				}
			}
		}(w)
	}

	// Swap continuously while the workers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			body := bodyA
			if i%2 == 0 {
				body = bodyB
			}
			resp, err := http.Post(ts.URL+"/models/default", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errc <- fmt.Errorf("swap %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	var snap metricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if got := snap.Requests["predict"]; got.Errors != 0 || got.Requests != workers*perWorker {
		t.Fatalf("predict route after swap storm = %+v", got)
	}
	if snap.Models["default"].Swaps != 61 { // initial Load + 60 uploads
		t.Fatalf("swaps = %d, want 61", snap.Models["default"].Swaps)
	}
}
