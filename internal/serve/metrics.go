package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Serving metrics are expvar-style: plain atomics bumped on the hot path
// with no locks, snapshotted into a JSON document by GET /metrics. The
// predict latency and batch-size distributions use fixed-bound cumulative
// histograms so percentiles can be estimated without retaining samples.

// latencyBoundsUS are the predict-latency bucket upper bounds (µs); a
// final implicit +Inf bucket catches the tail.
var latencyBoundsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// batchBounds are the rows-per-predict-request bucket upper bounds.
var batchBounds = []int64{1, 8, 32, 128, 512, 2048}

// coalescedReqBounds are the requests-per-dispatch bucket upper bounds for
// the micro-batcher (how many HTTP requests one flat-tree walk served).
var coalescedReqBounds = []int64{1, 2, 4, 8, 16, 32, 64}

// histogram is a fixed-bucket histogram with atomic counters.
type histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one value.
func (h *histogram) observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// histogramSnapshot is the JSON form of a histogram; Buckets[i] counts
// observations ≤ Bounds[i], the last entry counting the +Inf tail.
type histogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Mean    float64 `json:"mean"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

func (h *histogram) snapshot() histogramSnapshot {
	s := histogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// routeStats counts requests and error responses for one route.
type routeStats struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// metrics aggregates the server's counters.
type metrics struct {
	start                                            time.Time
	predict, ingest, swap, info, list, health, stats routeStats
	latencyUS                                        *histogram
	batchRows                                        *histogram
	predictions                                      atomic.Int64 // rows classified, all models

	// Micro-batcher counters: requests shed by admission control (429),
	// coalesced dispatches, and the rows / requests folded into each.
	shed          atomic.Int64
	batches       atomic.Int64
	coalescedRows *histogram
	coalescedReqs *histogram
}

func newMetrics() *metrics {
	return &metrics{
		start:         time.Now(),
		latencyUS:     newHistogram(latencyBoundsUS),
		batchRows:     newHistogram(batchBounds),
		coalescedRows: newHistogram(batchBounds),
		coalescedReqs: newHistogram(coalescedReqBounds),
	}
}

// routeSnapshot is one route's JSON form.
type routeSnapshot struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

func (r *routeStats) snapshot() routeSnapshot {
	return routeSnapshot{Requests: r.requests.Load(), Errors: r.errors.Load()}
}

// rateWindowSecs is the trailing span the ingest rows/s gauge averages
// over (including the in-progress second, so the gauge responds
// immediately in short tests and soaks).
const rateWindowSecs = 10

// rateMeter tracks a per-second event rate with a small ring of one-second
// buckets indexed by wall second modulo the ring size. Each bucket carries
// the absolute second it was written for, and rate sums only buckets whose
// second falls inside the trailing window — a bucket that wrapped around
// from an earlier lap of the ring is stale and must never be replayed into
// the rate, no matter where the ring pointer sits after a silence. A mutex
// is fine here: ingest requests are row batches, so the meter is touched
// once per request, not per row.
type rateMeter struct {
	// now returns the current wall second; tests inject a fake clock here
	// to pin the wraparound behavior deterministically. Nil means real time.
	now func() int64

	mu     sync.Mutex
	secs   [rateWindowSecs + 2]int64
	counts [rateWindowSecs + 2]int64
}

// wallSec is the meter's current second.
func (m *rateMeter) wallSec() int64 {
	if m.now != nil {
		return m.now()
	}
	return time.Now().Unix()
}

// add records n events now.
func (m *rateMeter) add(n int64) {
	now := m.wallSec()
	i := now % int64(len(m.secs))
	m.mu.Lock()
	if m.secs[i] != now {
		m.secs[i] = now
		m.counts[i] = 0
	}
	m.counts[i] += n
	m.mu.Unlock()
}

// rate averages events/s over the trailing rateWindowSecs seconds,
// clamped to the meter's uptime so a fresh meter is not under-read. After
// a silence longer than the window every bucket's second is stale, so the
// rate reads exactly 0.
func (m *rateMeter) rate(uptime time.Duration) float64 {
	now := m.wallSec()
	var sum int64
	m.mu.Lock()
	for i := range m.secs {
		if age := now - m.secs[i]; age >= 0 && age < rateWindowSecs {
			sum += m.counts[i]
		}
	}
	m.mu.Unlock()
	span := uptime.Seconds()
	if span > rateWindowSecs {
		span = rateWindowSecs
	}
	if span < 1 {
		span = 1
	}
	return float64(sum) / span
}
