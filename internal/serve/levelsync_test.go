package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	parclass "repro"
)

// setCrossover pins the process-wide auto threshold for one test.
func setCrossover(t *testing.T, rows int) {
	t.Helper()
	old := parclass.SetLevelSyncCrossover(rows)
	t.Cleanup(func() { parclass.SetLevelSyncCrossover(old) })
}

// levelSyncRows builds a batch of schema-valid rows with varying ages.
func levelSyncRows(n int) []map[string]string {
	rows := make([]map[string]string, n)
	for i := range rows {
		rows[i] = sampleRow(strconv.Itoa(20 + i%55))
	}
	return rows
}

// TestPredictLevelSyncKernelIdentical is the serving half of the PR's
// acceptance invariant: the same batch answered with level_sync "on",
// "off" and "auto" must produce byte-identical response bodies, on both
// the rows and values_rows forms, through the micro-batcher.
func TestPredictLevelSyncKernelIdentical(t *testing.T) {
	setCrossover(t, 1) // "auto" takes the kernel even for this small batch
	f := trainForest(t, 9)
	s := New("")
	if _, err := s.Load("default", f, "test"); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableBatching(BatchConfig{MaxRows: 128, Linger: time.Millisecond, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	var info ModelInfo
	if code := getJSON(t, ts+"/v1/model/default", &info); code != 200 {
		t.Fatalf("model info status %d", code)
	}
	rows := levelSyncRows(64)
	vrows := make([][]string, len(rows))
	for i, row := range rows {
		vrows[i] = make([]string, len(info.Attrs))
		for a, attr := range info.Attrs {
			vrows[i][a] = row[attr.Name]
		}
	}
	// elapsed_us is wall time and legitimately varies per request; the
	// comparison covers every other byte of the body.
	elapsed := regexp.MustCompile(`"elapsed_us":\d+`)
	post := func(req predictRequest) string {
		t.Helper()
		buf, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		body := postRawBody(t, ts+"/v1/predict", string(buf))
		return elapsed.ReplaceAllString(body, `"elapsed_us":0`)
	}
	offRows := post(predictRequest{Rows: rows, LevelSync: "off"})
	if !strings.Contains(offRows, `"predictions"`) {
		t.Fatalf("walker response carries no predictions: %s", offRows)
	}
	offVals := post(predictRequest{ValuesRows: vrows, LevelSync: "off"})
	for _, mode := range []string{"on", "auto", ""} {
		if got := post(predictRequest{Rows: rows, LevelSync: mode}); got != offRows {
			t.Fatalf("rows form: level_sync=%q body differs from off:\n%s\nvs\n%s", mode, got, offRows)
		}
		if got := post(predictRequest{ValuesRows: vrows, LevelSync: mode}); got != offVals {
			t.Fatalf("values_rows form: level_sync=%q body differs from off", mode)
		}
	}
}

// TestPredictLevelSyncBadValue: an unknown level_sync override answers 400
// and names the field.
func TestPredictLevelSyncBadValue(t *testing.T) {
	m := trainModel(t, 1, 1000)
	_, ts := newTestServer(t, m)
	buf, err := json.Marshal(predictRequest{Rows: levelSyncRows(2), LevelSync: "diagonal"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level_sync status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "level_sync") {
		t.Fatalf("error %s does not name level_sync", body)
	}
}

// TestModelInfoOOB: a bootstrapped forest exposes its out-of-bag estimate
// on /v1/model/{name}; a single tree must not grow the field.
func TestModelInfoOOB(t *testing.T) {
	f := trainForest(t, 7)
	s := New("")
	if _, err := s.Load("default", f, "test"); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)
	var info ModelInfo
	if code := getJSON(t, ts+"/v1/model/default", &info); code != 200 {
		t.Fatalf("model info status %d", code)
	}
	if info.OOB == nil {
		t.Fatal("forest model info carries no oob field")
	}
	want, ok := f.OOBError()
	if !ok {
		t.Fatal("trained forest has no OOB estimate")
	}
	if *info.OOB != want || info.OOBRows != f.OOBRows() {
		t.Fatalf("info oob %g/%d, forest %g/%d", *info.OOB, info.OOBRows, want, f.OOBRows())
	}
	if *info.OOB < 0 || *info.OOB > 1 || info.OOBRows <= 0 {
		t.Fatalf("implausible OOB estimate %g over %d rows", *info.OOB, info.OOBRows)
	}

	// Single tree: raw body must not leak the keys.
	m := trainModel(t, 1, 1000)
	if _, err := s.Load("tree", m, "test"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts + "/v1/model/tree")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"oob"`) {
		t.Fatalf("single-tree model info leaked oob: %s", raw)
	}
}
