package serve

// The online-learning endpoint and retrain loop. POST /v1/ingest appends
// labeled rows to a per-model bounded window (internal/ingest.Window); the
// retrain loop periodically rebuilds a candidate on the window with the
// HIST engine and hot-swaps it in only when it beats the serving model on
// the window's held-out slice (the accuracy tripwire). GET /v1/metrics
// gains an "ingest" section: window sizes, ingested rows/s, retrain cycle
// counts and the last swap/reject decision.

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	parclass "repro"
	"repro/internal/dataset"
	"repro/internal/ingest"
)

// DefaultIngestWindow is the default per-model window capacity (rows).
const DefaultIngestWindow = 20000

// IngestConfig configures Server.EnableIngest.
type IngestConfig struct {
	// WindowCap is the per-model labeled-row window capacity (default
	// DefaultIngestWindow). Once full, new rows evict the oldest.
	WindowCap int
}

// ingestState is the live ingest subsystem, nil until EnableIngest.
type ingestState struct {
	cfg     IngestConfig
	started time.Time

	mu      sync.Mutex
	windows map[string]*ingest.Window

	ingested atomic.Int64
	meter    rateMeter

	cycles, swaps, rejects, skips, stales atomic.Int64

	// swapGate, when non-nil (tests only), runs after a retrain cycle has
	// decided to swap but before the guarded publish — the window in which
	// a concurrent schema-changing hot swap can land. Tests use it to make
	// the race deterministic.
	swapGate func()

	lastMu sync.Mutex
	last   *retrainRecord
}

// retrainRecord is the most recent retrain decision, for /metrics.
type retrainRecord struct {
	at         time.Time
	outcome    ingest.Outcome
	windowRows int
	candAcc    float64
	servAcc    float64
	trainSecs  float64
}

// EnableIngest turns on POST /v1/ingest and the RetrainOnce machinery.
// Call once, before serving.
func (s *Server) EnableIngest(cfg IngestConfig) error {
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = DefaultIngestWindow
	}
	st := &ingestState{
		cfg:     cfg,
		started: time.Now(),
		windows: make(map[string]*ingest.Window),
	}
	if !s.ing.CompareAndSwap(nil, st) {
		return fmt.Errorf("serve: ingest already enabled")
	}
	return nil
}

// windowFor returns name's window, creating it bound to schema on first
// use. A window whose schema no longer matches the serving model (a swap
// installed a differently-shaped model) is discarded and recreated empty:
// its rows were validated against a schema the serving stack no longer
// speaks, so neither ingest validation nor retrain evaluation can use them.
func (st *ingestState) windowFor(name string, schema *dataset.Schema) (*ingest.Window, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if w := st.windows[name]; w != nil && sameSchema(w.Schema(), schema) {
		return w, nil
	}
	w, err := ingest.NewWindow(schema, st.cfg.WindowCap)
	if err != nil {
		return nil, err
	}
	st.windows[name] = w
	return w, nil
}

// sameSchema reports structural equality of two schemas.
func sameSchema(a, b *dataset.Schema) bool {
	if a == b {
		return true
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Classes) != len(b.Classes) {
		return false
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			return false
		}
	}
	for i := range a.Attrs {
		x, y := &a.Attrs[i], &b.Attrs[i]
		if x.Name != y.Name || x.Kind != y.Kind || len(x.Categories) != len(y.Categories) {
			return false
		}
		for j := range x.Categories {
			if x.Categories[j] != y.Categories[j] {
				return false
			}
		}
	}
	return true
}

// ingestRow is one labeled row of the bulk form.
type ingestRow struct {
	// Values is one string per schema attribute, in schema order (the same
	// positional form as predict's "values").
	Values []string `json:"values"`
	// Class is the row's ground-truth label.
	Class string `json:"class"`
}

// ingestRequest is the POST /v1/ingest body: either one row
// ("values" + "class") or a batch ("rows"), plus an optional model name.
type ingestRequest struct {
	Model  string      `json:"model,omitempty"`
	Values []string    `json:"values,omitempty"`
	Class  string      `json:"class,omitempty"`
	Rows   []ingestRow `json:"rows,omitempty"`
}

// ingestResponse is the POST /v1/ingest reply.
type ingestResponse struct {
	Model string `json:"model"`
	// Accepted is how many rows this request appended.
	Accepted int `json:"accepted"`
	// WindowSize / WindowTotal are the window's row count after the append
	// and the all-time ingested count (Total keeps growing after Size caps
	// out at the window capacity).
	WindowSize  int   `json:"window_size"`
	WindowTotal int64 `json:"window_total"`
}

// handleIngest appends labeled rows to the model's window. The body
// contract matches predict: same byte cap (413 over it), one JSON document
// (400 on trailing data), 404 for an unknown model, 422 with "row %d:"
// attribution for rows that fail schema validation. A bulk request is
// all-or-nothing: every row is validated before any row lands.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	rs := &s.met.ingest
	rs.requests.Add(1)
	st := s.ing.Load()
	if st == nil {
		writeErr(w, rs, http.StatusServiceUnavailable, "ingest not enabled on this server")
		return
	}
	var req ingestRequest
	if !decodeBody(w, r, rs, s.predictMaxBytes(), &req) {
		return
	}
	single := len(req.Values) > 0
	if single == (len(req.Rows) > 0) {
		writeErr(w, rs, http.StatusBadRequest, `need exactly one of "values" and "rows"`)
		return
	}
	if single && req.Class == "" {
		writeErr(w, rs, http.StatusBadRequest, `"values" needs a "class" label`)
		return
	}
	name := req.Model
	if name == "" {
		name = s.defaultModel
	}
	_, cur := s.current(name)
	if cur == nil {
		writeErr(w, rs, http.StatusNotFound, "no model %q", name)
		return
	}
	win, err := st.windowFor(name, cur.model.Schema())
	if err != nil {
		writeErr(w, rs, http.StatusInternalServerError, "%v", err)
		return
	}
	if single {
		tu, err := win.Decode(req.Values, req.Class)
		if err != nil {
			writeErr(w, rs, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		win.Append(tu)
		st.ingested.Add(1)
		st.meter.add(1)
		writeJSON(w, http.StatusOK, ingestResponse{
			Model: name, Accepted: 1, WindowSize: win.Size(), WindowTotal: win.Total(),
		})
		return
	}
	tus := make([]dataset.Tuple, len(req.Rows))
	for i, row := range req.Rows {
		tu, err := win.Decode(row.Values, row.Class)
		if err != nil {
			writeErr(w, rs, http.StatusUnprocessableEntity, "row %d: %v", i, err)
			return
		}
		tus[i] = tu
	}
	win.AppendRows(tus)
	n := int64(len(tus))
	st.ingested.Add(n)
	st.meter.add(n)
	writeJSON(w, http.StatusOK, ingestResponse{
		Model: name, Accepted: len(tus), WindowSize: win.Size(), WindowTotal: win.Total(),
	})
}

// RetrainOnce runs one retrain-with-tripwire cycle for name: snapshot the
// window, train a candidate, and hot-swap it in only when it beats the
// serving model on the held-out slice. The returned result says what
// happened; training errors are also recorded as model failures (degraded
// health), matching background-build semantics. Deterministic — the
// periodic loop (StartRetrainLoop) is just this on a ticker.
func (s *Server) RetrainOnce(name string, cfg ingest.RetrainConfig) (ingest.Result, error) {
	st := s.ing.Load()
	if st == nil {
		return ingest.Result{}, fmt.Errorf("serve: ingest not enabled")
	}
	if name == "" {
		name = s.defaultModel
	}
	_, cur := s.current(name)
	if cur == nil {
		return ingest.Result{}, fmt.Errorf("serve: no model %q", name)
	}
	win, err := st.windowFor(name, cur.model.Schema())
	if err != nil {
		return ingest.Result{}, err
	}
	st.cycles.Add(1)
	res, err := ingest.Retrain(win, cur.model, cfg)
	if err != nil {
		s.RecordFailure(name, err)
		return res, err
	}
	switch res.Outcome {
	case ingest.OutcomeSwapped:
		if st.swapGate != nil {
			st.swapGate()
		}
		src := fmt.Sprintf("retrain on %d-row window (holdout %.4f > %.4f)",
			res.TrainRows, res.CandidateAcc, res.ServingAcc)
		// Publish through the guarded load: the candidate trained on rows
		// validated against the window's schema, so it may only replace a
		// serving model that STILL speaks that schema. Re-checking here —
		// atomically against the registry pointer — closes the race where a
		// schema-changing hot swap lands between Window.Snapshot and this
		// publish: the old unconditional Load would have clobbered the new
		// model with a candidate from the previous schema's world.
		trainSchema := win.Schema()
		_, lerr := s.loadGuarded(name, res.Candidate, src, func(old parclass.Predictor) bool {
			return old != nil && sameSchema(old.Schema(), trainSchema)
		})
		switch {
		case errors.Is(lerr, errStaleGuard):
			res.Outcome = ingest.OutcomeStale
			res.Candidate = nil
			st.stales.Add(1)
		case lerr != nil:
			s.RecordFailure(name, lerr)
			return res, lerr
		default:
			st.swaps.Add(1)
			s.firePublish(name, res.Candidate, nil, src)
		}
	case ingest.OutcomeRejected:
		st.rejects.Add(1)
	default:
		st.skips.Add(1)
	}
	st.lastMu.Lock()
	st.last = &retrainRecord{
		at: time.Now(), outcome: res.Outcome, windowRows: res.WindowRows,
		candAcc: res.CandidateAcc, servAcc: res.ServingAcc, trainSecs: res.TrainSecs,
	}
	st.lastMu.Unlock()
	return res, nil
}

// StartRetrainLoop runs RetrainOnce for name every interval until the
// returned stop function is called. Per-cycle errors are recorded on the
// model (degraded health) and the loop keeps going — a transient training
// failure must not end online learning.
func (s *Server) StartRetrainLoop(name string, interval time.Duration, cfg ingest.RetrainConfig) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.RetrainOnce(name, cfg)
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// ingestWindowSnapshot is one window's /metrics entry.
type ingestWindowSnapshot struct {
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
	Total    int64 `json:"total"`
}

// retrainSnapshot is the /metrics retrain section: cycle counters plus the
// last decision's evidence (candidate vs serving holdout accuracy).
type retrainSnapshot struct {
	Cycles  int64 `json:"cycles"`
	Swaps   int64 `json:"swaps"`
	Rejects int64 `json:"rejects"`
	Skips   int64 `json:"skips"`
	// Stales counts winning candidates dropped because a schema-changing
	// hot swap landed mid-retrain (see ingest.OutcomeStale).
	Stales int64 `json:"stales,omitempty"`

	LastOutcome           string    `json:"last_outcome,omitempty"`
	LastCandidateAccuracy float64   `json:"last_candidate_accuracy,omitempty"`
	LastServingAccuracy   float64   `json:"last_serving_accuracy,omitempty"`
	LastWindowRows        int       `json:"last_window_rows,omitempty"`
	LastTrainSeconds      float64   `json:"last_train_seconds,omitempty"`
	LastAt                time.Time `json:"last_at,omitzero"`
}

// ingestSnapshot is the /metrics ingest section.
type ingestSnapshot struct {
	WindowCapacity int `json:"window_capacity"`
	// IngestedTotal counts rows accepted since EnableIngest; RowsPerSec is
	// the ingest rate over the trailing rate window (rateWindowSecs).
	IngestedTotal int64                           `json:"ingested_total"`
	RowsPerSec    float64                         `json:"rows_per_sec"`
	Windows       map[string]ingestWindowSnapshot `json:"windows"`
	Retrain       retrainSnapshot                 `json:"retrain"`
}

// snapshot renders the ingest section.
func (st *ingestState) snapshot() *ingestSnapshot {
	snap := &ingestSnapshot{
		WindowCapacity: st.cfg.WindowCap,
		IngestedTotal:  st.ingested.Load(),
		RowsPerSec:     st.meter.rate(time.Since(st.started)),
		Windows:        make(map[string]ingestWindowSnapshot),
		Retrain: retrainSnapshot{
			Cycles:  st.cycles.Load(),
			Swaps:   st.swaps.Load(),
			Rejects: st.rejects.Load(),
			Skips:   st.skips.Load(),
			Stales:  st.stales.Load(),
		},
	}
	st.mu.Lock()
	for name, w := range st.windows {
		snap.Windows[name] = ingestWindowSnapshot{
			Size: w.Size(), Capacity: w.Capacity(), Total: w.Total(),
		}
	}
	st.mu.Unlock()
	st.lastMu.Lock()
	if l := st.last; l != nil {
		snap.Retrain.LastOutcome = string(l.outcome)
		snap.Retrain.LastCandidateAccuracy = l.candAcc
		snap.Retrain.LastServingAccuracy = l.servAcc
		snap.Retrain.LastWindowRows = l.windowRows
		snap.Retrain.LastTrainSeconds = l.trainSecs
		snap.Retrain.LastAt = l.at
	}
	st.lastMu.Unlock()
	return snap
}
