package serve

// Hot-swap consistency tests: every field of a response must come from ONE
// atomic model snapshot, even while background retrains swap the serving
// model (single tree ↔ forest) under live traffic.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	parclass "repro"
	"repro/internal/ingest"
	"repro/internal/synth"
)

// TestModelInfoAtomicUnderSwap hammers GET /v1/model/{name} while another
// goroutine hot-swaps the model between a single tree and a 5-tree forest.
// Every response must be internally consistent: a forest answer carries
// trees=5 with the forest's node stats (and its OOB estimate when one
// exists), a tree answer carries no trees/oob fields and the tree's node
// stats. A mix — old tree count with new stats — is a torn view. Run under
// -race (make race / make ingest-soak cover this file).
func TestModelInfoAtomicUnderSwap(t *testing.T) {
	tree := trainModel(t, 1, 2000)
	forest := trainForest(t, 5)
	treeNodes := tree.Stats().Nodes
	forestNodes := forest.Stats().Nodes
	if treeNodes == forestNodes {
		t.Fatalf("test needs distinguishable models; both have %d nodes", treeNodes)
	}

	s, ts := newTestServer(t, tree)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			if i%2 == 0 {
				s.Load("default", forest, "swap-forest")
			} else {
				s.Load("default", tree, "swap-tree")
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/model/default")
				if err != nil {
					t.Error(err)
					return
				}
				var info ModelInfo
				err = json.NewDecoder(resp.Body).Decode(&info)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				switch info.Trees {
				case 5:
					if info.Stats.Nodes != forestNodes {
						t.Errorf("torn view: trees=5 with nodes=%d, forest has %d",
							info.Stats.Nodes, forestNodes)
						return
					}
				case 0:
					if info.Stats.Nodes != treeNodes {
						t.Errorf("torn view: single-tree info with nodes=%d, tree has %d",
							info.Stats.Nodes, treeNodes)
						return
					}
					if info.OOB != nil {
						t.Error("torn view: single-tree info carries a forest OOB estimate")
						return
					}
				default:
					t.Errorf("impossible trees=%d", info.Trees)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
}

// TestBatchedPredictTreesFromDispatchModel is the regression test for the
// batched predict path's torn view: the response's "trees" field was read
// from the model version current when the request was ADMITTED, while the
// predictions came from the version current at DISPATCH. With the
// dispatcher parked across a tree→forest hot swap, the old code answered
// forest predictions labeled as a single-tree response (no trees field).
func TestBatchedPredictTreesFromDispatchModel(t *testing.T) {
	tree := trainModel(t, 1, 2000)
	forest := trainForest(t, 5)
	s, ts := newTestServer(t, tree)
	gateEntered := make(chan struct{}, 8)
	gate := make(chan struct{})
	b := enableBatching(t, s, BatchConfig{MaxRows: 4, Linger: time.Millisecond, QueueDepth: 8})
	var once sync.Once
	b.holdExec = func() { once.Do(func() { gateEntered <- struct{}{} }); <-gate }

	// values_rows with 2 rows: multi-row positional → takes the batching
	// path while the single tree serves.
	body, _ := json.Marshal(predictRequest{ValuesRows: [][]string{
		sampleValues(tree, "25"), sampleValues(tree, "50"),
	}})
	type result struct {
		resp predictResponse
		code int
		err  error
	}
	results := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(string(body)))
		if err != nil {
			results <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var pr predictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			results <- result{err: err}
			return
		}
		results <- result{resp: pr, code: resp.StatusCode}
	}()

	// The dispatcher has collected the request and parked at the flush
	// gate; swap in the forest, then release. The batch now executes
	// against the forest.
	<-gateEntered
	if _, err := s.Load("default", forest, "mid-queue swap"); err != nil {
		t.Fatal(err)
	}
	close(gate)

	r := <-results
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != http.StatusOK || len(r.resp.Predictions) != 2 {
		t.Fatalf("swap-raced batch: code %d resp %+v", r.code, r.resp)
	}
	if r.resp.Trees != forest.NumTrees() {
		t.Fatalf("trees=%d but the forest (%d trees) served the batch: "+
			"response metadata torn from the admission-time model",
			r.resp.Trees, forest.NumTrees())
	}
}

// TestCoalescedFallbackRowIndexPerRequest pins the micro-batcher's
// fallback attribution: when two requests coalesce into one dispatch and
// one carries a malformed row, the error must name the row's index WITHIN
// ITS OWN REQUEST (here "row 1:"), never its offset in the coalesced group
// (global row 3) — and the good request must still succeed.
func TestCoalescedFallbackRowIndexPerRequest(t *testing.T) {
	m := trainModel(t, 1, 2000)
	s, ts := newTestServer(t, m)
	gateEntered := make(chan struct{}, 8)
	gate := make(chan struct{})
	b := enableBatching(t, s, BatchConfig{MaxRows: 64, Linger: 50 * time.Millisecond, QueueDepth: 8})
	var once sync.Once
	b.holdExec = func() { once.Do(func() { gateEntered <- struct{}{} }); <-gate }

	// Park the dispatcher with a sacrificial request so A and B are both
	// queued before any flush — they are then guaranteed to coalesce.
	sacBody, _ := json.Marshal(predictRequest{ValuesRows: [][]string{sampleValues(m, "25")}})
	goodBody, _ := json.Marshal(predictRequest{ValuesRows: [][]string{
		sampleValues(m, "25"), sampleValues(m, "50"),
	}})
	badRows := [][]string{sampleValues(m, "70"), sampleValues(m, "30")}
	schema := m.Tree().Schema
	for a := range schema.Attrs {
		if schema.Attrs[a].Name == "car" {
			badRows[1][a] = "spaceship" // request B's row 1 (global row 3) is bad
		}
	}
	badBody, _ := json.Marshal(predictRequest{ValuesRows: badRows})

	type result struct {
		code int
		body map[string]any
		err  error
	}
	post := func(body []byte, ch chan result) {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(string(body)))
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			ch <- result{err: err}
			return
		}
		ch <- result{code: resp.StatusCode, body: doc}
	}
	sacCh, goodCh, badCh := make(chan result, 1), make(chan result, 1), make(chan result, 1)
	go post(sacBody, sacCh)
	<-gateEntered // dispatcher parked mid-flush of the sacrificial request
	go post(goodBody, goodCh)
	go post(badBody, badCh)
	waitFor(t, func() bool { return len(b.ch) == 2 })
	close(gate)

	for _, ch := range []chan result{sacCh, goodCh} {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("good request status %d body %v", r.code, r.body)
		}
	}
	r := <-badCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != http.StatusUnprocessableEntity {
		t.Fatalf("bad request status %d, want 422", r.code)
	}
	msg, _ := r.body["error"].(string)
	if !strings.Contains(msg, "row 1:") {
		t.Fatalf("fallback error %q does not name row 1 (request-relative index)", msg)
	}
	for _, leak := range []string{"row 2:", "row 3:"} {
		if strings.Contains(msg, leak) {
			t.Fatalf("fallback error %q leaks the coalesced-group offset (%s)", msg, leak)
		}
	}
}

// TestRetrainSwapRechecksServingSchema is the regression test for the
// retrain/hot-swap interleaving: a retrain cycle decides to publish its
// candidate, but between that decision and the registry swap an operator
// upload installs a model with a DIFFERENT schema. The candidate was
// trained and holdout-validated against the old schema's window, so
// publishing it would put a model on the wire that cannot speak the
// schema the stack just moved to. The old code called Load
// unconditionally and clobbered the operator's model; the guarded
// publish must refuse, report OutcomeStale, and leave the new model
// serving.
func TestRetrainSwapRechecksServingSchema(t *testing.T) {
	m := trainModel(t, 1, 2000) // serving: F1 on the canonical 9-attr schema
	s, ts := newIngestServer(t, m, 4000)

	// Drifted F7 traffic fills the window so the candidate wins its
	// holdout and the cycle reaches the publish step.
	st, err := synth.NewStreamer(synth.Config{Function: 7, Tuples: 10000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		ingestRows(t, ts.URL, drawRows(t, st, 500))
	}

	// The concurrently uploaded model speaks a 12-attribute schema —
	// structurally different from the window's 9.
	wds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 1000, Attrs: 12, Seed: 9, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := parclass.Train(wds, parclass.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}

	// swapGate fires after the tripwire decided to swap but before the
	// publish — exactly the window the race lives in.
	ist := s.ing.Load()
	gateFired := false
	ist.swapGate = func() {
		gateFired = true
		if _, err := s.Load("default", wide, "operator upload mid-retrain"); err != nil {
			t.Errorf("concurrent upload: %v", err)
		}
	}

	res, err := s.RetrainOnce("default", ingest.RetrainConfig{MinRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !gateFired {
		t.Fatalf("outcome %q: candidate never won its holdout, race not exercised", res.Outcome)
	}
	if res.Outcome != ingest.OutcomeStale {
		t.Fatalf("outcome %q, want %q: the unconditional publish installed a "+
			"candidate validated against a schema the server no longer serves",
			res.Outcome, ingest.OutcomeStale)
	}
	if res.Candidate != nil {
		t.Fatal("stale result still carries the candidate")
	}

	// The operator's model must still be serving.
	_, cur := s.current("default")
	if got := len(cur.model.Schema().Attrs); got != 12 {
		t.Fatalf("serving model has %d attrs, want 12: retrain clobbered the concurrent upload", got)
	}

	// The refusal is visible in /v1/metrics.
	var met metricsSnapshot
	if code := getJSON(t, ts.URL+"/v1/metrics", &met); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	r := met.Ingest.Retrain
	if r.Stales != 1 || r.Swaps != 0 || r.LastOutcome != string(ingest.OutcomeStale) {
		t.Fatalf("retrain counters %+v, want exactly one stale and no swaps", r)
	}
}
