// Package loadtest drives a parclass model server with synthetic
// prediction traffic and measures what came back — the engine behind
// cmd/loadgen and the `make servebench` serving row in BENCH_build.json.
//
// Two arrival models:
//
//   - Closed loop (default): Concurrency workers each keep exactly one
//     request in flight. Throughput self-limits to the server's capacity,
//     so overload never shows — the classic closed-loop blind spot.
//   - Open loop (ArrivalRate > 0): requests fire on a fixed schedule
//     regardless of completions, the way real independent clients behave.
//     Driving the rate past capacity makes the server's overload behavior
//     measurable: with admission control it sheds (429, counted separately
//     from errors), without it latency and memory grow without bound.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects the target, the traffic shape and the request form.
type Config struct {
	BaseURL string // e.g. http://localhost:8080
	// BaseURLs switches to fleet mode: requests are consistent-hash routed
	// across these nodes with per-node Retry-After backoff and one retry
	// past transport failures (see fleet.go). Overrides BaseURL when set.
	BaseURLs []string
	Model    string // registry model name; "" means default

	Concurrency int  // closed-loop workers (default 4)
	Batch       int  // rows per request; <= 1 sends single-row forms
	Positional  bool // send values/values_rows instead of name→value maps
	NoBatch     bool // set "no_batch" so the server skips micro-batching
	// LevelSync sets each request's "level_sync" kernel override: "on",
	// "off", or ""/"auto" to inherit the server's setting.
	LevelSync string

	Duration time.Duration // run length (default 10s)
	Requests int           // exact request budget; overrides Duration when > 0

	// ArrivalRate > 0 switches to open-loop mode: requests start every
	// 1/rate seconds on the driver's schedule, independent of completions.
	ArrivalRate float64

	Seed   int64
	Client *http.Client
}

// Result is one run's measurements. Latencies holds every successful
// request's wall time, sorted ascending.
type Result struct {
	OK      int64
	Shed    int64 // 429 responses (admission control), not errors
	Errors  int64 // transport failures and non-200/429 statuses
	FiveXX  int64 // of Errors, 5xx statuses — an admitted request the server failed
	Retries int64 // fleet mode: requests re-routed past a transport failure
	Rows    int64 // rows successfully classified
	Elapsed time.Duration
	// PerNode breaks the counters down by target in fleet mode (nil for a
	// single BaseURL run).
	PerNode   []NodeResult
	Latencies []time.Duration
}

// ReqPerSec is the successful-request rate.
func (r *Result) ReqPerSec() float64 { return float64(r.OK) / r.Elapsed.Seconds() }

// RowsPerSec is the classified-row rate.
func (r *Result) RowsPerSec() float64 { return float64(r.Rows) / r.Elapsed.Seconds() }

// ShedRate is the fraction of attempted requests the server shed with 429.
func (r *Result) ShedRate() float64 {
	total := r.OK + r.Shed + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Shed) / float64(total)
}

// Pct returns the p-th latency percentile (0 when nothing succeeded).
func (r *Result) Pct(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	i := int(p/100*float64(len(r.Latencies))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.Latencies) {
		i = len(r.Latencies) - 1
	}
	return r.Latencies[i]
}

// Mean returns the mean successful-request latency.
func (r *Result) Mean() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.Latencies {
		sum += d
	}
	return sum / time.Duration(len(r.Latencies))
}

// Max returns the slowest successful request.
func (r *Result) Max() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	return r.Latencies[len(r.Latencies)-1]
}

// ModelSchema mirrors the GET /v1/model/{name} fields the row synthesizer
// needs.
type ModelSchema struct {
	Classes []string `json:"classes"`
	Attrs   []struct {
		Name       string   `json:"name"`
		Kind       string   `json:"kind"`
		Categories []string `json:"categories"`
	} `json:"attrs"`
}

// FetchSchema loads the model's schema from the server.
func FetchSchema(baseURL, model string) (*ModelSchema, error) {
	if model == "" {
		model = "default"
	}
	url := baseURL + "/v1/model/" + model
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	var info ModelSchema
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	if len(info.Attrs) == 0 {
		return nil, fmt.Errorf("model %q exposes no attributes", model)
	}
	return &info, nil
}

// RandomValues synthesizes one positional row in schema attribute order.
func RandomValues(rng *rand.Rand, info *ModelSchema) []string {
	vals := make([]string, len(info.Attrs))
	for i, a := range info.Attrs {
		if a.Kind == "categorical" && len(a.Categories) > 0 {
			vals[i] = a.Categories[rng.Intn(len(a.Categories))]
		} else {
			vals[i] = strconv.FormatFloat(rng.Float64()*200000, 'g', -1, 64)
		}
	}
	return vals
}

// RandomRow synthesizes one name→value row the schema accepts.
func RandomRow(rng *rand.Rand, info *ModelSchema) map[string]string {
	row := make(map[string]string, len(info.Attrs))
	for _, a := range info.Attrs {
		if a.Kind == "categorical" && len(a.Categories) > 0 {
			row[a.Name] = a.Categories[rng.Intn(len(a.Categories))]
		} else {
			row[a.Name] = strconv.FormatFloat(rng.Float64()*200000, 'g', -1, 64)
		}
	}
	return row
}

// predictRequest mirrors the server's request body.
type predictRequest struct {
	Model      string              `json:"model,omitempty"`
	Row        map[string]string   `json:"row,omitempty"`
	Rows       []map[string]string `json:"rows,omitempty"`
	Values     []string            `json:"values,omitempty"`
	ValuesRows [][]string          `json:"values_rows,omitempty"`
	NoBatch    bool                `json:"no_batch,omitempty"`
	LevelSync  string              `json:"level_sync,omitempty"`
}

// body builds one request body per cfg's form.
func body(cfg *Config, rng *rand.Rand, info *ModelSchema) []byte {
	req := predictRequest{Model: cfg.Model, NoBatch: cfg.NoBatch, LevelSync: cfg.LevelSync}
	switch {
	case cfg.Positional && cfg.Batch <= 1:
		req.Values = RandomValues(rng, info)
	case cfg.Positional:
		req.ValuesRows = make([][]string, cfg.Batch)
		for i := range req.ValuesRows {
			req.ValuesRows[i] = RandomValues(rng, info)
		}
	case cfg.Batch <= 1:
		req.Row = RandomRow(rng, info)
	default:
		req.Rows = make([]map[string]string, cfg.Batch)
		for i := range req.Rows {
			req.Rows[i] = RandomRow(rng, info)
		}
	}
	buf, _ := json.Marshal(req)
	return buf
}

// Run executes one load run against cfg.BaseURL.
func Run(cfg Config) (*Result, error) {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	urls := cfg.BaseURLs
	if len(urls) == 0 {
		urls = []string{cfg.BaseURL}
	}
	router := newFleetRouter(urls)
	// Any live node can answer the schema probe; in fleet mode the first
	// node may legitimately be down for a kill-and-restart run.
	var (
		info *ModelSchema
		err  error
	)
	for _, u := range urls {
		if info, err = FetchSchema(u, cfg.Model); err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		// The default transport keeps only 2 idle conns per host; at high
		// concurrency that churns connections and measures the TCP stack
		// instead of the server.
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency + 64,
				MaxIdleConnsPerHost: cfg.Concurrency + 64,
			},
		}
	}
	rowsPerReq := int64(cfg.Batch)
	if rowsPerReq < 1 {
		rowsPerReq = 1
	}

	var (
		ok, shed, errs, fivexx, retries, rows atomic.Int64
		mu                                    sync.Mutex
		lats                                  []time.Duration
	)
	shoot := func(key uint64, buf []byte) {
		t0 := time.Now()
		for attempt := 0; ; attempt++ {
			fn := router.pick(key)
			resp, err := client.Post(fn.url+"/v1/predict", "application/json", bytes.NewReader(buf))
			if err != nil {
				// Transport failure: the node is likely dead or restarting.
				// Penalize it so pick probes elsewhere, and retry this request
				// once — a killed peer should cost a failover, not an error.
				fn.markDown()
				if attempt == 0 && len(router.nodes) > 1 {
					retries.Add(1)
					continue
				}
				fn.errs.Add(1)
				errs.Add(1)
				return
			}
			retryAfter := resp.Header.Get("Retry-After")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				d := time.Since(t0)
				ok.Add(1)
				fn.ok.Add(1)
				rows.Add(rowsPerReq)
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			case resp.StatusCode == http.StatusTooManyRequests:
				// Admission control: honor the node's Retry-After so routing
				// stays away exactly as long as the server asked. The request
				// itself is shed, not re-aimed — in open loop the schedule,
				// not the client's persistence, defines offered load.
				fn.markBackoff(retryAfter)
				shed.Add(1)
				fn.shed.Add(1)
			case resp.StatusCode >= 500:
				fivexx.Add(1)
				fn.fivexx.Add(1)
				errs.Add(1)
				fn.errs.Add(1)
			default:
				errs.Add(1)
				fn.errs.Add(1)
			}
			return
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	if cfg.ArrivalRate > 0 {
		// Open loop: fire on schedule, one goroutine per request.
		interval := time.Duration(float64(time.Second) / cfg.ArrivalRate)
		rng := rand.New(rand.NewSource(cfg.Seed))
		next := start
		for seq := 0; ; seq++ {
			if cfg.Requests > 0 {
				if seq >= cfg.Requests {
					break
				}
			} else if time.Now().After(deadline) {
				break
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
			buf := body(&cfg, rng, info)
			key := uint64(seq)
			wg.Add(1)
			go func() {
				defer wg.Done()
				shoot(key, buf)
			}()
		}
	} else {
		// Closed loop: each worker keeps one request in flight.
		var seq, reqKey atomic.Int64
		budget := int64(cfg.Requests)
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
				for {
					if budget > 0 {
						if seq.Add(1) > budget {
							return
						}
					} else if time.Now().After(deadline) {
						return
					}
					shoot(uint64(reqKey.Add(1)), body(&cfg, rng, info))
				}
			}(w)
		}
	}
	wg.Wait()

	res := &Result{
		OK:        ok.Load(),
		Shed:      shed.Load(),
		Errors:    errs.Load(),
		FiveXX:    fivexx.Load(),
		Retries:   retries.Load(),
		Rows:      rows.Load(),
		Elapsed:   time.Since(start),
		Latencies: lats,
	}
	if len(cfg.BaseURLs) > 0 {
		res.PerNode = router.perNode()
	}
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	return res, nil
}
