package loadtest

// Fleet routing: drive a multi-node cluster instead of one server.
// Config.BaseURLs switches Run into fleet mode — every request is routed
// by consistent hash (same key, same node, while the fleet is healthy)
// with a linear probe past nodes that are currently unavailable:
//
//   - A node that answers 429 is left alone for exactly the Retry-After
//     it asked for (the occupancy-scaled hint the server computes) —
//     per-node backpressure the router respects instead of hammering a
//     full queue.
//   - A node that fails at the transport layer (killed process, refused
//     connection) is marked down for downPenalty and the request retries
//     once on the next live node, so a crashed peer costs one retry, not
//     an error.
//
// The per-node counters feed Result.PerNode so harnesses can assert the
// routing actually spread and failed over.

import (
	"strconv"
	"sync/atomic"
	"time"
)

// downPenalty is how long a transport-erroring node is skipped before the
// router probes it again. Short enough that a restarted node rejoins the
// rotation within a second, long enough that a dead one costs ~2 probes/s.
const downPenalty = 500 * time.Millisecond

// NodeResult is one node's slice of a fleet run.
type NodeResult struct {
	URL     string `json:"url"`
	OK      int64  `json:"ok"`
	Shed    int64  `json:"shed"`
	Errors  int64  `json:"errors"`
	FiveXX  int64  `json:"fivexx"`
	Backoff int64  `json:"backoffs"` // 429s that installed a Retry-After backoff
}

// fleetNode is one target with its live routing state.
type fleetNode struct {
	url string
	// backoffUntil / downUntil are unix nanos before which the router
	// skips this node (Retry-After honored / transport-error penalty).
	backoffUntil atomic.Int64
	downUntil    atomic.Int64

	ok, shed, errs, fivexx, backoffs atomic.Int64
}

// available reports whether the router may send to the node now.
func (fn *fleetNode) available(now int64) bool {
	return now >= fn.backoffUntil.Load() && now >= fn.downUntil.Load()
}

// markBackoff honors a 429's Retry-After hint (whole seconds, RFC 9110).
func (fn *fleetNode) markBackoff(retryAfter string) {
	secs, err := strconv.ParseInt(retryAfter, 10, 64)
	if err != nil || secs <= 0 {
		return
	}
	fn.backoffUntil.Store(time.Now().Add(time.Duration(secs) * time.Second).UnixNano())
	fn.backoffs.Add(1)
}

// markDown penalizes a transport failure.
func (fn *fleetNode) markDown() {
	fn.downUntil.Store(time.Now().Add(downPenalty).UnixNano())
}

// fleetRouter picks a node per request key.
type fleetRouter struct {
	nodes []*fleetNode
}

func newFleetRouter(urls []string) *fleetRouter {
	r := &fleetRouter{}
	for _, u := range urls {
		r.nodes = append(r.nodes, &fleetNode{url: u})
	}
	return r
}

// mix is splitmix64's finalizer: spreads sequential request numbers over
// the ring so "consistent" does not mean "modulo-striped".
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pick routes key: hash to a home node, linear-probe past unavailable
// ones. When every node is backed off or down, the home node gets the
// request anyway — shedding at the server beats dropping at the client,
// and the attempt doubles as the liveness probe that heals the ring.
func (r *fleetRouter) pick(key uint64) *fleetNode {
	now := time.Now().UnixNano()
	n := len(r.nodes)
	start := int(mix(key) % uint64(n))
	for i := 0; i < n; i++ {
		if fn := r.nodes[(start+i)%n]; fn.available(now) {
			return fn
		}
	}
	return r.nodes[start]
}

// perNode snapshots the per-node counters.
func (r *fleetRouter) perNode() []NodeResult {
	out := make([]NodeResult, len(r.nodes))
	for i, fn := range r.nodes {
		out[i] = NodeResult{
			URL: fn.url, OK: fn.ok.Load(), Shed: fn.shed.Load(),
			Errors: fn.errs.Load(), FiveXX: fn.fivexx.Load(), Backoff: fn.backoffs.Load(),
		}
	}
	return out
}
