package loadtest

// Drift scenario driver: stream labeled rows with a mid-stream concept
// flip into POST /v1/ingest while probing the served model's accuracy on
// the freshest labels, and measure how long the server's retrain loop
// takes to recover. The engine behind `loadgen -drift` and the
// `benchjson -drift` row in BENCH_build.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// DriftConfig describes one drift run against a live server. The synth
// stream supplies both the ingest feed and the ground truth for probes.
type DriftConfig struct {
	BaseURL string
	Model   string // registry model name; "" means default

	// Synth generates the labeled stream. Set DriftFunction/DriftAt for a
	// concept flip; Tuples bounds the run.
	Synth synth.Config

	// BatchRows is rows per bulk ingest request (default 250).
	BatchRows int
	// ProbeEvery probes served accuracy after every this-many ingested
	// rows (default: BatchRows, i.e. after every ingest request).
	ProbeEvery int
	// ProbeRows is the probe size: the freshest this-many labeled rows are
	// re-sent through /v1/predict and scored (default 500).
	ProbeRows int
	// Tolerance defines recovery: once a post-drift probe has dipped below
	// pre-drift accuracy minus Tolerance, the first probe climbing back
	// above that line marks the recovery point (default 0.02).
	Tolerance float64
	// Pace, when > 0, sleeps this long after each ingest batch. An
	// unpaced run can stream the whole scenario before a periodic retrain
	// loop ever fires; pacing gives the server wall time to react, the
	// way a real feed would.
	Pace time.Duration

	Client *http.Client
}

// DriftPoint is one accuracy probe: served accuracy on the freshest
// ProbeRows labels after Row rows had been ingested.
type DriftPoint struct {
	Row      int     `json:"row"`
	Accuracy float64 `json:"accuracy"`
}

// DriftResult is one drift run's measurements.
type DriftResult struct {
	Points []DriftPoint `json:"points,omitempty"`

	// PreDriftAcc is the last probe before the concept flip; MinPostAcc is
	// the deepest post-flip probe — the crater the flip dug.
	PreDriftAcc float64 `json:"pre_drift_acc"`
	MinPostAcc  float64 `json:"min_post_acc"`

	// RecoveredAtRow is the ingested-row count at the first probe back
	// within Tolerance of PreDriftAcc *after* a probe had dipped below
	// that line, -1 if the run ended un-recovered. Requiring the dip first
	// keeps probe-window lag from declaring recovery before the crater:
	// right after the flip the probe window still holds mostly old-concept
	// rows, so the first post-flip probes can score spuriously high. If no
	// probe ever dips, the flip never measurably hurt the served model and
	// recovery is reported at the flip row itself. RecoverySecs is the
	// wall time from the flip to the recovery probe.
	RecoveredAtRow int     `json:"recovered_at_row"`
	RecoverySecs   float64 `json:"recovery_secs"`

	RowsIngested int64   `json:"rows_ingested"`
	Elapsed      float64 `json:"elapsed_secs"`
	IngestPerSec float64 `json:"ingest_rows_per_sec"`

	// Retrain counters scraped from GET /v1/metrics after the run.
	Retrains int64 `json:"retrains"`
	Swaps    int64 `json:"swaps"`
	Rejects  int64 `json:"rejects"`
}

// tupleValues renders a streamer tuple as the positional wire form.
func tupleValues(schema *dataset.Schema, tu dataset.Tuple) []string {
	vals := make([]string, len(schema.Attrs))
	for a := range schema.Attrs {
		if schema.Attrs[a].Kind == dataset.Continuous {
			vals[a] = strconv.FormatFloat(tu.Cont[a], 'g', -1, 64)
		} else {
			vals[a] = schema.Attrs[a].Categories[tu.Cat[a]]
		}
	}
	return vals
}

// ingest wire forms (mirror internal/serve).
type ingestRow struct {
	Values []string `json:"values"`
	Class  string   `json:"class"`
}

type ingestRequest struct {
	Model string      `json:"model,omitempty"`
	Rows  []ingestRow `json:"rows,omitempty"`
}

func (c *DriftConfig) post(path string, req, resp any) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.Client.Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var doc struct {
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&doc)
		return fmt.Errorf("POST %s: %s: %s", path, r.Status, doc.Error)
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// probe classifies rows through /v1/predict and scores them against their
// stream labels.
func (c *DriftConfig) probe(rows [][]string, labels []string) (float64, error) {
	req := predictRequest{Model: c.Model, ValuesRows: rows}
	var resp struct {
		Predictions []string `json:"predictions"`
	}
	if err := c.post("/v1/predict", req, &resp); err != nil {
		return 0, err
	}
	if len(resp.Predictions) != len(labels) {
		return 0, fmt.Errorf("probe returned %d predictions for %d rows", len(resp.Predictions), len(labels))
	}
	hit := 0
	for i, p := range resp.Predictions {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels)), nil
}

// RunDrift executes one drift scenario. The server must have ingest
// enabled and a retrain loop running; RunDrift only feeds and observes.
func RunDrift(cfg DriftConfig) (*DriftResult, error) {
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 250
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = cfg.BatchRows
	}
	if cfg.ProbeRows <= 0 {
		cfg.ProbeRows = 500
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.02
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	st, err := synth.NewStreamer(cfg.Synth)
	if err != nil {
		return nil, err
	}
	schema := st.Schema()

	res := &DriftResult{RecoveredAtRow: -1, MinPostAcc: 1}
	dipped := false
	// freshVals/freshLabels hold the ProbeRows most recent rows.
	var freshVals [][]string
	var freshLabels []string
	var driftStart time.Time
	start := time.Now()
	sent, sinceProbe := 0, 0
	for sent < cfg.Synth.Tuples {
		n := cfg.BatchRows
		if rem := cfg.Synth.Tuples - sent; rem < n {
			n = rem
		}
		req := ingestRequest{Model: cfg.Model, Rows: make([]ingestRow, 0, n)}
		for len(req.Rows) < n {
			tu, ok := st.Next()
			if !ok {
				break
			}
			vals := tupleValues(schema, tu)
			label := schema.Classes[tu.Class]
			req.Rows = append(req.Rows, ingestRow{Values: vals, Class: label})
			freshVals = append(freshVals, vals)
			freshLabels = append(freshLabels, label)
		}
		if len(req.Rows) == 0 {
			break
		}
		if over := len(freshVals) - cfg.ProbeRows; over > 0 {
			freshVals = freshVals[over:]
			freshLabels = freshLabels[over:]
		}
		if err := cfg.post("/v1/ingest", req, nil); err != nil {
			return nil, err
		}
		if cfg.Pace > 0 {
			time.Sleep(cfg.Pace)
		}
		crossedDrift := cfg.Synth.DriftAt > 0 && sent < cfg.Synth.DriftAt && sent+len(req.Rows) >= cfg.Synth.DriftAt
		if crossedDrift {
			driftStart = time.Now()
		}
		sent += len(req.Rows)
		res.RowsIngested = int64(sent)
		sinceProbe += len(req.Rows)
		if sinceProbe < cfg.ProbeEvery && sent < cfg.Synth.Tuples {
			continue
		}
		sinceProbe = 0
		acc, err := cfg.probe(freshVals, freshLabels)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, DriftPoint{Row: sent, Accuracy: acc})
		preDrift := cfg.Synth.DriftAt <= 0 || sent <= cfg.Synth.DriftAt
		if preDrift {
			res.PreDriftAcc = acc
			continue
		}
		if acc < res.MinPostAcc {
			res.MinPostAcc = acc
		}
		if acc < res.PreDriftAcc-cfg.Tolerance {
			dipped = true
		} else if dipped && res.RecoveredAtRow < 0 {
			res.RecoveredAtRow = sent
			res.RecoverySecs = time.Since(driftStart).Seconds()
		}
	}
	if cfg.Synth.DriftAt > 0 && !dipped && res.RecoveredAtRow < 0 {
		// No probe ever left the tolerance band: the flip never measurably
		// hurt the served model.
		res.RecoveredAtRow = cfg.Synth.DriftAt
	}
	res.Elapsed = time.Since(start).Seconds()
	if res.Elapsed > 0 {
		res.IngestPerSec = float64(res.RowsIngested) / res.Elapsed
	}
	if cfg.Synth.DriftAt <= 0 {
		res.MinPostAcc = 0
	}

	// Scrape retrain counters; best-effort — a server without /v1/metrics
	// still yields the accuracy timeline.
	if r, err := cfg.Client.Get(cfg.BaseURL + "/v1/metrics"); err == nil {
		var doc struct {
			Ingest *struct {
				Retrain struct {
					Cycles  int64 `json:"cycles"`
					Swaps   int64 `json:"swaps"`
					Rejects int64 `json:"rejects"`
				} `json:"retrain"`
			} `json:"ingest"`
		}
		json.NewDecoder(r.Body).Decode(&doc)
		r.Body.Close()
		if doc.Ingest != nil {
			res.Retrains = doc.Ingest.Retrain.Cycles
			res.Swaps = doc.Ingest.Retrain.Swaps
			res.Rejects = doc.Ingest.Retrain.Rejects
		}
	}
	return res, nil
}
