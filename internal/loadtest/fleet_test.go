package loadtest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNode is a minimal model server: schema on GET /v1/model/, and a
// configurable /v1/predict.
func fakeNode(t testing.TB, predict http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/model/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"classes": []string{"Group A", "Group B"},
			"attrs":   []map[string]any{{"name": "x", "kind": "continuous"}},
		})
	})
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		predict(w, r)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &hits
}

// ok200 answers every predict with one prediction.
func ok200(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"prediction": "Group A"})
}

// TestFleetRespectsRetryAfterBackoff: one node sheds every request with a
// long Retry-After; the router must take the hint and keep the rest of
// the run on the healthy node instead of feeding the full queue.
func TestFleetRespectsRetryAfterBackoff(t *testing.T) {
	shedder, shedHits := fakeNode(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	healthy, okHits := fakeNode(t, ok200)

	res, err := Run(Config{
		BaseURLs:    []string{shedder.URL, healthy.URL},
		Concurrency: 2,
		Requests:    50,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK+res.Shed != 50 || res.Errors != 0 {
		t.Fatalf("ok=%d shed=%d errors=%d, want 50 total and no errors", res.OK, res.Shed, res.Errors)
	}
	// Concurrency 2: at most 2 requests can be in flight when the first
	// 429 lands, so the shedding node sees a handful at the very start and
	// nothing after the 30s backoff is installed.
	if got := shedHits.Load(); got > 4 {
		t.Fatalf("shedding node got %d requests: Retry-After backoff not honored", got)
	}
	if okHits.Load() < 46 {
		t.Fatalf("healthy node served only %d of 50", okHits.Load())
	}
	if len(res.PerNode) != 2 {
		t.Fatalf("PerNode has %d entries", len(res.PerNode))
	}
	for _, pn := range res.PerNode {
		if pn.URL == shedder.URL && pn.Backoff == 0 {
			t.Fatal("shedding node recorded no backoff installs")
		}
	}
}

// TestFleetFailsOverDeadNode: a closed listener must cost retries, not
// errors — every request lands on the live node.
func TestFleetFailsOverDeadNode(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on
	healthy, okHits := fakeNode(t, ok200)

	res, err := Run(Config{
		BaseURLs:    []string{deadURL, healthy.URL},
		Concurrency: 2,
		Requests:    40,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 40 || res.Errors != 0 {
		t.Fatalf("ok=%d errors=%d, want all 40 ok", res.OK, res.Errors)
	}
	if res.Retries == 0 {
		t.Fatal("no retries recorded: the dead node was never probed, routing is not spreading")
	}
	if okHits.Load() != 40 {
		t.Fatalf("healthy node served %d of 40", okHits.Load())
	}
}

// TestFleet5xxCounted: server errors on admitted requests must surface in
// FiveXX — the zero-5xx acceptance gate clusterbench enforces.
func TestFleet5xxCounted(t *testing.T) {
	broken, _ := fakeNode(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	res, err := Run(Config{
		BaseURLs:    []string{broken.URL},
		Concurrency: 1,
		Requests:    5,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FiveXX != 5 || res.Errors != 5 {
		t.Fatalf("fivexx=%d errors=%d, want 5/5", res.FiveXX, res.Errors)
	}
}

// TestPickConsistentAndProbing pins the router invariants: a key maps to
// a stable node while the fleet is healthy, probes past unavailable
// nodes, and falls back to the home node when everyone is out.
func TestPickConsistentAndProbing(t *testing.T) {
	r := newFleetRouter([]string{"http://a", "http://b", "http://c"})
	for key := uint64(0); key < 64; key++ {
		first := r.pick(key)
		for i := 0; i < 8; i++ {
			if got := r.pick(key); got != first {
				t.Fatalf("key %d moved from %s to %s with all nodes healthy", key, first.url, got.url)
			}
		}
	}
	// Spread: 64 keys over 3 nodes should not all land on one.
	counts := map[string]int{}
	for key := uint64(0); key < 64; key++ {
		counts[r.pick(key).url]++
	}
	for url, c := range counts {
		if c == 0 || c == 64 {
			t.Fatalf("degenerate spread: %s got %d of 64", url, c)
		}
	}

	home := r.pick(7)
	home.downUntil.Store(time.Now().Add(time.Hour).UnixNano())
	if got := r.pick(7); got == home {
		t.Fatal("pick returned a down node with live alternatives")
	}
	for _, fn := range r.nodes {
		fn.backoffUntil.Store(time.Now().Add(time.Hour).UnixNano())
	}
	if got := r.pick(7); got != home {
		t.Fatalf("all-down fallback picked %s, want home %s", got.url, home.url)
	}
}
