package alist_test

import (
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"

	"repro/internal/alist"
	"repro/internal/alist/faultstore"
)

// chunker wraps a store so Scan delivers one record per chunk, letting the
// tests distinguish before-first-chunk faults from mid-scan faults.
type chunker struct {
	alist.Store
}

func (c *chunker) Scan(attr, slot int, off int64, n int, fn func([]alist.Record) error) error {
	return c.Store.Scan(attr, slot, off, n, func(recs []alist.Record) error {
		for i := range recs {
			if err := fn(recs[i : i+1]); err != nil {
				return err
			}
		}
		return nil
	})
}

// seeded returns a MemStore with n records reserved and written in attr 0
// slot 0, record i holding value i.
func seeded(t *testing.T, n int) *alist.MemStore {
	t.Helper()
	st := alist.NewMemStore(2, 2)
	off, err := st.Reserve(0, 0, n)
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	recs := make([]alist.Record, n)
	for i := range recs {
		recs[i] = alist.Record{Tid: uint32(i), Value: float64(i)}
	}
	if err := st.WriteAt(0, 0, off, recs); err != nil {
		t.Fatalf("write: %v", err)
	}
	return st
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{alist.MarkTransient(errors.New("flaky")), true},
		{fmt.Errorf("wrap: %w", alist.MarkTransient(errors.New("flaky"))), true},
		{io.ErrShortWrite, true},
		{fmt.Errorf("wrap: %w", syscall.EINTR), true},
		{syscall.EAGAIN, true},
		{syscall.ENOSPC, false},
	}
	for i, c := range cases {
		if got := alist.IsTransient(c.err); got != c.want {
			t.Errorf("case %d (%v): IsTransient = %v, want %v", i, c.err, got, c.want)
		}
	}
	if alist.MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) should stay nil")
	}
}

func TestRetryingDisabledIsPassthrough(t *testing.T) {
	st := alist.NewMemStore(1, 1)
	if got := alist.Retrying(st, alist.RetryPolicy{MaxAttempts: 1}); got != alist.Store(st) {
		t.Error("MaxAttempts 1 should return the store unchanged")
	}
	if got := alist.Retrying(st, alist.RetryPolicy{}); got != alist.Store(st) {
		t.Error("zero policy should return the store unchanged")
	}
}

func TestRetryHealsTransientWrite(t *testing.T) {
	fs := faultstore.New(seeded(t, 8), faultstore.Match(faultstore.OpWrite, 0, 2, faultstore.Transient))
	st := alist.Retrying(fs, alist.DefaultRetry())
	recs := []alist.Record{{Tid: 100, Value: 1}, {Tid: 101, Value: 2}}
	if err := st.WriteAt(0, 0, 0, recs); err != nil {
		t.Fatalf("write should heal after two transient faults: %v", err)
	}
	if got := fs.OpCalls(faultstore.OpWrite); got != 3 {
		t.Errorf("expected 3 write attempts, saw %d", got)
	}
	// The final attempt's data must be in place.
	var tids []uint32
	if err := st.Scan(0, 0, 0, 2, func(recs []alist.Record) error {
		for i := range recs {
			tids = append(tids, recs[i].Tid)
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(tids) != 2 || tids[0] != 100 || tids[1] != 101 {
		t.Errorf("healed write left wrong records: %v", tids)
	}
}

func TestRetryHealsShortWrite(t *testing.T) {
	fs := faultstore.New(seeded(t, 8), faultstore.Match(faultstore.OpWrite, 0, 1, faultstore.ShortWrite))
	st := alist.Retrying(fs, alist.DefaultRetry())
	recs := make([]alist.Record, 8)
	for i := range recs {
		recs[i] = alist.Record{Tid: uint32(200 + i)}
	}
	if err := st.WriteAt(0, 0, 0, recs); err != nil {
		t.Fatalf("full rewrite should heal the short write: %v", err)
	}
	var n int
	if err := st.Scan(0, 0, 0, 8, func(recs []alist.Record) error {
		for i := range recs {
			if recs[i].Tid != uint32(200+n) {
				t.Errorf("record %d: tid %d, want %d", n, recs[i].Tid, 200+n)
			}
			n++
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
}

func TestRetryGivesUpOnPermanentError(t *testing.T) {
	fs := faultstore.New(seeded(t, 4), faultstore.Match(faultstore.OpWrite, 0, 1, faultstore.Fail))
	st := alist.Retrying(fs, alist.DefaultRetry())
	err := st.WriteAt(0, 0, 0, []alist.Record{{Tid: 1}})
	if !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("expected the injected error, got %v", err)
	}
	if got := fs.OpCalls(faultstore.OpWrite); got != 1 {
		t.Errorf("permanent error must not be retried, saw %d attempts", got)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	fs := faultstore.New(seeded(t, 4), faultstore.Match(faultstore.OpReserve, 0, 0, faultstore.Transient))
	st := alist.Retrying(fs, alist.DefaultRetry())
	_, err := st.Reserve(0, 0, 2)
	if !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("expected the injected error after exhausting retries, got %v", err)
	}
	if !alist.IsTransient(err) {
		t.Error("exhausted error should still read as transient to the caller")
	}
	if got := fs.OpCalls(faultstore.OpReserve); got != 3 {
		t.Errorf("expected MaxAttempts=3 reserve attempts, saw %d", got)
	}
}

func TestScanEntryFaultHealed(t *testing.T) {
	fs := faultstore.New(seeded(t, 6), faultstore.Match(faultstore.OpScan, 0, 1, faultstore.Transient))
	st := alist.Retrying(fs, alist.DefaultRetry())
	var n int
	if err := st.Scan(0, 0, 0, 6, func(recs []alist.Record) error {
		n += len(recs)
		return nil
	}); err != nil {
		t.Fatalf("entry fault should heal with a clean restart: %v", err)
	}
	if n != 6 {
		t.Errorf("callback saw %d records, want exactly 6 (no double delivery)", n)
	}
	if got := fs.OpCalls(faultstore.OpScan); got != 2 {
		t.Errorf("expected 2 scan attempts, saw %d", got)
	}
}

func TestScanMidFaultNotRetried(t *testing.T) {
	// The fault fires after the first one-record chunk reached the callback:
	// a restart would double-feed the accumulated state, so the retry layer
	// must surface the error even though it is marked transient.
	fs := faultstore.New(&chunker{Store: seeded(t, 6)},
		faultstore.Rule{Op: faultstore.OpScan, Attr: faultstore.Any, Slot: faultstore.Any,
			Count: 1, Mode: faultstore.Transient, Chunk: 2})
	st := alist.Retrying(fs, alist.DefaultRetry())
	var n int
	err := st.Scan(0, 0, 0, 6, func(recs []alist.Record) error {
		n += len(recs)
		return nil
	})
	if !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("mid-scan fault must surface, got %v", err)
	}
	if got := fs.OpCalls(faultstore.OpScan); got != 1 {
		t.Errorf("mid-scan fault must not be retried, saw %d attempts", got)
	}
	if n != 1 {
		t.Errorf("callback saw %d records before the fault, want 1", n)
	}
}
