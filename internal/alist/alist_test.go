package alist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical, Categories: []string{"a", "b", "c"}},
		},
		Classes: []string{"p", "n"},
	}
}

func TestFromTable(t *testing.T) {
	tbl, err := dataset.NewTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		x   float64
		c   int32
		cls int32
	}{{3.5, 0, 1}, {1.5, 2, 0}, {2.5, 1, 1}}
	for _, r := range rows {
		tbl.AppendFast(dataset.Tuple{Cont: []float64{r.x, 0}, Cat: []int32{0, r.c}, Class: r.cls})
	}
	cont := FromTable(tbl, 0)
	if len(cont) != 3 {
		t.Fatalf("len = %d", len(cont))
	}
	for i, r := range rows {
		if cont[i].Value != r.x || cont[i].Tid != uint32(i) || cont[i].Class != r.cls {
			t.Fatalf("record %d = %+v", i, cont[i])
		}
	}
	cat := FromTable(tbl, 1)
	for i, r := range rows {
		if int32(cat[i].Value) != r.c {
			t.Fatalf("cat record %d = %+v", i, cat[i])
		}
	}
}

// Property: SortByValue sorts and is deterministic under permutation
// (tie-break by tid).
func TestSortByValueProperty(t *testing.T) {
	f := func(vals []float64, seed int64) bool {
		recs := make([]Record, len(vals))
		for i, v := range vals {
			recs[i] = Record{Value: float64(int(v*4) % 8), Tid: uint32(i)}
		}
		a := append([]Record(nil), recs...)
		b := append([]Record(nil), recs...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		SortByValue(a)
		SortByValue(b)
		if !IsSortedByValue(a) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// storeFactories builds each Store implementation for conformance tests.
func storeFactories(t *testing.T, nattr, slots int) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir(), nattr, slots)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	cf, err := NewCombinedFileStore(t.TempDir(), nattr, slots, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cf.Close() })
	return map[string]Store{
		"mem":      NewMemStore(nattr, slots),
		"file":     fs,
		"combined": cf,
	}
}

func TestCombinedStoreSpecifics(t *testing.T) {
	st, err := NewCombinedFileStore(t.TempDir(), 3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Stripe capacity is enforced.
	if _, err := st.Reserve(0, 0, 11); err == nil {
		t.Fatal("stripe overflow accepted")
	}
	// Stripes of different attributes in the same slot do not collide.
	for a := 0; a < 3; a++ {
		off, err := st.Reserve(a, 0, 4)
		if err != nil || off != 0 {
			t.Fatalf("reserve attr %d: %d, %v", a, off, err)
		}
		recs := make([]Record, 4)
		for i := range recs {
			recs[i] = Record{Value: float64(100*a + i), Tid: uint32(i)}
		}
		if err := st.WriteAt(a, 0, 0, recs); err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < 3; a++ {
		i := 0
		err := st.Scan(a, 0, 0, 4, func(rs []Record) error {
			for _, r := range rs {
				if r.Value != float64(100*a+i) {
					t.Fatalf("attr %d record %d = %+v (stripe collision?)", a, i, r)
				}
				i++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// One physical file per used slot: only slot 0 touched.
	if st.NumPhysicalFiles() != 1 {
		t.Fatalf("physical files = %d, want 1", st.NumPhysicalFiles())
	}
	if cap := st.NumSlots(); cap != 4 {
		t.Fatalf("slots = %d", cap)
	}
	if _, err := NewCombinedFileStore(t.TempDir(), 1, 1, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestStoreConformance(t *testing.T) {
	for name, st := range storeFactories(t, 2, 3) {
		t.Run(name, func(t *testing.T) {
			if st.NumSlots() != 3 {
				t.Fatalf("NumSlots = %d", st.NumSlots())
			}
			// Reserve two regions in one slot.
			off1, err := st.Reserve(0, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			off2, err := st.Reserve(0, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			if off1 != 0 || off2 != 4 {
				t.Fatalf("offsets %d,%d, want 0,4", off1, off2)
			}
			if st.Len(0, 1) != 6 {
				t.Fatalf("Len = %d", st.Len(0, 1))
			}
			recs := []Record{
				{Value: 1.5, Tid: 10, Class: 0},
				{Value: -2.5, Tid: 11, Class: 1},
				{Value: 3, Tid: 12, Class: 0},
				{Value: 4, Tid: 13, Class: 1},
			}
			if err := st.WriteAt(0, 1, off1, recs); err != nil {
				t.Fatal(err)
			}
			if err := st.WriteAt(0, 1, off2, recs[:2]); err != nil {
				t.Fatal(err)
			}
			// Scan the first region.
			var got []Record
			if err := st.Scan(0, 1, off1, 4, func(rs []Record) error {
				got = append(got, rs...)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 4 {
				t.Fatalf("scanned %d records", len(got))
			}
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
				}
			}
			// Scan with offset into the second region.
			got = got[:0]
			if err := st.Scan(0, 1, off2, 2, func(rs []Record) error {
				got = append(got, rs...)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
				t.Fatalf("offset scan wrong: %+v", got)
			}

			// Errors: out-of-range writes/scans and invalid slots.
			if err := st.WriteAt(0, 1, 5, recs); err == nil {
				t.Fatal("overflowing write must fail")
			}
			if err := st.Scan(0, 1, 3, 10, func([]Record) error { return nil }); err == nil {
				t.Fatal("overflowing scan must fail")
			}
			if _, err := st.Reserve(9, 0, 1); err == nil {
				t.Fatal("bad attr must fail")
			}
			if _, err := st.Reserve(0, 9, 1); err == nil {
				t.Fatal("bad slot must fail")
			}

			// Reset empties the slot for reuse.
			if err := st.Reset(0, 1); err != nil {
				t.Fatal(err)
			}
			if st.Len(0, 1) != 0 {
				t.Fatal("reset did not empty slot")
			}
			off, err := st.Reserve(0, 1, 1)
			if err != nil || off != 0 {
				t.Fatalf("post-reset reserve = %d, %v", off, err)
			}

			// EnsureSlots grows.
			if err := st.EnsureSlots(5); err != nil {
				t.Fatal(err)
			}
			if st.NumSlots() != 5 {
				t.Fatalf("NumSlots after grow = %d", st.NumSlots())
			}
			if _, err := st.Reserve(1, 4, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreConcurrentRegions(t *testing.T) {
	for name, st := range storeFactories(t, 1, 1) {
		t.Run(name, func(t *testing.T) {
			const writers = 8
			const per = 500
			offs := make([]int64, writers)
			for w := range offs {
				off, err := st.Reserve(0, 0, per)
				if err != nil {
					t.Fatal(err)
				}
				offs[w] = off
			}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					recs := make([]Record, per)
					for i := range recs {
						recs[i] = Record{Value: float64(w), Tid: uint32(w*per + i)}
					}
					if err := st.WriteAt(0, 0, offs[w], recs); err != nil {
						t.Error(err)
					}
				}(w)
			}
			wg.Wait()
			// Every region must contain exactly its writer's records.
			for w := 0; w < writers; w++ {
				i := 0
				err := st.Scan(0, 0, offs[w], per, func(rs []Record) error {
					for _, r := range rs {
						if r.Value != float64(w) || r.Tid != uint32(w*per+i) {
							return fmt.Errorf("writer %d record %d corrupted: %+v", w, i, r)
						}
						i++
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// Property: encode/decode round-trips records exactly (including negative
// values, NaN payload bits are not required).
func TestRecordCodecRoundTrip(t *testing.T) {
	f := func(v float64, tid uint32, class int32) bool {
		in := []Record{{Value: v, Tid: tid, Class: class}}
		buf := make([]byte, RecordSize)
		encodeRecords(buf, in)
		out := make([]Record, 1)
		decodeRecords(out, buf)
		return out[0] == in[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAppender(t *testing.T) {
	st := NewMemStore(1, 1)
	off, err := st.Reserve(0, 0, AppenderChunk*2+5)
	if err != nil {
		t.Fatal(err)
	}
	ap := NewAppender(st, 0, 0, off, AppenderChunk*2+5)
	for i := 0; i < AppenderChunk*2+5; i++ {
		if err := ap.Append(Record{Value: float64(i), Tid: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := st.Scan(0, 0, off, AppenderChunk*2+5, func(rs []Record) error {
		for _, r := range rs {
			if r.Value != float64(i) {
				return fmt.Errorf("record %d = %+v", i, r)
			}
			i++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Overflow and underfill are errors.
	off2, _ := st.Reserve(0, 0, 2)
	ap2 := NewAppender(st, 0, 0, off2, 2)
	ap2.Append(Record{})
	if err := ap2.Close(); err == nil {
		t.Fatal("underfilled appender must fail Close")
	}
	ap3 := NewAppender(st, 0, 0, off2, 1)
	ap3.Append(Record{})
	if err := ap3.Append(Record{}); err == nil {
		t.Fatal("overflowing appender must fail")
	}
}

func TestFileStoreReuseKeepsFileCountFixed(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Simulate many levels of reserve/write/reset cycles.
	for level := 0; level < 20; level++ {
		for a := 0; a < 3; a++ {
			for s := 0; s < 4; s++ {
				off, err := st.Reserve(a, s, 10)
				if err != nil {
					t.Fatal(err)
				}
				recs := make([]Record, 10)
				if err := st.WriteAt(a, s, off, recs); err != nil {
					t.Fatal(err)
				}
			}
		}
		for a := 0; a < 3; a++ {
			for s := 0; s < 4; s++ {
				if err := st.Reset(a, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.alist"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 12 {
		t.Fatalf("physical files = %d, want 3 attrs × 4 slots = 12", len(files))
	}
	if st.NumPhysicalFiles() != 12 {
		t.Fatalf("NumPhysicalFiles = %d", st.NumPhysicalFiles())
	}
	// After reset, disk usage is bounded (files truncated, not grown).
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != 0 {
			t.Fatalf("file %s not truncated: %d bytes", f, fi.Size())
		}
	}
}

func TestFileStoreBytesOnDisk(t *testing.T) {
	st, err := NewFileStore(t.TempDir(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Reserve(0, 0, 100); err != nil {
		t.Fatal(err)
	}
	if got := st.BytesOnDisk(); got != 100*RecordSize {
		t.Fatalf("BytesOnDisk = %d, want %d", got, 100*RecordSize)
	}
}
