// Package alist implements SPRINT attribute lists and their storage.
//
// An attribute list holds one record per training tuple: the tuple's value
// for that attribute, its class label, and its tuple identifier (tid). Lists
// for continuous attributes are sorted by value once at setup; splits
// preserve order so no re-sorting is ever needed (paper §2.1).
//
// Storage is abstracted behind Store with two implementations:
//
//   - MemStore keeps lists in memory — the paper's "Machine B" large-memory
//     configuration.
//   - FileStore keeps lists in binary disk files — the paper's "Machine A"
//     local-disk configuration, including the fixed physical-file reuse
//     scheme (§2.3 "Avoiding multiple attribute lists" and §3.2.2
//     "Managing attribute files").
//
// A Store exposes, per attribute, a fixed set of numbered slots (physical
// files). Each slot holds the concatenated lists of the leaves assigned to
// it; a leaf's list occupies a contiguous region whose offset is reserved up
// front (list sizes are known exactly: every attribute list of a leaf has
// one record per tuple in the leaf). Reservation is atomic, so concurrent
// splitters never interleave records.
package alist

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
)

// Record is one attribute-list entry. For categorical attributes Value holds
// the category code (exactly representable in a float64).
type Record struct {
	Value float64
	Tid   uint32
	Class int32
}

// RecordSize is the on-disk encoding size of a Record in bytes.
const RecordSize = 16

// Store is the storage backend for attribute lists. Implementations must
// support concurrent Reserve/WriteAt/Scan on distinct regions.
type Store interface {
	// NumSlots returns the current number of slots per attribute.
	NumSlots() int
	// EnsureSlots grows every attribute to at least n slots.
	EnsureSlots(n int) error
	// Len returns the number of records currently reserved in a slot.
	Len(attr, slot int) int64
	// Reserve atomically reserves space for n records in the given slot
	// and returns the record offset of the reserved region.
	Reserve(attr, slot int, n int) (int64, error)
	// WriteAt writes records into a previously reserved region starting
	// at record offset off.
	WriteAt(attr, slot int, off int64, recs []Record) error
	// Scan streams n records starting at record offset off to fn in
	// order, possibly in several chunks. The slice passed to fn is only
	// valid during the call.
	Scan(attr, slot int, off int64, n int, fn func([]Record) error) error
	// Reset empties a slot so it can be reused for a later level.
	Reset(attr, slot int) error
	// Close releases all resources (files, buffers).
	Close() error
}

// FromTable builds the initial (unsorted) attribute list of attribute a.
// Tids are tuple indices.
func FromTable(t *dataset.Table, a int) []Record {
	n := t.NumTuples()
	recs := make([]Record, n)
	if t.Schema().Attrs[a].Kind == dataset.Continuous {
		col := t.ContColumn(a)
		for i := 0; i < n; i++ {
			recs[i] = Record{Value: col[i], Tid: uint32(i), Class: t.Class(i)}
		}
	} else {
		col := t.CatColumn(a)
		for i := 0; i < n; i++ {
			recs[i] = Record{Value: float64(col[i]), Tid: uint32(i), Class: t.Class(i)}
		}
	}
	return recs
}

// Appender buffers sequential writes into a reserved region of a slot. A
// zero Appender is not usable; obtain one with NewAppender or reuse an old
// one (keeping its buffer) with Reset.
type Appender struct {
	st         Store
	attr, slot int
	off        int64 // next write offset
	remaining  int   // records still allowed
	buf        []Record
}

// AppenderChunk is the Appender flush threshold in records.
const AppenderChunk = 4096

// NewAppender creates an appender over a region of n records starting at
// record offset off (obtained from Reserve).
func NewAppender(st Store, attr, slot int, off int64, n int) *Appender {
	ap := &Appender{}
	ap.Reset(st, attr, slot, off, n)
	return ap
}

// Reset points the appender at a new region, retaining the internal buffer
// so a worker can reuse one appender across split units without allocating.
// The buffer is grown when a previous region was smaller (in particular a
// zero-record region must not pin the capacity at zero, or the staging loop
// in AppendChunk could never make progress); it converges to AppenderChunk
// and is never reallocated after that.
func (ap *Appender) Reset(st Store, attr, slot int, off int64, n int) {
	ap.st, ap.attr, ap.slot = st, attr, slot
	ap.off, ap.remaining = off, n
	if want := min(n, AppenderChunk); cap(ap.buf) < want {
		ap.buf = make([]Record, 0, want)
	} else {
		ap.buf = ap.buf[:0]
	}
}

// Append adds one record, flushing when the internal buffer fills.
func (ap *Appender) Append(r Record) error {
	if ap.remaining <= 0 {
		return fmt.Errorf("alist: appender region overflow (attr %d slot %d)", ap.attr, ap.slot)
	}
	ap.remaining--
	ap.buf = append(ap.buf, r)
	if len(ap.buf) >= AppenderChunk || cap(ap.buf) == len(ap.buf) {
		return ap.Flush()
	}
	return nil
}

// AppendChunk adds a run of records with bulk copies. Runs arriving while
// the buffer is empty and at least AppenderChunk long skip the buffer
// entirely: they are written straight from the caller's slice, which for
// MemStore is a single segment-to-segment memmove. Shorter runs are staged
// through the buffer so the store still sees chunk-sized writes.
func (ap *Appender) AppendChunk(recs []Record) error {
	if len(recs) > ap.remaining {
		return fmt.Errorf("alist: appender region overflow by %d records (attr %d slot %d)",
			len(recs)-ap.remaining, ap.attr, ap.slot)
	}
	ap.remaining -= len(recs)
	for len(recs) > 0 {
		if len(ap.buf) == 0 && len(recs) >= AppenderChunk {
			if err := ap.st.WriteAt(ap.attr, ap.slot, ap.off, recs); err != nil {
				return err
			}
			ap.off += int64(len(recs))
			return nil
		}
		space := cap(ap.buf) - len(ap.buf)
		if space == 0 {
			if err := ap.Flush(); err != nil {
				return err
			}
			continue
		}
		k := min(space, len(recs))
		ap.buf = append(ap.buf, recs[:k]...)
		recs = recs[k:]
		if len(ap.buf) >= AppenderChunk {
			if err := ap.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes any buffered records.
func (ap *Appender) Flush() error {
	if len(ap.buf) == 0 {
		return nil
	}
	if err := ap.st.WriteAt(ap.attr, ap.slot, ap.off, ap.buf); err != nil {
		return err
	}
	ap.off += int64(len(ap.buf))
	ap.buf = ap.buf[:0]
	return nil
}

// Close flushes and verifies the region was filled exactly.
func (ap *Appender) Close() error {
	if err := ap.Flush(); err != nil {
		return err
	}
	if ap.remaining != 0 {
		return fmt.Errorf("alist: appender region underfilled by %d records (attr %d slot %d)",
			ap.remaining, ap.attr, ap.slot)
	}
	return nil
}

// MemStore keeps attribute lists in memory. It corresponds to the paper's
// large-memory configuration where all temporary lists stay cached.
type MemStore struct {
	mu    sync.RWMutex
	nattr int
	segs  [][]segment // [attr][slot]
}

type segment struct {
	recs []Record
	used int64
}

// NewMemStore creates a memory store with the given attribute and slot
// counts.
func NewMemStore(nattr, slots int) *MemStore {
	st := &MemStore{nattr: nattr, segs: make([][]segment, nattr)}
	for a := range st.segs {
		st.segs[a] = make([]segment, slots)
	}
	return st
}

// NumSlots implements Store.
func (st *MemStore) NumSlots() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.segs) == 0 {
		return 0
	}
	return len(st.segs[0])
}

// EnsureSlots implements Store.
func (st *MemStore) EnsureSlots(n int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for a := range st.segs {
		for len(st.segs[a]) < n {
			st.segs[a] = append(st.segs[a], segment{})
		}
	}
	return nil
}

func (st *MemStore) checkSlot(attr, slot int) error {
	if attr < 0 || attr >= st.nattr {
		return fmt.Errorf("alist: attribute %d out of range [0,%d)", attr, st.nattr)
	}
	if slot < 0 || slot >= len(st.segs[attr]) {
		return fmt.Errorf("alist: slot %d out of range [0,%d)", slot, len(st.segs[attr]))
	}
	return nil
}

// Len implements Store.
func (st *MemStore) Len(attr, slot int) int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.segs[attr][slot].used
}

// Reserve implements Store.
func (st *MemStore) Reserve(attr, slot int, n int) (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.checkSlot(attr, slot); err != nil {
		return 0, err
	}
	seg := &st.segs[attr][slot]
	off := seg.used
	seg.used += int64(n)
	if int64(len(seg.recs)) < seg.used {
		if int64(cap(seg.recs)) >= seg.used {
			// Reset kept the capacity from an earlier level: reuse it
			// without touching the allocator.
			seg.recs = seg.recs[:seg.used]
		} else {
			// Grow with doubling so a slot reaches its steady-state
			// capacity in O(log n) allocations, after which every level
			// reuses it allocation-free.
			newCap := 2 * int64(cap(seg.recs))
			if newCap < seg.used {
				newCap = seg.used
			}
			grown := make([]Record, seg.used, newCap)
			copy(grown, seg.recs)
			seg.recs = grown
		}
	}
	return off, nil
}

// WriteAt implements Store. When recs is a chunk handed out by Scan, the
// copy below moves records directly from the source segment into the
// destination segment — the zero-copy split fast path (no staging buffer).
func (st *MemStore) WriteAt(attr, slot int, off int64, recs []Record) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if err := st.checkSlot(attr, slot); err != nil {
		return err
	}
	seg := &st.segs[attr][slot]
	if off < 0 || off+int64(len(recs)) > seg.used {
		return fmt.Errorf("alist: write [%d,%d) outside reserved [0,%d) (attr %d slot %d)",
			off, off+int64(len(recs)), seg.used, attr, slot)
	}
	copy(seg.recs[off:], recs)
	return nil
}

// Scan implements Store.
func (st *MemStore) Scan(attr, slot int, off int64, n int, fn func([]Record) error) error {
	st.mu.RLock()
	if err := st.checkSlot(attr, slot); err != nil {
		st.mu.RUnlock()
		return err
	}
	seg := &st.segs[attr][slot]
	if off < 0 || off+int64(n) > seg.used {
		st.mu.RUnlock()
		return fmt.Errorf("alist: scan [%d,%d) outside [0,%d) (attr %d slot %d)",
			off, off+int64(n), seg.used, attr, slot)
	}
	recs := seg.recs[off : off+int64(n)]
	st.mu.RUnlock()
	if n == 0 {
		return nil
	}
	return fn(recs)
}

// Reset implements Store.
func (st *MemStore) Reset(attr, slot int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.checkSlot(attr, slot); err != nil {
		return err
	}
	seg := &st.segs[attr][slot]
	seg.used = 0
	// Keep capacity: slot reuse across levels is the point of the scheme.
	return nil
}

// Close implements Store.
func (st *MemStore) Close() error { return nil }
