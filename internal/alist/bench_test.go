package alist

import (
	"math/rand"
	"testing"
)

func benchStoreRoundTrip(b *testing.B, st Store, n int) {
	b.Helper()
	recs := make([]Record, n)
	rng := rand.New(rand.NewSource(1))
	for i := range recs {
		recs[i] = Record{Value: rng.Float64(), Tid: uint32(i), Class: int32(i & 1)}
	}
	b.SetBytes(int64(n) * RecordSize * 2) // one write + one read
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Reset(0, 0); err != nil {
			b.Fatal(err)
		}
		off, err := st.Reserve(0, 0, n)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.WriteAt(0, 0, off, recs); err != nil {
			b.Fatal(err)
		}
		count := 0
		if err := st.Scan(0, 0, off, n, func(rs []Record) error {
			count += len(rs)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("scanned %d", count)
		}
	}
}

// BenchmarkStoreRoundTrip measures write+scan throughput of the three
// attribute-list backends on a 100K-record list.
func BenchmarkStoreRoundTrip(b *testing.B) {
	const n = 100000
	b.Run("mem", func(b *testing.B) {
		benchStoreRoundTrip(b, NewMemStore(1, 1), n)
	})
	b.Run("file", func(b *testing.B) {
		st, err := NewFileStore(b.TempDir(), 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		benchStoreRoundTrip(b, st, n)
	})
	b.Run("combined", func(b *testing.B) {
		st, err := NewCombinedFileStore(b.TempDir(), 1, 1, n)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		benchStoreRoundTrip(b, st, n)
	})
}

// BenchmarkSortByValue measures the one-time pre-sort of the setup phase.
func BenchmarkSortByValue(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]Record, 100000)
	for i := range orig {
		orig[i] = Record{Value: rng.Float64(), Tid: uint32(i)}
	}
	recs := make([]Record, len(orig))
	b.SetBytes(int64(len(orig)) * RecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(recs, orig)
		SortByValue(recs)
	}
}
