// Package faultstore wraps an alist.Store with deterministic, programmable
// fault injection for chaos testing. A Store is configured with a fault
// plan — an ordered list of Rules — and counts every operation it sees;
// when a call matches a rule's operation, attribute/slot filter and
// occurrence window, the rule fires: a permanent or transient error, a
// short write, an injected panic, or added latency. All bookkeeping is
// atomic, so the wrapper is safe under the engines' full worker
// concurrency (and under -race, where the chaos matrix runs it).
package faultstore

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/alist"
)

// Op identifies a Store operation a Rule can target.
type Op uint8

const (
	// OpReserve targets Store.Reserve.
	OpReserve Op = iota
	// OpWrite targets Store.WriteAt.
	OpWrite
	// OpScan targets Store.Scan and BufferedScanner.ScanBuf.
	OpScan
	// OpReset targets Store.Reset.
	OpReset
	// OpEnsureSlots targets Store.EnsureSlots.
	OpEnsureSlots
	// OpClose targets Store.Close.
	OpClose

	opCount
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpReserve:
		return "reserve"
	case OpWrite:
		return "write"
	case OpScan:
		return "scan"
	case OpReset:
		return "reset"
	case OpEnsureSlots:
		return "ensure-slots"
	case OpClose:
		return "close"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Mode selects what a firing rule does to the matched call.
type Mode uint8

const (
	// Fail returns a permanent error; retry layers must give up on it.
	Fail Mode = iota
	// Transient returns an error marked retryable (alist.MarkTransient),
	// modeling an interrupted syscall; a bounded retry heals it.
	Transient
	// ShortWrite (OpWrite only) writes a prefix of the records, then
	// returns a transient error wrapping io.ErrShortWrite — the partial
	// positioned write a full rewrite heals.
	ShortWrite
	// Panic panics in the calling goroutine, exercising the engines'
	// panic containment.
	Panic
	// Delay sleeps for the rule's Latency, then executes normally.
	Delay
)

// Any matches every attribute or slot in a Rule filter.
const Any = -1

// ErrInjected is the base error of every injected Fail/Transient/ShortWrite
// fault; test with errors.Is.
var ErrInjected = errors.New("faultstore: injected fault")

// Rule is one entry of a fault plan. A call matches when its operation is
// Op and the Attr/Slot filters accept it (Any accepts everything — note the
// zero value targets attribute/slot 0, so set Any explicitly). Of the
// matching calls, the rule skips the first After, then fires on the next
// Count of them (Count 0 = every one from then on, a permanent fault).
// When several rules match one call, the first firing rule wins; rules that
// matched but did not fire still count the call.
type Rule struct {
	Op      Op
	Attr    int // attribute filter; Any for all
	Slot    int // slot filter; Any for all
	After   int // matching calls to let through before firing
	Count   int // times to fire; 0 = unlimited
	Mode    Mode
	Err     error         // overrides the injected error (Fail/Transient)
	Latency time.Duration // Delay mode sleep
	Chunk   int           // OpScan only: fire before delivering the Chunk-th chunk (1-based) instead of at call entry
}

// Match builds the common any-attribute, any-slot rule.
func Match(op Op, after, count int, mode Mode) Rule {
	return Rule{Op: op, Attr: Any, Slot: Any, After: after, Count: count, Mode: mode}
}

// rule is a Rule plus its runtime counters.
type rule struct {
	Rule
	seen  atomic.Int64 // matching calls observed
	fired atomic.Int64 // times the rule injected
}

// baseErr renders the rule's injected error for one call site.
func (r *rule) baseErr(op Op, attr, slot int) error {
	if r.Err != nil {
		return fmt.Errorf("%w: %v attr=%d slot=%d: %w", ErrInjected, op, attr, slot, r.Err)
	}
	return fmt.Errorf("%w: %v attr=%d slot=%d", ErrInjected, op, attr, slot)
}

// render performs the rule's effect: nil for Delay (after sleeping), a
// panic for Panic, otherwise the injected error. ShortWrite is rendered by
// WriteAt itself.
func (r *rule) render(op Op, attr, slot int) error {
	switch r.Mode {
	case Delay:
		time.Sleep(r.Latency)
		return nil
	case Panic:
		panic(fmt.Sprintf("faultstore: injected panic: %v attr=%d slot=%d", op, attr, slot))
	case Transient:
		return alist.MarkTransient(r.baseErr(op, attr, slot))
	default: // Fail, ShortWrite
		return r.baseErr(op, attr, slot)
	}
}

// Store wraps an alist.Store with a fault plan. Create with New.
type Store struct {
	inner alist.Store
	bscan alist.BufferedScanner
	rules []*rule

	ops      [opCount]atomic.Int64
	injected atomic.Int64
}

var (
	_ alist.Store           = (*Store)(nil)
	_ alist.BufferedScanner = (*Store)(nil)
)

// New wraps inner with the given fault plan.
func New(inner alist.Store, rules ...Rule) *Store {
	st := &Store{inner: inner}
	st.bscan, _ = inner.(alist.BufferedScanner)
	for _, r := range rules {
		rr := &rule{Rule: r}
		st.rules = append(st.rules, rr)
	}
	return st
}

// Injected returns how many calls had a fault injected.
func (st *Store) Injected() int64 { return st.injected.Load() }

// OpCalls returns how many calls of op the store has seen (fired or not).
func (st *Store) OpCalls(op Op) int64 { return st.ops[op].Load() }

// fire counts the call and returns the first rule that fires on it, nil
// when the call passes through clean.
func (st *Store) fire(op Op, attr, slot int) *rule {
	st.ops[op].Add(1)
	for _, r := range st.rules {
		if r.Op != op ||
			(r.Attr != Any && r.Attr != attr) ||
			(r.Slot != Any && r.Slot != slot) {
			continue
		}
		n := r.seen.Add(1)
		if n <= int64(r.After) {
			continue
		}
		if r.Count > 0 && n > int64(r.After)+int64(r.Count) {
			continue
		}
		r.fired.Add(1)
		st.injected.Add(1)
		return r
	}
	return nil
}

// NumSlots implements alist.Store.
func (st *Store) NumSlots() int { return st.inner.NumSlots() }

// Len implements alist.Store.
func (st *Store) Len(attr, slot int) int64 { return st.inner.Len(attr, slot) }

// EnsureSlots implements alist.Store.
func (st *Store) EnsureSlots(n int) error {
	if r := st.fire(OpEnsureSlots, Any, Any); r != nil {
		if err := r.render(OpEnsureSlots, Any, Any); err != nil {
			return err
		}
	}
	return st.inner.EnsureSlots(n)
}

// Reserve implements alist.Store. Faults fire before the reservation, so a
// failed Reserve has no partial effect and is safe to retry.
func (st *Store) Reserve(attr, slot int, n int) (int64, error) {
	if r := st.fire(OpReserve, attr, slot); r != nil {
		if err := r.render(OpReserve, attr, slot); err != nil {
			return 0, err
		}
	}
	return st.inner.Reserve(attr, slot, n)
}

// WriteAt implements alist.Store. ShortWrite rules write the first half of
// recs before failing, modeling a torn positioned write.
func (st *Store) WriteAt(attr, slot int, off int64, recs []alist.Record) error {
	if r := st.fire(OpWrite, attr, slot); r != nil {
		if r.Mode == ShortWrite {
			if k := len(recs) / 2; k > 0 {
				if err := st.inner.WriteAt(attr, slot, off, recs[:k]); err != nil {
					return err
				}
			}
			return alist.MarkTransient(fmt.Errorf("%w: %v attr=%d slot=%d: %w",
				ErrInjected, OpWrite, attr, slot, io.ErrShortWrite))
		}
		if err := r.render(OpWrite, attr, slot); err != nil {
			return err
		}
	}
	return st.inner.WriteAt(attr, slot, off, recs)
}

// Reset implements alist.Store.
func (st *Store) Reset(attr, slot int) error {
	if r := st.fire(OpReset, attr, slot); r != nil {
		if err := r.render(OpReset, attr, slot); err != nil {
			return err
		}
	}
	return st.inner.Reset(attr, slot)
}

// Close implements alist.Store.
func (st *Store) Close() error {
	if r := st.fire(OpClose, Any, Any); r != nil {
		if err := r.render(OpClose, Any, Any); err != nil {
			return err
		}
	}
	return st.inner.Close()
}

// Scan implements alist.Store. Entry faults (Chunk 0) fire before any chunk
// is delivered — the case a clean-restart retry can heal; Chunk > 0 faults
// fire mid-scan, after real data already reached the callback.
func (st *Store) Scan(attr, slot int, off int64, n int, fn func([]alist.Record) error) error {
	fn2, err := st.armScan(attr, slot, fn)
	if err != nil {
		return err
	}
	return st.inner.Scan(attr, slot, off, n, fn2)
}

// ScanBuf implements alist.BufferedScanner, degrading to Scan when the
// inner store has no buffered path.
func (st *Store) ScanBuf(attr, slot int, off int64, n int, io *alist.IOBuf, fn func([]alist.Record) error) error {
	fn2, err := st.armScan(attr, slot, fn)
	if err != nil {
		return err
	}
	if st.bscan != nil {
		return st.bscan.ScanBuf(attr, slot, off, n, io, fn2)
	}
	return st.inner.Scan(attr, slot, off, n, fn2)
}

// armScan applies scan-entry faults and, for Chunk rules, wraps fn with the
// mid-scan trigger.
func (st *Store) armScan(attr, slot int, fn func([]alist.Record) error) (func([]alist.Record) error, error) {
	r := st.fire(OpScan, attr, slot)
	if r == nil {
		return fn, nil
	}
	if r.Chunk <= 0 {
		if err := r.render(OpScan, attr, slot); err != nil {
			return nil, err
		}
		return fn, nil // Delay mode: proceed normally after the sleep
	}
	k := 0
	return func(recs []alist.Record) error {
		k++
		if k == r.Chunk {
			if err := r.render(OpScan, attr, slot); err != nil {
				return err
			}
		}
		return fn(recs)
	}, nil
}
