package faultstore_test

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/alist"
	"repro/internal/alist/faultstore"
)

func seeded(t *testing.T, n int) *alist.MemStore {
	t.Helper()
	st := alist.NewMemStore(2, 2)
	for attr := 0; attr < 2; attr++ {
		if _, err := st.Reserve(attr, 0, n); err != nil {
			t.Fatalf("reserve: %v", err)
		}
		recs := make([]alist.Record, n)
		for i := range recs {
			recs[i] = alist.Record{Tid: uint32(i), Value: float64(i)}
		}
		if err := st.WriteAt(attr, 0, 0, recs); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	return st
}

func TestAfterCountWindow(t *testing.T) {
	fs := faultstore.New(seeded(t, 8), faultstore.Match(faultstore.OpWrite, 2, 2, faultstore.Fail))
	rec := []alist.Record{{Tid: 9}}
	for i := 0; i < 6; i++ {
		err := fs.WriteAt(0, 0, 0, rec)
		wantFail := i == 2 || i == 3 // skip the first After=2, fire on the next Count=2
		if wantFail && !errors.Is(err, faultstore.ErrInjected) {
			t.Errorf("write %d: want injected fault, got %v", i, err)
		}
		if !wantFail && err != nil {
			t.Errorf("write %d: want clean pass, got %v", i, err)
		}
	}
	if fs.Injected() != 2 {
		t.Errorf("Injected() = %d, want 2", fs.Injected())
	}
	if fs.OpCalls(faultstore.OpWrite) != 6 {
		t.Errorf("OpCalls(write) = %d, want 6", fs.OpCalls(faultstore.OpWrite))
	}
}

func TestAttrSlotFilter(t *testing.T) {
	fs := faultstore.New(seeded(t, 8),
		faultstore.Rule{Op: faultstore.OpWrite, Attr: 1, Slot: faultstore.Any, Mode: faultstore.Fail})
	rec := []alist.Record{{Tid: 9}}
	if err := fs.WriteAt(0, 0, 0, rec); err != nil {
		t.Errorf("attr 0 should pass the attr-1 filter: %v", err)
	}
	if err := fs.WriteAt(1, 0, 0, rec); !errors.Is(err, faultstore.ErrInjected) {
		t.Errorf("attr 1 should fire: %v", err)
	}
}

func TestShortWriteWritesPrefix(t *testing.T) {
	fs := faultstore.New(seeded(t, 8), faultstore.Match(faultstore.OpWrite, 0, 1, faultstore.ShortWrite))
	recs := make([]alist.Record, 8)
	for i := range recs {
		recs[i] = alist.Record{Tid: uint32(100 + i)}
	}
	err := fs.WriteAt(0, 0, 0, recs)
	if !errors.Is(err, faultstore.ErrInjected) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want injected short write, got %v", err)
	}
	if !alist.IsTransient(err) {
		t.Error("short write should be transient")
	}
	// The first half must be in place, the tail untouched (old tids 4..7).
	var tids []uint32
	if err := fs.Scan(0, 0, 0, 8, func(recs []alist.Record) error {
		for i := range recs {
			tids = append(tids, recs[i].Tid)
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	for i, tid := range tids {
		want := uint32(100 + i)
		if i >= 4 {
			want = uint32(i)
		}
		if tid != want {
			t.Errorf("record %d: tid %d, want %d", i, tid, want)
		}
	}
}

func TestPanicMode(t *testing.T) {
	fs := faultstore.New(seeded(t, 4), faultstore.Match(faultstore.OpScan, 0, 1, faultstore.Panic))
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected an injected panic")
		}
		if !strings.Contains(p.(string), "injected panic") {
			t.Fatalf("unexpected panic value: %v", p)
		}
	}()
	_ = fs.Scan(0, 0, 0, 4, func([]alist.Record) error { return nil })
}

func TestDelayMode(t *testing.T) {
	fs := faultstore.New(seeded(t, 4),
		faultstore.Rule{Op: faultstore.OpScan, Attr: faultstore.Any, Slot: faultstore.Any,
			Count: 1, Mode: faultstore.Delay, Latency: 20 * time.Millisecond})
	var n int
	t0 := time.Now()
	if err := fs.Scan(0, 0, 0, 4, func(recs []alist.Record) error {
		n += len(recs)
		return nil
	}); err != nil {
		t.Fatalf("delay must not fail the call: %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Errorf("scan returned after %v, want >= 20ms of injected latency", d)
	}
	if n != 4 {
		t.Errorf("delayed scan delivered %d records, want 4", n)
	}
	if fs.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", fs.Injected())
	}
}

func TestChunkFaultFiresMidScan(t *testing.T) {
	// MemStore delivers one chunk, so Chunk=1 fires before it reaches the
	// callback.
	fs := faultstore.New(seeded(t, 4),
		faultstore.Rule{Op: faultstore.OpScan, Attr: faultstore.Any, Slot: faultstore.Any,
			Count: 1, Mode: faultstore.Fail, Chunk: 1})
	var n int
	err := fs.Scan(0, 0, 0, 4, func(recs []alist.Record) error {
		n += len(recs)
		return nil
	})
	if !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if n != 0 {
		t.Errorf("callback saw %d records, want 0", n)
	}
}

func TestErrOverride(t *testing.T) {
	sentinel := errors.New("disk on fire")
	fs := faultstore.New(seeded(t, 4),
		faultstore.Rule{Op: faultstore.OpReset, Attr: faultstore.Any, Slot: faultstore.Any,
			Count: 1, Mode: faultstore.Fail, Err: sentinel})
	err := fs.Reset(0, 0)
	if !errors.Is(err, faultstore.ErrInjected) || !errors.Is(err, sentinel) {
		t.Fatalf("want both ErrInjected and the override, got %v", err)
	}
}

func TestFirstFiringRuleWins(t *testing.T) {
	a := errors.New("rule a")
	b := errors.New("rule b")
	fs := faultstore.New(seeded(t, 4),
		faultstore.Rule{Op: faultstore.OpReset, Attr: faultstore.Any, Slot: faultstore.Any,
			Count: 1, Mode: faultstore.Fail, Err: a},
		faultstore.Rule{Op: faultstore.OpReset, Attr: faultstore.Any, Slot: faultstore.Any,
			Mode: faultstore.Fail, Err: b})
	if err := fs.Reset(0, 0); !errors.Is(err, a) {
		t.Errorf("first call should fire rule a: %v", err)
	}
	// Rule a is spent; rule b (unlimited) takes over.
	if err := fs.Reset(0, 0); !errors.Is(err, b) {
		t.Errorf("second call should fire rule b: %v", err)
	}
}
