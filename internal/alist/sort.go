package alist

import (
	"slices"
	"sync"
)

// cmpRecord is the (value, tid) total order used by the setup pre-sort.
// Using a concrete comparator with slices.SortFunc avoids the reflect-based
// swap machinery of sort.Slice, which showed up as ~16% of setup profiles.
func cmpRecord(a, b Record) int {
	if a.Value != b.Value {
		if a.Value < b.Value {
			return -1
		}
		return 1
	}
	if a.Tid != b.Tid {
		if a.Tid < b.Tid {
			return -1
		}
		return 1
	}
	return 0
}

// SortByValue sorts a continuous attribute list by value (ties broken by tid
// for determinism). This is the one-time pre-sort of the setup phase.
func SortByValue(recs []Record) {
	slices.SortFunc(recs, cmpRecord)
}

// IsSortedByValue reports whether the list is sorted by (value, tid).
func IsSortedByValue(recs []Record) bool {
	return slices.IsSortedFunc(recs, cmpRecord)
}

// parallelSortMin is the smallest per-worker chunk worth a goroutine; below
// it the merge overhead dominates and the serial sort wins.
const parallelSortMin = 8192

// SortByValueParallel sorts like SortByValue using up to workers goroutines:
// the list is cut into equal chunks, chunks are sorted concurrently, and then
// merged pairwise (also concurrently) through one temporary buffer. Because
// (value, tid) is a total order over engine-built lists (tids are unique),
// the result is identical to SortByValue's for any worker count — the
// property the setup phase needs for bit-identical trees.
func SortByValueParallel(recs []Record, workers int) {
	n := len(recs)
	if workers > n/parallelSortMin {
		workers = n / parallelSortMin
	}
	if workers <= 1 {
		SortByValue(recs)
		return
	}

	bounds := make([]int, workers+1)
	for i := range bounds {
		bounds[i] = i * n / workers
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortFunc(recs[lo:hi], cmpRecord)
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()

	tmp := make([]Record, n)
	src, dst := recs, tmp
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		var mg sync.WaitGroup
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
			next = append(next, lo)
		}
		if i+1 < len(bounds) {
			// Odd run out: carry it through unchanged.
			lo, hi := bounds[i], bounds[i+1]
			copy(dst[lo:hi], src[lo:hi])
			next = append(next, lo)
		}
		mg.Wait()
		next = append(next, n)
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &recs[0] {
		copy(recs, src)
	}
}

// mergeRuns merges two sorted runs into dst (len(dst) = len(a)+len(b)).
// Ties prefer a, keeping the merge deterministic even for duplicate keys.
func mergeRuns(dst, a, b []Record) {
	k := 0
	for len(a) > 0 && len(b) > 0 {
		if cmpRecord(a[0], b[0]) <= 0 {
			dst[k] = a[0]
			a = a[1:]
		} else {
			dst[k] = b[0]
			b = b[1:]
		}
		k++
	}
	k += copy(dst[k:], a)
	copy(dst[k:], b)
}
