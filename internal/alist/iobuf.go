package alist

import "sync"

// IOBuf is a caller-owned staging area for file-backed scans: one encoded
// byte buffer plus one decoded record buffer, sized for a scan chunk. Engine
// workers keep one IOBuf in their per-worker scratch so repeated E/W/S scans
// of disk-resident lists allocate nothing.
type IOBuf struct {
	bytes []byte
	recs  []Record
}

// ensure returns chunk-sized views of the buffers, growing them on first use.
func (b *IOBuf) ensure(chunk int) ([]byte, []Record) {
	if cap(b.bytes) < chunk*RecordSize {
		b.bytes = make([]byte, chunk*RecordSize)
	}
	if cap(b.recs) < chunk {
		b.recs = make([]Record, chunk)
	}
	return b.bytes[:chunk*RecordSize], b.recs[:chunk]
}

// BufferedScanner is implemented by stores whose Scan needs staging buffers
// (the file-backed stores). ScanBuf behaves exactly like Scan but stages
// through the caller's IOBuf instead of allocating; a nil IOBuf falls back
// to fresh buffers.
type BufferedScanner interface {
	ScanBuf(attr, slot int, off int64, n int, io *IOBuf, fn func([]Record) error) error
}

// encBufPool recycles encode buffers for WriteAt across all file stores;
// writes happen on engine worker goroutines, so a pool keeps the steady
// state allocation-free without threading a buffer through every call site.
var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, AppenderChunk*RecordSize); return &b }}

// encodePooled encodes recs into a pooled buffer. The caller must pass the
// returned pointer to releaseEncBuf when the write completes.
func encodePooled(recs []Record) (*[]byte, []byte) {
	bp := encBufPool.Get().(*[]byte)
	need := len(recs) * RecordSize
	b := *bp
	if cap(b) < need {
		b = make([]byte, need)
		*bp = b
	}
	b = b[:need]
	encodeRecords(b, recs)
	return bp, b
}

func releaseEncBuf(bp *[]byte) { encBufPool.Put(bp) }
