package alist

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// FileStore keeps attribute lists in binary disk files, one physical file
// per (attribute, slot). This is the paper's local-disk configuration: the
// growth phase reuses a fixed set of physical files per attribute (4 for the
// serial/BASIC schemes, 2K for the windowed schemes, up to 4P for SUBTREE)
// instead of creating one file per tree node.
//
// Records are encoded little-endian as (float64 value, uint32 tid, uint32
// class), 16 bytes each. Reads and writes use ReadAt/WriteAt so concurrent
// access to disjoint regions needs no locking beyond lazy file creation.
type FileStore struct {
	dir   string
	nattr int

	mu    sync.Mutex   // guards files growth and lazy open
	files [][]*fileSeg // [attr][slot]

	scanChunk int
}

type fileSeg struct {
	f    *os.File
	used atomic.Int64
}

// DefaultScanChunk is the number of records per Scan callback chunk
// (8192 records = 128 KiB), chosen to keep sequential throughput high while
// bounding memory, as the paper's buffered scans do.
const DefaultScanChunk = 8192

// NewFileStore creates a file store rooted at dir (created if needed) with
// the given attribute and slot counts.
func NewFileStore(dir string, nattr, slots int) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("alist: creating store dir: %w", err)
	}
	st := &FileStore{dir: dir, nattr: nattr, files: make([][]*fileSeg, nattr), scanChunk: DefaultScanChunk}
	for a := range st.files {
		st.files[a] = make([]*fileSeg, slots)
	}
	return st, nil
}

// NumSlots implements Store.
func (st *FileStore) NumSlots() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.files) == 0 {
		return 0
	}
	return len(st.files[0])
}

// EnsureSlots implements Store.
func (st *FileStore) EnsureSlots(n int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for a := range st.files {
		for len(st.files[a]) < n {
			st.files[a] = append(st.files[a], nil)
		}
	}
	return nil
}

// seg returns the (possibly lazily created) file segment for (attr, slot).
func (st *FileStore) seg(attr, slot int) (*fileSeg, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if attr < 0 || attr >= st.nattr {
		return nil, fmt.Errorf("alist: attribute %d out of range [0,%d)", attr, st.nattr)
	}
	if slot < 0 || slot >= len(st.files[attr]) {
		return nil, fmt.Errorf("alist: slot %d out of range [0,%d)", slot, len(st.files[attr]))
	}
	if st.files[attr][slot] == nil {
		path := filepath.Join(st.dir, fmt.Sprintf("attr%04d_slot%04d.alist", attr, slot))
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("alist: opening %s: %w", path, err)
		}
		st.files[attr][slot] = &fileSeg{f: f}
	}
	return st.files[attr][slot], nil
}

// Len implements Store.
func (st *FileStore) Len(attr, slot int) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if attr < 0 || attr >= st.nattr || slot < 0 || slot >= len(st.files[attr]) ||
		st.files[attr][slot] == nil {
		return 0
	}
	return st.files[attr][slot].used.Load()
}

// Reserve implements Store.
func (st *FileStore) Reserve(attr, slot int, n int) (int64, error) {
	seg, err := st.seg(attr, slot)
	if err != nil {
		return 0, err
	}
	return seg.used.Add(int64(n)) - int64(n), nil
}

// WriteAt implements Store.
func (st *FileStore) WriteAt(attr, slot int, off int64, recs []Record) error {
	seg, err := st.seg(attr, slot)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(recs)) > seg.used.Load() {
		return fmt.Errorf("alist: write [%d,%d) outside reserved [0,%d) (attr %d slot %d)",
			off, off+int64(len(recs)), seg.used.Load(), attr, slot)
	}
	bp, buf := encodePooled(recs)
	defer releaseEncBuf(bp)
	if _, err := seg.f.WriteAt(buf, off*RecordSize); err != nil {
		return fmt.Errorf("alist: writing attr %d slot %d: %w", attr, slot, err)
	}
	return nil
}

// Scan implements Store.
func (st *FileStore) Scan(attr, slot int, off int64, n int, fn func([]Record) error) error {
	return st.ScanBuf(attr, slot, off, n, nil, fn)
}

// ScanBuf implements BufferedScanner: like Scan, but staging the read and
// decode through the caller's IOBuf so repeated scans allocate nothing.
func (st *FileStore) ScanBuf(attr, slot int, off int64, n int, io *IOBuf, fn func([]Record) error) error {
	seg, err := st.seg(attr, slot)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(n) > seg.used.Load() {
		return fmt.Errorf("alist: scan [%d,%d) outside [0,%d) (attr %d slot %d)",
			off, off+int64(n), seg.used.Load(), attr, slot)
	}
	chunk := st.scanChunk
	var local IOBuf
	if io == nil {
		io = &local
	}
	buf, recs := io.ensure(chunk)
	for n > 0 {
		c := chunk
		if c > n {
			c = n
		}
		b := buf[:c*RecordSize]
		if _, err := seg.f.ReadAt(b, off*RecordSize); err != nil {
			return fmt.Errorf("alist: reading attr %d slot %d: %w", attr, slot, err)
		}
		decodeRecords(recs[:c], b)
		if err := fn(recs[:c]); err != nil {
			return err
		}
		off += int64(c)
		n -= c
	}
	return nil
}

// Reset implements Store.
func (st *FileStore) Reset(attr, slot int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if attr < 0 || attr >= st.nattr || slot < 0 || slot >= len(st.files[attr]) {
		return fmt.Errorf("alist: reset of invalid slot (attr %d slot %d)", attr, slot)
	}
	seg := st.files[attr][slot]
	if seg == nil {
		return nil
	}
	// Truncating (rather than deleting and recreating) is the essence of
	// the paper's reuse scheme: the file count stays fixed for the whole
	// build.
	if err := seg.f.Truncate(0); err != nil {
		return fmt.Errorf("alist: truncating attr %d slot %d: %w", attr, slot, err)
	}
	seg.used.Store(0)
	return nil
}

// Close implements Store.
func (st *FileStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for a := range st.files {
		for s := range st.files[a] {
			if st.files[a][s] == nil {
				continue
			}
			if err := st.files[a][s].f.Close(); err != nil && first == nil {
				first = err
			}
			st.files[a][s] = nil
		}
	}
	return first
}

// BytesOnDisk reports the total bytes currently reserved across all slots;
// useful for the out-of-core example and tests.
func (st *FileStore) BytesOnDisk() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total int64
	for a := range st.files {
		for s := range st.files[a] {
			if st.files[a][s] != nil {
				total += st.files[a][s].used.Load() * RecordSize
			}
		}
	}
	return total
}

// NumPhysicalFiles reports how many physical files have been created; tests
// assert the paper's fixed-file-count property.
func (st *FileStore) NumPhysicalFiles() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for a := range st.files {
		for s := range st.files[a] {
			if st.files[a][s] != nil {
				n++
			}
		}
	}
	return n
}

func encodeRecords(buf []byte, recs []Record) {
	for i := range recs {
		o := i * RecordSize
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(recs[i].Value))
		binary.LittleEndian.PutUint32(buf[o+8:], recs[i].Tid)
		binary.LittleEndian.PutUint32(buf[o+12:], uint32(recs[i].Class))
	}
}

func decodeRecords(recs []Record, buf []byte) {
	for i := range recs {
		o := i * RecordSize
		recs[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(buf[o:]))
		recs[i].Tid = binary.LittleEndian.Uint32(buf[o+8:])
		recs[i].Class = int32(binary.LittleEndian.Uint32(buf[o+12:]))
	}
}
