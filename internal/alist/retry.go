package alist

import (
	"errors"
	"io"
	"sync"
	"syscall"
	"time"
)

// Transient-fault healing for the real store paths. Disk-backed stores sit
// on positioned file I/O, where a class of errors (interrupted syscalls,
// short writes, injected chaos faults) is worth one or two more attempts
// before a whole multi-second build is torn down. Retrying wraps any Store
// with a bounded retry-with-backoff layer; engines apply it to the store
// they build on (FileStore, CombinedFileStore and MemStore alike — for the
// memory store every error is structural and never transient, so the
// wrapper is pure passthrough there).

// RetryPolicy bounds the retry loop applied to transient store faults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (first try
	// included). <= 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the sleep before the second attempt; each further
	// attempt doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff sleep.
	MaxDelay time.Duration
}

// DefaultRetry is the policy engines use when the caller sets none: three
// attempts with a 200µs/400µs backoff, enough to ride out an interrupted
// syscall without stretching a genuinely failing build by more than ~1ms
// per operation.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 10 * time.Millisecond}
}

// transientError marks a wrapped error as transient (retry-worthy).
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it. Fault
// injectors use it to model recoverable faults; errors.Is/As still see the
// underlying error.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is worth retrying: anything carrying a
// Transient() bool marker, an interrupted or would-block syscall, or a
// short write (the full region is simply rewritten — positioned writes are
// idempotent).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, io.ErrShortWrite) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// Retrying wraps st with the bounded retry policy. Policies with
// MaxAttempts <= 1 return st unchanged.
//
// Retry semantics per operation:
//
//   - WriteAt is always retried: it targets a previously reserved region at
//     a fixed offset, so rewriting the full region is idempotent (this is
//     also what heals a short write).
//   - Scan/ScanBuf are retried only when the failure happened before the
//     first chunk reached the callback — the callback may accumulate state
//     (histograms, split runs), so a mid-scan restart would double-feed it.
//   - Reserve, EnsureSlots and Reset are retried on the premise that
//     implementations fail them without partial effects (both file stores
//     roll back before returning an error).
//   - Close is never retried.
//
// The wrapper always implements BufferedScanner; when the inner store does
// not, ScanBuf degrades to Scan (the IOBuf is just an optimization).
func Retrying(st Store, pol RetryPolicy) Store {
	if pol.MaxAttempts <= 1 {
		return st
	}
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = DefaultRetry().BaseDelay
	}
	if pol.MaxDelay < pol.BaseDelay {
		pol.MaxDelay = pol.BaseDelay
	}
	rs := &retryStore{inner: st, pol: pol}
	rs.bscan, _ = st.(BufferedScanner)
	rs.calls.New = func() any {
		c := &scanCall{}
		// Bind the delivery closure once per pooled object so steady-state
		// scans stay allocation-free (the hot-path budget the engines gate).
		c.deliver = func(recs []Record) error {
			c.delivered = true
			return c.fn(recs)
		}
		return c
	}
	return rs
}

// retryStore is the Retrying wrapper.
type retryStore struct {
	inner Store
	bscan BufferedScanner // inner's ScanBuf, when it has one
	pol   RetryPolicy
	calls sync.Pool // of *scanCall
}

// scanCall tracks whether a scan attempt delivered any chunk; pooled so the
// per-call state costs no allocation.
type scanCall struct {
	fn        func([]Record) error
	delivered bool
	deliver   func([]Record) error
}

// sleep backs off before attempt+1 (attempt is 1-based).
func (rs *retryStore) sleep(attempt int) {
	sh := attempt - 1
	if sh > 16 {
		sh = 16
	}
	d := rs.pol.BaseDelay << sh
	if d > rs.pol.MaxDelay {
		d = rs.pol.MaxDelay
	}
	time.Sleep(d)
}

func (rs *retryStore) NumSlots() int            { return rs.inner.NumSlots() }
func (rs *retryStore) Len(attr, slot int) int64 { return rs.inner.Len(attr, slot) }
func (rs *retryStore) Close() error             { return rs.inner.Close() }

func (rs *retryStore) EnsureSlots(n int) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = rs.inner.EnsureSlots(n)
		if err == nil || attempt >= rs.pol.MaxAttempts || !IsTransient(err) {
			return err
		}
		rs.sleep(attempt)
	}
}

func (rs *retryStore) Reserve(attr, slot int, n int) (int64, error) {
	var (
		off int64
		err error
	)
	for attempt := 1; ; attempt++ {
		off, err = rs.inner.Reserve(attr, slot, n)
		if err == nil || attempt >= rs.pol.MaxAttempts || !IsTransient(err) {
			return off, err
		}
		rs.sleep(attempt)
	}
}

func (rs *retryStore) WriteAt(attr, slot int, off int64, recs []Record) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = rs.inner.WriteAt(attr, slot, off, recs)
		if err == nil || attempt >= rs.pol.MaxAttempts || !IsTransient(err) {
			return err
		}
		rs.sleep(attempt)
	}
}

func (rs *retryStore) Reset(attr, slot int) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = rs.inner.Reset(attr, slot)
		if err == nil || attempt >= rs.pol.MaxAttempts || !IsTransient(err) {
			return err
		}
		rs.sleep(attempt)
	}
}

func (rs *retryStore) Scan(attr, slot int, off int64, n int, fn func([]Record) error) error {
	c := rs.calls.Get().(*scanCall)
	c.fn = fn
	var err error
	for attempt := 1; ; attempt++ {
		c.delivered = false
		err = rs.inner.Scan(attr, slot, off, n, c.deliver)
		if err == nil || c.delivered || attempt >= rs.pol.MaxAttempts || !IsTransient(err) {
			break
		}
		rs.sleep(attempt)
	}
	c.fn = nil
	rs.calls.Put(c)
	return err
}

// ScanBuf implements BufferedScanner with the same before-first-chunk retry
// rule as Scan, falling back to the inner Scan when the store has no
// buffered path.
func (rs *retryStore) ScanBuf(attr, slot int, off int64, n int, io *IOBuf, fn func([]Record) error) error {
	c := rs.calls.Get().(*scanCall)
	c.fn = fn
	var err error
	for attempt := 1; ; attempt++ {
		c.delivered = false
		if rs.bscan != nil {
			err = rs.bscan.ScanBuf(attr, slot, off, n, io, c.deliver)
		} else {
			err = rs.inner.Scan(attr, slot, off, n, c.deliver)
		}
		if err == nil || c.delivered || attempt >= rs.pol.MaxAttempts || !IsTransient(err) {
			break
		}
		rs.sleep(attempt)
	}
	c.fn = nil
	rs.calls.Put(c)
	return err
}
