package alist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// CombinedFileStore implements the paper's §2.3 refinement: "it is possible
// to combine the records of different attribute lists into one physical
// file, thus requiring a total of 4 physical files". One file per slot
// holds every attribute's records in fixed-capacity stripes (capacity = the
// training-set size, since an attribute list never holds more than one
// record per tuple); the byte offset of record off of attribute a is
// (a·capacity + off)·RecordSize. Stripes are written sparsely, so the
// nominal file size costs no disk until records land.
type CombinedFileStore struct {
	dir      string
	nattr    int
	capacity int64

	mu    sync.Mutex
	files []*combinedSlot // [slot]

	scanChunk int
}

type combinedSlot struct {
	f    *os.File
	used []atomic.Int64 // per attribute
}

// NewCombinedFileStore creates a combined store: one physical file per
// slot, each striped into nattr regions of capacity records.
func NewCombinedFileStore(dir string, nattr, slots int, capacity int) (*CombinedFileStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("alist: combined store needs positive capacity, got %d", capacity)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("alist: creating store dir: %w", err)
	}
	st := &CombinedFileStore{
		dir: dir, nattr: nattr, capacity: int64(capacity),
		files: make([]*combinedSlot, slots), scanChunk: DefaultScanChunk,
	}
	return st, nil
}

// NumSlots implements Store.
func (st *CombinedFileStore) NumSlots() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.files)
}

// EnsureSlots implements Store.
func (st *CombinedFileStore) EnsureSlots(n int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.files) < n {
		st.files = append(st.files, nil)
	}
	return nil
}

func (st *CombinedFileStore) slot(slot int) (*combinedSlot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if slot < 0 || slot >= len(st.files) {
		return nil, fmt.Errorf("alist: slot %d out of range [0,%d)", slot, len(st.files))
	}
	if st.files[slot] == nil {
		path := filepath.Join(st.dir, fmt.Sprintf("combined_slot%04d.alist", slot))
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("alist: opening %s: %w", path, err)
		}
		st.files[slot] = &combinedSlot{f: f, used: make([]atomic.Int64, st.nattr)}
	}
	return st.files[slot], nil
}

func (st *CombinedFileStore) checkAttr(attr int) error {
	if attr < 0 || attr >= st.nattr {
		return fmt.Errorf("alist: attribute %d out of range [0,%d)", attr, st.nattr)
	}
	return nil
}

// Len implements Store.
func (st *CombinedFileStore) Len(attr, slot int) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if attr < 0 || attr >= st.nattr || slot < 0 || slot >= len(st.files) || st.files[slot] == nil {
		return 0
	}
	return st.files[slot].used[attr].Load()
}

// Reserve implements Store.
func (st *CombinedFileStore) Reserve(attr, slot int, n int) (int64, error) {
	if err := st.checkAttr(attr); err != nil {
		return 0, err
	}
	cs, err := st.slot(slot)
	if err != nil {
		return 0, err
	}
	off := cs.used[attr].Add(int64(n)) - int64(n)
	if off+int64(n) > st.capacity {
		cs.used[attr].Add(-int64(n)) // roll back the failed reservation
		return 0, fmt.Errorf("alist: stripe overflow: attr %d slot %d needs %d records, capacity %d",
			attr, slot, off+int64(n), st.capacity)
	}
	return off, nil
}

// stripeByte returns the byte position of record off in attribute a's stripe.
func (st *CombinedFileStore) stripeByte(attr int, off int64) int64 {
	return (int64(attr)*st.capacity + off) * RecordSize
}

// WriteAt implements Store.
func (st *CombinedFileStore) WriteAt(attr, slot int, off int64, recs []Record) error {
	if err := st.checkAttr(attr); err != nil {
		return err
	}
	cs, err := st.slot(slot)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(recs)) > cs.used[attr].Load() {
		return fmt.Errorf("alist: write [%d,%d) outside reserved [0,%d) (attr %d slot %d)",
			off, off+int64(len(recs)), cs.used[attr].Load(), attr, slot)
	}
	bp, buf := encodePooled(recs)
	defer releaseEncBuf(bp)
	if _, err := cs.f.WriteAt(buf, st.stripeByte(attr, off)); err != nil {
		return fmt.Errorf("alist: writing attr %d slot %d: %w", attr, slot, err)
	}
	return nil
}

// Scan implements Store.
func (st *CombinedFileStore) Scan(attr, slot int, off int64, n int, fn func([]Record) error) error {
	return st.ScanBuf(attr, slot, off, n, nil, fn)
}

// ScanBuf implements BufferedScanner; see FileStore.ScanBuf.
func (st *CombinedFileStore) ScanBuf(attr, slot int, off int64, n int, io *IOBuf, fn func([]Record) error) error {
	if err := st.checkAttr(attr); err != nil {
		return err
	}
	cs, err := st.slot(slot)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(n) > cs.used[attr].Load() {
		return fmt.Errorf("alist: scan [%d,%d) outside [0,%d) (attr %d slot %d)",
			off, off+int64(n), cs.used[attr].Load(), attr, slot)
	}
	chunk := st.scanChunk
	var local IOBuf
	if io == nil {
		io = &local
	}
	buf, recs := io.ensure(chunk)
	for n > 0 {
		c := chunk
		if c > n {
			c = n
		}
		b := buf[:c*RecordSize]
		if _, err := cs.f.ReadAt(b, st.stripeByte(attr, off)); err != nil {
			return fmt.Errorf("alist: reading attr %d slot %d: %w", attr, slot, err)
		}
		decodeRecords(recs[:c], b)
		if err := fn(recs[:c]); err != nil {
			return err
		}
		off += int64(c)
		n -= c
	}
	return nil
}

// Reset implements Store. Resetting any attribute clears only that
// attribute's stripe counter; the file is truncated (reclaiming blocks)
// when every stripe of the slot is empty.
func (st *CombinedFileStore) Reset(attr, slot int) error {
	if err := st.checkAttr(attr); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if slot < 0 || slot >= len(st.files) {
		return fmt.Errorf("alist: reset of invalid slot %d", slot)
	}
	cs := st.files[slot]
	if cs == nil {
		return nil
	}
	cs.used[attr].Store(0)
	for a := range cs.used {
		if cs.used[a].Load() != 0 {
			return nil
		}
	}
	if err := cs.f.Truncate(0); err != nil {
		return fmt.Errorf("alist: truncating slot %d: %w", slot, err)
	}
	return nil
}

// Close implements Store.
func (st *CombinedFileStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for s := range st.files {
		if st.files[s] == nil {
			continue
		}
		if err := st.files[s].f.Close(); err != nil && first == nil {
			first = err
		}
		st.files[s] = nil
	}
	return first
}

// NumPhysicalFiles reports how many physical files exist; with the
// serial/BASIC slot scheme this is at most 4, the paper's headline count.
func (st *CombinedFileStore) NumPhysicalFiles() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for s := range st.files {
		if st.files[s] != nil {
			n++
		}
	}
	return n
}
