package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tree"
)

func buildF1(t *testing.T, n int, noise float64) (*tree.Tree, *dataset.Table) {
	t.Helper()
	tbl, err := synth.Generate(synth.Config{
		Function: 1, Attrs: 9, Tuples: n, Seed: 9, LabelNoise: noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	return tr, tbl
}

func TestConfusionPerfectClassifier(t *testing.T) {
	tr, tbl := buildF1(t, 1000, 0)
	cm := Confuse(tr, tbl)
	if cm.Total() != 1000 {
		t.Fatalf("total = %d", cm.Total())
	}
	if cm.Accuracy() != 1.0 {
		t.Fatalf("clean F1 training accuracy = %g", cm.Accuracy())
	}
	if cm.Counts[0][1] != 0 || cm.Counts[1][0] != 0 {
		t.Fatal("off-diagonal counts on a perfect classifier")
	}
	for _, m := range cm.PerClass() {
		if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
			t.Fatalf("perfect classifier metrics: %+v", m)
		}
	}
	s := cm.String()
	if !strings.Contains(s, "GroupA") || !strings.Contains(s, "accuracy: 1.0000") {
		t.Fatalf("rendering:\n%s", s)
	}
}

func TestConfusionMetricsArithmetic(t *testing.T) {
	// Hand-built matrix: actual A: 8 correct, 2 as B; actual B: 1 as A, 9 correct.
	cm := &Confusion{
		Classes: []string{"A", "B"},
		Counts:  [][]int64{{8, 2}, {1, 9}},
	}
	if got := cm.Accuracy(); math.Abs(got-17.0/20) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	pc := cm.PerClass()
	if math.Abs(pc[0].Precision-8.0/9) > 1e-12 || math.Abs(pc[0].Recall-0.8) > 1e-12 {
		t.Fatalf("class A metrics: %+v", pc[0])
	}
	if pc[0].Support != 10 || pc[1].Support != 10 {
		t.Fatal("supports wrong")
	}
	wantF1 := 2 * (8.0 / 9) * 0.8 / ((8.0 / 9) + 0.8)
	if math.Abs(pc[0].F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %g, want %g", pc[0].F1, wantF1)
	}
}

func TestConfusionAccuracyMatchesTreeAccuracy(t *testing.T) {
	tr, tbl := buildF1(t, 2000, 0.1)
	cm := Confuse(tr, tbl)
	if math.Abs(cm.Accuracy()-tr.Accuracy(tbl)) > 1e-12 {
		t.Fatalf("confusion accuracy %g != tree accuracy %g",
			cm.Accuracy(), tr.Accuracy(tbl))
	}
}

// Property: folds partition [0,n) exactly.
func TestFoldsPartitionProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8, seed int64) bool {
		n := int(nRaw) + 10
		k := int(kRaw)%5 + 2
		folds, err := Folds(n, k, seed)
		if err != nil {
			return n < k
		}
		seen := make([]bool, n)
		count := 0
		for _, fold := range folds {
			for _, i := range fold {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
				count++
			}
		}
		if count != n {
			return false
		}
		// Balanced within one element.
		min, max := n, 0
		for _, fold := range folds {
			if len(fold) < min {
				min = len(fold)
			}
			if len(fold) > max {
				max = len(fold)
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldsValidation(t *testing.T) {
	if _, err := Folds(10, 1, 0); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Folds(2, 5, 0); err == nil {
		t.Fatal("n<k accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	tbl, err := synth.Generate(synth.Config{
		Function: 1, Attrs: 9, Tuples: 2000, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(tbl, 5, 7, func(train *dataset.Table) (*tree.Tree, error) {
		tr, _, err := core.Build(train, core.Config{Algorithm: core.MWK, Procs: 2, MaxDepth: 6})
		return tr, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracy) != 5 {
		t.Fatalf("folds = %d", len(res.FoldAccuracy))
	}
	// Clean F1 is trivially learnable; every fold should be near-perfect.
	if res.Mean < 0.98 {
		t.Fatalf("mean CV accuracy %g < 0.98", res.Mean)
	}
	if res.StdDev < 0 || res.StdDev > 0.05 {
		t.Fatalf("stddev %g out of range", res.StdDev)
	}
	// Deterministic given the same seed.
	res2, err := CrossValidate(tbl, 5, 7, func(train *dataset.Table) (*tree.Tree, error) {
		tr, _, err := core.Build(train, core.Config{Algorithm: core.MWK, Procs: 2, MaxDepth: 6})
		return tr, err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.FoldAccuracy {
		if res.FoldAccuracy[i] != res2.FoldAccuracy[i] {
			t.Fatal("cross-validation not deterministic")
		}
	}
}
