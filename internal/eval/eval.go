// Package eval provides classifier evaluation utilities: confusion
// matrices, per-class precision/recall/F1, and k-fold cross-validation —
// the standard measurement companions of a classification library (the
// paper evaluates runtime, citing SLIQ for the accuracy methodology).
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/tree"
)

// Confusion is a confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Classes []string
	Counts  [][]int64
}

// Confuse evaluates the tree on the table and tallies the confusion matrix.
func Confuse(t *tree.Tree, tbl *dataset.Table) *Confusion {
	k := t.Schema.NumClasses()
	cm := &Confusion{
		Classes: append([]string(nil), t.Schema.Classes...),
		Counts:  make([][]int64, k),
	}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int64, k)
	}
	for i := 0; i < tbl.NumTuples(); i++ {
		pred := t.Predict(tbl.Row(i))
		cm.Counts[tbl.Class(i)][pred]++
	}
	return cm
}

// Total returns the number of evaluated examples.
func (c *Confusion) Total() int64 {
	var n int64
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	var correct int64
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// ClassMetrics holds one class's one-vs-rest measures.
type ClassMetrics struct {
	Class     string
	Support   int64 // actual examples of the class
	Precision float64
	Recall    float64
	F1        float64
}

// PerClass computes precision/recall/F1 for every class. Undefined ratios
// (zero denominators) are reported as 0.
func (c *Confusion) PerClass() []ClassMetrics {
	k := len(c.Classes)
	out := make([]ClassMetrics, k)
	for i := 0; i < k; i++ {
		var tp, fp, fn int64
		tp = c.Counts[i][i]
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			fp += c.Counts[j][i]
			fn += c.Counts[i][j]
		}
		m := ClassMetrics{Class: c.Classes[i], Support: tp + fn}
		if tp+fp > 0 {
			m.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall = float64(tp) / float64(tp+fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		out[i] = m
	}
	return out
}

// String renders the confusion matrix with per-class metrics.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "actual\\pred")
	for _, cl := range c.Classes {
		fmt.Fprintf(&b, " %10s", cl)
	}
	b.WriteByte('\n')
	for i, cl := range c.Classes {
		fmt.Fprintf(&b, "%-12s", cl)
		for j := range c.Classes {
			fmt.Fprintf(&b, " %10d", c.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "accuracy: %.4f\n", c.Accuracy())
	for _, m := range c.PerClass() {
		fmt.Fprintf(&b, "%-10s precision=%.4f recall=%.4f f1=%.4f (n=%d)\n",
			m.Class, m.Precision, m.Recall, m.F1, m.Support)
	}
	return b.String()
}

// Folds splits [0,n) into k disjoint shuffled folds (sizes differing by at
// most one), deterministically from the seed.
func Folds(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need k >= 2 folds, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("eval: %d examples cannot fill %d folds", n, k)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, r := range idx {
		folds[i%k] = append(folds[i%k], r)
	}
	return folds, nil
}

// CVResult summarizes a cross-validation run.
type CVResult struct {
	FoldAccuracy []float64
	Mean         float64
	StdDev       float64
}

// CrossValidate runs k-fold cross-validation: for each fold, train on the
// remaining folds with the supplied trainer and evaluate on the held-out
// fold.
func CrossValidate(tbl *dataset.Table, k int, seed int64,
	train func(*dataset.Table) (*tree.Tree, error)) (CVResult, error) {

	folds, err := Folds(tbl.NumTuples(), k, seed)
	if err != nil {
		return CVResult{}, err
	}
	var res CVResult
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		trainTbl := tbl.Subset(trainIdx)
		testTbl := tbl.Subset(folds[f])
		model, err := train(trainTbl)
		if err != nil {
			return CVResult{}, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		res.FoldAccuracy = append(res.FoldAccuracy, model.Accuracy(testTbl))
	}
	var sum float64
	for _, a := range res.FoldAccuracy {
		sum += a
	}
	res.Mean = sum / float64(k)
	var vr float64
	for _, a := range res.FoldAccuracy {
		d := a - res.Mean
		vr += d * d
	}
	if k > 1 {
		vr /= float64(k - 1)
	}
	res.StdDev = math.Sqrt(vr)
	return res, nil
}
