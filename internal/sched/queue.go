package sched

import "sync"

// FreeQueue is the paper's FREE queue of idle processors, generalized over
// the task type T handed to workers (SUBTREE uses a processor-group
// pointer). Put enqueues idle workers; Drain hands all currently idle
// workers to a grabbing task master. When every processor is idle the
// computation is over and the queue broadcasts termination (T's zero
// value) to all workers.
type FreeQueue[T any] struct {
	mu      sync.Mutex
	ids     []int
	total   int
	chans   []chan T
	abortCh chan struct{}
	aborted bool
}

// NewFreeQueue creates a FREE queue over total workers, each listening on
// its buffered assignment channel in chans.
func NewFreeQueue[T any](total int, chans []chan T) *FreeQueue[T] {
	return &FreeQueue[T]{total: total, chans: chans, abortCh: make(chan struct{})}
}

// Abort releases every worker blocked on its assignment channel: a dead
// worker never joins the queue, so the count can no longer reach total and
// the normal termination broadcast would never fire. Safe to call twice.
func (q *FreeQueue[T]) Abort() {
	q.mu.Lock()
	if !q.aborted {
		q.aborted = true
		close(q.abortCh)
	}
	q.mu.Unlock()
}

// AbortCh returns the channel closed by Abort; workers select on it
// alongside their assignment channel.
func (q *FreeQueue[T]) AbortCh() <-chan struct{} { return q.abortCh }

// Put enqueues workers as idle; when every worker is idle it broadcasts
// the termination sentinel (T's zero value) to all assignment channels.
func (q *FreeQueue[T]) Put(ids ...int) {
	q.mu.Lock()
	q.ids = append(q.ids, ids...)
	if len(q.ids) == q.total && !q.aborted {
		var zero T
		for _, ch := range q.chans {
			// A worker idle in the queue has an empty channel, so the
			// buffered send cannot block; the default arm only guards
			// against racing an abort.
			select {
			case ch <- zero:
			default:
			}
		}
	}
	q.mu.Unlock()
}

// Drain hands all currently idle workers to the caller.
func (q *FreeQueue[T]) Drain() []int {
	q.mu.Lock()
	out := q.ids
	q.ids = nil
	q.mu.Unlock()
	return out
}
