// Package sched provides the shared-memory scheduling primitives the
// build engines and the forest trainer are made of: abortable counting
// barriers (the paper's horizontal bars between the E, W and S phases), a
// first-error latch, panic containment for worker goroutines, the paper's
// FREE queue of idle processors (generalized over the task type), and a
// whole-task farm that schedules independent coarse tasks — whole trees —
// across a fixed worker pool.
//
// The package is the SUBTREE machinery of internal/core refactored out so
// that tree-level parallelism (forests) and node-level parallelism (the
// SMP schemes) share one set of semantics: a panicking worker latches
// ErrWorkerPanic, tears down every structure a peer could be blocked on,
// and the computation unwinds promptly instead of deadlocking.
package sched

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// ErrWorkerPanic marks a computation failure caused by a recovered panic
// in a worker goroutine. The panic is contained: peers are released from
// every barrier, condition wait and FREE-queue channel, and the scheduler
// returns this error instead of crashing the process.
var ErrWorkerPanic = errors.New("sched: worker panic")

// ErrOnce latches the first error reported by any worker.
type ErrOnce struct {
	mu  sync.Mutex
	err error
}

// Set latches err if it is the first non-nil error reported.
func (o *ErrOnce) Set(err error) {
	if err == nil {
		return
	}
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

// Failed reports whether any error has been latched.
func (o *ErrOnce) Failed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err != nil
}

// Get returns the latched error, nil if none.
func (o *ErrOnce) Get() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// Guard runs fn with panic containment for worker id: a panic is converted
// into an ErrWorkerPanic on ferr, then teardown releases every
// synchronization structure a peer could be blocked on (barriers, abort
// channels, the FREE queue), so the surviving workers observe the failure
// and unwind instead of waiting forever for the dead worker.
func Guard(ferr *ErrOnce, teardown func(), id int, fn func()) {
	defer func() {
		if p := recover(); p != nil {
			ferr.Set(fmt.Errorf("%w: worker %d: %v\n%s", ErrWorkerPanic, id, p, debug.Stack()))
			if teardown != nil {
				teardown()
			}
		}
	}()
	fn()
}

// Run schedules n independent coarse tasks over procs workers — the farm
// pattern, with tasks grabbed dynamically so stragglers do not serialize
// the tail. task is called as task(worker, idx) for idx in [0,n); the
// first error (or contained panic) latches, remaining tasks are skipped,
// and abort — when non-nil — fires exactly once on the first failure so
// the caller can cancel in-flight tasks (e.g. a build context). Run
// returns the first error.
func Run(procs, n int, abort func(), task func(worker, idx int) error) error {
	if procs < 1 {
		procs = 1
	}
	if procs > n {
		procs = n
	}
	if n <= 0 {
		return nil
	}
	var (
		ferr ErrOnce
		next int
		mu   sync.Mutex
		once sync.Once
	)
	fail := func(err error) {
		ferr.Set(err)
		if abort != nil {
			once.Do(abort)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			Guard(&ferr, func() {
				if abort != nil {
					once.Do(abort)
				}
			}, w, func() {
				for {
					mu.Lock()
					idx := next
					next++
					mu.Unlock()
					if idx >= n || ferr.Failed() {
						return
					}
					if err := task(w, idx); err != nil {
						fail(err)
						return
					}
				}
			})
		}(w)
	}
	wg.Wait()
	return ferr.Get()
}
