package sched

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// Barrier is a reusable counting barrier for a fixed party count, the
// synchronization point the paper draws as a horizontal bar between the E,
// W and S phases. A Barrier can be aborted: when a worker dies (panics) it
// can never rejoin the protocol, so the panic-containment path breaks the
// barrier rather than leave the surviving parties counting to a total that
// will never be reached.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait (true, barrier
// immediately reusable) or the barrier is aborted (false — current waiters
// wake, future waiters return immediately). A false return means the
// computation is being torn down and the caller must unwind without
// touching shared level state.
func (b *Barrier) Wait() bool {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	ok := gen != b.gen
	b.mu.Unlock()
	return ok
}

// Abort permanently breaks the barrier, waking every current waiter.
func (b *Barrier) Abort() {
	b.mu.Lock()
	if !b.broken {
		b.broken = true
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// TimedWait is Wait() with the stall recorded into the caller's lane at
// (lvl, barrier) — how the schemes account inter-phase synchronization.
func (b *Barrier) TimedWait(ln *trace.Lane, lvl int) bool {
	t0 := time.Now()
	ok := b.Wait()
	ln.Add(lvl, trace.PhaseBarrier, time.Since(t0))
	return ok
}

// BarrierSet tracks every live barrier of a computation so one teardown
// can break them all. SUBTREE needs it: group barriers are created
// dynamically, and a group delivered to some members after the abort must
// not strand them on a fresh, unbroken barrier — Add breaks late arrivals
// itself once the set is aborted.
type BarrierSet struct {
	mu      sync.Mutex
	bars    []*Barrier
	aborted bool
}

// Add registers b with the set, aborting it immediately when the set has
// already been aborted.
func (s *BarrierSet) Add(b *Barrier) {
	s.mu.Lock()
	s.bars = append(s.bars, b)
	aborted := s.aborted
	s.mu.Unlock()
	if aborted {
		b.Abort()
	}
}

// Abort breaks every registered barrier and marks the set so barriers
// added later are broken on arrival.
func (s *BarrierSet) Abort() {
	s.mu.Lock()
	s.aborted = true
	bars := s.bars
	s.mu.Unlock()
	for _, b := range bars {
		b.Abort()
	}
}
