package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierReuse(t *testing.T) {
	const P, rounds = 4, 50
	b := NewBarrier(P)
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < P; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				hits.Add(1)
				if !b.Wait() {
					t.Error("barrier aborted unexpectedly")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := hits.Load(); got != P*rounds {
		t.Fatalf("hits = %d, want %d", got, P*rounds)
	}
}

func TestBarrierAbortReleasesWaiters(t *testing.T) {
	b := NewBarrier(3)
	done := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- b.Wait() }()
	}
	time.Sleep(10 * time.Millisecond)
	b.Abort()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-done:
			if ok {
				t.Fatal("aborted Wait returned true")
			}
		case <-time.After(time.Second):
			t.Fatal("waiter not released by Abort")
		}
	}
	if b.Wait() {
		t.Fatal("Wait on a broken barrier returned true")
	}
}

func TestBarrierSetBreaksLateAdds(t *testing.T) {
	var bs BarrierSet
	early := NewBarrier(2)
	bs.Add(early)
	bs.Abort()
	if early.Wait() {
		t.Fatal("early barrier not broken by set abort")
	}
	late := NewBarrier(2)
	bs.Add(late)
	if late.Wait() {
		t.Fatal("late-added barrier not broken on arrival")
	}
}

func TestErrOnceLatchesFirst(t *testing.T) {
	var o ErrOnce
	if o.Failed() || o.Get() != nil {
		t.Fatal("fresh ErrOnce reports failure")
	}
	o.Set(nil)
	if o.Failed() {
		t.Fatal("Set(nil) latched")
	}
	e1, e2 := errors.New("first"), errors.New("second")
	o.Set(e1)
	o.Set(e2)
	if !o.Failed() || o.Get() != e1 {
		t.Fatalf("Get() = %v, want first error", o.Get())
	}
}

func TestGuardContainsPanic(t *testing.T) {
	var o ErrOnce
	torn := false
	Guard(&o, func() { torn = true }, 7, func() { panic("boom") })
	if !torn {
		t.Fatal("teardown not invoked on panic")
	}
	err := o.Get()
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
}

func TestFreeQueueTerminationBroadcast(t *testing.T) {
	const P = 4
	chans := make([]chan *int, P)
	for i := range chans {
		chans[i] = make(chan *int, 1)
	}
	q := NewFreeQueue(P, chans)
	q.Put(0, 1)
	q.Put(2)
	select {
	case <-chans[0]:
		t.Fatal("broadcast before all workers idle")
	default:
	}
	q.Put(3)
	for i, ch := range chans {
		select {
		case g := <-ch:
			if g != nil {
				t.Fatalf("worker %d got non-sentinel assignment", i)
			}
		case <-time.After(time.Second):
			t.Fatalf("worker %d missed termination broadcast", i)
		}
	}
	if got := q.Drain(); len(got) != 4 {
		t.Fatalf("Drain() = %v, want all 4 ids", got)
	}
}

func TestFreeQueueAbort(t *testing.T) {
	chans := []chan *int{make(chan *int, 1)}
	q := NewFreeQueue(1, chans)
	q.Abort()
	q.Abort() // idempotent
	select {
	case <-q.AbortCh():
	default:
		t.Fatal("AbortCh not closed after Abort")
	}
	q.Put(0) // must not broadcast after abort
	select {
	case <-chans[0]:
		t.Fatal("termination broadcast after abort")
	default:
	}
}

func TestRunCoversAllTasks(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 9} {
		const n = 37
		seen := make([]atomic.Int32, n)
		if err := Run(procs, n, nil, func(w, idx int) error {
			seen[idx].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("procs=%d: task %d ran %d times", procs, i, got)
			}
		}
	}
}

func TestRunLatchesFirstErrorAndAborts(t *testing.T) {
	boom := errors.New("boom")
	var aborts atomic.Int32
	var started atomic.Int32
	err := Run(4, 100, func() { aborts.Add(1) }, func(w, idx int) error {
		started.Add(1)
		if idx == 3 {
			return fmt.Errorf("task %d: %w", idx, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := aborts.Load(); got != 1 {
		t.Fatalf("abort fired %d times, want exactly once", got)
	}
	if started.Load() == 100 {
		t.Fatal("no task was skipped after the failure latched")
	}
}

func TestRunContainsTaskPanic(t *testing.T) {
	var aborts atomic.Int32
	err := Run(3, 20, func() { aborts.Add(1) }, func(w, idx int) error {
		if idx == 5 {
			panic("task blew up")
		}
		return nil
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	if got := aborts.Load(); got != 1 {
		t.Fatalf("abort fired %d times, want exactly once", got)
	}
}

func TestRunZeroAndClampedInputs(t *testing.T) {
	if err := Run(4, 0, nil, func(w, idx int) error { return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	var ran atomic.Int32
	if err := Run(0, 3, nil, func(w, idx int) error { ran.Add(1); return nil }); err != nil {
		t.Fatalf("procs=0: %v", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("procs=0 ran %d tasks, want 3", ran.Load())
	}
}
