package cluster

// FaultTransport wraps an http.RoundTripper with deterministic,
// programmable fault injection for cluster chaos tests — the faultstore
// idiom (internal/alist/faultstore) ported to peer HTTP: a plan of
// Nth-matching-call rules, atomic counters, first firing rule wins. Tests
// script partitions ("drop every call from A to B after the 2nd") and
// crash windows ("fail all replicate pushes for 3 calls, then heal")
// without sleeps or real network flakiness, so partition schedules are
// reproducible under -race.

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// TransportMode selects what a firing TransportRule does.
type TransportMode uint8

const (
	// Drop fails the call with ErrPartitioned before it reaches the wire —
	// a network partition as the dialer sees it.
	Drop TransportMode = iota
	// Slow sleeps the rule's Latency, then sends normally.
	Slow
)

// ErrPartitioned is the base error of every dropped call; test with
// errors.Is.
var ErrPartitioned = errors.New("cluster: injected partition")

// TransportRule is one entry of a transport fault plan. A call matches
// when its target URL contains Host (empty matches all hosts) and its
// path contains Path (empty matches all paths). Of the matching calls,
// the rule skips the first After, then fires on the next Count of them
// (Count 0 = every one from then on — a standing partition until Heal).
type TransportRule struct {
	Host    string // substring of the target host:port; "" = any
	Path    string // substring of the URL path; "" = any
	After   int
	Count   int
	Mode    TransportMode
	Latency time.Duration
}

// transportRule is a TransportRule plus runtime counters.
type transportRule struct {
	TransportRule
	seen    atomic.Int64
	fired   atomic.Int64
	healed  atomic.Bool
	latched atomic.Bool
}

// FaultTransport is the programmable RoundTripper. Create with
// NewFaultTransport and hand it to a Node via Config.Client.
type FaultTransport struct {
	inner    http.RoundTripper
	rules    []*transportRule
	calls    atomic.Int64
	injected atomic.Int64
}

// NewFaultTransport wraps inner (nil = http.DefaultTransport) with rules.
func NewFaultTransport(inner http.RoundTripper, rules ...TransportRule) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	ft := &FaultTransport{inner: inner}
	for _, r := range rules {
		ft.rules = append(ft.rules, &transportRule{TransportRule: r})
	}
	return ft
}

// Calls returns how many requests the transport has seen.
func (ft *FaultTransport) Calls() int64 { return ft.calls.Load() }

// Injected returns how many requests had a fault injected.
func (ft *FaultTransport) Injected() int64 { return ft.injected.Load() }

// Heal retires every rule: subsequent calls pass through clean. Models
// the partition ending or the crashed peer returning.
func (ft *FaultTransport) Heal() {
	for _, r := range ft.rules {
		r.healed.Store(true)
	}
}

// Partition installs a standing drop rule for host (matched as a
// substring) and returns a release function that retires just that rule.
// The idiom for kill-and-restart schedules:
//
//	release := ft.Partition("127.0.0.1:8082")
//	... drive traffic, assert degraded-but-serving ...
//	release()
//	... assert anti-entropy reconverges ...
func (ft *FaultTransport) Partition(host string) (release func()) {
	r := &transportRule{TransportRule: TransportRule{Host: host, Mode: Drop}}
	ft.rules = append(ft.rules, r)
	return func() { r.healed.Store(true) }
}

// RoundTrip implements http.RoundTripper.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.calls.Add(1)
	for _, r := range ft.rules {
		if r.healed.Load() {
			continue
		}
		if r.Host != "" && !strings.Contains(req.URL.Host, r.Host) {
			continue
		}
		if r.Path != "" && !strings.Contains(req.URL.Path, r.Path) {
			continue
		}
		n := r.seen.Add(1)
		if n <= int64(r.After) {
			continue
		}
		if r.Count > 0 && n > int64(r.After)+int64(r.Count) {
			continue
		}
		r.fired.Add(1)
		ft.injected.Add(1)
		switch r.Mode {
		case Slow:
			time.Sleep(r.Latency)
		default: // Drop
			return nil, fmt.Errorf("%w: %s %s", ErrPartitioned, req.URL.Host, req.URL.Path)
		}
		break // first firing rule wins; Slow proceeds to the wire
	}
	return ft.inner.RoundTrip(req)
}
