// Package cluster is the multi-node serving tier: a replicated model
// registry over the single-node serve.Server. Every node holds a full
// replica of every published model artifact (the same v1/v2 JSON envelope
// WriteModel produces), stamped with a version vector. A model published
// anywhere — operator upload or retrain swap — is pushed to all peers
// immediately, and a pull-based anti-entropy loop repairs whatever the
// push missed (a down node converges on restart). There is no leader and
// no quorum: model artifacts are immutable values and the version-vector
// partial order plus a deterministic concurrent-update tiebreak make the
// replica state a join semilattice, so any exchange order converges. See
// DESIGN.md ("Version-vector replication, not consensus").
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Version is a version vector: per-node update counters for one model
// name. A node bumps its own entry when it locally publishes (upload or
// retrain swap); replication carries the vector alongside the artifact so
// every replica can order updates causally instead of by wall clock.
type Version map[string]uint64

// Order is the outcome of comparing two version vectors.
type Order int

const (
	// Equal: identical histories.
	Equal Order = iota
	// Before: the receiver's history is a strict prefix of the other's —
	// the other dominates.
	Before
	// After: the receiver dominates.
	After
	// Concurrent: each side saw updates the other did not; neither
	// dominates and the tiebreak decides.
	Concurrent
)

func (o Order) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// Compare orders v against o in the version-vector partial order.
func (v Version) Compare(o Version) Order {
	vAhead, oAhead := false, false
	for n, c := range v {
		if c > o[n] {
			vAhead = true
		}
	}
	for n, c := range o {
		if c > v[n] {
			oAhead = true
		}
	}
	switch {
	case vAhead && oAhead:
		return Concurrent
	case vAhead:
		return After
	case oAhead:
		return Before
	default:
		return Equal
	}
}

// Merge returns the pointwise maximum of v and o — the least vector that
// dominates both. Used to stamp a concurrent-update winner so the
// tiebreak decision itself dominates (is sticky) everywhere it spreads.
func (v Version) Merge(o Version) Version {
	out := make(Version, len(v)+len(o))
	for n, c := range v {
		out[n] = c
	}
	for n, c := range o {
		if c > out[n] {
			out[n] = c
		}
	}
	return out
}

// Clone copies v.
func (v Version) Clone() Version {
	out := make(Version, len(v))
	for n, c := range v {
		out[n] = c
	}
	return out
}

// Bump returns a copy of v with node's counter incremented — the stamp
// for a local publish on node.
func (v Version) Bump(node string) Version {
	out := v.Clone()
	out[node]++
	return out
}

// String renders v in the canonical wire form "a=1,b=2" (node-sorted,
// empty string for the zero vector). This is the X-Parclass-Version
// header value and the /v1/cluster JSON form.
func (v Version) String() string {
	if len(v) == 0 {
		return ""
	}
	nodes := make([]string, 0, len(v))
	for n := range v {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", n, v[n])
	}
	return b.String()
}

// ParseVersion parses the wire form produced by String. The empty string
// is the zero vector.
func ParseVersion(s string) (Version, error) {
	v := Version{}
	if s = strings.TrimSpace(s); s == "" {
		return v, nil
	}
	for _, part := range strings.Split(s, ",") {
		node, cnt, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || node == "" {
			return nil, fmt.Errorf("cluster: bad version entry %q", part)
		}
		c, err := strconv.ParseUint(cnt, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad version counter in %q: %v", part, err)
		}
		v[node] = c
	}
	return v, nil
}
