package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	parclass "repro"
	"repro/internal/serve"
)

// trainTree builds a deterministic single-tree model (v1 envelope).
func trainTree(t testing.TB, fn, tuples int) *parclass.Model {
	t.Helper()
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: fn, Tuples: tuples, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := parclass.Train(ds, parclass.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// trainForest builds a deterministic forest (v2 envelope).
func trainForest(t testing.TB, trees int) *parclass.Forest {
	t.Helper()
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Tuples: 2000, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := parclass.TrainForest(ds, parclass.Options{Trees: trees, ForestSeed: 11, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// envelope serializes m to its wire artifact.
func envelope(t testing.TB, m parclass.Predictor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testNode is one in-process fleet member.
type testNode struct {
	id string
	s  *serve.Server
	n  *Node
	ts *httptest.Server
	ft *FaultTransport

	handler atomic.Value // http.Handler, set once the Node exists
}

// newFleet builds count nodes, each an httptest server peered with all
// the others, each with its own FaultTransport. No anti-entropy loops run;
// tests drive SyncOnce by hand for determinism.
func newFleet(t testing.TB, count int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, count)
	for i := range nodes {
		tn := &testNode{id: fmt.Sprintf("%c", 'a'+i), s: serve.New("")}
		// The listener must exist before the Node (peers need URLs), so the
		// handler is routed through an atomic set after construction.
		tn.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tn.handler.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(tn.ts.Close)
		nodes[i] = tn
	}
	for i, tn := range nodes {
		var peers []string
		for j, o := range nodes {
			if j != i {
				peers = append(peers, o.ts.URL)
			}
		}
		tn.ft = NewFaultTransport(nil)
		n, err := New(Config{
			ID: tn.id, Self: tn.ts.URL, Peers: peers,
			Client: &http.Client{Transport: tn.ft, Timeout: 5 * time.Second},
		}, tn.s)
		if err != nil {
			t.Fatal(err)
		}
		tn.n = n
		tn.handler.Store(n.Handler())
	}
	return nodes
}

// host strips the scheme off an httptest URL for FaultTransport matching.
func host(ts *httptest.Server) string { return strings.TrimPrefix(ts.URL, "http://") }

// waitFor polls cond for up to 5s.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// serving reports whether the node serves name, and with how many trees.
func serving(t testing.TB, tn *testNode, name string) (ok bool, trees int) {
	t.Helper()
	resp, err := http.Get(tn.ts.URL + "/v1/model/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, 0
	}
	var info struct {
		Trees int `json:"trees"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return true, info.Trees
}

func TestVersionVector(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want Order
	}{
		{"", "", Equal},
		{"a=1", "a=1", Equal},
		{"", "a=1", Before},
		{"a=1", "", After},
		{"a=1", "a=1,b=1", Before},
		{"a=2,b=1", "a=1,b=1", After},
		{"a=1", "b=1", Concurrent},
		{"a=2,b=1", "a=1,b=2", Concurrent},
	} {
		a, err := ParseVersion(tc.a)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ParseVersion(tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Compare(b); got != tc.want {
			t.Errorf("%q vs %q = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}

	a, _ := ParseVersion("a=2,b=1")
	b, _ := ParseVersion("a=1,c=3")
	if got := a.Merge(b).String(); got != "a=2,b=1,c=3" {
		t.Errorf("merge = %q", got)
	}
	if got := a.Bump("b").String(); got != "a=2,b=2" {
		t.Errorf("bump = %q", got)
	}
	if a.String() != "a=2,b=1" {
		t.Errorf("bump mutated receiver: %q", a)
	}
	for _, bad := range []string{"a", "a=", "=1", "a=x", "a=1,,b=2"} {
		if _, err := ParseVersion(bad); err == nil {
			t.Errorf("ParseVersion(%q) accepted", bad)
		}
	}
}

// TestUploadReplicatesToPeers is the tentpole happy path: a model POSTed
// to any node starts serving on every node, exactly once — the
// replication-applied loads must not echo back out as fresh publishes.
func TestUploadReplicatesToPeers(t *testing.T) {
	nodes := newFleet(t, 3)
	raw := envelope(t, trainTree(t, 1, 2000))

	resp, err := http.Post(nodes[0].ts.URL+"/v1/models/default", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	for _, tn := range nodes {
		tn := tn
		waitFor(t, func() bool { ok, _ := serving(t, tn, "default"); return ok })
		waitFor(t, func() bool {
			d := tn.n.Digest()
			return d["default"].Version == "a=1"
		})
	}
	// One origin, one hop per peer: only node a published, the others
	// applied — nobody re-replicated a replicated load.
	if p := nodes[0].n.published.Load(); p != 1 {
		t.Fatalf("origin published %d, want 1", p)
	}
	for _, tn := range nodes[1:] {
		if p := tn.n.published.Load(); p != 0 {
			t.Fatalf("node %s republished a replicated model (%d publishes): replication echo", tn.id, p)
		}
		if a := tn.n.applied.Load(); a != 1 {
			t.Fatalf("node %s applied %d, want 1", tn.id, a)
		}
	}
	if a := nodes[0].n.applied.Load(); a != 0 {
		t.Fatalf("origin applied %d of its own pushes back", a)
	}
}

// TestMixedVersionBothOrders is the mixed-envelope shipping test: a v1
// single-tree artifact stamped {a:1} and a v2 forest artifact for the
// SAME name stamped {a:1,b:1} must converge to the forest in both
// delivery orders — the version vector, not arrival time, decides. A
// last-write-wins registry passes the first order and fails the second.
func TestMixedVersionBothOrders(t *testing.T) {
	treeRaw := envelope(t, trainTree(t, 1, 2000))
	forestRaw := envelope(t, trainForest(t, 5))
	older, _ := ParseVersion("a=1")
	newer, _ := ParseVersion("a=1,b=1")

	deliver := func(t *testing.T, first []byte, fv Version, second []byte, sv Version, wantSecondApplied bool) *testNode {
		t.Helper()
		tn := newFleet(t, 1)[0]
		if applied, err := tn.n.ApplyRemote("default", first, fv); err != nil || !applied {
			t.Fatalf("first delivery: applied=%v err=%v", applied, err)
		}
		applied, err := tn.n.ApplyRemote("default", second, sv)
		if err != nil {
			t.Fatal(err)
		}
		if applied != wantSecondApplied {
			t.Fatalf("second delivery applied=%v, want %v", applied, wantSecondApplied)
		}
		return tn
	}

	t.Run("v1-then-v2", func(t *testing.T) {
		tn := deliver(t, treeRaw, older, forestRaw, newer, true)
		if _, trees := serving(t, tn, "default"); trees != 5 {
			t.Fatalf("serving %d trees, want the 5-tree forest", trees)
		}
		if v := tn.n.Digest()["default"].Version; v != "a=1,b=1" {
			t.Fatalf("version %q, want a=1,b=1", v)
		}
	})
	t.Run("v2-then-v1", func(t *testing.T) {
		// The stale v1 artifact arrives LAST; a wall-clock registry would
		// install it and regress the model.
		tn := deliver(t, forestRaw, newer, treeRaw, older, false)
		if _, trees := serving(t, tn, "default"); trees != 5 {
			t.Fatalf("serving %d trees after late stale delivery, want 5: stale v1 clobbered the forest", trees)
		}
		if v := tn.n.Digest()["default"].Version; v != "a=1,b=1" {
			t.Fatalf("version %q, want a=1,b=1", v)
		}
	})
}

// TestConcurrentTiebreakBothOrders: two artifacts published concurrently
// on different nodes ({a:1} vs {b:1}) must converge to the SAME artifact
// on every node regardless of delivery order, and the decision must be
// sticky — the merged vector dominates both inputs, so the losing
// artifact can never reopen the comparison.
func TestConcurrentTiebreakBothOrders(t *testing.T) {
	rawA := envelope(t, trainTree(t, 1, 2000))
	rawB := envelope(t, trainTree(t, 7, 2000))
	if hashOf(rawA) == hashOf(rawB) {
		t.Fatal("test needs distinct artifacts")
	}
	va, _ := ParseVersion("a=1")
	vb, _ := ParseVersion("b=1")

	x := newFleet(t, 1)[0]
	for _, step := range []struct {
		raw []byte
		v   Version
	}{{rawA, va}, {rawB, vb}} {
		if _, err := x.n.ApplyRemote("default", step.raw, step.v); err != nil {
			t.Fatal(err)
		}
	}
	y := newFleet(t, 1)[0]
	for _, step := range []struct {
		raw []byte
		v   Version
	}{{rawB, vb}, {rawA, va}} {
		if _, err := y.n.ApplyRemote("default", step.raw, step.v); err != nil {
			t.Fatal(err)
		}
	}

	dx, dy := x.n.Digest()["default"], y.n.Digest()["default"]
	if dx.Hash != dy.Hash {
		t.Fatalf("delivery order changed the winner: %s vs %s", dx.Hash, dy.Hash)
	}
	if dx.Version != "a=1,b=1" || dy.Version != "a=1,b=1" {
		t.Fatalf("versions %q / %q, want a=1,b=1 on both", dx.Version, dy.Version)
	}

	// Sticky: re-delivering the loser is now dominated, not concurrent.
	loser, lv := rawA, va
	if dx.Hash == fmt.Sprintf("%016x", hashOf(rawA)) {
		loser, lv = rawB, vb
	}
	applied, err := x.n.ApplyRemote("default", loser, lv)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("settled tiebreak reopened by re-delivery")
	}
}

// TestAntiEntropyHealsPartition scripts a deterministic partition with
// the fault transport: node a's pushes to node b are dropped, so b misses
// an upload that c receives; after the partition heals, one pull round on
// b converges it, and a's status reflects the whole story (b down with
// errors during the partition, live with lag 0 after).
func TestAntiEntropyHealsPartition(t *testing.T) {
	nodes := newFleet(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]
	release := a.ft.Partition(host(b.ts))

	raw := envelope(t, trainTree(t, 1, 2000))
	resp, err := http.Post(a.ts.URL+"/v1/models/default", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// c converges by push; b never hears about it.
	waitFor(t, func() bool { return c.n.Digest()["default"].Version == "a=1" })
	waitFor(t, func() bool {
		for _, p := range a.n.Status().Peers {
			if p.URL == b.ts.URL {
				return !p.Live && p.Errors > 0
			}
		}
		return false
	})
	if _, ok := b.n.Digest()["default"]; ok {
		t.Fatal("partitioned node received the push anyway")
	}

	// a's digest exchange with b is also partitioned; the round must cost
	// an error, not a hang, and must not wedge the other peer's sync.
	a.n.SyncOnce()
	for _, p := range a.n.Status().Peers {
		if p.URL == c.ts.URL && (!p.Live || p.Lag != 0) {
			t.Fatalf("healthy peer c marked live=%v lag=%d during b's partition", p.Live, p.Lag)
		}
	}

	// Heal; one pull round on b repairs it (pull-based anti-entropy: the
	// restarted/rejoined node needs no replay from the origin's push path).
	release()
	b.n.SyncOnce()
	d := b.n.Digest()["default"]
	if d.Version != "a=1" || d.Hash != fmt.Sprintf("%016x", hashOf(raw)) {
		t.Fatalf("post-heal digest %+v", d)
	}
	if ok, _ := serving(t, b, "default"); !ok {
		t.Fatal("healed node not serving the replicated model")
	}
	a.n.SyncOnce()
	for _, p := range a.n.Status().Peers {
		if p.URL == b.ts.URL && (!p.Live || p.Lag != 0) {
			t.Fatalf("healed peer b still live=%v lag=%d", p.Live, p.Lag)
		}
	}
}

// TestSeedDominatedByAnyPublish: boot seeds carry the zero vector, so the
// first real publish anywhere replaces them fleet-wide.
func TestSeedDominatedByAnyPublish(t *testing.T) {
	tn := newFleet(t, 1)[0]
	seed := trainTree(t, 1, 1000)
	if _, err := tn.s.Load("default", seed, "boot"); err != nil {
		t.Fatal(err)
	}
	if err := tn.n.Seed("default", seed); err != nil {
		t.Fatal(err)
	}
	if v := tn.n.Digest()["default"].Version; v != "" {
		t.Fatalf("seed version %q, want zero vector", v)
	}
	raw := envelope(t, trainForest(t, 3))
	v, _ := ParseVersion("b=1")
	applied, err := tn.n.ApplyRemote("default", raw, v)
	if err != nil || !applied {
		t.Fatalf("publish vs seed: applied=%v err=%v", applied, err)
	}
	if _, trees := serving(t, tn, "default"); trees != 3 {
		t.Fatalf("serving %d trees, want 3", trees)
	}
}

// TestClusterRouteContract pins the wire surface: status shape, artifact
// roundtrip with version header, 404/405/400 answers.
func TestClusterRouteContract(t *testing.T) {
	nodes := newFleet(t, 2)
	a := nodes[0]
	raw := envelope(t, trainTree(t, 1, 2000))
	v, _ := ParseVersion("a=1")
	if _, err := a.n.ApplyRemote("default", raw, v); err != nil {
		t.Fatal(err)
	}

	var st Status
	resp, err := http.Get(a.ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != "a" || len(st.Peers) != 1 || st.Models["default"].Version != "a=1" {
		t.Fatalf("status %+v", st)
	}

	// Artifact roundtrip: exact bytes, version header.
	resp, err = http.Get(a.ts.URL + "/v1/cluster/artifact/default")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(got, raw) {
		t.Fatalf("artifact roundtrip: status %d, %d bytes vs %d", resp.StatusCode, len(got), len(raw))
	}
	if resp.Header.Get(versionHeader) != "a=1" {
		t.Fatalf("artifact version header %q", resp.Header.Get(versionHeader))
	}

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/v1/cluster/artifact/nope", 404},
		{"GET", "/v1/cluster/nonsense", 404},
		{"POST", "/v1/cluster", 405},
		{"GET", "/v1/cluster/replicate/default", 405},
	} {
		req, _ := http.NewRequest(tc.method, a.ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		if tc.want == 405 && resp.Header.Get("Allow") == "" {
			t.Fatalf("%s %s: 405 without Allow", tc.method, tc.path)
		}
	}

	// Bad version header → 400.
	req, _ := http.NewRequest("POST", a.ts.URL+"/v1/cluster/replicate/default", bytes.NewReader(raw))
	req.Header.Set(versionHeader, "not-a-vector")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad version header status %d, want 400", resp.StatusCode)
	}

	// Garbage artifact → 422, and the registry keeps the old model.
	req, _ = http.NewRequest("POST", a.ts.URL+"/v1/cluster/replicate/default", strings.NewReader("{not a model"))
	req.Header.Set(versionHeader, "a=9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("garbage artifact status %d, want 422", resp.StatusCode)
	}
	if got := a.n.Digest()["default"].Version; got != "a=1" {
		t.Fatalf("garbage artifact mutated the replica to %q", got)
	}
}

// TestFaultTransportRuleWindows pins the Nth-call determinism the chaos
// schedules build on: After skips, Count bounds, Heal retires.
func TestFaultTransportRuleWindows(t *testing.T) {
	inner := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Body: io.NopCloser(strings.NewReader(""))}, nil
	})
	ft := NewFaultTransport(inner, TransportRule{Path: "replicate", After: 1, Count: 2, Mode: Drop})
	do := func(path string) error {
		req := httptest.NewRequest("POST", "http://x"+path, nil)
		resp, err := ft.RoundTrip(req)
		if resp != nil {
			resp.Body.Close()
		}
		return err
	}
	// Non-matching path never fires.
	if err := do("/v1/cluster/digest"); err != nil {
		t.Fatal(err)
	}
	results := []bool{true, false, false, true, true} // pass, drop, drop, pass...
	for i, wantOK := range results {
		err := do("/v1/cluster/replicate/m")
		if (err == nil) != wantOK {
			t.Fatalf("call %d: err=%v, want ok=%v", i+1, err, wantOK)
		}
	}
	if ft.Injected() != 2 {
		t.Fatalf("injected %d, want 2", ft.Injected())
	}
	ft2 := NewFaultTransport(inner, TransportRule{Mode: Drop})
	if err := do("/x"); err != nil {
		t.Fatal(err) // ft, healed-free, unaffected
	}
	req := httptest.NewRequest("GET", "http://x/y", nil)
	if _, err := ft2.RoundTrip(req); err == nil {
		t.Fatal("standing drop rule passed a call")
	}
	ft2.Heal()
	resp, err := ft2.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// roundTripFunc adapts a func to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
