package cluster

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	parclass "repro"
	"repro/internal/serve"
)

// Defaults for Config zero fields.
const (
	// DefaultInterval is the anti-entropy period: how often a node pulls
	// peer digests to repair missed pushes.
	DefaultInterval = 2 * time.Second
	// DefaultRequestTimeout bounds every peer HTTP call (push, digest,
	// artifact fetch). A partitioned peer must cost one timeout, not a hang.
	DefaultRequestTimeout = 5 * time.Second
)

// Config configures one cluster node.
type Config struct {
	// ID is this node's stable identity — the version-vector axis it bumps
	// on local publishes. Must be unique across the fleet and survive
	// restarts (reusing an ID after losing its replica store is fine: the
	// node re-converges by anti-entropy before publishing again).
	ID string
	// Self is this node's advertised base URL, echoed in /v1/cluster.
	Self string
	// Peers are the other nodes' base URLs (e.g. http://127.0.0.1:8081).
	Peers []string
	// Interval is the anti-entropy period (default DefaultInterval).
	Interval time.Duration
	// Client issues all peer HTTP calls. Tests inject a fault transport
	// here for deterministic partition and crash schedules. Default: a
	// client with DefaultRequestTimeout.
	Client *http.Client
}

// replica is one model's local replication state: the exact artifact
// bytes a peer would receive, the version vector ordering it, and the
// FNV-64a content hash that breaks concurrent-update ties.
type replica struct {
	version Version
	hash    uint64
	raw     []byte
}

// peerState tracks one peer's health as seen from this node.
type peerState struct {
	url string

	mu       sync.Mutex
	ok       bool // last exchange (push or digest pull) succeeded
	lastSeen time.Time
	lastErr  string
	lag      int // models the peer was missing or behind on at last digest exchange
	pushes   int64
	pulls    int64
	errs     int64
}

// Node is the replication agent wrapped around a serve.Server. It owns
// the replica store, pushes local publishes to peers, and runs the
// anti-entropy loop. All mutation of the replica store goes through
// applyLocked, so any interleaving of pushes, pulls and local publishes
// leaves the store a merge of what it has seen.
type Node struct {
	cfg    Config
	srv    *serve.Server
	client *http.Client

	mu       sync.Mutex
	replicas map[string]*replica
	peers    []*peerState

	published atomic.Int64 // local publishes replicated out
	applied   atomic.Int64 // remote artifacts applied locally
	rejected  atomic.Int64 // remote artifacts ignored (dominated or tiebreak loss)

	pushWG sync.WaitGroup // in-flight async pushes (Close waits)
}

// New wires a Node onto srv: local publishes (model uploads and retrain
// swaps) flow through the node to every peer. Replication-applied loads
// deliberately do NOT re-enter the hook — only an origin node fans out an
// update, so an artifact crosses each link once instead of echoing
// forever.
func New(cfg Config, srv *serve.Server) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node ID required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: DefaultRequestTimeout}
	}
	n := &Node{
		cfg:      cfg,
		srv:      srv,
		client:   cfg.Client,
		replicas: make(map[string]*replica),
	}
	for _, u := range cfg.Peers {
		n.peers = append(n.peers, &peerState{url: u})
	}
	srv.SetSwapHook(n.publishLocal)
	return n, nil
}

// hashOf is the content hash used for the concurrent-update tiebreak.
func hashOf(raw []byte) uint64 {
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// Seed registers a boot-time model (e.g. parclassd's -synthetic build) in
// the replica store with the zero version vector, without pushing. A zero
// vector is dominated by any publish, so the first real upload or retrain
// swap anywhere replaces seeds fleet-wide; identically-configured nodes
// seeding the same deterministic build simply agree.
func (n *Node) Seed(name string, m parclass.Predictor) error {
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		return fmt.Errorf("cluster: serializing seed %q: %w", name, err)
	}
	raw := buf.Bytes()
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.replicas[name]; ok {
		return nil
	}
	n.replicas[name] = &replica{version: Version{}, hash: hashOf(raw), raw: raw}
	return nil
}

// publishLocal is the serve.SwapHook: a model was published ON THIS NODE
// (upload or winning retrain). Bump our version-vector axis on top of
// whatever history the replica store holds, record the artifact, and fan
// it out to every peer in the background — swap latency must not be
// coupled to the slowest peer; anti-entropy repairs any push that fails.
func (n *Node) publishLocal(name string, m parclass.Predictor, raw []byte, source string) {
	n.mu.Lock()
	prev := Version{}
	if r := n.replicas[name]; r != nil {
		prev = r.version
	}
	rep := &replica{version: prev.Bump(n.cfg.ID), hash: hashOf(raw), raw: raw}
	n.replicas[name] = rep
	n.mu.Unlock()
	n.published.Add(1)
	for _, p := range n.peers {
		p := p
		n.pushWG.Add(1)
		go func() {
			defer n.pushWG.Done()
			n.pushTo(p, name, rep)
		}()
	}
}

// pushTo sends one replica to one peer.
func (n *Node) pushTo(p *peerState, name string, rep *replica) {
	req, err := http.NewRequest(http.MethodPost, p.url+"/v1/cluster/replicate/"+name, bytes.NewReader(rep.raw))
	if err != nil {
		p.fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(versionHeader, rep.version.String())
	req.Header.Set(nodeHeader, n.cfg.ID)
	resp, err := n.client.Do(req)
	if err != nil {
		p.fail(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.fail(fmt.Errorf("replicate %q: peer answered %d", name, resp.StatusCode))
		return
	}
	p.succeed(func(ps *peerState) { ps.pushes++ })
}

// ApplyRemote merges one artifact received from a peer (push or
// anti-entropy fetch) into the replica store and, when it wins, into the
// serving registry. The merge is a join: a dominated update is dropped, a
// dominating one adopted, and a concurrent one resolved by content hash —
// higher FNV-64a wins, with the loser's history merged into the winner's
// vector so the same comparison can never reopen anywhere. Identical
// bytes under concurrent vectors just merge histories.
func (n *Node) ApplyRemote(name string, raw []byte, rv Version) (applied bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	local := n.replicas[name]
	lv := Version{}
	if local != nil {
		lv = local.version
	}
	switch rv.Compare(lv) {
	case Equal, Before:
		n.rejected.Add(1)
		return false, nil
	case After:
		return true, n.adoptLocked(name, raw, rv.Merge(lv))
	default: // Concurrent
		merged := rv.Merge(lv)
		rh := hashOf(raw)
		// local == nil is impossible here: a missing replica has the zero
		// vector, which is never concurrent with anything.
		if rh == local.hash || rh < local.hash {
			// Our bytes win (or the artifacts are identical); keep them but
			// adopt the merged history so the decision dominates both sides.
			local.version = merged
			n.rejected.Add(1)
			return false, nil
		}
		return true, n.adoptLocked(name, raw, merged)
	}
}

// adoptLocked decodes raw and installs it as name's serving model and
// replica, stamped with version. Caller holds n.mu.
func (n *Node) adoptLocked(name string, raw []byte, version Version) error {
	m, err := parclass.ReadModel(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("cluster: decoding replicated %q: %w", name, err)
	}
	// Plain Load: replication-applied models never re-fire the swap hook.
	if _, err := n.srv.Load(name, m, "replicated "+version.String()); err != nil {
		return fmt.Errorf("cluster: loading replicated %q: %w", name, err)
	}
	n.replicas[name] = &replica{version: version, hash: hashOf(raw), raw: raw}
	n.applied.Add(1)
	return nil
}

// artifact returns name's raw bytes and version for the artifact route.
func (n *Node) artifact(name string) (raw []byte, version Version, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.replicas[name]
	if r == nil {
		return nil, nil, false
	}
	return r.raw, r.version.Clone(), true
}

// DigestEntry is one model's line in the digest exchanged by
// anti-entropy: enough to decide whether a transfer is needed, without
// the artifact bytes.
type DigestEntry struct {
	Version string `json:"version"`
	Hash    string `json:"hash"`
	Bytes   int    `json:"bytes"`
}

// Digest summarizes the local replica store.
func (n *Node) Digest() map[string]DigestEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]DigestEntry, len(n.replicas))
	for name, r := range n.replicas {
		out[name] = DigestEntry{
			Version: r.version.String(),
			Hash:    fmt.Sprintf("%016x", r.hash),
			Bytes:   len(r.raw),
		}
	}
	return out
}

// SyncOnce runs one anti-entropy round against every peer: pull the
// peer's digest, fetch and merge any model whose vector we do not
// dominate, and record how far the peer trails us (its pull problem, our
// lag metric). Errors mark the peer down and move on — a dead peer costs
// one timeout per round, and convergence resumes the round it returns.
func (n *Node) SyncOnce() {
	for _, p := range n.peers {
		n.syncPeer(p)
	}
}

// syncPeer is one peer's anti-entropy exchange.
func (n *Node) syncPeer(p *peerState) {
	var digest map[string]DigestEntry
	if err := n.getJSON(p.url+"/v1/cluster/digest", &digest); err != nil {
		p.fail(err)
		return
	}
	lag := 0
	for name, ent := range digest {
		rv, err := ParseVersion(ent.Version)
		if err != nil {
			p.fail(fmt.Errorf("digest %q: %v", name, err))
			return
		}
		n.mu.Lock()
		lv := Version{}
		if r := n.replicas[name]; r != nil {
			lv = r.version
		}
		n.mu.Unlock()
		switch lv.Compare(rv) {
		case After:
			lag++ // peer is behind us; it will pull on its own round
		case Before, Concurrent:
			if err := n.fetchFrom(p, name); err != nil {
				p.fail(err)
				return
			}
		}
	}
	// Models the peer lacks entirely also count toward its lag.
	n.mu.Lock()
	for name := range n.replicas {
		if _, ok := digest[name]; !ok {
			lag++
		}
	}
	n.mu.Unlock()
	p.succeed(func(ps *peerState) { ps.lag = lag })
}

// fetchFrom pulls one artifact from a peer and merges it.
func (n *Node) fetchFrom(p *peerState, name string) error {
	resp, err := n.client.Get(p.url + "/v1/cluster/artifact/" + name)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("artifact %q: peer answered %d", name, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	rv, err := ParseVersion(resp.Header.Get(versionHeader))
	if err != nil {
		return err
	}
	if _, err := n.ApplyRemote(name, raw, rv); err != nil {
		return err
	}
	p.succeed(func(ps *peerState) { ps.pulls++ })
	return nil
}

// getJSON fetches url into out with the node's client.
func (n *Node) getJSON(url string, out any) error {
	resp, err := n.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return decodeJSON(resp.Body, out)
}

// Start launches the anti-entropy loop; the returned stop function halts
// it and waits for in-flight pushes.
func (n *Node) Start() (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(n.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.SyncOnce()
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		n.pushWG.Wait()
	}
}

// fail records a failed exchange with the peer.
func (p *peerState) fail(err error) {
	p.mu.Lock()
	p.ok = false
	p.lastErr = err.Error()
	p.errs++
	p.mu.Unlock()
}

// succeed records a successful exchange, then applies upd under the lock.
func (p *peerState) succeed(upd func(*peerState)) {
	p.mu.Lock()
	p.ok = true
	p.lastErr = ""
	p.lastSeen = time.Now()
	if upd != nil {
		upd(p)
	}
	p.mu.Unlock()
}

// PeerStatus is one peer's row in the /v1/cluster document.
type PeerStatus struct {
	URL  string `json:"url"`
	Live bool   `json:"live"`
	// LastSeen is the last successful exchange (push or digest pull).
	LastSeen  time.Time `json:"last_seen,omitzero"`
	LastError string    `json:"last_error,omitempty"`
	// Lag is how many models the peer was missing or trailing on at the
	// last digest exchange (0 = converged as of then).
	Lag    int   `json:"lag"`
	Pushes int64 `json:"pushes"`
	Pulls  int64 `json:"pulls"`
	Errors int64 `json:"errors"`
}

// Status is the GET /v1/cluster document.
type Status struct {
	ID             string                 `json:"id"`
	Self           string                 `json:"self,omitempty"`
	Models         map[string]DigestEntry `json:"models"`
	Peers          []PeerStatus           `json:"peers"`
	PublishedLocal int64                  `json:"published_local"`
	AppliedRemote  int64                  `json:"applied_remote"`
	RejectedRemote int64                  `json:"rejected_remote"`
}

// Status snapshots the node for /v1/cluster.
func (n *Node) Status() Status {
	st := Status{
		ID:             n.cfg.ID,
		Self:           n.cfg.Self,
		Models:         n.Digest(),
		PublishedLocal: n.published.Load(),
		AppliedRemote:  n.applied.Load(),
		RejectedRemote: n.rejected.Load(),
	}
	for _, p := range n.peers {
		p.mu.Lock()
		st.Peers = append(st.Peers, PeerStatus{
			URL: p.url, Live: p.ok, LastSeen: p.lastSeen, LastError: p.lastErr,
			Lag: p.lag, Pushes: p.pushes, Pulls: p.pulls, Errors: p.errs,
		})
		p.mu.Unlock()
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].URL < st.Peers[j].URL })
	return st
}
