package cluster

// The `make cluster-soak` workload: a 3-node in-process fleet on real TCP
// listeners, open-loop fleet traffic routed by internal/loadtest, one
// node hard-killed mid-run and restarted on the same port, a model
// published while it is down. Acceptance, under -race:
//
//   - zero 5xx on admitted requests (429 shedding is the designed
//     overload answer, transport failures to the dead node are failovers);
//   - the restarted node converges to the model it missed, by pull-based
//     anti-entropy alone.
//
// Real listeners (not httptest) because the restart must reclaim the SAME
// address — that is the part a slot-in replacement process has to get
// right, and what the multi-process `make clusterbench` harness then
// proves across process boundaries.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	parclass "repro"
	"repro/internal/loadtest"
	"repro/internal/serve"
)

// soakNode is one fleet member whose process lifecycle the test controls.
type soakNode struct {
	id    string
	addr  string // fixed for the node's lifetime, across restarts
	peers []string

	mu   sync.Mutex
	srv  *http.Server
	node *Node
	stop func() // anti-entropy loop
}

// start boots (or reboots) the node on its address with a fresh registry
// and replica store — a crash loses everything but identity, the way a
// restarted stateless serving pod would. The shared deterministic boot
// model is loaded and seeded (zero vector), so any real publish anywhere
// dominates it.
func (sn *soakNode) start(t testing.TB, boot *parclass.Model) {
	t.Helper()
	s := serve.New("")
	n, err := New(Config{
		ID: sn.id, Self: "http://" + sn.addr, Peers: sn.peers,
		Interval: 50 * time.Millisecond,
		Client:   &http.Client{Timeout: 2 * time.Second},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("default", boot, "boot"); err != nil {
		t.Fatal(err)
	}
	if err := n.Seed("default", boot); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableBatching(serve.BatchConfig{MaxRows: 64, Linger: 2 * time.Millisecond, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", sn.addr)
	if err != nil {
		t.Fatalf("node %s: re-listen on %s: %v", sn.id, sn.addr, err)
	}
	srv := &http.Server{Handler: n.Handler()}
	go srv.Serve(ln)
	sn.mu.Lock()
	sn.srv, sn.node, sn.stop = srv, n, n.Start()
	sn.mu.Unlock()
}

// kill hard-stops the node: listener and all conns closed, loops halted.
func (sn *soakNode) kill() {
	sn.mu.Lock()
	srv, stop := sn.srv, sn.stop
	sn.srv, sn.stop = nil, nil
	sn.mu.Unlock()
	if stop != nil {
		stop()
	}
	if srv != nil {
		srv.Close()
	}
}

// current returns the node's live replication agent.
func (sn *soakNode) current() *Node {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.node
}

func TestClusterSoakKillRestart(t *testing.T) {
	boot := trainTree(t, 1, 2000)

	// Fix three addresses up front; peers reference them across restarts.
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	nodes := make([]*soakNode, 3)
	for i := range nodes {
		sn := &soakNode{id: fmt.Sprintf("%c", 'a'+i), addr: addrs[i]}
		for j, a := range addrs {
			if j != i {
				sn.peers = append(sn.peers, "http://"+a)
			}
		}
		sn.start(t, boot)
		t.Cleanup(sn.kill)
		nodes[i] = sn
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	urls := []string{"http://" + a.addr, "http://" + b.addr, "http://" + c.addr}

	// Open-loop fleet traffic for the whole scenario, ~2x what three
	// 1-vCPU-ish nodes comfortably serve in batch-4 form.
	loadDone := make(chan struct{})
	var res *loadtest.Result
	var loadErr error
	go func() {
		defer close(loadDone)
		res, loadErr = loadtest.Run(loadtest.Config{
			BaseURLs:    urls,
			Batch:       4,
			Positional:  true,
			ArrivalRate: 300,
			Duration:    2500 * time.Millisecond,
			Seed:        11,
		})
	}()

	// Mid-run: hard-kill b, then publish a new model to a while b is down.
	time.Sleep(400 * time.Millisecond)
	b.kill()
	time.Sleep(200 * time.Millisecond)
	raw := envelope(t, trainTree(t, 7, 2000))
	resp, err := http.Post(urls[0]+"/v1/models/default", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload during outage: status %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return c.current().Digest()["default"].Version == "a=1" })

	// Restart b on the same port; anti-entropy must converge it without
	// any help from the origin's (long-gone) push.
	time.Sleep(200 * time.Millisecond)
	b.start(t, boot)
	waitFor(t, func() bool {
		d := b.current().Digest()["default"]
		return d.Version == "a=1" && d.Hash == fmt.Sprintf("%016x", hashOf(raw))
	})

	<-loadDone
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	if res.FiveXX != 0 {
		t.Fatalf("%d admitted requests got 5xx during kill/restart (ok=%d shed=%d errors=%d retries=%d)",
			res.FiveXX, res.OK, res.Shed, res.Errors, res.Retries)
	}
	if res.OK == 0 {
		t.Fatal("no successful requests during soak")
	}
	t.Logf("soak: ok=%d shed=%d errors=%d (5xx=%d) retries=%d rows=%d",
		res.OK, res.Shed, res.Errors, res.FiveXX, res.Retries, res.Rows)

	// Whole fleet converged: same version, same artifact hash everywhere.
	want := fmt.Sprintf("%016x", hashOf(raw))
	for _, sn := range nodes {
		d := sn.current().Digest()["default"]
		if d.Version != "a=1" || d.Hash != want {
			t.Fatalf("node %s digest %+v, want version a=1 hash %s", sn.id, d, want)
		}
	}
}
