package cluster

// The cluster wire surface, layered in front of the node's serve handler:
//
//	GET  /v1/cluster                  — Status: per-peer liveness, per-model versions, lag
//	GET  /v1/cluster/digest           — replica summaries for anti-entropy
//	GET  /v1/cluster/artifact/{name}  — raw model artifact + X-Parclass-Version
//	POST /v1/cluster/replicate/{name} — push an artifact (body) + version header
//
// Everything else falls through to the wrapped serve.Server, so a peer
// node speaks the whole single-node API plus these four routes.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

const (
	// versionHeader carries a Version in its String() wire form alongside
	// artifact bytes (replicate request, artifact response).
	versionHeader = "X-Parclass-Version"
	// nodeHeader names the pushing node on replicate requests (diagnostic).
	nodeHeader = "X-Parclass-Node"

	// maxArtifactBytes caps a replicate request body. Model envelopes are
	// JSON trees; even wide forests sit far under this.
	maxArtifactBytes = 256 << 20
)

// Handler returns the node's full HTTP surface: cluster routes plus the
// wrapped server's API.
func (n *Node) Handler() http.Handler {
	base := n.srv.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster" || strings.HasPrefix(r.URL.Path, "/v1/cluster/") {
			n.serveCluster(w, r)
			return
		}
		base.ServeHTTP(w, r)
	})
}

// serveCluster routes one /v1/cluster request.
func (n *Node) serveCluster(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/cluster")
	rest = strings.TrimPrefix(rest, "/")
	switch {
	case rest == "":
		if !allow(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, n.Status())
	case rest == "digest":
		if !allow(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, n.Digest())
	case strings.HasPrefix(rest, "artifact/"):
		if !allow(w, r, http.MethodGet) {
			return
		}
		n.serveArtifact(w, strings.TrimPrefix(rest, "artifact/"))
	case strings.HasPrefix(rest, "replicate/"):
		if !allow(w, r, http.MethodPost) {
			return
		}
		n.serveReplicate(w, r, strings.TrimPrefix(rest, "replicate/"))
	default:
		writeErrJSON(w, http.StatusNotFound, "no cluster route %q", r.URL.Path)
	}
}

// serveArtifact answers one model's raw artifact with its version.
func (n *Node) serveArtifact(w http.ResponseWriter, name string) {
	raw, version, ok := n.artifact(name)
	if !ok {
		writeErrJSON(w, http.StatusNotFound, "no replica %q", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(versionHeader, version.String())
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// replicateResponse is the POST /v1/cluster/replicate/{name} reply.
type replicateResponse struct {
	Model string `json:"model"`
	// Applied reports whether the pushed artifact won the merge and is now
	// serving; false means it was dominated or lost the tiebreak (the push
	// still succeeded — the fleet is converged on a newer artifact).
	Applied bool   `json:"applied"`
	Version string `json:"version"`
}

// serveReplicate merges one pushed artifact.
func (n *Node) serveReplicate(w http.ResponseWriter, r *http.Request, name string) {
	if name == "" {
		writeErrJSON(w, http.StatusBadRequest, "replicate needs a model name")
		return
	}
	rv, err := ParseVersion(r.Header.Get(versionHeader))
	if err != nil {
		writeErrJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		writeErrJSON(w, http.StatusRequestEntityTooLarge, "reading artifact: %v", err)
		return
	}
	applied, err := n.ApplyRemote(name, raw, rv)
	if err != nil {
		writeErrJSON(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	n.mu.Lock()
	cur := ""
	if rep := n.replicas[name]; rep != nil {
		cur = rep.version.String()
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, replicateResponse{Model: name, Applied: applied, Version: cur})
}

// allow enforces the route's method, answering 405 + Allow otherwise.
func allow(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeErrJSON(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	return false
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErrJSON renders the serve-style {"error": ...} document.
func writeErrJSON(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeJSON decodes one JSON document from r into out.
func decodeJSON(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}
