package tree

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestModelRoundTrip(t *testing.T) {
	orig := smallTree()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(orig, back) {
		t.Fatalf("round trip changed the tree: %s", Diff(orig, back))
	}
	if back.Schema.Attrs[1].Categories[2] != "d" {
		t.Fatal("schema lost in round trip")
	}
	// Predictions agree everywhere on a grid.
	for x := 0.0; x < 10; x++ {
		for c := int32(0); c < 3; c++ {
			tu := dataset.Tuple{Cont: []float64{x, 0}, Cat: []int32{0, c}}
			if orig.Predict(tu) != back.Predict(tu) {
				t.Fatalf("prediction mismatch at x=%g c=%d", x, c)
			}
		}
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if err := smallTree().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().Nodes != 5 {
		t.Fatal("file round trip lost nodes")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestModelReadRejectsCorruption(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := smallTree().Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := []struct {
		name string
		mut  func(string) string
	}{
		{"not json", func(s string) string { return "not json" }},
		{"wrong format", func(s string) string {
			return strings.Replace(s, "parclass-decision-tree", "something-else", 1)
		}},
		{"wrong version", func(s string) string {
			return strings.Replace(s, `"version": 1`, `"version": 99`, 1)
		}},
		{"bad kind", func(s string) string {
			return strings.Replace(s, `"kind": "continuous"`, `"kind": "mystery"`, 1)
		}},
		{"bad counts", func(s string) string {
			return strings.Replace(s, `"n": 9`, `"n": 10`, 1)
		}},
		{"bad class", func(s string) string {
			return strings.Replace(s, `"classes": [`, `"classes2": [`, 1)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.mut(good))); err == nil {
				t.Fatalf("corrupted model accepted")
			}
		})
	}
}
