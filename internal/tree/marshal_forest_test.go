package tree

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestForestEnvelopeRoundTrip(t *testing.T) {
	t1 := smallTree()
	t2 := smallTree()
	t2.Schema = t1.Schema
	meta := &ForestMeta{SampleFrac: 0.8, FeatureFrac: 0.5, Seed: 11}
	var buf bytes.Buffer
	if err := WriteForest(&buf, []*Tree{t1, t2}, meta); err != nil {
		t.Fatal(err)
	}
	f, err := ReadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 2 || len(f.Trees) != 2 {
		t.Fatalf("Version=%d Trees=%d, want 2/2", f.Version, len(f.Trees))
	}
	if f.Forest == nil || f.Forest.SampleFrac != 0.8 || f.Forest.Seed != 11 {
		t.Fatalf("forest meta lost: %+v", f.Forest)
	}
	if f.Trees[0].Schema != f.Trees[1].Schema {
		t.Fatal("loaded trees do not share one schema")
	}
	for x := 0.0; x < 10; x++ {
		for c := int32(0); c < 3; c++ {
			tu := dataset.Tuple{Cont: []float64{x, 0}, Cat: []int32{0, c}}
			if f.Trees[0].Predict(tu) != t1.Predict(tu) {
				t.Fatalf("prediction changed at x=%g c=%d", x, c)
			}
		}
	}
}

// ReadAny must load v1 single-tree files transparently.
func TestReadAnyAcceptsV1(t *testing.T) {
	orig := smallTree()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 1 || len(f.Trees) != 1 || f.Forest != nil {
		t.Fatalf("v1 read gave Version=%d Trees=%d Forest=%v", f.Version, len(f.Trees), f.Forest)
	}
	if !Equal(orig, f.Trees[0]) {
		t.Fatalf("v1 read changed the tree: %s", Diff(orig, f.Trees[0]))
	}
}

func TestReadAnyRejectsCorruption(t *testing.T) {
	good := func() string {
		t1 := smallTree()
		var buf bytes.Buffer
		if err := WriteForest(&buf, []*Tree{t1}, nil); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []struct {
		name string
		mut  func(string) string
	}{
		{"wrong format", func(s string) string {
			return strings.Replace(s, "parclass-model", "something-else", 1)
		}},
		{"wrong version", func(s string) string {
			return strings.Replace(s, `"version": 2`, `"version": 7`, 1)
		}},
		{"no trees", func(s string) string {
			return strings.Replace(s, `"trees": [`, `"trees2": [`, 1)
		}},
		{"trailing data", func(s string) string { return s + "{}" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadAny(strings.NewReader(c.mut(good))); err == nil {
				t.Fatal("corrupted model accepted")
			}
		})
	}
	if err := WriteForest(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("empty forest write accepted")
	}
}
