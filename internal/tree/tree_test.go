package tree

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/split"
)

func schema2() *dataset.Schema {
	return &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical, Categories: []string{"a", "b", "d"}},
		},
		Classes: []string{"neg", "pos"},
	}
}

// smallTree builds: root x<5 → left leaf pos; right: c in {a} → leaf neg /
// leaf pos.
func smallTree() *Tree {
	set := split.NewCatSet(3)
	set.Add(0)
	leafL := &Node{ID: 1, Level: 1, N: 4, ClassCounts: []int64{1, 3}, Class: 1}
	leafRL := &Node{ID: 3, Level: 2, N: 2, ClassCounts: []int64{2, 0}, Class: 0}
	leafRR := &Node{ID: 4, Level: 2, N: 3, ClassCounts: []int64{1, 2}, Class: 1}
	right := &Node{
		ID: 2, Level: 1, N: 5, ClassCounts: []int64{3, 2}, Class: 0,
		Split: &split.Candidate{Attr: 1, Kind: dataset.Categorical, Subset: set, Valid: true},
		Left:  leafRL, Right: leafRR,
	}
	root := &Node{
		ID: 0, Level: 0, N: 9, ClassCounts: []int64{4, 5}, Class: 1,
		Split: &split.Candidate{Attr: 0, Kind: dataset.Continuous, Threshold: 5, Valid: true},
		Left:  leafL, Right: right,
	}
	return &Tree{Root: root, Schema: schema2()}
}

func TestPredict(t *testing.T) {
	tr := smallTree()
	cases := []struct {
		x    float64
		c    int32
		want int32
	}{
		{4.9, 0, 1}, // left leaf
		{5, 0, 0},   // right, c=a → neg
		{9, 1, 1},   // right, c=b → pos
		{9, 2, 1},   // right, c=d → pos
	}
	for _, cse := range cases {
		tu := dataset.Tuple{Cont: []float64{cse.x, 0}, Cat: []int32{0, cse.c}}
		if got := tr.Predict(tu); got != cse.want {
			t.Fatalf("Predict(x=%g,c=%d) = %d, want %d", cse.x, cse.c, got, cse.want)
		}
	}
}

func TestStats(t *testing.T) {
	tr := smallTree()
	st := tr.Stats()
	if st.Nodes != 5 || st.Leaves != 3 || st.Levels != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxLeavesPerLevel != 2 {
		t.Fatalf("max leaves/level = %d, want 2", st.MaxLeavesPerLevel)
	}
	if st.LeavesPerLevel[1] != 1 || st.LeavesPerLevel[2] != 2 {
		t.Fatalf("leaves per level %v", st.LeavesPerLevel)
	}
}

func TestErrorsAndMajority(t *testing.T) {
	if MajorityClass([]int64{3, 3}) != 0 {
		t.Fatal("tie must break to lower code")
	}
	if MajorityClass([]int64{1, 5, 2}) != 1 {
		t.Fatal("majority wrong")
	}
	n := &Node{N: 9, ClassCounts: []int64{4, 5}, Class: 1}
	if n.Errors() != 4 {
		t.Fatalf("errors = %d", n.Errors())
	}
}

func TestStringAndRules(t *testing.T) {
	tr := smallTree()
	s := tr.String()
	if !strings.Contains(s, "x < 5") || !strings.Contains(s, "c in {a}") {
		t.Fatalf("rendering missing tests:\n%s", s)
	}
	rules := tr.Rules()
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Class != "pos" || rules[0].N != 4 || rules[0].Errors != 1 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if len(rules[1].Conditions) != 2 {
		t.Fatalf("rule 1 conditions = %v", rules[1].Conditions)
	}
}

func TestSQL(t *testing.T) {
	sql := smallTree().SQL()
	if !strings.HasPrefix(sql, "CASE") || !strings.HasSuffix(sql, "END") {
		t.Fatalf("SQL shape: %s", sql)
	}
	if !strings.Contains(sql, "c IN ('a')") {
		t.Fatalf("SQL categorical test missing: %s", sql)
	}
	if !strings.Contains(sql, "NOT (x < 5)") {
		t.Fatalf("SQL negation missing: %s", sql)
	}
	if got := strings.Count(sql, "WHEN"); got != 3 {
		t.Fatalf("SQL has %d WHEN branches, want 3", got)
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := smallTree(), smallTree()
	if !Equal(a, b) {
		t.Fatalf("identical trees unequal: %s", Diff(a, b))
	}
	// Mutate a threshold.
	b.Root.Split.Threshold = 6
	if Equal(a, b) {
		t.Fatal("threshold change undetected")
	}
	if d := Diff(a, b); !strings.Contains(d, "threshold") {
		t.Fatalf("Diff = %q", d)
	}
	// Mutate structure.
	c := smallTree()
	c.Root.Right.Split = nil
	c.Root.Right.Left = nil
	c.Root.Right.Right = nil
	if Equal(a, c) {
		t.Fatal("structure change undetected")
	}
	// Mutate a leaf class.
	d := smallTree()
	d.Root.Left.Class = 0
	if Equal(a, d) {
		t.Fatal("class change undetected")
	}
	// Mutate a categorical subset.
	e := smallTree()
	e.Root.Right.Split.Subset.Add(1)
	if Equal(a, e) {
		t.Fatal("subset change undetected")
	}
	if Diff(a, b) == "" || Diff(a, a) != "" {
		t.Fatal("Diff sanity")
	}
}

func TestCollectLeavesAndAttrUsage(t *testing.T) {
	tr := smallTree()
	leaves := tr.CollectLeaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	if leaves[0].ID != 1 || leaves[1].ID != 3 || leaves[2].ID != 4 {
		t.Fatal("leaves not in left-to-right order")
	}
	usage := tr.AttrUsage()
	if len(usage) != 2 || usage[0].Count != 1 || usage[1].Count != 1 {
		t.Fatalf("usage = %+v", usage)
	}
	if usage[0].Attr != 0 {
		t.Fatal("equal counts must order by attr index")
	}
}

func TestAccuracy(t *testing.T) {
	tr := smallTree()
	tbl, err := dataset.NewTable(schema2())
	if err != nil {
		t.Fatal(err)
	}
	// One correct (x<5 → pos), one wrong (x<5 but neg).
	tbl.AppendFast(dataset.Tuple{Cont: []float64{1, 0}, Cat: []int32{0, 0}, Class: 1})
	tbl.AppendFast(dataset.Tuple{Cont: []float64{1, 0}, Cat: []int32{0, 0}, Class: 0})
	if acc := tr.Accuracy(tbl); acc != 0.5 {
		t.Fatalf("accuracy = %g", acc)
	}
	empty, _ := dataset.NewTable(schema2())
	if tr.Accuracy(empty) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}
