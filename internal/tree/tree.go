// Package tree defines the decision-tree model produced by the classifier:
// nodes with binary split tests (continuous threshold or categorical
// subset), prediction, structural statistics (the paper's "tree size" =
// number of levels and maximum leaves per level), and rule/text export.
package tree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/split"
)

// Node is a decision-tree node. A node with a nil Split is a leaf predicting
// Class; otherwise tuples with Split.GoesLeft(value) true descend to Left.
type Node struct {
	// ID is a stable identifier assigned in construction (BFS) order.
	ID int
	// Level is the node's depth; the root is level 0.
	Level int
	// N is the number of training tuples that reached the node.
	N int64
	// ClassCounts is the class histogram of those tuples.
	ClassCounts []int64
	// Class is the majority class (ties break toward the lower code).
	Class int32
	// Split is the node's test; nil for leaves.
	Split *split.Candidate
	// Left and Right are the children (nil for leaves).
	Left, Right *Node
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Split == nil }

// MajorityClass returns the majority class of a histogram, breaking ties
// toward the lower class code.
func MajorityClass(counts []int64) int32 {
	best := int32(0)
	for j := 1; j < len(counts); j++ {
		if counts[j] > counts[best] {
			best = int32(j)
		}
	}
	return best
}

// Errors returns the number of training tuples at the node not belonging to
// its majority class.
func (n *Node) Errors() int64 {
	return n.N - n.ClassCounts[n.Class]
}

// Tree is a trained decision-tree classifier.
type Tree struct {
	Root   *Node
	Schema *dataset.Schema
}

// Predict classifies one decoded tuple, returning the class code.
func (t *Tree) Predict(tu dataset.Tuple) int32 {
	n := t.Root
	for !n.IsLeaf() {
		var v float64
		if n.Split.Kind == dataset.Continuous {
			v = tu.Cont[n.Split.Attr]
		} else {
			v = float64(tu.Cat[n.Split.Attr])
		}
		if n.Split.GoesLeft(v) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}

// Accuracy returns the fraction of tuples in tbl the tree classifies
// correctly.
func (t *Tree) Accuracy(tbl *dataset.Table) float64 {
	n := tbl.NumTuples()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if t.Predict(tbl.Row(i)) == tbl.Class(i) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// Stats summarizes the tree's structure; Levels and MaxLeavesPerLevel are
// the two "tree size" columns of the paper's Table 1.
type Stats struct {
	Nodes             int
	Leaves            int
	Levels            int
	MaxLeavesPerLevel int
	// LeavesPerLevel[d] is the number of leaf nodes at depth d.
	LeavesPerLevel []int
	// NodesPerLevel[d] is the number of nodes at depth d.
	NodesPerLevel []int
}

// Stats computes structural statistics.
func (t *Tree) Stats() Stats {
	var s Stats
	if t.Root == nil {
		return s
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		for len(s.NodesPerLevel) <= n.Level {
			s.NodesPerLevel = append(s.NodesPerLevel, 0)
			s.LeavesPerLevel = append(s.LeavesPerLevel, 0)
		}
		s.Nodes++
		s.NodesPerLevel[n.Level]++
		if n.IsLeaf() {
			s.Leaves++
			s.LeavesPerLevel[n.Level]++
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	s.Levels = len(s.NodesPerLevel)
	for _, l := range s.LeavesPerLevel {
		if l > s.MaxLeavesPerLevel {
			s.MaxLeavesPerLevel = l
		}
	}
	return s
}

// testString renders a node's split test using schema names.
func (t *Tree) testString(c *split.Candidate) string {
	attr := &t.Schema.Attrs[c.Attr]
	if c.Kind == dataset.Continuous {
		return fmt.Sprintf("%s < %g", attr.Name, c.Threshold)
	}
	var names []string
	for code := int32(0); int(code) < len(attr.Categories); code++ {
		if c.Subset.Has(code) {
			names = append(names, attr.Categories[code])
		}
	}
	return fmt.Sprintf("%s in {%s}", attr.Name, strings.Join(names, ","))
}

// String renders the tree as an indented outline.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%s=> %s (n=%d, err=%d)\n", indent,
				t.Schema.Classes[n.Class], n.N, n.Errors())
			return
		}
		fmt.Fprintf(&b, "%sif %s: (n=%d)\n", indent, t.testString(n.Split), n.N)
		walk(n.Left, indent+"  ")
		fmt.Fprintf(&b, "%selse:\n", indent)
		walk(n.Right, indent+"  ")
	}
	walk(t.Root, "")
	return b.String()
}

// Rule is one root-to-leaf path expressed as a conjunction of tests.
type Rule struct {
	Conditions []string
	Class      string
	N          int64
	Errors     int64
}

// Rules flattens the tree into rules, one per leaf, in left-to-right order.
func (t *Tree) Rules() []Rule {
	var rules []Rule
	var walk func(n *Node, conds []string)
	walk = func(n *Node, conds []string) {
		if n.IsLeaf() {
			rules = append(rules, Rule{
				Conditions: append([]string(nil), conds...),
				Class:      t.Schema.Classes[n.Class],
				N:          n.N,
				Errors:     n.Errors(),
			})
			return
		}
		test := t.testString(n.Split)
		walk(n.Left, append(conds, test))
		walk(n.Right, append(conds, "not("+test+")"))
	}
	walk(t.Root, nil)
	return rules
}

// sqlTestString renders a node's split test as a SQL predicate.
func (t *Tree) sqlTestString(c *split.Candidate) string {
	attr := &t.Schema.Attrs[c.Attr]
	if c.Kind == dataset.Continuous {
		return fmt.Sprintf("%s < %g", attr.Name, c.Threshold)
	}
	var names []string
	for code := int32(0); int(code) < len(attr.Categories); code++ {
		if c.Subset.Has(code) {
			names = append(names, "'"+attr.Categories[code]+"'")
		}
	}
	return fmt.Sprintf("%s IN (%s)", attr.Name, strings.Join(names, ","))
}

// SQL renders the tree as a SQL CASE expression over a table with the
// schema's column names — the paper's observation that "trees can be
// converted into SQL statements that can be used to access databases".
func (t *Tree) SQL() string {
	var b strings.Builder
	b.WriteString("CASE\n")
	var walk func(n *Node, conds []string)
	walk = func(n *Node, conds []string) {
		if n.IsLeaf() {
			cond := "1=1"
			if len(conds) > 0 {
				cond = strings.Join(conds, " AND ")
			}
			fmt.Fprintf(&b, "  WHEN %s THEN '%s'\n", cond, t.Schema.Classes[n.Class])
			return
		}
		test := t.sqlTestString(n.Split)
		walk(n.Left, append(conds, "("+test+")"))
		walk(n.Right, append(conds, "NOT ("+test+")"))
	}
	walk(t.Root, nil)
	b.WriteString("END")
	return b.String()
}

// Equal reports whether two trees have identical structure, split tests and
// leaf predictions. It is the determinism oracle used by the tests: every
// parallel scheme must produce a tree Equal to serial SPRINT's.
func Equal(a, b *Tree) bool {
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		if x == nil {
			return true
		}
		if x.IsLeaf() != y.IsLeaf() || x.N != y.N {
			return false
		}
		if len(x.ClassCounts) != len(y.ClassCounts) {
			return false
		}
		for j := range x.ClassCounts {
			if x.ClassCounts[j] != y.ClassCounts[j] {
				return false
			}
		}
		if x.IsLeaf() {
			return x.Class == y.Class
		}
		sx, sy := x.Split, y.Split
		if sx.Attr != sy.Attr || sx.Kind != sy.Kind {
			return false
		}
		if sx.Kind == dataset.Continuous {
			if sx.Threshold != sy.Threshold {
				return false
			}
		} else if !sx.Subset.Equal(sy.Subset) {
			return false
		}
		return eq(x.Left, y.Left) && eq(x.Right, y.Right)
	}
	return eq(a.Root, b.Root)
}

// Diff returns a short description of the first structural difference
// between two trees, or "" if Equal. Used by tests for debuggable failures.
func Diff(a, b *Tree) string {
	var diff string
	var eq func(x, y *Node, path string) bool
	eq = func(x, y *Node, path string) bool {
		if (x == nil) != (y == nil) {
			diff = fmt.Sprintf("%s: nil mismatch", path)
			return false
		}
		if x == nil {
			return true
		}
		if x.N != y.N {
			diff = fmt.Sprintf("%s: n %d vs %d", path, x.N, y.N)
			return false
		}
		if x.IsLeaf() != y.IsLeaf() {
			diff = fmt.Sprintf("%s: leaf %v vs %v", path, x.IsLeaf(), y.IsLeaf())
			return false
		}
		if x.IsLeaf() {
			if x.Class != y.Class {
				diff = fmt.Sprintf("%s: class %d vs %d", path, x.Class, y.Class)
				return false
			}
			return true
		}
		if x.Split.Attr != y.Split.Attr {
			diff = fmt.Sprintf("%s: attr %d vs %d", path, x.Split.Attr, y.Split.Attr)
			return false
		}
		if x.Split.Kind == dataset.Continuous && x.Split.Threshold != y.Split.Threshold {
			diff = fmt.Sprintf("%s: threshold %g vs %g", path, x.Split.Threshold, y.Split.Threshold)
			return false
		}
		if x.Split.Kind == dataset.Categorical && !x.Split.Subset.Equal(y.Split.Subset) {
			diff = fmt.Sprintf("%s: subset %v vs %v", path, x.Split.Subset, y.Split.Subset)
			return false
		}
		return eq(x.Left, y.Left, path+"L") && eq(x.Right, y.Right, path+"R")
	}
	eq(a.Root, b.Root, "root")
	return diff
}

// CollectLeaves returns all leaves in left-to-right order.
func (t *Tree) CollectLeaves() []*Node {
	var leaves []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			leaves = append(leaves, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return leaves
}

// AttrUsage returns how many internal nodes split on each attribute,
// sorted by descending count — a quick interpretability aid used by the
// examples.
func (t *Tree) AttrUsage() []AttrCount {
	counts := map[int]int{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		counts[n.Split.Attr]++
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	out := make([]AttrCount, 0, len(counts))
	for a, c := range counts {
		out = append(out, AttrCount{Attr: a, Name: t.Schema.Attrs[a].Name, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// AttrCount pairs an attribute with its split count.
type AttrCount struct {
	Attr  int
	Name  string
	Count int
}
