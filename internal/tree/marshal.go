package tree

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/split"
)

// The JSON model format is versioned and self-contained: it embeds the
// schema so a loaded model can validate and classify rows by attribute
// name without the training data.

// modelJSON is the on-disk envelope.
type modelJSON struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Schema  schemaJSON `json:"schema"`
	Root    *nodeJSON  `json:"root"`
}

type schemaJSON struct {
	Attrs   []attrJSON `json:"attrs"`
	Classes []string   `json:"classes"`
}

type attrJSON struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Categories []string `json:"categories,omitempty"`
}

type nodeJSON struct {
	N      int64      `json:"n"`
	Counts []int64    `json:"counts"`
	Class  int32      `json:"class"`
	Split  *splitJSON `json:"split,omitempty"`
	Left   *nodeJSON  `json:"left,omitempty"`
	Right  *nodeJSON  `json:"right,omitempty"`
}

type splitJSON struct {
	Attr      int     `json:"attr"`
	Threshold float64 `json:"threshold,omitempty"`
	Subset    []int32 `json:"subset,omitempty"`
}

const (
	modelFormat  = "parclass-decision-tree"
	modelVersion = 1
)

// Write serializes the tree as versioned JSON.
func (t *Tree) Write(w io.Writer) error {
	m := modelJSON{
		Format:  modelFormat,
		Version: modelVersion,
		Schema:  encodeSchema(t.Schema),
		Root:    encodeNode(t.Root),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// WriteFile serializes the tree to the named file.
func (t *Tree) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func encodeNode(n *Node) *nodeJSON {
	if n == nil {
		return nil
	}
	out := &nodeJSON{N: n.N, Counts: n.ClassCounts, Class: n.Class}
	if !n.IsLeaf() {
		s := &splitJSON{Attr: n.Split.Attr}
		if n.Split.Kind == dataset.Continuous {
			s.Threshold = n.Split.Threshold
		} else {
			for c := int32(0); int(c) < n.Split.Subset.Card(); c++ {
				if n.Split.Subset.Has(c) {
					s.Subset = append(s.Subset, c)
				}
			}
			if s.Subset == nil {
				s.Subset = []int32{}
			}
		}
		out.Split = s
		out.Left = encodeNode(n.Left)
		out.Right = encodeNode(n.Right)
	}
	return out
}

// Read deserializes a tree written by Write, validating structure against
// the embedded schema.
func Read(r io.Reader) (*Tree, error) {
	var m modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("tree: decoding model: %w", err)
	}
	// Exactly one JSON document: anything but whitespace after it means a
	// concatenated or truncated upload, which must not be half-accepted.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("tree: trailing data after model JSON")
	}
	if m.Format != modelFormat {
		return nil, fmt.Errorf("tree: not a parclass model (format %q)", m.Format)
	}
	if m.Version != modelVersion {
		return nil, fmt.Errorf("tree: unsupported model version %d", m.Version)
	}
	schema, err := decodeSchema(m.Schema)
	if err != nil {
		return nil, err
	}
	if m.Root == nil {
		return nil, fmt.Errorf("tree: model has no root")
	}
	root, err := decodeNode(m.Root, schema, 0)
	if err != nil {
		return nil, err
	}
	t := &Tree{Root: root, Schema: schema}
	renumberBFS(t)
	return t, nil
}

// ReadFile deserializes a tree from the named file.
func ReadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func decodeNode(n *nodeJSON, schema *dataset.Schema, level int) (*Node, error) {
	if len(n.Counts) != len(schema.Classes) {
		return nil, fmt.Errorf("tree: node has %d class counts, schema has %d classes",
			len(n.Counts), len(schema.Classes))
	}
	var sum int64
	for _, c := range n.Counts {
		if c < 0 {
			return nil, fmt.Errorf("tree: negative class count")
		}
		sum += c
	}
	if sum != n.N {
		return nil, fmt.Errorf("tree: class counts sum %d != n %d", sum, n.N)
	}
	if n.Class < 0 || int(n.Class) >= len(schema.Classes) {
		return nil, fmt.Errorf("tree: class code %d out of range", n.Class)
	}
	node := &Node{Level: level, N: n.N, ClassCounts: n.Counts, Class: n.Class}
	if n.Split == nil {
		if n.Left != nil || n.Right != nil {
			return nil, fmt.Errorf("tree: leaf with children")
		}
		return node, nil
	}
	if n.Left == nil || n.Right == nil {
		return nil, fmt.Errorf("tree: internal node missing children")
	}
	if n.Split.Attr < 0 || n.Split.Attr >= len(schema.Attrs) {
		return nil, fmt.Errorf("tree: split attribute %d out of range", n.Split.Attr)
	}
	attr := &schema.Attrs[n.Split.Attr]
	cand := split.Candidate{Attr: n.Split.Attr, Kind: attr.Kind, Valid: true}
	if attr.Kind == dataset.Continuous {
		cand.Threshold = n.Split.Threshold
	} else {
		set := split.NewCatSet(attr.Cardinality())
		for _, c := range n.Split.Subset {
			if c < 0 || int(c) >= attr.Cardinality() {
				return nil, fmt.Errorf("tree: category code %d out of range for %q", c, attr.Name)
			}
			set.Add(c)
		}
		cand.Subset = set
	}
	node.Split = &cand
	left, err := decodeNode(n.Left, schema, level+1)
	if err != nil {
		return nil, err
	}
	right, err := decodeNode(n.Right, schema, level+1)
	if err != nil {
		return nil, err
	}
	node.Left, node.Right = left, right
	return node, nil
}
