package tree

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
)

// Version 2 of the model format is the multi-tree envelope: the same
// self-contained schema, a "trees" array of 1..N roots in place of v1's
// single "root", and an optional "forest" block recording the ensemble's
// training knobs. Version 1 files (single-tree, written by every release
// before forests) remain readable forever through ReadAny; Write keeps
// emitting exactly the v1 bytes for single trees so existing artifacts,
// diffs and checksums are unaffected.

const forestFormat = "parclass-model"

// ForestMeta records how an ensemble was trained, carried in the v2
// envelope so a loaded forest can report its provenance.
type ForestMeta struct {
	SampleFrac  float64 `json:"sample_frac"`
	FeatureFrac float64 `json:"feature_frac"`
	Seed        int64   `json:"seed"`
}

// File is the result of reading a model file of any version: one tree for
// v1, one or more for v2. All trees share one schema pointer.
type File struct {
	Version int
	Trees   []*Tree
	Forest  *ForestMeta // non-nil only for v2 forest envelopes
}

// forestJSON is the v2 on-disk envelope.
type forestJSON struct {
	Format  string      `json:"format"`
	Version int         `json:"version"`
	Schema  schemaJSON  `json:"schema"`
	Forest  *ForestMeta `json:"forest,omitempty"`
	Trees   []*nodeJSON `json:"trees"`
}

// WriteForest serializes trees (which must share one schema) as a v2
// multi-tree envelope.
func WriteForest(w io.Writer, trees []*Tree, meta *ForestMeta) error {
	if len(trees) == 0 {
		return fmt.Errorf("tree: writing empty forest")
	}
	schema := trees[0].Schema
	m := forestJSON{
		Format:  forestFormat,
		Version: 2,
		Schema:  encodeSchema(schema),
		Forest:  meta,
	}
	for i, t := range trees {
		if t.Schema != schema {
			return fmt.Errorf("tree: forest tree %d has a different schema", i)
		}
		m.Trees = append(m.Trees, encodeNode(t.Root))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// WriteForestFile serializes the forest to the named file.
func WriteForestFile(path string, trees []*Tree, meta *ForestMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteForest(f, trees, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadAny deserializes a model file of either version: the v1 single-tree
// envelope or the v2 multi-tree envelope. It enforces the same
// one-JSON-document rule as Read.
func ReadAny(r io.Reader) (*File, error) {
	var raw struct {
		Format  string          `json:"format"`
		Version int             `json:"version"`
		Schema  schemaJSON      `json:"schema"`
		Forest  *ForestMeta     `json:"forest"`
		Root    *nodeJSON       `json:"root"`
		Trees   []*nodeJSON     `json:"trees"`
		Extra   json.RawMessage `json:"-"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("tree: decoding model: %w", err)
	}
	// Exactly one JSON document: anything but whitespace after it means a
	// concatenated or truncated upload, which must not be half-accepted.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("tree: trailing data after model JSON")
	}

	var roots []*nodeJSON
	switch {
	case raw.Format == modelFormat && raw.Version == 1:
		if raw.Root == nil {
			return nil, fmt.Errorf("tree: model has no root")
		}
		roots = []*nodeJSON{raw.Root}
	case raw.Format == forestFormat && raw.Version == 2:
		if len(raw.Trees) == 0 {
			return nil, fmt.Errorf("tree: v2 model has no trees")
		}
		roots = raw.Trees
	case raw.Format != modelFormat && raw.Format != forestFormat:
		return nil, fmt.Errorf("tree: not a parclass model (format %q)", raw.Format)
	default:
		return nil, fmt.Errorf("tree: unsupported model version %d for format %q", raw.Version, raw.Format)
	}

	schema, err := decodeSchema(raw.Schema)
	if err != nil {
		return nil, err
	}
	out := &File{Version: raw.Version}
	if raw.Version == 2 {
		out.Forest = raw.Forest
	}
	for i, rn := range roots {
		if rn == nil {
			return nil, fmt.Errorf("tree: model tree %d is null", i)
		}
		root, err := decodeNode(rn, schema, 0)
		if err != nil {
			if len(roots) > 1 {
				return nil, fmt.Errorf("tree: tree %d: %w", i, err)
			}
			return nil, err
		}
		t := &Tree{Root: root, Schema: schema}
		renumberBFS(t)
		out.Trees = append(out.Trees, t)
	}
	return out, nil
}

// ReadAnyFile deserializes a model of either version from the named file.
func ReadAnyFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAny(f)
}

// encodeSchema converts a schema to its JSON form.
func encodeSchema(s *dataset.Schema) schemaJSON {
	out := schemaJSON{Classes: s.Classes}
	for i := range s.Attrs {
		a := &s.Attrs[i]
		kind := "continuous"
		if a.Kind == dataset.Categorical {
			kind = "categorical"
		}
		out.Attrs = append(out.Attrs, attrJSON{
			Name: a.Name, Kind: kind, Categories: a.Categories,
		})
	}
	return out
}

// decodeSchema converts the JSON schema form back, validating it.
func decodeSchema(m schemaJSON) (*dataset.Schema, error) {
	schema := &dataset.Schema{Classes: m.Classes}
	for _, a := range m.Attrs {
		attr := dataset.Attribute{Name: a.Name, Categories: a.Categories}
		switch a.Kind {
		case "continuous":
			attr.Kind = dataset.Continuous
		case "categorical":
			attr.Kind = dataset.Categorical
		default:
			return nil, fmt.Errorf("tree: attribute %q has unknown kind %q", a.Name, a.Kind)
		}
		schema.Attrs = append(schema.Attrs, attr)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return schema, nil
}

// renumberBFS assigns node IDs in BFS order for stable ids.
func renumberBFS(t *Tree) {
	id := 0
	queue := []*Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = id
		id++
		if !n.IsLeaf() {
			queue = append(queue, n.Left, n.Right)
		}
	}
}
