// Package trace defines cost traces of a classifier build. A profiling
// (serial) run records the measured wall-clock cost of every work unit — E
// (split evaluation, per attribute per leaf), W (winner selection + probe
// construction, per leaf) and S (list splitting, per attribute per leaf) —
// together with the tree's level/leaf genealogy. The virtual-time SMP
// simulator (internal/sim) replays each parallel scheme's scheduling policy
// over such a trace to regenerate the paper's speedup figures on hosts
// without a multiprocessor.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace is the cost record of one serial build.
type Trace struct {
	// Dataset is the paper-style dataset name (e.g. "F7-A32-D250K").
	Dataset string `json:"dataset"`
	// NAttrs is the attribute count.
	NAttrs int `json:"nattrs"`
	// NTuples is the training-set size.
	NTuples int `json:"ntuples"`
	// SetupSeconds is the measured attribute-list creation time.
	SetupSeconds float64 `json:"setup_seconds"`
	// SortSeconds is the measured continuous-attribute pre-sort time.
	SortSeconds float64 `json:"sort_seconds"`
	// BuildSeconds is the measured serial build (growth) time.
	BuildSeconds float64 `json:"build_seconds"`
	// Levels holds one entry per tree level, root first.
	Levels []Level `json:"levels"`
}

// Level records the leaves processed at one tree level.
type Level struct {
	Leaves []Leaf `json:"leaves"`
}

// Leaf records the work done for one frontier leaf.
type Leaf struct {
	// Parent is the index of the parent leaf in the previous level's
	// Leaves slice (-1 for the root).
	Parent int `json:"parent"`
	// N is the number of tuples at the leaf.
	N int64 `json:"n"`
	// E[a] is the measured evaluation cost of attribute a, seconds.
	E []float64 `json:"e"`
	// W is the measured winner-selection + probe-construction cost.
	W float64 `json:"w"`
	// S[a] is the measured split cost of attribute a, seconds.
	S []float64 `json:"s"`
	// Split reports whether the leaf was actually split.
	Split bool `json:"split"`
	// NValidChildren is how many children continue to the next level
	// (0..2); they appear in the next level's Leaves in leaf order, left
	// child before right.
	NValidChildren int `json:"valid_children"`
}

// TotalE returns the summed E cost of the leaf.
func (l *Leaf) TotalE() float64 {
	var t float64
	for _, c := range l.E {
		t += c
	}
	return t
}

// TotalS returns the summed S cost of the leaf.
func (l *Leaf) TotalS() float64 {
	var t float64
	for _, c := range l.S {
		t += c
	}
	return t
}

// SerialSeconds returns the sum of all unit costs — the virtual serial build
// time implied by the trace (equals the measured build time minus untraced
// overheads).
func (t *Trace) SerialSeconds() float64 {
	var s float64
	for i := range t.Levels {
		for j := range t.Levels[i].Leaves {
			l := &t.Levels[i].Leaves[j]
			s += l.TotalE() + l.W + l.TotalS()
		}
	}
	return s
}

// Validate checks structural consistency: per-leaf slice widths and parent
// genealogy.
func (t *Trace) Validate() error {
	for i := range t.Levels {
		lv := &t.Levels[i]
		childSeen := 0
		if i+1 < len(t.Levels) {
			childSeen = len(t.Levels[i+1].Leaves)
		}
		declared := 0
		for j := range lv.Leaves {
			lf := &lv.Leaves[j]
			if len(lf.E) != t.NAttrs || len(lf.S) != t.NAttrs {
				return fmt.Errorf("trace: level %d leaf %d has %d/%d attr costs, want %d",
					i, j, len(lf.E), len(lf.S), t.NAttrs)
			}
			if i == 0 && lf.Parent != -1 {
				return fmt.Errorf("trace: root leaf has parent %d", lf.Parent)
			}
			if i > 0 && (lf.Parent < 0 || lf.Parent >= len(t.Levels[i-1].Leaves)) {
				return fmt.Errorf("trace: level %d leaf %d parent %d out of range", i, j, lf.Parent)
			}
			declared += lf.NValidChildren
		}
		if i+1 < len(t.Levels) && declared != childSeen {
			return fmt.Errorf("trace: level %d declares %d children, level %d has %d leaves",
				i, declared, i+1, childSeen)
		}
	}
	return nil
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// WriteFile serializes the trace to the named file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read deserializes a trace from JSON.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadFile deserializes a trace from the named file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
