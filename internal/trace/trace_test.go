package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

func sample() *Trace {
	return &Trace{
		Dataset: "T", NAttrs: 2, NTuples: 10,
		SetupSeconds: 0.5, SortSeconds: 0.25, BuildSeconds: 2,
		Levels: []Level{
			{Leaves: []Leaf{{
				Parent: -1, N: 10,
				E: []float64{1, 2}, W: 0.5, S: []float64{0.25, 0.25},
				Split: true, NValidChildren: 2,
			}}},
			{Leaves: []Leaf{
				{Parent: 0, N: 6, E: []float64{0.5, 0.5}, W: 0.1, S: []float64{0.1, 0.1}},
				{Parent: 0, N: 4, E: []float64{0.4, 0.4}, W: 0.1, S: []float64{0.1, 0.1}},
			}},
		},
	}
}

func TestTotalsAndSerial(t *testing.T) {
	tr := sample()
	root := &tr.Levels[0].Leaves[0]
	if root.TotalE() != 3 || root.TotalS() != 0.5 {
		t.Fatalf("totals %g/%g", root.TotalE(), root.TotalS())
	}
	want := 3 + 0.5 + 0.5 + // root
		1 + 0.1 + 0.2 + // leaf 1
		0.8 + 0.1 + 0.2 // leaf 2
	if got := tr.SerialSeconds(); !approxEq(got, want) {
		t.Fatalf("SerialSeconds = %g, want %g", got, want)
	}
}

func approxEq(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	// Wrong attr width.
	bad := sample()
	bad.Levels[0].Leaves[0].E = []float64{1}
	if bad.Validate() == nil {
		t.Fatal("width mismatch accepted")
	}
	// Root with a parent.
	bad = sample()
	bad.Levels[0].Leaves[0].Parent = 3
	if bad.Validate() == nil {
		t.Fatal("root parent accepted")
	}
	// Parent out of range.
	bad = sample()
	bad.Levels[1].Leaves[0].Parent = 9
	if bad.Validate() == nil {
		t.Fatal("bad parent accepted")
	}
	// Child count mismatch.
	bad = sample()
	bad.Levels[0].Leaves[0].NValidChildren = 1
	if bad.Validate() == nil {
		t.Fatal("child mismatch accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dataset != tr.Dataset || back.NAttrs != tr.NAttrs ||
		len(back.Levels) != len(tr.Levels) ||
		back.Levels[1].Leaves[1].N != 4 {
		t.Fatal("round trip lost data")
	}
	// Invalid traces are rejected on read.
	var buf2 bytes.Buffer
	bad := sample()
	bad.Levels[0].Leaves[0].NValidChildren = 0
	if err := bad.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf2); err == nil {
		t.Fatal("invalid trace accepted on read")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	if err := sample().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NTuples != 10 {
		t.Fatal("file round trip lost data")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
