package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder(2)
	r.Lane(0).Add(0, PhaseEval, 10*time.Millisecond)
	r.Lane(0).AddN(0, PhaseEval, 20*time.Millisecond, 3)
	r.Lane(0).Add(1, PhaseSplit, 5*time.Millisecond)
	r.Lane(1).Add(0, PhaseBarrier, 2*time.Millisecond)

	b := r.Snapshot()
	if len(b.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(b.Workers))
	}
	w0 := b.Workers[0]
	if len(w0.Levels) != 2 {
		t.Fatalf("worker 0 levels = %d, want 2", len(w0.Levels))
	}
	if got := w0.Levels[0].Seconds[PhaseEval]; got != 0.030 {
		t.Fatalf("E seconds = %v, want 0.030", got)
	}
	if got := w0.Levels[0].Units[PhaseEval]; got != 4 {
		t.Fatalf("E units = %d, want 4", got)
	}
	if got := w0.Levels[1].Seconds[PhaseSplit]; got != 0.005 {
		t.Fatalf("S seconds = %v, want 0.005", got)
	}
	ph := b.PhaseSeconds()
	if ph[PhaseBarrier] != 0.002 {
		t.Fatalf("barrier total = %v, want 0.002", ph[PhaseBarrier])
	}
	ws := b.WorkerSeconds()
	if !approxEq(ws[0], 0.035) || !approxEq(ws[1], 0.002) {
		t.Fatalf("worker seconds = %v", ws)
	}
}

// TestRecorderGrow exercises the slab grow path past the preallocated
// level capacity, checking earlier levels survive the copy.
func TestRecorderGrow(t *testing.T) {
	r := NewRecorder(1)
	ln := r.Lane(0)
	ln.Add(0, PhaseEval, time.Millisecond)
	deep := initialLaneLevels * 3
	ln.Add(deep, PhaseSplit, 2*time.Millisecond)
	b := r.Snapshot()
	lv := b.Workers[0].Levels
	if len(lv) != deep+1 {
		t.Fatalf("levels = %d, want %d", len(lv), deep+1)
	}
	if lv[0].Seconds[PhaseEval] != 0.001 || lv[deep].Seconds[PhaseSplit] != 0.002 {
		t.Fatalf("grow lost data: %v / %v", lv[0], lv[deep])
	}
}

// TestRecorderConcurrentSnapshot hammers writer lanes while snapshotting
// from another goroutine; run under -race this proves the live-metrics
// read path is safe mid-build.
func TestRecorderConcurrentSnapshot(t *testing.T) {
	const workers = 4
	r := NewRecorder(workers)
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			ln := r.Lane(w)
			for i := 0; i < 5000; i++ {
				ln.Add(i%90, BuildPhase(i%int(NumBuildPhases)), time.Microsecond)
			}
		}(w)
	}
	stop := make(chan struct{})
	snapped := make(chan struct{})
	go func() {
		defer close(snapped)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-snapped

	b := r.Snapshot()
	for w := 0; w < workers; w++ {
		var units int64
		for _, lv := range b.Workers[w].Levels {
			for p := 0; p < int(NumBuildPhases); p++ {
				units += lv.Units[p]
			}
		}
		if units != 5000 {
			t.Fatalf("worker %d recorded %d units, want 5000", w, units)
		}
	}
}
