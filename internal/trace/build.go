package trace

// Build-phase observability: a lock-cheap per-worker recorder of where the
// build's wall clock goes — E (gini evaluation), W (winner + probe), S
// (list splitting), barrier stalls and queue-idle time — per worker, per
// tree level. Unlike the cost Trace above (a serial profiling artifact the
// simulator replays), the Recorder runs inside the real parallel schemes:
// each worker owns one lane and writes it with plain atomic adds, so the
// hot loops stay allocation-free and a concurrent reader (the model
// server's live /metrics gauges) can snapshot a build in progress.

import (
	"sync/atomic"
	"time"
)

// BuildPhase indexes one of the recorded phase buckets.
type BuildPhase int

const (
	// PhaseEval is E: split evaluation, one unit per (leaf, attribute).
	PhaseEval BuildPhase = iota
	// PhaseWinner is W: winner selection + probe construction, per leaf.
	PhaseWinner
	// PhaseSplit is S: attribute-list splitting, one unit per
	// (leaf, attribute).
	PhaseSplit
	// PhaseBarrier is time spent stalled at inter-phase barriers.
	PhaseBarrier
	// PhaseIdle is time spent waiting for work: MWK window/condition
	// waits and SUBTREE free-queue sleeps.
	PhaseIdle
	// PhaseBin is the HIST engine's quantile-sketch binning pass, one unit
	// per attribute. The exact engines never record it.
	PhaseBin
	// NumBuildPhases is the bucket count.
	NumBuildPhases
)

// String names the phase as the paper does.
func (p BuildPhase) String() string {
	switch p {
	case PhaseEval:
		return "E"
	case PhaseWinner:
		return "W"
	case PhaseSplit:
		return "S"
	case PhaseBarrier:
		return "barrier"
	case PhaseIdle:
		return "idle"
	case PhaseBin:
		return "bin"
	default:
		return "?"
	}
}

// laneCell accumulates one (level × phase) bucket.
type laneCell struct {
	ns    [NumBuildPhases]atomic.Int64
	units [NumBuildPhases]atomic.Int64
}

// initialLaneLevels is the preallocated per-lane level capacity; deeper
// trees grow the slab (a rare, amortized copy done by the lane's single
// writer, outside any unit's timed region).
const initialLaneLevels = 32

// Lane is one worker's recording surface. Exactly one worker writes a
// lane (plain atomic adds on cells it owns); any goroutine may snapshot
// it concurrently.
type Lane struct {
	slab atomic.Pointer[[]laneCell]
}

func newLane() *Lane {
	ln := &Lane{}
	cells := make([]laneCell, initialLaneLevels)
	ln.slab.Store(&cells)
	return ln
}

// cell returns the (grown if needed) cell for level. Only the lane's
// writer calls it, so the copy-and-publish grow is race-free: readers
// observe either the old or the new slab, both internally consistent.
func (ln *Lane) cell(level int) *laneCell {
	cells := *ln.slab.Load()
	if level < len(cells) {
		return &cells[level]
	}
	n := len(cells) * 2
	for n <= level {
		n *= 2
	}
	grown := make([]laneCell, n)
	for i := range cells {
		for p := 0; p < int(NumBuildPhases); p++ {
			grown[i].ns[p].Store(cells[i].ns[p].Load())
			grown[i].units[p].Store(cells[i].units[p].Load())
		}
	}
	ln.slab.Store(&grown)
	return &grown[level]
}

// Add records one work unit of duration d at (level, phase).
func (ln *Lane) Add(level int, p BuildPhase, d time.Duration) {
	ln.AddN(level, p, d, 1)
}

// AddN records n work units taking d in total at (level, phase).
func (ln *Lane) AddN(level int, p BuildPhase, d time.Duration, n int64) {
	c := ln.cell(level)
	c.ns[p].Add(int64(d))
	c.units[p].Add(n)
}

// Recorder collects per-worker phase durations for one build. Worker w
// writes only Lane(w), so the hot path needs no locks; Snapshot may be
// called at any time, including mid-build.
type Recorder struct {
	lanes []*Lane
}

// NewRecorder creates a recorder for the given worker count.
func NewRecorder(workers int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	r := &Recorder{lanes: make([]*Lane, workers)}
	for i := range r.lanes {
		r.lanes[i] = newLane()
	}
	return r
}

// Workers returns the lane count.
func (r *Recorder) Workers() int { return len(r.lanes) }

// Lane returns worker w's lane.
func (r *Recorder) Lane(w int) *Lane { return r.lanes[w] }

// BuildLevel is one worker's phase totals at one tree level.
type BuildLevel struct {
	// Seconds[p] is the accumulated duration of phase p.
	Seconds [NumBuildPhases]float64 `json:"seconds"`
	// Units[p] is the number of work units recorded into phase p.
	Units [NumBuildPhases]int64 `json:"units"`
}

// BuildWorker is one worker's per-level recording, root level first.
type BuildWorker struct {
	Levels []BuildLevel `json:"levels"`
}

// Build is the aggregated observability record of one build: what every
// worker spent on E/W/S, barriers and idling, per tree level.
type Build struct {
	Workers []BuildWorker `json:"workers"`
}

// Snapshot aggregates the recorder's current state. Safe to call while
// the build is still running; the result is then a consistent-enough
// live view (each counter is read atomically).
func (r *Recorder) Snapshot() Build {
	b := Build{Workers: make([]BuildWorker, len(r.lanes))}
	for w, ln := range r.lanes {
		cells := *ln.slab.Load()
		// Trim trailing all-zero levels so the snapshot reflects the
		// tree's real depth, not the slab capacity.
		last := -1
		levels := make([]BuildLevel, len(cells))
		for i := range cells {
			for p := 0; p < int(NumBuildPhases); p++ {
				levels[i].Seconds[p] = time.Duration(cells[i].ns[p].Load()).Seconds()
				levels[i].Units[p] = cells[i].units[p].Load()
				if levels[i].Seconds[p] > 0 || levels[i].Units[p] > 0 {
					last = i
				}
			}
		}
		b.Workers[w].Levels = levels[:last+1]
	}
	return b
}

// WorkerSeconds returns each worker's total recorded time (all phases).
func (b *Build) WorkerSeconds() []float64 {
	out := make([]float64, len(b.Workers))
	for w := range b.Workers {
		for _, lv := range b.Workers[w].Levels {
			for p := 0; p < int(NumBuildPhases); p++ {
				out[w] += lv.Seconds[p]
			}
		}
	}
	return out
}

// PhaseSeconds returns the per-phase totals summed over workers and
// levels.
func (b *Build) PhaseSeconds() [NumBuildPhases]float64 {
	var out [NumBuildPhases]float64
	for w := range b.Workers {
		for _, lv := range b.Workers[w].Levels {
			for p := 0; p < int(NumBuildPhases); p++ {
				out[p] += lv.Seconds[p]
			}
		}
	}
	return out
}
