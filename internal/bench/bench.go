// Package bench is the experiment harness that regenerates the paper's
// evaluation — Table 1 and Figures 8–11 plus the ablations discussed in the
// text — from the reimplementation. It is shared by cmd/benchtab and the
// repository's testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/prune"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/tree"
)

// DataSpec names one synthetic dataset in the paper's Fx-Ay-DzK scheme.
type DataSpec struct {
	Function int
	Attrs    int
	Tuples   int
	Seed     int64
}

// Name returns the paper-style dataset name.
func (d DataSpec) Name() string {
	return synth.Config{Function: d.Function, Attrs: d.Attrs, Tuples: d.Tuples}.Name()
}

// Generate materializes the dataset. The evaluation datasets are generated
// without perturbation: the paper's Table 1 contrast — F1 "results in
// fairly small decision trees, while Function 7 ... produces large trees" —
// comes from F1's concept being axis-parallel (two age cuts suffice) while
// F7's oblique linear boundary forces many axis-parallel splits; value
// perturbation would blur F1's boundary and inflate its tree with noise
// chasing, destroying the shape the paper reports.
func (d DataSpec) Generate() (*dataset.Table, error) {
	return synth.Generate(synth.Config{
		Function: d.Function, Attrs: d.Attrs, Tuples: d.Tuples,
		Seed: d.Seed,
	})
}

// ParseSpec parses a paper-style dataset name "Fx-Ay-DzK" (case
// insensitive; the trailing K multiplies by 1000) into a DataSpec with
// seed 1.
func ParseSpec(s string) (DataSpec, error) {
	m := specRe.FindStringSubmatch(s)
	if m == nil {
		return DataSpec{}, fmt.Errorf("bench: bad dataset spec %q (want Fx-Ay-DzK)", s)
	}
	fn, _ := strconv.Atoi(m[1])
	attrs, _ := strconv.Atoi(m[2])
	tuples, _ := strconv.Atoi(m[3])
	if m[4] != "" {
		tuples *= 1000
	}
	return DataSpec{Function: fn, Attrs: attrs, Tuples: tuples, Seed: 1}, nil
}

var specRe = regexp.MustCompile(`^[Ff](\d+)-[Aa](\d+)-[Dd](\d+)([Kk]?)$`)

// PaperSpecs returns the four datasets of the paper's evaluation, scaled to
// `tuples` records (the paper uses 250K).
func PaperSpecs(tuples int) []DataSpec {
	return []DataSpec{
		{Function: 1, Attrs: 32, Tuples: tuples, Seed: 1},
		{Function: 7, Attrs: 32, Tuples: tuples, Seed: 1},
		{Function: 1, Attrs: 64, Tuples: tuples, Seed: 1},
		{Function: 7, Attrs: 64, Tuples: tuples, Seed: 1},
	}
}

// Table1Row is one row of the paper's Table 1: dataset characteristics and
// sequential setup/sort times.
type Table1Row struct {
	Name      string
	DBMB      float64 // initial database size (attribute lists), MB
	Levels    int
	MaxLeaves int
	SetupSec  float64
	SortSec   float64
	TotalSec  float64
	SetupPct  float64
	SortPct   float64
	// PrunePct is MDL pruning's share of total time — the paper cites
	// SLIQ's finding that it is "usually less than 1%", justifying its
	// focus on the build phase.
	PrunePct float64
}

// RunTable1 builds each dataset serially and reports its characteristics.
// Each dataset is built three times and the minimum of each phase timing is
// reported, removing measurement noise (the builds are deterministic).
func RunTable1(specs []DataSpec, storage core.Storage, maxDepth int) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		tbl, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		var tr *tree.Tree
		var tm core.Timings
		for run := 0; run < 3; run++ {
			curTree, cur, err := core.Build(tbl, core.Config{
				Algorithm: core.Serial, Storage: storage, MaxDepth: maxDepth,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: building %s: %w", spec.Name(), err)
			}
			if run == 0 {
				tr, tm = curTree, cur
				continue
			}
			tm.Setup = min(tm.Setup, cur.Setup)
			tm.Sort = min(tm.Sort, cur.Sort)
			tm.Build = min(tm.Build, cur.Build)
		}
		st := tr.Stats()
		// Time the prune phase on the final tree (the paper's "<1%" claim).
		t0 := time.Now()
		prune.MDL(tr)
		pruneSec := time.Since(t0).Seconds()
		total := tm.Total().Seconds()
		row := Table1Row{
			Name: spec.Name(),
			// One 16-byte attribute-list record per attribute per tuple,
			// the paper's "DB size" notion for SPRINT inputs.
			DBMB:      float64(spec.Attrs) * float64(spec.Tuples) * 16 / (1 << 20),
			Levels:    st.Levels,
			MaxLeaves: st.MaxLeavesPerLevel,
			SetupSec:  tm.Setup.Seconds(),
			SortSec:   tm.Sort.Seconds(),
			TotalSec:  total,
		}
		if total > 0 {
			row.SetupPct = 100 * row.SetupSec / total
			row.SortPct = 100 * row.SortSec / total
			row.PrunePct = 100 * pruneSec / (total + pruneSec)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-14s %8s %7s %10s %9s %8s %9s %8s %7s %7s\n",
		"Dataset", "DB(MB)", "Levels", "MaxLv/Lvl", "Setup(s)", "Sort(s)", "Total(s)", "Setup%", "Sort%", "Prune%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8.1f %7d %10d %9.2f %8.2f %9.2f %7.1f%% %6.1f%% %6.2f%%\n",
			r.Name, r.DBMB, r.Levels, r.MaxLeaves,
			r.SetupSec, r.SortSec, r.TotalSec, r.SetupPct, r.SortPct, r.PrunePct)
	}
}

// Point is one (processors → time/speedup) measurement of a figure series.
type Point struct {
	Procs        int
	BuildSec     float64
	TotalSec     float64
	BuildSpeedup float64
	TotalSpeedup float64
}

// Series is one curve of a figure: a dataset × scheme combination.
type Series struct {
	Dataset string
	Scheme  string
	Points  []Point
}

// FigureOpts configures a speedup figure reproduction.
type FigureOpts struct {
	// Specs are the datasets of the figure (two per paper figure).
	Specs []DataSpec
	// Storage selects local-disk (Figures 8–9) or main-memory
	// (Figures 10–11) attribute lists for the profiling run.
	Storage core.Storage
	// Procs are the processor counts, e.g. 1..4 (Machine A) or 1..8
	// (Machine B).
	Procs []int
	// Schemes are the simulated algorithms (the paper plots MWK and
	// SUBTREE).
	Schemes []sim.Scheme
	// WindowK is MWK/FWK's K (default 4).
	WindowK int
	// Params are the synchronization cost constants.
	Params sim.Params
	// MaxDepth bounds tree growth (0 = unlimited, as in the paper).
	MaxDepth int
	// Mode selects virtual-time simulation (default; works on any host)
	// or real wall-clock goroutine runs (meaningful on multi-core hosts).
	Mode Mode
	// ProfileRuns is the number of serial profiling runs per dataset in
	// Simulated mode; per-unit costs are merged by taking the minimum
	// across runs, which removes measurement noise without inventing
	// costs (builds are deterministic, so the unit sets are identical).
	// Default 3.
	ProfileRuns int
	// TraceSink, when non-nil, receives each dataset's profiling trace.
	TraceSink func(name string, tr *trace.Trace)
	// ParallelSetup models the paper's "parallelizing the setup phase
	// more aggressively" follow-up in the total-time figures: the
	// setup+sort portion is divided by the processor count (attribute
	// lists are created and sorted independently per attribute, so the
	// phase parallelizes near-perfectly while attrs >= P).
	ParallelSetup bool
}

// Mode selects how parallel times are obtained.
type Mode int

const (
	// Simulated replays measured unit costs in virtual time (DESIGN.md §2).
	Simulated Mode = iota
	// Real runs the goroutine implementations and measures wall clock;
	// speedup shapes require a host with as many cores as Procs.
	Real
)

// RunFigure reproduces one speedup figure.
func RunFigure(opts FigureOpts) ([]Series, error) {
	if opts.WindowK == 0 {
		opts.WindowK = 4
	}
	if opts.Params == (sim.Params{}) {
		opts.Params = sim.DefaultParams()
	}
	var out []Series
	for _, spec := range opts.Specs {
		tbl, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		switch opts.Mode {
		case Simulated:
			series, err := simulatedSeries(tbl, spec, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, series...)
		case Real:
			series, err := realSeries(tbl, spec, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, series...)
		default:
			return nil, fmt.Errorf("bench: unknown mode %d", int(opts.Mode))
		}
	}
	return out, nil
}

func simulatedSeries(tbl *dataset.Table, spec DataSpec, opts FigureOpts) ([]Series, error) {
	runs := opts.ProfileRuns
	if runs <= 0 {
		runs = 3
	}
	var tr *trace.Trace
	for r := 0; r < runs; r++ {
		cur := &trace.Trace{Dataset: spec.Name()}
		if _, _, err := core.Build(tbl, core.Config{
			Algorithm: core.Serial, Storage: opts.Storage, MaxDepth: opts.MaxDepth, Trace: cur,
		}); err != nil {
			return nil, fmt.Errorf("bench: profiling %s: %w", spec.Name(), err)
		}
		if tr == nil {
			tr = cur
			continue
		}
		if err := mergeMinTrace(tr, cur); err != nil {
			return nil, fmt.Errorf("bench: profiling %s: %w", spec.Name(), err)
		}
	}
	if opts.TraceSink != nil {
		opts.TraceSink(spec.Name(), tr)
	}
	setupSort := tr.SetupSeconds + tr.SortSeconds
	var out []Series
	for _, scheme := range opts.Schemes {
		s := Series{Dataset: spec.Name(), Scheme: scheme.String()}
		base, err := sim.Simulate(tr, scheme, 1, opts.WindowK, opts.Params)
		if err != nil {
			return nil, err
		}
		for _, p := range opts.Procs {
			r, err := sim.Simulate(tr, scheme, p, opts.WindowK, opts.Params)
			if err != nil {
				return nil, err
			}
			ss := setupSort
			if opts.ParallelSetup {
				ss = setupSort / float64(p)
			}
			pt := Point{Procs: p, BuildSec: r.BuildSeconds, TotalSec: ss + r.BuildSeconds}
			if r.BuildSeconds > 0 {
				pt.BuildSpeedup = base.BuildSeconds / r.BuildSeconds
			}
			if pt.TotalSec > 0 {
				pt.TotalSpeedup = (setupSort + base.BuildSeconds) / pt.TotalSec
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	return out, nil
}

func realSeries(tbl *dataset.Table, spec DataSpec, opts FigureOpts) ([]Series, error) {
	var out []Series
	for _, scheme := range opts.Schemes {
		alg, inner, err := schemeToAlgorithm(scheme)
		if err != nil {
			return nil, err
		}
		s := Series{Dataset: spec.Name(), Scheme: scheme.String()}
		var base core.Timings
		for i, p := range opts.Procs {
			_, tm, err := core.Build(tbl, core.Config{
				Algorithm: alg, SubtreeInner: inner, Procs: p, WindowK: opts.WindowK,
				Storage: opts.Storage, MaxDepth: opts.MaxDepth,
			})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = tm
			}
			pt := Point{
				Procs:    p,
				BuildSec: tm.Build.Seconds(),
				TotalSec: tm.Total().Seconds(),
			}
			if tm.Build > 0 {
				pt.BuildSpeedup = base.Build.Seconds() / tm.Build.Seconds()
			}
			if tm.Total() > 0 {
				pt.TotalSpeedup = base.Total().Seconds() / tm.Total().Seconds()
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	return out, nil
}

// mergeMinTrace folds src into dst by taking the per-unit minimum cost.
// The two traces must describe the same (deterministic) build.
func mergeMinTrace(dst, src *trace.Trace) error {
	if len(dst.Levels) != len(src.Levels) || dst.NAttrs != src.NAttrs {
		return fmt.Errorf("profiling runs disagree on tree shape (%d vs %d levels)",
			len(dst.Levels), len(src.Levels))
	}
	dst.SetupSeconds = math.Min(dst.SetupSeconds, src.SetupSeconds)
	dst.SortSeconds = math.Min(dst.SortSeconds, src.SortSeconds)
	dst.BuildSeconds = math.Min(dst.BuildSeconds, src.BuildSeconds)
	for i := range dst.Levels {
		dl, sl := dst.Levels[i].Leaves, src.Levels[i].Leaves
		if len(dl) != len(sl) {
			return fmt.Errorf("profiling runs disagree at level %d (%d vs %d leaves)",
				i, len(dl), len(sl))
		}
		for j := range dl {
			if dl[j].N != sl[j].N || dl[j].Parent != sl[j].Parent {
				return fmt.Errorf("profiling runs disagree at level %d leaf %d", i, j)
			}
			dl[j].W = math.Min(dl[j].W, sl[j].W)
			for a := range dl[j].E {
				dl[j].E[a] = math.Min(dl[j].E[a], sl[j].E[a])
				dl[j].S[a] = math.Min(dl[j].S[a], sl[j].S[a])
			}
		}
	}
	return nil
}

func schemeToAlgorithm(s sim.Scheme) (core.Algorithm, core.Algorithm, error) {
	switch s {
	case sim.Basic:
		return core.Basic, core.Basic, nil
	case sim.FWK:
		return core.FWK, core.Basic, nil
	case sim.MWK:
		return core.MWK, core.Basic, nil
	case sim.Subtree:
		return core.Subtree, core.Basic, nil
	case sim.RecPar:
		return core.RecPar, core.Basic, nil
	case sim.SubtreeMWK:
		return core.Subtree, core.MWK, nil
	default:
		return 0, 0, fmt.Errorf("bench: unknown scheme %d", int(s))
	}
}

// FormatFigure renders the series as the paper's chart rows: per dataset,
// build time and the two speedup charts across processor counts.
func FormatFigure(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for _, s := range series {
		fmt.Fprintf(w, "\n%s  [%s]\n", s.Dataset, s.Scheme)
		fmt.Fprintf(w, "  %6s %12s %12s %14s %14s\n",
			"procs", "build(s)", "total(s)", "speedup(build)", "speedup(total)")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %6d %12.3f %12.3f %14.2f %14.2f\n",
				p.Procs, p.BuildSec, p.TotalSec, p.BuildSpeedup, p.TotalSpeedup)
		}
	}
}

// WriteSeriesCSV writes figure series as CSV rows
// (dataset,scheme,procs,build_s,total_s,speedup_build,speedup_total),
// ready for plotting.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "dataset,scheme,procs,build_s,total_s,speedup_build,speedup_total"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%.6f,%.6f,%.4f,%.4f\n",
				s.Dataset, s.Scheme, p.Procs, p.BuildSec, p.TotalSec,
				p.BuildSpeedup, p.TotalSpeedup); err != nil {
				return err
			}
		}
	}
	return nil
}

// GOMAXPROCSNote returns a human-readable warning when Real mode cannot show
// speedups on this host.
func GOMAXPROCSNote(maxProcs int) string {
	if runtime.NumCPU() >= maxProcs {
		return ""
	}
	return fmt.Sprintf("note: host has %d CPU(s); real-mode speedups above that are not physically realizable (use simulated mode)",
		runtime.NumCPU())
}

// TreeShapeSummary reports the tree shape the paper discusses for a spec
// (F1 tiny, F7 large); used by EXPERIMENTS.md generation and tests.
func TreeShapeSummary(spec DataSpec, maxDepth int) (tree.Stats, error) {
	tbl, err := spec.Generate()
	if err != nil {
		return tree.Stats{}, err
	}
	tr, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, MaxDepth: maxDepth})
	if err != nil {
		return tree.Stats{}, err
	}
	return tr.Stats(), nil
}
