package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestDataSpec(t *testing.T) {
	spec := DataSpec{Function: 7, Attrs: 32, Tuples: 250000, Seed: 1}
	if spec.Name() != "F7-A32-D250K" {
		t.Fatalf("Name = %q", spec.Name())
	}
	small := DataSpec{Function: 1, Attrs: 9, Tuples: 100, Seed: 1}
	tbl, err := small.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumTuples() != 100 {
		t.Fatal("generation wrong size")
	}
	specs := PaperSpecs(1000)
	if len(specs) != 4 || specs[3].Attrs != 64 || specs[3].Function != 7 {
		t.Fatalf("PaperSpecs = %+v", specs)
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1([]DataSpec{
		{Function: 1, Attrs: 9, Tuples: 2000, Seed: 1},
		{Function: 7, Attrs: 9, Tuples: 2000, Seed: 1},
	}, core.Memory, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	f1, f7 := rows[0], rows[1]
	if f1.Levels <= 0 || f7.Levels <= 0 || f1.TotalSec <= 0 {
		t.Fatalf("degenerate rows: %+v", rows)
	}
	// The paper's Table 1 signature: F1 trees are tiny, F7 trees large;
	// setup+sort dominates F1 but not F7.
	if f7.Levels <= f1.Levels {
		t.Fatalf("F7 levels (%d) should exceed F1 levels (%d)", f7.Levels, f1.Levels)
	}
	if f1.SetupPct+f1.SortPct <= f7.SetupPct+f7.SortPct {
		t.Fatalf("setup+sort share: F1 %.1f%% should exceed F7 %.1f%%",
			f1.SetupPct+f1.SortPct, f7.SetupPct+f7.SortPct)
	}
	var buf bytes.Buffer
	FormatTable1(&buf, rows)
	if !strings.Contains(buf.String(), "F1-A9-D2K") {
		t.Fatalf("formatting broken:\n%s", buf.String())
	}
}

func TestRunFigureSimulated(t *testing.T) {
	var gotTrace bool
	series, err := RunFigure(FigureOpts{
		Specs:   []DataSpec{{Function: 7, Attrs: 12, Tuples: 3000, Seed: 1}},
		Storage: core.Memory,
		Procs:   []int{1, 2, 4},
		Schemes: []sim.Scheme{sim.MWK, sim.Subtree},
		TraceSink: func(name string, tr *trace.Trace) {
			gotTrace = true
			if name != "F7-A12-D3K" || tr.SerialSeconds() <= 0 {
				t.Errorf("bad trace sink call: %s", name)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gotTrace {
		t.Fatal("trace sink not called")
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s/%s: %d points", s.Dataset, s.Scheme, len(s.Points))
		}
		if s.Points[0].BuildSpeedup != 1 {
			t.Fatalf("P=1 speedup = %g", s.Points[0].BuildSpeedup)
		}
		last := s.Points[2]
		if last.BuildSpeedup < 1.2 || last.BuildSpeedup > 4.01 {
			t.Fatalf("%s P=4 build speedup %.2f implausible", s.Scheme, last.BuildSpeedup)
		}
		if last.TotalSpeedup > last.BuildSpeedup+1e-9 {
			t.Fatalf("total speedup (%g) cannot exceed build speedup (%g) with serial setup",
				last.TotalSpeedup, last.BuildSpeedup)
		}
	}
	var buf bytes.Buffer
	FormatFigure(&buf, "Test figure", series)
	out := buf.String()
	if !strings.Contains(out, "MWK") || !strings.Contains(out, "SUBTREE") ||
		!strings.Contains(out, "speedup(build)") {
		t.Fatalf("figure formatting broken:\n%s", out)
	}
}

func TestRunFigureReal(t *testing.T) {
	series, err := RunFigure(FigureOpts{
		Specs:   []DataSpec{{Function: 1, Attrs: 9, Tuples: 2000, Seed: 1}},
		Storage: core.Memory,
		Procs:   []int{1, 2},
		Schemes: []sim.Scheme{sim.MWK},
		Mode:    Real,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("series shape wrong: %+v", series)
	}
	// On a 1-core host real speedup is not asserted — only that times are
	// positive and recorded.
	for _, p := range series[0].Points {
		if p.BuildSec <= 0 || p.TotalSec < p.BuildSec {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestSchemeToAlgorithm(t *testing.T) {
	for s, want := range map[sim.Scheme]core.Algorithm{
		sim.Basic: core.Basic, sim.FWK: core.FWK, sim.MWK: core.MWK, sim.Subtree: core.Subtree,
	} {
		got, _, err := schemeToAlgorithm(s)
		if err != nil || got != want {
			t.Fatalf("%v → %v (%v)", s, got, err)
		}
	}
	if alg, inner, err := schemeToAlgorithm(sim.SubtreeMWK); err != nil ||
		alg != core.Subtree || inner != core.MWK {
		t.Fatalf("SubtreeMWK → %v/%v (%v)", alg, inner, err)
	}
	if _, _, err := schemeToAlgorithm(sim.Scheme(99)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestTreeShapeSummary(t *testing.T) {
	f1, err := TreeShapeSummary(DataSpec{Function: 1, Attrs: 9, Tuples: 3000, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := TreeShapeSummary(DataSpec{Function: 7, Attrs: 9, Tuples: 3000, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f7.Nodes <= f1.Nodes {
		t.Fatalf("F7 tree (%d nodes) should dwarf F1 (%d nodes)", f7.Nodes, f1.Nodes)
	}
}

func TestParseSpec(t *testing.T) {
	ds, err := ParseSpec("F7-A32-D250K")
	if err != nil || ds.Function != 7 || ds.Attrs != 32 || ds.Tuples != 250000 {
		t.Fatalf("ParseSpec = %+v, %v", ds, err)
	}
	ds, err = ParseSpec("f1-a9-d123")
	if err != nil || ds.Function != 1 || ds.Attrs != 9 || ds.Tuples != 123 {
		t.Fatalf("ParseSpec lowercase = %+v, %v", ds, err)
	}
	for _, bad := range []string{"", "F7", "F7-A32", "A32-D250K", "F7-A32-D250M"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}
