package split

import (
	"math/rand"
	"testing"

	"repro/internal/alist"
)

func benchRecords(n int, distinct int) []alist.Record {
	rng := rand.New(rand.NewSource(1))
	recs := make([]alist.Record, n)
	for i := range recs {
		recs[i] = alist.Record{
			Value: float64(rng.Intn(distinct)),
			Tid:   uint32(i),
			Class: int32(rng.Intn(2)),
		}
	}
	alist.SortByValue(recs)
	return recs
}

// BenchmarkContEval measures the E-phase scan throughput — the dominant
// cost of the whole classifier.
func BenchmarkContEval(b *testing.B) {
	recs := benchRecords(100000, 1<<20)
	total := []int64{0, 0}
	for _, r := range recs {
		total[r.Class]++
	}
	b.SetBytes(int64(len(recs)) * alist.RecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewContEval(0, total)
		ev.PushChunk(recs)
		if !ev.Finish().Valid {
			b.Fatal("no candidate")
		}
	}
}

// BenchmarkContEvalFewDistinct measures the same scan when runs of equal
// values skip gini evaluations.
func BenchmarkContEvalFewDistinct(b *testing.B) {
	recs := benchRecords(100000, 16)
	total := []int64{0, 0}
	for _, r := range recs {
		total[r.Class]++
	}
	b.SetBytes(int64(len(recs)) * alist.RecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewContEval(0, total)
		ev.PushChunk(recs)
		ev.Finish()
	}
}

// BenchmarkCatEvalEnumerate measures subset enumeration at the default
// threshold boundary (10 categories → 511 bipartitions).
func BenchmarkCatEvalEnumerate(b *testing.B) {
	recs := benchRecords(100000, 10)
	total := []int64{0, 0}
	for _, r := range recs {
		total[r.Class]++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewCatEval(0, 10, total, 0)
		ev.PushChunk(recs)
		ev.Finish()
	}
}

// BenchmarkCatEvalGreedy measures the greedy subsetting search on a
// 64-category attribute.
func BenchmarkCatEvalGreedy(b *testing.B) {
	recs := benchRecords(100000, 64)
	total := []int64{0, 0}
	for _, r := range recs {
		total[r.Class]++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewCatEval(0, 64, total, 0)
		ev.PushChunk(recs)
		ev.Finish()
	}
}

func BenchmarkGini(b *testing.B) {
	counts := []int64{123456, 654321}
	for i := 0; i < b.N; i++ {
		Gini(counts, 777777)
	}
}
