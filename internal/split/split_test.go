package split

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/alist"
	"repro/internal/dataset"
)

func TestGiniBasics(t *testing.T) {
	cases := []struct {
		counts []int64
		n      int64
		want   float64
	}{
		{[]int64{0, 0}, 0, 0},          // empty set
		{[]int64{4, 0}, 4, 0},          // pure
		{[]int64{2, 2}, 4, 0.5},        // even two-class
		{[]int64{1, 1, 1, 1}, 4, 0.75}, // even four-class
		{[]int64{3, 1}, 4, 1 - (9.0/16 + 1.0/16)},
	}
	for _, c := range cases {
		if got := Gini(c.counts, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gini(%v, %d) = %g, want %g", c.counts, c.n, got, c.want)
		}
	}
}

// Property: gini is always within [0, 1-1/k] for k classes.
func TestGiniRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		counts := make([]int64, len(raw))
		var n int64
		for i, r := range raw {
			counts[i] = int64(r)
			n += int64(r)
		}
		g := Gini(counts, n)
		upper := 1 - 1/float64(len(counts))
		return g >= -1e-12 && g <= upper+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitGini never exceeds the parent's gini... is false in
// general for gini (unlike entropy gain it can only decrease or stay equal
// for binary partitions by convexity). Verify the convexity property:
// weighted child gini <= parent gini.
func TestSplitGiniConvexityProperty(t *testing.T) {
	f := func(l0, l1, r0, r1 uint16) bool {
		left := []int64{int64(l0), int64(l1)}
		right := []int64{int64(r0), int64(r1)}
		nl := left[0] + left[1]
		nr := right[0] + right[1]
		if nl+nr == 0 {
			return true
		}
		parent := []int64{left[0] + right[0], left[1] + right[1]}
		return SplitGini(left, right, nl, nr) <= Gini(parent, nl+nr)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCatSet(t *testing.T) {
	s := NewCatSet(70)
	if s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(69)
	if !s.Has(0) || !s.Has(63) || !s.Has(64) || !s.Has(69) {
		t.Fatal("membership across word boundary broken")
	}
	if s.Has(1) || s.Has(65) {
		t.Fatal("false positives")
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal")
	}
	c.Remove(63)
	if c.Equal(s) || c.Has(63) || c.Count() != 3 {
		t.Fatal("remove broken")
	}
	if got := s.String(); got != "{0,63,64,69}" {
		t.Fatalf("String = %q", got)
	}
	// Out-of-range lookups are false, not panics.
	if s.Has(-1) || s.Has(1000) {
		t.Fatal("out-of-range Has should be false")
	}
}

// bruteForceCont finds the best midpoint split by trying every one.
func bruteForceCont(recs []alist.Record, nclass int) (float64, float64, bool) {
	n := int64(len(recs))
	total := make([]int64, nclass)
	for _, r := range recs {
		total[r.Class]++
	}
	bestG := math.Inf(1)
	bestT := 0.0
	found := false
	below := make([]int64, nclass)
	var nb int64
	for i := 0; i < len(recs)-1; i++ {
		below[recs[i].Class]++
		nb++
		if recs[i].Value == recs[i+1].Value {
			continue
		}
		above := make([]int64, nclass)
		for j := range above {
			above[j] = total[j] - below[j]
		}
		g := SplitGini(below, above, nb, n-nb)
		th := (recs[i].Value + recs[i+1].Value) / 2
		if !found || g < bestG || (g == bestG && th < bestT) {
			bestG, bestT, found = g, th, true
		}
	}
	return bestG, bestT, found
}

func TestContEvalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		recs := make([]alist.Record, n)
		for i := range recs {
			recs[i] = alist.Record{
				Value: float64(rng.Intn(10)), // few distinct values → ties
				Tid:   uint32(i),
				Class: int32(rng.Intn(3)),
			}
		}
		alist.SortByValue(recs)
		total := make([]int64, 3)
		for _, r := range recs {
			total[r.Class]++
		}
		ev := NewContEval(7, total)
		ev.PushChunk(recs)
		got := ev.Finish()
		wantG, wantT, wantValid := bruteForceCont(recs, 3)
		if got.Valid != wantValid {
			t.Fatalf("trial %d: valid = %v, want %v", trial, got.Valid, wantValid)
		}
		if !wantValid {
			continue
		}
		if math.Abs(got.Gini-wantG) > 1e-12 || got.Threshold != wantT {
			t.Fatalf("trial %d: got (g=%g, t=%g), want (g=%g, t=%g)",
				trial, got.Gini, got.Threshold, wantG, wantT)
		}
		if got.Attr != 7 || got.Kind != dataset.Continuous {
			t.Fatalf("trial %d: wrong attr/kind", trial)
		}
		if got.NLeft+got.NRight != int64(n) {
			t.Fatalf("trial %d: NLeft+NRight=%d, want %d", trial, got.NLeft+got.NRight, n)
		}
	}
}

func TestContEvalChunksInvariant(t *testing.T) {
	// Pushing chunked vs all-at-once must give the same candidate.
	rng := rand.New(rand.NewSource(5))
	recs := make([]alist.Record, 200)
	for i := range recs {
		recs[i] = alist.Record{Value: rng.Float64() * 100, Tid: uint32(i), Class: int32(rng.Intn(2))}
	}
	alist.SortByValue(recs)
	total := []int64{0, 0}
	for _, r := range recs {
		total[r.Class]++
	}
	one := NewContEval(0, total)
	one.PushChunk(recs)
	chunked := NewContEval(0, total)
	for i := 0; i < len(recs); i += 7 {
		end := i + 7
		if end > len(recs) {
			end = len(recs)
		}
		chunked.PushChunk(recs[i:end])
	}
	a, b := one.Finish(), chunked.Finish()
	if a.Gini != b.Gini || a.Threshold != b.Threshold || a.Valid != b.Valid {
		t.Fatalf("chunked evaluation differs: %+v vs %+v", a, b)
	}
}

func TestContEvalSingleDistinctValueInvalid(t *testing.T) {
	recs := []alist.Record{{Value: 5, Class: 0}, {Value: 5, Class: 1}, {Value: 5, Class: 0}}
	ev := NewContEval(0, []int64{2, 1})
	ev.PushChunk(recs)
	if ev.Finish().Valid {
		t.Fatal("single distinct value must be unsplittable")
	}
}

// bruteForceCat finds the best subset split by trying every bipartition of
// present categories.
func bruteForceCat(recs []alist.Record, card, nclass int) (float64, bool) {
	counts := make([]int64, nclass*card)
	catTot := make([]int64, card)
	total := make([]int64, nclass)
	for _, r := range recs {
		c := int(r.Value)
		counts[int(r.Class)*card+c]++
		catTot[c]++
		total[r.Class]++
	}
	var present []int
	for c := 0; c < card; c++ {
		if catTot[c] > 0 {
			present = append(present, c)
		}
	}
	if len(present) < 2 {
		return 0, false
	}
	bestG := math.Inf(1)
	found := false
	for mask := 1; mask < 1<<len(present)-1; mask++ {
		left := make([]int64, nclass)
		right := append([]int64(nil), total...)
		var nl int64
		for i, c := range present {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := 0; j < nclass; j++ {
				left[j] += counts[j*card+c]
				right[j] -= counts[j*card+c]
			}
			nl += catTot[c]
		}
		g := SplitGini(left, right, nl, int64(len(recs))-nl)
		if g < bestG {
			bestG = g
			found = true
		}
	}
	return bestG, found
}

func TestCatEvalEnumerationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		card := 2 + rng.Intn(6)
		n := 2 + rng.Intn(80)
		recs := make([]alist.Record, n)
		for i := range recs {
			recs[i] = alist.Record{Value: float64(rng.Intn(card)), Tid: uint32(i), Class: int32(rng.Intn(2))}
		}
		total := []int64{0, 0}
		for _, r := range recs {
			total[r.Class]++
		}
		ev := NewCatEval(3, card, total, 0)
		ev.PushChunk(recs)
		got := ev.Finish()
		wantG, wantValid := bruteForceCat(recs, card, 2)
		if got.Valid != wantValid {
			t.Fatalf("trial %d: valid = %v, want %v", trial, got.Valid, wantValid)
		}
		if !wantValid {
			continue
		}
		if math.Abs(got.Gini-wantG) > 1e-12 {
			t.Fatalf("trial %d: gini = %g, want %g", trial, got.Gini, wantG)
		}
		// The returned subset must actually achieve the gini it claims.
		verifySubsetGini(t, recs, got, 2, card)
	}
}

func verifySubsetGini(t *testing.T, recs []alist.Record, c Candidate, nclass, card int) {
	t.Helper()
	left := make([]int64, nclass)
	right := make([]int64, nclass)
	var nl, nr int64
	for _, r := range recs {
		if c.Subset.Has(int32(r.Value)) {
			left[r.Class]++
			nl++
		} else {
			right[r.Class]++
			nr++
		}
	}
	if nl != c.NLeft || nr != c.NRight {
		t.Fatalf("subset sizes %d/%d don't match candidate %d/%d", nl, nr, c.NLeft, c.NRight)
	}
	if g := SplitGini(left, right, nl, nr); math.Abs(g-c.Gini) > 1e-12 {
		t.Fatalf("subset achieves gini %g, candidate claims %g", g, c.Gini)
	}
}

// Property: greedy subsetting is never better than exhaustive enumeration
// (it's a heuristic) but must always return a *valid achievable* split.
func TestCatEvalGreedyAchievable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		card := 12 + rng.Intn(8) // forces greedy with default threshold
		n := 50 + rng.Intn(200)
		recs := make([]alist.Record, n)
		for i := range recs {
			recs[i] = alist.Record{Value: float64(rng.Intn(card)), Tid: uint32(i), Class: int32(rng.Intn(3))}
		}
		total := make([]int64, 3)
		for _, r := range recs {
			total[r.Class]++
		}
		ev := NewCatEval(0, card, total, 0)
		ev.PushChunk(recs)
		got := ev.Finish()
		if !got.Valid {
			continue
		}
		verifySubsetGini(t, recs, got, 3, card)
		// Greedy must not be worse than the trivial best single-category
		// split (its first step considers all of those).
		single := math.Inf(1)
		for c := 0; c < card; c++ {
			left := make([]int64, 3)
			right := append([]int64(nil), total...)
			var nl int64
			for _, r := range recs {
				if int(r.Value) == c {
					left[r.Class]++
					nl++
				}
			}
			for j := range right {
				right[j] -= left[j]
			}
			if nl == 0 || nl == int64(n) {
				continue
			}
			if g := SplitGini(left, right, nl, int64(n)-nl); g < single {
				single = g
			}
		}
		if got.Gini > single+1e-12 {
			t.Fatalf("trial %d: greedy gini %g worse than best single-category %g",
				trial, got.Gini, single)
		}
	}
}

func TestCandidateBetterOrdering(t *testing.T) {
	invalid := Candidate{Valid: false, Gini: 0}
	a := Candidate{Valid: true, Gini: 0.3, Attr: 1, Kind: dataset.Continuous, Threshold: 5}
	b := Candidate{Valid: true, Gini: 0.3, Attr: 2, Kind: dataset.Continuous, Threshold: 1}
	c := Candidate{Valid: true, Gini: 0.2, Attr: 9, Kind: dataset.Continuous, Threshold: 9}
	d := Candidate{Valid: true, Gini: 0.3, Attr: 1, Kind: dataset.Continuous, Threshold: 4}

	if invalid.Better(a) {
		t.Fatal("invalid must not beat valid")
	}
	if !a.Better(invalid) {
		t.Fatal("valid must beat invalid")
	}
	if !c.Better(a) || !c.Better(b) {
		t.Fatal("lower gini must win")
	}
	if !a.Better(b) {
		t.Fatal("ties must break toward lower attribute index")
	}
	if !d.Better(a) {
		t.Fatal("same-attr ties must break toward lower threshold")
	}
	if a.Better(a) {
		t.Fatal("Better must be a strict order")
	}
	// Sorting with Better must be deterministic total preorder: verify
	// antisymmetry on a shuffled set.
	cands := []Candidate{a, b, c, d, invalid}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Better(cands[j]) })
	if cands[0].Attr != c.Attr || cands[0].Gini != c.Gini {
		t.Fatalf("best candidate after sort = %+v, want c", cands[0])
	}
}

func TestGoesLeft(t *testing.T) {
	cont := Candidate{Kind: dataset.Continuous, Threshold: 10}
	if !cont.GoesLeft(9.999) || cont.GoesLeft(10) || cont.GoesLeft(10.1) {
		t.Fatal("continuous GoesLeft must be value < threshold")
	}
	set := NewCatSet(5)
	set.Add(2)
	cat := Candidate{Kind: dataset.Categorical, Subset: set}
	if !cat.GoesLeft(2) || cat.GoesLeft(3) {
		t.Fatal("categorical GoesLeft must be subset membership")
	}
}
