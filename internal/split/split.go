// Package split implements gini-index split evaluation over attribute
// lists, the E step of the paper's E/W/S decomposition.
//
// For a continuous attribute the candidate split points are the mid-points
// between every two consecutive distinct values in the (sorted) attribute
// list; evaluation streams the list once, maintaining Cbelow/Cabove class
// histograms. For a categorical attribute a class×category count matrix is
// gathered in one pass and then either all subsets are enumerated (small
// cardinality) or a greedy subsetting search is used (paper §2.2), exactly
// as in SPRINT.
package split

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/alist"
	"repro/internal/dataset"
)

// Gini returns the gini index of a class histogram with total n:
// gini = 1 - Σ (c_j/n)². By convention the gini of an empty set is 0.
func Gini(counts []int64, n int64) float64 {
	if n == 0 {
		return 0
	}
	var s float64
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		s += p * p
	}
	return 1 - s
}

// SplitGini returns the weighted gini of a binary partition:
// (nl/n)·gini(left) + (nr/n)·gini(right).
func SplitGini(left, right []int64, nl, nr int64) float64 {
	n := nl + nr
	if n == 0 {
		return 0
	}
	return float64(nl)/float64(n)*Gini(left, nl) + float64(nr)/float64(n)*Gini(right, nr)
}

// CatSet is a set of category codes, used as the left-branch subset of a
// categorical split test (value ∈ set ⇒ left).
type CatSet struct {
	bits []uint64
	card int
}

// NewCatSet creates an empty set over a domain of card categories.
func NewCatSet(card int) CatSet {
	return CatSet{bits: make([]uint64, (card+63)/64), card: card}
}

// Add inserts a category code.
func (s *CatSet) Add(code int32) { s.bits[code/64] |= 1 << uint(code%64) }

// Remove deletes a category code.
func (s *CatSet) Remove(code int32) { s.bits[code/64] &^= 1 << uint(code%64) }

// Has reports membership of a category code.
func (s CatSet) Has(code int32) bool {
	i := int(code / 64)
	if i < 0 || i >= len(s.bits) {
		return false
	}
	return s.bits[i]&(1<<uint(code%64)) != 0
}

// Card returns the domain cardinality the set was created with.
func (s CatSet) Card() int { return s.card }

// Count returns the number of categories in the set.
func (s CatSet) Count() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Clone returns a copy of the set.
func (s CatSet) Clone() CatSet {
	return CatSet{bits: append([]uint64(nil), s.bits...), card: s.card}
}

// Equal reports whether two sets contain the same codes.
func (s CatSet) Equal(o CatSet) bool {
	if len(s.bits) != len(o.bits) {
		return false
	}
	for i := range s.bits {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// String renders the set as {c0,c3,...}.
func (s CatSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for c := int32(0); int(c) < s.card; c++ {
		if s.Has(c) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%d", c)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Candidate describes the best split found for one attribute at one leaf.
type Candidate struct {
	// Attr is the attribute index the candidate splits on.
	Attr int
	// Kind is the attribute kind.
	Kind dataset.Kind
	// Gini is the weighted gini index of the split; lower is better.
	Gini float64
	// Threshold is the continuous split point: value < Threshold ⇒ left.
	Threshold float64
	// Subset is the categorical left-branch subset: value ∈ Subset ⇒ left.
	Subset CatSet
	// NLeft and NRight are the record counts on each side.
	NLeft, NRight int64
	// Valid is false when no split exists (e.g. a single distinct value).
	Valid bool
}

// Better reports whether c is strictly preferable to o under the
// deterministic total order used everywhere: lower gini wins; ties break by
// lower attribute index, then (same attribute, continuous) lower threshold.
// An invalid candidate never beats a valid one.
func (c Candidate) Better(o Candidate) bool {
	if !c.Valid {
		return false
	}
	if !o.Valid {
		return true
	}
	if c.Gini != o.Gini {
		return c.Gini < o.Gini
	}
	if c.Attr != o.Attr {
		return c.Attr < o.Attr
	}
	if c.Kind == dataset.Continuous && o.Kind == dataset.Continuous {
		return c.Threshold < o.Threshold
	}
	return false
}

// GoesLeft applies the candidate's test to an attribute-list record value.
func (c Candidate) GoesLeft(value float64) bool {
	if c.Kind == dataset.Continuous {
		return value < c.Threshold
	}
	return c.Subset.Has(int32(value))
}

// ContEval streams a sorted continuous attribute list and finds the best
// mid-point split. It maintains the Cbelow histogram; Cabove is derived from
// the leaf's total histogram.
type ContEval struct {
	attr    int
	total   []int64
	n       int64
	below   []int64
	above   []int64 // scratch, recomputed per candidate
	nBelow  int64
	prev    float64
	started bool
	best    Candidate
}

// NewContEval creates an evaluator for attribute attr at a leaf whose class
// histogram is total (copied).
func NewContEval(attr int, total []int64) *ContEval {
	e := &ContEval{
		attr:  attr,
		total: append([]int64(nil), total...),
		below: make([]int64, len(total)),
		above: make([]int64, len(total)),
		best:  Candidate{Attr: attr, Kind: dataset.Continuous, Gini: math.Inf(1)},
	}
	for _, c := range e.total {
		e.n += c
	}
	return e
}

// NewContEvalSeeded creates an evaluator for one contiguous chunk of a
// sorted attribute list, used by the record-data-parallel scheme: below is
// the class histogram of all records before the chunk, and prev/started
// describe the last value before the chunk so the boundary mid-point is
// evaluated. total is the whole leaf's class histogram.
func NewContEvalSeeded(attr int, total, below []int64, prev float64, started bool) *ContEval {
	e := NewContEval(attr, total)
	copy(e.below, below)
	for _, c := range below {
		e.nBelow += c
	}
	e.prev = prev
	e.started = started
	return e
}

// Push consumes the next record (records must arrive in sorted order).
func (e *ContEval) Push(r alist.Record) {
	if e.started && r.Value != e.prev {
		e.consider((e.prev + r.Value) / 2)
	}
	e.below[r.Class]++
	e.nBelow++
	e.prev = r.Value
	e.started = true
}

// PushChunk consumes a chunk of records.
func (e *ContEval) PushChunk(recs []alist.Record) {
	for i := range recs {
		e.Push(recs[i])
	}
}

func (e *ContEval) consider(threshold float64) {
	nl := e.nBelow
	nr := e.n - nl
	if nl == 0 || nr == 0 {
		return
	}
	for j := range e.above {
		e.above[j] = e.total[j] - e.below[j]
	}
	g := SplitGini(e.below, e.above, nl, nr)
	cand := Candidate{
		Attr: e.attr, Kind: dataset.Continuous, Gini: g,
		Threshold: threshold, NLeft: nl, NRight: nr, Valid: true,
	}
	if cand.Better(e.best) {
		e.best = cand
	}
}

// Finish returns the best candidate found. If the list had fewer than two
// distinct values the candidate is invalid.
func (e *ContEval) Finish() Candidate {
	return e.best
}

// MaxEnumCard is the default cardinality threshold above which categorical
// split search switches from exhaustive subset enumeration to the greedy
// subsetting algorithm (SPRINT's "if the cardinality is too large a greedy
// subsetting algorithm is used").
const MaxEnumCard = 10

// CatEval streams a categorical attribute list, accumulating the
// class×category count matrix, then searches subsets.
type CatEval struct {
	attr     int
	card     int
	nclasses int
	counts   []int64 // counts[class*card+cat]
	catTot   []int64 // per-category totals
	total    []int64
	n        int64
	maxEnum  int
}

// NewCatEval creates an evaluator for categorical attribute attr with domain
// cardinality card at a leaf whose class histogram is total. maxEnum
// overrides the enumeration threshold when > 0.
func NewCatEval(attr, card int, total []int64, maxEnum int) *CatEval {
	if maxEnum <= 0 {
		maxEnum = MaxEnumCard
	}
	e := &CatEval{
		attr: attr, card: card, nclasses: len(total),
		counts:  make([]int64, len(total)*card),
		catTot:  make([]int64, card),
		total:   append([]int64(nil), total...),
		maxEnum: maxEnum,
	}
	for _, c := range e.total {
		e.n += c
	}
	return e
}

// Push consumes the next record (order irrelevant for categorical lists).
func (e *CatEval) Push(r alist.Record) {
	cat := int32(r.Value)
	e.counts[int(r.Class)*e.card+int(cat)]++
	e.catTot[cat]++
}

// PushChunk consumes a chunk of records.
func (e *CatEval) PushChunk(recs []alist.Record) {
	for i := range recs {
		e.Push(recs[i])
	}
}

// Merge folds another evaluator's counts into this one; used by the
// record-data-parallel scheme where each processor gathers the count matrix
// of its own chunk. Both evaluators must describe the same attribute.
func (e *CatEval) Merge(o *CatEval) {
	for i := range e.counts {
		e.counts[i] += o.counts[i]
	}
	for i := range e.catTot {
		e.catTot[i] += o.catTot[i]
	}
}

// Finish searches for the best subset split over the gathered counts.
func (e *CatEval) Finish() Candidate {
	// Gather the categories actually present at this leaf; absent
	// categories are irrelevant to the gini of this node and are left on
	// the right branch deterministically.
	present := make([]int32, 0, e.card)
	for c := 0; c < e.card; c++ {
		if e.catTot[c] > 0 {
			present = append(present, int32(c))
		}
	}
	invalid := Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: math.Inf(1)}
	if len(present) < 2 {
		return invalid
	}
	if len(present) <= e.maxEnum {
		return e.enumerate(present)
	}
	return e.greedy(present)
}

// evalSubset computes the split gini of putting exactly the categories in
// mask (over the present list) on the left.
func (e *CatEval) evalSubset(present []int32, member func(int) bool) (g float64, nl, nr int64, left, right []int64) {
	left = make([]int64, e.nclasses)
	right = make([]int64, e.nclasses)
	copy(right, e.total)
	for i, cat := range present {
		if !member(i) {
			continue
		}
		for j := 0; j < e.nclasses; j++ {
			c := e.counts[j*e.card+int(cat)]
			left[j] += c
			right[j] -= c
		}
		nl += e.catTot[cat]
	}
	nr = e.n - nl
	return SplitGini(left, right, nl, nr), nl, nr, left, right
}

// enumerate tries every distinct bipartition of the present categories.
// Masks with bit 0 set cover each unordered bipartition exactly once.
func (e *CatEval) enumerate(present []int32) Candidate {
	best := Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: math.Inf(1)}
	m := len(present)
	for mask := uint64(1); mask < 1<<uint(m); mask += 2 { // bit 0 always set
		if mask == (1<<uint(m))-1 {
			continue // all present on the left ⇒ empty right
		}
		g, nl, nr, _, _ := e.evalSubset(present, func(i int) bool { return mask&(1<<uint(i)) != 0 })
		if nl == 0 || nr == 0 {
			continue
		}
		cand := Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: g,
			NLeft: nl, NRight: nr, Valid: true}
		// Materializing the subset for every mask would be wasteful; only
		// build it when the candidate wins. Ties break toward the earlier
		// (smaller) mask because Better is strict.
		if cand.Better(best) {
			set := NewCatSet(e.card)
			for i, cat := range present {
				if mask&(1<<uint(i)) != 0 {
					set.Add(cat)
				}
			}
			cand.Subset = set
			best = cand
		}
	}
	return best
}

// greedy grows the left subset one category at a time, always adding the
// category that most reduces the split gini, stopping when no addition
// improves it (SPRINT's greedy subsetting).
func (e *CatEval) greedy(present []int32) Candidate {
	inLeft := make([]bool, len(present))
	bestGini := math.Inf(1)
	var bestCand Candidate
	for {
		improved := -1
		roundBest := bestGini
		var roundCand Candidate
		for i := range present {
			if inLeft[i] {
				continue
			}
			inLeft[i] = true
			g, nl, nr, _, _ := e.evalSubset(present, func(k int) bool { return inLeft[k] })
			inLeft[i] = false
			if nl == 0 || nr == 0 {
				continue
			}
			if g < roundBest {
				roundBest = g
				improved = i
				roundCand = Candidate{Attr: e.attr, Kind: dataset.Categorical,
					Gini: g, NLeft: nl, NRight: nr, Valid: true}
			}
		}
		if improved < 0 {
			break
		}
		inLeft[improved] = true
		bestGini = roundBest
		set := NewCatSet(e.card)
		for i, cat := range present {
			if inLeft[i] {
				set.Add(cat)
			}
		}
		roundCand.Subset = set
		bestCand = roundCand
	}
	if !bestCand.Valid {
		return Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: math.Inf(1)}
	}
	return bestCand
}
