// Package split implements gini-index split evaluation over attribute
// lists, the E step of the paper's E/W/S decomposition.
//
// For a continuous attribute the candidate split points are the mid-points
// between every two consecutive distinct values in the (sorted) attribute
// list; evaluation streams the list once, maintaining Cbelow/Cabove class
// histograms. For a categorical attribute a class×category count matrix is
// gathered in one pass and then either all subsets are enumerated (small
// cardinality) or a greedy subsetting search is used (paper §2.2), exactly
// as in SPRINT.
package split

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/alist"
	"repro/internal/dataset"
)

// Gini returns the gini index of a class histogram with total n:
// gini = 1 - Σ (c_j/n)². By convention the gini of an empty set is 0.
func Gini(counts []int64, n int64) float64 {
	if n == 0 {
		return 0
	}
	var s float64
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		s += p * p
	}
	return 1 - s
}

// SplitGini returns the weighted gini of a binary partition:
// (nl/n)·gini(left) + (nr/n)·gini(right).
func SplitGini(left, right []int64, nl, nr int64) float64 {
	n := nl + nr
	if n == 0 {
		return 0
	}
	return float64(nl)/float64(n)*Gini(left, nl) + float64(nr)/float64(n)*Gini(right, nr)
}

// CatSet is a set of category codes, used as the left-branch subset of a
// categorical split test (value ∈ set ⇒ left).
type CatSet struct {
	bits []uint64
	card int
}

// NewCatSet creates an empty set over a domain of card categories.
func NewCatSet(card int) CatSet {
	return CatSet{bits: make([]uint64, (card+63)/64), card: card}
}

// Add inserts a category code.
func (s *CatSet) Add(code int32) { s.bits[code/64] |= 1 << uint(code%64) }

// Remove deletes a category code.
func (s *CatSet) Remove(code int32) { s.bits[code/64] &^= 1 << uint(code%64) }

// Has reports membership of a category code.
func (s CatSet) Has(code int32) bool {
	i := int(code / 64)
	if i < 0 || i >= len(s.bits) {
		return false
	}
	return s.bits[i]&(1<<uint(code%64)) != 0
}

// Card returns the domain cardinality the set was created with.
func (s CatSet) Card() int { return s.card }

// Count returns the number of categories in the set.
func (s CatSet) Count() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Clone returns a copy of the set.
func (s CatSet) Clone() CatSet {
	return CatSet{bits: append([]uint64(nil), s.bits...), card: s.card}
}

// Equal reports whether two sets contain the same codes.
func (s CatSet) Equal(o CatSet) bool {
	if len(s.bits) != len(o.bits) {
		return false
	}
	for i := range s.bits {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// String renders the set as {c0,c3,...}.
func (s CatSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for c := int32(0); int(c) < s.card; c++ {
		if s.Has(c) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%d", c)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Candidate describes the best split found for one attribute at one leaf.
type Candidate struct {
	// Attr is the attribute index the candidate splits on.
	Attr int
	// Kind is the attribute kind.
	Kind dataset.Kind
	// Gini is the weighted gini index of the split; lower is better.
	Gini float64
	// Threshold is the continuous split point: value < Threshold ⇒ left.
	Threshold float64
	// Subset is the categorical left-branch subset: value ∈ Subset ⇒ left.
	Subset CatSet
	// NLeft and NRight are the record counts on each side.
	NLeft, NRight int64
	// Valid is false when no split exists (e.g. a single distinct value).
	Valid bool
}

// Better reports whether c is strictly preferable to o under the
// deterministic total order used everywhere: lower gini wins; ties break by
// lower attribute index, then (same attribute, continuous) lower threshold.
// An invalid candidate never beats a valid one.
func (c Candidate) Better(o Candidate) bool {
	if !c.Valid {
		return false
	}
	if !o.Valid {
		return true
	}
	if c.Gini != o.Gini {
		return c.Gini < o.Gini
	}
	if c.Attr != o.Attr {
		return c.Attr < o.Attr
	}
	if c.Kind == dataset.Continuous && o.Kind == dataset.Continuous {
		return c.Threshold < o.Threshold
	}
	return false
}

// GoesLeft applies the candidate's test to an attribute-list record value.
func (c Candidate) GoesLeft(value float64) bool {
	if c.Kind == dataset.Continuous {
		return value < c.Threshold
	}
	return c.Subset.Has(int32(value))
}

// ContEval streams a sorted continuous attribute list and finds the best
// mid-point split. It maintains the Cbelow histogram; Cabove is derived from
// the leaf's total histogram.
type ContEval struct {
	attr    int
	total   []int64
	n       int64
	below   []int64
	above   []int64 // scratch, recomputed per candidate
	nBelow  int64
	prev    float64
	started bool
	best    Candidate
}

// NewContEval creates an evaluator for attribute attr at a leaf whose class
// histogram is total (copied).
func NewContEval(attr int, total []int64) *ContEval {
	e := &ContEval{}
	e.Reset(attr, total)
	return e
}

// Reset re-arms the evaluator for a new (leaf, attribute) unit, reusing its
// histogram buffers. A zero ContEval may be Reset directly, so per-worker
// scratch can embed one by value and evaluate every unit allocation-free.
func (e *ContEval) Reset(attr int, total []int64) {
	e.attr = attr
	e.total = append(e.total[:0], total...)
	e.below = resizeZero(e.below, len(total))
	e.above = resizeZero(e.above, len(total))
	e.n, e.nBelow = 0, 0
	e.prev, e.started = 0, false
	e.best = Candidate{Attr: attr, Kind: dataset.Continuous, Gini: math.Inf(1)}
	for _, c := range e.total {
		e.n += c
	}
}

// NewContEvalSeeded creates an evaluator for one contiguous chunk of a
// sorted attribute list, used by the record-data-parallel scheme: below is
// the class histogram of all records before the chunk, and prev/started
// describe the last value before the chunk so the boundary mid-point is
// evaluated. total is the whole leaf's class histogram.
func NewContEvalSeeded(attr int, total, below []int64, prev float64, started bool) *ContEval {
	e := &ContEval{}
	e.ResetSeeded(attr, total, below, prev, started)
	return e
}

// ResetSeeded is Reset for the record-data-parallel chunk form; see
// NewContEvalSeeded.
func (e *ContEval) ResetSeeded(attr int, total, below []int64, prev float64, started bool) {
	e.Reset(attr, total)
	copy(e.below, below)
	for _, c := range below {
		e.nBelow += c
	}
	e.prev = prev
	e.started = started
}

// Push consumes the next record (records must arrive in sorted order).
func (e *ContEval) Push(r alist.Record) {
	if e.started && r.Value != e.prev {
		e.consider((e.prev + r.Value) / 2)
	}
	e.below[r.Class]++
	e.nBelow++
	e.prev = r.Value
	e.started = true
}

// PushChunk consumes a chunk of records. The loop body repeats Push inline:
// the E scan spends most of its cycles here, and keeping the per-record path
// call-free is measurably faster than dispatching Push per record.
func (e *ContEval) PushChunk(recs []alist.Record) {
	for i := range recs {
		r := recs[i]
		if e.started && r.Value != e.prev {
			e.consider((e.prev + r.Value) / 2)
		}
		e.below[r.Class]++
		e.nBelow++
		e.prev = r.Value
		e.started = true
	}
}

// resizeZero returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resizeZero(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (e *ContEval) consider(threshold float64) {
	nl := e.nBelow
	nr := e.n - nl
	if nl == 0 || nr == 0 {
		return
	}
	for j := range e.above {
		e.above[j] = e.total[j] - e.below[j]
	}
	g := SplitGini(e.below, e.above, nl, nr)
	// Thresholds arrive in increasing order, so under the deterministic
	// Better order (lower gini, then lower threshold) a later candidate only
	// wins with strictly lower gini; updating fields in place avoids copying
	// a full Candidate per distinct value.
	if e.best.Valid && g >= e.best.Gini {
		return
	}
	e.best.Gini = g
	e.best.Threshold = threshold
	e.best.NLeft, e.best.NRight = nl, nr
	e.best.Valid = true
}

// Finish returns the best candidate found. If the list had fewer than two
// distinct values the candidate is invalid.
func (e *ContEval) Finish() Candidate {
	return e.best
}

// MaxEnumCard is the default cardinality threshold above which categorical
// split search switches from exhaustive subset enumeration to the greedy
// subsetting algorithm (SPRINT's "if the cardinality is too large a greedy
// subsetting algorithm is used").
const MaxEnumCard = 10

// CatEval streams a categorical attribute list, accumulating the
// class×category count matrix, then searches subsets.
type CatEval struct {
	attr     int
	card     int
	nclasses int
	counts   []int64 // counts[class*card+cat]
	catTot   []int64 // per-category totals
	total    []int64
	n        int64
	maxEnum  int

	// Reusable subset-search scratch, so Finish allocates only when a new
	// best subset is materialized.
	present []int32
	left    []int64
	right   []int64
	inLeft  []bool
}

// NewCatEval creates an evaluator for categorical attribute attr with domain
// cardinality card at a leaf whose class histogram is total. maxEnum
// overrides the enumeration threshold when > 0.
func NewCatEval(attr, card int, total []int64, maxEnum int) *CatEval {
	e := &CatEval{}
	e.Reset(attr, card, total, maxEnum)
	return e
}

// Reset re-arms the evaluator for a new (leaf, attribute) unit, reusing the
// count matrix when the new cardinality and class count fit the old buffers.
// A zero CatEval may be Reset directly.
func (e *CatEval) Reset(attr, card int, total []int64, maxEnum int) {
	if maxEnum <= 0 {
		maxEnum = MaxEnumCard
	}
	e.attr, e.card, e.nclasses, e.maxEnum = attr, card, len(total), maxEnum
	e.counts = resizeZero(e.counts, len(total)*card)
	e.catTot = resizeZero(e.catTot, card)
	e.total = append(e.total[:0], total...)
	e.n = 0
	for _, c := range e.total {
		e.n += c
	}
}

// Push consumes the next record (order irrelevant for categorical lists).
func (e *CatEval) Push(r alist.Record) {
	cat := int32(r.Value)
	e.counts[int(r.Class)*e.card+int(cat)]++
	e.catTot[cat]++
}

// PushChunk consumes a chunk of records (per-record path kept inline, as in
// ContEval.PushChunk).
func (e *CatEval) PushChunk(recs []alist.Record) {
	for i := range recs {
		cat := int(int32(recs[i].Value))
		e.counts[int(recs[i].Class)*e.card+cat]++
		e.catTot[cat]++
	}
}

// AddCount folds n pre-aggregated records of (class, cat) into the count
// matrix. The HIST engine uses it to feed merged histogram cells instead of
// streaming individual records; Finish then runs the same subset search.
func (e *CatEval) AddCount(class, cat int, n int64) {
	if n == 0 {
		return
	}
	e.counts[class*e.card+cat] += n
	e.catTot[cat] += n
}

// Merge folds another evaluator's counts into this one; used by the
// record-data-parallel scheme where each processor gathers the count matrix
// of its own chunk. Both evaluators must describe the same attribute.
func (e *CatEval) Merge(o *CatEval) {
	for i := range e.counts {
		e.counts[i] += o.counts[i]
	}
	for i := range e.catTot {
		e.catTot[i] += o.catTot[i]
	}
}

// Finish searches for the best subset split over the gathered counts.
func (e *CatEval) Finish() Candidate {
	// Gather the categories actually present at this leaf; absent
	// categories are irrelevant to the gini of this node and are left on
	// the right branch deterministically.
	if cap(e.present) < e.card {
		e.present = make([]int32, 0, e.card)
	}
	present := e.present[:0]
	for c := 0; c < e.card; c++ {
		if e.catTot[c] > 0 {
			present = append(present, int32(c))
		}
	}
	e.present = present
	invalid := Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: math.Inf(1)}
	if len(present) < 2 {
		return invalid
	}
	if len(present) <= e.maxEnum {
		return e.enumerate(present)
	}
	return e.greedy(present)
}

// evalSubset computes the split gini of putting exactly the categories at
// present indices i with member(i) on the left. The left/right histograms
// live in the evaluator's scratch, so repeated evaluations (2^m masks, or
// m² greedy trials) allocate nothing. member is an index predicate, not a
// closure allocated per mask: callers pass a mask or the inLeft scratch via
// the two wrappers below.
func (e *CatEval) evalSubset(present []int32, isMask bool, mask uint64) (g float64, nl, nr int64) {
	e.left = resizeZero(e.left, e.nclasses)
	if cap(e.right) < e.nclasses {
		e.right = make([]int64, e.nclasses)
	}
	left, right := e.left, e.right[:e.nclasses]
	copy(right, e.total)
	for i, cat := range present {
		if isMask {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
		} else if !e.inLeft[i] {
			continue
		}
		for j := 0; j < e.nclasses; j++ {
			c := e.counts[j*e.card+int(cat)]
			left[j] += c
			right[j] -= c
		}
		nl += e.catTot[cat]
	}
	nr = e.n - nl
	return SplitGini(left, right, nl, nr), nl, nr
}

// enumerate tries every distinct bipartition of the present categories.
// Masks with bit 0 set cover each unordered bipartition exactly once.
func (e *CatEval) enumerate(present []int32) Candidate {
	best := Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: math.Inf(1)}
	m := len(present)
	for mask := uint64(1); mask < 1<<uint(m); mask += 2 { // bit 0 always set
		if mask == (1<<uint(m))-1 {
			continue // all present on the left ⇒ empty right
		}
		g, nl, nr := e.evalSubset(present, true, mask)
		if nl == 0 || nr == 0 {
			continue
		}
		// Ties break toward the earlier (smaller) mask because Better is
		// strict, so a later mask only wins with strictly lower gini.
		// Materializing the subset for every mask would be wasteful; only
		// build it when the candidate wins.
		if best.Valid && g >= best.Gini {
			continue
		}
		set := NewCatSet(e.card)
		for i, cat := range present {
			if mask&(1<<uint(i)) != 0 {
				set.Add(cat)
			}
		}
		best.Gini, best.Subset = g, set
		best.NLeft, best.NRight = nl, nr
		best.Valid = true
	}
	return best
}

// greedy grows the left subset one category at a time, always adding the
// category that most reduces the split gini, stopping when no addition
// improves it (SPRINT's greedy subsetting).
func (e *CatEval) greedy(present []int32) Candidate {
	if cap(e.inLeft) < len(present) {
		e.inLeft = make([]bool, len(present))
	}
	inLeft := e.inLeft[:len(present)]
	for i := range inLeft {
		inLeft[i] = false
	}
	e.inLeft = inLeft
	bestGini := math.Inf(1)
	var bestCand Candidate
	for {
		improved := -1
		roundBest := bestGini
		var roundCand Candidate
		for i := range present {
			if inLeft[i] {
				continue
			}
			inLeft[i] = true
			g, nl, nr := e.evalSubset(present, false, 0)
			inLeft[i] = false
			if nl == 0 || nr == 0 {
				continue
			}
			if g < roundBest {
				roundBest = g
				improved = i
				roundCand = Candidate{Attr: e.attr, Kind: dataset.Categorical,
					Gini: g, NLeft: nl, NRight: nr, Valid: true}
			}
		}
		if improved < 0 {
			break
		}
		inLeft[improved] = true
		bestGini = roundBest
		set := NewCatSet(e.card)
		for i, cat := range present {
			if inLeft[i] {
				set.Add(cat)
			}
		}
		roundCand.Subset = set
		bestCand = roundCand
	}
	if !bestCand.Valid {
		return Candidate{Attr: e.attr, Kind: dataset.Categorical, Gini: math.Inf(1)}
	}
	return bestCand
}
