package ingest

import (
	"fmt"
	"time"

	parclass "repro"
	"repro/internal/dataset"
)

// Outcome is a retrain step's decision, as surfaced in /v1/metrics.
type Outcome string

const (
	// OutcomeSkipped means the window held too few rows to train on.
	OutcomeSkipped Outcome = "skipped"
	// OutcomeRejected means a candidate was trained but did not beat the
	// serving model on the holdout slice — the tripwire kept the old model.
	OutcomeRejected Outcome = "rejected"
	// OutcomeSwapped means the candidate beat the serving model and should
	// replace it.
	OutcomeSwapped Outcome = "swapped"
	// OutcomeStale means the candidate won its holdout but was NOT
	// published: by swap time the serving model's schema no longer matched
	// the window the candidate trained on (a concurrent schema-changing hot
	// swap landed mid-retrain), so installing it would have served a model
	// validated against a schema the stack no longer speaks.
	OutcomeStale Outcome = "stale"
)

// RetrainConfig parameterizes one retrain-with-tripwire step.
type RetrainConfig struct {
	// MinRows skips retraining while the window holds fewer rows
	// (default 500).
	MinRows int
	// HoldoutEvery sends every k-th window row to the holdout slice that
	// arbitrates the swap (default 5, a 20% holdout). Minimum 2.
	HoldoutEvery int
	// Margin is how far candidate accuracy must exceed serving accuracy
	// on the holdout before a swap fires (default 0: any strict
	// improvement wins; ties keep the serving model).
	Margin float64
	// Options configures the candidate build. Nil selects the HIST engine
	// with default binning — the streaming-friendly engine whose
	// quantile-sketch bins summarize the window in one pass.
	Options *parclass.Options
}

func (c RetrainConfig) withDefaults() RetrainConfig {
	if c.MinRows <= 0 {
		c.MinRows = 500
	}
	if c.HoldoutEvery < 2 {
		c.HoldoutEvery = 5
	}
	if c.Options == nil {
		c.Options = &parclass.Options{Algorithm: parclass.Hist}
	}
	return c
}

// Result reports what one retrain step did.
type Result struct {
	Outcome      Outcome
	WindowRows   int     // rows snapshotted from the window
	TrainRows    int     // rows the candidate trained on
	HoldoutRows  int     // rows arbitrating the swap
	CandidateAcc float64 // candidate accuracy on the holdout
	ServingAcc   float64 // serving-model accuracy on the same holdout
	TrainSecs    float64 // candidate build wall time
	// Candidate is the newly trained model when Outcome is OutcomeSwapped,
	// nil otherwise. The caller owns loading it into the registry.
	Candidate parclass.Predictor
}

// Retrain snapshots the window, trains a candidate on the train slice, and
// compares candidate vs serving accuracy on the held-out slice. It never
// swaps anything itself: when the candidate wins, it is returned in
// Result.Candidate for the caller to load. The serving model must share
// the window's schema (rows were validated against it on ingest).
func Retrain(w *Window, serving parclass.Predictor, cfg RetrainConfig) (Result, error) {
	cfg = cfg.withDefaults()
	trainTbl, holdTbl := w.Snapshot(cfg.HoldoutEvery)
	res := Result{
		Outcome:     OutcomeSkipped,
		WindowRows:  trainTbl.NumTuples() + holdTbl.NumTuples(),
		TrainRows:   trainTbl.NumTuples(),
		HoldoutRows: holdTbl.NumTuples(),
	}
	if res.WindowRows < cfg.MinRows || res.HoldoutRows == 0 {
		return res, nil
	}
	start := time.Now()
	cand, err := trainCandidate(trainTbl, *cfg.Options)
	if err != nil {
		return res, fmt.Errorf("ingest: retrain: %w", err)
	}
	res.TrainSecs = time.Since(start).Seconds()
	hold := parclass.DatasetFromTable(holdTbl)
	res.CandidateAcc = cand.Accuracy(hold)
	res.ServingAcc = serving.Accuracy(hold)
	if res.CandidateAcc > res.ServingAcc+cfg.Margin {
		res.Outcome = OutcomeSwapped
		res.Candidate = cand
	} else {
		res.Outcome = OutcomeRejected
	}
	return res, nil
}

// trainCandidate builds a single tree or a forest per opt.Trees.
func trainCandidate(tbl *dataset.Table, opt parclass.Options) (parclass.Predictor, error) {
	ds := parclass.DatasetFromTable(tbl)
	if opt.Trees > 1 {
		return parclass.TrainForest(ds, opt)
	}
	return parclass.Train(ds, opt)
}
