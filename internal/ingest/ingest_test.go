package ingest

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	parclass "repro"
	"repro/internal/dataset"
	"repro/internal/synth"
)

// testSchema is a tiny mixed schema: one continuous, one categorical.
func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "color", Kind: dataset.Categorical, Categories: []string{"red", "green"}},
		},
		Classes: []string{"A", "B"},
	}
}

func mustWindow(t *testing.T, capacity int) *Window {
	t.Helper()
	w, err := NewWindow(testSchema(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWindowRejectsBadInput(t *testing.T) {
	if _, err := NewWindow(testSchema(), 0); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := NewWindow(&dataset.Schema{}, 10); err == nil {
		t.Error("empty schema should fail")
	}
}

func TestDecodeValidates(t *testing.T) {
	w := mustWindow(t, 4)
	if _, err := w.Decode([]string{"1.5"}, "A"); err == nil {
		t.Error("short row should fail")
	}
	if _, err := w.Decode([]string{"zzz", "red"}, "A"); err == nil {
		t.Error("non-numeric continuous should fail")
	}
	if _, err := w.Decode([]string{"1.5", "blue"}, "A"); err == nil {
		t.Error("unknown category should fail")
	}
	if _, err := w.Decode([]string{"1.5", "red"}, "C"); err == nil {
		t.Error("unknown class should fail")
	}
	tu, err := w.Decode([]string{" 1.5 ", "green"}, "B")
	if err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if tu.Cont[0] != 1.5 || tu.Cat[1] != 1 || tu.Class != 1 {
		t.Fatalf("decoded %+v", tu)
	}
}

// appendN appends rows with x = start..start+n-1 so arrival order is
// recoverable from the snapshot.
func appendN(t *testing.T, w *Window, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tu, err := w.Decode([]string{strconv.Itoa(start + i), "red"}, "A")
		if err != nil {
			t.Fatal(err)
		}
		w.Append(tu)
	}
}

func TestRingWrapKeepsNewestInOrder(t *testing.T) {
	w := mustWindow(t, 5)
	appendN(t, w, 0, 8) // rows 0..7 into a 5-slot ring → 3,4,5,6,7 survive
	if w.Size() != 5 || w.Total() != 8 {
		t.Fatalf("size %d total %d", w.Size(), w.Total())
	}
	train, holdout := w.Snapshot(0)
	if holdout.NumTuples() != 0 {
		t.Fatalf("holdoutEvery<2 produced %d holdout rows", holdout.NumTuples())
	}
	if train.NumTuples() != 5 {
		t.Fatalf("snapshot rows %d", train.NumTuples())
	}
	for i := 0; i < 5; i++ {
		if got := train.ContValue(0, i); got != float64(3+i) {
			t.Fatalf("snapshot row %d = %v, want %v (oldest-first order)", i, got, float64(3+i))
		}
	}
}

func TestSnapshotBeforeWrap(t *testing.T) {
	w := mustWindow(t, 10)
	appendN(t, w, 0, 4)
	train, _ := w.Snapshot(0)
	if train.NumTuples() != 4 {
		t.Fatalf("rows %d", train.NumTuples())
	}
	for i := 0; i < 4; i++ {
		if train.ContValue(0, i) != float64(i) {
			t.Fatalf("row %d = %v", i, train.ContValue(0, i))
		}
	}
}

func TestSnapshotHoldoutSplit(t *testing.T) {
	w := mustWindow(t, 20)
	appendN(t, w, 0, 20)
	train, holdout := w.Snapshot(5) // every 5th row (4,9,14,19) held out
	if train.NumTuples() != 16 || holdout.NumTuples() != 4 {
		t.Fatalf("train %d holdout %d", train.NumTuples(), holdout.NumTuples())
	}
	for i := 0; i < 4; i++ {
		if got := holdout.ContValue(0, i); got != float64(5*i+4) {
			t.Fatalf("holdout row %d = %v, want %v", i, got, float64(5*i+4))
		}
	}
	// Snapshot is a copy: later appends must not disturb it.
	appendN(t, w, 100, 20)
	if train.ContValue(0, 0) != 0 {
		t.Fatal("snapshot aliased the ring")
	}
}

func TestConcurrentAppendAndSnapshot(t *testing.T) {
	w := mustWindow(t, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tus := make([]dataset.Tuple, 0, 8)
			for i := 0; i < 200; i++ {
				tu, err := w.Decode([]string{fmt.Sprint(g*1000 + i), "green"}, "B")
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					w.Append(tu)
				} else {
					tus = append(tus[:0], tu)
					w.AppendRows(tus)
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		train, holdout := w.Snapshot(4)
		if n := train.NumTuples() + holdout.NumTuples(); n > 64 {
			t.Fatalf("snapshot has %d rows, capacity 64", n)
		}
	}
	wg.Wait()
	if w.Total() != 800 {
		t.Fatalf("total %d, want 800", w.Total())
	}
}

// fillFromSynth ingests n rows of a synthetic stream into w through the
// string decode path, like /v1/ingest would.
func fillFromSynth(t *testing.T, w *Window, cfg synth.Config) {
	t.Helper()
	st, err := synth.NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]string, len(st.Schema().Attrs))
	for {
		tu, ok := st.Next()
		if !ok {
			return
		}
		for a, attr := range st.Schema().Attrs {
			if attr.Kind == dataset.Continuous {
				vals[a] = strconv.FormatFloat(tu.Cont[a], 'g', -1, 64)
			} else {
				vals[a] = attr.Categories[tu.Cat[a]]
			}
		}
		dec, err := w.Decode(vals, st.Schema().Classes[tu.Class])
		if err != nil {
			t.Fatal(err)
		}
		w.Append(dec)
	}
}

func trainOn(t *testing.T, cfg synth.Config, opt parclass.Options) parclass.Predictor {
	t.Helper()
	tbl, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := parclass.Train(parclass.DatasetFromTable(tbl), opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRetrainSkipsSmallWindow(t *testing.T) {
	stream := synth.Config{Function: 1, Tuples: 100, Seed: 3}
	w, err := NewWindow(synth.Schema(9), 1000)
	if err != nil {
		t.Fatal(err)
	}
	fillFromSynth(t, w, stream)
	serving := trainOn(t, synth.Config{Function: 1, Tuples: 500, Seed: 4}, parclass.Options{})
	res, err := Retrain(w, serving, RetrainConfig{MinRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeSkipped || res.Candidate != nil {
		t.Fatalf("outcome %q candidate %v, want skip", res.Outcome, res.Candidate)
	}
	if res.WindowRows != 100 {
		t.Fatalf("window rows %d", res.WindowRows)
	}
}

func TestRetrainTripwireRejectsWorseCandidate(t *testing.T) {
	// Serving model: a full tree for F7. Candidate: depth-1 stump on the
	// same distribution — strictly worse, so the tripwire must hold.
	w, err := NewWindow(synth.Schema(9), 4000)
	if err != nil {
		t.Fatal(err)
	}
	fillFromSynth(t, w, synth.Config{Function: 7, Tuples: 3000, Seed: 11})
	serving := trainOn(t, synth.Config{Function: 7, Tuples: 3000, Seed: 12}, parclass.Options{})
	res, err := Retrain(w, serving, RetrainConfig{
		MinRows: 100,
		Options: &parclass.Options{Algorithm: parclass.Hist, MaxDepth: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRejected {
		t.Fatalf("outcome %q (cand %.3f serv %.3f), want rejected",
			res.Outcome, res.CandidateAcc, res.ServingAcc)
	}
	if res.Candidate != nil {
		t.Fatal("rejected retrain still returned a candidate")
	}
	if res.CandidateAcc >= res.ServingAcc {
		t.Fatalf("stump %.3f should score below full tree %.3f", res.CandidateAcc, res.ServingAcc)
	}
}

func TestRetrainTripwireAcceptsBetterCandidate(t *testing.T) {
	// Serving model is stale: trained on F1, while the window holds F7
	// rows. The candidate retrains on the window and must win the swap.
	w, err := NewWindow(synth.Schema(9), 4000)
	if err != nil {
		t.Fatal(err)
	}
	fillFromSynth(t, w, synth.Config{Function: 7, Tuples: 3000, Seed: 21})
	serving := trainOn(t, synth.Config{Function: 1, Tuples: 3000, Seed: 22}, parclass.Options{})
	res, err := Retrain(w, serving, RetrainConfig{MinRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeSwapped || res.Candidate == nil {
		t.Fatalf("outcome %q (cand %.3f serv %.3f), want swapped",
			res.Outcome, res.CandidateAcc, res.ServingAcc)
	}
	if res.TrainRows+res.HoldoutRows != res.WindowRows {
		t.Fatalf("rows don't add up: %d + %d != %d", res.TrainRows, res.HoldoutRows, res.WindowRows)
	}
	// The winning candidate really is better on fresh F7 data too.
	fresh, err := synth.Generate(synth.Config{Function: 7, Tuples: 2000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	ds := parclass.DatasetFromTable(fresh)
	if ca, sa := res.Candidate.Accuracy(ds), serving.Accuracy(ds); ca <= sa {
		t.Fatalf("candidate %.3f not better than stale serving %.3f on fresh drift data", ca, sa)
	}
}

func TestRetrainMarginHoldsNearTies(t *testing.T) {
	// Candidate and serving are both competent F1 models; with a huge
	// margin requirement the swap must not fire even if the candidate
	// edges ahead.
	w, err := NewWindow(synth.Schema(9), 4000)
	if err != nil {
		t.Fatal(err)
	}
	fillFromSynth(t, w, synth.Config{Function: 1, Tuples: 3000, Seed: 31})
	serving := trainOn(t, synth.Config{Function: 1, Tuples: 3000, Seed: 32}, parclass.Options{})
	res, err := Retrain(w, serving, RetrainConfig{MinRows: 100, Margin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRejected {
		t.Fatalf("outcome %q with margin 0.5, want rejected", res.Outcome)
	}
}
