// Package ingest holds the online-learning half of the serving stack: a
// bounded, concurrency-safe window of labeled rows appended by POST
// /v1/ingest, and the retrain-with-tripwire step that periodically rebuilds
// a candidate model on the window and decides whether it may replace the
// serving model. The window is a fixed-capacity ring over columnar storage
// (one slice per attribute, like dataset.Table), so steady-state ingest
// overwrites the oldest rows in place and never allocates.
package ingest

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dataset"
)

// Window is a bounded ring buffer of labeled rows, schema-validated on the
// way in. All methods are safe for concurrent use.
type Window struct {
	schema   *dataset.Schema
	capacity int
	// catCodes[a] maps category name → code for categorical attribute a
	// (nil for continuous); classCodes maps class label → code. Both are
	// precomputed so Decode is map lookups, mirroring parclass.rowDecoder.
	catCodes   []map[string]int32
	classCodes map[string]int32

	mu    sync.Mutex
	cont  [][]float64 // per attribute, len capacity; nil for categorical
	cat   [][]int32   // per attribute, len capacity; nil for continuous
	class []int32     // len capacity
	total int64       // rows ever appended; total % capacity is the next slot
}

// NewWindow builds an empty window bound to schema.
func NewWindow(schema *dataset.Schema, capacity int) (*Window, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ingest: window capacity must be positive, got %d", capacity)
	}
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	w := &Window{
		schema:     schema,
		capacity:   capacity,
		catCodes:   make([]map[string]int32, len(schema.Attrs)),
		classCodes: make(map[string]int32, len(schema.Classes)),
		cont:       make([][]float64, len(schema.Attrs)),
		cat:        make([][]int32, len(schema.Attrs)),
		class:      make([]int32, capacity),
	}
	for a := range schema.Attrs {
		attr := &schema.Attrs[a]
		if attr.Kind == dataset.Continuous {
			w.cont[a] = make([]float64, capacity)
			continue
		}
		w.cat[a] = make([]int32, capacity)
		codes := make(map[string]int32, len(attr.Categories))
		for c, name := range attr.Categories {
			codes[name] = int32(c)
		}
		w.catCodes[a] = codes
	}
	for c, name := range schema.Classes {
		w.classCodes[name] = int32(c)
	}
	return w, nil
}

// Schema returns the schema rows are validated against.
func (w *Window) Schema() *dataset.Schema { return w.schema }

// Capacity returns the fixed row capacity.
func (w *Window) Capacity() int { return w.capacity }

// Size returns the number of rows currently held (≤ Capacity).
func (w *Window) Size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sizeLocked()
}

func (w *Window) sizeLocked() int {
	if w.total < int64(w.capacity) {
		return int(w.total)
	}
	return w.capacity
}

// Total returns the number of rows ever appended, including rows the ring
// has since overwritten.
func (w *Window) Total() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Decode validates one positional row (one string per schema attribute, in
// schema order) plus its class label, returning the encoded tuple. It does
// not touch the ring; pair with Append/AppendRows so a bulk request can be
// validated in full before any row lands (all-or-nothing ingest).
func (w *Window) Decode(vals []string, class string) (dataset.Tuple, error) {
	s := w.schema
	if len(vals) != len(s.Attrs) {
		return dataset.Tuple{}, fmt.Errorf("ingest: got %d values, schema has %d attributes", len(vals), len(s.Attrs))
	}
	tu := dataset.Tuple{
		Cont: make([]float64, len(s.Attrs)),
		Cat:  make([]int32, len(s.Attrs)),
	}
	for a := range s.Attrs {
		attr := &s.Attrs[a]
		raw := vals[a]
		if attr.Kind == dataset.Continuous {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				if v, err = strconv.ParseFloat(strings.TrimSpace(raw), 64); err != nil {
					return dataset.Tuple{}, fmt.Errorf("ingest: attribute %q: %v", attr.Name, err)
				}
			}
			tu.Cont[a] = v
			continue
		}
		code, ok := w.catCodes[a][raw]
		if !ok {
			return dataset.Tuple{}, fmt.Errorf("ingest: attribute %q: unknown category %q", attr.Name, raw)
		}
		tu.Cat[a] = code
	}
	code, ok := w.classCodes[class]
	if !ok {
		return dataset.Tuple{}, fmt.Errorf("ingest: unknown class %q", class)
	}
	tu.Class = code
	return tu, nil
}

// Append adds one decoded tuple, overwriting the oldest row once the ring
// is full. The tuple's codes must be in range (Decode guarantees this).
func (w *Window) Append(tu dataset.Tuple) {
	w.mu.Lock()
	w.appendLocked(tu)
	w.mu.Unlock()
}

// AppendRows adds a batch of decoded tuples under one lock acquisition, so
// a bulk ingest lands contiguously even under concurrent writers.
func (w *Window) AppendRows(tus []dataset.Tuple) {
	w.mu.Lock()
	for _, tu := range tus {
		w.appendLocked(tu)
	}
	w.mu.Unlock()
}

func (w *Window) appendLocked(tu dataset.Tuple) {
	slot := int(w.total % int64(w.capacity))
	for a := range w.schema.Attrs {
		if w.cont[a] != nil {
			w.cont[a][slot] = tu.Cont[a]
		} else {
			w.cat[a][slot] = tu.Cat[a]
		}
	}
	w.class[slot] = tu.Class
	w.total++
}

// Snapshot materializes the window's current rows in arrival order as
// train and holdout tables: every holdoutEvery-th row (the k-1, 2k-1, …
// positions) goes to the holdout, the rest to train. holdoutEvery < 2
// sends every row to train and returns an empty holdout. The returned
// tables are copies; later ingest does not disturb them.
func (w *Window) Snapshot(holdoutEvery int) (train, holdout *dataset.Table) {
	// NewTable only fails on an invalid schema, which NewWindow rejected.
	train, _ = dataset.NewTable(w.schema)
	holdout, _ = dataset.NewTable(w.schema)

	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.sizeLocked()
	start := 0
	if w.total > int64(w.capacity) {
		start = int(w.total % int64(w.capacity)) // oldest surviving row
	}
	train.Grow(n)
	if holdoutEvery >= 2 {
		holdout.Grow(n/holdoutEvery + 1)
	}
	tu := dataset.Tuple{
		Cont: make([]float64, len(w.schema.Attrs)),
		Cat:  make([]int32, len(w.schema.Attrs)),
	}
	for i := 0; i < n; i++ {
		slot := (start + i) % w.capacity
		for a := range w.schema.Attrs {
			if w.cont[a] != nil {
				tu.Cont[a] = w.cont[a][slot]
			} else {
				tu.Cat[a] = w.cat[a][slot]
			}
		}
		tu.Class = w.class[slot]
		if holdoutEvery >= 2 && i%holdoutEvery == holdoutEvery-1 {
			holdout.AppendFast(tu)
		} else {
			train.AppendFast(tu)
		}
	}
	return train, holdout
}
