package flat

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/tree"
)

// soaBlock packs tuples into the row-major SoA buffers ClassifyRange reads
// (the same layout the batch decode paths produce).
func soaBlock(tus []dataset.Tuple, nattr int) (cont []float64, cat []int32) {
	cont = make([]float64, len(tus)*nattr)
	cat = make([]int32, len(tus)*nattr)
	for i, tu := range tus {
		copy(cont[i*nattr:(i+1)*nattr], tu.Cont)
		copy(cat[i*nattr:(i+1)*nattr], tu.Cat)
	}
	return cont, cat
}

// levelClassify runs the kernel over a whole batch starting at lo = 0.
func levelClassify(lt *LevelTree, tus []dataset.Tuple, nattr int) []int32 {
	cont, cat := soaBlock(tus, nattr)
	out := make([]int32, len(tus))
	lt.ClassifyRange(cont, cat, nattr, 0, len(tus), out)
	return out
}

// chainTree hand-builds a maximally unbalanced right-leaning chain of depth
// levels: node at depth d tests x < d, so a row with x = k exits at depth
// min(⌈k⌉, depth). This is the kernel's worst shape — one live row per level.
func chainTree(depth int) *tree.Tree {
	schema := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Continuous}},
		Classes: []string{"lo", "hi"},
	}
	node := &tree.Node{Class: 1}
	for d := depth - 1; d >= 1; d-- {
		node = &tree.Node{
			Class: 0,
			Split: &split.Candidate{Attr: 0, Kind: dataset.Continuous, Threshold: float64(d), Valid: true},
			Left:  &tree.Node{Class: int32(d % 2)},
			Right: node,
		}
	}
	return &tree.Tree{Root: node, Schema: schema}
}

// bigCatTree hand-builds a categorical-heavy tree over a card-category
// attribute; card > 64 forces multi-word subset bitmasks through the
// kernel's word-indexed probe.
func bigCatTree(card int) *tree.Tree {
	cats := make([]string, card)
	for i := range cats {
		cats[i] = fmt.Sprintf("c%d", i)
	}
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "c", Kind: dataset.Categorical, Categories: cats},
			{Name: "x", Kind: dataset.Continuous},
		},
		Classes: []string{"a", "b", "c"},
	}
	set1 := split.NewCatSet(card)
	set2 := split.NewCatSet(card)
	for i := 0; i < card; i++ {
		if i%3 == 0 {
			set1.Add(int32(i))
		}
		if i%5 != 0 {
			set2.Add(int32(i))
		}
	}
	root := &tree.Node{
		Split: &split.Candidate{Attr: 0, Kind: dataset.Categorical, Subset: set1, Valid: true},
		Left: &tree.Node{
			Split: &split.Candidate{Attr: 1, Kind: dataset.Continuous, Threshold: 0.5, Valid: true},
			Left:  &tree.Node{Class: 0},
			Right: &tree.Node{Class: 1},
		},
		Right: &tree.Node{
			Split: &split.Candidate{Attr: 0, Kind: dataset.Categorical, Subset: set2, Valid: true},
			Left:  &tree.Node{Class: 2},
			Right: &tree.Node{Class: 0},
		},
	}
	return &tree.Tree{Root: root, Schema: schema}
}

// TestLevelLayoutInvariants checks the level arrays' structural contract
// over trained, chain and wide-categorical trees: LevelBase strictly
// increasing with the node count as sentinel, internal nodes pointing at an
// adjacent child pair inside the next level's span, leaves self-looping
// with no split payload.
func TestLevelLayoutInvariants(t *testing.T) {
	shapes := map[string]*tree.Tree{
		"chain-40": chainTree(40),
		"cat-130":  bigCatTree(130),
	}
	for _, fn := range []int{1, 7} {
		tr, _ := grow(t, fn, 3000, 0)
		shapes[fmt.Sprintf("F%d", fn)] = tr
	}
	for name, tr := range shapes {
		ft, err := Compile(tr)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		lt, err := BuildLevel(ft)
		if err != nil {
			t.Fatalf("%s: BuildLevel: %v", name, err)
		}
		if lt.NumNodes() != len(ft.Nodes) {
			t.Fatalf("%s: level layout has %d nodes, preorder has %d", name, lt.NumNodes(), len(ft.Nodes))
		}
		n := lt.NumNodes()
		for _, sl := range [][]int32{lt.Class, lt.SubsetOff, lt.SubsetWords, lt.Kid, lt.Mask} {
			if len(sl) != n {
				t.Fatalf("%s: SoA slice length %d, want %d", name, len(sl), n)
			}
		}
		if len(lt.Threshold) != n {
			t.Fatalf("%s: threshold length %d, want %d", name, len(lt.Threshold), n)
		}
		lb := lt.LevelBase
		if len(lb) < 2 || lb[0] != 0 || lb[len(lb)-1] != int32(n) {
			t.Fatalf("%s: bad LevelBase bounds %v (n=%d)", name, lb, n)
		}
		for l := 1; l < len(lb); l++ {
			if lb[l] <= lb[l-1] {
				t.Fatalf("%s: LevelBase not strictly increasing at %d: %v", name, l, lb)
			}
		}
		for l := 0; l < lt.Depth(); l++ {
			for id := lb[l]; id < lb[l+1]; id++ {
				switch lt.Mask[id] {
				case 0: // leaf: self-loop, no split payload
					if lt.Kid[id] != id {
						t.Fatalf("%s: leaf %d kid %d, want self-loop", name, id, lt.Kid[id])
					}
					if lt.SubsetWords[id] != 0 {
						t.Fatalf("%s: leaf %d carries a subset", name, id)
					}
				case 1: // internal: adjacent child pair in the next level
					if l+1 >= lt.Depth() {
						t.Fatalf("%s: internal node %d on the last level", name, id)
					}
					kid := lt.Kid[id]
					if kid < lb[l+1] || kid+1 >= lb[l+2] {
						t.Fatalf("%s: node %d children [%d,%d] outside level %d span [%d,%d)",
							name, id, kid, kid+1, l+1, lb[l+1], lb[l+2])
					}
					if w := lt.SubsetWords[id]; w > 0 {
						if int(lt.SubsetOff[id])+int(w) > len(lt.Subsets) {
							t.Fatalf("%s: node %d subset out of pool bounds", name, id)
						}
						if lt.Schema.Attrs[lt.Attr[id]].Kind != dataset.Categorical {
							t.Fatalf("%s: node %d subset on continuous attribute", name, id)
						}
					}
				default:
					t.Fatalf("%s: node %d mask %d, want 0 or 1", name, id, lt.Mask[id])
				}
			}
		}
	}
}

// TestLevelEquivalenceProperty is the kernel's core invariant: on random
// tuples the level-synchronous classification agrees with both the preorder
// walk and the pointer tree, for trained F1/F7 trees at full and capped
// depth.
func TestLevelEquivalenceProperty(t *testing.T) {
	for _, fn := range []int{1, 7} {
		for _, maxDepth := range []int{0, 6} {
			tr, tbl := grow(t, fn, 4000, maxDepth)
			ft, err := Compile(tr)
			if err != nil {
				t.Fatalf("F%d/d%d: %v", fn, maxDepth, err)
			}
			lt, err := BuildLevel(ft)
			if err != nil {
				t.Fatalf("F%d/d%d: %v", fn, maxDepth, err)
			}
			nattr := len(tr.Schema.Attrs)
			rng := rand.New(rand.NewSource(int64(fn*100 + maxDepth)))
			prop := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				tus := make([]dataset.Tuple, 1+r.Intn(7))
				for i := range tus {
					tus[i] = randomTuple(r, tr.Schema, tbl)
				}
				got := levelClassify(lt, tus, nattr)
				for i, tu := range tus {
					if got[i] != tr.Predict(tu) || got[i] != ft.Predict(tu) {
						return false
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 400, Rand: rng}
			if err := quick.Check(prop, cfg); err != nil {
				t.Fatalf("F%d/d%d: level kernel diverges from walkers: %v", fn, maxDepth, err)
			}
		}
	}
}

// TestLevelEquivalenceHandBuiltShapes covers the shapes synthetic training
// rarely produces: a 40-level right-leaning chain (early-exit path, rows
// parking at every depth) and >64-category subsets (multi-word bitmask
// probes, including out-of-domain codes that must fall right).
func TestLevelEquivalenceHandBuiltShapes(t *testing.T) {
	t.Run("chain", func(t *testing.T) {
		tr := chainTree(40)
		ft, err := Compile(tr)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := BuildLevel(ft)
		if err != nil {
			t.Fatal(err)
		}
		if lt.Depth() != 40 {
			t.Fatalf("chain depth %d, want 40", lt.Depth())
		}
		rng := rand.New(rand.NewSource(11))
		tus := make([]dataset.Tuple, 512)
		for i := range tus {
			// Cover every exit depth plus both extremes.
			x := rng.Float64() * 42
			tus[i] = dataset.Tuple{Cont: []float64{x - 1}, Cat: []int32{0}}
		}
		got := levelClassify(lt, tus, 1)
		for i, tu := range tus {
			if want := tr.Predict(tu); got[i] != want {
				t.Fatalf("row %d (x=%v): level %d, pointer %d", i, tu.Cont[0], got[i], want)
			}
		}
	})
	t.Run("wide-categorical", func(t *testing.T) {
		tr := bigCatTree(130)
		ft, err := Compile(tr)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := BuildLevel(ft)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		tus := make([]dataset.Tuple, 1024)
		for i := range tus {
			// Codes up to 149 include out-of-domain values past card=130,
			// which both walkers and the kernel must send right.
			tus[i] = dataset.Tuple{
				Cont: []float64{0, rng.Float64()},
				Cat:  []int32{int32(rng.Intn(150)), 0},
			}
		}
		got := levelClassify(lt, tus, 2)
		for i, tu := range tus {
			if want, flat := tr.Predict(tu), ft.Predict(tu); got[i] != want || got[i] != flat {
				t.Fatalf("row %d (c=%d): level %d, pointer %d, flat %d", i, tu.Cat[0], got[i], want, flat)
			}
		}
	})
}

// TestLevelForestMatchesVote pins the fused-vote forest kernel to
// Forest.Vote on a 25-member ensemble, over the full range and over
// odd-offset shards of the same SoA block (the lo/hi indexing the sharded
// batch path exercises).
func TestLevelForestMatchesVote(t *testing.T) {
	trees := growForest(t, 7, 3000, 25)
	f, err := CompileForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := BuildLevelForest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(lf.Members) != 25 {
		t.Fatalf("level forest has %d members, want 25", len(lf.Members))
	}
	_, tbl := grow(t, 7, 3000, 0)
	rng := rand.New(rand.NewSource(17))
	nattr := len(f.Schema.Attrs)
	tus := make([]dataset.Tuple, 1024)
	for i := range tus {
		tus[i] = randomTuple(rng, f.Schema, tbl)
	}
	cont, cat := soaBlock(tus, nattr)
	full := make([]int32, len(tus))
	lf.ClassifyRange(cont, cat, nattr, 0, len(tus), full)
	counts := make([]int32, lf.NClass)
	for i, tu := range tus {
		clear(counts)
		if want := f.Vote(tu, counts); full[i] != want {
			t.Fatalf("row %d: level forest %d, fused vote %d", i, full[i], want)
		}
	}
	// Disjoint shards with odd offsets must reproduce the full-range result.
	sharded := make([]int32, len(tus))
	for _, cut := range [][2]int{{0, 337}, {337, 700}, {700, 1024}} {
		lf.ClassifyRange(cont, cat, nattr, cut[0], cut[1], sharded)
	}
	for i := range full {
		if sharded[i] != full[i] {
			t.Fatalf("row %d: sharded %d, full-range %d", i, sharded[i], full[i])
		}
	}
}

// TestLevelDepthCap: BuildLevel must refuse trees past MaxLevelDepth so
// callers fall back to the preorder walker instead of a quadratic kernel.
func TestLevelDepthCap(t *testing.T) {
	ft, err := Compile(chainTree(MaxLevelDepth + 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildLevel(ft); err == nil {
		t.Fatal("BuildLevel accepted a tree past MaxLevelDepth")
	}
	ok, err := Compile(chainTree(MaxLevelDepth - 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildLevel(ok); err != nil {
		t.Fatalf("BuildLevel rejected a tree inside the cap: %v", err)
	}
}

// TestLevelKernelAllocationBudget gates the kernel's steady state at zero
// allocations per call (make alloc-check): after one warm-up leases the
// pooled scratch, repeated ClassifyRange calls for both the single tree and
// the fused forest must allocate nothing.
func TestLevelKernelAllocationBudget(t *testing.T) {
	tr, tbl := grow(t, 7, 3000, 0)
	ft, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := BuildLevel(ft)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CompileForest(growForest(t, 7, 2000, 25))
	if err != nil {
		t.Fatal(err)
	}
	lf, err := BuildLevelForest(f)
	if err != nil {
		t.Fatal(err)
	}
	nattr := len(tr.Schema.Attrs)
	rng := rand.New(rand.NewSource(23))
	tus := make([]dataset.Tuple, 256)
	for i := range tus {
		tus[i] = randomTuple(rng, tr.Schema, tbl)
	}
	cont, cat := soaBlock(tus, nattr)
	out := make([]int32, len(tus))
	lt.ClassifyRange(cont, cat, nattr, 0, len(tus), out) // warm the pool
	if n := testing.AllocsPerRun(100, func() {
		lt.ClassifyRange(cont, cat, nattr, 0, len(tus), out)
	}); n != 0 {
		t.Fatalf("tree kernel steady state allocates %.1f/op, want 0", n)
	}
	lf.ClassifyRange(cont, cat, nattr, 0, len(tus), out)
	if n := testing.AllocsPerRun(100, func() {
		lf.ClassifyRange(cont, cat, nattr, 0, len(tus), out)
	}); n != 0 {
		t.Fatalf("forest kernel steady state allocates %.1f/op, want 0", n)
	}
}
