package flat

import (
	"sync"

	"repro/internal/dataset"
)

// Predict classifies one decoded tuple, returning the class code. It is
// the flat-array counterpart of tree.Predict: a tight loop over int32
// indices with no pointer chasing, branching on a threshold compare for
// continuous splits and a bitmask probe for categorical ones. Category
// codes outside the subset's domain fall to the right branch, matching
// split.CatSet.Has.
func (t *Tree) Predict(tu dataset.Tuple) int32 {
	nodes := t.Nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.Attr < 0 {
			return n.Class
		}
		var left bool
		if n.SubsetWords == 0 {
			left = tu.Cont[n.Attr] < n.Threshold
		} else {
			c := tu.Cat[n.Attr]
			w := c / 64
			left = c >= 0 && w < n.SubsetWords &&
				t.Subsets[n.SubsetOff+w]&(1<<uint(c%64)) != 0
		}
		if left {
			i++ // preorder: left child is adjacent
		} else {
			i = n.Right
		}
	}
}

// PredictBatch classifies tuples with up to procs worker goroutines, each
// owning one contiguous shard of rows (the training engines' chunking
// idiom). procs <= 1, or batches too small to be worth the fan-out, run
// serially on the caller's goroutine.
func (t *Tree) PredictBatch(tus []dataset.Tuple, procs int) []int32 {
	out := make([]int32, len(tus))
	t.PredictBatchInto(tus, out, procs)
	return out
}

// minShard is the smallest per-worker shard worth a goroutine; below it the
// spawn/join overhead dwarfs the tree walks.
const minShard = 256

// PredictBatchInto is PredictBatch writing into a caller-owned slice
// (len(out) must be >= len(tus)).
func (t *Tree) PredictBatchInto(tus []dataset.Tuple, out []int32, procs int) {
	n := len(tus)
	if procs > n/minShard {
		procs = n / minShard
	}
	if procs <= 1 {
		t.predictRange(tus, out, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		lo, hi := w*n/procs, (w+1)*n/procs
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t.predictRange(tus, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (t *Tree) predictRange(tus []dataset.Tuple, out []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = t.Predict(tus[i])
	}
}
