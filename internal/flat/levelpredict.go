package flat

// The level-synchronous batch kernel. One pass advances every row in the
// shard by one tree level: load the row's current node id, evaluate its
// split against the SoA row buffers, and compute the next id with
// branch-free index arithmetic — no data-dependent left/right jump for
// the branch predictor to miss, which is where the preorder walker spends
// its cycles on batches (each row's descent is a ~50/50 coin flip per
// node). Rows that reach a leaf park there (Mask zeroes the step and Kid
// self-loops), and a pass that finds no row on an internal node ends the
// descent early, so unbalanced trees cost max-occupied-depth passes, not
// MaxLevelDepth.
//
// Row data arrives as the SoA block the batch decode paths already
// produce: one contiguous float64 array and one contiguous int32 array,
// row-major with stride nattr (row r's attribute a at [r*nattr+a]).
// Scratch (current-node ids, vote histograms) comes from a per-worker
// arena pool, so the kernel's steady state allocates nothing — gated by
// TestLevelKernelAllocationBudget in make alloc-check.

import "sync"

// levelScratch is one worker's reusable kernel state.
type levelScratch struct {
	cur    []int32
	counts []int32
}

// scratchPool recycles levelScratch across kernel calls; slices are grown
// in place and retain capacity, so a worker's steady state reuses one
// arena.
var scratchPool = sync.Pool{New: func() any { return &levelScratch{} }}

// getScratch leases an arena with cur sized to rows and counts to nc.
func getScratch(rows, nc int) *levelScratch {
	s := scratchPool.Get().(*levelScratch)
	if cap(s.cur) < rows {
		s.cur = make([]int32, rows)
	}
	if cap(s.counts) < nc {
		s.counts = make([]int32, nc)
	}
	return s
}

// advance runs the level passes for rows [lo,hi) of the SoA block,
// updating cur (length hi-lo, pre-seeded with the root id 0) in place to
// each row's final node id.
func (lt *LevelTree) advance(cont []float64, cat []int32, nattr, lo int, cur []int32) {
	var (
		attrs   = lt.Attr
		thr     = lt.Threshold
		subW    = lt.SubsetWords
		subOff  = lt.SubsetOff
		kid     = lt.Kid
		mask    = lt.Mask
		subsets = lt.Subsets
	)
	for pass := lt.Depth() - 1; pass > 0; pass-- {
		live := int32(0)
		for i := range cur {
			n := cur[i]
			a := int(attrs[n])
			base := (lo + i) * nattr
			// step: 0 ⇒ left child, 1 ⇒ right. The conditional assignments
			// compile to flag-setting moves, not jumps — the only real
			// branch left is the split-kind test, which tracks the node (a
			// compile-time property), not the row's data.
			step := int32(1)
			if w := subW[n]; w == 0 {
				if cont[base+a] < thr[n] {
					step = 0
				}
			} else {
				c := cat[base+a]
				if wi := c >> 6; c >= 0 && wi < w && subsets[subOff[n]+wi]&(1<<uint(c&63)) != 0 {
					step = 0
				}
			}
			m := mask[n]
			live |= m
			cur[i] = kid[n] + (step & m)
		}
		if live == 0 {
			break
		}
	}
}

// ClassifyRange classifies rows [lo,hi) of the SoA block into out[lo:hi].
// cont and cat are row-major with stride nattr — exactly the contiguous
// decode buffers PredictValuesBatch fills — and out must have length ≥ hi.
// Safe for concurrent use: shards of one batch may run on different
// workers over disjoint [lo,hi) ranges.
func (lt *LevelTree) ClassifyRange(cont []float64, cat []int32, nattr, lo, hi int, out []int32) {
	if hi <= lo {
		return
	}
	scr := getScratch(hi-lo, 0)
	cur := scr.cur[:hi-lo]
	for i := range cur {
		cur[i] = 0
	}
	lt.advance(cont, cat, nattr, lo, cur)
	class := lt.Class
	for i, n := range cur {
		out[lo+i] = class[n]
	}
	scratchPool.Put(scr)
}

// ClassifyRange votes rows [lo,hi) of the SoA block through every member
// and writes the majority class (ties to the lowest code, matching
// Forest.Vote) into out[lo:hi]. The vote is fused into each member's
// final level: as a member's passes finish, its leaf classes accumulate
// straight into the per-row histograms while cur and the row buffers are
// still hot, then the next member's passes reuse the same scratch.
func (lf *LevelForest) ClassifyRange(cont []float64, cat []int32, nattr, lo, hi int, out []int32) {
	if hi <= lo {
		return
	}
	rows := hi - lo
	nc := lf.NClass
	scr := getScratch(rows, rows*nc)
	counts := scr.counts[:rows*nc]
	clear(counts)
	cur := scr.cur[:rows]
	for _, m := range lf.Members {
		for i := range cur {
			cur[i] = 0
		}
		m.advance(cont, cat, nattr, lo, cur)
		class := m.Class
		for i, n := range cur {
			counts[i*nc+int(class[n])]++
		}
	}
	for i := 0; i < rows; i++ {
		out[lo+i] = Majority(counts[i*nc : (i+1)*nc])
	}
	scratchPool.Put(scr)
}
