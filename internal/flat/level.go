package flat

// The second compiled layout: breadth-first level arrays. The preorder
// array (flat.Tree) is shaped for one row chasing one path — the next node
// is a data-dependent branch per step. The level layout is shaped for a
// whole micro-batch advancing in lockstep, the CPU port of Spencer's
// GPGPU level-synchronous tree evaluation: nodes laid out level by level
// in contiguous slabs, every per-node field split into its own parallel
// SoA slice, and a node's children addressed by index arithmetic — an
// internal node at level l whose rank among that level's internal nodes
// is s has its children at LevelBase[l+1] + 2s and LevelBase[l+1] + 2s + 1,
// so the per-row update is the branch-free
//
//	next = Kid[node] + step        // step ∈ {0 left, 1 right}
//
// with Kid[node] precomputed as LevelBase[l+1] + 2s. Leaves self-loop
// (Kid = own id, Mask = 0) so rows that finish early park harmlessly while
// the rest of the batch keeps descending.

import (
	"fmt"

	"repro/internal/dataset"
)

// MaxLevelDepth caps the level layout's depth. A level-synchronous pass
// costs the whole batch one advance per level, so a pathologically deep
// tree (depth ≈ rows) would make the kernel quadratic; past this cap
// BuildLevel refuses and callers fall back to the preorder walker.
const MaxLevelDepth = 1024

// LevelTree is one tree compiled into breadth-first level arrays. All
// per-node fields are parallel SoA slices indexed by level-order node id.
// A LevelTree is immutable after BuildLevel and safe for concurrent use.
type LevelTree struct {
	// Attr is the split attribute per node; leaves store 0 (a valid index,
	// read but ignored — Mask freezes the row before the step applies).
	Attr []int32
	// Class is the node's majority class; for leaves, the prediction.
	Class []int32
	// Threshold is the continuous split point (value < Threshold ⇒ left).
	Threshold []float64
	// SubsetOff and SubsetWords locate the categorical left-branch bitmask
	// in Subsets; SubsetWords is 0 for continuous splits and leaves.
	SubsetOff   []int32
	SubsetWords []int32
	// Kid is the left child's level-order id (right child is Kid+1);
	// leaves self-loop with Kid = own id.
	Kid []int32
	// Mask is the step mask: 1 for internal nodes, 0 for leaves. ANDing the
	// step with it parks rows at leaves without a branch.
	Mask []int32
	// Subsets is the categorical bitmask pool (shared with the preorder
	// layout the tree was built from).
	Subsets []uint64
	// LevelBase[l] is the level-order id of level l's first node, with a
	// final sentinel holding the node count: level l spans
	// LevelBase[l]..LevelBase[l+1].
	LevelBase []int32
	Schema    *dataset.Schema
}

// Depth is the number of levels (a lone leaf is depth 1).
func (lt *LevelTree) Depth() int { return len(lt.LevelBase) - 1 }

// NumNodes is the node count.
func (lt *LevelTree) NumNodes() int { return len(lt.Attr) }

// BuildLevel re-lays a compiled preorder tree into level arrays. The
// result classifies identically to t (the level_test property tests hold
// this as an invariant against both the preorder walk and the pointer
// tree).
func BuildLevel(t *Tree) (*LevelTree, error) {
	if t == nil || len(t.Nodes) == 0 {
		return nil, fmt.Errorf("flat: empty tree")
	}
	return buildLevel(t.Nodes, t.Subsets, 0, t.Schema)
}

// LevelForest is a compiled ensemble in level-array form: one LevelTree
// per member over one shared subset pool. Prediction runs the batch
// through each member's level passes in turn, accumulating the vote as
// each member's final level resolves, so an N-member forest costs N
// kernel passes over row buffers that stay hot — not N branchy walks.
type LevelForest struct {
	Members []*LevelTree
	Schema  *dataset.Schema
	// NClass is the schema's class count, the width of a vote histogram.
	NClass int
}

// BuildLevelForest re-lays a compiled preorder forest into per-member
// level arrays sharing f's subset pool.
func BuildLevelForest(f *Forest) (*LevelForest, error) {
	if f == nil || len(f.Roots) == 0 {
		return nil, fmt.Errorf("flat: empty forest")
	}
	lf := &LevelForest{Schema: f.Schema, NClass: f.NClass}
	for ti, root := range f.Roots {
		lt, err := buildLevel(f.Nodes, f.Subsets, root, f.Schema)
		if err != nil {
			return nil, fmt.Errorf("flat: forest tree %d: %w", ti, err)
		}
		lf.Members = append(lf.Members, lt)
	}
	return lf, nil
}

// buildLevel walks the preorder pool breadth-first from root, assigning
// level-order ids and emitting the SoA slices. Children of a level's
// internal nodes are appended in parent order, so a parent's pair is
// adjacent in the next level and Kid+1 addresses the right child.
func buildLevel(nodes []Node, subsets []uint64, root int32, schema *dataset.Schema) (*LevelTree, error) {
	lt := &LevelTree{Subsets: subsets, Schema: schema}
	frontier := []int32{root}
	next := make([]int32, 0, 2)
	for len(frontier) > 0 {
		base := int32(len(lt.Attr))
		lt.LevelBase = append(lt.LevelBase, base)
		if len(lt.LevelBase) > MaxLevelDepth {
			return nil, fmt.Errorf("flat: tree deeper than %d levels", MaxLevelDepth)
		}
		childBase := base + int32(len(frontier))
		next = next[:0]
		for _, pi := range frontier {
			if pi < 0 || int(pi) >= len(nodes) {
				return nil, fmt.Errorf("flat: node index %d out of pool range", pi)
			}
			n := &nodes[pi]
			id := int32(len(lt.Attr))
			lt.Class = append(lt.Class, n.Class)
			if n.IsLeaf() {
				lt.Attr = append(lt.Attr, 0)
				lt.Threshold = append(lt.Threshold, 0)
				lt.SubsetOff = append(lt.SubsetOff, 0)
				lt.SubsetWords = append(lt.SubsetWords, 0)
				lt.Kid = append(lt.Kid, id) // self-loop
				lt.Mask = append(lt.Mask, 0)
				continue
			}
			lt.Attr = append(lt.Attr, n.Attr)
			lt.Threshold = append(lt.Threshold, n.Threshold)
			lt.SubsetOff = append(lt.SubsetOff, n.SubsetOff)
			lt.SubsetWords = append(lt.SubsetWords, n.SubsetWords)
			lt.Kid = append(lt.Kid, childBase+int32(len(next)))
			lt.Mask = append(lt.Mask, 1)
			next = append(next, pi+1, n.Right) // preorder: left child is adjacent
		}
		frontier = append(frontier[:0], next...)
	}
	lt.LevelBase = append(lt.LevelBase, int32(len(lt.Attr)))
	return lt, nil
}
