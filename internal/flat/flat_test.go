package flat

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tree"
)

// grow builds a pointer tree over fn's synthetic data.
func grow(t *testing.T, fn, tuples, maxDepth int) (*tree.Tree, *dataset.Table) {
	t.Helper()
	tbl, err := synth.Generate(synth.Config{
		Function: fn, Tuples: tuples, Seed: 7, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := core.Build(tbl, core.Config{MaxDepth: maxDepth})
	if err != nil {
		t.Fatal(err)
	}
	return tr, tbl
}

// randomTuple draws a tuple over the schema's domains: continuous values
// from a wide normal (plus occasional copies of a training value so deep
// paths are reached), categorical codes uniform over the category domain.
func randomTuple(rng *rand.Rand, s *dataset.Schema, tbl *dataset.Table) dataset.Tuple {
	tu := dataset.Tuple{
		Cont: make([]float64, len(s.Attrs)),
		Cat:  make([]int32, len(s.Attrs)),
	}
	src := -1
	if tbl.NumTuples() > 0 && rng.Intn(2) == 0 {
		src = rng.Intn(tbl.NumTuples())
	}
	for a := range s.Attrs {
		if s.Attrs[a].Kind == dataset.Continuous {
			if src >= 0 {
				tu.Cont[a] = tbl.ContValue(a, src)
			} else {
				tu.Cont[a] = rng.NormFloat64() * 1e5
			}
		} else {
			tu.Cat[a] = int32(rng.Intn(len(s.Attrs[a].Categories)))
		}
	}
	return tu
}

// TestFlatEquivalenceProperty is the subsystem's core invariant: for trees
// grown from F1 (simple, continuous-only splits) and F7 (complex, mixes
// categorical splits) the compiled predictor agrees with the pointer tree
// on random tuples.
func TestFlatEquivalenceProperty(t *testing.T) {
	for _, fn := range []int{1, 7} {
		tr, tbl := grow(t, fn, 4000, 0)
		ft, err := Compile(tr)
		if err != nil {
			t.Fatalf("F%d: %v", fn, err)
		}
		rng := rand.New(rand.NewSource(int64(fn)))
		prop := func(seed int64) bool {
			tu := randomTuple(rand.New(rand.NewSource(seed)), tr.Schema, tbl)
			return ft.Predict(tu) == tr.Predict(tu)
		}
		cfg := &quick.Config{MaxCount: 2000, Rand: rng}
		if err := quick.Check(prop, cfg); err != nil {
			t.Fatalf("F%d: flat and pointer predictions diverge: %v", fn, err)
		}
	}
}

// TestFlatEquivalenceOnTrainingData checks agreement on every training
// tuple, which exercises every reachable leaf.
func TestFlatEquivalenceOnTrainingData(t *testing.T) {
	tr, tbl := grow(t, 7, 4000, 0)
	ft, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumTuples(); i++ {
		tu := tbl.Row(i)
		if got, want := ft.Predict(tu), tr.Predict(tu); got != want {
			t.Fatalf("row %d: flat %d, pointer %d", i, got, want)
		}
	}
}

// TestMarshalCompileRoundTrip writes the tree as model JSON, reads it back,
// compiles the reloaded tree, and checks all three predictors agree.
func TestMarshalCompileRoundTrip(t *testing.T) {
	tr, tbl := grow(t, 7, 3000, 8)
	ft, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := tree.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ft2, err := Compile(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft2.Nodes) != len(ft.Nodes) {
		t.Fatalf("round trip changed node count: %d vs %d", len(ft2.Nodes), len(ft.Nodes))
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		tu := randomTuple(rng, tr.Schema, tbl)
		a, b, c := tr.Predict(tu), ft.Predict(tu), ft2.Predict(tu)
		if a != b || b != c {
			t.Fatalf("tuple %d: pointer %d, flat %d, reloaded flat %d", i, a, b, c)
		}
	}
}

// TestPreorderLayout checks the compiled array's structural invariants:
// preorder adjacency (left child = i+1), forward right links, leaves
// carrying no split payload, and one node per pointer-tree node.
func TestPreorderLayout(t *testing.T) {
	tr, _ := grow(t, 7, 2000, 0)
	ft, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if want := tr.Stats().Nodes; len(ft.Nodes) != want {
		t.Fatalf("node count %d, pointer tree has %d", len(ft.Nodes), want)
	}
	for i := range ft.Nodes {
		n := &ft.Nodes[i]
		if n.IsLeaf() {
			if n.SubsetWords != 0 || n.Right != 0 {
				t.Fatalf("leaf %d carries split payload: %+v", i, n)
			}
			continue
		}
		if int(n.Right) <= i+1 || int(n.Right) >= len(ft.Nodes) {
			t.Fatalf("node %d: right link %d out of preorder range", i, n.Right)
		}
		if n.SubsetWords > 0 {
			if int(n.SubsetOff)+int(n.SubsetWords) > len(ft.Subsets) {
				t.Fatalf("node %d: subset slice out of pool bounds", i)
			}
			if ft.Schema.Attrs[n.Attr].Kind != dataset.Categorical {
				t.Fatalf("node %d: subset on continuous attribute", i)
			}
		}
	}
}

// TestPredictBatchMatchesSerial checks the sharded fan-out path returns the
// same classes as serial prediction for both serial and parallel settings.
func TestPredictBatchMatchesSerial(t *testing.T) {
	tr, tbl := grow(t, 7, 3000, 0)
	ft, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	tus := make([]dataset.Tuple, tbl.NumTuples())
	for i := range tus {
		tus[i] = tbl.Row(i)
	}
	want := make([]int32, len(tus))
	for i := range tus {
		want[i] = ft.Predict(tus[i])
	}
	for _, procs := range []int{0, 1, 2, 4, 9} {
		got := ft.PredictBatch(tus, procs)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("procs=%d row %d: got %d want %d", procs, i, got[i], want[i])
			}
		}
	}
	if got := ft.PredictBatch(nil, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestCompileRejectsBadTrees covers the validation paths.
func TestCompileRejectsBadTrees(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := Compile(&tree.Tree{}); err == nil {
		t.Fatal("rootless tree accepted")
	}
	tr, _ := grow(t, 1, 500, 4)
	tr.Schema = nil
	if _, err := Compile(tr); err == nil {
		t.Fatal("schemaless tree accepted")
	}
}
