// Package flat compiles a trained pointer tree into a cache-friendly flat
// node array for high-throughput inference, the linearization technique of
// Spencer's speculative GPGPU tree evaluation applied to the serving side
// of this repo: nodes laid out in preorder (a node's left child is the next
// array element, so the hot "goes left" path is a sequential read), split
// tests reduced to a threshold compare or a bitmask probe, and batch
// prediction fanned out over contiguous row shards with the same chunking
// idiom the training engines use.
package flat

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/tree"
)

// Node is one compiled tree node. Nodes are laid out in preorder: an
// internal node's left child is the node immediately after it, so only the
// right-child index is stored.
type Node struct {
	// Attr is the split attribute index, or -1 for a leaf.
	Attr int32
	// Class is the node's majority class; for leaves it is the prediction.
	Class int32
	// Right is the right child's index (left child is the next node).
	Right int32
	// SubsetOff and SubsetWords locate the categorical left-branch bitmask
	// in the tree's shared Subsets pool. SubsetWords is 0 for continuous
	// splits and leaves.
	SubsetOff   int32
	SubsetWords int32
	// Threshold is the continuous split point: value < Threshold ⇒ left.
	Threshold float64
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Attr < 0 }

// Tree is a compiled decision tree: the node array, one shared pool of
// categorical subset bitmask words, and the schema for class/attribute
// names. A Tree is immutable after Compile and safe for concurrent use.
type Tree struct {
	Nodes   []Node
	Subsets []uint64
	Schema  *dataset.Schema
}

// Compile flattens a pointer tree into preorder array form. The resulting
// predictor is equivalent to t.Predict on every tuple (the flat_test
// property tests hold this as an invariant).
func Compile(t *tree.Tree) (*Tree, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("flat: nil tree")
	}
	if t.Schema == nil {
		return nil, fmt.Errorf("flat: tree has no schema")
	}
	ft := &Tree{Schema: t.Schema}
	if err := ft.emit(t.Root); err != nil {
		return nil, err
	}
	return ft, nil
}

// emit appends n's subtree in preorder and returns nil on success.
func (ft *Tree) emit(n *tree.Node) error {
	idx := len(ft.Nodes)
	if idx > 1<<30 {
		return fmt.Errorf("flat: tree too large")
	}
	if n.IsLeaf() {
		ft.Nodes = append(ft.Nodes, Node{Attr: -1, Class: n.Class})
		return nil
	}
	s := n.Split
	if s.Attr < 0 || s.Attr >= len(ft.Schema.Attrs) {
		return fmt.Errorf("flat: split attribute %d out of schema range", s.Attr)
	}
	if ft.Schema.Attrs[s.Attr].Kind != s.Kind {
		return fmt.Errorf("flat: split kind mismatch on attribute %q", ft.Schema.Attrs[s.Attr].Name)
	}
	fn := Node{Attr: int32(s.Attr), Class: n.Class}
	if s.Kind == dataset.Continuous {
		fn.Threshold = s.Threshold
	} else {
		words := subsetWords(s)
		if len(words) == 0 {
			return fmt.Errorf("flat: categorical split on %q has no subset", ft.Schema.Attrs[s.Attr].Name)
		}
		fn.SubsetOff = int32(len(ft.Subsets))
		fn.SubsetWords = int32(len(words))
		ft.Subsets = append(ft.Subsets, words...)
	}
	ft.Nodes = append(ft.Nodes, fn)
	if err := ft.emit(n.Left); err != nil {
		return err
	}
	ft.Nodes[idx].Right = int32(len(ft.Nodes))
	return ft.emit(n.Right)
}

// subsetWords rebuilds the candidate's left-branch subset as bitmask words
// sized to the attribute's full category domain.
func subsetWords(s *split.Candidate) []uint64 {
	card := s.Subset.Card()
	if card <= 0 {
		return nil
	}
	words := make([]uint64, (card+63)/64)
	for c := int32(0); int(c) < card; c++ {
		if s.Subset.Has(c) {
			words[c/64] |= 1 << uint(c%64)
		}
	}
	return words
}
