package flat

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tree"
)

// growForest builds nTrees pointer trees over depth-capped variants of
// fn's synthetic data so the members genuinely differ.
func growForest(t *testing.T, fn, tuples, nTrees int) []*tree.Tree {
	t.Helper()
	var trees []*tree.Tree
	base, _ := grow(t, fn, tuples, 0)
	for i := 0; i < nTrees; i++ {
		tr, _ := grow(t, fn, tuples, 2+i%5)
		tr.Schema = base.Schema // CompileForest requires one shared schema
		trees = append(trees, tr)
	}
	return trees
}

// TestForestSingleTreeMatchesTree: a 1-tree forest's Vote must equal the
// member tree's Predict on random tuples — the fused path adds voting,
// not different routing.
func TestForestSingleTreeMatchesTree(t *testing.T) {
	tr, tbl := grow(t, 7, 4000, 0)
	ft, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CompileForest([]*tree.Tree{tr})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 1 {
		t.Fatalf("NumTrees = %d, want 1", f.NumTrees())
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int32, f.NClass)
	for i := 0; i < 2000; i++ {
		tu := randomTuple(rng, tr.Schema, tbl)
		clear(counts)
		if got, want := f.Vote(tu, counts), ft.Predict(tu); got != want {
			t.Fatalf("row %d: forest voted %d, tree predicts %d", i, got, want)
		}
	}
}

// TestForestVoteMatchesMemberMajority: the fused row-major vote must equal
// the majority of the members' individual predictions (ties to the lowest
// class code).
func TestForestVoteMatchesMemberMajority(t *testing.T) {
	trees := growForest(t, 7, 3000, 7)
	f, err := CompileForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]*Tree, len(trees))
	for i, tr := range trees {
		if members[i], err = Compile(tr); err != nil {
			t.Fatal(err)
		}
	}
	_, tbl := grow(t, 7, 3000, 0)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int32, f.NClass)
	want := make([]int32, f.NClass)
	for i := 0; i < 1000; i++ {
		tu := randomTuple(rng, f.Schema, tbl)
		clear(counts)
		got := f.Vote(tu, counts)
		clear(want)
		for _, m := range members {
			want[m.Predict(tu)]++
		}
		if exp := Majority(want); got != exp {
			t.Fatalf("row %d: fused vote %d, member majority %d (counts %v vs %v)",
				i, got, exp, counts, want)
		}
		for j := range counts {
			if counts[j] != want[j] {
				t.Fatalf("row %d: vote counts %v, member counts %v", i, counts, want)
			}
		}
	}
}

// TestForestPredictBatchMatchesSerial: the sharded batch path must agree
// with per-row Vote for every procs fan-out.
func TestForestPredictBatchMatchesSerial(t *testing.T) {
	trees := growForest(t, 1, 3000, 5)
	f, err := CompileForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	_, tbl := grow(t, 1, 3000, 0)
	rng := rand.New(rand.NewSource(3))
	tusIn := make([]dataset.Tuple, 4096)
	for i := range tusIn {
		tusIn[i] = randomTuple(rng, f.Schema, tbl)
	}
	want := make([]int32, len(tusIn))
	f.predictRange(tusIn, want, 0, len(tusIn))
	for _, procs := range []int{1, 2, 4, 8} {
		got := f.PredictBatch(tusIn, procs)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("procs=%d row %d: got %d, want %d", procs, i, got[i], want[i])
			}
		}
	}
}

// CompileForest input validation.
func TestCompileForestRejectsBadInput(t *testing.T) {
	if _, err := CompileForest(nil); err == nil {
		t.Fatal("empty forest accepted")
	}
	tr1, _ := grow(t, 1, 500, 3)
	tr2, _ := grow(t, 1, 500, 3)
	// tr2 keeps its own schema pointer: must be rejected.
	if _, err := CompileForest([]*tree.Tree{tr1, tr2}); err == nil {
		t.Fatal("mixed-schema forest accepted")
	}
	if _, err := CompileForest([]*tree.Tree{tr1, nil}); err == nil {
		t.Fatal("nil member accepted")
	}
}
