package flat

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/tree"
)

// Forest is a compiled tree ensemble: every member tree's preorder node
// array concatenated into one contiguous pool (one shared subset-bitmask
// pool as well), with Roots marking where each tree starts. Keeping all
// trees in one allocation means a row-major vote across N trees touches
// one node slab instead of N scattered ones, and a batch predict
// amortizes the per-row decode over every tree. A Forest is immutable
// after CompileForest and safe for concurrent use.
type Forest struct {
	Nodes   []Node
	Subsets []uint64
	Roots   []int32
	Schema  *dataset.Schema
	// NClass is the schema's class count, the width of a vote histogram.
	NClass int
}

// CompileForest flattens pointer trees into one contiguous pool. All
// trees must share the same schema. emit appends nodes with absolute
// indices, so concatenation needs no index fix-up — each tree's subtree
// links are already pool-relative.
func CompileForest(trees []*tree.Tree) (*Forest, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("flat: empty forest")
	}
	if trees[0] == nil || trees[0].Schema == nil {
		return nil, fmt.Errorf("flat: nil tree or schema in forest")
	}
	schema := trees[0].Schema
	ft := &Tree{Schema: schema}
	f := &Forest{Schema: schema, NClass: schema.NumClasses()}
	for ti, t := range trees {
		if t == nil || t.Root == nil {
			return nil, fmt.Errorf("flat: forest tree %d is nil", ti)
		}
		if t.Schema != schema {
			return nil, fmt.Errorf("flat: forest tree %d has a different schema", ti)
		}
		f.Roots = append(f.Roots, int32(len(ft.Nodes)))
		if err := ft.emit(t.Root); err != nil {
			return nil, fmt.Errorf("flat: forest tree %d: %w", ti, err)
		}
	}
	f.Nodes = ft.Nodes
	f.Subsets = ft.Subsets
	return f, nil
}

// NumTrees returns the member count.
func (f *Forest) NumTrees() int { return len(f.Roots) }

// Vote classifies one decoded tuple by all trees, accumulating one vote
// per tree into counts (len >= NClass; the caller zeroes it) and
// returning the majority class. Ties break to the lowest class code, so
// the result is deterministic.
func (f *Forest) Vote(tu dataset.Tuple, counts []int32) int32 {
	nodes := f.Nodes
	subsets := f.Subsets
	for _, root := range f.Roots {
		i := root
		for {
			n := &nodes[i]
			if n.Attr < 0 {
				counts[n.Class]++
				break
			}
			var left bool
			if n.SubsetWords == 0 {
				left = tu.Cont[n.Attr] < n.Threshold
			} else {
				c := tu.Cat[n.Attr]
				w := c / 64
				left = c >= 0 && w < n.SubsetWords &&
					subsets[n.SubsetOff+w]&(1<<uint(c%64)) != 0
			}
			if left {
				i++ // preorder: left child is adjacent
			} else {
				i = n.Right
			}
		}
	}
	return Majority(counts)
}

// Majority returns the index of the largest count, lowest index on ties.
func Majority(counts []int32) int32 {
	best, bestC := int32(0), int32(-1)
	for j, c := range counts {
		if c > bestC {
			best, bestC = int32(j), c
		}
	}
	return best
}

// Predict classifies one decoded tuple by majority vote, allocating a
// scratch vote histogram. Hot paths should use Vote with a reused buffer.
func (f *Forest) Predict(tu dataset.Tuple) int32 {
	counts := make([]int32, f.NClass)
	return f.Vote(tu, counts)
}

// PredictBatch classifies tuples with up to procs worker goroutines, each
// owning one contiguous shard of rows, voting all trees per row before
// moving to the next (row-major: one pass over the decoded row services
// every tree).
func (f *Forest) PredictBatch(tus []dataset.Tuple, procs int) []int32 {
	out := make([]int32, len(tus))
	f.PredictBatchInto(tus, out, procs)
	return out
}

// PredictBatchInto is PredictBatch writing into a caller-owned slice
// (len(out) must be >= len(tus)).
func (f *Forest) PredictBatchInto(tus []dataset.Tuple, out []int32, procs int) {
	n := len(tus)
	// A forest row costs ~NumTrees() single-tree walks, so the shard size
	// worth a goroutine shrinks proportionally.
	shard := minShard / f.NumTrees()
	if shard < 1 {
		shard = 1
	}
	if procs > n/shard {
		procs = n / shard
	}
	if procs <= 1 {
		f.predictRange(tus, out, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		lo, hi := w*n/procs, (w+1)*n/procs
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.predictRange(tus, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (f *Forest) predictRange(tus []dataset.Tuple, out []int32, lo, hi int) {
	counts := make([]int32, f.NClass)
	for i := lo; i < hi; i++ {
		clear(counts)
		out[i] = f.Vote(tus[i], counts)
	}
}
