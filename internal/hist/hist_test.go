package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/split"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Continuous},
			{Name: "c", Kind: dataset.Categorical, Categories: []string{"a", "b", "c"}},
		},
		Classes: []string{"G", "B"},
	}
}

func TestQuantileCutsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	col := make([]float64, 10000)
	for i := range col {
		col[i] = rng.NormFloat64() * 100
	}
	var sample []float64
	cuts := QuantileCuts(col, 64, 1000, &sample)
	if len(cuts) == 0 || len(cuts) > 63 {
		t.Fatalf("got %d cuts, want 1..63", len(cuts))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly ascending at %d: %v <= %v", i, cuts[i], cuts[i-1])
		}
	}
	// Determinism: same input, same cuts.
	var sample2 []float64
	cuts2 := QuantileCuts(col, 64, 1000, &sample2)
	if len(cuts) != len(cuts2) {
		t.Fatalf("non-deterministic cut count: %d vs %d", len(cuts), len(cuts2))
	}
	for i := range cuts {
		if cuts[i] != cuts2[i] {
			t.Fatalf("non-deterministic cut %d", i)
		}
	}
}

func TestQuantileCutsConstantColumn(t *testing.T) {
	col := make([]float64, 100)
	for i := range col {
		col[i] = 42
	}
	var sample []float64
	if cuts := QuantileCuts(col, 256, 0, &sample); len(cuts) != 0 {
		t.Fatalf("constant column produced %d cuts, want 0", len(cuts))
	}
}

func TestBinningRoutesLikeThreshold(t *testing.T) {
	// The defining property of the binning: for every cut c, "bin(v) <= k"
	// must be exactly "v < cuts[k]".
	rng := rand.New(rand.NewSource(2))
	col := make([]float64, 5000)
	for i := range col {
		col[i] = float64(rng.Intn(300))
	}
	cls := make([]int32, len(col))
	m := NewMatrix(testSchema(), cls)
	var sample []float64
	m.BinContinuous(0, col, 32, &sample)
	if m.NBins[0] != len(m.Cuts[0])+1 {
		t.Fatalf("NBins %d != len(cuts)+1 %d", m.NBins[0], len(m.Cuts[0])+1)
	}
	for k, c := range m.Cuts[0] {
		for i, v := range col {
			left := v < c
			binLeft := int(m.Cols[0][i]) <= k
			if left != binLeft {
				t.Fatalf("row %d value %v cut %v: threshold says %v, bin %d vs boundary %d says %v",
					i, v, c, left, m.Cols[0][i], k, binLeft)
			}
		}
	}
}

func buildTestMatrix(t *testing.T, n int, seed int64) (*Matrix, []float64, []int32, []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cont := make([]float64, n)
	cat := make([]int32, n)
	cls := make([]int32, n)
	for i := 0; i < n; i++ {
		cont[i] = rng.Float64() * 1000
		cat[i] = int32(rng.Intn(3))
		cls[i] = int32(rng.Intn(2))
	}
	m := NewMatrix(testSchema(), cls)
	var sample []float64
	m.BinContinuous(0, cont, 16, &sample)
	if err := m.BinCategorical(1, cat, 3); err != nil {
		t.Fatal(err)
	}
	m.FinishLayout()
	return m, cont, cat, cls
}

func TestAccumulateMatchesNaive(t *testing.T) {
	const n = 4000
	m, _, _, cls := buildTestMatrix(t, n, 3)
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	// Accumulate a sub-range in two worker-style chunks and compare against
	// a naive single pass.
	arena := make([]int64, m.Stride)
	lo, hi := 100, 3100
	mid := (lo + hi) / 2
	for a := 0; a < 2; a++ {
		m.Accumulate(m.Cell(arena, a), a, idx, lo, mid)
		m.Accumulate(m.Cell(arena, a), a, idx, mid, hi)
	}
	want := make([]int64, m.Stride)
	for i := lo; i < hi; i++ {
		for a := 0; a < 2; a++ {
			want[m.Off[a]+int(m.Cols[a][i])*m.NClass+int(cls[i])]++
		}
	}
	for i := range want {
		if arena[i] != want[i] {
			t.Fatalf("cell %d: got %d want %d", i, arena[i], want[i])
		}
	}
}

func TestPartitionStableKeepsOrderAndCounts(t *testing.T) {
	const n = 3000
	m, _, _, _ := buildTestMatrix(t, n, 4)
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(n - 1 - i) // non-trivial starting permutation
	}
	leftBin := make([]bool, m.NBins[0])
	for b := 0; b < m.NBins[0]/2; b++ {
		leftBin[b] = true
	}
	want := make([]uint32, 0, n)
	wantRight := make([]uint32, 0, n)
	for _, r := range idx {
		if leftBin[m.Cols[0][r]] {
			want = append(want, r)
		} else {
			wantRight = append(wantRight, r)
		}
	}
	want = append(want, wantRight...)
	buf := make([]uint32, n)
	nl := m.PartitionStable(0, idx, 0, n, leftBin, buf)
	if nl != len(want)-len(wantRight) {
		t.Fatalf("left count %d, want %d", nl, len(want)-len(wantRight))
	}
	for i := range idx {
		if idx[i] != want[i] {
			t.Fatalf("position %d: got row %d want %d (stability violated)", i, idx[i], want[i])
		}
	}
}

func TestContSearchMatchesBruteForce(t *testing.T) {
	const n = 2000
	m, _, _, cls := buildTestMatrix(t, n, 5)
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	arena := make([]int64, m.Stride)
	m.Accumulate(m.Cell(arena, 0), 0, idx, 0, n)
	total := make([]int64, 2)
	for _, c := range cls {
		total[c]++
	}
	var cs ContSearch
	got := cs.Best(0, m.Cell(arena, 0), m.Cuts[0], total, int64(n))
	if !got.Valid {
		t.Fatal("no valid candidate on a mixed node")
	}

	// Brute force: for every cut, compute the split gini directly from the
	// histogram and keep the best under the same deterministic order.
	counts := m.Cell(arena, 0)
	best := split.Candidate{Gini: math.Inf(1)}
	for k, c := range m.Cuts[0] {
		left := make([]int64, 2)
		for b := 0; b <= k; b++ {
			for j := 0; j < 2; j++ {
				left[j] += counts[b*2+j]
			}
		}
		right := []int64{total[0] - left[0], total[1] - left[1]}
		nl := left[0] + left[1]
		nr := right[0] + right[1]
		if nl == 0 || nr == 0 {
			continue
		}
		cand := split.Candidate{
			Attr: 0, Kind: dataset.Continuous, Threshold: c,
			Gini:  split.SplitGini(left, right, nl, nr),
			NLeft: nl, NRight: nr, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	if got.Threshold != best.Threshold || got.Gini != best.Gini ||
		got.NLeft != best.NLeft || got.NRight != best.NRight {
		t.Fatalf("Best() = %+v, brute force = %+v", got, best)
	}
	// The threshold must be one of the attribute's cuts, so LeftBins can
	// recover the boundary index exactly.
	if i := sort.SearchFloat64s(m.Cuts[0], got.Threshold); i >= len(m.Cuts[0]) || m.Cuts[0][i] != got.Threshold {
		t.Fatalf("threshold %v is not a cut value", got.Threshold)
	}
}

// TestHistWorkUnitAllocationBudget is the Hist half of the allocation gate
// wired into `make alloc-check`: after warm-up, the steady-state histogram
// loop — accumulate, boundary search, stable partition — must touch the
// allocator zero times.
func TestHistWorkUnitAllocationBudget(t *testing.T) {
	const n = 20000
	m, _, _, cls := buildTestMatrix(t, n, 6)
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	total := make([]int64, 2)
	for _, c := range cls {
		total[c]++
	}
	arena := make([]int64, m.Stride)
	buf := make([]uint32, n)
	var cs ContSearch
	leftBin := make([]bool, m.NBins[0])
	unit := func() {
		for i := range arena {
			arena[i] = 0
		}
		for a := 0; a < 2; a++ {
			m.Accumulate(m.Cell(arena, a), a, idx, 0, n)
		}
		c := cs.Best(0, m.Cell(arena, 0), m.Cuts[0], total, int64(n))
		k := sort.SearchFloat64s(m.Cuts[0], c.Threshold)
		for b := range leftBin {
			leftBin[b] = b <= k
		}
		m.PartitionStable(0, idx, 0, n, leftBin, buf)
	}
	unit() // warm-up sizes the search scratch
	if avg := testing.AllocsPerRun(10, unit); avg != 0 {
		t.Errorf("steady-state histogram loop allocates %.1f objects/op, want 0", avg)
	}
}
