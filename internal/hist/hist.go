// Package hist implements the data layer of the approximate
// histogram-binned engine (parclass.Hist): a one-pass quantile-sketch
// binning of every continuous attribute into at most MaxBins fixed bins
// (categorical attributes use their category codes directly), per-node
// class×bin histogram accumulation over a row-index view, best-split
// search over bin boundaries, and stable in-place partitioning of the
// row-index permutation — the design of "A Communication-Efficient
// Parallel Algorithm for Decision Tree" (Meng, Ke et al.), which replaces
// SPRINT's sorted attribute lists and per-level list rewriting entirely.
//
// Everything here is deterministic: the binning samples on a fixed stride,
// histograms are integer sums (associative and commutative, so any worker
// interleaving merges to the same counts), and the partition is stable, so
// the engine produces byte-identical trees for every processor count.
package hist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/split"
)

// MaxBinsLimit is the largest permitted bin count: bin indices are stored
// as uint16, so a column may map to at most 65536 distinct bins.
const MaxBinsLimit = 1 << 16

// DefaultSampleCap bounds the number of values sampled per attribute for
// the quantile sketch. 64Ki doubles comfortably past 256 bins' resolution
// while keeping the per-attribute sort of the binning pass O(1) in the
// dataset size.
const DefaultSampleCap = 1 << 16

// Matrix is the binned image of a training table: one uint16 bin index per
// (attribute, row), plus the cut points that define the bins. It is built
// once per training run (the engine's "bin" phase) and is immutable
// afterwards; the per-node state lives entirely in the row-index
// permutation and the histogram arenas, both owned by the engine.
type Matrix struct {
	// NClass is the number of class labels.
	NClass int
	// NRows is the number of training tuples.
	NRows int
	// Class is the table's class column (shared, read-only).
	Class []int32
	// Cols[a][row] is the bin index of attribute a at row.
	Cols [][]uint16
	// NBins[a] is the number of bins of attribute a (categorical: the
	// domain cardinality; continuous: len(Cuts[a])+1).
	NBins []int
	// Cuts[a] holds the ascending cut points of continuous attribute a
	// (nil for categorical). A value v falls in bin i iff i is the number
	// of cuts <= v, so the split "value < Cuts[k]" keeps exactly bins
	// 0..k on the left.
	Cuts [][]float64
	// Off[a] is the offset (in int64 cells) of attribute a's histogram in
	// a per-node arena of Stride cells; filled by FinishLayout.
	Off []int
	// Stride is the per-node arena size in cells: Σ_a NBins[a]×NClass.
	Stride int
}

// NewMatrix allocates the binned image's shell for a table with the given
// schema and class column. Columns are filled by BinContinuous /
// BinCategorical (one call per attribute, safe to run concurrently since
// each touches only its own column), then FinishLayout computes the arena
// layout.
func NewMatrix(schema *dataset.Schema, class []int32) *Matrix {
	nattr := schema.NumAttrs()
	return &Matrix{
		NClass: schema.NumClasses(),
		NRows:  len(class),
		Class:  class,
		Cols:   make([][]uint16, nattr),
		NBins:  make([]int, nattr),
		Cuts:   make([][]float64, nattr),
		Off:    make([]int, nattr),
	}
}

// QuantileCuts computes at most maxBins-1 ascending, distinct cut points
// from a deterministic stride sample of col. sample is reusable scratch
// (pass &s with s possibly nil). The cuts are actual data values taken at
// the sample's quantiles, deduplicated, so heavily repeated values
// collapse into one bin instead of wasting several.
func QuantileCuts(col []float64, maxBins, sampleCap int, sample *[]float64) []float64 {
	if sampleCap <= 0 {
		sampleCap = DefaultSampleCap
	}
	n := len(col)
	s := (*sample)[:0]
	if n <= sampleCap {
		s = append(s, col...)
	} else {
		// Fixed-stride sampling: index i*n/sampleCap is deterministic and
		// touches the column in increasing address order.
		for i := 0; i < sampleCap; i++ {
			s = append(s, col[i*n/sampleCap])
		}
	}
	*sample = s
	sort.Float64s(s)
	cuts := make([]float64, 0, maxBins-1)
	for b := 1; b < maxBins; b++ {
		c := s[b*len(s)/maxBins]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	// The lowest sampled value can never be a useful cut (nothing falls
	// strictly below it in the sample); drop it so a constant column maps
	// to a single bin.
	if len(cuts) > 0 && cuts[0] <= s[0] {
		cuts = cuts[1:]
	}
	return cuts
}

// BinContinuous computes quantile cuts for continuous attribute a over col
// and fills its bin column. sample is reusable scratch shared across calls
// by one worker.
func (m *Matrix) BinContinuous(a int, col []float64, maxBins int, sample *[]float64) {
	cuts := QuantileCuts(col, maxBins, DefaultSampleCap, sample)
	bins := make([]uint16, len(col))
	for i, v := range col {
		bins[i] = uint16(binOf(cuts, v))
	}
	m.Cuts[a] = cuts
	m.NBins[a] = len(cuts) + 1
	m.Cols[a] = bins
}

// binOf returns the bin of v: the number of cuts <= v.
func binOf(cuts []float64, v float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cuts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BinCategorical fills categorical attribute a's bin column with the
// category codes themselves (bin b = category b).
func (m *Matrix) BinCategorical(a int, col []int32, card int) error {
	if card > MaxBinsLimit {
		return fmt.Errorf("hist: categorical attribute %d has cardinality %d > %d bins", a, card, MaxBinsLimit)
	}
	bins := make([]uint16, len(col))
	for i, c := range col {
		bins[i] = uint16(c)
	}
	m.Cuts[a] = nil
	m.NBins[a] = card
	m.Cols[a] = bins
	return nil
}

// FinishLayout computes the per-node arena layout (Off, Stride) after
// every attribute has been binned.
func (m *Matrix) FinishLayout() {
	off := 0
	for a := range m.NBins {
		m.Off[a] = off
		off += m.NBins[a] * m.NClass
	}
	m.Stride = off
}

// Cell returns attribute a's histogram slice within a per-node arena.
func (m *Matrix) Cell(arena []int64, a int) []int64 {
	return arena[m.Off[a] : m.Off[a]+m.NBins[a]*m.NClass]
}

// Accumulate adds the class counts of rows idx[lo:hi] to attribute a's
// histogram dst (layout dst[bin*NClass+class]). This is the engine's
// steady-state inner loop; it allocates nothing.
func (m *Matrix) Accumulate(dst []int64, a int, idx []uint32, lo, hi int) {
	col := m.Cols[a]
	cls := m.Class
	nc := m.NClass
	if nc == 2 {
		// The synthetic workloads and most real ones are binary; lifting
		// the multiply out of the loop is worth a special case.
		for _, r := range idx[lo:hi] {
			dst[int(col[r])*2+int(cls[r])]++
		}
		return
	}
	for _, r := range idx[lo:hi] {
		dst[int(col[r])*nc+int(cls[r])]++
	}
}

// ContSearch finds the best boundary split of a binned continuous
// attribute. It is reusable scratch: a zero value works, and repeated
// calls allocate nothing once the histograms are sized.
type ContSearch struct {
	below []int64
	above []int64
}

// Best scans the bin histogram counts (layout counts[bin*nclass+class]) of
// one node and returns the best split among the len(cuts) bin boundaries.
// total is the node's class histogram and n its tuple count. The returned
// candidate is an ordinary continuous split (value < Threshold ⇒ left), so
// HIST trees serialize and predict exactly like exact-engine trees.
func (s *ContSearch) Best(attr int, counts []int64, cuts []float64, total []int64, n int64) split.Candidate {
	nclass := len(total)
	s.below = resizeZero(s.below, nclass)
	s.above = resizeZero(s.above, nclass)
	best := split.Candidate{Attr: attr, Kind: dataset.Continuous, Gini: math.Inf(1)}
	var nBelow int64
	for k := range cuts {
		// Bins 0..k lie strictly below cuts[k]; fold bin k in and test the
		// boundary after it.
		for j := 0; j < nclass; j++ {
			c := counts[k*nclass+j]
			s.below[j] += c
			nBelow += c
		}
		nl := nBelow
		nr := n - nBelow
		if nl == 0 || nr == 0 {
			continue
		}
		for j := 0; j < nclass; j++ {
			s.above[j] = total[j] - s.below[j]
		}
		g := split.SplitGini(s.below, s.above, nl, nr)
		// Boundaries arrive in increasing threshold order, so under the
		// deterministic Better order a later candidate only wins with
		// strictly lower gini (same in-place update as split.ContEval).
		if best.Valid && g >= best.Gini {
			continue
		}
		best.Gini = g
		best.Threshold = cuts[k]
		best.NLeft, best.NRight = nl, nr
		best.Valid = true
	}
	return best
}

// resizeZero returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resizeZero(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// LeftBins materializes a winning candidate's per-bin routing table for
// attribute a: leftBin[b] reports whether bin b descends to the left
// child. For a continuous winner the threshold is one of the attribute's
// cut values; for a categorical winner the subset is consulted directly.
func (m *Matrix) LeftBins(c split.Candidate) []bool {
	nb := m.NBins[c.Attr]
	leftBin := make([]bool, nb)
	if c.Kind == dataset.Continuous {
		// Threshold is cuts[k] verbatim, so SearchFloat64s lands on k;
		// bins 0..k hold exactly the values < cuts[k].
		k := sort.SearchFloat64s(m.Cuts[c.Attr], c.Threshold)
		for b := 0; b <= k && b < nb; b++ {
			leftBin[b] = true
		}
		return leftBin
	}
	for b := 0; b < nb; b++ {
		leftBin[b] = c.Subset.Has(int32(b))
	}
	return leftBin
}

// PartitionStable stably partitions idx[lo:hi] in place by attribute a's
// routing table: rows whose bin maps left are compacted to the front (in
// order), the rest follow (in order). buf is caller scratch of at least
// hi-lo entries for staging the right side. Returns the left count.
//
// Stability is what makes HIST trees independent of the processor count:
// every node's row range stays in ascending original-row order, so the
// histograms — and therefore every downstream split — are reproduced
// exactly no matter how the work was sliced.
func (m *Matrix) PartitionStable(a int, idx []uint32, lo, hi int, leftBin []bool, buf []uint32) int {
	col := m.Cols[a]
	w := lo
	nr := 0
	for i := lo; i < hi; i++ {
		r := idx[i]
		if leftBin[col[r]] {
			idx[w] = r
			w++
		} else {
			buf[nr] = r
			nr++
		}
	}
	copy(idx[w:hi], buf[:nr])
	return w - lo
}
