package core

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/alist"
	"repro/internal/probe"
)

// allocFixture holds a warmed-up MemStore work-unit setup: a sorted list in
// slot 0, a sealed probe, and a scratch whose buffers have been through one
// E and one S unit (the first unit sizes the arenas; every later unit must
// not allocate).
type allocFixture struct {
	st    *alist.MemStore
	recs  []alist.Record
	total []int64
	prb   probe.Leaf
	nl    int64
	sc    *scratch
}

func newAllocFixture(tb testing.TB, n int) *allocFixture {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	recs := make([]alist.Record, n)
	perm := rng.Perm(n)
	total := make([]int64, 2)
	for i := range recs {
		cls := int32(rng.Intn(2))
		recs[i] = alist.Record{Value: float64(rng.Intn(n / 4)), Tid: uint32(perm[i]), Class: cls}
		total[cls]++
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Value != recs[j].Value {
			return recs[i].Value < recs[j].Value
		}
		return recs[i].Tid < recs[j].Tid
	})
	st := alist.NewMemStore(1, 2)
	if _, err := st.Reserve(0, 0, n); err != nil {
		tb.Fatal(err)
	}
	if err := st.WriteAt(0, 0, 0, recs); err != nil {
		tb.Fatal(err)
	}
	fac, err := probe.NewFactory(probe.GlobalBit, n)
	if err != nil {
		tb.Fatal(err)
	}
	var nl int64
	median := float64(n / 8)
	for _, r := range recs {
		if r.Value < median {
			nl++
		}
	}
	prb := fac.ForLeaf(nl, int64(n)-nl)
	for _, r := range recs {
		prb.Set(r.Tid, r.Value < median)
	}
	prb.Seal()

	sc := &scratch{}
	sc.contScan = func(recs []alist.Record) error {
		sc.cont.PushChunk(recs)
		return nil
	}
	sc.splitScan = sc.splitRuns
	f := &allocFixture{st: st, recs: recs, total: total, prb: prb, nl: nl, sc: sc}
	// Warm up: first units size every arena buffer.
	f.runEUnit(tb)
	f.runSUnit(tb)
	return f
}

// runEUnit performs one continuous E work unit over slot 0.
func (f *allocFixture) runEUnit(tb testing.TB) {
	f.sc.cont.Reset(0, f.total)
	if err := f.st.Scan(0, 0, 0, len(f.recs), f.sc.contScan); err != nil {
		tb.Fatal(err)
	}
	if c := f.sc.cont.Finish(); !c.Valid {
		tb.Fatal("E unit found no candidate")
	}
}

// runSUnit performs one S work unit: slot 0 is split into two regions of
// slot 1, which is recycled afterwards exactly as the engines recycle level
// slots.
func (f *allocFixture) runSUnit(tb testing.TB) {
	n := len(f.recs)
	offL, err := f.st.Reserve(0, 1, int(f.nl))
	if err != nil {
		tb.Fatal(err)
	}
	offR, err := f.st.Reserve(0, 1, n-int(f.nl))
	if err != nil {
		tb.Fatal(err)
	}
	sc := f.sc
	sc.apL.Reset(f.st, 0, 1, offL, int(f.nl))
	sc.apR.Reset(f.st, 0, 1, offR, n-int(f.nl))
	sc.useL, sc.useR = true, true
	sc.armProbe(f.prb, false)
	if err := f.st.Scan(0, 0, 0, n, sc.splitScan); err != nil {
		tb.Fatal(err)
	}
	if err := sc.apL.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := sc.apR.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := f.st.Reset(0, 1); err != nil {
		tb.Fatal(err)
	}
}

// TestWorkUnitAllocationBudget is the allocation-budget gate wired into
// `make verify`: after warm-up, E and S work units on MemStore must touch
// the allocator zero times.
func TestWorkUnitAllocationBudget(t *testing.T) {
	f := newAllocFixture(t, 20000)
	if avg := testing.AllocsPerRun(10, func() { f.runEUnit(t) }); avg != 0 {
		t.Errorf("E work unit allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() { f.runSUnit(t) }); avg != 0 {
		t.Errorf("S work unit allocates %.1f objects/op, want 0", avg)
	}
}

// TestBuildMallocsBudget bounds the whole-build allocation count on the
// paper's F7 workload: the scratch arenas must keep the per-build Mallocs
// delta more than an order of magnitude below the pre-arena baseline
// (5.88M mallocs for F7/A32/100K serial MemStore).
func TestBuildMallocsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full F7/100K build")
	}
	tbl := synthTable(t, 7, 32, 100000, 42)
	// One warm-up build so lazily initialized globals don't bill this run.
	if _, _, err := Build(tbl, Config{Algorithm: Serial}); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, _, err := Build(tbl, Config{Algorithm: Serial}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	delta := after.Mallocs - before.Mallocs
	t.Logf("build Mallocs delta = %d", delta)
	if delta > 588_000 {
		t.Errorf("build allocated %d objects, budget 588000 (10x below the 5.88M baseline)", delta)
	}
}

func BenchmarkEUnit(b *testing.B) {
	f := newAllocFixture(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.runEUnit(b)
	}
}

func BenchmarkSUnit(b *testing.B) {
	f := newAllocFixture(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.runSUnit(b)
	}
}
