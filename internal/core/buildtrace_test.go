package core

import (
	"testing"

	"repro/internal/trace"
)

// TestBuildRecorderReconciles runs every scheme with an external Recorder
// and checks the observability layer's books: each phase saw work units,
// and summing any active worker's recorded time (compute + barrier + idle)
// reproduces the measured build wall clock. The tolerance is loose (10% +
// 25ms) because CI machines are noisy; EXPERIMENTS.md documents the
// measured reconciliation on quiet hardware.
func TestBuildRecorderReconciles(t *testing.T) {
	tbl := synthTable(t, 7, 9, 4000, 1)
	for _, alg := range []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecPar, Hist} {
		t.Run(alg.String(), func(t *testing.T) {
			procs := 3
			if alg == Serial {
				procs = 1
			}
			rec := trace.NewRecorder(procs)
			_, tm, err := Build(tbl, Config{Algorithm: alg, Procs: procs, Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			b := rec.Snapshot()
			if len(b.Workers) != procs {
				t.Fatalf("workers = %d, want %d", len(b.Workers), procs)
			}

			ph := b.PhaseSeconds()
			var units [trace.NumBuildPhases]int64
			for _, w := range b.Workers {
				for _, lv := range w.Levels {
					for p := 0; p < int(trace.NumBuildPhases); p++ {
						units[p] += lv.Units[p]
					}
				}
			}
			want := []trace.BuildPhase{trace.PhaseEval, trace.PhaseWinner, trace.PhaseSplit}
			if alg == Hist {
				want = append(want, trace.PhaseBin)
			}
			for _, p := range want {
				if units[p] == 0 {
					t.Errorf("%v: no %v units recorded", alg, p)
				}
			}
			if alg != Hist && units[trace.PhaseBin] != 0 {
				t.Errorf("%v: exact engine recorded %d bin units", alg, units[trace.PhaseBin])
			}
			_ = ph

			// Each worker that did anything must account for roughly the
			// whole build wall: its compute plus barrier plus idle time.
			wall := tm.Build.Seconds()
			tol := wall*0.10 + 0.025
			for w, sec := range b.WorkerSeconds() {
				if sec == 0 {
					continue // worker never participated (possible under SUBTREE)
				}
				if diff := wall - sec; diff > tol || diff < -tol {
					t.Errorf("%v worker %d: recorded %.4fs vs build wall %.4fs (tol %.4fs)",
						alg, w, sec, wall, tol)
				}
			}
		})
	}
}

// TestBuildRecorderLaneMismatch checks the config guard: an external
// recorder narrower than Procs is rejected up front.
func TestBuildRecorderLaneMismatch(t *testing.T) {
	tbl := synthTable(t, 1, 9, 100, 2)
	rec := trace.NewRecorder(1)
	_, _, err := Build(tbl, Config{Algorithm: Basic, Procs: 2, Recorder: rec})
	if err == nil {
		t.Fatal("want error for recorder with too few lanes")
	}
}
