package core

import (
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// runFWK implements the Fixed-Window-K scheme (paper Fig. 4). Leaves of a
// level are processed in blocks of K. Within a block, processors grab
// (leaf, attribute) E units dynamically, leaf by leaf; the last processor to
// finish a leaf's evaluation immediately builds that leaf's probe (W),
// overlapping W_i with E_{i+1..K} — the task pipelining that removes BASIC's
// serial W bottleneck. One barrier per block separates evaluation from the
// block's split phase. Children are assigned to the 2K per-attribute file
// slots with the purity pre-test and hole-free relabeling of §3.2.2.
func (e *engine) runFWK(root *leafState) error {
	frontier := e.rootFrontier(root)
	if len(frontier) == 0 {
		return nil
	}
	P := e.cfg.Procs
	K := e.cfg.WindowK
	bar := sched.NewBarrier(P)
	var ferr sched.ErrOnce

	var next []*leafState
	var done bool
	level := 0

	worker := func(id int) {
		ln := e.rec.Lane(id)
		sc := e.newScratch()
		for {
			// Snapshot the frontier once per level: the master reassigns
			// the shared variable at level end, and the block-loop
			// condition must not observe that write mid-level.
			cur := frontier
			lvl := level
			nextBase := e.pairBase(lvl + 1)
			for blkStart := 0; blkStart < len(cur); blkStart += K {
				blk := cur[blkStart:min(blkStart+K, len(cur))]

				// E phase with pipelined W: walk the block's leaves in
				// order, grabbing attributes dynamically within each leaf.
				for _, l := range blk {
					for !ferr.Failed() {
						a := l.eNext.Add(1) - 1
						if a >= int64(e.nattr) {
							break
						}
						t0 := time.Now()
						if err := e.evalLeafAttr(l, int(a), sc); err != nil {
							ferr.Set(err)
							break
						}
						ln.Add(lvl, trace.PhaseEval, time.Since(t0))
						if l.eDone.Add(1) == int64(e.nattr) {
							// Last processor finishing on this leaf: do W
							// now, while others evaluate later leaves.
							tw := time.Now()
							if err := e.leafWinnerRegister(l, nextBase, sc); err != nil {
								ferr.Set(err)
							}
							ln.Add(lvl, trace.PhaseWinner, time.Since(tw))
						}
					}
				}
				// End-of-block synchronization (one barrier per K-block).
				if !bar.TimedWait(ln, lvl) {
					return // build aborted by a dead worker's teardown
				}

				// S phase for the whole block, (leaf, attribute) units.
				for _, l := range blk {
					for !ferr.Failed() {
						a := l.sNext.Add(1) - 1
						if a >= int64(e.nattr) {
							break
						}
						t0 := time.Now()
						if err := e.splitLeafAttr(l, int(a), sc); err != nil {
							ferr.Set(err)
						}
						ln.Add(lvl, trace.PhaseSplit, time.Since(t0))
						if l.sDone.Add(1) == int64(e.nattr) {
							releaseLeaf(l)
						}
					}
				}
				if !bar.TimedWait(ln, lvl) {
					return // build aborted by a dead worker's teardown
				}
			}

			// Level bookkeeping by the master; slot recycling is accounted
			// as S-phase cleanup.
			if id == 0 {
				t0 := time.Now()
				next = e.windowLevelEnd(frontier, lvl, &ferr)
				frontier = next
				level++
				e.nextChild.Store(0)
				done = len(frontier) == 0
				ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), 0)
			}
			if !bar.TimedWait(ln, lvl) {
				return
			}
			if done {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for id := 0; id < P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// A panicking worker can never rejoin the barrier protocol;
			// breaking the barrier releases every surviving peer.
			sched.Guard(&ferr, bar.Abort, id, func() { worker(id) })
		}(id)
	}
	wg.Wait()
	return ferr.Get()
}

// leafWinnerRegister performs the W step for one leaf and assigns its valid
// (non-pure) children to window file slots. Valid children across the level
// are numbered consecutively by an atomic counter and placed round-robin in
// the K next-level slots — the relabeling scheme that leaves no holes in the
// K-block schedule.
func (e *engine) leafWinnerRegister(l *leafState, nextBase int, sc *scratch) error {
	if err := e.winnerAndProbe(l, sc); err != nil {
		return err
	}
	if !l.didSplit {
		return nil
	}
	for _, c := range l.children {
		if c.terminal {
			continue
		}
		idx := e.nextChild.Add(1) - 1
		slot := nextBase + int(idx%int64(e.cfg.WindowK))
		if err := e.registerChild(c, slot); err != nil {
			return err
		}
	}
	return nil
}

// windowLevelEnd builds the next frontier in leaf order and recycles the
// level's file slots; shared by FWK and MWK.
func (e *engine) windowLevelEnd(frontier []*leafState, level int, ferr *sched.ErrOnce) []*leafState {
	var next []*leafState
	for li, l := range frontier {
		if !ferr.Failed() && l.didSplit {
			for _, c := range l.children {
				if !c.terminal {
					next = append(next, childLeafState(c, li, e.nattr))
				}
			}
		}
		releaseLeaf(l)
	}
	curBase := e.pairBase(level)
	slots := make([]int, e.cfg.WindowK)
	for i := range slots {
		slots[i] = curBase + i
	}
	if err := e.resetSlots(slots...); err != nil {
		ferr.Set(err)
	}
	if ferr.Failed() {
		return nil
	}
	return next
}
