package core

import (
	"time"

	"repro/internal/trace"
)

// runSerial grows the tree breadth-first on one processor, exactly as serial
// SPRINT does (paper §2). When cfg.Trace is set, every E/W/S work unit's
// wall-clock cost is recorded; the virtual-time simulator replays those
// costs under each parallel scheme's scheduling policy.
func (e *engine) runSerial(root *leafState) error {
	rec := e.cfg.Trace
	ln := e.rec.Lane(0)
	sc := e.newScratch()
	frontier := e.rootFrontier(root)
	level := 0
	for len(frontier) > 0 {
		var lt *trace.Level
		if rec != nil {
			rec.Levels = append(rec.Levels, trace.Level{
				Leaves: make([]trace.Leaf, len(frontier)),
			})
			lt = &rec.Levels[len(rec.Levels)-1]
		}

		// E: evaluate attributes. The serial scan order (attribute
		// outer, leaf inner) reads each attribute's physical files once,
		// sequentially, per level — the access pattern BASIC preserves.
		for a := 0; a < e.nattr; a++ {
			for li, l := range frontier {
				t0 := time.Now()
				if err := e.evalLeafAttr(l, a, sc); err != nil {
					return err
				}
				ln.Add(level, trace.PhaseEval, time.Since(t0))
				if lt != nil {
					if lt.Leaves[li].E == nil {
						lt.Leaves[li] = trace.Leaf{
							Parent: l.parentIdx,
							N:      l.n,
							E:      make([]float64, e.nattr),
							S:      make([]float64, e.nattr),
						}
					}
					lt.Leaves[li].E[a] = time.Since(t0).Seconds()
				}
			}
		}

		// W: winner selection and probe construction, per leaf.
		for li, l := range frontier {
			t0 := time.Now()
			if err := e.winnerAndProbe(l, sc); err != nil {
				return err
			}
			ln.Add(level, trace.PhaseWinner, time.Since(t0))
			if lt != nil {
				lt.Leaves[li].W = time.Since(t0).Seconds()
				lt.Leaves[li].Split = l.didSplit
			}
		}

		// Assign child slots: left children share one alternate slot,
		// right children the other (the paper's 4-file scheme).
		tw := time.Now()
		nextBase := e.pairBase(level + 1)
		for _, l := range frontier {
			if !l.didSplit {
				continue
			}
			for side, c := range l.children {
				if c.terminal {
					continue
				}
				if err := e.registerChild(c, nextBase+side); err != nil {
					return err
				}
			}
		}
		ln.AddN(level, trace.PhaseWinner, time.Since(tw), 0)

		// S: split attribute lists, per attribute per leaf.
		for a := 0; a < e.nattr; a++ {
			for li, l := range frontier {
				t0 := time.Now()
				if err := e.splitLeafAttr(l, a, sc); err != nil {
					return err
				}
				ln.Add(level, trace.PhaseSplit, time.Since(t0))
				if lt != nil {
					lt.Leaves[li].S[a] = time.Since(t0).Seconds()
				}
			}
		}

		// Build the next frontier in leaf order, left before right, and
		// release this level's resources.
		var next []*leafState
		for li, l := range frontier {
			if l.didSplit {
				for _, c := range l.children {
					if !c.terminal {
						next = append(next, childLeafState(c, li, e.nattr))
						if lt != nil {
							lt.Leaves[li].NValidChildren++
						}
					}
				}
			}
			releaseLeaf(l)
		}
		curBase := e.pairBase(level)
		if err := e.resetSlots(curBase, curBase+1); err != nil {
			return err
		}
		frontier = next
		level++
	}
	return nil
}
