package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// runBasic implements the BASIC scheme (paper Fig. 3): per level, the E and
// S phases are attribute-data-parallel with dynamic attribute scheduling
// (an atomic counter replaces the paper's counter+lock), separated by
// barriers; the W phase — winner selection and probe construction for every
// leaf — is performed serially by a designated master while the other
// processors wait at the barrier.
func (e *engine) runBasic(root *leafState) error {
	frontier := e.rootFrontier(root)
	if len(frontier) == 0 {
		return nil
	}
	P := e.cfg.Procs
	bar := sched.NewBarrier(P)
	var ferr sched.ErrOnce
	var eCtr, sCtr atomic.Int64

	// Shared level state; written only by the master between barriers.
	var next []*leafState
	var done bool
	level := 0

	worker := func(id int) {
		ln := e.rec.Lane(id)
		sc := e.newScratch()
		for {
			// lvl is this iteration's level, captured while the master's
			// level++ is still a barrier away.
			lvl := level

			// E phase: dynamically grab attributes; evaluate the grabbed
			// attribute for all leaves of the level so each attribute's
			// physical files are read once, sequentially.
			for !ferr.Failed() {
				a := int(eCtr.Add(1) - 1)
				if a >= e.nattr {
					break
				}
				t0 := time.Now()
				for _, l := range frontier {
					if err := e.evalLeafAttr(l, a, sc); err != nil {
						ferr.Set(err)
						break
					}
				}
				ln.AddN(lvl, trace.PhaseEval, time.Since(t0), int64(len(frontier)))
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}

			// W phase: the master alone finds winners and builds probes —
			// the sequential bottleneck MWK later removes.
			if id == 0 && !ferr.Failed() {
				nextBase := e.pairBase(level + 1)
				for _, l := range frontier {
					t0 := time.Now()
					if err := e.winnerAndProbe(l, sc); err != nil {
						ferr.Set(err)
						break
					}
					if !l.didSplit {
						ln.Add(lvl, trace.PhaseWinner, time.Since(t0))
						continue
					}
					for side, c := range l.children {
						if c.terminal {
							continue
						}
						if err := e.registerChild(c, nextBase+side); err != nil {
							ferr.Set(err)
							break
						}
					}
					ln.Add(lvl, trace.PhaseWinner, time.Since(t0))
				}
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}

			// S phase: dynamically grab attributes again and split.
			for !ferr.Failed() {
				a := int(sCtr.Add(1) - 1)
				if a >= e.nattr {
					break
				}
				t0 := time.Now()
				for _, l := range frontier {
					if err := e.splitLeafAttr(l, a, sc); err != nil {
						ferr.Set(err)
						break
					}
				}
				ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), int64(len(frontier)))
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}

			// Level bookkeeping by the master (slot resets are split-phase
			// cleanup, so their cost lands in S with zero extra units).
			if id == 0 {
				t0 := time.Now()
				next = nil
				for li, l := range frontier {
					if !ferr.Failed() && l.didSplit {
						for _, c := range l.children {
							if !c.terminal {
								next = append(next, childLeafState(c, li, e.nattr))
							}
						}
					}
					releaseLeaf(l)
				}
				curBase := e.pairBase(level)
				if err := e.resetSlots(curBase, curBase+1); err != nil {
					ferr.Set(err)
				}
				if ferr.Failed() {
					next = nil
				}
				frontier = next
				level++
				eCtr.Store(0)
				sCtr.Store(0)
				done = len(frontier) == 0
				ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), 0)
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}
			if done {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for id := 0; id < P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// A panicking worker can never rejoin the barrier protocol;
			// breaking the barrier releases every surviving peer.
			sched.Guard(&ferr, bar.Abort, id, func() { worker(id) })
		}(id)
	}
	wg.Wait()
	return ferr.Get()
}
