package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestContextCancellation cancels builds mid-flight for every scheme; each
// must terminate promptly with the context's error and never hang at a
// barrier or condition wait.
func TestContextCancellation(t *testing.T) {
	tbl := synthTable(t, 7, 16, 4000, 31)
	for _, alg := range []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecPar} {
		t.Run(alg.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, _, err := Build(tbl, Config{
					Algorithm: alg, Procs: 3, Context: ctx,
				})
				done <- err
			}()
			// Let the build get going, then pull the plug.
			time.Sleep(5 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				// nil is allowed only if the build won the race and
				// finished before the cancel took effect.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("unexpected error: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("build did not observe cancellation")
			}
		})
	}
}

// TestPreCancelledContext verifies a dead-on-arrival context fails fast in
// the setup phase.
func TestPreCancelledContext(t *testing.T) {
	tbl := synthTable(t, 1, 9, 200, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Build(tbl, Config{Algorithm: MWK, Procs: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestDeadlineExceeded verifies deadline-based cancellation surfaces the
// deadline error.
func TestDeadlineExceeded(t *testing.T) {
	tbl := synthTable(t, 7, 32, 20000, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := Build(tbl, Config{Algorithm: Subtree, Procs: 4, Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
