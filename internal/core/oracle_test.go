package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/synth"
	"repro/internal/tree"
)

// This file implements an independent reference classifier: a naive,
// direct-recursion decision-tree builder that works straight off the
// columnar table with O(n log n) sorting per node and exhaustive candidate
// enumeration, sharing *no* code with the engine except the gini arithmetic
// and the Candidate ordering. Its trees must be identical to SPRINT's,
// which validates the entire attribute-list machinery (pre-sort, probes,
// order-preserving splits, purity pre-test) against first principles.

// oracleBuild grows a tree by direct recursion over row index sets.
func oracleBuild(tbl *dataset.Table, minSplit int64, maxDepth int) *tree.Tree {
	rows := make([]int, tbl.NumTuples())
	for i := range rows {
		rows[i] = i
	}
	root := oracleNode(tbl, rows, 0, minSplit, maxDepth)
	t := &tree.Tree{Root: root, Schema: tbl.Schema()}
	return t
}

func oracleHist(tbl *dataset.Table, rows []int) []int64 {
	h := make([]int64, tbl.Schema().NumClasses())
	for _, r := range rows {
		h[tbl.Class(r)]++
	}
	return h
}

func oracleTerminal(hist []int64, n int64, level, maxDepth int, minSplit int64) bool {
	if n < minSplit {
		return true
	}
	if maxDepth > 0 && level >= maxDepth {
		return true
	}
	for _, c := range hist {
		if c == n {
			return true
		}
	}
	return false
}

func oracleNode(tbl *dataset.Table, rows []int, level int, minSplit int64, maxDepth int) *tree.Node {
	hist := oracleHist(tbl, rows)
	n := int64(len(rows))
	node := &tree.Node{
		Level:       level,
		N:           n,
		ClassCounts: hist,
		Class:       tree.MajorityClass(hist),
	}
	if oracleTerminal(hist, n, level, maxDepth, minSplit) {
		return node
	}

	best := split.Candidate{Gini: math.Inf(1)}
	schema := tbl.Schema()
	for a := 0; a < schema.NumAttrs(); a++ {
		var cand split.Candidate
		if schema.Attrs[a].Kind == dataset.Continuous {
			cand = oracleBestCont(tbl, rows, a, hist)
		} else {
			cand = oracleBestCat(tbl, rows, a, hist)
		}
		if cand.Better(best) {
			best = cand
		}
	}
	if !best.Valid {
		return node
	}

	var left, right []int
	for _, r := range rows {
		var v float64
		if best.Kind == dataset.Continuous {
			v = tbl.ContValue(best.Attr, r)
		} else {
			v = float64(tbl.CatValue(best.Attr, r))
		}
		if best.GoesLeft(v) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	winCopy := best
	node.Split = &winCopy
	node.Left = oracleNode(tbl, left, level+1, minSplit, maxDepth)
	node.Right = oracleNode(tbl, right, level+1, minSplit, maxDepth)
	return node
}

// oracleBestCont enumerates every mid-point of the sorted distinct values.
func oracleBestCont(tbl *dataset.Table, rows []int, a int, total []int64) split.Candidate {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = tbl.ContValue(a, r)
	}
	type vc struct {
		v float64
		c int32
	}
	recs := make([]vc, len(rows))
	for i, r := range rows {
		recs[i] = vc{tbl.ContValue(a, r), tbl.Class(r)}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].v < recs[j].v })

	best := split.Candidate{Attr: a, Kind: dataset.Continuous, Gini: math.Inf(1)}
	n := int64(len(recs))
	below := make([]int64, len(total))
	var nb int64
	for i := 0; i < len(recs)-1; i++ {
		below[recs[i].c]++
		nb++
		if recs[i].v == recs[i+1].v {
			continue
		}
		above := make([]int64, len(total))
		for j := range above {
			above[j] = total[j] - below[j]
		}
		g := split.SplitGini(below, above, nb, n-nb)
		cand := split.Candidate{
			Attr: a, Kind: dataset.Continuous, Gini: g,
			Threshold: (recs[i].v + recs[i+1].v) / 2,
			NLeft:     nb, NRight: n - nb, Valid: true,
		}
		if cand.Better(best) {
			best = cand
		}
	}
	return best
}

// oracleBestCat enumerates every bipartition of present categories (the
// oracle forces exhaustive enumeration, so comparisons with the engine must
// use datasets whose categorical cardinalities stay under the greedy
// threshold).
func oracleBestCat(tbl *dataset.Table, rows []int, a int, total []int64) split.Candidate {
	card := tbl.Schema().Attrs[a].Cardinality()
	nclass := len(total)
	counts := make([]int64, nclass*card)
	catTot := make([]int64, card)
	for _, r := range rows {
		c := int(tbl.CatValue(a, r))
		counts[int(tbl.Class(r))*card+c]++
		catTot[c]++
	}
	var present []int32
	for c := 0; c < card; c++ {
		if catTot[c] > 0 {
			present = append(present, int32(c))
		}
	}
	best := split.Candidate{Attr: a, Kind: dataset.Categorical, Gini: math.Inf(1)}
	if len(present) < 2 {
		return best
	}
	n := int64(len(rows))
	for mask := uint64(1); mask < 1<<uint(len(present)); mask += 2 {
		if mask == 1<<uint(len(present))-1 {
			continue
		}
		left := make([]int64, nclass)
		right := append([]int64(nil), total...)
		var nl int64
		for i, cat := range present {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			for j := 0; j < nclass; j++ {
				left[j] += counts[j*card+int(cat)]
				right[j] -= counts[j*card+int(cat)]
			}
			nl += catTot[cat]
		}
		if nl == 0 || nl == n {
			continue
		}
		g := split.SplitGini(left, right, nl, n-nl)
		cand := split.Candidate{Attr: a, Kind: dataset.Categorical, Gini: g,
			NLeft: nl, NRight: n - nl, Valid: true}
		if cand.Better(best) {
			set := split.NewCatSet(card)
			for i, cat := range present {
				if mask&(1<<uint(i)) != 0 {
					set.Add(cat)
				}
			}
			cand.Subset = set
			best = cand
		}
	}
	return best
}

// TestOracleAgreement compares SPRINT (and one parallel scheme) against the
// direct-recursion oracle on varied datasets. Any divergence in the
// attribute-list pipeline — sorting, probes, split routing, histograms —
// would surface as a structural difference.
func TestOracleAgreement(t *testing.T) {
	for _, cse := range []struct {
		fn, n   int
		seed    int64
		perturb float64
	}{
		{1, 300, 1, 0},
		{2, 300, 2, 0.05},
		{3, 250, 3, 0.05},
		{6, 400, 4, 0},
		{8, 350, 5, 0.05},
		{10, 300, 6, 0},
	} {
		name := fmt.Sprintf("F%d/seed%d", cse.fn, cse.seed)
		t.Run(name, func(t *testing.T) {
			tbl, err := synth.Generate(synth.Config{
				Function: cse.fn, Attrs: 9, Tuples: cse.n,
				Seed: cse.seed, Perturbation: cse.perturb,
			})
			if err != nil {
				t.Fatal(err)
			}
			// The oracle enumerates all categorical subsets; force the
			// engine to as well (car has 20 categories, above the default
			// greedy threshold, so raise it).
			want := oracleBuild(tbl, 2, 8)
			got, _, err := Build(tbl, Config{
				Algorithm: Serial, MaxDepth: 8, MaxEnumCard: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tree.Equal(want, got) {
				t.Fatalf("serial SPRINT differs from oracle: %s", tree.Diff(want, got))
			}
			par, _, err := Build(tbl, Config{
				Algorithm: MWK, Procs: 3, MaxDepth: 8, MaxEnumCard: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tree.Equal(want, par) {
				t.Fatalf("MWK differs from oracle: %s", tree.Diff(want, par))
			}
		})
	}
}
