package core

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/alist"
	"repro/internal/alist/faultstore"
)

// TestPhaseFaults injects one permanent fault per build phase — E, W and S —
// for every scheme, on real disk storage with retrying disabled, and checks
// the three teardown guarantees: the injected error comes back, no goroutine
// outlives the build, and the temp directory is removed. The rules target
// phases through operation counts that hold across all six schemes:
//
//   - E is the first scan of the build (setup never scans).
//   - W is the first Reserve after setup's exactly-nattr reserves
//     (registerChild reserving child regions).
//   - S is the first WriteAt after setup's exactly-nattr writes (a split
//     appender flush; the W scan only reads and sets probe bits).
func TestPhaseFaults(t *testing.T) {
	const nattr = 9
	tbl := synthTable(t, 7, nattr, 200, 11)

	phases := []struct {
		name string
		rule faultstore.Rule
	}{
		{"E", faultstore.Match(faultstore.OpScan, 0, 0, faultstore.Fail)},
		{"W", faultstore.Match(faultstore.OpReserve, nattr, 0, faultstore.Fail)},
		{"S", faultstore.Match(faultstore.OpWrite, nattr, 0, faultstore.Fail)},
	}

	for _, alg := range []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecPar} {
		for _, ph := range phases {
			t.Run(fmt.Sprintf("%v/%s", alg, ph.name), func(t *testing.T) {
				tmp := t.TempDir()
				t.Setenv("TMPDIR", tmp)

				cfg := Config{
					Algorithm: alg, Procs: 3, MaxDepth: 4,
					Storage: Disk,
					Retry:   alist.RetryPolicy{MaxAttempts: 1},
				}
				var fs *faultstore.Store
				cfg.StoreWrap = func(st alist.Store) alist.Store {
					fs = faultstore.New(st, ph.rule)
					return fs
				}

				base := runtime.NumGoroutine()
				done := make(chan error, 1)
				go func() {
					_, _, err := Build(tbl, cfg)
					done <- err
				}()
				var err error
				select {
				case err = <-done:
				case <-time.After(30 * time.Second):
					t.Fatalf("build hung on injected %s-phase fault", ph.name)
				}

				waitGoroutines(t, base)
				checkNoTempDirs(t, tmp)

				if !errors.Is(err, faultstore.ErrInjected) {
					t.Fatalf("want the injected error, got %v", err)
				}
				if fs.Injected() == 0 {
					t.Fatal("fault plan never fired")
				}
			})
		}
	}
}
