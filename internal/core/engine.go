package core

import (
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alist"
	"repro/internal/dataset"
	"repro/internal/probe"
	"repro/internal/sched"
	"repro/internal/split"
	"repro/internal/trace"
	"repro/internal/tree"
)

// segRef locates a leaf's attribute list inside a store slot.
type segRef struct {
	slot int
	off  int64
}

// childInfo describes one child produced by a leaf's split.
type childInfo struct {
	node     *tree.Node
	n        int64
	hist     []int64
	terminal bool // purity pre-test: child will not be processed further
	segs     []segRef
	rowLo    int // Hist only: start of the child's row-index range
}

// leafState is the engine's working state for one frontier leaf.
type leafState struct {
	node      *tree.Node
	parentIdx int // index of parent in the previous frontier; -1 for root
	n         int64
	hist      []int64
	segs      []segRef
	cands     []split.Candidate
	win       split.Candidate
	didSplit  bool
	prb       probe.Leaf
	children  [2]*childInfo

	// Hist-engine state: the leaf's tuples are rows idx[rowLo:rowLo+n] of
	// the engine's row-index permutation, and histLeft routes the winning
	// attribute's bins to the children.
	rowLo    int
	histLeft []bool

	// Scheduling state for the dynamic (per-leaf) schemes.
	eNext atomic.Int64 // next E attribute to grab
	eDone atomic.Int64 // completed E units
	sNext atomic.Int64 // next S attribute to grab
	sDone atomic.Int64 // completed S units
}

// engine holds the shared state of one build.
type engine struct {
	cfg     Config
	schema  *dataset.Schema
	tbl     *dataset.Table
	nattr   int
	nclass  int
	ntuples int
	store   alist.Store
	bscan   alist.BufferedScanner // non-nil when store scans through caller buffers
	probes  probe.Factory
	timings Timings
	rec     *trace.Recorder

	tmpDir    string // non-empty when we created it and must remove it
	nextChild atomic.Int64
}

// ErrWorkerPanic marks a build failure caused by a recovered panic in a
// worker goroutine (or in the build goroutine itself for the serial
// engine). The panic is contained: peers are released from every barrier,
// condition wait and FREE-queue channel, temp storage is torn down, and
// Build returns this error instead of crashing the process. It aliases
// sched.ErrWorkerPanic, the shared containment error of every scheduler.
var ErrWorkerPanic = sched.ErrWorkerPanic

// Build grows a decision tree over tbl according to cfg. It returns the
// tree and the phase timing breakdown. The named results let the cleanup
// defers below fold teardown failures (store Close, temp-dir removal) and
// recovered panics into the returned error.
func Build(tbl *dataset.Table, cfg Config) (tr *tree.Tree, tm Timings, err error) {
	// Registered first so it runs last: by the time a panic (the serial
	// engine's, or one re-thrown during unwinding) reaches this recover,
	// the store has been closed and the temp dir removed.
	defer func() {
		if p := recover(); p != nil {
			tr = nil
			err = fmt.Errorf("%w: %v\n%s", ErrWorkerPanic, p, debug.Stack())
		}
	}()
	cfg, err = cfg.withDefaults()
	if err != nil {
		return nil, Timings{}, err
	}
	e := &engine{
		cfg:     cfg,
		schema:  tbl.Schema(),
		tbl:     tbl,
		nattr:   tbl.Schema().NumAttrs(),
		nclass:  tbl.Schema().NumClasses(),
		ntuples: tbl.NumTuples(),
		rec:     cfg.Recorder,
	}
	if e.ntuples == 0 {
		return nil, Timings{}, fmt.Errorf("core: empty training set")
	}
	if cfg.AttrMask != nil && len(cfg.AttrMask) != e.nattr {
		return nil, Timings{}, fmt.Errorf("core: AttrMask has %d entries, schema has %d attributes",
			len(cfg.AttrMask), e.nattr)
	}

	// The Hist engine has no attribute lists: no store, no setup/sort
	// phases, no probes. Everything — including the binning pass — runs
	// inside the build wall clock, recorded as its own phase.
	if cfg.Algorithm == Hist {
		root := e.setupHist()
		t0 := time.Now()
		err = e.runHist(root)
		e.timings.Build = time.Since(t0)
		if err != nil {
			return nil, e.timings, err
		}
		tr = &tree.Tree{Root: root.node, Schema: e.schema}
		renumber(tr)
		return tr, e.timings, nil
	}

	slots := e.initialSlots()
	if cfg.storeOverride != nil {
		e.store = cfg.storeOverride
		if err := e.store.EnsureSlots(slots); err != nil {
			return nil, Timings{}, err
		}
	} else {
		switch cfg.Storage {
		case Memory:
			e.store = alist.NewMemStore(e.nattr, slots)
		case Disk:
			dir := cfg.TempDir
			if dir == "" {
				d, mkErr := os.MkdirTemp("", "parclass-alist-")
				if mkErr != nil {
					return nil, Timings{}, fmt.Errorf("core: creating temp dir: %w", mkErr)
				}
				dir = d
				e.tmpDir = d
				// Registered before the store constructors run, so a
				// constructor failure can no longer leak the directory;
				// LIFO defer order puts this removal after the store's
				// Close below.
				defer func() {
					if rmErr := os.RemoveAll(d); rmErr != nil && err == nil {
						tr = nil
						err = fmt.Errorf("core: removing temp dir: %w", rmErr)
					}
				}()
			}
			if cfg.CombinedFiles {
				st, cErr := alist.NewCombinedFileStore(dir, e.nattr, slots, e.ntuples)
				if cErr != nil {
					return nil, Timings{}, cErr
				}
				e.store = st
			} else {
				st, cErr := alist.NewFileStore(dir, e.nattr, slots)
				if cErr != nil {
					return nil, Timings{}, cErr
				}
				e.store = st
			}
		}
	}
	if cfg.StoreWrap != nil {
		e.store = cfg.StoreWrap(e.store)
	}
	// Transient store faults (interrupted syscalls, short writes, injected
	// chaos faults) are healed in place by a bounded retry layer; permanent
	// errors pass straight through to the engine error paths.
	e.store = alist.Retrying(e.store, cfg.Retry)
	e.bscan, _ = e.store.(alist.BufferedScanner)
	defer func() {
		if cErr := e.store.Close(); cErr != nil && err == nil {
			tr = nil
			err = fmt.Errorf("core: closing store: %w", cErr)
		}
	}()

	fac, err := probe.NewFactory(cfg.Probe, e.ntuples)
	if err != nil {
		return nil, Timings{}, err
	}
	e.probes = fac

	root, err := e.setup()
	if err != nil {
		return nil, Timings{}, err
	}

	t0 := time.Now()
	switch cfg.Algorithm {
	case Serial:
		err = e.runSerial(root)
	case Basic:
		err = e.runBasic(root)
	case FWK:
		err = e.runFWK(root)
	case MWK:
		err = e.runMWK(root)
	case Subtree:
		err = e.runSubtree(root)
	case RecPar:
		err = e.runRecPar(root)
	}
	e.timings.Build = time.Since(t0)
	if err != nil {
		return nil, e.timings, err
	}

	tr = &tree.Tree{Root: root.node, Schema: e.schema}
	renumber(tr)
	if e.cfg.Trace != nil {
		e.cfg.Trace.NAttrs = e.nattr
		e.cfg.Trace.NTuples = e.ntuples
		e.cfg.Trace.SetupSeconds = e.timings.Setup.Seconds()
		e.cfg.Trace.SortSeconds = e.timings.Sort.Seconds()
		e.cfg.Trace.BuildSeconds = e.timings.Build.Seconds()
	}
	return tr, e.timings, nil
}

// initialSlots returns the per-attribute physical slot count the scheme
// needs: 4 for serial/BASIC (current pair + alternate pair), 2K for the
// windowed schemes, and a starting allocation for SUBTREE (which grows its
// slot pool on demand, up to 4 per concurrently active group).
func (e *engine) initialSlots() int {
	switch e.cfg.Algorithm {
	case FWK, MWK:
		return 2 * e.cfg.WindowK
	case Subtree:
		return 4
	default:
		return 4
	}
}

// pairBase returns the first slot of the level's slot group for the
// double-buffered schemes.
func (e *engine) pairBase(level int) int {
	switch e.cfg.Algorithm {
	case FWK, MWK:
		return (level % 2) * e.cfg.WindowK
	default:
		return (level % 2) * 2
	}
}

// setup builds the initial attribute lists (the paper's setup phase), sorts
// the continuous ones (the sort phase), and writes them into slot 0 of each
// attribute. It returns the root leaf state.
func (e *engine) setup() (*leafState, error) {
	histInt := e.tbl.ClassHistogram()
	hist := make([]int64, e.nclass)
	for j, c := range histInt {
		hist[j] = int64(c)
	}
	n := int64(e.ntuples)

	lists := make([][]alist.Record, e.nattr)

	workers := 1
	if e.cfg.ParallelSetup {
		workers = e.cfg.Procs
	}

	runPhase := func(inner func(a int) error) error {
		fn := func(a int) error {
			if err := e.cancelled(); err != nil {
				return err
			}
			return inner(a)
		}
		if workers == 1 {
			for a := 0; a < e.nattr; a++ {
				if err := fn(a); err != nil {
					return err
				}
			}
			return nil
		}
		var next atomic.Int64
		var firstErr sched.ErrOnce
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// No teardown: setup workers share no barriers, only the
				// grab counter, so peers drain on firstErr alone.
				sched.Guard(&firstErr, nil, w, func() {
					for {
						a := int(next.Add(1) - 1)
						if a >= e.nattr || firstErr.Failed() {
							return
						}
						if err := fn(a); err != nil {
							firstErr.Set(err)
							return
						}
					}
				})
			}()
		}
		wg.Wait()
		return firstErr.Get()
	}

	// Phase 1 (setup): create the attribute lists.
	t0 := time.Now()
	if err := runPhase(func(a int) error {
		lists[a] = alist.FromTable(e.tbl, a)
		return nil
	}); err != nil {
		return nil, err
	}
	e.timings.Setup += time.Since(t0)

	// Phase 2 (sort): pre-sort continuous lists by value. With plenty of
	// continuous attributes the attributes themselves are the parallel
	// units; with fewer sortable lists than 2 workers each, parallelism
	// must come from inside a single attribute's sort (chunk sort + merge),
	// so low-attribute datasets also use all P processors.
	t0 = time.Now()
	ncont := 0
	for a := 0; a < e.nattr; a++ {
		if e.schema.Attrs[a].Kind == dataset.Continuous {
			ncont++
		}
	}
	if workers > 1 && ncont < 2*workers {
		for a := 0; a < e.nattr; a++ {
			if err := e.cancelled(); err != nil {
				return nil, err
			}
			if e.schema.Attrs[a].Kind == dataset.Continuous {
				alist.SortByValueParallel(lists[a], workers)
			}
		}
	} else if err := runPhase(func(a int) error {
		if e.schema.Attrs[a].Kind == dataset.Continuous {
			alist.SortByValue(lists[a])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	e.timings.Sort += time.Since(t0)

	// Phase 3 (setup): write lists into slot 0.
	t0 = time.Now()
	if err := runPhase(func(a int) error {
		off, err := e.store.Reserve(a, 0, e.ntuples)
		if err != nil {
			return err
		}
		if err := e.store.WriteAt(a, 0, off, lists[a]); err != nil {
			return err
		}
		lists[a] = nil
		return nil
	}); err != nil {
		return nil, err
	}
	e.timings.Setup += time.Since(t0)

	rootNode := &tree.Node{
		Level:       0,
		N:           n,
		ClassCounts: hist,
		Class:       tree.MajorityClass(hist),
	}
	root := &leafState{
		node:      rootNode,
		parentIdx: -1,
		n:         n,
		hist:      hist,
		segs:      make([]segRef, e.nattr),
		cands:     make([]split.Candidate, e.nattr),
	}
	for a := range root.segs {
		root.segs[a] = segRef{slot: 0, off: 0}
	}
	return root, nil
}

// frontierOrNil returns root as a one-leaf frontier unless the root is
// already terminal.
func (e *engine) rootFrontier(root *leafState) []*leafState {
	if e.terminal(0, root.n, root.hist) {
		return nil
	}
	return []*leafState{root}
}

// terminal implements the stopping rule: pure node, too few tuples, or
// depth bound reached.
func (e *engine) terminal(level int, n int64, hist []int64) bool {
	if n < e.cfg.MinSplit {
		return true
	}
	if e.cfg.MaxDepth > 0 && level >= e.cfg.MaxDepth {
		return true
	}
	for _, c := range hist {
		if c == n {
			return true
		}
	}
	return false
}

// cancelled reports the build context's error, checked at work-unit
// granularity so cancellation propagates through the ordinary error paths.
func (e *engine) cancelled() error {
	if e.cfg.Context == nil {
		return nil
	}
	return e.cfg.Context.Err()
}

// scan streams a list region, staging file-store reads through the worker's
// scratch IO buffer so steady-state scans allocate nothing.
func (e *engine) scan(sc *scratch, attr, slot int, off int64, n int, fn func([]alist.Record) error) error {
	if e.bscan != nil && sc != nil {
		return e.bscan.ScanBuf(attr, slot, off, n, &sc.io, fn)
	}
	return e.store.Scan(attr, slot, off, n, fn)
}

// evalLeafAttr is one E work unit: find the best split of attribute a at
// leaf l, storing the candidate in l.cands[a]. The evaluator and the scan
// callback come from the worker's scratch, so the unit is allocation-free.
func (e *engine) evalLeafAttr(l *leafState, a int, sc *scratch) error {
	if err := e.cancelled(); err != nil {
		return err
	}
	if e.cfg.AttrMask != nil && !e.cfg.AttrMask[a] {
		// Feature-subsampled builds never split on a masked attribute; the
		// zero Candidate is invalid and loses every winner vote.
		l.cands[a] = split.Candidate{}
		return nil
	}
	sr := l.segs[a]
	if e.schema.Attrs[a].Kind == dataset.Continuous {
		sc.cont.Reset(a, l.hist)
		if err := e.scan(sc, a, sr.slot, sr.off, int(l.n), sc.contScan); err != nil {
			return err
		}
		l.cands[a] = sc.cont.Finish()
		return nil
	}
	card := e.schema.Attrs[a].Cardinality()
	sc.cat.Reset(a, card, l.hist, e.cfg.MaxEnumCard)
	if err := e.scan(sc, a, sr.slot, sr.off, int(l.n), sc.catScan); err != nil {
		return err
	}
	l.cands[a] = sc.cat.Finish()
	return nil
}

// winnerAndProbe is the W work unit for a leaf: select the global winner
// among the per-attribute candidates, scan the winning attribute's list to
// build the probe and the children's class histograms, run the purity
// pre-test, and attach child nodes. It does not assign child storage; see
// registerChild.
func (e *engine) winnerAndProbe(l *leafState, sc *scratch) error {
	if err := e.cancelled(); err != nil {
		return err
	}
	best := split.Candidate{}
	for _, c := range l.cands {
		if c.Better(best) {
			best = c
		}
	}
	l.win = best
	if !best.Valid {
		return nil // leaf stays a leaf (no usable split)
	}
	if e.cfg.MinGiniGain > 0 &&
		split.Gini(l.hist, l.n)-best.Gini < e.cfg.MinGiniGain {
		l.win.Valid = false
		return nil
	}
	prb := e.probes.ForLeaf(best.NLeft, best.NRight)
	// The child histograms escape into the tree nodes, so they are the one
	// per-leaf allocation W keeps.
	histL := make([]int64, e.nclass)
	histR := make([]int64, e.nclass)
	sr := l.segs[best.Attr]
	// Write-combine the probe bits when the design allows it: one atomic Or
	// plus one atomic AndNot per 64 tids instead of one RMW per record.
	batched := sc.wb != nil && sc.wb.Begin(prb)
	err := e.scan(sc, best.Attr, sr.slot, sr.off, int(l.n), func(recs []alist.Record) error {
		if batched {
			for i := range recs {
				left := best.GoesLeft(recs[i].Value)
				sc.wb.Set(recs[i].Tid, left)
				if left {
					histL[recs[i].Class]++
				} else {
					histR[recs[i].Class]++
				}
			}
			return nil
		}
		for i := range recs {
			left := best.GoesLeft(recs[i].Value)
			prb.Set(recs[i].Tid, left)
			if left {
				histL[recs[i].Class]++
			} else {
				histR[recs[i].Class]++
			}
		}
		return nil
	})
	if batched {
		sc.wb.Flush()
	}
	if err != nil {
		return err
	}
	var nl, nr int64
	for j := 0; j < e.nclass; j++ {
		nl += histL[j]
		nr += histR[j]
	}
	if nl != best.NLeft || nr != best.NRight {
		return fmt.Errorf("core: winner scan of attr %d produced %d/%d records, candidate promised %d/%d",
			best.Attr, nl, nr, best.NLeft, best.NRight)
	}
	prb.Seal()
	l.prb = prb
	l.didSplit = true

	childLevel := l.node.Level + 1
	mk := func(hist []int64, n int64) *childInfo {
		node := &tree.Node{
			Level:       childLevel,
			N:           n,
			ClassCounts: hist,
			Class:       tree.MajorityClass(hist),
		}
		return &childInfo{
			node:     node,
			n:        n,
			hist:     hist,
			terminal: e.terminal(childLevel, n, hist),
		}
	}
	l.children[0] = mk(histL, best.NLeft)
	l.children[1] = mk(histR, best.NRight)
	winCopy := best
	l.node.Split = &winCopy
	l.node.Left = l.children[0].node
	l.node.Right = l.children[1].node
	return nil
}

// registerChild reserves the child's attribute-list regions in the given
// slot. Terminal children are never registered: their records are dropped
// during the split, the paper's purity pre-test payoff.
func (e *engine) registerChild(c *childInfo, slot int) error {
	c.segs = make([]segRef, e.nattr)
	for a := 0; a < e.nattr; a++ {
		off, err := e.store.Reserve(a, slot, int(c.n))
		if err != nil {
			return err
		}
		c.segs[a] = segRef{slot: slot, off: off}
	}
	return nil
}

// splitLeafAttr is one S work unit: route attribute a's records of leaf l to
// its children using the probe, preserving order. Records destined for
// terminal (pure) children are dropped. The routing itself is the run-length
// kernel in scratch.splitRuns; this wrapper arms the worker's appenders over
// the children's reserved regions and closes them (verifying exact fill).
func (e *engine) splitLeafAttr(l *leafState, a int, sc *scratch) error {
	if err := e.cancelled(); err != nil {
		return err
	}
	if !l.didSplit {
		return nil
	}
	sc.useL, sc.useR = false, false
	if c := l.children[0]; !c.terminal {
		sc.apL.Reset(e.store, a, c.segs[a].slot, c.segs[a].off, int(c.n))
		sc.useL = true
	}
	if c := l.children[1]; !c.terminal {
		sc.apR.Reset(e.store, a, c.segs[a].slot, c.segs[a].off, int(c.n))
		sc.useR = true
	}
	sc.armProbe(l.prb, e.probes.Relabels())
	sr := l.segs[a]
	if err := e.scan(sc, a, sr.slot, sr.off, int(l.n), sc.splitScan); err != nil {
		return err
	}
	if sc.useL {
		if err := sc.apL.Close(); err != nil {
			return err
		}
	}
	if sc.useR {
		if err := sc.apR.Close(); err != nil {
			return err
		}
	}
	return nil
}

// childLeafState wraps a registered, non-terminal child as a frontier leaf.
func childLeafState(c *childInfo, parentIdx int, nattr int) *leafState {
	return &leafState{
		node:      c.node,
		parentIdx: parentIdx,
		n:         c.n,
		hist:      c.hist,
		segs:      c.segs,
		cands:     make([]split.Candidate, nattr),
	}
}

// releaseLeaf frees per-leaf resources after its split completes.
func releaseLeaf(l *leafState) {
	if l.prb != nil {
		l.prb.Release()
		l.prb = nil
	}
	l.segs = nil
	l.cands = nil
}

// resetSlots empties the given slots across all attributes, making them
// reusable for the level after next (the paper's fixed-file reuse).
func (e *engine) resetSlots(slots ...int) error {
	for _, s := range slots {
		for a := 0; a < e.nattr; a++ {
			if err := e.store.Reset(a, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// renumber assigns node IDs in BFS order so that identical trees built by
// different schemes also carry identical IDs.
func renumber(t *tree.Tree) {
	if t.Root == nil {
		return
	}
	id := 0
	queue := []*tree.Node{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = id
		id++
		if !n.IsLeaf() {
			queue = append(queue, n.Left, n.Right)
		}
	}
}
