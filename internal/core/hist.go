package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/hist"
	"repro/internal/sched"
	"repro/internal/split"
	"repro/internal/trace"
	"repro/internal/tree"
)

// The HIST scheme: instead of sorted attribute lists, the training table is
// binned once (quantile-sketch cuts per continuous attribute, category codes
// for categorical ones) and the tree grows over per-node class×bin
// histograms. Per level the phases are:
//
//	E-local:  row-parallel — each worker accumulates its contiguous share of
//	          every frontier leaf's rows into its private histogram arena.
//	E-merge:  attribute-parallel — workers grab attributes with an atomic
//	          counter, sum the per-worker histograms for that attribute
//	          across all leaves, and search the bin boundaries for the
//	          attribute's best split.
//	W:        the master votes the per-attribute winners, runs the purity
//	          pre-test, and attaches children (child histograms are read off
//	          the winning attribute's merged histogram — no data scan).
//	S:        leaf-parallel — workers grab leaves and stably partition the
//	          leaf's slice of the global row-index permutation in place.
//
// Histograms are integer sums and the partition is stable, so the tree is
// byte-identical for every processor count. The frontier is processed in
// blocks of leaves sized so each worker's arena stays within a fixed byte
// budget regardless of tree width.

// histArenaBudget bounds each worker's local histogram arena in bytes; the
// frontier block size is however many leaves fit.
const histArenaBudget = 32 << 20

// histMaxBlock caps the leaves per frontier block so the master's W pass
// between barriers stays short even when the stride is tiny.
const histMaxBlock = 64

// histScratch is one HIST worker's reusable state: the local histogram
// arena, the boundary/subset search evaluators, the partition staging
// buffer and the binning sample buffer. After warm-up the steady-state
// loops allocate nothing.
type histScratch struct {
	arena  []int64
	cs     hist.ContSearch
	cat    split.CatEval
	buf    []uint32
	sample []float64
}

// setupHist creates the Hist engine's root leaf. The class-histogram pass
// is the engine's whole setup phase: there are no attribute lists to build
// and nothing to sort.
func (e *engine) setupHist() *leafState {
	t0 := time.Now()
	histInt := e.tbl.ClassHistogram()
	h := make([]int64, e.nclass)
	for j, c := range histInt {
		h[j] = int64(c)
	}
	n := int64(e.ntuples)
	rootNode := &tree.Node{
		Level:       0,
		N:           n,
		ClassCounts: h,
		Class:       tree.MajorityClass(h),
	}
	e.timings.Setup += time.Since(t0)
	return &leafState{
		node:      rootNode,
		parentIdx: -1,
		n:         n,
		hist:      h,
		cands:     make([]split.Candidate, e.nattr),
	}
}

// runHist grows the tree with the HIST scheme.
func (e *engine) runHist(root *leafState) error {
	P := e.cfg.Procs
	bar := sched.NewBarrier(P)
	var ferr sched.ErrOnce

	m := hist.NewMatrix(e.schema, e.tbl.ClassColumn())
	idx := make([]uint32, e.ntuples)
	for i := range idx {
		idx[i] = uint32(i)
	}

	frontier := e.rootFrontier(root)
	if len(frontier) == 0 {
		return nil
	}

	// Shared state written only by the master between barriers (blockCap
	// and merged once, after the binning barrier).
	var (
		binCtr, aCtr, lCtr atomic.Int64
		merged             []int64
		blockCap           int
		next               []*leafState
		done               bool
		binFailed          bool
	)
	level := 0
	scs := make([]*histScratch, P)

	hook := func(phase string, id int) bool {
		if e.cfg.histHook == nil {
			return true
		}
		if err := e.cfg.histHook(phase, id); err != nil {
			ferr.Set(err)
			return false
		}
		return true
	}

	worker := func(id int) {
		ln := e.rec.Lane(id)
		sc := &histScratch{}
		scs[id] = sc

		// Bin phase: dynamically grab attributes and bin their columns.
		// Each attribute's column is written by exactly one worker.
		for !ferr.Failed() {
			a := int(binCtr.Add(1) - 1)
			if a >= e.nattr {
				break
			}
			if err := e.cancelled(); err != nil {
				ferr.Set(err)
				break
			}
			if !hook("bin", id) {
				break
			}
			t0 := time.Now()
			if e.schema.Attrs[a].Kind == dataset.Continuous {
				m.BinContinuous(a, e.tbl.ContColumn(a), e.cfg.MaxBins, &sc.sample)
			} else if err := m.BinCategorical(a, e.tbl.CatColumn(a), e.schema.Attrs[a].Cardinality()); err != nil {
				ferr.Set(err)
				break
			}
			ln.Add(0, trace.PhaseBin, time.Since(t0))
		}
		if !bar.TimedWait(ln, 0) {
			return
		}
		if id == 0 {
			if !ferr.Failed() {
				t0 := time.Now()
				m.FinishLayout()
				blockCap = histArenaBudget / 8 / m.Stride
				if blockCap < 1 {
					blockCap = 1
				}
				if blockCap > histMaxBlock {
					blockCap = histMaxBlock
				}
				merged = make([]int64, blockCap*m.Stride)
				ln.AddN(0, trace.PhaseBin, time.Since(t0), 0)
			}
			binFailed = ferr.Failed()
		}
		if !bar.TimedWait(ln, 0) {
			return
		}
		// Unwind on the master's barrier-synchronized snapshot of the bin
		// phase, not on live ferr: a fast peer may already be in the level
		// loop and latch a later error, and reading ferr here would let a
		// slow worker exit while the others wait at a block barrier.
		if binFailed {
			return
		}
		sc.arena = make([]int64, blockCap*m.Stride)

		for {
			// lvl is this iteration's level, captured while the master's
			// level++ is still a barrier away.
			lvl := level
			nblocks := (len(frontier) + blockCap - 1) / blockCap
			for blk := 0; blk < nblocks; blk++ {
				bhi := (blk + 1) * blockCap
				if bhi > len(frontier) {
					bhi = len(frontier)
				}
				block := frontier[blk*blockCap : bhi]

				// E-local: accumulate this worker's contiguous row share of
				// every leaf in the block into the private arena.
				if !ferr.Failed() && hook("accum", id) {
					t0 := time.Now()
					var units int64
					for li, l := range block {
						if err := e.cancelled(); err != nil {
							ferr.Set(err)
							break
						}
						cell := sc.arena[li*m.Stride : (li+1)*m.Stride]
						zeroInt64(cell, m.Stride)
						lo := l.rowLo + id*int(l.n)/P
						hi := l.rowLo + (id+1)*int(l.n)/P
						if lo >= hi {
							continue
						}
						for a := 0; a < e.nattr; a++ {
							m.Accumulate(m.Cell(cell, a), a, idx, lo, hi)
						}
						units += int64(e.nattr)
					}
					ln.AddN(lvl, trace.PhaseEval, time.Since(t0), units)
				}
				if !bar.TimedWait(ln, lvl) {
					return
				}

				// E-merge: grab attributes, sum the workers' local
				// histograms and search each leaf's best split for the
				// grabbed attribute. Attribute slices of merged and of
				// l.cands are disjoint across workers.
				for !ferr.Failed() {
					a := int(aCtr.Add(1) - 1)
					if a >= e.nattr {
						break
					}
					if err := e.cancelled(); err != nil {
						ferr.Set(err)
						break
					}
					if !hook("merge", id) {
						break
					}
					t0 := time.Now()
					for li, l := range block {
						base := li * m.Stride
						dst := m.Cell(merged[base:base+m.Stride], a)
						copy(dst, m.Cell(scs[0].arena[base:base+m.Stride], a))
						for w := 1; w < P; w++ {
							src := m.Cell(scs[w].arena[base:base+m.Stride], a)
							for i := range dst {
								dst[i] += src[i]
							}
						}
						l.cands[a] = e.histBestSplit(m, a, dst, l, sc)
					}
					ln.AddN(lvl, trace.PhaseEval, time.Since(t0), int64(len(block)))
				}
				if !bar.TimedWait(ln, lvl) {
					return
				}

				// W: the master votes winners, attaches children and queues
				// the next frontier; peers wait at the barrier (as in
				// BASIC). Child class histograms come from the winning
				// attribute's merged histogram — no data scan.
				if id == 0 && !ferr.Failed() {
					for li, l := range block {
						if !hook("winner", id) {
							break
						}
						t0 := time.Now()
						if err := e.histWinner(m, l, merged[li*m.Stride:(li+1)*m.Stride]); err != nil {
							ferr.Set(err)
							break
						}
						if l.didSplit {
							for _, c := range l.children {
								if !c.terminal {
									next = append(next, histChildLeafState(c, blk*blockCap+li, e.nattr))
								}
							}
						}
						l.cands = nil
						ln.Add(lvl, trace.PhaseWinner, time.Since(t0))
					}
					aCtr.Store(0)
					lCtr.Store(0)
				}
				if !bar.TimedWait(ln, lvl) {
					return
				}

				// S: grab leaves and stably partition each split leaf's
				// row-index range in place. A split whose children are both
				// terminal needs no partition: nothing reads those rows
				// again.
				for !ferr.Failed() {
					li := int(lCtr.Add(1) - 1)
					if li >= len(block) {
						break
					}
					l := block[li]
					if !l.didSplit || (l.children[0].terminal && l.children[1].terminal) {
						continue
					}
					if err := e.cancelled(); err != nil {
						ferr.Set(err)
						break
					}
					if !hook("split", id) {
						break
					}
					t0 := time.Now()
					n := int(l.n)
					if cap(sc.buf) < n {
						sc.buf = make([]uint32, n)
					}
					nl := m.PartitionStable(l.win.Attr, idx, l.rowLo, l.rowLo+n, l.histLeft, sc.buf[:n])
					if int64(nl) != l.win.NLeft {
						ferr.Set(fmt.Errorf("core: hist partition on attr %d produced %d left rows, candidate promised %d",
							l.win.Attr, nl, l.win.NLeft))
					}
					l.histLeft = nil
					ln.Add(lvl, trace.PhaseSplit, time.Since(t0))
				}
				if !bar.TimedWait(ln, lvl) {
					return
				}
			}

			// Level bookkeeping by the master.
			if id == 0 {
				if ferr.Failed() {
					next = nil
				}
				frontier = next
				next = nil
				level++
				done = len(frontier) == 0
			}
			if !bar.TimedWait(ln, lvl) {
				return
			}
			if done {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for id := 0; id < P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// A panicking worker can never rejoin the barrier protocol;
			// breaking the barrier releases every surviving peer.
			sched.Guard(&ferr, bar.Abort, id, func() { worker(id) })
		}(id)
	}
	wg.Wait()
	return ferr.Get()
}

// histBestSplit searches attribute a's merged histogram for leaf l's best
// split: bin boundaries for continuous attributes, SPRINT's subset search
// (fed pre-aggregated counts) for categorical ones.
func (e *engine) histBestSplit(m *hist.Matrix, a int, counts []int64, l *leafState, sc *histScratch) split.Candidate {
	if e.cfg.AttrMask != nil && !e.cfg.AttrMask[a] {
		// Feature-subsampled builds never split on a masked attribute.
		return split.Candidate{}
	}
	if e.schema.Attrs[a].Kind == dataset.Continuous {
		return sc.cs.Best(a, counts, m.Cuts[a], l.hist, l.n)
	}
	card := m.NBins[a]
	sc.cat.Reset(a, card, l.hist, e.cfg.MaxEnumCard)
	for b := 0; b < card; b++ {
		for j := 0; j < e.nclass; j++ {
			sc.cat.AddCount(j, b, counts[b*e.nclass+j])
		}
	}
	return sc.cat.Finish()
}

// histWinner is the W work unit for a HIST leaf: vote the per-attribute
// candidates, apply the minimum-gain and purity pre-tests, derive the
// child class histograms from the winning attribute's merged histogram and
// attach child nodes.
func (e *engine) histWinner(m *hist.Matrix, l *leafState, arena []int64) error {
	if err := e.cancelled(); err != nil {
		return err
	}
	best := split.Candidate{}
	for _, c := range l.cands {
		if c.Better(best) {
			best = c
		}
	}
	l.win = best
	if !best.Valid {
		return nil // leaf stays a leaf (no usable split)
	}
	if e.cfg.MinGiniGain > 0 &&
		split.Gini(l.hist, l.n)-best.Gini < e.cfg.MinGiniGain {
		l.win.Valid = false
		return nil
	}
	leftBin := m.LeftBins(best)
	counts := m.Cell(arena, best.Attr)
	histL := make([]int64, e.nclass)
	histR := make([]int64, e.nclass)
	for b := 0; b < m.NBins[best.Attr]; b++ {
		for j := 0; j < e.nclass; j++ {
			c := counts[b*e.nclass+j]
			if leftBin[b] {
				histL[j] += c
			} else {
				histR[j] += c
			}
		}
	}
	var nl, nr int64
	for j := 0; j < e.nclass; j++ {
		nl += histL[j]
		nr += histR[j]
	}
	if nl != best.NLeft || nr != best.NRight {
		return fmt.Errorf("core: hist winner on attr %d routed %d/%d rows, candidate promised %d/%d",
			best.Attr, nl, nr, best.NLeft, best.NRight)
	}
	l.histLeft = leftBin
	l.didSplit = true

	childLevel := l.node.Level + 1
	mk := func(h []int64, n int64, rowLo int) *childInfo {
		node := &tree.Node{
			Level:       childLevel,
			N:           n,
			ClassCounts: h,
			Class:       tree.MajorityClass(h),
		}
		return &childInfo{
			node:     node,
			n:        n,
			hist:     h,
			terminal: e.terminal(childLevel, n, h),
			rowLo:    rowLo,
		}
	}
	l.children[0] = mk(histL, best.NLeft, l.rowLo)
	l.children[1] = mk(histR, best.NRight, l.rowLo+int(best.NLeft))
	winCopy := best
	l.node.Split = &winCopy
	l.node.Left = l.children[0].node
	l.node.Right = l.children[1].node
	return nil
}

// histChildLeafState wraps a non-terminal HIST child as a frontier leaf,
// carrying the child's slice of the row-index permutation.
func histChildLeafState(c *childInfo, parentIdx, nattr int) *leafState {
	l := childLeafState(c, parentIdx, nattr)
	l.rowLo = c.rowLo
	return l
}
