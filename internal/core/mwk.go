package core

import (
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// runMWK implements the Moving-Window-K scheme (paper Fig. 6). It removes
// FWK's per-block barrier: before working on leaf i, a processor waits on a
// per-leaf condition (here: a closed channel, Go's condition-variable
// idiom) until leaf i−K has been completed, so at most K leaves are in
// flight; the last processor to finish a leaf's evaluation builds its probe
// and signals the leaf done. This exposes the extra pipeline parallelism
// between adjacent blocks ({R1,L2} in the paper's example) at the price of
// one lock synchronization per leaf per level.
func (e *engine) runMWK(root *leafState) error {
	frontier := e.rootFrontier(root)
	if len(frontier) == 0 {
		return nil
	}
	P := e.cfg.Procs
	K := e.cfg.WindowK
	bar := sched.NewBarrier(P)
	var ferr sched.ErrOnce

	// abort unblocks all condition waits when a worker hits an error.
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(err error) {
		ferr.Set(err)
		abortOnce.Do(func() { close(abort) })
	}
	// waitSig blocks on a leaf-done condition; the stall is recorded as
	// window-idle time in the caller's lane.
	waitSig := func(ch chan struct{}, ln *trace.Lane, lvl int) {
		t0 := time.Now()
		select {
		case <-ch:
		case <-abort:
		}
		ln.Add(lvl, trace.PhaseIdle, time.Since(t0))
	}

	var next []*leafState
	var doneCh []chan struct{}
	var done bool
	level := 0
	doneCh = makeSignals(len(frontier))

	// splitGrab executes leaf l's remaining S units dynamically.
	splitGrab := func(l *leafState, ln *trace.Lane, lvl int, sc *scratch) {
		for !ferr.Failed() {
			a := l.sNext.Add(1) - 1
			if a >= int64(e.nattr) {
				return
			}
			t0 := time.Now()
			if err := e.splitLeafAttr(l, int(a), sc); err != nil {
				fail(err)
			}
			ln.Add(lvl, trace.PhaseSplit, time.Since(t0))
			if l.sDone.Add(1) == int64(e.nattr) {
				releaseLeaf(l)
			}
		}
	}

	worker := func(id int) {
		ln := e.rec.Lane(id)
		sc := e.newScratch()
		for {
			lvl := level
			nextBase := e.pairBase(lvl + 1)
			for i, l := range frontier {
				// Moving-window throttle: leaf i waits for leaf i−K.
				if i >= K {
					waitSig(doneCh[i-K], ln, lvl)
				}
				// E units of leaf i, grabbed dynamically.
				for !ferr.Failed() {
					a := l.eNext.Add(1) - 1
					if a >= int64(e.nattr) {
						break
					}
					t0 := time.Now()
					if err := e.evalLeafAttr(l, int(a), sc); err != nil {
						fail(err)
						break
					}
					ln.Add(lvl, trace.PhaseEval, time.Since(t0))
					if l.eDone.Add(1) == int64(e.nattr) {
						// Last processor finishing leaf i: W, then signal
						// that the i-th leaf is done.
						tw := time.Now()
						if err := e.leafWinnerRegister(l, nextBase, sc); err != nil {
							fail(err)
						}
						ln.Add(lvl, trace.PhaseWinner, time.Since(tw))
						close(doneCh[i])
					}
				}
				// S units of leaf i require W_i; take them now only if the
				// leaf is already signalled — otherwise keep moving so W_i
				// overlaps E_{i+1..i+K} (the pipelining MWK exists for)
				// and finish them in the completion sweep below.
				select {
				case <-doneCh[i]:
					splitGrab(l, ln, lvl, sc)
				default:
				}
			}
			// Completion sweep: every leaf's W has been signalled by now
			// (all E units above have run), so the deferred S units can
			// be grabbed to exhaustion.
			for i, l := range frontier {
				waitSig(doneCh[i], ln, lvl)
				splitGrab(l, ln, lvl, sc)
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}

			if id == 0 {
				t0 := time.Now()
				next = e.windowLevelEnd(frontier, lvl, &ferr)
				frontier = next
				level++
				e.nextChild.Store(0)
				doneCh = makeSignals(len(frontier))
				done = len(frontier) == 0
				ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), 0)
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}
			if done {
				return
			}
		}
	}

	// A panicking worker can neither close its pending leaf signals nor
	// rejoin the barrier; releasing both structures lets the survivors
	// observe ferr and unwind. Ordinary errors (fail above) keep the
	// protocol alive instead, so the level ends through the normal path.
	teardown := func() {
		abortOnce.Do(func() { close(abort) })
		bar.Abort()
	}
	var wg sync.WaitGroup
	for id := 0; id < P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sched.Guard(&ferr, teardown, id, func() { worker(id) })
		}(id)
	}
	wg.Wait()
	return ferr.Get()
}

func makeSignals(n int) []chan struct{} {
	chs := make([]chan struct{}, n)
	for i := range chs {
		chs[i] = make(chan struct{})
	}
	return chs
}
