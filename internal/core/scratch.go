package core

import (
	"sync/atomic"

	"repro/internal/alist"
	"repro/internal/probe"
	"repro/internal/split"
)

// scratch is a per-worker arena threaded through every E/W/S work unit. It
// owns the split evaluators, the two child appenders, the probe write batch,
// the file-store scan buffers, and the scan callbacks themselves, so that
// after the first few levels a work unit touches the allocator zero times:
// evaluator histograms, appender buffers and IO buffers are all reused, and
// the callbacks are built once per worker (a closure built per scan would
// escape through the Store interface and allocate every unit).
//
// Every engine creates one scratch per worker goroutine (the serial engine
// creates one); a scratch is never shared between goroutines.
type scratch struct {
	cont split.ContEval
	cat  split.CatEval

	// S-unit state armed by splitLeafAttr/splitChunk and read by splitScan.
	apL, apR   alist.Appender
	useL, useR bool
	prb        probe.Leaf
	bits       []uint64 // raw probe bits, nil for the hash design
	shared     bool     // bits shared with concurrent W writers ⇒ atomic loads
	remap      bool
	runBuf     []alist.Record // remap staging for the relabel design

	wb    *probe.WBatch // W write-combining, global-bit design only
	io    alist.IOBuf   // file-store scan staging
	below []int64       // record-parallel prefix histogram

	contScan  func([]alist.Record) error
	catScan   func([]alist.Record) error
	splitScan func([]alist.Record) error
}

// newScratch builds a worker's arena.
func (e *engine) newScratch() *scratch {
	sc := &scratch{}
	if e.cfg.Probe == probe.GlobalBit {
		sc.wb = probe.NewWBatch(e.ntuples)
	}
	sc.contScan = func(recs []alist.Record) error {
		sc.cont.PushChunk(recs)
		return nil
	}
	sc.catScan = func(recs []alist.Record) error {
		sc.cat.PushChunk(recs)
		return nil
	}
	sc.splitScan = sc.splitRuns
	return sc
}

// armProbe prepares the S-unit probe state, pulling out the raw bit array
// when the design exposes one so the kernel can test membership without an
// interface call per record.
func (sc *scratch) armProbe(prb probe.Leaf, remap bool) {
	sc.prb, sc.remap = prb, remap
	sc.bits, sc.shared = nil, false
	if rb, ok := prb.(probe.RawBits); ok {
		sc.bits, sc.shared = rb.RawBits()
	}
}

// splitRuns is the run-length S kernel: it partitions one scan chunk into
// maximal runs of records with the same destination and moves each run with
// one bulk AppendChunk instead of a per-record Append — for MemStore a
// segment-to-segment memmove. Sorted attribute lists are locally correlated
// with the winning attribute, so runs are long exactly when there is the
// most data to move.
func (sc *scratch) splitRuns(recs []alist.Record) error {
	n := len(recs)
	for i := 0; i < n; {
		var left bool
		j := i + 1
		switch {
		case sc.bits != nil && sc.shared:
			// Shared global bit array: other leaves' W writers may be
			// touching neighbor bits of the same words concurrently.
			t := recs[i].Tid
			left = atomic.LoadUint64(&sc.bits[t>>6])&(1<<(t&63)) != 0
			for ; j < n; j++ {
				t = recs[j].Tid
				if (atomic.LoadUint64(&sc.bits[t>>6])&(1<<(t&63)) != 0) != left {
					break
				}
			}
		case sc.bits != nil:
			// Per-leaf bit array, sealed before S starts: plain loads.
			t := recs[i].Tid
			left = sc.bits[t>>6]&(1<<(t&63)) != 0
			for ; j < n; j++ {
				t = recs[j].Tid
				if (sc.bits[t>>6]&(1<<(t&63)) != 0) != left {
					break
				}
			}
		default:
			left = sc.prb.Left(recs[i].Tid)
			for ; j < n && sc.prb.Left(recs[j].Tid) == left; j++ {
			}
		}
		run := recs[i:j]
		i = j

		ap, use := &sc.apR, sc.useR
		if left {
			ap, use = &sc.apL, sc.useL
		}
		if !use {
			continue // records of a terminal (pure) child are dropped
		}
		if !sc.remap {
			if err := ap.AppendChunk(run); err != nil {
				return err
			}
			continue
		}
		// Relabel design: rewrite tids into a bounded staging buffer, then
		// move it as a chunk.
		if cap(sc.runBuf) == 0 {
			sc.runBuf = make([]alist.Record, alist.AppenderChunk)
		}
		for len(run) > 0 {
			k := min(len(run), cap(sc.runBuf))
			buf := sc.runBuf[:k]
			for x := 0; x < k; x++ {
				r := run[x]
				r.Tid = sc.prb.Remap(r.Tid)
				buf[x] = r
			}
			if err := ap.AppendChunk(buf); err != nil {
				return err
			}
			run = run[k:]
		}
	}
	return nil
}

// zeroInt64 returns s with length n and all elements zero, reusing the
// backing array when possible.
func zeroInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
