package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tree"
)

// TestHistBuildsWorkingTree checks the basic contract: Hist grows a tree
// that classifies its own training data well and whose node counts are
// internally consistent.
func TestHistBuildsWorkingTree(t *testing.T) {
	tbl := synthTable(t, 1, 9, 8000, 11)
	tr, tm, err := Build(tbl, Config{Algorithm: Hist, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.IsLeaf() {
		t.Fatal("F1 root did not split")
	}
	if acc := tr.Accuracy(tbl); acc < 0.95 {
		t.Fatalf("training accuracy %.3f, want >= 0.95", acc)
	}
	if tm.Build <= 0 {
		t.Fatal("no build time recorded")
	}
	if tm.Sort != 0 {
		t.Fatalf("Hist recorded a sort phase (%v); it has nothing to sort", tm.Sort)
	}
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if n.IsLeaf() {
			return
		}
		if n.Left.N+n.Right.N != n.N {
			t.Fatalf("node %d: children sum to %d, node has %d", n.ID, n.Left.N+n.Right.N, n.N)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root)
}

// TestHistDeterministicAcrossProcs asserts the HIST determinism contract:
// integer histogram sums plus a stable partition make the tree
// byte-identical for every processor count.
func TestHistDeterministicAcrossProcs(t *testing.T) {
	tbl := synthTable(t, 7, 9, 6000, 21)
	ref, _, err := Build(tbl, Config{Algorithm: Hist, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 5} {
		tr, _, err := Build(tbl, Config{Algorithm: Hist, Procs: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !tree.Equal(ref, tr) {
			t.Fatalf("P=%d tree differs from P=1: %s", p, tree.Diff(ref, tr))
		}
	}
}

// TestHistMaxBinsTradeoff checks that more bins cannot be built from fewer
// cuts (monotone knob) and that a tiny bin budget still yields a working
// tree.
func TestHistMaxBinsTradeoff(t *testing.T) {
	tbl := synthTable(t, 1, 9, 8000, 31)
	for _, bins := range []int{4, 16, 256} {
		tr, _, err := Build(tbl, Config{Algorithm: Hist, MaxBins: bins})
		if err != nil {
			t.Fatalf("MaxBins=%d: %v", bins, err)
		}
		acc := tr.Accuracy(tbl)
		if acc < 0.9 {
			t.Fatalf("MaxBins=%d: training accuracy %.3f, want >= 0.9", bins, acc)
		}
	}
}

// TestHistAccuracyDelta is the accuracy gate: on every synthetic function
// F1–F7 at D100K, the Hist tree's holdout accuracy must be within a fixed
// tolerance of the serial exact engine's.
func TestHistAccuracyDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("seven F*/D100K builds")
	}
	const (
		rows = 100000
		tol  = 0.02
	)
	for fn := 1; fn <= 7; fn++ {
		fn := fn
		t.Run(fmt.Sprintf("F%d", fn), func(t *testing.T) {
			tbl, err := synth.Generate(synth.Config{
				Function: fn, Attrs: 9, Tuples: rows, Seed: int64(100 + fn), Perturbation: 0.05,
			})
			if err != nil {
				t.Fatal(err)
			}
			train, test := tbl.SplitHoldout(0.25)
			exact, _, err := Build(train, Config{Algorithm: Serial})
			if err != nil {
				t.Fatal(err)
			}
			approx, _, err := Build(train, Config{Algorithm: Hist, Procs: 2})
			if err != nil {
				t.Fatal(err)
			}
			accE := exact.Accuracy(test)
			accH := approx.Accuracy(test)
			t.Logf("F%d: exact %.4f hist %.4f delta %+.4f", fn, accE, accH, accH-accE)
			if math.Abs(accH-accE) > tol {
				t.Fatalf("F%d: |%.4f - %.4f| > %.2f", fn, accH, accE, tol)
			}
		})
	}
}

// TestHistCancellation checks that context cancellation surfaces promptly
// as ctx.Err() without leaking workers.
func TestHistCancellation(t *testing.T) {
	tbl := synthTable(t, 7, 9, 6000, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	_, _, err := Build(tbl, Config{Algorithm: Hist, Procs: 3, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

// TestHistChaos is the Hist row of the chaos matrix. The engine touches no
// store, so faults are injected through the histHook seam instead: for
// every phase of the scheme, a panicking worker and an erroring worker.
// The contract mirrors the exact engines' — Build returns a prompt wrapped
// error (never a wedged barrier, never a crashed process), leaks no
// goroutines and no temp files, and a clean rerun still produces the
// byte-identical reference tree.
func TestHistChaos(t *testing.T) {
	tbl := synthTable(t, 7, 9, 4000, 51)
	ref, _, err := Build(tbl, Config{Algorithm: Hist, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected hist fault")
	phases := []string{"bin", "accum", "merge", "winner", "split"}
	for _, phase := range phases {
		for _, mode := range []string{"panic", "error"} {
			phase, mode := phase, mode
			t.Run(phase+"/"+mode, func(t *testing.T) {
				base := runtime.NumGoroutine()
				hits := 0
				cfg := Config{
					Algorithm: Hist,
					Procs:     3,
					histHook: func(ph string, worker int) error {
						if ph != phase {
							return nil
						}
						hits++
						if hits != 2 { // let the first unit through
							return nil
						}
						if mode == "panic" {
							panic(fmt.Sprintf("chaos: %s unit dies", ph))
						}
						return injected
					},
				}
				_, _, err := Build(tbl, cfg)
				if err == nil {
					t.Fatalf("build survived a %s fault in %s", mode, phase)
				}
				if mode == "panic" && !errors.Is(err, ErrWorkerPanic) {
					t.Fatalf("err = %v, want ErrWorkerPanic", err)
				}
				if mode == "error" && !errors.Is(err, injected) {
					t.Fatalf("err = %v, want injected fault", err)
				}
				waitGoroutines(t, base)
				checkNoTempDirs(t, os.TempDir())

				// The failure must not have corrupted anything reachable: a
				// clean rebuild still matches the reference byte for byte.
				tr, _, err := Build(tbl, Config{Algorithm: Hist, Procs: 3})
				if err != nil {
					t.Fatalf("clean rebuild failed: %v", err)
				}
				if !tree.Equal(ref, tr) {
					t.Fatalf("clean rebuild differs from reference: %s", tree.Diff(ref, tr))
				}
			})
		}
	}
}

// TestHistHighCardinalityCategorical exercises the greedy subset search
// path (cardinality above the enumeration threshold) through the histogram
// feed.
func TestHistHighCardinalityCategorical(t *testing.T) {
	cats := make([]string, 20)
	for i := range cats {
		cats[i] = fmt.Sprintf("c%d", i)
	}
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "k", Kind: dataset.Categorical, Categories: cats},
		},
		Classes: []string{"G", "B"},
	}
	tbl, err := dataset.NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		code := int32(i % 20)
		cls := int32(0)
		if code >= 10 {
			cls = 1
		}
		tbl.AppendFast(dataset.Tuple{Cat: []int32{code}, Class: cls})
	}
	tr, _, err := Build(tbl, Config{Algorithm: Hist, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(tbl); acc != 1.0 {
		t.Fatalf("perfectly separable categorical data classified at %.3f", acc)
	}
	// And the exact serial engine agrees on this dataset: with one
	// categorical attribute there is nothing to bin, so the trees match
	// exactly.
	exact, _, err := Build(tbl, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(exact, tr) {
		t.Fatalf("pure-categorical hist tree differs from exact: %s", tree.Diff(exact, tr))
	}
}

// TestHistRespectsStoppingRules checks MaxDepth, MinSplit and MinGiniGain
// flow through the Hist path.
func TestHistRespectsStoppingRules(t *testing.T) {
	tbl := synthTable(t, 7, 9, 6000, 61)
	tr, _, err := Build(tbl, Config{Algorithm: Hist, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lv := tr.Stats().Levels; lv > 4 {
		t.Fatalf("MaxDepth=3 grew %d levels", lv)
	}
	tr, _, err = Build(tbl, Config{Algorithm: Hist, MinGiniGain: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() {
		t.Fatal("MinGiniGain=0.5 should stop the root from splitting")
	}
	tr, _, err = Build(tbl, Config{Algorithm: Hist, MinSplit: int64(len(tbl.ClassColumn()) + 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() {
		t.Fatal("MinSplit above n should stop the root from splitting")
	}
}

// TestHistMaxBinsValidation checks core-side MaxBins validation.
func TestHistMaxBinsValidation(t *testing.T) {
	tbl := synthTable(t, 1, 9, 500, 71)
	for _, bins := range []int{1, -3, 65537} {
		if _, _, err := Build(tbl, Config{Algorithm: Hist, MaxBins: bins}); err == nil {
			t.Fatalf("MaxBins=%d accepted", bins)
		}
	}
}
