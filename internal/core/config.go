// Package core implements the paper's contribution: decision-tree growth on
// shared-memory multiprocessors. It contains serial SPRINT plus the four SMP
// schemes — BASIC, FWK (Fixed-Window-K), MWK (Moving-Window-K) and SUBTREE
// (optionally with the MWK subroutine of §3.4) — implemented with goroutines
// and the synchronization structures the paper describes (dynamic attribute
// scheduling with an atomic counter, barriers, per-leaf condition variables,
// and a FREE queue of idle processors), plus the record-data-parallel
// baseline of §3.1 for comparison.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/alist"
	"repro/internal/probe"
	"repro/internal/trace"
)

// Algorithm selects a tree-growth scheme.
type Algorithm int

const (
	// Serial is uniprocessor SPRINT (paper §2).
	Serial Algorithm = iota
	// Basic is attribute data parallelism with a serial W step (§3.2.1).
	Basic
	// FWK pipelines W with E over a fixed window of K leaves (§3.2.2).
	FWK
	// MWK replaces FWK's block barrier with per-leaf condition variables
	// over a moving window of K leaves (§3.2.3).
	MWK
	// Subtree is dynamic subtree task parallelism with processor groups
	// and a FREE queue (§3.3).
	Subtree
	// RecPar is record data parallelism — each processor owns 1/P of every
	// attribute list — the distributed-memory SPRINT design the paper
	// argues against for SMPs (§3.1). Provided as a comparison baseline.
	RecPar
	// Hist is the approximate histogram-binned engine: continuous
	// attributes are pre-binned by a one-pass quantile sketch, split
	// search runs over per-node class×bin histograms, and nodes are
	// partitioned by permuting a row-index array — no attribute lists, no
	// sort, no S-step rewriting. Splits are approximate (bin boundaries
	// only) but builds scale to row counts the exact engines cannot reach.
	Hist
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case Serial:
		return "SERIAL"
	case Basic:
		return "BASIC"
	case FWK:
		return "FWK"
	case MWK:
		return "MWK"
	case Subtree:
		return "SUBTREE"
	case RecPar:
		return "RECPAR"
	case Hist:
		return "HIST"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Storage selects the attribute-list backend.
type Storage int

const (
	// Memory keeps attribute lists in memory (the paper's "Machine B"
	// large-memory configuration).
	Memory Storage = iota
	// Disk keeps attribute lists in binary files under TempDir (the
	// paper's "Machine A" local-disk configuration).
	Disk
)

// String names the storage backend.
func (s Storage) String() string {
	switch s {
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("Storage(%d)", int(s))
	}
}

// Config parameterizes a build.
type Config struct {
	// Algorithm selects the growth scheme. Default Serial.
	Algorithm Algorithm
	// Procs is the number of worker "processors" (goroutines) for the
	// parallel schemes. Default 1.
	Procs int
	// WindowK is the window size K of FWK and MWK. Default 4, the value
	// the paper found to work well in practice.
	WindowK int
	// Probe selects the tid→child probe design. Default GlobalBit.
	Probe probe.Kind
	// Storage selects the attribute-list backend. Default Memory.
	Storage Storage
	// TempDir is the directory for Disk storage files; defaults to a
	// fresh directory under os.TempDir().
	TempDir string
	// CombinedFiles, with Disk storage, stores all attributes' records in
	// one striped physical file per slot (the paper's §2.3 refinement:
	// "a total of 4 physical files" for the serial/BASIC scheme).
	CombinedFiles bool
	// MinSplit stops splitting leaves with fewer tuples. Default 2.
	MinSplit int64
	// MaxDepth bounds the tree depth when > 0 (root = depth 0).
	MaxDepth int
	// MinGiniGain requires a split to reduce the node's gini by at least
	// this much. Default 0 (pure SPRINT: split whenever a valid split
	// exists and the node is mixed).
	MinGiniGain float64
	// MaxEnumCard overrides the categorical subset-enumeration threshold
	// when > 0 (see split.MaxEnumCard).
	MaxEnumCard int
	// MaxBins is the Hist engine's bin budget per continuous attribute.
	// Default 256; valid range 2..65536 (bin indices are uint16).
	MaxBins int
	// SubtreeInner selects the algorithm SUBTREE groups run per level:
	// Basic (default, the paper's Fig. 7) or MWK — the hybrid the paper
	// suggests in §3.4 ("we can also use FWK or MWK as the subroutine").
	SubtreeInner Algorithm
	// ParallelSetup parallelizes attribute-list creation and sorting
	// across Procs workers — the "parallelizing the setup phase more
	// aggressively" improvement the paper leaves as future work.
	ParallelSetup bool
	// Trace, when non-nil, is filled with measured per-work-unit costs.
	// Cost tracing forces the work itself to run serially (the paper's
	// profiling configuration) regardless of Algorithm.
	Trace *trace.Trace
	// Recorder, when non-nil, receives the build's per-worker E/W/S,
	// barrier-wait and queue-idle durations live (the observability
	// layer). When nil Build creates a private one: instrumentation is
	// always on and costs two monotonic clock reads per work unit, which
	// the large scan-bound units amortize to <2% of build time.
	Recorder *trace.Recorder
	// Context, when non-nil, cancels the build: workers observe
	// cancellation at work-unit granularity and Build returns ctx.Err().
	Context context.Context
	// Retry bounds the retry-with-backoff applied to transient store
	// faults (see alist.Retrying). The zero value selects
	// alist.DefaultRetry (3 attempts); MaxAttempts 1 disables retrying.
	Retry alist.RetryPolicy
	// AttrMask, when non-nil, restricts the split search to attributes a
	// with AttrMask[a] true — per-tree feature subsampling for forest
	// builds. Masked attributes keep their lists (the schema is shared by
	// every tree of a forest) but never produce a split candidate. Length
	// must equal the schema's attribute count.
	AttrMask []bool
	// StoreWrap, when non-nil, wraps the store Build ends up with (created
	// or overridden) before the retry layer is applied; used by chaos
	// tests — and the forest trainer's fault plans — to inject faults
	// beneath the retry path.
	StoreWrap func(alist.Store) alist.Store

	// storeOverride substitutes the attribute-list store; used by tests
	// for fault injection.
	storeOverride alist.Store
	// histHook, when non-nil, is called by every Hist work unit with the
	// phase name and worker id before the unit runs; a returned error
	// aborts the build. The Hist engine touches no store, so its chaos
	// tests inject panics and faults here instead of through StoreWrap.
	histHook func(phase string, worker int) error
}

// withDefaults fills zero fields with defaults and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Procs == 0 {
		c.Procs = 1
	}
	if c.Procs < 1 {
		return c, fmt.Errorf("core: Procs must be >= 1, got %d", c.Procs)
	}
	if c.WindowK == 0 {
		c.WindowK = 4
	}
	if c.WindowK < 1 {
		return c, fmt.Errorf("core: WindowK must be >= 1, got %d", c.WindowK)
	}
	if c.MinSplit == 0 {
		c.MinSplit = 2
	}
	if c.MinSplit < 2 {
		return c, fmt.Errorf("core: MinSplit must be >= 2, got %d", c.MinSplit)
	}
	if c.MaxDepth < 0 {
		return c, fmt.Errorf("core: MaxDepth must be >= 0, got %d", c.MaxDepth)
	}
	if c.MinGiniGain < 0 {
		return c, fmt.Errorf("core: MinGiniGain must be >= 0, got %g", c.MinGiniGain)
	}
	switch c.Algorithm {
	case Serial, Basic, FWK, MWK, Subtree, RecPar, Hist:
	default:
		return c, fmt.Errorf("core: unknown algorithm %d", int(c.Algorithm))
	}
	if c.MaxBins == 0 {
		c.MaxBins = 256
	}
	if c.MaxBins < 2 || c.MaxBins > 65536 {
		return c, fmt.Errorf("core: MaxBins must be in [2,65536], got %d", c.MaxBins)
	}
	if c.Algorithm == RecPar && c.Probe != probe.GlobalBit {
		return c, fmt.Errorf("core: record parallelism requires the global bit probe (concurrent chunk writes)")
	}
	switch c.SubtreeInner {
	case Serial, Basic: // Serial is the zero value, treated as Basic
		c.SubtreeInner = Basic
	case MWK:
	default:
		return c, fmt.Errorf("core: SubtreeInner must be Basic or MWK, got %v", c.SubtreeInner)
	}
	switch c.Storage {
	case Memory, Disk:
	default:
		return c, fmt.Errorf("core: unknown storage %d", int(c.Storage))
	}
	if c.Trace != nil && c.Algorithm != Serial {
		return c, fmt.Errorf("core: cost tracing requires Algorithm == Serial")
	}
	if c.AttrMask != nil {
		any := false
		for _, ok := range c.AttrMask {
			if ok {
				any = true
				break
			}
		}
		if !any {
			return c, fmt.Errorf("core: AttrMask masks every attribute")
		}
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = alist.DefaultRetry()
	}
	if c.Retry.MaxAttempts < 1 {
		return c, fmt.Errorf("core: Retry.MaxAttempts must be >= 1, got %d", c.Retry.MaxAttempts)
	}
	if c.Recorder == nil {
		c.Recorder = trace.NewRecorder(c.Procs)
	} else if c.Recorder.Workers() < c.Procs {
		return c, fmt.Errorf("core: Recorder has %d lanes, Procs is %d",
			c.Recorder.Workers(), c.Procs)
	}
	return c, nil
}

// Timings reports the phase breakdown of a build, mirroring the paper's
// setup / sort / build decomposition.
type Timings struct {
	// Setup is the attribute-list creation time.
	Setup time.Duration
	// Sort is the continuous-attribute pre-sort time.
	Sort time.Duration
	// Build is the tree-growth time.
	Build time.Duration
}

// Total returns setup + sort + build.
func (t Timings) Total() time.Duration { return t.Setup + t.Sort + t.Build }
