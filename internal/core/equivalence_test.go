package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/alist"
	"repro/internal/probe"
)

// TestSplitKernelMatchesPerRecordReference is the cross-kernel equivalence
// property: the run-length split kernel (scratch.splitRuns, bulk AppendChunk
// moves, raw-bit probe access) must produce byte-identical child lists to a
// naive per-record reference (interface Left/Remap calls, per-record
// Append), for every probe design and both storage backends, across run
// shapes from fully alternating to a single run.
func TestSplitKernelMatchesPerRecordReference(t *testing.T) {
	kinds := []probe.Kind{probe.GlobalBit, probe.LeafHash, probe.LeafRelabel}
	shapes := []struct {
		name string
		// left decides the destination of the i-th record of n.
		left func(i, n int, rng *rand.Rand) bool
	}{
		{"random", func(i, n int, rng *rand.Rand) bool { return rng.Intn(2) == 0 }},
		{"alternating", func(i, n int, rng *rand.Rand) bool { return i%2 == 0 }},
		{"allLeft", func(i, n int, rng *rand.Rand) bool { return true }},
		{"halves", func(i, n int, rng *rand.Rand) bool { return i < n/2 }},
		{"longRuns", func(i, n int, rng *rand.Rand) bool { return (i/97)%2 == 0 }},
	}
	for _, kind := range kinds {
		for _, disk := range []bool{false, true} {
			for _, shape := range shapes {
				storage := "mem"
				if disk {
					storage = "disk"
				}
				t.Run(fmt.Sprintf("%v/%s/%s", kind, storage, shape.name), func(t *testing.T) {
					runSplitKernelCase(t, kind, disk, shape.left)
				})
			}
		}
	}
}

func runSplitKernelCase(t *testing.T, kind probe.Kind, disk bool,
	leftOf func(i, n int, rng *rand.Rand) bool) {
	t.Helper()
	const n = 9000 // > 2×AppenderChunk so the bulk bypass path is exercised
	rng := rand.New(rand.NewSource(int64(kind)*1000 + int64(n)))

	// A sorted continuous attribute list with duplicate values and a random
	// tid permutation, as after the setup sort.
	recs := make([]alist.Record, n)
	perm := rng.Perm(n)
	for i := range recs {
		recs[i] = alist.Record{
			Value: float64(rng.Intn(n / 3)),
			Tid:   uint32(perm[i]),
			Class: int32(rng.Intn(3)),
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Value != recs[j].Value {
			return recs[i].Value < recs[j].Value
		}
		return recs[i].Tid < recs[j].Tid
	})

	// Destinations keyed by scan position; the probe is keyed by tid.
	left := make([]bool, n)
	var nl, nr int64
	for i := range left {
		left[i] = leftOf(i, n, rng)
		if left[i] {
			nl++
		} else {
			nr++
		}
	}
	fac, err := probe.NewFactory(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	prb := fac.ForLeaf(nl, nr)
	for i, r := range recs {
		prb.Set(r.Tid, left[i])
	}
	prb.Seal()

	// Reference child lists, built per record with interface calls only.
	var refL, refR []alist.Record
	for _, r := range recs {
		out := r
		out.Tid = prb.Remap(r.Tid)
		if prb.Left(r.Tid) {
			refL = append(refL, out)
		} else {
			refR = append(refR, out)
		}
	}

	// Kernel child lists, through a real store.
	var st alist.Store = alist.NewMemStore(1, 2)
	if disk {
		fs, err := alist.NewFileStore(t.TempDir(), 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		st = fs
	}
	defer st.Close()
	if _, err := st.Reserve(0, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt(0, 0, 0, recs); err != nil {
		t.Fatal(err)
	}
	offL, err := st.Reserve(0, 1, int(nl))
	if err != nil {
		t.Fatal(err)
	}
	offR, err := st.Reserve(0, 1, int(nr))
	if err != nil {
		t.Fatal(err)
	}

	sc := &scratch{}
	sc.splitScan = sc.splitRuns
	sc.apL.Reset(st, 0, 1, offL, int(nl))
	sc.apR.Reset(st, 0, 1, offR, int(nr))
	sc.useL, sc.useR = true, true
	sc.armProbe(prb, fac.Relabels())
	if err := st.Scan(0, 0, 0, n, sc.splitScan); err != nil {
		t.Fatal(err)
	}
	if err := sc.apL.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sc.apR.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(side string, off int64, want []alist.Record) {
		got := make([]alist.Record, 0, len(want))
		if err := st.Scan(0, 1, off, len(want), func(chunk []alist.Record) error {
			got = append(got, chunk...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", side, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s record %d: got %+v, want %+v", side, i, got[i], want[i])
			}
		}
	}
	check("left", offL, refL)
	check("right", offR, refR)
}

// TestSplitKernelDropsTerminalChildren: records routed to a disarmed side
// (pure child, no storage) must be skipped without disturbing the other side.
func TestSplitKernelDropsTerminalChildren(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(99))
	recs := make([]alist.Record, n)
	for i := range recs {
		recs[i] = alist.Record{Value: float64(i), Tid: uint32(i), Class: int32(rng.Intn(2))}
	}
	fac, _ := probe.NewFactory(probe.GlobalBit, n)
	var nl int64
	left := make([]bool, n)
	for i := range left {
		left[i] = rng.Intn(3) > 0
		if left[i] {
			nl++
		}
	}
	prb := fac.ForLeaf(nl, int64(n)-nl)
	for i, r := range recs {
		prb.Set(r.Tid, left[i])
	}
	prb.Seal()

	st := alist.NewMemStore(1, 2)
	if _, err := st.Reserve(0, 0, n); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt(0, 0, 0, recs); err != nil {
		t.Fatal(err)
	}
	offL, err := st.Reserve(0, 1, int(nl))
	if err != nil {
		t.Fatal(err)
	}

	sc := &scratch{}
	sc.splitScan = sc.splitRuns
	sc.apL.Reset(st, 0, 1, offL, int(nl))
	sc.useL, sc.useR = true, false // right child is terminal
	sc.armProbe(prb, false)
	if err := st.Scan(0, 0, 0, n, sc.splitScan); err != nil {
		t.Fatal(err)
	}
	if err := sc.apL.Close(); err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := st.Scan(0, 1, offL, int(nl), func(chunk []alist.Record) error {
		for _, r := range chunk {
			if !left[r.Tid] {
				t.Fatalf("right-bound tid %d leaked into the left child", r.Tid)
			}
			i++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if int64(i) != nl {
		t.Fatalf("left child holds %d records, want %d", i, nl)
	}
}
