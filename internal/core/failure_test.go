package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alist"
)

// failingStore wraps a MemStore and fails every operation after a budget of
// successful calls, exercising the error paths of every scheme's driver:
// workers must propagate the first error, keep the synchronization protocol
// alive (no deadlock at barriers or condition waits), and Build must return
// the error.
type failingStore struct {
	*alist.MemStore
	budget atomic.Int64
}

var errInjected = errors.New("injected storage failure")

func (f *failingStore) take() error {
	if f.budget.Add(-1) < 0 {
		return errInjected
	}
	return nil
}

func (f *failingStore) Reserve(attr, slot int, n int) (int64, error) {
	if err := f.take(); err != nil {
		return 0, err
	}
	return f.MemStore.Reserve(attr, slot, n)
}

func (f *failingStore) WriteAt(attr, slot int, off int64, recs []alist.Record) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.MemStore.WriteAt(attr, slot, off, recs)
}

func (f *failingStore) Scan(attr, slot int, off int64, n int, fn func([]alist.Record) error) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.MemStore.Scan(attr, slot, off, n, fn)
}

func (f *failingStore) Reset(attr, slot int) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.MemStore.Reset(attr, slot)
}

// TestInjectedStorageFailures drives every algorithm with storage that
// fails at assorted points of the build. Every run must terminate promptly
// with the injected error (or, for generous budgets, succeed).
func TestInjectedStorageFailures(t *testing.T) {
	tbl := synthTable(t, 7, 9, 300, 21)
	for _, alg := range []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecPar} {
		for _, budget := range []int64{0, 1, 5, 17, 60, 201, 1000} {
			name := fmt.Sprintf("%v/budget%d", alg, budget)
			t.Run(name, func(t *testing.T) {
				st := &failingStore{MemStore: alist.NewMemStore(9, 64)}
				st.budget.Store(budget)
				cfg := Config{Algorithm: alg, Procs: 3, MaxDepth: 6}
				cfg.storeOverride = st

				done := make(chan error, 1)
				go func() {
					_, _, err := Build(tbl, cfg)
					done <- err
				}()
				select {
				case err := <-done:
					if err != nil && !errors.Is(err, errInjected) {
						t.Fatalf("unexpected error: %v", err)
					}
				case <-time.After(30 * time.Second):
					t.Fatal("build hung after injected failure")
				}
			})
		}
	}
}
