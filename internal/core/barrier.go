package core

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// barrier is a reusable counting barrier for a fixed party count, the
// synchronization point the paper draws as a horizontal bar between the E, W
// and S phases. A barrier can be aborted: when a worker dies (panics) it can
// never rejoin the protocol, so the panic-containment path breaks the
// barrier rather than leave the surviving parties counting to a total that
// will never be reached.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

// newBarrier creates a barrier for n parties.
func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait (true, barrier
// immediately reusable) or the barrier is aborted (false — current waiters
// wake, future waiters return immediately). A false return means the build
// is being torn down and the caller must unwind without touching shared
// level state.
func (b *barrier) wait() bool {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	ok := gen != b.gen
	b.mu.Unlock()
	return ok
}

// abort permanently breaks the barrier, waking every current waiter.
func (b *barrier) abort() {
	b.mu.Lock()
	if !b.broken {
		b.broken = true
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// timedWait is wait() with the stall recorded into the caller's lane at
// (lvl, barrier) — how the schemes account inter-phase synchronization.
func (b *barrier) timedWait(ln *trace.Lane, lvl int) bool {
	t0 := time.Now()
	ok := b.wait()
	ln.Add(lvl, trace.PhaseBarrier, time.Since(t0))
	return ok
}

// barrierSet tracks every live barrier of a build so one teardown can break
// them all. SUBTREE needs it: group barriers are created dynamically, and a
// group delivered to some members after the abort must not strand them on a
// fresh, unbroken barrier — add() breaks late arrivals itself once the set
// is aborted.
type barrierSet struct {
	mu      sync.Mutex
	bars    []*barrier
	aborted bool
}

func (s *barrierSet) add(b *barrier) {
	s.mu.Lock()
	s.bars = append(s.bars, b)
	aborted := s.aborted
	s.mu.Unlock()
	if aborted {
		b.abort()
	}
}

func (s *barrierSet) abort() {
	s.mu.Lock()
	s.aborted = true
	bars := s.bars
	s.mu.Unlock()
	for _, b := range bars {
		b.abort()
	}
}
