package core

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// barrier is a reusable counting barrier for a fixed party count, the
// synchronization point the paper draws as a horizontal bar between the E, W
// and S phases.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

// newBarrier creates a barrier for n parties.
func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait, then releases them all.
// The barrier is immediately reusable.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// timedWait is wait() with the stall recorded into the caller's lane at
// (lvl, barrier) — how the schemes account inter-phase synchronization.
func (b *barrier) timedWait(ln *trace.Lane, lvl int) {
	t0 := time.Now()
	b.wait()
	ln.Add(lvl, trace.PhaseBarrier, time.Since(t0))
}
