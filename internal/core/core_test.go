package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/probe"
	"repro/internal/synth"
	"repro/internal/tree"
)

// carInsuranceTable reproduces the paper's Fig. 1 training set.
func carInsuranceTable(t *testing.T) *dataset.Table {
	t.Helper()
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "age", Kind: dataset.Continuous},
			{Name: "cartype", Kind: dataset.Categorical, Categories: []string{"family", "sports", "truck"}},
		},
		Classes: []string{"low", "high"},
	}
	tbl, err := dataset.NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		age  float64
		car  int32
		risk int32
	}{
		{23, 0, 1},
		{17, 1, 1},
		{43, 1, 1},
		{68, 0, 0},
		{32, 2, 0},
		{20, 0, 1},
	}
	for _, r := range rows {
		if err := tbl.Append(dataset.Tuple{
			Cont:  []float64{r.age, 0},
			Cat:   []int32{0, r.car},
			Class: r.risk,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSerialCarInsurance(t *testing.T) {
	tbl := carInsuranceTable(t)
	tr, _, err := Build(tbl, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's tree: root splits on age < 27.5, left child is "high",
	// right child splits on cartype in {sports} (or equivalently the gini
	// winner), resolving all classes.
	if tr.Root.IsLeaf() {
		t.Fatal("root should not be a leaf")
	}
	if got := tr.Root.Split.Attr; got != 0 {
		t.Fatalf("root splits on attr %d, want age (0)", got)
	}
	if got := tr.Root.Split.Threshold; got != 27.5 {
		t.Fatalf("root threshold = %g, want 27.5", got)
	}
	if acc := tr.Accuracy(tbl); acc != 1.0 {
		t.Fatalf("training accuracy = %g, want 1.0", acc)
	}
	st := tr.Stats()
	if st.Levels < 2 || st.Levels > 3 {
		t.Fatalf("levels = %d, want 2..3", st.Levels)
	}
}

func synthTable(t testing.TB, fn, attrs, n int, seed int64) *dataset.Table {
	t.Helper()
	tbl, err := synth.Generate(synth.Config{
		Function: fn, Attrs: attrs, Tuples: n, Seed: seed, Perturbation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestAlgorithmsProduceIdenticalTrees is the central determinism oracle:
// every parallel scheme, at several processor counts, with both storage
// backends and all probe designs, must grow a tree identical to serial
// SPRINT's.
func TestAlgorithmsProduceIdenticalTrees(t *testing.T) {
	type variant struct {
		fn, attrs, n int
	}
	variants := []variant{
		{1, 9, 400},
		{7, 9, 400},
		{3, 12, 300},
	}
	algos := []Algorithm{Basic, FWK, MWK, Subtree, RecPar}
	for _, v := range variants {
		tbl := synthTable(t, v.fn, v.attrs, v.n, 42)
		ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 12})
		if err != nil {
			t.Fatalf("serial build F%d: %v", v.fn, err)
		}
		for _, alg := range algos {
			for _, procs := range []int{1, 2, 3, 4, 7} {
				name := fmt.Sprintf("F%d/%v/P%d", v.fn, alg, procs)
				t.Run(name, func(t *testing.T) {
					got, _, err := Build(tbl, Config{
						Algorithm: alg, Procs: procs, MaxDepth: 12,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !tree.Equal(ref, got) {
						t.Fatalf("tree differs from serial: %s", tree.Diff(ref, got))
					}
				})
			}
		}
	}
}

func TestDiskStorageMatchesMemory(t *testing.T) {
	tbl := synthTable(t, 7, 9, 500, 7)
	ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecPar} {
		t.Run(alg.String(), func(t *testing.T) {
			got, _, err := Build(tbl, Config{
				Algorithm: alg, Procs: 3, Storage: Disk,
				TempDir: t.TempDir(), MaxDepth: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tree.Equal(ref, got) {
				t.Fatalf("tree differs from serial/memory: %s", tree.Diff(ref, got))
			}
		})
	}
}

func TestProbeKindsAgree(t *testing.T) {
	tbl := synthTable(t, 6, 9, 500, 11)
	ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, pk := range []probe.Kind{probe.GlobalBit, probe.LeafHash, probe.LeafRelabel} {
		for _, alg := range []Algorithm{Serial, MWK, Subtree} {
			t.Run(fmt.Sprintf("%v/%v", pk, alg), func(t *testing.T) {
				got, _, err := Build(tbl, Config{
					Algorithm: alg, Procs: 4, Probe: pk, MaxDepth: 10,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !tree.Equal(ref, got) {
					t.Fatalf("tree differs from serial global-bit: %s", tree.Diff(ref, got))
				}
			})
		}
	}
}

func TestWindowSizesAgree(t *testing.T) {
	tbl := synthTable(t, 7, 9, 400, 3)
	ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 8, 64} {
		for _, alg := range []Algorithm{FWK, MWK} {
			t.Run(fmt.Sprintf("%v/K%d", alg, k), func(t *testing.T) {
				got, _, err := Build(tbl, Config{
					Algorithm: alg, Procs: 4, WindowK: k, MaxDepth: 10,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !tree.Equal(ref, got) {
					t.Fatalf("tree differs from serial: %s", tree.Diff(ref, got))
				}
			})
		}
	}
}

func TestStoppingRules(t *testing.T) {
	tbl := synthTable(t, 7, 9, 500, 5)
	t.Run("MaxDepth", func(t *testing.T) {
		tr, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 3})
		if err != nil {
			t.Fatal(err)
		}
		if st := tr.Stats(); st.Levels > 4 {
			t.Fatalf("levels = %d, want <= 4 (depth 3 + leaf level)", st.Levels)
		}
	})
	t.Run("MinSplit", func(t *testing.T) {
		tr, _, err := Build(tbl, Config{Algorithm: Serial, MinSplit: 100})
		if err != nil {
			t.Fatal(err)
		}
		for _, leaf := range tr.CollectLeaves() {
			if leaf.N < 100 && leaf.Level > 0 {
				// A leaf smaller than MinSplit is fine; what is not fine
				// is an internal node smaller than MinSplit.
				continue
			}
		}
		var walk func(n *tree.Node)
		walk = func(n *tree.Node) {
			if n.IsLeaf() {
				return
			}
			if n.N < 100 {
				t.Fatalf("internal node with n=%d < MinSplit=100", n.N)
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(tr.Root)
	})
	t.Run("MinGiniGain", func(t *testing.T) {
		loose, _, err := Build(tbl, Config{Algorithm: Serial})
		if err != nil {
			t.Fatal(err)
		}
		tight, _, err := Build(tbl, Config{Algorithm: Serial, MinGiniGain: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if tight.Stats().Nodes >= loose.Stats().Nodes {
			t.Fatalf("MinGiniGain did not shrink the tree: %d vs %d nodes",
				tight.Stats().Nodes, loose.Stats().Nodes)
		}
	})
}

func TestNodeInvariants(t *testing.T) {
	tbl := synthTable(t, 5, 9, 600, 9)
	tr, _, err := Build(tbl, Config{Algorithm: MWK, Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		var sum int64
		for _, c := range n.ClassCounts {
			sum += c
		}
		if sum != n.N {
			t.Fatalf("node %d: class counts sum %d != n %d", n.ID, sum, n.N)
		}
		if n.IsLeaf() {
			return
		}
		if n.Left.N+n.Right.N != n.N {
			t.Fatalf("node %d: children %d+%d != %d", n.ID, n.Left.N, n.Right.N, n.N)
		}
		for j := range n.ClassCounts {
			if n.Left.ClassCounts[j]+n.Right.ClassCounts[j] != n.ClassCounts[j] {
				t.Fatalf("node %d: class %d histogram not conserved", n.ID, j)
			}
		}
		if n.Left.Level != n.Level+1 || n.Right.Level != n.Level+1 {
			t.Fatalf("node %d: child levels wrong", n.ID)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root)
}

func TestParallelSetupMatchesSerialSetup(t *testing.T) {
	tbl := synthTable(t, 2, 9, 400, 13)
	ref, _, err := Build(tbl, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Build(tbl, Config{Algorithm: MWK, Procs: 4, ParallelSetup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(ref, got) {
		t.Fatalf("tree differs: %s", tree.Diff(ref, got))
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	schema := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Continuous}},
		Classes: []string{"a", "b"},
	}
	t.Run("Empty", func(t *testing.T) {
		tbl, err := dataset.NewTable(schema)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Build(tbl, Config{}); err == nil {
			t.Fatal("expected error for empty training set")
		}
	})
	t.Run("SingleTuple", func(t *testing.T) {
		tbl, _ := dataset.NewTable(schema)
		if err := tbl.Append(dataset.Tuple{Cont: []float64{1}, Cat: []int32{0}, Class: 0}); err != nil {
			t.Fatal(err)
		}
		tr, _, err := Build(tbl, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Root.IsLeaf() || tr.Root.Class != 0 {
			t.Fatalf("single tuple should give a single leaf of its class")
		}
	})
	t.Run("AllSameClass", func(t *testing.T) {
		tbl, _ := dataset.NewTable(schema)
		for i := 0; i < 10; i++ {
			tbl.AppendFast(dataset.Tuple{Cont: []float64{float64(i)}, Cat: []int32{0}, Class: 1})
		}
		tr, _, err := Build(tbl, Config{Algorithm: Subtree, Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Root.IsLeaf() || tr.Root.Class != 1 {
			t.Fatal("pure training set should give a single leaf")
		}
	})
	t.Run("ConstantAttribute", func(t *testing.T) {
		// Mixed classes but no splittable attribute: root stays a leaf.
		tbl, _ := dataset.NewTable(schema)
		for i := 0; i < 10; i++ {
			tbl.AppendFast(dataset.Tuple{Cont: []float64{5}, Cat: []int32{0}, Class: int32(i % 2)})
		}
		tr, _, err := Build(tbl, Config{Algorithm: MWK, Procs: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Root.IsLeaf() {
			t.Fatal("unsplittable root should stay a leaf")
		}
	})
}

func TestTimingsPopulated(t *testing.T) {
	tbl := synthTable(t, 1, 9, 300, 1)
	_, tm, err := Build(tbl, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Setup <= 0 || tm.Build <= 0 {
		t.Fatalf("timings not populated: %+v", tm)
	}
	if tm.Total() != tm.Setup+tm.Sort+tm.Build {
		t.Fatal("Total() mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	tbl := synthTable(t, 1, 9, 50, 1)
	bad := []Config{
		{Procs: -1},
		{Algorithm: RecPar, Probe: probe.LeafHash},
		{WindowK: -2},
		{MinSplit: 1},
		{MaxDepth: -1},
		{MinGiniGain: -0.5},
		{Algorithm: Algorithm(99)},
		{Storage: Storage(99)},
	}
	for i, cfg := range bad {
		if _, _, err := Build(tbl, cfg); err == nil {
			t.Errorf("config %d should have been rejected", i)
		}
	}
}

// TestCombinedFilesMatchAndCountFour exercises the paper's §2.3 refinement:
// all attributes share one striped physical file per slot, so the whole
// serial build uses at most 4 physical files — and still grows the
// identical tree.
func TestCombinedFilesMatchAndCountFour(t *testing.T) {
	tbl := synthTable(t, 7, 9, 500, 7)
	ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, _, err := Build(tbl, Config{
		Algorithm: Serial, Storage: Disk, TempDir: dir,
		CombinedFiles: true, MaxDepth: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(ref, got) {
		t.Fatalf("combined-file build differs: %s", tree.Diff(ref, got))
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.alist"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 4 {
		t.Fatalf("combined mode created %d files, paper promises at most 4", len(files))
	}
	// Parallel schemes work over the combined store too.
	for _, alg := range []Algorithm{MWK, Subtree} {
		got, _, err := Build(tbl, Config{
			Algorithm: alg, Procs: 3, Storage: Disk, TempDir: t.TempDir(),
			CombinedFiles: true, MaxDepth: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(ref, got) {
			t.Fatalf("%v combined-file build differs: %s", alg, tree.Diff(ref, got))
		}
	}
}

// TestSubtreeMWKInner exercises the paper's §3.4 hybrid: SUBTREE groups
// running MWK internally must still grow the identical tree.
func TestSubtreeMWKInner(t *testing.T) {
	tbl := synthTable(t, 7, 9, 600, 17)
	ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4} {
		got, _, err := Build(tbl, Config{
			Algorithm: Subtree, SubtreeInner: MWK, Procs: procs, MaxDepth: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(ref, got) {
			t.Fatalf("P=%d: hybrid tree differs: %s", procs, tree.Diff(ref, got))
		}
	}
	if _, _, err := Build(tbl, Config{Algorithm: Subtree, SubtreeInner: FWK}); err == nil {
		t.Fatal("FWK inner should be rejected (only Basic/MWK implemented)")
	}
}
