package core

import (
	"sync"
	"time"

	"repro/internal/alist"
	"repro/internal/dataset"
	"repro/internal/sched"
	"repro/internal/split"
	"repro/internal/trace"
	"repro/internal/tree"
)

// runRecPar implements record data parallelism — the scheme used by
// parallel SPRINT on distributed-memory machines, which the paper argues is
// "not well suited to SMP systems since it is likely to cause excessive
// synchronization, and replication of data structures". It is provided as
// the comparison baseline: every processor works on a contiguous 1/P chunk
// of *every* attribute list.
//
//   - E (continuous): pass A gathers per-chunk class histograms; after a
//     barrier each processor seeds a chunk evaluator with the prefix
//     histogram (replicated Cbelow state) and pass B scans again to score
//     candidates, including the chunk-boundary mid-point; a reduction picks
//     the best. Two barriers and two scans per (leaf, attribute) unit.
//   - E (categorical): per-chunk count matrices merged by the master.
//   - W: processors set probe bits for their chunk of the winning list and
//     gather partial child histograms (requires the shared atomic global
//     bit probe); the master merges and registers children.
//   - S: pass 1 counts each chunk's left records, a barrier publishes the
//     counts, prefix sums give every chunk its disjoint output regions, and
//     pass 2 writes them. Again two barriers and two scans per unit.
//
// The per-unit barrier count — Θ(leaves × attributes) per level versus
// BASIC's 4 per level — is exactly the synchronization overhead the paper
// predicts for this design on an SMP.
func (e *engine) runRecPar(root *leafState) error {
	frontier := e.rootFrontier(root)
	if len(frontier) == 0 {
		return nil
	}
	P := e.cfg.Procs
	bar := sched.NewBarrier(P)
	var ferr sched.ErrOnce

	// Per-worker scratch slots; slot w is written only by worker w between
	// barriers and read by others only after the next barrier.
	hists := make([][]int64, P) // pass-A chunk class histograms
	histL := make([][]int64, P) // W partial left histograms
	histR := make([][]int64, P) // W partial right histograms
	for w := 0; w < P; w++ {
		hists[w] = make([]int64, e.nclass)
		histL[w] = make([]int64, e.nclass)
		histR[w] = make([]int64, e.nclass)
	}
	type chunkVal struct {
		first, last float64
		n           int
	}
	vals := make([]chunkVal, P)         // pass-A chunk boundary values
	cands := make([]split.Candidate, P) // pass-B chunk candidates
	cats := make([]*split.CatEval, P)   // categorical chunk matrices (scratch-owned)
	lefts := make([]int64, P)           // S pass-1 chunk left counts

	var next []*leafState
	var done bool
	level := 0

	// chunk returns worker w's record range within a leaf of n records.
	chunk := func(n int64, w int) (int64, int64) {
		lo := n * int64(w) / int64(P)
		hi := n * int64(w+1) / int64(P)
		return lo, hi
	}

	worker := func(id int) {
		ln := e.rec.Lane(id)
		// Per-worker arena; slot-published pieces (cats[id]) point into it
		// and are read by the master strictly between barriers, before the
		// owner reuses them.
		sc := e.newScratch()
		cats[id] = &sc.cat
		for {
			lvl := level
			for _, l := range frontier {
				lo, hi := chunk(l.n, id)

				// ---- E phase: one unit per attribute, chunk-parallel.
				// Every unit performs exactly two barriers regardless of
				// error state, so workers that observe a failure at
				// different moments can never diverge in barrier counts.
				for a := 0; a < e.nattr; a++ {
					sr := l.segs[a]
					if e.schema.Attrs[a].Kind == dataset.Continuous {
						// Pass A: chunk class histogram and boundary values.
						if !ferr.Failed() {
							t0 := time.Now()
							h := hists[id]
							for j := range h {
								h[j] = 0
							}
							v := chunkVal{}
							if err := e.scan(sc, a, sr.slot, sr.off+lo, int(hi-lo), func(recs []alist.Record) error {
								for i := range recs {
									h[recs[i].Class]++
								}
								if v.n == 0 {
									v.first = recs[0].Value
								}
								v.last = recs[len(recs)-1].Value
								v.n += len(recs)
								return nil
							}); err != nil {
								ferr.Set(err)
							}
							vals[id] = v
							ln.Add(lvl, trace.PhaseEval, time.Since(t0))
						}
						if !bar.TimedWait(ln, lvl) {
							return // build aborted by a dead worker's teardown
						}
						if !ferr.Failed() {
							t0 := time.Now()
							// Prefix histogram and previous value (replicated
							// per processor — the paper's "replication of
							// data structures").
							sc.below = zeroInt64(sc.below, e.nclass)
							below := sc.below
							prev := 0.0
							started := false
							for w := 0; w < id; w++ {
								for j := range below {
									below[j] += hists[w][j]
								}
								if vals[w].n > 0 {
									prev = vals[w].last
									started = true
								}
							}
							// Pass B: score candidates within the chunk.
							sc.cont.ResetSeeded(a, l.hist, below, prev, started)
							if err := e.scan(sc, a, sr.slot, sr.off+lo, int(hi-lo), sc.contScan); err != nil {
								ferr.Set(err)
							}
							cands[id] = sc.cont.Finish()
							ln.AddN(lvl, trace.PhaseEval, time.Since(t0), 0)
						}
						if !bar.TimedWait(ln, lvl) {
							return // build aborted by a dead worker's teardown
						}
						if id == 0 && !ferr.Failed() {
							t0 := time.Now()
							best := split.Candidate{}
							for w := 0; w < P; w++ {
								if cands[w].Better(best) {
									best = cands[w]
								}
							}
							l.cands[a] = best
							ln.AddN(lvl, trace.PhaseEval, time.Since(t0), 0)
						}
						continue
					}
					// Categorical: per-chunk count matrices, master merge.
					if !ferr.Failed() {
						t0 := time.Now()
						card := e.schema.Attrs[a].Cardinality()
						sc.cat.Reset(a, card, l.hist, e.cfg.MaxEnumCard)
						if err := e.scan(sc, a, sr.slot, sr.off+lo, int(hi-lo), sc.catScan); err != nil {
							ferr.Set(err)
						}
						ln.Add(lvl, trace.PhaseEval, time.Since(t0))
					}
					if !bar.TimedWait(ln, lvl) {
						return // build aborted by a dead worker's teardown
					}
					if id == 0 && !ferr.Failed() {
						t0 := time.Now()
						for w := 1; w < P; w++ {
							cats[0].Merge(cats[w])
						}
						l.cands[a] = cats[0].Finish()
						ln.AddN(lvl, trace.PhaseEval, time.Since(t0), 0)
					}
					// Close the unit before cats slots are reused by the
					// next categorical attribute.
					if !bar.TimedWait(ln, lvl) {
						return // build aborted by a dead worker's teardown
					}
				}
				if !bar.TimedWait(ln, lvl) {
					return // build aborted by a dead worker's teardown
				}

				// ---- W phase: chunk-parallel probe construction ----
				if id == 0 && !ferr.Failed() {
					t0 := time.Now()
					best := split.Candidate{}
					for _, c := range l.cands {
						if c.Better(best) {
							best = c
						}
					}
					l.win = best
					if best.Valid && e.cfg.MinGiniGain > 0 &&
						split.Gini(l.hist, l.n)-best.Gini < e.cfg.MinGiniGain {
						l.win.Valid = false
					}
					if l.win.Valid {
						l.prb = e.probes.ForLeaf(best.NLeft, best.NRight)
					}
					ln.AddN(lvl, trace.PhaseWinner, time.Since(t0), 0)
				}
				if !bar.TimedWait(ln, lvl) {
					return // build aborted by a dead worker's teardown
				}
				if l.win.Valid && !ferr.Failed() {
					t0 := time.Now()
					best := l.win
					hl, hr := histL[id], histR[id]
					for j := 0; j < e.nclass; j++ {
						hl[j], hr[j] = 0, 0
					}
					sr := l.segs[best.Attr]
					// Each worker write-combines its own chunk's probe bits;
					// chunk tids are disjoint, so word atomics compose. The
					// Flush below happens before the barrier that precedes
					// the master's Seal.
					batched := sc.wb != nil && sc.wb.Begin(l.prb)
					if err := e.scan(sc, best.Attr, sr.slot, sr.off+lo, int(hi-lo), func(recs []alist.Record) error {
						if batched {
							for i := range recs {
								left := best.GoesLeft(recs[i].Value)
								sc.wb.Set(recs[i].Tid, left)
								if left {
									hl[recs[i].Class]++
								} else {
									hr[recs[i].Class]++
								}
							}
							return nil
						}
						for i := range recs {
							left := best.GoesLeft(recs[i].Value)
							l.prb.Set(recs[i].Tid, left)
							if left {
								hl[recs[i].Class]++
							} else {
								hr[recs[i].Class]++
							}
						}
						return nil
					}); err != nil {
						ferr.Set(err)
					}
					if batched {
						sc.wb.Flush()
					}
					ln.AddN(lvl, trace.PhaseWinner, time.Since(t0), 0)
				}
				if !bar.TimedWait(ln, lvl) {
					return // build aborted by a dead worker's teardown
				}
				if id == 0 && l.win.Valid && !ferr.Failed() {
					t0 := time.Now()
					if err := e.finishRecParW(l, histL, histR, level); err != nil {
						ferr.Set(err)
					}
					ln.Add(lvl, trace.PhaseWinner, time.Since(t0))
				}
				if !bar.TimedWait(ln, lvl) {
					return // build aborted by a dead worker's teardown
				}

				// ---- S phase: one unit per attribute, chunk-parallel;
				// two unconditional barriers per unit (see E phase note).
				if !l.didSplit {
					continue
				}
				for a := 0; a < e.nattr; a++ {
					// Pass 1: count the chunk's left records.
					var nl int64
					if !ferr.Failed() {
						t0 := time.Now()
						sr := l.segs[a]
						prb := l.prb
						if err := e.scan(sc, a, sr.slot, sr.off+lo, int(hi-lo), func(recs []alist.Record) error {
							for i := range recs {
								if prb.Left(recs[i].Tid) {
									nl++
								}
							}
							return nil
						}); err != nil {
							ferr.Set(err)
						}
						lefts[id] = nl
						ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), 0)
					}
					if !bar.TimedWait(ln, lvl) {
						return // build aborted by a dead worker's teardown
					}
					if !ferr.Failed() {
						t0 := time.Now()
						// Disjoint output regions from the prefix sums.
						var prefL int64
						for w := 0; w < id; w++ {
							prefL += lefts[w]
						}
						prefR := lo - prefL
						if err := e.splitChunk(l, a, lo, hi, prefL, prefR, nl, sc); err != nil {
							ferr.Set(err)
						}
						ln.Add(lvl, trace.PhaseSplit, time.Since(t0))
					}
					if !bar.TimedWait(ln, lvl) {
						return // build aborted by a dead worker's teardown
					}
				}
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}

			if id == 0 {
				t0 := time.Now()
				next = nil
				for li, l := range frontier {
					if !ferr.Failed() && l.didSplit {
						for _, c := range l.children {
							if !c.terminal {
								next = append(next, childLeafState(c, li, e.nattr))
							}
						}
					}
					releaseLeaf(l)
				}
				curBase := e.pairBase(level)
				if err := e.resetSlots(curBase, curBase+1); err != nil {
					ferr.Set(err)
				}
				if ferr.Failed() {
					next = nil
				}
				frontier = next
				level++
				done = len(frontier) == 0
				ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), 0)
			}
			if !bar.TimedWait(ln, lvl) {
				return // build aborted by a dead worker's teardown
			}
			if done {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for id := 0; id < P; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// A panicking worker can never rejoin the barrier protocol;
			// breaking the barrier releases every surviving peer.
			sched.Guard(&ferr, bar.Abort, id, func() { worker(id) })
		}(id)
	}
	wg.Wait()
	return ferr.Get()
}

// finishRecParW merges the chunk histograms, seals the probe, attaches
// child nodes with the purity pre-test, and registers storage — the serial
// tail of the record-parallel W phase.
func (e *engine) finishRecParW(l *leafState, histL, histR [][]int64, level int) error {
	hl := make([]int64, e.nclass)
	hr := make([]int64, e.nclass)
	for w := range histL {
		for j := 0; j < e.nclass; j++ {
			hl[j] += histL[w][j]
			hr[j] += histR[w][j]
		}
	}
	l.prb.Seal()
	best := l.win
	childLevel := l.node.Level + 1
	mk := func(hist []int64, n int64) *childInfo {
		node := &tree.Node{
			Level:       childLevel,
			N:           n,
			ClassCounts: hist,
			Class:       tree.MajorityClass(hist),
		}
		return &childInfo{node: node, n: n, hist: hist,
			terminal: e.terminal(childLevel, n, hist)}
	}
	l.children[0] = mk(hl, best.NLeft)
	l.children[1] = mk(hr, best.NRight)
	winCopy := best
	l.node.Split = &winCopy
	l.node.Left = l.children[0].node
	l.node.Right = l.children[1].node
	l.didSplit = true

	nextBase := e.pairBase(level + 1)
	for side, c := range l.children {
		if c.terminal {
			continue
		}
		if err := e.registerChild(c, nextBase+side); err != nil {
			return err
		}
	}
	return nil
}

// splitChunk writes one chunk's records into the children's reserved
// regions at the offsets determined by the prefix sums, reusing the caller's
// scratch appenders and run-length kernel.
func (e *engine) splitChunk(l *leafState, a int, lo, hi, prefL, prefR, nl int64, sc *scratch) error {
	sc.useL, sc.useR = false, false
	if c := l.children[0]; !c.terminal {
		sc.apL.Reset(e.store, a, c.segs[a].slot, c.segs[a].off+prefL, int(nl))
		sc.useL = true
	}
	if c := l.children[1]; !c.terminal {
		sc.apR.Reset(e.store, a, c.segs[a].slot, c.segs[a].off+prefR, int(hi-lo-nl))
		sc.useR = true
	}
	sc.armProbe(l.prb, false) // the record-parallel scheme never relabels
	sr := l.segs[a]
	if err := e.scan(sc, a, sr.slot, sr.off+lo, int(hi-lo), sc.splitScan); err != nil {
		return err
	}
	if sc.useL {
		if err := sc.apL.Close(); err != nil {
			return err
		}
	}
	if sc.useR {
		if err := sc.apR.Close(); err != nil {
			return err
		}
	}
	return nil
}
