package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/alist"
	"repro/internal/alist/faultstore"
	"repro/internal/tree"
)

// The chaos matrix drives every scheme over every storage backend with
// deterministic fault plans injected beneath the retry layer. The contract
// under test is the failure-semantics guarantee: every build either produces
// the byte-identical tree (healable plans must; others may, when their fault
// never fires) or returns a prompt non-nil error — never a deadlock, a
// leaked goroutine, or a leftover temp directory.

// chaosPlan is one fault plan of the matrix.
type chaosPlan struct {
	name  string
	rules []faultstore.Rule
	// heals means the plan's faults are within the retry budget: the build
	// must succeed and match the reference tree.
	heals bool
	// panics means a failure must carry ErrWorkerPanic instead of
	// faultstore.ErrInjected.
	panics bool
}

func chaosPlans() []chaosPlan {
	return []chaosPlan{
		{name: "clean", heals: true},
		// Transient faults within DefaultRetry's 3-attempt budget: even if
		// both firings land on the same call, two retries heal it.
		{name: "scan-transient",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpScan, 25, 2, faultstore.Transient)},
			heals: true},
		{name: "write-transient",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpWrite, 6, 2, faultstore.Transient)},
			heals: true},
		{name: "short-write",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpWrite, 9, 1, faultstore.ShortWrite)},
			heals: true},
		{name: "latency",
			rules: []faultstore.Rule{{Op: faultstore.OpScan, Attr: faultstore.Any, Slot: faultstore.Any,
				After: 3, Count: 8, Mode: faultstore.Delay, Latency: 200 * time.Microsecond}},
			heals: true},
		// Permanent faults: the build must fail promptly with the injected
		// error once the operation count is reached.
		{name: "scan-fail",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpScan, 30, 0, faultstore.Fail)}},
		{name: "write-fail",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpWrite, 11, 0, faultstore.Fail)}},
		{name: "reserve-fail",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpReserve, 12, 0, faultstore.Fail)}},
		{name: "reset-fail",
			rules: []faultstore.Rule{faultstore.Match(faultstore.OpReset, 1, 0, faultstore.Fail)}},
		// Mid-scan fault: fires only when a store delivers multiple chunks;
		// single-chunk stores pass it clean (and must then match the tree).
		{name: "scan-midchunk-fail",
			rules: []faultstore.Rule{{Op: faultstore.OpScan, Attr: faultstore.Any, Slot: faultstore.Any,
				After: 35, Mode: faultstore.Fail, Chunk: 2}}},
		// A worker panic: the engines must contain it, tear everything down
		// and return ErrWorkerPanic.
		{name: "scan-panic",
			rules:  []faultstore.Rule{faultstore.Match(faultstore.OpScan, 18, 1, faultstore.Panic)},
			panics: true},
	}
}

// chaosStorage names the storage configurations of the matrix.
type chaosStorage struct {
	name string
	cfg  func(c *Config)
}

func chaosStorages() []chaosStorage {
	return []chaosStorage{
		{name: "mem", cfg: func(c *Config) { c.Storage = Memory }},
		{name: "disk", cfg: func(c *Config) { c.Storage = Disk }},
		{name: "disk-combined", cfg: func(c *Config) { c.Storage = Disk; c.CombinedFiles = true }},
	}
}

// waitGoroutines fails the test when the goroutine count does not settle
// back to at most want within the deadline.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			k := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s", n, want, buf[:k])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// checkNoTempDirs fails the test when dir still holds parclass temp
// directories after a build finished.
func checkNoTempDirs(t *testing.T, dir string) {
	t.Helper()
	leftovers, err := filepath.Glob(filepath.Join(dir, "parclass-alist-*"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(leftovers) > 0 {
		t.Fatalf("leaked temp dirs: %v", leftovers)
	}
}

func TestChaosMatrix(t *testing.T) {
	tbl := synthTable(t, 7, 9, 260, 11)

	// Reference tree from a fault-free serial build; every healed chaos
	// build must reproduce it exactly.
	ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 5})
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}

	algs := []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecPar}
	for _, alg := range algs {
		for _, stor := range chaosStorages() {
			for _, plan := range chaosPlans() {
				name := fmt.Sprintf("%v/%s/%s", alg, stor.name, plan.name)
				t.Run(name, func(t *testing.T) {
					// Builds create their temp dirs under TMPDIR, so a
					// fresh sandbox catches any leaked directory.
					tmp := t.TempDir()
					t.Setenv("TMPDIR", tmp)

					var fs *faultstore.Store
					cfg := Config{Algorithm: alg, Procs: 3, MaxDepth: 5}
					stor.cfg(&cfg)
					cfg.StoreWrap = func(st alist.Store) alist.Store {
						fs = faultstore.New(st, plan.rules...)
						return fs
					}

					base := runtime.NumGoroutine()
					type result struct {
						tr  *tree.Tree
						err error
					}
					done := make(chan result, 1)
					go func() {
						tr, _, err := Build(tbl, cfg)
						done <- result{tr, err}
					}()
					var res result
					select {
					case res = <-done:
					case <-time.After(30 * time.Second):
						t.Fatal("chaos build hung")
					}

					waitGoroutines(t, base)
					checkNoTempDirs(t, tmp)

					if plan.heals {
						if res.err != nil {
							t.Fatalf("healable plan failed: %v", res.err)
						}
					}
					if res.err == nil {
						if !tree.Equal(res.tr, ref) {
							t.Fatalf("tree differs from reference:\n%s", tree.Diff(res.tr, ref))
						}
						return
					}
					if res.tr != nil {
						t.Error("failed build must not return a tree")
					}
					if plan.panics {
						if !errors.Is(res.err, ErrWorkerPanic) {
							t.Fatalf("want ErrWorkerPanic, got %v", res.err)
						}
						return
					}
					if !errors.Is(res.err, faultstore.ErrInjected) {
						t.Fatalf("want the injected error, got %v", res.err)
					}
				})
			}
		}
	}
}

// TestStoreCloseErrorSurfaces checks the teardown defer: a store whose Close
// fails must turn an otherwise successful build into an error.
func TestStoreCloseErrorSurfaces(t *testing.T) {
	tbl := synthTable(t, 7, 9, 200, 11)
	cfg := Config{Algorithm: Serial, MaxDepth: 4}
	cfg.StoreWrap = func(st alist.Store) alist.Store {
		return faultstore.New(st, faultstore.Match(faultstore.OpClose, 0, 1, faultstore.Fail))
	}
	tr, _, err := Build(tbl, cfg)
	if !errors.Is(err, faultstore.ErrInjected) {
		t.Fatalf("want the injected close error, got %v", err)
	}
	if tr != nil {
		t.Error("build with failed close must not return a tree")
	}
}

// TestTempDirRemovedOnStoreCtorFailure pins the temp-dir leak fix: when the
// file-store constructor fails, the already-created parclass-alist-*
// directory must still be removed.
func TestTempDirRemovedOnStoreCtorFailure(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	tbl := synthTable(t, 7, 9, 50, 11)
	cfg := Config{Algorithm: Serial, Storage: Disk, MaxDepth: 2}
	// Force the build to fail immediately after store creation instead:
	// there is no hook inside the constructors, so the earliest injectable
	// failure is the first store operation — the directory must be gone
	// either way.
	cfg.StoreWrap = func(st alist.Store) alist.Store {
		return faultstore.New(st, faultstore.Match(faultstore.OpReserve, 0, 0, faultstore.Fail))
	}
	if _, _, err := Build(tbl, cfg); err == nil {
		t.Fatal("expected the injected failure")
	}
	checkNoTempDirs(t, tmp)
}
