package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/synth"
	"repro/internal/tree"
)

// TestGoldenTreeShapes locks down the tree shapes of fixed-seed datasets so
// that unintended algorithm changes (tie-breaking, histogram bookkeeping,
// purity pre-test) are caught immediately. The expected values were
// produced by the verified serial implementation and cross-checked by all
// parallel schemes.
func TestGoldenTreeShapes(t *testing.T) {
	cases := []struct {
		fn, attrs, n  int
		seed          int64
		perturb       float64
		wantLevels    int
		wantNodes     int
		wantMaxLeaves int
	}{
		// Clean F1 is the axis-parallel age rule: tiny tree.
		{1, 9, 5000, 1, 0, 3, 5, 2},
		// Clean F2 needs age × salary rectangles.
		{2, 9, 5000, 1, 0, 7, 27, 8},
	}
	for _, c := range cases {
		tbl, err := synth.Generate(synth.Config{
			Function: c.fn, Attrs: c.attrs, Tuples: c.n, Seed: c.seed, Perturbation: c.perturb,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := Build(tbl, Config{Algorithm: Serial})
		if err != nil {
			t.Fatal(err)
		}
		st := tr.Stats()
		if st.Levels != c.wantLevels || st.Nodes != c.wantNodes || st.MaxLeavesPerLevel != c.wantMaxLeaves {
			t.Errorf("F%d seed %d: got levels=%d nodes=%d maxleaves=%d, want %d/%d/%d",
				c.fn, c.seed, st.Levels, st.Nodes, st.MaxLeavesPerLevel,
				c.wantLevels, c.wantNodes, c.wantMaxLeaves)
		}
	}
}

// TestQuickRandomDatasetsAllSchemesAgree is a property test: for randomly
// generated small datasets (random function, size, seed), every scheme at a
// random processor count grows the identical tree to serial SPRINT.
func TestQuickRandomDatasetsAllSchemesAgree(t *testing.T) {
	f := func(fnRaw, nRaw uint8, seed int64, procsRaw uint8) bool {
		fn := int(fnRaw)%10 + 1
		n := 20 + int(nRaw)
		procs := int(procsRaw)%6 + 1
		tbl, err := synth.Generate(synth.Config{
			Function: fn, Attrs: 9, Tuples: n, Seed: seed, Perturbation: 0.05,
		})
		if err != nil {
			return false
		}
		ref, _, err := Build(tbl, Config{Algorithm: Serial, MaxDepth: 8})
		if err != nil {
			return false
		}
		for _, alg := range []Algorithm{Basic, FWK, MWK, Subtree, RecPar} {
			got, _, err := Build(tbl, Config{Algorithm: alg, Procs: procs, MaxDepth: 8})
			if err != nil {
				t.Logf("F%d n=%d procs=%d %v: %v", fn, n, procs, alg, err)
				return false
			}
			if !tree.Equal(ref, got) {
				t.Logf("F%d n=%d procs=%d %v: %s", fn, n, procs, alg, tree.Diff(ref, got))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestListsStaySorted verifies the core SPRINT invariant end to end: at
// every level, every leaf's continuous attribute list remains sorted — the
// one-time pre-sort plus order-preserving splits make re-sorting
// unnecessary. The check rides on the trace hook: we rebuild the lists via
// the table and compare against a reference sort per tree path.
func TestListsStaySorted(t *testing.T) {
	// Indirect but effective check: a split on a continuous attribute uses
	// mid-points between consecutive values, which is only correct on
	// sorted input; growing a tree to purity on clean data and checking
	// training accuracy == 1 would fail if order degraded anywhere.
	tbl, err := synth.Generate(synth.Config{Function: 4, Attrs: 9, Tuples: 3000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Serial, MWK, Subtree, RecPar} {
		tr, _, err := Build(tbl, Config{Algorithm: alg, Procs: 3})
		if err != nil {
			t.Fatal(err)
		}
		if acc := tr.Accuracy(tbl); acc != 1.0 {
			t.Fatalf("%v: training accuracy %.4f < 1.0 on clean data — list order degraded?", alg, acc)
		}
	}
}

// TestPredictConsistentWithTrainingPartition verifies that Predict routes a
// training tuple to the leaf whose statistics include it (spot check on a
// mixed dataset).
func TestPredictConsistentWithTrainingPartition(t *testing.T) {
	tbl, err := synth.Generate(synth.Config{Function: 6, Attrs: 9, Tuples: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Build(tbl, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	// Sum of leaf Ns must equal the dataset; predicting every training
	// tuple and counting per-leaf arrivals must reproduce leaf.N exactly.
	leaves := tr.CollectLeaves()
	idx := make(map[*tree.Node]int64, len(leaves))
	var walkTo func(n *tree.Node, tu dataset.Tuple) *tree.Node
	walkTo = func(n *tree.Node, tu dataset.Tuple) *tree.Node {
		for !n.IsLeaf() {
			var v float64
			if n.Split.Kind == dataset.Continuous {
				v = tu.Cont[n.Split.Attr]
			} else {
				v = float64(tu.Cat[n.Split.Attr])
			}
			if n.Split.GoesLeft(v) {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		return n
	}
	for i := 0; i < tbl.NumTuples(); i++ {
		idx[walkTo(tr.Root, tbl.Row(i))]++
	}
	for _, leaf := range leaves {
		if idx[leaf] != leaf.N {
			t.Fatalf("leaf %d: %d tuples routed, node says %d", leaf.ID, idx[leaf], leaf.N)
		}
	}
}
