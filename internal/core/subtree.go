package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
	"repro/internal/trace"
)

// slotPool hands out pairs of store slots to subtree groups and recycles
// them, growing the store on demand. At most 4 slots per concurrently
// active group are live (a read pair and a write pair), matching the
// paper's "up to P files per attribute" bound for SUBTREE.
type slotPool struct {
	mu   sync.Mutex
	e    *engine
	free [][2]int
	next int
}

func newSlotPool(e *engine, firstUnused int) *slotPool {
	return &slotPool{e: e, next: firstUnused}
}

func (p *slotPool) acquire() ([2]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		pair := p.free[n-1]
		p.free = p.free[:n-1]
		return pair, nil
	}
	pair := [2]int{p.next, p.next + 1}
	p.next += 2
	if err := p.e.store.EnsureSlots(p.next); err != nil {
		return [2]int{}, err
	}
	return pair, nil
}

func (p *slotPool) release(pair [2]int) error {
	if err := p.e.resetSlots(pair[0], pair[1]); err != nil {
		return err
	}
	p.mu.Lock()
	p.free = append(p.free, pair)
	p.mu.Unlock()
	return nil
}

// sharedPair is a reference-counted slot pair: when a group splits, both
// subgroups read their parent lists from the same pair, which returns to
// the pool only after the last reader finishes its level.
type sharedPair struct {
	pair [2]int
	refs atomic.Int32
	pool *slotPool
}

func newSharedPair(pool *slotPool, pair [2]int, refs int32) *sharedPair {
	sp := &sharedPair{pair: pair, pool: pool}
	sp.refs.Store(refs)
	return sp
}

func (sp *sharedPair) release() error {
	if sp.refs.Add(-1) == 0 {
		return sp.pool.release(sp.pair)
	}
	return nil
}

// stGroup is a processor group working on a disjoint part of the leaf
// frontier. workers[0] (the smallest id) is the group master.
type stGroup struct {
	workers   []int
	frontier  []*leafState
	readPair  *sharedPair // where the frontier's lists live
	writePair [2]int      // private slots the children are written into
	bar       *sched.Barrier
	eCtr      atomic.Int64
	sCtr      atomic.Int64
	doneCh    []chan struct{} // per-leaf W-done signals (MWK subroutine)
}

// newStGroup builds a group, preparing the per-leaf signal channels when
// the MWK subroutine is selected. The group barrier is registered with bs so
// a teardown can break every live group at once; groups created after an
// abort get an already-broken barrier.
func (e *engine) newStGroup(bs *sched.BarrierSet, workers []int, frontier []*leafState,
	readPair *sharedPair, writePair [2]int) *stGroup {
	g := &stGroup{
		workers: workers, frontier: frontier,
		readPair: readPair, writePair: writePair,
		bar: sched.NewBarrier(len(workers)),
	}
	bs.Add(g.bar)
	if e.cfg.SubtreeInner == MWK {
		g.doneCh = makeSignals(len(frontier))
	}
	return g
}

// runSubtree implements the SUBTREE task-parallel scheme (paper Fig. 7).
// All processors start in one group at the root. A group processes one tree
// level with the BASIC algorithm, then its master gathers any processors
// that have become idle (the FREE queue), and either dies (empty frontier,
// members go idle), continues as one group (single leaf or single
// processor), or splits leaves and processors into two new groups working
// on disjoint subtrees.
func (e *engine) runSubtree(root *leafState) error {
	frontier := e.rootFrontier(root)
	if len(frontier) == 0 {
		return nil
	}
	P := e.cfg.Procs
	var ferr sched.ErrOnce

	chans := make([]chan *stGroup, P)
	for i := range chans {
		chans[i] = make(chan *stGroup, 1)
	}
	fq := sched.NewFreeQueue(P, chans)
	// Registry of every live group barrier, so a panicking worker's teardown
	// can break them all: its own group's peers unblock from the level
	// protocol, and unrelated groups unwind at their next barrier.
	bs := &sched.BarrierSet{}
	// Setup wrote the root lists into slot 0; slots {0,1} form the root's
	// read pair and {2,3} are free.
	pool := newSlotPool(e, 4)
	pool.free = append(pool.free, [2]int{2, 3})

	writePair, err := pool.acquire()
	if err != nil {
		return err
	}
	g0 := e.newStGroup(bs, identity(P), frontier,
		newSharedPair(pool, [2]int{0, 1}, 1), writePair)

	var wg sync.WaitGroup
	for w := 0; w < P; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sched.Guard(&ferr, func() { bs.Abort(); fq.Abort() }, w, func() {
				ln := e.rec.Lane(w)
				sc := e.newScratch()
				// Time spent blocked on the assignment channel is FREE-queue
				// idleness, attributed to the last group's level (including
				// the final wait for the termination signal).
				lastLvl := 0
				for {
					t0 := time.Now()
					var g *stGroup
					select {
					case g = <-chans[w]:
					case <-fq.AbortCh():
						// A dead worker can never broadcast termination;
						// the abort channel is the only way out.
					}
					ln.Add(lastLvl, trace.PhaseIdle, time.Since(t0))
					if g == nil {
						return
					}
					lastLvl = g.frontier[0].node.Level
					e.subtreeMember(g, w, ln, lastLvl, sc, pool, fq, chans, bs, &ferr)
				}
			})
		}(w)
	}
	for _, w := range g0.workers {
		chans[w] <- g0
	}
	wg.Wait()
	return ferr.Get()
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// subtreeMember executes one group level as worker w. Non-masters return to
// their assignment channel ("go to sleep") after the level; the master
// performs the group transition.
func (e *engine) subtreeMember(g *stGroup, w int, ln *trace.Lane, lvl int,
	sc *scratch, pool *slotPool, fq *sched.FreeQueue[*stGroup], chans []chan *stGroup,
	bs *sched.BarrierSet, ferr *sched.ErrOnce) {

	isMaster := w == g.workers[0]

	var ok bool
	if e.cfg.SubtreeInner == MWK {
		ok = e.subtreeLevelMWK(g, isMaster, ln, lvl, sc, ferr)
	} else {
		ok = e.subtreeLevelBasic(g, isMaster, ln, lvl, sc, ferr)
	}
	if !ok {
		// Build aborted by a dead worker's teardown; the caller's loop
		// exits through the queue's abort channel.
		return
	}

	if !isMaster {
		return // sleep until reassigned (or terminated) via the channel
	}

	// Master: build the new frontier, release the parent lists, and decide
	// the group transition; this bookkeeping is accounted as S cleanup.
	t0 := time.Now()
	defer func() { ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), 0) }()
	var next []*leafState
	for li, l := range g.frontier {
		if !ferr.Failed() && l.didSplit {
			for _, c := range l.children {
				if !c.terminal {
					next = append(next, childLeafState(c, li, e.nattr))
				}
			}
		}
		releaseLeaf(l)
	}
	if err := g.readPair.release(); err != nil {
		ferr.Set(err)
	}
	if ferr.Failed() {
		next = nil
	}

	if len(next) == 0 {
		// Subtree finished: everyone (master included) joins the FREE
		// queue. The write pair holds nothing anyone will read.
		if err := pool.release(g.writePair); err != nil {
			ferr.Set(err)
		}
		fq.Put(g.workers...)
		return
	}

	// Grab all idle processors from the FREE queue.
	procs := append(append([]int(nil), g.workers...), fq.Drain()...)
	sort.Ints(procs) // the smallest id is the master
	childRead := newSharedPair(pool, g.writePair, 1)

	if len(next) == 1 || len(procs) == 1 {
		// One leaf (all processors attack it) or one processor (it keeps
		// the whole frontier): continue as a single group.
		wp, err := pool.acquire()
		if err != nil {
			ferr.Set(err)
			fq.Put(procs...)
			return
		}
		ng := e.newStGroup(bs, procs, next, childRead, wp)
		for _, id := range ng.workers {
			chans[id] <- ng
		}
		return
	}

	// Multiple leaves and processors: split both and recurse.
	childRead.refs.Store(2)
	l1, l2 := splitFrontier(next)
	half := (len(procs) + 1) / 2
	p1, p2 := procs[:half], procs[half:]
	wp1, err1 := pool.acquire()
	wp2, err2 := pool.acquire()
	if err1 != nil || err2 != nil {
		ferr.Set(err1)
		ferr.Set(err2)
		fq.Put(procs...)
		return
	}
	g1 := e.newStGroup(bs, p1, l1, childRead, wp1)
	g2 := e.newStGroup(bs, p2, l2, childRead, wp2)
	for _, id := range p1 {
		chans[id] <- g1
	}
	for _, id := range p2 {
		chans[id] <- g2
	}
}

// subtreeLevelBasic runs one group level with the BASIC policy: dynamic
// attribute units for E and S, the group master serially performing W.
// It reports false when the group barrier was broken by an abort.
func (e *engine) subtreeLevelBasic(g *stGroup, isMaster bool, ln *trace.Lane,
	lvl int, sc *scratch, ferr *sched.ErrOnce) bool {
	for !ferr.Failed() {
		a := int(g.eCtr.Add(1) - 1)
		if a >= e.nattr {
			break
		}
		t0 := time.Now()
		for _, l := range g.frontier {
			if err := e.evalLeafAttr(l, a, sc); err != nil {
				ferr.Set(err)
				break
			}
		}
		ln.AddN(lvl, trace.PhaseEval, time.Since(t0), int64(len(g.frontier)))
	}
	if !g.bar.TimedWait(ln, lvl) {
		return false
	}

	if isMaster && !ferr.Failed() {
		for _, l := range g.frontier {
			t0 := time.Now()
			if err := e.winnerAndProbe(l, sc); err != nil {
				ferr.Set(err)
				break
			}
			if l.didSplit {
				for side, c := range l.children {
					if c.terminal {
						continue
					}
					if err := e.registerChild(c, g.writePair[side]); err != nil {
						ferr.Set(err)
						break
					}
				}
			}
			ln.Add(lvl, trace.PhaseWinner, time.Since(t0))
		}
	}
	if !g.bar.TimedWait(ln, lvl) {
		return false
	}

	for !ferr.Failed() {
		a := int(g.sCtr.Add(1) - 1)
		if a >= e.nattr {
			break
		}
		t0 := time.Now()
		for _, l := range g.frontier {
			if err := e.splitLeafAttr(l, a, sc); err != nil {
				ferr.Set(err)
				break
			}
		}
		ln.AddN(lvl, trace.PhaseSplit, time.Since(t0), int64(len(g.frontier)))
	}
	return g.bar.TimedWait(ln, lvl)
}

// subtreeLevelMWK runs one group level with the MWK policy — the hybrid the
// paper notes in §3.4 ("we can also use FWK or MWK as the subroutine"):
// per-leaf dynamic E units with the last finisher performing W (removing
// the group master's serial W), opportunistic S, and a completion sweep.
// Children still go to the group's private write pair, so the file scheme
// is unchanged. It reports false when the group barrier was broken by an
// abort.
func (e *engine) subtreeLevelMWK(g *stGroup, isMaster bool, ln *trace.Lane,
	lvl int, sc *scratch, ferr *sched.ErrOnce) bool {
	K := e.cfg.WindowK
	registerMWK := func(l *leafState) error {
		if err := e.winnerAndProbe(l, sc); err != nil {
			return err
		}
		if !l.didSplit {
			return nil
		}
		for side, c := range l.children {
			if c.terminal {
				continue
			}
			if err := e.registerChild(c, g.writePair[side]); err != nil {
				return err
			}
		}
		return nil
	}
	splitGrab := func(l *leafState) {
		for !ferr.Failed() {
			a := l.sNext.Add(1) - 1
			if a >= int64(e.nattr) {
				return
			}
			t0 := time.Now()
			if err := e.splitLeafAttr(l, int(a), sc); err != nil {
				ferr.Set(err)
			}
			ln.Add(lvl, trace.PhaseSplit, time.Since(t0))
			if l.sDone.Add(1) == int64(e.nattr) {
				releaseLeaf(l)
			}
		}
	}
	waitSig := func(ch chan struct{}) {
		t0 := time.Now()
		e.waitSubtreeSignal(ch, ferr)
		ln.Add(lvl, trace.PhaseIdle, time.Since(t0))
	}
	for i, l := range g.frontier {
		if i >= K {
			waitSig(g.doneCh[i-K])
		}
		for !ferr.Failed() {
			a := l.eNext.Add(1) - 1
			if a >= int64(e.nattr) {
				break
			}
			t0 := time.Now()
			if err := e.evalLeafAttr(l, int(a), sc); err != nil {
				ferr.Set(err)
				break
			}
			ln.Add(lvl, trace.PhaseEval, time.Since(t0))
			if l.eDone.Add(1) == int64(e.nattr) {
				tw := time.Now()
				if err := registerMWK(l); err != nil {
					ferr.Set(err)
				}
				ln.Add(lvl, trace.PhaseWinner, time.Since(tw))
				close(g.doneCh[i])
			}
		}
		select {
		case <-g.doneCh[i]:
			splitGrab(l)
		default:
		}
	}
	for i, l := range g.frontier {
		waitSig(g.doneCh[i])
		splitGrab(l)
	}
	return g.bar.TimedWait(ln, lvl)
}

// waitSubtreeSignal waits for a leaf-done signal, giving up after a bounded
// poll when the build has failed (the signalling worker may itself have
// bailed out on the error).
func (e *engine) waitSubtreeSignal(ch chan struct{}, ferr *sched.ErrOnce) {
	for {
		select {
		case <-ch:
			return
		default:
		}
		if ferr.Failed() {
			return
		}
		select {
		case <-ch:
			return
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// splitFrontier partitions the frontier into two contiguous halves of
// roughly equal tuple weight, so both subgroups inherit comparable work.
func splitFrontier(leaves []*leafState) (a, b []*leafState) {
	var total int64
	for _, l := range leaves {
		total += l.n
	}
	var acc int64
	cut := 1 // both halves must be non-empty
	for i, l := range leaves {
		acc += l.n
		if acc >= total/2 {
			cut = i + 1
			break
		}
	}
	if cut >= len(leaves) {
		cut = len(leaves) - 1
	}
	if cut < 1 {
		cut = 1
	}
	return leaves[:cut], leaves[cut:]
}
