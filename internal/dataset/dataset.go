// Package dataset provides the training-data layer used by the classifier:
// attribute schemas (continuous and categorical attributes), a columnar
// in-memory table of training tuples, CSV import/export, and train/test
// splitting utilities.
//
// Terminology follows the paper: a tuple is one training example; each tuple
// has d attributes plus a class label. Continuous attributes come from an
// ordered (numeric) domain; categorical attributes from an unordered, finite
// domain encoded as small integer codes with a string name per code.
package dataset

import (
	"fmt"
)

// Kind describes the domain of an attribute.
type Kind int

const (
	// Continuous attributes have an ordered numeric domain.
	Continuous Kind = iota
	// Categorical attributes have an unordered finite domain.
	Categorical
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Continuous:
		return "continuous"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes a single column of the training set.
type Attribute struct {
	// Name is the attribute's identifier (unique within a schema).
	Name string
	// Kind says whether the attribute is continuous or categorical.
	Kind Kind
	// Categories holds the value names of a categorical attribute; the
	// code of a value is its index in this slice. Nil for continuous
	// attributes.
	Categories []string
}

// Cardinality returns the number of distinct categories of a categorical
// attribute, and 0 for a continuous one.
func (a *Attribute) Cardinality() int {
	if a.Kind != Categorical {
		return 0
	}
	return len(a.Categories)
}

// Schema describes the attributes and class labels of a training set.
type Schema struct {
	// Attrs lists the non-class attributes in column order.
	Attrs []Attribute
	// Classes lists the class label names; a class code is its index.
	Classes []string
}

// NumAttrs returns the number of non-class attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of distinct class labels.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// AttrIndex returns the index of the attribute with the given name, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i := range s.Attrs {
		if s.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// ClassIndex returns the code of the class with the given name, or -1.
func (s *Schema) ClassIndex(name string) int {
	for i, c := range s.Classes {
		if c == name {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency of the schema.
func (s *Schema) Validate() error {
	if len(s.Classes) < 2 {
		return fmt.Errorf("dataset: schema needs at least 2 classes, got %d", len(s.Classes))
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("dataset: schema needs at least 1 attribute")
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case Continuous:
			if len(a.Categories) != 0 {
				return fmt.Errorf("dataset: continuous attribute %q has categories", a.Name)
			}
		case Categorical:
			if len(a.Categories) < 2 {
				return fmt.Errorf("dataset: categorical attribute %q needs >=2 categories, got %d",
					a.Name, len(a.Categories))
			}
		default:
			return fmt.Errorf("dataset: attribute %q has invalid kind %d", a.Name, int(a.Kind))
		}
	}
	return nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{
		Attrs:   make([]Attribute, len(s.Attrs)),
		Classes: append([]string(nil), s.Classes...),
	}
	for i := range s.Attrs {
		out.Attrs[i] = s.Attrs[i]
		out.Attrs[i].Categories = append([]string(nil), s.Attrs[i].Categories...)
	}
	return out
}

// Table is a columnar in-memory training set. Continuous columns store
// float64 values; categorical columns store int32 category codes; the class
// column stores int32 class codes. Columns are indexed by attribute index in
// the schema.
type Table struct {
	schema *Schema
	cont   [][]float64 // cont[a] non-nil iff attribute a is continuous
	cat    [][]int32   // cat[a] non-nil iff attribute a is categorical
	class  []int32
}

// NewTable creates an empty table for the given schema. The schema is not
// copied; it must not be mutated afterwards.
func NewTable(schema *Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		schema: schema,
		cont:   make([][]float64, len(schema.Attrs)),
		cat:    make([][]int32, len(schema.Attrs)),
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumTuples returns the number of tuples in the table.
func (t *Table) NumTuples() int { return len(t.class) }

// ContValue returns the value of continuous attribute a for tuple i.
func (t *Table) ContValue(a, i int) float64 { return t.cont[a][i] }

// CatValue returns the category code of categorical attribute a for tuple i.
func (t *Table) CatValue(a, i int) int32 { return t.cat[a][i] }

// Class returns the class code of tuple i.
func (t *Table) Class(i int) int32 { return t.class[i] }

// ContColumn returns the backing slice of a continuous column (read-only by
// convention). It returns nil for categorical attributes.
func (t *Table) ContColumn(a int) []float64 { return t.cont[a] }

// CatColumn returns the backing slice of a categorical column (read-only by
// convention). It returns nil for continuous attributes.
func (t *Table) CatColumn(a int) []int32 { return t.cat[a] }

// ClassColumn returns the backing slice of the class column (read-only by
// convention).
func (t *Table) ClassColumn() []int32 { return t.class }

// Grow pre-allocates capacity for n additional tuples.
func (t *Table) Grow(n int) {
	for a := range t.schema.Attrs {
		switch t.schema.Attrs[a].Kind {
		case Continuous:
			if cap(t.cont[a])-len(t.cont[a]) < n {
				col := make([]float64, len(t.cont[a]), len(t.cont[a])+n)
				copy(col, t.cont[a])
				t.cont[a] = col
			}
		case Categorical:
			if cap(t.cat[a])-len(t.cat[a]) < n {
				col := make([]int32, len(t.cat[a]), len(t.cat[a])+n)
				copy(col, t.cat[a])
				t.cat[a] = col
			}
		}
	}
	if cap(t.class)-len(t.class) < n {
		cls := make([]int32, len(t.class), len(t.class)+n)
		copy(cls, t.class)
		t.class = cls
	}
}

// Tuple is a decoded row: continuous attributes hold float64, categorical
// attributes hold int32 codes, in schema order.
type Tuple struct {
	Cont  []float64 // indexed by attribute index; meaningful for continuous
	Cat   []int32   // indexed by attribute index; meaningful for categorical
	Class int32
}

// Append adds one tuple to the table. Values are read from tu according to
// the schema; out-of-range codes are rejected.
func (t *Table) Append(tu Tuple) error {
	for a := range t.schema.Attrs {
		switch t.schema.Attrs[a].Kind {
		case Continuous:
			t.cont[a] = append(t.cont[a], tu.Cont[a])
		case Categorical:
			code := tu.Cat[a]
			if code < 0 || int(code) >= len(t.schema.Attrs[a].Categories) {
				return fmt.Errorf("dataset: attribute %q: category code %d out of range [0,%d)",
					t.schema.Attrs[a].Name, code, len(t.schema.Attrs[a].Categories))
			}
			t.cat[a] = append(t.cat[a], code)
		}
	}
	if tu.Class < 0 || int(tu.Class) >= len(t.schema.Classes) {
		return fmt.Errorf("dataset: class code %d out of range [0,%d)", tu.Class, len(t.schema.Classes))
	}
	t.class = append(t.class, tu.Class)
	return nil
}

// AppendFast adds one tuple without validation. It is used by bulk loaders
// (the synthetic generator) that guarantee well-formed codes.
func (t *Table) AppendFast(tu Tuple) {
	for a := range t.schema.Attrs {
		if t.schema.Attrs[a].Kind == Continuous {
			t.cont[a] = append(t.cont[a], tu.Cont[a])
		} else {
			t.cat[a] = append(t.cat[a], tu.Cat[a])
		}
	}
	t.class = append(t.class, tu.Class)
}

// Row decodes tuple i into a Tuple (allocating fresh slices).
func (t *Table) Row(i int) Tuple {
	tu := Tuple{
		Cont:  make([]float64, len(t.schema.Attrs)),
		Cat:   make([]int32, len(t.schema.Attrs)),
		Class: t.class[i],
	}
	for a := range t.schema.Attrs {
		if t.schema.Attrs[a].Kind == Continuous {
			tu.Cont[a] = t.cont[a][i]
		} else {
			tu.Cat[a] = t.cat[a][i]
		}
	}
	return tu
}

// ClassHistogram returns the count of tuples per class code.
func (t *Table) ClassHistogram() []int {
	h := make([]int, len(t.schema.Classes))
	for _, c := range t.class {
		h[c]++
	}
	return h
}

// Subset returns a new table containing the tuples at the given indices, in
// order. The schema is shared.
func (t *Table) Subset(idx []int) *Table {
	out := &Table{
		schema: t.schema,
		cont:   make([][]float64, len(t.schema.Attrs)),
		cat:    make([][]int32, len(t.schema.Attrs)),
		class:  make([]int32, 0, len(idx)),
	}
	for a := range t.schema.Attrs {
		if t.schema.Attrs[a].Kind == Continuous {
			out.cont[a] = make([]float64, 0, len(idx))
		} else {
			out.cat[a] = make([]int32, 0, len(idx))
		}
	}
	for _, i := range idx {
		for a := range t.schema.Attrs {
			if t.schema.Attrs[a].Kind == Continuous {
				out.cont[a] = append(out.cont[a], t.cont[a][i])
			} else {
				out.cat[a] = append(out.cat[a], t.cat[a][i])
			}
		}
		out.class = append(out.class, t.class[i])
	}
	return out
}

// SplitHoldout partitions the table into a training table with the first
// n-k tuples and a test table with the last k tuples, where k = round(n *
// testFrac). It does not shuffle; callers wanting a random split should
// shuffle indices and use Subset.
func (t *Table) SplitHoldout(testFrac float64) (train, test *Table) {
	n := t.NumTuples()
	k := int(float64(n)*testFrac + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	trainIdx := make([]int, 0, n-k)
	testIdx := make([]int, 0, k)
	for i := 0; i < n-k; i++ {
		trainIdx = append(trainIdx, i)
	}
	for i := n - k; i < n; i++ {
		testIdx = append(testIdx, i)
	}
	return t.Subset(trainIdx), t.Subset(testIdx)
}

// ApproxBytes estimates the in-memory size of the table's columns in bytes,
// the analogue of the paper's "DB size" column in Table 1.
func (t *Table) ApproxBytes() int64 {
	var b int64
	for a := range t.schema.Attrs {
		if t.schema.Attrs[a].Kind == Continuous {
			b += int64(len(t.cont[a])) * 8
		} else {
			b += int64(len(t.cat[a])) * 4
		}
	}
	b += int64(len(t.class)) * 4
	return b
}
