package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func validSchema() *Schema {
	return &Schema{
		Attrs: []Attribute{
			{Name: "age", Kind: Continuous},
			{Name: "color", Kind: Categorical, Categories: []string{"red", "green"}},
		},
		Classes: []string{"yes", "no"},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := validSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Schema{
		{Attrs: []Attribute{{Name: "a", Kind: Continuous}}, Classes: []string{"x"}},
		{Attrs: nil, Classes: []string{"x", "y"}},
		{Attrs: []Attribute{{Name: "", Kind: Continuous}}, Classes: []string{"x", "y"}},
		{Attrs: []Attribute{{Name: "a", Kind: Continuous}, {Name: "a", Kind: Continuous}},
			Classes: []string{"x", "y"}},
		{Attrs: []Attribute{{Name: "a", Kind: Continuous, Categories: []string{"z"}}},
			Classes: []string{"x", "y"}},
		{Attrs: []Attribute{{Name: "a", Kind: Categorical, Categories: []string{"z"}}},
			Classes: []string{"x", "y"}},
		{Attrs: []Attribute{{Name: "a", Kind: Kind(9)}}, Classes: []string{"x", "y"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d should be invalid", i)
		}
	}
}

func TestSchemaLookupsAndClone(t *testing.T) {
	s := validSchema()
	if s.AttrIndex("color") != 1 || s.AttrIndex("nope") != -1 {
		t.Fatal("AttrIndex broken")
	}
	if s.ClassIndex("no") != 1 || s.ClassIndex("maybe") != -1 {
		t.Fatal("ClassIndex broken")
	}
	if s.Attrs[1].Cardinality() != 2 || s.Attrs[0].Cardinality() != 0 {
		t.Fatal("Cardinality broken")
	}
	c := s.Clone()
	c.Attrs[1].Categories[0] = "mutated"
	if s.Attrs[1].Categories[0] != "red" {
		t.Fatal("Clone is shallow")
	}
	if Kind(0).String() != "continuous" || Kind(1).String() != "categorical" ||
		!strings.Contains(Kind(9).String(), "9") {
		t.Fatal("Kind.String broken")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tbl, err := NewTable(validSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(Tuple{Cont: []float64{30, 0}, Cat: []int32{0, 1}, Class: 0}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(Tuple{Cont: []float64{40, 0}, Cat: []int32{0, 0}, Class: 1}); err != nil {
		t.Fatal(err)
	}
	if tbl.NumTuples() != 2 {
		t.Fatal("NumTuples")
	}
	if tbl.ContValue(0, 1) != 40 || tbl.CatValue(1, 0) != 1 || tbl.Class(1) != 1 {
		t.Fatal("accessors broken")
	}
	// Invalid category / class codes rejected.
	if err := tbl.Append(Tuple{Cont: []float64{1, 0}, Cat: []int32{0, 5}, Class: 0}); err == nil {
		t.Fatal("bad category accepted")
	}
	if err := tbl.Append(Tuple{Cont: []float64{1, 0}, Cat: []int32{0, 0}, Class: 7}); err == nil {
		t.Fatal("bad class accepted")
	}
	h := tbl.ClassHistogram()
	if h[0] != 1 || h[1] != 1 {
		t.Fatalf("histogram %v", h)
	}
	row := tbl.Row(0)
	if row.Cont[0] != 30 || row.Cat[1] != 1 || row.Class != 0 {
		t.Fatalf("Row = %+v", row)
	}
	if tbl.ApproxBytes() <= 0 {
		t.Fatal("ApproxBytes")
	}
}

func TestSubsetAndHoldout(t *testing.T) {
	tbl, _ := NewTable(validSchema())
	for i := 0; i < 10; i++ {
		tbl.AppendFast(Tuple{Cont: []float64{float64(i), 0}, Cat: []int32{0, int32(i % 2)}, Class: int32(i % 2)})
	}
	sub := tbl.Subset([]int{9, 0, 5})
	if sub.NumTuples() != 3 || sub.ContValue(0, 0) != 9 || sub.ContValue(0, 2) != 5 {
		t.Fatal("Subset broken")
	}
	train, test := tbl.SplitHoldout(0.3)
	if train.NumTuples() != 7 || test.NumTuples() != 3 {
		t.Fatalf("holdout %d/%d", train.NumTuples(), test.NumTuples())
	}
	if test.ContValue(0, 0) != 7 {
		t.Fatal("holdout must take the last rows")
	}
	// Degenerate fractions clamp.
	a, b := tbl.SplitHoldout(0)
	if a.NumTuples() != 10 || b.NumTuples() != 0 {
		t.Fatal("zero-fraction holdout")
	}
	a, b = tbl.SplitHoldout(1)
	if a.NumTuples() != 0 || b.NumTuples() != 10 {
		t.Fatal("full-fraction holdout")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl, _ := NewTable(validSchema())
	tbl.AppendFast(Tuple{Cont: []float64{30.25, 0}, Cat: []int32{0, 1}, Class: 0})
	tbl.AppendFast(Tuple{Cont: []float64{-4, 0}, Cat: []int32{0, 0}, Class: 1})

	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTuples() != 2 || back.ContValue(0, 0) != 30.25 ||
		back.CatValue(1, 0) != 1 || back.Class(1) != 1 {
		t.Fatal("round trip lost data")
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := validSchema()
	cases := []string{
		"",                               // no header
		"age,wrong,class\n1,red,yes\n",   // wrong column name
		"age,color\n1,red\n",             // missing class column
		"age,color,class\nx,red,yes\n",   // bad float
		"age,color,class\n1,blue,yes\n",  // unknown category
		"age,color,class\n1,red,maybe\n", // unknown class
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), s); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestInferCSV(t *testing.T) {
	in := "age,color,class\n30,red,yes\n40,green,no\n50,red,yes\n"
	tbl, err := InferCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema()
	if s.Attrs[0].Kind != Continuous {
		t.Fatal("age should be continuous")
	}
	if s.Attrs[1].Kind != Categorical || len(s.Attrs[1].Categories) != 2 {
		t.Fatal("color should be categorical with 2 categories")
	}
	if len(s.Classes) != 2 || tbl.NumTuples() != 3 {
		t.Fatal("classes/tuples wrong")
	}
	if _, err := InferCSV(strings.NewReader("a,class\n")); err == nil {
		t.Fatal("header-only CSV should fail")
	}
}

// Property: Subset(identity permutation) preserves every tuple and class.
func TestSubsetIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		tbl, _ := NewTable(validSchema())
		for i, v := range vals {
			tbl.AppendFast(Tuple{Cont: []float64{v, 0}, Cat: []int32{0, int32(i % 2)}, Class: int32(i % 2)})
		}
		idx := make([]int, tbl.NumTuples())
		for i := range idx {
			idx[i] = i
		}
		sub := tbl.Subset(idx)
		if sub.NumTuples() != tbl.NumTuples() {
			return false
		}
		for i := 0; i < tbl.NumTuples(); i++ {
			if sub.ContValue(0, i) != tbl.ContValue(0, i) ||
				sub.CatValue(1, i) != tbl.CatValue(1, i) ||
				sub.Class(i) != tbl.Class(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrow(t *testing.T) {
	tbl, _ := NewTable(validSchema())
	tbl.AppendFast(Tuple{Cont: []float64{1, 0}, Cat: []int32{0, 0}, Class: 0})
	tbl.Grow(1000)
	if tbl.NumTuples() != 1 {
		t.Fatal("Grow must not change length")
	}
	if tbl.ContValue(0, 0) != 1 {
		t.Fatal("Grow lost data")
	}
}

// TestCSVWriterMatchesWriteCSV checks the row-streaming writer produces
// byte-identical output to the table-level WriteCSV.
func TestCSVWriterMatchesWriteCSV(t *testing.T) {
	schema := validSchema()
	tbl, err := NewTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	tuples := []Tuple{
		{Cont: []float64{1.5, 0}, Cat: []int32{0, 1}, Class: 0},
		{Cont: []float64{-2.25, 0}, Cat: []int32{0, 0}, Class: 1},
		{Cont: []float64{1e9, 0}, Cat: []int32{0, 1}, Class: 0},
	}
	for _, tu := range tuples {
		tbl.AppendFast(tu)
	}
	var whole strings.Builder
	if err := tbl.WriteCSV(&whole); err != nil {
		t.Fatal(err)
	}
	var rows strings.Builder
	cw, err := NewCSVWriter(&rows, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		if err := cw.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if whole.String() != rows.String() {
		t.Fatalf("outputs differ:\nWriteCSV:\n%s\nCSVWriter:\n%s", whole.String(), rows.String())
	}
}
