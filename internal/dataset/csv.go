package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the table to w as CSV with a header row. Continuous values
// are formatted with strconv.FormatFloat('g'); categorical values and the
// class use their string names. The class column is written last, named
// "class".
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.schema.Attrs)+1)
	for i := range t.schema.Attrs {
		header = append(header, t.schema.Attrs[i].Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < t.NumTuples(); i++ {
		for a := range t.schema.Attrs {
			if t.schema.Attrs[a].Kind == Continuous {
				rec[a] = strconv.FormatFloat(t.cont[a][i], 'g', -1, 64)
			} else {
				rec[a] = t.schema.Attrs[a].Categories[t.cat[a][i]]
			}
		}
		rec[len(rec)-1] = t.schema.Classes[t.class[i]]
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVWriter writes tuples row by row in WriteCSV's format, for producers
// (like a streaming generator) that never hold a full table in memory.
type CSVWriter struct {
	cw     *csv.Writer
	schema *Schema
	rec    []string
}

// NewCSVWriter writes the header row for the schema and returns a writer
// ready for tuples.
func NewCSVWriter(w io.Writer, schema *Schema) (*CSVWriter, error) {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(schema.Attrs)+1)
	for i := range schema.Attrs {
		header = append(header, schema.Attrs[i].Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &CSVWriter{cw: cw, schema: schema, rec: make([]string, len(header))}, nil
}

// Write appends one tuple row.
func (w *CSVWriter) Write(tu Tuple) error {
	for a := range w.schema.Attrs {
		if w.schema.Attrs[a].Kind == Continuous {
			w.rec[a] = strconv.FormatFloat(tu.Cont[a], 'g', -1, 64)
		} else {
			w.rec[a] = w.schema.Attrs[a].Categories[tu.Cat[a]]
		}
	}
	w.rec[len(w.rec)-1] = w.schema.Classes[tu.Class]
	return w.cw.Write(w.rec)
}

// Flush drains the buffered rows and reports any deferred write error.
// Call it once after the last Write.
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// WriteCSVFile writes the table to the named file.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSV reads a CSV training set produced by WriteCSV (or compatible) into
// a table conforming to the given schema. The header row must match the
// schema's attribute names followed by "class". Unknown category or class
// names are an error.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != len(schema.Attrs)+1 {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema expects %d",
			len(header), len(schema.Attrs)+1)
	}
	for a := range schema.Attrs {
		if header[a] != schema.Attrs[a].Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q",
				a, header[a], schema.Attrs[a].Name)
		}
	}
	if header[len(header)-1] != "class" {
		return nil, fmt.Errorf("dataset: last CSV column is %q, expected \"class\"", header[len(header)-1])
	}

	// Pre-compute name->code maps for categorical columns and the class.
	catCodes := make([]map[string]int32, len(schema.Attrs))
	for a := range schema.Attrs {
		if schema.Attrs[a].Kind != Categorical {
			continue
		}
		m := make(map[string]int32, len(schema.Attrs[a].Categories))
		for c, name := range schema.Attrs[a].Categories {
			m[name] = int32(c)
		}
		catCodes[a] = m
	}
	classCodes := make(map[string]int32, len(schema.Classes))
	for c, name := range schema.Classes {
		classCodes[name] = int32(c)
	}

	tbl, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	tu := Tuple{Cont: make([]float64, len(schema.Attrs)), Cat: make([]int32, len(schema.Attrs))}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line+1, err)
		}
		line++
		for a := range schema.Attrs {
			if schema.Attrs[a].Kind == Continuous {
				v, err := strconv.ParseFloat(rec[a], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d, attribute %q: %w",
						line, schema.Attrs[a].Name, err)
				}
				tu.Cont[a] = v
			} else {
				code, ok := catCodes[a][rec[a]]
				if !ok {
					return nil, fmt.Errorf("dataset: line %d, attribute %q: unknown category %q",
						line, schema.Attrs[a].Name, rec[a])
				}
				tu.Cat[a] = code
			}
		}
		cls, ok := classCodes[rec[len(rec)-1]]
		if !ok {
			return nil, fmt.Errorf("dataset: line %d: unknown class %q", line, rec[len(rec)-1])
		}
		tu.Class = cls
		tbl.AppendFast(tu)
	}
	return tbl, nil
}

// ReadCSVFile reads the named CSV file with ReadCSV.
func ReadCSVFile(path string, schema *Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, schema)
}

// InferCSV reads a CSV file with header and infers a schema: columns whose
// every value parses as a float become continuous; all others categorical
// (categories in first-seen order). The last column is the class. The whole
// input is buffered in string form during inference.
func InferCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dataset: CSV needs a header row and at least one data row")
	}
	header := rows[0]
	data := rows[1:]
	nattr := len(header) - 1
	if nattr < 1 {
		return nil, fmt.Errorf("dataset: CSV needs at least one attribute column plus a class column")
	}

	schema := &Schema{Attrs: make([]Attribute, nattr)}
	for a := 0; a < nattr; a++ {
		numeric := true
		for _, row := range data {
			if _, err := strconv.ParseFloat(row[a], 64); err != nil {
				numeric = false
				break
			}
		}
		attr := Attribute{Name: header[a]}
		if numeric {
			attr.Kind = Continuous
		} else {
			attr.Kind = Categorical
			seen := make(map[string]bool)
			for _, row := range data {
				if !seen[row[a]] {
					seen[row[a]] = true
					attr.Categories = append(attr.Categories, row[a])
				}
			}
		}
		schema.Attrs[a] = attr
	}
	seen := make(map[string]bool)
	for _, row := range data {
		v := row[len(row)-1]
		if !seen[v] {
			seen[v] = true
			schema.Classes = append(schema.Classes, v)
		}
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}

	tbl, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	catCodes := make([]map[string]int32, nattr)
	for a := 0; a < nattr; a++ {
		if schema.Attrs[a].Kind != Categorical {
			continue
		}
		m := make(map[string]int32)
		for c, name := range schema.Attrs[a].Categories {
			m[name] = int32(c)
		}
		catCodes[a] = m
	}
	classCodes := make(map[string]int32)
	for c, name := range schema.Classes {
		classCodes[name] = int32(c)
	}
	tu := Tuple{Cont: make([]float64, nattr), Cat: make([]int32, nattr)}
	for _, row := range data {
		for a := 0; a < nattr; a++ {
			if schema.Attrs[a].Kind == Continuous {
				tu.Cont[a], _ = strconv.ParseFloat(row[a], 64)
			} else {
				tu.Cat[a] = catCodes[a][row[a]]
			}
		}
		tu.Class = classCodes[row[len(row)-1]]
		tbl.AppendFast(tu)
	}
	return tbl, nil
}

// InferCSVFile reads the named file with InferCSV.
func InferCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return InferCSV(f)
}
