package probe

import (
	"math/rand"
	"testing"
)

func benchLeaf(b *testing.B, kind Kind, n int) {
	b.Helper()
	fac, err := NewFactory(kind, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sides := make([]bool, n)
	var nl, nr int64
	for i := range sides {
		sides[i] = rng.Intn(2) == 0
		if sides[i] {
			nl++
		} else {
			nr++
		}
	}
	order := rng.Perm(n) // W scans in value order, not tid order
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := fac.ForLeaf(nl, nr)
		for _, t := range order {
			p.Set(uint32(t), sides[t])
		}
		p.Seal()
		var sink uint32
		for _, t := range order {
			if p.Left(uint32(t)) {
				sink += p.Remap(uint32(t))
			}
		}
		_ = sink
		p.Release()
	}
	b.SetBytes(int64(n) * 2) // one Set + one Left/Remap per tid
}

// BenchmarkProbe compares the W+S cost of the three probe designs of
// §3.2.1 at a 100K-tuple leaf.
func BenchmarkProbe(b *testing.B) {
	for _, k := range []Kind{GlobalBit, LeafHash, LeafRelabel} {
		b.Run(k.String(), func(b *testing.B) { benchLeaf(b, k, 100000) })
	}
}
