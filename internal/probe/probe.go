// Package probe implements the tid→child probe structures used by the W and
// S steps: while the winning attribute's list is scanned (W), each record's
// destination child is recorded in the probe; while the losing attributes'
// lists are split (S), the probe is consulted per record.
//
// The paper (§3.2.1) discusses three designs, all implemented here:
//
//  1. a global bit probe with one bit per training tuple (the choice used by
//     BASIC "for simplicity"),
//  2. a per-leaf hash table holding only the smaller child's tids,
//  3. a per-leaf bit probe over tids relabeled from zero, which requires
//     rewriting tids as lists are split.
//
// All designs present the same per-leaf interface; the relabeling design
// additionally remaps tids, which the split step applies when writing child
// records.
package probe

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Kind selects a probe design.
type Kind int

const (
	// GlobalBit is one shared bit array indexed by tid (paper's default).
	GlobalBit Kind = iota
	// LeafHash is a per-leaf hash set of the smaller child's tids.
	LeafHash
	// LeafRelabel is a per-leaf bit array over zero-based relabeled tids;
	// child records receive fresh dense tids on every split.
	LeafRelabel
)

// String names the probe kind.
func (k Kind) String() string {
	switch k {
	case GlobalBit:
		return "global-bit"
	case LeafHash:
		return "leaf-hash"
	case LeafRelabel:
		return "leaf-relabel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Leaf is the probe for a single leaf being split. Set is called only by the
// single W executor of that leaf; after Seal, Left and Remap may be called
// concurrently by many S workers.
type Leaf interface {
	// Set records the destination child of tid.
	Set(tid uint32, left bool)
	// Seal finalizes the probe after the W scan; it must be called before
	// any Left/Remap call.
	Seal()
	// Left reports whether tid goes to the left child.
	Left(tid uint32) bool
	// Remap returns the tid a child record should carry. It is the
	// identity except for the relabeling design, which assigns each child
	// dense tids 0..n_child-1 in parent-tid order.
	Remap(tid uint32) uint32
	// Release frees per-leaf resources.
	Release()
}

// RawBits is implemented by the bit-array probe designs. It exposes the
// underlying word array so hot loops (the run-length split kernel) can test
// membership without an interface call per record. shared reports whether
// the words are shared with other leaves' concurrent W writers, in which
// case readers must use atomic loads (the global design); per-leaf arrays
// (the relabel design) are sealed before S readers start and may be read
// plainly.
type RawBits interface {
	RawBits() (words []uint64, shared bool)
}

// Factory creates per-leaf probes.
type Factory interface {
	// ForLeaf returns the probe for a leaf whose winning split sends
	// nLeft and nRight records to its children.
	ForLeaf(nLeft, nRight int64) Leaf
	// Kind reports the design.
	Kind() Kind
	// Relabels reports whether this design rewrites tids (so list tids
	// stay dense per leaf across levels).
	Relabels() bool
}

// NewFactory builds a factory of the given kind. totalTuples is the training
// set size (needed by the global design).
func NewFactory(kind Kind, totalTuples int) (Factory, error) {
	switch kind {
	case GlobalBit:
		return &globalFactory{words: make([]uint64, (totalTuples+63)/64)}, nil
	case LeafHash:
		return hashFactory{}, nil
	case LeafRelabel:
		return relabelFactory{}, nil
	default:
		return nil, fmt.Errorf("probe: unknown kind %d", int(kind))
	}
}

// globalFactory shares one bit array among all leaves; leaves at a level
// have disjoint tid sets, so concurrent W scans touch disjoint bits (atomic
// word updates keep neighbors safe).
type globalFactory struct {
	words []uint64
}

func (f *globalFactory) Kind() Kind     { return GlobalBit }
func (f *globalFactory) Relabels() bool { return false }

func (f *globalFactory) ForLeaf(nLeft, nRight int64) Leaf { return (*globalLeaf)(f) }

type globalLeaf globalFactory

func (g *globalLeaf) Set(tid uint32, left bool) {
	w := &g.words[tid/64]
	mask := uint64(1) << (tid % 64)
	if left {
		atomic.OrUint64(w, mask)
	} else {
		atomic.AndUint64(w, ^mask)
	}
}

func (g *globalLeaf) Seal() {}

func (g *globalLeaf) Left(tid uint32) bool {
	return atomic.LoadUint64(&g.words[tid/64])&(1<<(tid%64)) != 0
}

func (g *globalLeaf) Remap(tid uint32) uint32 { return tid }
func (g *globalLeaf) Release()                {}

// RawBits implements RawBits; the array is shared across leaves, so readers
// must load words atomically.
func (g *globalLeaf) RawBits() ([]uint64, bool) { return g.words, true }

// WBatch write-combines GlobalBit Set calls from one W executor: bits are
// accumulated in worker-local shadow words and flushed with one atomic Or
// and one atomic AndNot per touched word — two atomic RMWs per 64 tids
// instead of one per record. Correctness with concurrent leaves follows
// from tid-disjointness: a level's leaves own disjoint tid sets, so the
// masks flushed by different executors never overlap within a word and the
// word-level atomics compose. The record-data-parallel scheme's per-worker
// batches over one leaf are safe for the same reason (disjoint chunk tids).
type WBatch struct {
	or, clr []uint64
	touched []uint32
	leaf    *globalLeaf
}

// NewWBatch sizes a batch for a training set of totalTuples tuples.
func NewWBatch(totalTuples int) *WBatch {
	words := (totalTuples + 63) / 64
	return &WBatch{
		or:      make([]uint64, words),
		clr:     make([]uint64, words),
		touched: make([]uint32, 0, words),
	}
}

// Begin arms the batch for one leaf's W scan. It reports false — and leaves
// the batch disarmed — for probe designs other than the global bit array;
// callers then fall back to per-record Leaf.Set.
func (b *WBatch) Begin(l Leaf) bool {
	g, ok := l.(*globalLeaf)
	if !ok {
		return false
	}
	b.leaf = g
	return true
}

// Set records tid's destination in the local shadow words.
func (b *WBatch) Set(tid uint32, left bool) {
	w := tid >> 6
	if b.or[w]|b.clr[w] == 0 {
		b.touched = append(b.touched, w)
	}
	if left {
		b.or[w] |= 1 << (tid & 63)
	} else {
		b.clr[w] |= 1 << (tid & 63)
	}
}

// Flush publishes the batched bits into the shared array and disarms the
// batch. It must run before the leaf's Seal.
func (b *WBatch) Flush() {
	g := b.leaf
	if g == nil {
		return
	}
	for _, w := range b.touched {
		if m := b.or[w]; m != 0 {
			atomic.OrUint64(&g.words[w], m)
			b.or[w] = 0
		}
		if m := b.clr[w]; m != 0 {
			atomic.AndUint64(&g.words[w], ^m)
			b.clr[w] = 0
		}
	}
	b.touched = b.touched[:0]
	b.leaf = nil
}

// hashFactory creates per-leaf hash sets holding only the smaller child's
// tids ("the size of each leaf's hash table can be reduced by keeping only
// the smaller child's tids, since the other records must necessarily belong
// to the other child").
type hashFactory struct{}

func (hashFactory) Kind() Kind     { return LeafHash }
func (hashFactory) Relabels() bool { return false }

func (hashFactory) ForLeaf(nLeft, nRight int64) Leaf {
	smallerLeft := nLeft <= nRight
	n := nLeft
	if !smallerLeft {
		n = nRight
	}
	// Presize for the smaller child at load factor ≤ 1/2 so inserts never
	// rehash and probes stay short.
	size := 8
	for int64(size) < 2*n {
		size *= 2
	}
	return &hashLeaf{
		slots:       make([]uint32, size),
		mask:        uint32(size - 1),
		smallerLeft: smallerLeft,
	}
}

// hashLeaf is an open-addressed (linear probing) set of the smaller child's
// tids. Slots hold tid+1 so zero means empty; tids are tuple indices, far
// below MaxUint32. Single W writer, concurrent sealed readers.
type hashLeaf struct {
	slots       []uint32
	mask        uint32
	smallerLeft bool
}

func (h *hashLeaf) bucket(tid uint32) uint32 {
	return (tid * 2654435761) & h.mask // Fibonacci hashing
}

func (h *hashLeaf) Set(tid uint32, left bool) {
	if left != h.smallerLeft {
		return
	}
	key := tid + 1
	for i := h.bucket(tid); ; i = (i + 1) & h.mask {
		switch h.slots[i] {
		case 0:
			h.slots[i] = key
			return
		case key:
			return
		}
	}
}

func (h *hashLeaf) Seal() {}

func (h *hashLeaf) Left(tid uint32) bool {
	key := tid + 1
	in := false
	for i := h.bucket(tid); h.slots[i] != 0; i = (i + 1) & h.mask {
		if h.slots[i] == key {
			in = true
			break
		}
	}
	return in == h.smallerLeft
}

func (h *hashLeaf) Remap(tid uint32) uint32 { return tid }
func (h *hashLeaf) Release()                { h.slots = nil }

// relabelFactory creates per-leaf dense bit probes. It relies on the engine
// writing remapped tids so that every leaf's tids are 0..n-1; the per-leaf
// probe is then a bit array plus a popcount rank index that yields each
// child's dense new tid in O(1).
type relabelFactory struct{}

func (relabelFactory) Kind() Kind     { return LeafRelabel }
func (relabelFactory) Relabels() bool { return true }

func (relabelFactory) ForLeaf(nLeft, nRight int64) Leaf {
	n := nLeft + nRight
	return &relabelLeaf{
		n:     n,
		words: make([]uint64, (n+63)/64),
	}
}

type relabelLeaf struct {
	n     int64
	words []uint64
	rank  []uint32 // rank[i] = number of set bits in words[0..i)
}

func (r *relabelLeaf) Set(tid uint32, left bool) {
	if left {
		r.words[tid/64] |= 1 << (tid % 64)
	}
}

func (r *relabelLeaf) Seal() {
	r.rank = make([]uint32, len(r.words)+1)
	var c uint32
	for i, w := range r.words {
		r.rank[i] = c
		c += uint32(bits.OnesCount64(w))
	}
	r.rank[len(r.words)] = c
}

func (r *relabelLeaf) Left(tid uint32) bool {
	return r.words[tid/64]&(1<<(tid%64)) != 0
}

// rank1 returns the number of left tids strictly below tid.
func (r *relabelLeaf) rank1(tid uint32) uint32 {
	w := tid / 64
	mask := uint64(1)<<(tid%64) - 1
	return r.rank[w] + uint32(bits.OnesCount64(r.words[w]&mask))
}

func (r *relabelLeaf) Remap(tid uint32) uint32 {
	below := r.rank1(tid)
	if r.Left(tid) {
		return below
	}
	return tid - below
}

func (r *relabelLeaf) Release() {
	r.words = nil
	r.rank = nil
}

// RawBits implements RawBits; the array is private to the leaf and sealed
// before S readers start, so plain loads are safe.
func (r *relabelLeaf) RawBits() ([]uint64, bool) { return r.words, false }
