package probe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactoryKinds(t *testing.T) {
	for _, k := range []Kind{GlobalBit, LeafHash, LeafRelabel} {
		f, err := NewFactory(k, 100)
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind() != k {
			t.Fatalf("kind = %v, want %v", f.Kind(), k)
		}
		if f.Relabels() != (k == LeafRelabel) {
			t.Fatalf("%v: Relabels = %v", k, f.Relabels())
		}
	}
	if _, err := NewFactory(Kind(42), 10); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind String must not be empty")
	}
}

// applyProbe drives one leaf's W scan and verifies all reads.
func applyProbe(t *testing.T, f Factory, tids []uint32, left []bool) Leaf {
	t.Helper()
	var nl, nr int64
	for _, l := range left {
		if l {
			nl++
		} else {
			nr++
		}
	}
	p := f.ForLeaf(nl, nr)
	for i, tid := range tids {
		p.Set(tid, left[i])
	}
	p.Seal()
	for i, tid := range tids {
		if got := p.Left(tid); got != left[i] {
			t.Fatalf("%v: Left(%d) = %v, want %v", f.Kind(), tid, got, left[i])
		}
	}
	return p
}

func TestProbesRecordDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []Kind{GlobalBit, LeafHash, LeafRelabel} {
		n := 500
		f, err := NewFactory(kind, n)
		if err != nil {
			t.Fatal(err)
		}
		tids := make([]uint32, n)
		left := make([]bool, n)
		for i := range tids {
			tids[i] = uint32(i)
			left[i] = rng.Intn(2) == 0
		}
		// Scan order differs from tid order, as in a sorted winner list.
		order := rng.Perm(n)
		scanT := make([]uint32, n)
		scanL := make([]bool, n)
		for i, j := range order {
			scanT[i], scanL[i] = tids[j], left[j]
		}
		p := applyProbe(t, f, scanT, scanL)
		p.Release()
	}
}

// Property: the relabel probe assigns each child dense tids 0..n_child-1,
// in parent-tid order.
func TestRelabelRemapDense(t *testing.T) {
	f := func(pattern []bool) bool {
		n := len(pattern)
		if n == 0 {
			return true
		}
		fac, _ := NewFactory(LeafRelabel, n)
		var nl, nr int64
		for _, l := range pattern {
			if l {
				nl++
			} else {
				nr++
			}
		}
		p := fac.ForLeaf(nl, nr)
		for i, l := range pattern {
			p.Set(uint32(i), l)
		}
		p.Seal()
		var wantL, wantR uint32
		for i, l := range pattern {
			got := p.Remap(uint32(i))
			if l {
				if got != wantL {
					return false
				}
				wantL++
			} else {
				if got != wantR {
					return false
				}
				wantR++
			}
		}
		return uint32(nl) == wantL && uint32(nr) == wantR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: non-relabeling probes have identity Remap.
func TestIdentityRemap(t *testing.T) {
	for _, kind := range []Kind{GlobalBit, LeafHash} {
		fac, _ := NewFactory(kind, 1000)
		p := fac.ForLeaf(3, 2)
		p.Set(7, true)
		p.Seal()
		if p.Remap(7) != 7 || p.Remap(999) != 999 {
			t.Fatalf("%v: Remap must be identity", kind)
		}
	}
}

func TestGlobalBitDisjointLeaves(t *testing.T) {
	// Two leaves with disjoint tids share the global array; neither may
	// disturb the other, even within the same 64-bit word.
	fac, _ := NewFactory(GlobalBit, 128)
	p1 := fac.ForLeaf(2, 2)
	p2 := fac.ForLeaf(2, 2)
	p1.Set(0, true)
	p1.Set(1, false)
	p2.Set(2, true)
	p2.Set(3, false)
	p1.Set(64, false)
	p2.Set(65, true)
	p1.Seal()
	p2.Seal()
	if !p1.Left(0) || p1.Left(1) || !p2.Left(2) || p2.Left(3) {
		t.Fatal("low-word bits wrong")
	}
	if p1.Left(64) || !p2.Left(65) {
		t.Fatal("second-word bits wrong")
	}
}

func TestGlobalBitReusedTidsAcrossLevels(t *testing.T) {
	// The same tid is re-Set at a later level with the opposite side; the
	// probe must reflect the latest write (bits are overwritten, never
	// cleared wholesale).
	fac, _ := NewFactory(GlobalBit, 64)
	p := fac.ForLeaf(1, 0)
	p.Set(5, true)
	p.Seal()
	if !p.Left(5) {
		t.Fatal("first level set failed")
	}
	q := fac.ForLeaf(0, 1)
	q.Set(5, false)
	q.Seal()
	if q.Left(5) {
		t.Fatal("second level overwrite failed")
	}
}

func TestHashProbeKeepsSmallerChild(t *testing.T) {
	fac, _ := NewFactory(LeafHash, 0)
	// Left smaller.
	p := fac.ForLeaf(1, 3).(*hashLeaf)
	if !p.smallerLeft {
		t.Fatal("left should be the smaller child")
	}
	p.Set(1, true)
	p.Set(2, false)
	p.Set(3, false)
	p.Set(4, false)
	if got := hashStored(p); got != 1 {
		t.Fatalf("hash probe stored %d tids, want 1 (smaller child only)", got)
	}
	if !p.Left(1) || p.Left(2) {
		t.Fatal("lookups wrong")
	}
	// Right smaller.
	q := fac.ForLeaf(3, 1).(*hashLeaf)
	if q.smallerLeft {
		t.Fatal("right should be the smaller child")
	}
	q.Set(1, true)
	q.Set(2, true)
	q.Set(3, true)
	q.Set(4, false)
	if got := hashStored(q); got != 1 {
		t.Fatalf("hash probe stored %d tids, want 1", got)
	}
	if !q.Left(1) || q.Left(4) {
		t.Fatal("lookups wrong")
	}
	q.Release()
}

// hashStored counts the occupied slots of an open-addressed hash probe.
func hashStored(h *hashLeaf) int {
	n := 0
	for _, s := range h.slots {
		if s != 0 {
			n++
		}
	}
	return n
}

func TestRelabelRankAcrossWords(t *testing.T) {
	// Exercise the popcount rank index across word boundaries.
	n := int64(200)
	fac, _ := NewFactory(LeafRelabel, int(n))
	p := fac.ForLeaf(100, 100)
	for i := int64(0); i < n; i++ {
		p.Set(uint32(i), i%2 == 0)
	}
	p.Seal()
	for i := int64(0); i < n; i++ {
		want := uint32(i / 2)
		if got := p.Remap(uint32(i)); got != want {
			t.Fatalf("Remap(%d) = %d, want %d", i, got, want)
		}
	}
}
