package parclass

import (
	"strings"
	"testing"
	"time"
)

func TestModelBuildTrace(t *testing.T) {
	ds := synthDS(t, 7, 1500)
	for _, alg := range []Algorithm{Serial, Basic, FWK, MWK, Subtree, RecordParallel, Hist} {
		t.Run(alg.String(), func(t *testing.T) {
			m, err := Train(ds, Options{Algorithm: alg, Procs: 3, MaxDepth: 6})
			if err != nil {
				t.Fatal(err)
			}
			bt := m.BuildTrace()
			if bt == nil {
				t.Fatal("BuildTrace() = nil")
			}
			if bt.Algorithm != alg {
				t.Fatalf("trace algorithm %v, want %v", bt.Algorithm, alg)
			}
			tot := bt.Totals()
			if tot.EvalUnits == 0 || tot.WinnerUnits == 0 || tot.SplitUnits == 0 {
				t.Fatalf("phase units missing: %+v", tot)
			}
			if alg == Hist {
				if tot.BinUnits == 0 || tot.Bin <= 0 {
					t.Fatalf("Hist trace missing bin phase: %+v", tot)
				}
			} else if tot.BinUnits != 0 {
				t.Fatalf("exact engine recorded bin units: %+v", tot)
			}
			if tot.Busy() <= 0 {
				t.Fatal("no busy time recorded")
			}
			// The recorded busy+waiting time must roughly reconcile with
			// the measured build wall × workers (loose bound: CI noise).
			wall := m.Timings().Build.Seconds()
			if wall > 0 {
				budget := wall * float64(bt.Procs)
				if tot.Total() > budget*1.15 {
					t.Fatalf("recorded %.4fs exceeds processor budget %.4fs", tot.Total(), budget)
				}
			}
			if s := bt.Skew(); s < 1.0-1e-9 {
				t.Fatalf("skew %v < 1", s)
			}
			if eff := bt.Efficiency(); eff <= 0 || eff > 1.5 {
				t.Fatalf("implausible efficiency %v", eff)
			}
			if !strings.Contains(bt.Format(), "worker") {
				t.Fatal("Format() missing header")
			}
			if lt := bt.LevelTotals(); len(lt) == 0 {
				t.Fatal("LevelTotals empty")
			}
		})
	}
}

func TestBuildTraceNilForSLIQ(t *testing.T) {
	ds := synthDS(t, 1, 500)
	m, err := Train(ds, Options{Algorithm: SLIQ})
	if err != nil {
		t.Fatal(err)
	}
	if m.BuildTrace() != nil {
		t.Fatal("SLIQ model should have no build trace")
	}
}

// TestBuildMonitorLive polls a monitor while MWK trains, checking the
// pending → training → done transitions and that live snapshots are
// readable mid-build.
func TestBuildMonitorLive(t *testing.T) {
	ds := synthDS(t, 7, 4000)
	mon := NewBuildMonitor()
	if st, bt := mon.Snapshot(); st != "pending" || bt != nil {
		t.Fatalf("fresh monitor: state %q trace %v", st, bt)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Train(ds, Options{Algorithm: MWK, Procs: 3, Monitor: mon})
		done <- err
	}()
	sawLive := false
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			st, bt := mon.Snapshot()
			if st != "done" {
				t.Fatalf("state after train = %q", st)
			}
			if bt == nil || bt.Totals().Busy() <= 0 {
				t.Fatal("final trace missing")
			}
			if !sawLive {
				t.Log("build finished before a live snapshot was observed (fast machine)")
			}
			return
		default:
			if st, bt := mon.Snapshot(); st == "training" && bt != nil {
				sawLive = true
			}
			time.Sleep(time.Millisecond)
		}
	}
}
