// Out-of-core build: the paper's "Machine A" configuration, where attribute
// lists do not fit in memory and live in a fixed set of reusable disk
// files. This example builds the same tree with the memory backend and the
// disk backend, verifies they agree, and shows the disk backend's file
// economy (4 physical files per attribute for the serial/BASIC scheme, 2K
// for the windowed schemes — never one file per tree node).
//
// Run with:
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	parclass "repro"
)

func main() {
	log.SetFlags(0)

	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function:     7,
		Tuples:       25000,
		Attrs:        12,
		Seed:         4,
		Perturbation: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d tuples × %d attributes (%0.1f MB of attribute lists)\n",
		ds.NumRows(), ds.NumAttrs(), float64(ds.NumRows())*float64(ds.NumAttrs())*16/(1<<20))

	dir, err := os.MkdirTemp("", "parclass-outofcore-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	procs := runtime.GOMAXPROCS(0)

	// In-memory build ("Machine B").
	mem, err := parclass.Train(ds, parclass.Options{
		Algorithm: parclass.MWK, Procs: procs, Storage: parclass.Memory, MaxDepth: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmemory backend: build %v, %d nodes\n",
		mem.Timings().Build.Round(1000), mem.Stats().Nodes)

	// Disk build ("Machine A"): same scheme, lists streamed from files.
	disk, err := parclass.Train(ds, parclass.Options{
		Algorithm: parclass.MWK, Procs: procs, Storage: parclass.Disk,
		TempDir: dir, MaxDepth: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk backend:   build %v, %d nodes\n",
		disk.Timings().Build.Round(1000), disk.Stats().Nodes)

	// The classifiers must be identical — storage is transparent.
	if mem.String() != disk.String() {
		log.Fatal("BUG: memory and disk backends grew different trees")
	}
	fmt.Println("memory and disk backends grew the identical tree ✓")

	// File economy: the window scheme uses 2K files per attribute, reused
	// across all tree levels, regardless of how many nodes the tree has.
	files, err := filepath.Glob(filepath.Join(dir, "*.alist"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphysical attribute-list files: %d (= 2K × %d attributes, K=4)\n",
		len(files), ds.NumAttrs())
	fmt.Printf("tree nodes: %d — with one-file-per-node SPRINT would have needed %d files\n",
		disk.Stats().Nodes, disk.Stats().Nodes*ds.NumAttrs())
}
