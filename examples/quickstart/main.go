// Quickstart: build a decision tree over the paper's Figure 1 car-insurance
// training set and classify a new applicant.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	parclass "repro"
)

// The training set of the paper's Figure 1: six applicants with age and car
// type, labeled with their insurance risk.
const trainingCSV = `age,cartype,class
23,family,high
17,sports,high
43,sports,high
68,family,low
32,truck,low
20,family,high
`

func main() {
	log.SetFlags(0)

	// parclass loads CSV with schema inference: numeric columns become
	// continuous attributes, others categorical; the last column is the
	// class.
	dir, err := os.MkdirTemp("", "parclass-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "insurance.csv")
	if err := os.WriteFile(path, []byte(trainingCSV), 0o644); err != nil {
		log.Fatal(err)
	}
	ds, err := parclass.LoadCSV(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training set: %d tuples, %d attributes, classes %v\n\n",
		ds.NumRows(), ds.NumAttrs(), ds.ClassNames())

	// Train serially — the dataset is six rows; the SMP schemes shine on
	// the paper-scale datasets (see the other examples).
	model, err := parclass.Train(ds, parclass.Options{Algorithm: parclass.Serial})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("decision tree (cf. paper Figure 1):")
	fmt.Println(model.String())

	fmt.Println("rules:")
	for _, r := range model.Rules() {
		fmt.Println("  " + r)
	}

	// Classify a new applicant.
	applicant := map[string]string{"age": "25", "cartype": "sports"}
	class, err := model.Predict(applicant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnew applicant %v → risk %q\n", applicant, class)

	// Decision trees convert directly into SQL, the paper's point about
	// database integration.
	fmt.Println("\nas SQL:")
	fmt.Println(model.SQL())
}
