// Customer segmentation: a multi-class scenario. Function 7's disposable
// income is banded into four spending tiers; the classifier learns the
// tiers from raw attributes, and we inspect per-class quality with the
// confusion matrix. Cross-validation estimates generalization without a
// fixed holdout.
//
// Run with:
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"
	"runtime"

	parclass "repro"
)

func main() {
	log.SetFlags(0)

	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 7,
		Tuples:   30000,
		Attrs:    9,
		Seed:     2026,
		Classes:  4, // four spending tiers: GroupA (lowest) … GroupD (highest)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customers: %d, tiers: %v\n", ds.NumRows(), ds.ClassNames())
	for tier, n := range ds.ClassDistribution() {
		fmt.Printf("  %-8s %6d\n", tier, n)
	}

	procs := runtime.GOMAXPROCS(0)
	train, test := ds.Shuffle(7).SplitHoldout(0.25)
	model, err := parclass.Train(train, parclass.Options{
		Algorithm:    parclass.MWK,
		Procs:        procs,
		MaxDepth:     12,
		PartialPrune: true, // SLIQ's partial pruning keeps the tiers' tree lean
	})
	if err != nil {
		log.Fatal(err)
	}

	st := model.Stats()
	fmt.Printf("\ntree: %d nodes, %d levels (%d subtrees pruned) in %v\n",
		st.Nodes, st.Levels, model.PrunedSubtrees(), model.Timings().Total().Round(1000))

	fmt.Println("\nholdout confusion matrix:")
	fmt.Println(model.Evaluate(test).Pretty)

	// Tier probabilities for one prospect — useful when a campaign wants
	// "likely GroupC or better" rather than a hard label.
	prospect := map[string]string{
		"salary": "95000", "commission": "0", "age": "41", "elevel": "e3",
		"car": "make11", "zipcode": "zip2", "hvalue": "320000", "hyears": "9",
		"loan": "140000",
	}
	prob, err := model.PredictProb(prospect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prospect tier probabilities:")
	for _, tier := range ds.ClassNames() {
		fmt.Printf("  %-8s %.3f\n", tier, prob[tier])
	}

	// Cross-validated accuracy: a sturdier estimate than one holdout.
	cv, err := parclass.CrossValidate(ds, 5, 99, parclass.Options{
		Algorithm: parclass.MWK, Procs: procs, MaxDepth: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-fold CV accuracy: %.4f ± %.4f\n", cv.Mean, cv.StdDev)
}
