// Fraud detection: the paper's second motivating application. Labels here
// come from Function 9 (a linear rule over salary, commission, education
// and outstanding loan), with 2% label noise standing in for mislabeled
// historical cases. The tree is trained with the SUBTREE task-parallel
// scheme and exported as SQL so the model can run inside the database —
// the deployment route the paper highlights for decision trees.
//
// Run with:
//
//	go run ./examples/frauddetection
package main

import (
	"fmt"
	"log"
	"runtime"

	parclass "repro"
)

func main() {
	log.SetFlags(0)

	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function:     9,
		Tuples:       30000,
		Attrs:        16, // extra noise columns: the junk fields real ledgers carry
		Seed:         99,
		Perturbation: 0.05,
		LabelNoise:   0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case history: %d transactions, %d attributes\n", ds.NumRows(), ds.NumAttrs())
	for cls, n := range ds.ClassDistribution() {
		fmt.Printf("  %-8s %6d\n", cls, n)
	}

	train, test := ds.SplitHoldout(0.2)

	model, err := parclass.Train(train, parclass.Options{
		Algorithm: parclass.Subtree,
		Procs:     runtime.GOMAXPROCS(0),
		MaxDepth:  8,
		MinSplit:  50, // don't chase individual noisy cases
		Prune:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbuild (SUBTREE): %v; tree %d nodes / %d levels; %d subtrees pruned\n",
		model.Timings().Total().Round(1000),
		model.Stats().Nodes, model.Stats().Levels, model.PrunedSubtrees())
	fmt.Printf("holdout accuracy: %.4f (%d unseen cases)\n", model.Accuracy(test), test.NumRows())

	// With 2% label noise, pruning should keep the tree honest: the noise
	// attributes must not dominate the splits.
	fmt.Println("\nsplit attributes (noise columns should rank low):")
	for _, s := range model.AttrImportance() {
		fmt.Println("  " + s)
	}

	fmt.Println("\nscoring rule as SQL (deployable in the transaction database):")
	fmt.Println(model.SQL())
}
