// Target marketing: the paper's motivating retail scenario. A retailer
// wants to predict which customer group responds to a campaign from
// demographic attributes (salary, commission, age, education, car, zipcode,
// house value, years owned, loan). We generate the paper's complex Function
// 7 population, train with the MWK scheme, and evaluate on a holdout.
//
// Run with:
//
//	go run ./examples/targetmarketing
package main

import (
	"fmt"
	"log"
	"runtime"

	parclass "repro"
)

func main() {
	log.SetFlags(0)

	// Function 7 labels customers by disposable income:
	// 0.67·(salary+commission) − 0.2·loan − 20000 > 0 ⇒ Group A.
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function:     7,
		Tuples:       40000,
		Attrs:        9,
		Seed:         20260705,
		Perturbation: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	dist := ds.ClassDistribution()
	fmt.Printf("population: %d customers (responders=%d, non-responders=%d)\n",
		ds.NumRows(), dist["GroupA"], dist["GroupB"])

	train, test := ds.SplitHoldout(0.25)

	procs := runtime.GOMAXPROCS(0)
	model, err := parclass.Train(train, parclass.Options{
		Algorithm: parclass.MWK, // the paper's best overall scheme
		Procs:     procs,
		WindowK:   4,
		MaxDepth:  10, // a compact, actionable tree
		Prune:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	tm := model.Timings()
	st := model.Stats()
	fmt.Printf("\ntrained with MWK on %d goroutines in %v (setup %v, sort %v, build %v)\n",
		procs, tm.Total().Round(1000), tm.Setup.Round(1000), tm.Sort.Round(1000), tm.Build.Round(1000))
	fmt.Printf("tree: %d nodes over %d levels (max %d leaves/level), %d subtrees pruned\n",
		st.Nodes, st.Levels, st.MaxLeavesPerLevel, model.PrunedSubtrees())

	fmt.Printf("\ntraining accuracy: %.4f\n", model.Accuracy(train))
	fmt.Printf("holdout accuracy:  %.4f (%d customers)\n", model.Accuracy(test), test.NumRows())

	fmt.Println("\nwhat drives response (attributes by split count):")
	for _, s := range model.AttrImportance() {
		fmt.Println("  " + s)
	}

	// Score two prospective customers.
	for _, customer := range []map[string]string{
		{
			"salary": "120000", "commission": "0", "age": "38", "elevel": "e3",
			"car": "make7", "zipcode": "zip3", "hvalue": "250000", "hyears": "12",
			"loan": "30000",
		},
		{
			"salary": "30000", "commission": "15000", "age": "55", "elevel": "e1",
			"car": "make2", "zipcode": "zip8", "hvalue": "900000", "hyears": "25",
			"loan": "480000",
		},
	} {
		class, err := model.Predict(customer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncustomer salary=%s loan=%s age=%s → %s\n",
			customer["salary"], customer["loan"], customer["age"], class)
	}
}
