package parclass

import (
	"errors"

	"repro/internal/core"
)

// Sentinel errors returned (wrapped, test with errors.Is) by Train, Predict,
// PredictBatch and PredictValues.
var (
	// ErrUnknownAttribute marks a prediction row that is missing a schema
	// attribute, or a positional row of the wrong width.
	ErrUnknownAttribute = errors.New("parclass: unknown attribute")
	// ErrUnknownValue marks an attribute value that cannot be decoded: an
	// unparseable number for a continuous attribute or a category name the
	// training schema never saw.
	ErrUnknownValue = errors.New("parclass: unknown value")
	// ErrBadOption marks an Options combination rejected by Validate.
	ErrBadOption = errors.New("parclass: bad option")
	// ErrNotCompiled marks a prediction path that needs the compiled
	// flat-tree predictor when compilation failed.
	ErrNotCompiled = errors.New("parclass: model not compiled")
	// ErrWorkerPanic marks a Train/Build failure caused by a panicking
	// build worker; the build tears down cleanly and the panic value plus
	// its stack are in the wrapped message.
	ErrWorkerPanic = core.ErrWorkerPanic
)
