// Command parclassd is the model server: it trains a classifier (on CSV or
// synthetic data) or loads a saved model, registers it, and serves
// predictions over HTTP with hot model swapping — the serving half of the
// repo's train→serve→measure loop (drive it with cmd/loadgen).
//
// Usage:
//
//	parclassd -synthetic F7-A32-D10K -algorithm mwk -procs 4
//	parclassd -data train.csv -addr :9090
//	parclassd -model m.json -name fraud
//	parclassd -synthetic F7-A32-D1000K -algorithm mwk -procs 4 -background-train
//
// Routes (also under /v1): POST /predict, GET /healthz, GET /metrics,
// GET /models, GET /model/{name}, POST /models/{name} (hot swap). See
// internal/serve. Training runs attach a build monitor, so GET /metrics
// carries a "build" section with the run's per-phase breakdown — live
// while -background-train is still growing the tree.
//
// Predict requests are micro-batched by default: concurrent requests
// coalesce (-batch-rows rows / -batch-linger window) into single sharded
// flat-tree walks behind a bounded admission queue (-queue-depth) that
// sheds overload with 429 + Retry-After; -batch-rows 0 disables it. The
// predict body cap is -predict-max-bytes (413 past it).
//
// Cluster mode turns a set of parclassd processes into a replicated
// serving fleet: give each node a stable -node-id and its peers' URLs in
// -peers, and a model POSTed to any node (or won by its retrain loop)
// fans out to all of them under a per-model version vector, while a
// pull-based anti-entropy loop (-anti-entropy) converges nodes that were
// down when the push happened. GET /v1/cluster reports per-peer liveness,
// per-model versions and replication lag:
//
//	parclassd -addr :8081 -node-id a -peers http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Online learning is on by default: POST /v1/ingest accepts labeled rows
// into a bounded sliding window (-ingest-window rows; 0 disables the
// route), and a background loop (-retrain-interval; 0 disables) rebuilds a
// HIST-engine candidate on the window and hot-swaps it in ONLY when it
// beats the serving model on a held-out window slice by more than
// -retrain-margin — the accuracy tripwire that keeps a bad batch of labels
// from degrading serving. Watch it on GET /metrics under "ingest".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	parclass "repro"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parclassd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		name      = flag.String("name", serve.DefaultModelName, "registry name for the initial model")
		modelPath = flag.String("model", "", "load a saved model (JSON) instead of training")
		data      = flag.String("data", "", "CSV dataset to train on (last column is the class)")
		synthetic = flag.String("synthetic", "", "synthetic dataset spec Fx-Ay-DzK (e.g. F7-A32-D10K)")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")
		algorithm = flag.String("algorithm", "serial", "serial | basic | fwk | mwk | subtree | recpar | hist")
		procs     = flag.Int("procs", 1, "worker processors for parallel training schemes")
		maxBins   = flag.Int("max-bins", 0, "histogram bins per continuous attribute for hist (0 = default 256)")
		maxDepth  = flag.Int("max-depth", 0, "tree depth bound (0 = unlimited)")
		doPrune   = flag.Bool("prune", false, "apply MDL pruning after growth")
		bgTrain   = flag.Bool("background-train", false,
			"start serving before training finishes; watch the build live on /metrics")
		trees       = flag.Int("trees", 0, "train a bagged forest of this many trees (0/1 = single tree)")
		sampleFrac  = flag.Float64("sample-frac", 0, "bootstrap sample fraction per tree (0 = classic bootstrap)")
		featureFrac = flag.Float64("feature-frac", 0, "attribute subsample fraction per tree (0 = all attributes)")
		forestSeed  = flag.Int64("forest-seed", 0, "forest bootstrap/feature RNG seed")
		batchRows   = flag.Int("batch-rows", serve.DefaultBatchMaxRows,
			"micro-batcher window: flush after this many coalesced rows (0 disables server-side batching)")
		batchLinger = flag.Duration("batch-linger", serve.DefaultBatchLinger,
			"micro-batcher window: flush this long after the first queued request")
		queueDepth = flag.Int("queue-depth", serve.DefaultBatchQueueDepth,
			"predict admission queue capacity in requests; a full queue sheds with 429 + Retry-After")
		predictMaxBytes = flag.Int64("predict-max-bytes", serve.DefaultPredictMaxBytes,
			"POST /predict body cap in bytes (oversized bodies answer 413)")
		levelSync = flag.String("levelsync", "auto",
			"batch predict kernel: auto (level-sync for batches past the measured crossover), on, off")
		ingestWindow = flag.Int("ingest-window", serve.DefaultIngestWindow,
			"labeled-row sliding window capacity for POST /ingest (0 disables online ingest)")
		retrainInterval = flag.Duration("retrain-interval", 5*time.Second,
			"how often the background loop retrains on the ingest window (0 disables the loop; POST /ingest still fills the window)")
		retrainMinRows = flag.Int("retrain-min-rows", 0,
			"skip retrain cycles until the window holds this many rows (0 = default 500)")
		retrainHoldout = flag.Int("retrain-holdout", 0,
			"hold out every k-th window row to score candidate vs serving (0 = default 5)")
		retrainMargin = flag.Float64("retrain-margin", 0,
			"swap only when candidate holdout accuracy beats serving by more than this")
		nodeID = flag.String("node-id", "",
			"stable cluster identity (the version-vector axis this node bumps); enables cluster mode")
		peers = flag.String("peers", "",
			"comma-separated peer base URLs (http://host:port,...) for model-swap replication; requires -node-id")
		selfURL = flag.String("self-url", "",
			"advertised base URL echoed on GET /v1/cluster (default derived from -addr)")
		antiEntropy = flag.Duration("anti-entropy", cluster.DefaultInterval,
			"pull-based anti-entropy period: how often this node pulls peer digests to repair missed pushes")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second,
			"time limit for reading a request's headers (0 = none; Slowloris guard)")
		readTimeout = flag.Duration("read-timeout", 2*time.Minute,
			"time limit for reading a whole request including the body (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute,
			"time limit for writing a response (0 = none)")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute,
			"keep-alive idle connection timeout (0 = none)")
	)
	flag.Parse()

	lsMode, err := parclass.ParseLevelSyncMode(*levelSync)
	if err != nil {
		log.Fatalf("-levelsync: %v", err)
	}

	mon := parclass.NewBuildMonitor()
	s := serve.New(*name)
	s.SetBuildMonitor(mon)
	s.SetPredictMaxBytes(*predictMaxBytes)
	s.SetLevelSyncMode(lsMode)

	// Cluster mode: every local publish (upload or winning retrain swap)
	// fans out to the peers, and the anti-entropy loop pulls back whatever
	// a dead interval missed. The node must exist before the retrain loop
	// starts so a winning swap never races the hook installation.
	var node *cluster.Node
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" {
			log.Fatal("cluster: -peers requires -node-id")
		}
		self := *selfURL
		if self == "" {
			if strings.HasPrefix(*addr, ":") {
				self = "http://127.0.0.1" + *addr
			} else {
				self = "http://" + *addr
			}
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimSuffix(p, "/"))
			}
		}
		n, err := cluster.New(cluster.Config{
			ID: *nodeID, Self: self, Peers: peerList, Interval: *antiEntropy,
		}, s)
		if err != nil {
			log.Fatal(err)
		}
		node = n
		log.Printf("cluster: node %q at %s, %d peers, anti-entropy every %v",
			*nodeID, self, len(peerList), *antiEntropy)
	}
	if *batchRows > 0 {
		if err := s.EnableBatching(serve.BatchConfig{
			MaxRows:    *batchRows,
			Linger:     *batchLinger,
			QueueDepth: *queueDepth,
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("micro-batching: up to %d rows per dispatch, %v linger, queue depth %d",
			*batchRows, *batchLinger, *queueDepth)
	}

	var stopRetrain func()
	if *ingestWindow > 0 {
		if err := s.EnableIngest(serve.IngestConfig{WindowCap: *ingestWindow}); err != nil {
			log.Fatal(err)
		}
		if *retrainInterval > 0 {
			stopRetrain = s.StartRetrainLoop(*name, *retrainInterval, ingest.RetrainConfig{
				MinRows:      *retrainMinRows,
				HoldoutEvery: *retrainHoldout,
				Margin:       *retrainMargin,
			})
			log.Printf("online learning: %d-row ingest window, retrain every %v (accuracy tripwire margin %g)",
				*ingestWindow, *retrainInterval, *retrainMargin)
		} else {
			log.Printf("online ingest: %d-row window (retrain loop disabled)", *ingestWindow)
		}
	}

	fc := forestConfig{
		Trees: *trees, SampleFrac: *sampleFrac, FeatureFrac: *featureFrac, Seed: *forestSeed,
	}
	train := func() error {
		model, source, err := buildModel(*modelPath, *data, *synthetic, *seed, *algorithm, *procs, *maxDepth, *maxBins, *doPrune, fc, mon)
		if err != nil {
			return err
		}
		if _, err := s.Load(*name, model, source); err != nil {
			return err
		}
		if node != nil {
			// Seed with the zero version vector: any real publish anywhere
			// in the fleet dominates the boot model, and identically
			// configured nodes seeding the same deterministic build agree.
			if err := node.Seed(*name, model); err != nil {
				return err
			}
		}
		st := model.Stats()
		if nt := model.NumTrees(); nt > 1 {
			log.Printf("forest %q ready (%s): %d trees, %d nodes, %d leaves, %d levels",
				*name, source, nt, st.Nodes, st.Leaves, st.Levels)
		} else {
			log.Printf("model %q ready (%s): %d nodes, %d leaves, %d levels", *name, source, st.Nodes, st.Leaves, st.Levels)
		}
		if m, ok := model.(*parclass.Model); ok {
			if bt := m.BuildTrace(); bt != nil {
				log.Printf("build breakdown:\n%s", bt.Format())
			}
		}
		return nil
	}
	if *bgTrain {
		go func() {
			if err := train(); err != nil {
				// Surface the failure instead of only logging it: /healthz
				// turns degraded (503 while nothing serves under the name)
				// and /metrics carries the error, so orchestrators and
				// dashboards see the dead training run.
				s.RecordFailure(*name, err)
				log.Printf("background training failed: %v", err)
			}
		}()
	} else if err := train(); err != nil {
		log.Fatal(err)
	}
	handler := s.Handler()
	var stopSync func()
	if node != nil {
		handler = node.Handler()
		stopSync = node.Start()
	}
	// Every timeout is flag-overridable; the defaults close slow-header
	// (Slowloris), slow-body, stuck-response and abandoned keep-alive
	// connections instead of holding their goroutines forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Stop the anti-entropy loop, the retrain loop and the micro-batcher's
	// dispatcher after the listener drains.
	if stopSync != nil {
		stopSync()
	}
	if stopRetrain != nil {
		stopRetrain()
	}
	s.Close()
}

// forestConfig carries the -trees/-sample-frac/-feature-frac/-forest-seed
// flags; the zero value means a single tree.
type forestConfig struct {
	Trees       int
	SampleFrac  float64
	FeatureFrac float64
	Seed        int64
}

func (fc forestConfig) enabled() bool {
	return fc.Trees > 1 || fc.SampleFrac != 0 || fc.FeatureFrac != 0 || fc.Seed != 0
}

// buildModel trains or loads the initial classifier (a single tree, or a
// forest when fc is set) and describes its origin.
func buildModel(modelPath, data, synthetic string, seed int64, algorithm string,
	procs, maxDepth, maxBins int, doPrune bool, fc forestConfig, mon *parclass.BuildMonitor) (parclass.Predictor, string, error) {
	if modelPath != "" {
		m, err := parclass.LoadModel(modelPath)
		return m, "loaded " + modelPath, err
	}
	var (
		ds     *parclass.Dataset
		source string
		err    error
	)
	switch {
	case data != "" && synthetic != "":
		return nil, "", fmt.Errorf("use only one of -data and -synthetic")
	case data != "":
		ds, err = parclass.LoadCSV(data)
		source = "trained on " + data
	case synthetic != "":
		var spec bench.DataSpec
		spec, err = bench.ParseSpec(synthetic)
		if err == nil {
			ds, err = parclass.Synthetic(parclass.SyntheticConfig{
				Function: spec.Function, Attrs: spec.Attrs, Tuples: spec.Tuples,
				Seed: seed, Perturbation: 0.05,
			})
		}
		source = "trained on synthetic " + synthetic
	default:
		return nil, "", fmt.Errorf("need one of -model, -data or -synthetic")
	}
	if err != nil {
		return nil, "", err
	}
	opt := parclass.Options{Procs: procs, MaxDepth: maxDepth, Prune: doPrune, Monitor: mon}
	switch strings.ToLower(algorithm) {
	case "serial":
		opt.Algorithm = parclass.Serial
	case "basic":
		opt.Algorithm = parclass.Basic
	case "fwk":
		opt.Algorithm = parclass.FWK
	case "mwk":
		opt.Algorithm = parclass.MWK
	case "subtree":
		opt.Algorithm = parclass.Subtree
	case "recpar":
		opt.Algorithm = parclass.RecordParallel
	case "hist":
		opt.Algorithm = parclass.Hist
		opt.MaxBins = maxBins
	default:
		return nil, "", fmt.Errorf("unknown algorithm %q", algorithm)
	}
	if fc.enabled() {
		opt.Trees = fc.Trees
		opt.SampleFrac = fc.SampleFrac
		opt.FeatureFrac = fc.FeatureFrac
		opt.ForestSeed = fc.Seed
		// The monitor watches single-tree builds only; member builds
		// interleave, so Validate rejects the combination.
		opt.Monitor = nil
		f, err := parclass.TrainForest(ds, opt)
		return f, source, err
	}
	m, err := parclass.Train(ds, opt)
	return m, source, err
}
