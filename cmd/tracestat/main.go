// Command tracestat inspects a profiling trace (produced with
// `benchtab -trace-dir`) or profiles a synthetic dataset on the spot, then
// prints the trace's cost anatomy and each scheme's simulated time,
// speedup and processor efficiency. It is the diagnostic companion of the
// virtual-time simulator.
//
// Usage:
//
//	tracestat -trace F7-A32-D100K.trace.json -procs 4
//	tracestat -synthetic F7-A32-D20K -procs 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	var (
		tracePath = flag.String("trace", "", "trace JSON file to inspect")
		spec      = flag.String("synthetic", "", "profile this synthetic spec instead (Fx-Ay-DzK)")
		procs     = flag.Int("procs", 4, "processor count for the per-scheme simulation")
		windowK   = flag.Int("window", 4, "window size K")
	)
	flag.Parse()

	tr, err := loadTrace(*tracePath, *spec)
	if err != nil {
		log.Fatal(err)
	}

	// Anatomy.
	var e, w, s float64
	leaves := 0
	maxLeaves := 0
	for i := range tr.Levels {
		lv := &tr.Levels[i]
		if len(lv.Leaves) > maxLeaves {
			maxLeaves = len(lv.Leaves)
		}
		for j := range lv.Leaves {
			lf := &lv.Leaves[j]
			e += lf.TotalE()
			w += lf.W
			s += lf.TotalS()
			leaves++
		}
	}
	total := e + w + s
	fmt.Printf("trace %s: %d tuples × %d attributes\n", tr.Dataset, tr.NTuples, tr.NAttrs)
	fmt.Printf("  levels=%d  leaves=%d  max leaves/level=%d\n", len(tr.Levels), leaves, maxLeaves)
	fmt.Printf("  setup=%.3fs sort=%.3fs build(serial)=%.3fs\n",
		tr.SetupSeconds, tr.SortSeconds, tr.BuildSeconds)
	fmt.Printf("  unit costs: E=%.3fs (%.1f%%)  W=%.3fs (%.1f%%)  S=%.3fs (%.1f%%)\n",
		e, 100*e/total, w, 100*w/total, s, 100*s/total)

	// Per-scheme simulation.
	fmt.Printf("\nsimulated at P=%d (K=%d):\n", *procs, *windowK)
	fmt.Printf("  %-8s %12s %9s %11s %8s %9s\n", "scheme", "build(s)", "speedup", "efficiency", "grabs", "barriers")
	for _, scheme := range []sim.Scheme{sim.Basic, sim.FWK, sim.MWK, sim.Subtree} {
		base, err := sim.Simulate(tr, scheme, 1, *windowK, sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Simulate(tr, scheme, *procs, *windowK, sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %12.4f %9.2f %10.1f%% %8d %9d\n",
			scheme, r.BuildSeconds, base.BuildSeconds/r.BuildSeconds,
			100*r.Efficiency(), r.Grabs, r.Barriers)
	}
}

func loadTrace(path, spec string) (*trace.Trace, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("use only one of -trace and -synthetic")
	case path != "":
		return trace.ReadFile(path)
	case spec != "":
		ds, err := bench.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		tbl, err := synth.Generate(synth.Config{
			Function: ds.Function, Attrs: ds.Attrs, Tuples: ds.Tuples,
			Seed: ds.Seed, Perturbation: 0.05,
		})
		if err != nil {
			return nil, err
		}
		tr := &trace.Trace{Dataset: spec}
		if _, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, Trace: tr}); err != nil {
			return nil, err
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("need -trace or -synthetic")
	}
}
