// Command tracestat inspects a profiling trace (produced with
// `benchtab -trace-dir`) or profiles a synthetic dataset on the spot, then
// prints the trace's cost anatomy and each scheme's simulated time,
// speedup and processor efficiency. It is the diagnostic companion of the
// virtual-time simulator.
//
// With -measure it switches from the simulator to real instrumented
// builds: each scheme is trained for real at -procs workers and the
// measured per-worker E/W/S/barrier/idle table (Model.BuildTrace) is
// printed instead of simulated times.
//
// Usage:
//
//	tracestat -trace F7-A32-D100K.trace.json -procs 4
//	tracestat -synthetic F7-A32-D20K -procs 8
//	tracestat -synthetic F7-A32-D20K -procs 4 -measure
package main

import (
	"flag"
	"fmt"
	"log"

	parclass "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	var (
		tracePath = flag.String("trace", "", "trace JSON file to inspect")
		spec      = flag.String("synthetic", "", "profile this synthetic spec instead (Fx-Ay-DzK)")
		procs     = flag.Int("procs", 4, "processor count for the per-scheme simulation")
		windowK   = flag.Int("window", 4, "window size K")
		measure   = flag.Bool("measure", false,
			"run real instrumented builds (needs -synthetic) and print measured per-worker E/W/S tables")
	)
	flag.Parse()

	if *measure {
		if *spec == "" {
			log.Fatal("-measure needs -synthetic")
		}
		if err := measureBuilds(*spec, *procs); err != nil {
			log.Fatal(err)
		}
		return
	}

	tr, err := loadTrace(*tracePath, *spec)
	if err != nil {
		log.Fatal(err)
	}

	// Anatomy.
	var e, w, s float64
	leaves := 0
	maxLeaves := 0
	for i := range tr.Levels {
		lv := &tr.Levels[i]
		if len(lv.Leaves) > maxLeaves {
			maxLeaves = len(lv.Leaves)
		}
		for j := range lv.Leaves {
			lf := &lv.Leaves[j]
			e += lf.TotalE()
			w += lf.W
			s += lf.TotalS()
			leaves++
		}
	}
	total := e + w + s
	fmt.Printf("trace %s: %d tuples × %d attributes\n", tr.Dataset, tr.NTuples, tr.NAttrs)
	fmt.Printf("  levels=%d  leaves=%d  max leaves/level=%d\n", len(tr.Levels), leaves, maxLeaves)
	fmt.Printf("  setup=%.3fs sort=%.3fs build(serial)=%.3fs\n",
		tr.SetupSeconds, tr.SortSeconds, tr.BuildSeconds)
	fmt.Printf("  unit costs: E=%.3fs (%.1f%%)  W=%.3fs (%.1f%%)  S=%.3fs (%.1f%%)\n",
		e, 100*e/total, w, 100*w/total, s, 100*s/total)

	// Per-scheme simulation.
	fmt.Printf("\nsimulated at P=%d (K=%d):\n", *procs, *windowK)
	fmt.Printf("  %-8s %12s %9s %11s %8s %9s\n", "scheme", "build(s)", "speedup", "efficiency", "grabs", "barriers")
	for _, scheme := range []sim.Scheme{sim.Basic, sim.FWK, sim.MWK, sim.Subtree} {
		base, err := sim.Simulate(tr, scheme, 1, *windowK, sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Simulate(tr, scheme, *procs, *windowK, sim.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %12.4f %9.2f %10.1f%% %8d %9d\n",
			scheme, r.BuildSeconds, base.BuildSeconds/r.BuildSeconds,
			100*r.Efficiency(), r.Grabs, r.Barriers)
	}
}

// measureBuilds trains every scheme for real on the spec and prints each
// run's measured per-worker phase table.
func measureBuilds(spec string, procs int) error {
	d, err := bench.ParseSpec(spec)
	if err != nil {
		return err
	}
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: d.Function, Attrs: d.Attrs, Tuples: d.Tuples, Seed: d.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("measured builds on %s:\n", spec)
	for _, alg := range []parclass.Algorithm{
		parclass.Serial, parclass.Basic, parclass.FWK, parclass.MWK, parclass.Subtree,
	} {
		p := procs
		if alg == parclass.Serial {
			p = 1
		}
		m, err := parclass.Train(ds, parclass.Options{Algorithm: alg, Procs: p})
		if err != nil {
			return fmt.Errorf("%s: %w", alg, err)
		}
		bt := m.BuildTrace()
		if bt == nil {
			return fmt.Errorf("%s: no build trace", alg)
		}
		fmt.Printf("\n%s\n", bt.Format())
	}
	return nil
}

func loadTrace(path, spec string) (*trace.Trace, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("use only one of -trace and -synthetic")
	case path != "":
		return trace.ReadFile(path)
	case spec != "":
		ds, err := bench.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		tbl, err := synth.Generate(synth.Config{
			Function: ds.Function, Attrs: ds.Attrs, Tuples: ds.Tuples,
			Seed: ds.Seed, Perturbation: 0.05,
		})
		if err != nil {
			return nil, err
		}
		tr := &trace.Trace{Dataset: spec}
		if _, _, err := core.Build(tbl, core.Config{Algorithm: core.Serial, Trace: tr}); err != nil {
			return nil, err
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("need -trace or -synthetic")
	}
}
