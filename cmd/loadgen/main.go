// Command loadgen drives a running parclassd with synthetic prediction
// traffic and reports latency percentiles and throughput — the measuring
// third of the train→serve→measure loop.
//
// It fetches GET /model/{name} to learn the model's schema, synthesizes
// random rows over that schema (continuous values uniform over a wide
// range, categorical values uniform over the category names), and fans
// POST /predict requests out over -concurrency workers with -batch rows
// per request, for -duration (or exactly -requests requests).
//
// Usage:
//
//	loadgen -url http://localhost:8080 -concurrency 8 -batch 64 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// modelInfo mirrors the fields of serve.ModelInfo loadgen needs.
type modelInfo struct {
	Classes []string `json:"classes"`
	Attrs   []struct {
		Name       string   `json:"name"`
		Kind       string   `json:"kind"`
		Categories []string `json:"categories"`
	} `json:"attrs"`
}

type predictRequest struct {
	Model      string              `json:"model,omitempty"`
	Rows       []map[string]string `json:"rows,omitempty"`
	Row        map[string]string   `json:"row,omitempty"`
	Values     []string            `json:"values,omitempty"`
	ValuesRows [][]string          `json:"values_rows,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		baseURL     = flag.String("url", "http://localhost:8080", "parclassd base URL")
		model       = flag.String("model", "default", "model name to drive")
		concurrency = flag.Int("concurrency", 4, "concurrent request workers")
		batch       = flag.Int("batch", 32, "rows per request (1 sends single-row requests)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to run")
		requests    = flag.Int("requests", 0, "stop after exactly this many requests (overrides -duration)")
		seed        = flag.Int64("seed", 1, "row generator seed")
		positional  = flag.Bool("positional", false,
			"send positional values/values_rows instead of name→value maps (the server's fast path)")
	)
	flag.Parse()

	var info modelInfo
	if err := fetchJSON(*baseURL+"/model/"+*model, &info); err != nil {
		log.Fatalf("fetching model schema: %v", err)
	}
	if len(info.Attrs) == 0 {
		log.Fatalf("model %q exposes no attributes", *model)
	}
	log.Printf("driving %s model=%s: %d attrs, %d classes, batch=%d, concurrency=%d",
		*baseURL, *model, len(info.Attrs), len(info.Classes), *batch, *concurrency)

	var (
		wg        sync.WaitGroup
		sent      atomic.Int64
		rowsDone  atomic.Int64
		errCount  atomic.Int64
		latencies = make([][]time.Duration, *concurrency)
	)
	deadline := time.Now().Add(*duration)
	budget := int64(*requests)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				if budget > 0 {
					if sent.Add(1) > budget {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				req := predictRequest{Model: *model}
				switch {
				case *positional && *batch <= 1:
					req.Values = randomValues(rng, &info)
				case *positional:
					req.ValuesRows = make([][]string, *batch)
					for i := range req.ValuesRows {
						req.ValuesRows[i] = randomValues(rng, &info)
					}
				case *batch <= 1:
					req.Row = randomRow(rng, &info)
				default:
					req.Rows = make([]map[string]string, *batch)
					for i := range req.Rows {
						req.Rows[i] = randomRow(rng, &info)
					}
				}
				body, _ := json.Marshal(req)
				t0 := time.Now()
				resp, err := client.Post(*baseURL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCount.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				n := *batch
				if n < 1 {
					n = 1
				}
				rowsDone.Add(int64(n))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	if len(all) == 0 {
		log.Fatalf("no successful requests (%d errors)", errCount.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p/100*float64(len(all))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}
	fmt.Printf("requests: %d ok, %d errors in %v\n", len(all), errCount.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %s rows/s (%s req/s)\n",
		fmtRate(float64(rowsDone.Load())/elapsed.Seconds()),
		fmtRate(float64(len(all))/elapsed.Seconds()))
	fmt.Printf("latency: mean=%v p50=%v p95=%v p99=%v max=%v\n",
		(sum / time.Duration(len(all))).Round(time.Microsecond),
		pct(50).Round(time.Microsecond), pct(95).Round(time.Microsecond),
		pct(99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
}

// randomValues synthesizes one positional row in schema attribute order.
func randomValues(rng *rand.Rand, info *modelInfo) []string {
	vals := make([]string, len(info.Attrs))
	for i, a := range info.Attrs {
		if a.Kind == "categorical" && len(a.Categories) > 0 {
			vals[i] = a.Categories[rng.Intn(len(a.Categories))]
		} else {
			vals[i] = strconv.FormatFloat(rng.Float64()*200000, 'g', -1, 64)
		}
	}
	return vals
}

// randomRow synthesizes one row the model's schema accepts.
func randomRow(rng *rand.Rand, info *modelInfo) map[string]string {
	row := make(map[string]string, len(info.Attrs))
	for _, a := range info.Attrs {
		if a.Kind == "categorical" && len(a.Categories) > 0 {
			row[a.Name] = a.Categories[rng.Intn(len(a.Categories))]
		} else {
			row[a.Name] = strconv.FormatFloat(rng.Float64()*200000, 'g', -1, 64)
		}
	}
	return row
}

func fetchJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
