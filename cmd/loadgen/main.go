// Command loadgen drives a running parclassd with synthetic prediction
// traffic and reports latency percentiles, throughput and shed rate — the
// measuring third of the train→serve→measure loop (the driver itself lives
// in internal/loadtest, shared with `benchjson -serve`).
//
// It fetches GET /v1/model/{name} to learn the model's schema, synthesizes
// random rows over that schema, and sends POST /v1/predict requests either
// closed-loop (-concurrency workers, each one request in flight) or
// open-loop (-arrival N requests/second on a fixed schedule, independent
// of completions). The open-loop mode is the one that can overload the
// server: past capacity, a server with admission control sheds requests
// with 429 — reported here as the shed rate — instead of queueing without
// bound.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -concurrency 8 -batch 64 -duration 10s
//	loadgen -positional -batch 16                      # the server's fast path
//	loadgen -arrival 2000 -batch 16 -duration 10s      # open loop, 2000 req/s
//	loadgen -no-batch                                  # opt out of micro-batching
//	loadgen -urls http://h1:8081,http://h2:8082        # fleet mode: consistent-hash
//	                                                   # routing + per-node backpressure
//
// Drift mode streams labeled rows with a mid-stream concept flip into
// POST /v1/ingest (the server must run with ingest and a retrain loop
// enabled) while probing served accuracy, and reports the time the
// server's retrain loop took to recover:
//
//	loadgen -drift -drift-rows 12000 -drift-at 3000    # F1→F7 flip at row 3000
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/loadtest"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		baseURL = flag.String("url", "http://localhost:8080", "parclassd base URL")
		urls    = flag.String("urls", "",
			"comma-separated fleet base URLs (overrides -url): requests route by consistent hash with per-node Retry-After backpressure and dead-node failover")
		model       = flag.String("model", "default", "model name to drive")
		concurrency = flag.Int("concurrency", 4, "concurrent request workers (closed loop)")
		batch       = flag.Int("batch", 32, "rows per request (1 sends single-row requests)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to run")
		requests    = flag.Int("requests", 0, "stop after exactly this many requests (overrides -duration)")
		seed        = flag.Int64("seed", 1, "row generator seed")
		positional  = flag.Bool("positional", false,
			"send positional values/values_rows instead of name→value maps (the server's fast path)")
		arrival = flag.Float64("arrival", 0,
			"open-loop arrival rate in requests/second (0 = closed loop); past server capacity this measures shedding")
		noBatch = flag.Bool("no-batch", false,
			`set "no_batch" on every request so the server skips micro-batch coalescing`)
		levelSync = flag.String("levelsync", "",
			`set "level_sync" on every request: on (level-sync kernel), off (preorder walker), auto/"" (server's setting)`)
		drift = flag.Bool("drift", false,
			"stream a drifting labeled feed into /v1/ingest and measure the retrain loop's time-to-recover (see -drift-* flags)")
		driftFn   = flag.Int("drift-fn", 1, "classification function labeling rows before the flip")
		driftToFn = flag.Int("drift-to", 7, "classification function labeling rows after the flip")
		driftRows = flag.Int("drift-rows", 12000, "total labeled rows to stream in -drift mode")
		driftAt   = flag.Int("drift-at", 3000, "row offset of the concept flip")
		driftPace = flag.Duration("drift-pace", 50*time.Millisecond,
			"sleep between ingest batches, giving the server's retrain loop wall time to react")
	)
	flag.Parse()

	if *drift {
		runDrift(*baseURL, *model, *driftFn, *driftToFn, *driftRows, *driftAt, *batch, *seed, *driftPace)
		return
	}

	var fleet []string
	for _, u := range strings.Split(*urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			fleet = append(fleet, strings.TrimSuffix(u, "/"))
		}
	}
	cfg := loadtest.Config{
		BaseURL:     *baseURL,
		BaseURLs:    fleet,
		Model:       *model,
		Concurrency: *concurrency,
		Batch:       *batch,
		Positional:  *positional,
		NoBatch:     *noBatch,
		LevelSync:   *levelSync,
		Duration:    *duration,
		Requests:    *requests,
		ArrivalRate: *arrival,
		Seed:        *seed,
	}
	target := *baseURL
	if len(fleet) > 0 {
		target = fmt.Sprintf("%d-node fleet %s", len(fleet), strings.Join(fleet, ","))
	}
	schemaURL := *baseURL
	if len(fleet) > 0 {
		schemaURL = fleet[0]
	}
	info, err := loadtest.FetchSchema(schemaURL, *model)
	if err != nil {
		log.Fatalf("fetching model schema: %v", err)
	}
	mode := fmt.Sprintf("closed loop, concurrency=%d", *concurrency)
	if *arrival > 0 {
		mode = fmt.Sprintf("open loop, arrival=%.0f req/s", *arrival)
	}
	log.Printf("driving %s model=%s: %d attrs, %d classes, batch=%d, %s",
		target, *model, len(info.Attrs), len(info.Classes), *batch, mode)

	res, err := loadtest.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.OK == 0 {
		log.Fatalf("no successful requests (%d shed, %d errors)", res.Shed, res.Errors)
	}
	fmt.Printf("requests: %d ok, %d shed (429), %d errors in %v\n",
		res.OK, res.Shed, res.Errors, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %s rows/s (%s req/s ok)\n",
		fmtRate(res.RowsPerSec()), fmtRate(res.ReqPerSec()))
	if res.Shed > 0 {
		fmt.Printf("shed rate: %.1f%% of attempted requests\n", 100*res.ShedRate())
	}
	fmt.Printf("latency: mean=%v p50=%v p95=%v p99=%v max=%v\n",
		res.Mean().Round(time.Microsecond),
		res.Pct(50).Round(time.Microsecond), res.Pct(95).Round(time.Microsecond),
		res.Pct(99).Round(time.Microsecond), res.Max().Round(time.Microsecond))
	if len(res.PerNode) > 0 {
		fmt.Printf("fleet: %d 5xx, %d failover retries\n", res.FiveXX, res.Retries)
		for _, pn := range res.PerNode {
			fmt.Printf("  %-28s ok=%-7d shed=%-6d errors=%-5d 5xx=%-5d backoffs=%d\n",
				pn.URL, pn.OK, pn.Shed, pn.Errors, pn.FiveXX, pn.Backoff)
		}
	}
}

// runDrift is `-drift` mode: the loadtest drift driver against a live
// server, reporting the accuracy crater and recovery point.
func runDrift(baseURL, model string, fn, toFn, rows, at, batch int, seed int64, pace time.Duration) {
	scfg := synth.Config{
		Function: fn, DriftFunction: toFn, DriftAt: at,
		Attrs: 9, Tuples: rows, Seed: seed,
	}
	log.Printf("streaming %s into %s model=%s (batch=%d, pace=%v)",
		scfg.Name(), baseURL, model, batch, pace)
	res, err := loadtest.RunDrift(loadtest.DriftConfig{
		BaseURL:   baseURL,
		Model:     model,
		Synth:     scfg,
		BatchRows: batch,
		Pace:      pace,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested: %d rows in %.1fs (%s rows/s)\n",
		res.RowsIngested, res.Elapsed, fmtRate(res.IngestPerSec))
	fmt.Printf("accuracy: pre-drift %.4f, post-drift min %.4f\n", res.PreDriftAcc, res.MinPostAcc)
	if res.RecoveredAtRow >= 0 {
		fmt.Printf("recovered: %.1fs / %d rows after the flip (at row %d)\n",
			res.RecoverySecs, res.RecoveredAtRow-at, res.RecoveredAtRow)
	} else {
		fmt.Printf("recovered: NOT within %d rows — is the server running with -ingest-window and -retrain-interval?\n", rows-at)
	}
	fmt.Printf("server: %d retrains, %d swaps, %d rejects\n", res.Retrains, res.Swaps, res.Rejects)
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
