package main

// `-cluster` mode: the multi-process clusterbench harness. It boots a
// 3-node parclassd fleet from a prebuilt binary (real processes, real
// ports, no docker), measures the fleet's closed-loop capacity, then
// drives it open-loop at twice that rate while hard-killing one node
// (SIGKILL), publishing a model to a survivor during the outage, and
// restarting the dead node on its old port. Acceptance:
//
//   - zero 5xx on admitted requests for the whole scenario (shedding
//     with 429 is the designed overload answer, transport failures to
//     the dead node are failovers, not errors);
//   - the restarted node converges to the missed publish by pull-based
//     anti-entropy alone, and the convergence time is measured.
//
// The row appends to the report at -out as "cluster_runs" next to the
// build/serve/drift sweeps. `make clusterbench` builds bin/parclassd and
// runs this.

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	parclass "repro"
	"repro/internal/cluster"
	"repro/internal/loadtest"
)

// clusterRun is one kill-and-restart fleet measurement (`-cluster` mode).
type clusterRun struct {
	Nodes   int    `json:"nodes"`
	Dataset string `json:"dataset"` // the boot model's synthetic spec
	// BaselineReqPerSec is the fleet's measured closed-loop capacity; the
	// overload phase runs open-loop at OverloadFactor times it.
	BaselineReqPerSec float64 `json:"baseline_req_per_sec"`
	ArrivalRate       float64 `json:"arrival_rate"`
	DurationSecs      float64 `json:"duration_secs"`
	KilledNode        string  `json:"killed_node"`
	// ConvergeSecs is restart→converged: how long anti-entropy took to
	// pull the publish the node missed while dead.
	ConvergeSecs float64               `json:"converge_secs"`
	OK           int64                 `json:"ok"`
	Shed         int64                 `json:"shed"`
	Errors       int64                 `json:"errors"`
	FiveXX       int64                 `json:"fivexx"`
	Retries      int64                 `json:"retries"`
	ShedRate     float64               `json:"shed_rate,omitempty"`
	RowsPerSec   float64               `json:"rows_per_sec"`
	PerNode      []loadtest.NodeResult `json:"per_node"`
}

// clusterNode is one fleet member's process handle.
type clusterNode struct {
	id   string
	addr string // host:port, stable across restarts
	args []string
	cmd  *exec.Cmd
}

func (cn *clusterNode) url() string { return "http://" + cn.addr }

// start launches the parclassd process and waits until /v1/healthz
// answers 200 (the boot model has trained and the listener is up).
func (cn *clusterNode) start(bin string) error {
	cmd := exec.Command(bin, cn.args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("node %s: %w", cn.id, err)
	}
	cn.cmd = cmd
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(cn.url() + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	cn.kill()
	return fmt.Errorf("node %s: not healthy within 60s", cn.id)
}

// kill SIGKILLs the process — no graceful shutdown, the crash the
// harness exists to survive — and reaps it.
func (cn *clusterNode) kill() {
	if cn.cmd == nil || cn.cmd.Process == nil {
		return
	}
	cn.cmd.Process.Kill()
	cn.cmd.Wait()
	cn.cmd = nil
}

// clusterStatus fetches a node's /v1/cluster document.
func clusterStatus(baseURL string) (cluster.Status, error) {
	var st cluster.Status
	resp, err := http.Get(baseURL + "/v1/cluster")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, fmt.Errorf("GET /v1/cluster: %d", resp.StatusCode)
	}
	return st, decodeBody(resp.Body, &st)
}

// clusterBench orchestrates the scenario and appends the cluster_runs row.
func clusterBench(outPath, bin string, seed int64, arrival float64, dur time.Duration) error {
	if _, err := os.Stat(bin); err != nil {
		return fmt.Errorf("-parclassd: %w (run `make clusterbench`, which builds it first)", err)
	}
	const bootSpec = "F1-A9-D10K"

	// Reserve three ports; peers reference them across restarts, and the
	// restarted node must reclaim its own.
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		cn := &clusterNode{id: fmt.Sprintf("%c", 'a'+i), addr: addrs[i]}
		cn.args = []string{
			"-addr", cn.addr, "-node-id", cn.id, "-self-url", cn.url(),
			"-synthetic", bootSpec, "-seed", fmt.Sprint(seed),
			"-retrain-interval", "0", "-anti-entropy", "250ms",
		}
		peers := ""
		for j, a := range addrs {
			if j != i {
				if peers != "" {
					peers += ","
				}
				peers += "http://" + a
			}
		}
		cn.args = append(cn.args, "-peers", peers)
		nodes[i] = cn
	}
	for _, cn := range nodes {
		if err := cn.start(bin); err != nil {
			return err
		}
		defer cn.kill()
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	urls := []string{a.url(), b.url(), c.url()}
	log.Printf("cluster: 3 nodes up on %v (boot model %s)", addrs, bootSpec)

	// Calibrate: closed-loop fleet capacity, then overload at 2x.
	cal, err := loadtest.Run(loadtest.Config{
		BaseURLs: urls, Positional: true, Batch: 4,
		Concurrency: 8, Duration: 1500 * time.Millisecond, Seed: seed,
	})
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}
	baseline := cal.ReqPerSec()
	if arrival <= 0 {
		arrival = 2 * baseline
		if arrival < 100 {
			arrival = 100
		}
	}
	log.Printf("cluster: fleet capacity %.0f req/s closed-loop, overloading open-loop at %.0f req/s for %v",
		baseline, arrival, dur)

	// The overload run spans the whole kill/publish/restart scenario.
	loadDone := make(chan struct{})
	var res *loadtest.Result
	var loadErr error
	go func() {
		defer close(loadDone)
		res, loadErr = loadtest.Run(loadtest.Config{
			BaseURLs: urls, Positional: true, Batch: 4,
			ArrivalRate: arrival, Duration: dur, Seed: seed + 1,
		})
	}()

	time.Sleep(dur / 5)
	log.Printf("cluster: SIGKILL node %s", b.id)
	b.kill()

	time.Sleep(dur / 8)
	// Publish a different concept to a survivor while b is dead; the fleet
	// fans it out, b must pick it up after restart by anti-entropy alone.
	pub, err := trainPublishModel(seed)
	if err != nil {
		return err
	}
	resp, err := http.Post(a.url()+"/v1/models/default", "application/json", bytes.NewReader(pub))
	if err != nil {
		return fmt.Errorf("publish during outage: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("publish during outage: status %d", resp.StatusCode)
	}
	want, err := waitDigest(c.url(), "", 20*time.Second)
	if err != nil {
		return fmt.Errorf("surviving peer never converged: %w", err)
	}
	log.Printf("cluster: published to %s during outage; survivors at version %s", a.id, want.Version)

	time.Sleep(dur / 8)
	log.Printf("cluster: restarting node %s on %s", b.id, b.addr)
	restart := time.Now()
	if err := b.start(bin); err != nil {
		return err
	}
	got, err := waitDigest(b.url(), want.Version, 30*time.Second)
	if err != nil {
		return fmt.Errorf("restarted node never converged: %w", err)
	}
	if got.Hash != want.Hash {
		return fmt.Errorf("restarted node converged to hash %s, fleet has %s", got.Hash, want.Hash)
	}
	converge := time.Since(restart)
	log.Printf("cluster: node %s converged to %s in %.2fs (anti-entropy pull)",
		b.id, got.Version, converge.Seconds())

	<-loadDone
	if loadErr != nil {
		return loadErr
	}
	log.Printf("cluster: overload run ok=%d shed=%d errors=%d 5xx=%d retries=%d",
		res.OK, res.Shed, res.Errors, res.FiveXX, res.Retries)
	if res.FiveXX != 0 {
		return fmt.Errorf("%d admitted requests answered 5xx during kill/restart — the zero-5xx gate failed", res.FiveXX)
	}
	if res.OK == 0 {
		return fmt.Errorf("no successful requests during the overload run")
	}

	row := clusterRun{
		Nodes: 3, Dataset: bootSpec,
		BaselineReqPerSec: baseline, ArrivalRate: arrival,
		DurationSecs: dur.Seconds(), KilledNode: b.id,
		ConvergeSecs: converge.Seconds(),
		OK:           res.OK, Shed: res.Shed, Errors: res.Errors,
		FiveXX: res.FiveXX, Retries: res.Retries,
		ShedRate: res.ShedRate(), RowsPerSec: res.RowsPerSec(),
		PerNode: res.PerNode,
	}
	return appendClusterRun(outPath, seed, row)
}

// trainPublishModel builds the artifact published mid-outage: a concept
// (F7) distinct from the boot model, so convergence is observable.
func trainPublishModel(seed int64) ([]byte, error) {
	ds, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 7, Attrs: 9, Tuples: 10000, Seed: seed + 100,
	})
	if err != nil {
		return nil, err
	}
	m, err := parclass.Train(ds, parclass.Options{MaxDepth: 8})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// waitDigest polls a node's "default" digest entry until its version
// vector moves past the zero-vector seed (wantVersion == "") or matches
// wantVersion exactly.
func waitDigest(baseURL, wantVersion string, timeout time.Duration) (cluster.DigestEntry, error) {
	deadline := time.Now().Add(timeout)
	var last cluster.DigestEntry
	for time.Now().Before(deadline) {
		if st, err := clusterStatus(baseURL); err == nil {
			last = st.Models["default"]
			if wantVersion == "" && last.Version != "" {
				return last, nil
			}
			if wantVersion != "" && last.Version == wantVersion {
				return last, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return last, fmt.Errorf("digest stuck at version %q (want %q) after %v", last.Version, wantVersion, timeout)
}

// appendClusterRun merges the row into the report at outPath, preserving
// the build/serve/drift sections the way -serve and -drift do.
func appendClusterRun(outPath string, seed int64, row clusterRun) error {
	rep, err := loadOrInitReport(outPath, seed)
	if err != nil {
		return err
	}
	rep.ClusterRuns = []clusterRun{row}
	return writeReport(outPath, rep, fmt.Sprintf("1 cluster run, converge=%.2fs", row.ConvergeSecs))
}
