// Command benchjson runs the build-phase observability sweep: it trains
// real trees (no simulation) over the paper's F1/F7 dataset pair for each
// parallel scheme and processor count, and emits one machine-readable JSON
// document with the measured per-phase (E/W/S/barrier/idle) breakdown,
// per-worker busy seconds, skew, parallel efficiency and speedup over the
// serial build. `make bench` runs it and checks the result in as
// BENCH_build.json so phase-balance regressions show up in review diffs.
//
// Usage:
//
//	benchjson -datasets F1-A32-D20K,F7-A32-D20K -procs 1,2,4 -out BENCH_build.json
//
// Comparison mode diffs two such documents run by run and fails on
// regressions (used by `make benchcmp`):
//
//	benchjson -compare old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	parclass "repro"
	"repro/internal/bench"
)

// run is one (dataset, algorithm, procs) build measurement.
type run struct {
	Dataset      string  `json:"dataset"`
	Algorithm    string  `json:"algorithm"`
	Procs        int     `json:"procs"`
	BuildSeconds float64 `json:"build_seconds"`
	SetupSeconds float64 `json:"setup_seconds"`
	SortSeconds  float64 `json:"sort_seconds"`
	Nodes        int     `json:"nodes"`
	Levels       int     `json:"levels"`

	// Allocator traffic of the Train call (runtime.MemStats deltas), the
	// quantity the per-worker scratch arenas exist to minimize.
	MallocsDelta    uint64 `json:"mallocs_delta"`
	AllocBytesDelta uint64 `json:"alloc_bytes_delta"`

	PhaseSeconds   map[string]float64 `json:"phase_seconds"`
	WorkerBusySecs []float64          `json:"worker_busy_seconds"`
	Skew           float64            `json:"skew"`
	Efficiency     float64            `json:"efficiency"`
	Speedup        float64            `json:"speedup_vs_serial"`
}

type report struct {
	Tool     string   `json:"tool"`
	GoOS     string   `json:"goos"`
	GoArch   string   `json:"goarch"`
	NumCPU   int      `json:"num_cpu"`
	Seed     int64    `json:"seed"`
	Warmup   bool     `json:"warmup"`
	Datasets []string `json:"datasets"`
	Runs     []run    `json:"runs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		datasets = flag.String("datasets", "F1-A32-D20K,F7-A32-D20K,F7-A32-D100K",
			"comma-separated synthetic specs Fx-Ay-DzK")
		procsList = flag.String("procs", "1,2,4", "comma-separated processor counts")
		algs      = flag.String("algorithms", "basic,fwk,mwk,subtree",
			"comma-separated parallel schemes (serial at P=1 always runs as the baseline)")
		seed       = flag.Int64("seed", 1, "synthetic generator seed")
		out        = flag.String("out", "", "write JSON here instead of stdout")
		warmup     = flag.Bool("warmup", true, "run one untimed serial build first to warm the heap")
		compare    = flag.Bool("compare", false, "compare two reports (args: old.json new.json) and fail on >10% build-time regressions")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two arguments: old.json new.json")
		}
		if err := compareReports(flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	procs, err := parseInts(*procsList)
	if err != nil {
		log.Fatal(err)
	}
	rep := report{
		Tool:   "benchjson",
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Seed:   *seed,
		Warmup: *warmup,
	}

	for _, spec := range splitList(*datasets) {
		rep.Datasets = append(rep.Datasets, spec)
		ds, err := loadDataset(spec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if *warmup {
			if _, err := parclass.Train(ds, parclass.Options{Algorithm: parclass.Serial}); err != nil {
				log.Fatalf("%s warmup: %v", spec, err)
			}
		}
		serial, err := measure(ds, spec, parclass.Serial, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		rep.Runs = append(rep.Runs, serial)
		log.Printf("%-14s serial  P=1 build=%.3fs", spec, serial.BuildSeconds)
		for _, name := range splitList(*algs) {
			alg, err := parseAlg(name)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range procs {
				r, err := measure(ds, spec, alg, p, serial.BuildSeconds)
				if err != nil {
					log.Fatal(err)
				}
				rep.Runs = append(rep.Runs, r)
				log.Printf("%-14s %-7s P=%d build=%.3fs speedup=%.2f skew=%.2f eff=%.0f%%",
					spec, name, p, r.BuildSeconds, r.Speedup, r.Skew, 100*r.Efficiency)
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // materialize the final allocation profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d runs)", *out, len(rep.Runs))
}

// measure trains once and folds the model's BuildTrace into a run record.
func measure(ds *parclass.Dataset, spec string, alg parclass.Algorithm, procs int, serialBuild float64) (run, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := parclass.Train(ds, parclass.Options{Algorithm: alg, Procs: procs})
	runtime.ReadMemStats(&after)
	if err != nil {
		return run{}, fmt.Errorf("%s/%s/P=%d: %w", spec, alg, procs, err)
	}
	tm := m.Timings()
	st := m.Stats()
	r := run{
		Dataset:      spec,
		Algorithm:    strings.ToLower(alg.String()),
		Procs:        procs,
		BuildSeconds: tm.Build.Seconds(),
		SetupSeconds: tm.Setup.Seconds(),
		SortSeconds:  tm.Sort.Seconds(),
		Nodes:        st.Nodes,
		Levels:       st.Levels,

		MallocsDelta:    after.Mallocs - before.Mallocs,
		AllocBytesDelta: after.TotalAlloc - before.TotalAlloc,
	}
	if serialBuild > 0 && r.BuildSeconds > 0 {
		r.Speedup = serialBuild / r.BuildSeconds
	}
	bt := m.BuildTrace()
	if bt == nil {
		return r, nil
	}
	tot := bt.Totals()
	r.PhaseSeconds = map[string]float64{
		"eval":    tot.Eval,
		"winner":  tot.Winner,
		"split":   tot.Split,
		"barrier": tot.Barrier,
		"idle":    tot.Idle,
	}
	for _, wt := range bt.WorkerTotals() {
		r.WorkerBusySecs = append(r.WorkerBusySecs, wt.Busy())
	}
	r.Skew = bt.Skew()
	r.Efficiency = bt.Efficiency()
	return r, nil
}

// compareReports diffs two benchjson documents run by run (matched on
// dataset, algorithm and processor count), prints per-run build-time ratios
// and allocation deltas, and returns an error when any matched run regressed
// by more than 10% — so `make benchcmp` fails the build on a perf loss.
func compareReports(oldPath, newPath string) error {
	load := func(path string) (map[string]run, []string, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var rep report
		if err := json.Unmarshal(buf, &rep); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]run, len(rep.Runs))
		var order []string
		for _, r := range rep.Runs {
			key := fmt.Sprintf("%s/%s/P=%d", r.Dataset, r.Algorithm, r.Procs)
			m[key] = r
			order = append(order, key)
		}
		return m, order, nil
	}
	oldRuns, _, err := load(oldPath)
	if err != nil {
		return err
	}
	newRuns, order, err := load(newPath)
	if err != nil {
		return err
	}

	const regressionTolerance = 1.10
	fmt.Printf("%-32s %10s %10s %8s %12s\n", "run", "old(s)", "new(s)", "ratio", "mallocs")
	var regressions []string
	matched := 0
	for _, key := range order {
		nr := newRuns[key]
		or, ok := oldRuns[key]
		if !ok {
			fmt.Printf("%-32s %10s %10.3f %8s %12d  (no baseline)\n",
				key, "-", nr.BuildSeconds, "-", nr.MallocsDelta)
			continue
		}
		matched++
		ratio := or.BuildSeconds / nr.BuildSeconds
		mark := ""
		if nr.BuildSeconds > or.BuildSeconds*regressionTolerance {
			mark = "  REGRESSION"
			regressions = append(regressions, key)
		}
		fmt.Printf("%-32s %10.3f %10.3f %7.2fx %12d%s\n",
			key, or.BuildSeconds, nr.BuildSeconds, ratio, nr.MallocsDelta, mark)
	}
	if matched == 0 {
		return fmt.Errorf("no runs of %s match any run of %s", newPath, oldPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d run(s) regressed by more than %.0f%%: %s",
			len(regressions), (regressionTolerance-1)*100, strings.Join(regressions, ", "))
	}
	fmt.Printf("%d runs compared, no regression above %.0f%%\n", matched, (regressionTolerance-1)*100)
	return nil
}

func loadDataset(spec string, seed int64) (*parclass.Dataset, error) {
	d, err := bench.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return parclass.Synthetic(parclass.SyntheticConfig{
		Function: d.Function, Attrs: d.Attrs, Tuples: d.Tuples, Seed: seed,
	})
}

func parseAlg(name string) (parclass.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "serial":
		return parclass.Serial, nil
	case "basic":
		return parclass.Basic, nil
	case "fwk":
		return parclass.FWK, nil
	case "mwk":
		return parclass.MWK, nil
	case "subtree":
		return parclass.Subtree, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
