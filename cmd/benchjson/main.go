// Command benchjson runs the build-phase observability sweep: it trains
// real trees (no simulation) over the paper's F1/F7 dataset pair for each
// parallel scheme and processor count, and emits one machine-readable JSON
// document with the measured per-phase (E/W/S/barrier/idle) breakdown,
// per-worker busy seconds, skew, parallel efficiency and speedup over the
// serial build. `make bench` runs it and checks the result in as
// BENCH_build.json so phase-balance regressions show up in review diffs.
//
// Usage:
//
//	benchjson -datasets F1-A32-D20K,F7-A32-D20K -procs 1,2,4 -out BENCH_build.json
//
// Comparison mode diffs two such documents run by run and fails on
// regressions (used by `make benchcmp`):
//
//	benchjson -compare old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	parclass "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/ingest"
	"repro/internal/loadtest"
	"repro/internal/serve"
	"repro/internal/synth"
)

// run is one (dataset, algorithm, procs) build measurement. Forest rows
// (from -forest-trees) also carry Trees and the fused-vote serve rate.
type run struct {
	Dataset string `json:"dataset"`
	// Algorithm is "forest" for -forest-trees rows.
	Algorithm string `json:"algorithm"`
	Procs     int    `json:"procs"`
	// Trees is the ensemble size of a forest row (omitted for single-tree
	// builds, so pre-forest baselines keep their compare keys).
	Trees        int     `json:"trees,omitempty"`
	BuildSeconds float64 `json:"build_seconds"`
	SetupSeconds float64 `json:"setup_seconds"`
	SortSeconds  float64 `json:"sort_seconds"`
	Nodes        int     `json:"nodes"`
	Levels       int     `json:"levels"`

	// Allocator traffic of the Train call (runtime.MemStats deltas), the
	// quantity the per-worker scratch arenas exist to minimize.
	MallocsDelta    uint64 `json:"mallocs_delta"`
	AllocBytesDelta uint64 `json:"alloc_bytes_delta"`

	PhaseSeconds   map[string]float64 `json:"phase_seconds"`
	WorkerBusySecs []float64          `json:"worker_busy_seconds"`
	Skew           float64            `json:"skew"`
	Efficiency     float64            `json:"efficiency"`
	Speedup        float64            `json:"speedup_vs_serial"`

	// PredictRowsPerSec is the fused batch-vote throughput of a forest row
	// (positional rows through PredictValuesBatch).
	PredictRowsPerSec float64 `json:"predict_rows_per_sec,omitempty"`
}

// driftRun is one drift-recovery measurement (`-drift` mode): the loadtest
// drift driver run against an in-process server with ingest and a periodic
// retrain loop enabled. The accuracy timeline (Points) stays in the report
// so recovery-shape regressions show in review diffs, not just the scalar.
type driftRun struct {
	Dataset         string  `json:"dataset"` // stream spec, e.g. F1toF7-A9-D12K
	WindowCap       int     `json:"window_cap"`
	RetrainInterval float64 `json:"retrain_interval_secs"`
	RetrainMinRows  int     `json:"retrain_min_rows"`
	loadtest.DriftResult
}

// serveRun is one serving-throughput measurement (`-serve` mode): loadgen's
// driver (internal/loadtest) run against an in-process model server.
type serveRun struct {
	Dataset string `json:"dataset"`
	// Mode is "inline", "batched", "batched-overload", the HTTP forest A/B
	// pair "batched-forest", or the in-process kernel A/B pair
	// "kernel-walker"/"kernel-levelsync".
	Mode       string `json:"mode"`
	Positional bool   `json:"positional"`
	// Trees is the serving ensemble size (omitted for single-tree rows, so
	// pre-forest baselines keep their compare keys).
	Trees int `json:"trees,omitempty"`
	// LevelSync is the batch-kernel selection the row ran under ("on",
	// "off"; omitted when the default auto mode served).
	LevelSync   string  `json:"levelsync,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`  // closed loop
	ArrivalRate float64 `json:"arrival_rate,omitempty"` // open loop, req/s
	BatchPerReq int     `json:"batch_per_request"`
	QueueDepth  int     `json:"queue_depth,omitempty"` // admission queue cap (batched modes)
	RowsPerSec  float64 `json:"rows_per_sec"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50US       int64   `json:"p50_us"`
	P95US       int64   `json:"p95_us"`
	P99US       int64   `json:"p99_us"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	ShedRate    float64 `json:"shed_rate,omitempty"`
}

type report struct {
	Tool      string     `json:"tool"`
	GoOS      string     `json:"goos"`
	GoArch    string     `json:"goarch"`
	NumCPU    int        `json:"num_cpu"`
	Seed      int64      `json:"seed"`
	Warmup    bool       `json:"warmup"`
	Datasets  []string   `json:"datasets"`
	Runs      []run      `json:"runs"`
	ServeRuns []serveRun `json:"serve_runs,omitempty"`
	// DriftRuns are online-learning drift scenarios (`-drift` mode):
	// measured time-to-recover after a mid-stream concept flip, with the
	// retrain-loop counters that produced the recovery.
	DriftRuns []driftRun `json:"drift_runs,omitempty"`
	// ClusterRuns are multi-process kill-and-restart fleet scenarios
	// (`-cluster` mode, see cluster.go): overload survival counters and
	// the restarted node's anti-entropy convergence time.
	ClusterRuns []clusterRun `json:"cluster_runs,omitempty"`
	// LevelSyncCrossoverRows is the measured batch size where the
	// level-synchronous kernel overtakes the preorder walker on this host
	// (`-serve` A/B sweep); 0 means the walker won at every size tried.
	// parclass.DefaultLevelSyncCrossover should track this value.
	LevelSyncCrossoverRows int `json:"levelsync_crossover_rows,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		datasets = flag.String("datasets", "F1-A32-D20K,F7-A32-D20K,F7-A32-D100K",
			"comma-separated synthetic specs Fx-Ay-DzK")
		procsList = flag.String("procs", "1,2,4", "comma-separated processor counts")
		algs      = flag.String("algorithms", "basic,fwk,mwk,subtree,recpar,hist",
			"comma-separated parallel schemes (serial at P=1 always runs as the baseline)")
		histBig = flag.String("hist-datasets", "F7-A9-D1000K",
			"comma-separated specs measured with hist only (exact engines would take hours at this scale); empty disables")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")
		out       = flag.String("out", "", "write JSON here instead of stdout")
		warmup    = flag.Bool("warmup", true, "run one untimed serial build first to warm the heap")
		repeat    = flag.Int("repeat", 1, "train each cell this many times and keep the fastest (damps scheduler noise on oversubscribed hosts)")
		compare   = flag.Bool("compare", false, "compare two reports (args: old.json new.json) and fail on >10% build-time regressions")
		serveMode = flag.Bool("serve", false,
			"run the serving benchmark instead of the build sweep: loadgen's driver against an in-process server, appending serve_runs to -out")
		forestTrees = flag.String("forest-trees", "",
			"comma-separated forest sizes to measure (build wall clock + fused-vote serve rate per size); empty disables")
		forestSpec = flag.String("forest-dataset", "F7-A32-D20K", "synthetic spec for the -forest-trees sweep")
		serveSpec  = flag.String("serve-dataset", "F7-A32-D20K", "synthetic spec for the -serve model")
		serveDur   = flag.Duration("serve-duration", 5*time.Second, "length of each -serve measurement")
		serveConc  = flag.Int("serve-concurrency", 32, "closed-loop concurrency for -serve")
		serveRows  = flag.Int("serve-batch", 16, "rows per request for -serve")
		driftMode  = flag.Bool("drift", false,
			"measure online drift recovery: serve an F1 model with ingest + a retrain loop, stream an F1→F7 drifting feed, report time-to-recover")
		driftRows     = flag.Int("drift-rows", 12000, "total labeled rows streamed in -drift mode")
		driftAt       = flag.Int("drift-at", 3000, "row offset of the F1→F7 concept flip in -drift mode")
		driftWindow   = flag.Int("drift-window", 4000, "ingest window capacity in -drift mode")
		driftInterval = flag.Duration("drift-interval", 200*time.Millisecond, "retrain loop period in -drift mode")
		clusterMode   = flag.Bool("cluster", false,
			"run the multi-process cluster harness: boot a 3-node parclassd fleet, kill and restart a node under 2x open-loop overload, measure anti-entropy convergence (see -parclassd)")
		clusterBin = flag.String("parclassd", "bin/parclassd",
			"prebuilt parclassd binary for -cluster (`make clusterbench` builds it)")
		clusterDur = flag.Duration("cluster-duration", 8*time.Second,
			"length of the -cluster overload run spanning the kill/publish/restart scenario")
		clusterArrival = flag.Float64("cluster-arrival", 0,
			"open-loop arrival rate for -cluster in req/s (0 = 2x the measured closed-loop fleet capacity)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two arguments: old.json new.json")
		}
		if err := compareReports(flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *serveMode {
		if err := serveBench(*out, *serveSpec, *seed, *serveDur, *serveConc, *serveRows); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *driftMode {
		if err := driftBench(*out, *seed, *driftRows, *driftAt, *driftWindow, *driftInterval); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *clusterMode {
		if err := clusterBench(*out, *clusterBin, *seed, *clusterArrival, *clusterDur); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	procs, err := parseInts(*procsList)
	if err != nil {
		log.Fatal(err)
	}
	rep := report{
		Tool:   "benchjson",
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Seed:   *seed,
		Warmup: *warmup,
	}

	for _, spec := range splitList(*datasets) {
		rep.Datasets = append(rep.Datasets, spec)
		ds, err := loadDataset(spec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if *warmup {
			if _, err := parclass.Train(ds, parclass.Options{Algorithm: parclass.Serial}); err != nil {
				log.Fatalf("%s warmup: %v", spec, err)
			}
		}
		serial, err := measureBest(ds, spec, parclass.Serial, 1, 0, *repeat)
		if err != nil {
			log.Fatal(err)
		}
		rep.Runs = append(rep.Runs, serial)
		log.Printf("%-14s serial  P=1 build=%.3fs", spec, serial.BuildSeconds)
		for _, name := range splitList(*algs) {
			alg, err := parseAlg(name)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range procs {
				r, err := measureBest(ds, spec, alg, p, serial.BuildSeconds, *repeat)
				if err != nil {
					log.Fatal(err)
				}
				rep.Runs = append(rep.Runs, r)
				log.Printf("%-14s %-7s P=%d build=%.3fs speedup=%.2f skew=%.2f eff=%.0f%%",
					spec, name, p, r.BuildSeconds, r.Speedup, r.Skew, 100*r.Efficiency)
			}
		}
	}

	// Hist-only big datasets: the approximate engine's reason to exist is
	// row counts where the exact engines' sort becomes the build. No serial
	// baseline is run (it would dominate the sweep's wall clock), so these
	// rows carry no speedup and compare only against their own history.
	for _, spec := range splitList(*histBig) {
		ds, err := loadDataset(spec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range procs {
			r, err := measureBest(ds, spec, parclass.Hist, p, 0, *repeat)
			if err != nil {
				log.Fatal(err)
			}
			rep.Runs = append(rep.Runs, r)
			log.Printf("%-14s %-7s P=%d build=%.3fs skew=%.2f eff=%.0f%%",
				spec, "hist", p, r.BuildSeconds, r.Skew, 100*r.Efficiency)
		}
	}

	// Forest rows: ensemble build wall clock plus the fused batch-vote
	// serve rate, one row per tree count.
	if sizes, err := parseInts(*forestTrees); err == nil && len(sizes) > 0 {
		ds, err := loadDataset(*forestSpec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range sizes {
			r, err := measureForest(ds, *forestSpec, n, *seed)
			if err != nil {
				log.Fatal(err)
			}
			rep.Runs = append(rep.Runs, r)
			log.Printf("%-14s forest  T=%-3d build=%.3fs predict=%s rows/s",
				*forestSpec, n, r.BuildSeconds, fmtServeRate(r.PredictRowsPerSec))
		}
	} else if err != nil && *forestTrees != "" {
		log.Fatal(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // materialize the final allocation profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d runs)", *out, len(rep.Runs))
}

// measureBest runs measure n times and keeps the fastest build. On a host
// with fewer cores than workers a single run's wall clock is hostage to the
// scheduler; the minimum is the stable statistic.
func measureBest(ds *parclass.Dataset, spec string, alg parclass.Algorithm, procs int, serialBuild float64, n int) (run, error) {
	best, err := measure(ds, spec, alg, procs, serialBuild)
	if err != nil {
		return run{}, err
	}
	for i := 1; i < n; i++ {
		r, err := measure(ds, spec, alg, procs, serialBuild)
		if err != nil {
			return run{}, err
		}
		if r.BuildSeconds < best.BuildSeconds {
			best = r
		}
	}
	return best, nil
}

// measure trains once and folds the model's BuildTrace into a run record.
func measure(ds *parclass.Dataset, spec string, alg parclass.Algorithm, procs int, serialBuild float64) (run, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := parclass.Train(ds, parclass.Options{Algorithm: alg, Procs: procs})
	runtime.ReadMemStats(&after)
	if err != nil {
		return run{}, fmt.Errorf("%s/%s/P=%d: %w", spec, alg, procs, err)
	}
	tm := m.Timings()
	st := m.Stats()
	r := run{
		Dataset:      spec,
		Algorithm:    strings.ToLower(alg.String()),
		Procs:        procs,
		BuildSeconds: tm.Build.Seconds(),
		SetupSeconds: tm.Setup.Seconds(),
		SortSeconds:  tm.Sort.Seconds(),
		Nodes:        st.Nodes,
		Levels:       st.Levels,

		MallocsDelta:    after.Mallocs - before.Mallocs,
		AllocBytesDelta: after.TotalAlloc - before.TotalAlloc,
	}
	if serialBuild > 0 && r.BuildSeconds > 0 {
		r.Speedup = serialBuild / r.BuildSeconds
	}
	bt := m.BuildTrace()
	if bt == nil {
		return r, nil
	}
	tot := bt.Totals()
	r.PhaseSeconds = map[string]float64{
		"eval":    tot.Eval,
		"winner":  tot.Winner,
		"split":   tot.Split,
		"barrier": tot.Barrier,
		"idle":    tot.Idle,
		"bin":     tot.Bin,
	}
	for _, wt := range bt.WorkerTotals() {
		r.WorkerBusySecs = append(r.WorkerBusySecs, wt.Busy())
	}
	r.Skew = bt.Skew()
	r.Efficiency = bt.Efficiency()
	return r, nil
}

// measureForest trains an n-tree forest and measures the fused batch-vote
// serve rate: positional string rows through Forest.PredictValuesBatch,
// the same path the server's micro-batcher dispatches into.
func measureForest(ds *parclass.Dataset, spec string, n int, seed int64) (run, error) {
	start := time.Now()
	f, err := parclass.TrainForest(ds, parclass.Options{
		Trees: n, ForestSeed: seed, FeatureFrac: 0.7,
	})
	if err != nil {
		return run{}, fmt.Errorf("%s/forest/T=%d: %w", spec, n, err)
	}
	wall := time.Since(start).Seconds()
	if err := f.Compile(); err != nil {
		return run{}, err
	}
	st := f.Stats()
	r := run{
		Dataset:      spec,
		Algorithm:    "forest",
		Procs:        1,
		Trees:        n,
		BuildSeconds: wall,
		Nodes:        st.Nodes,
		Levels:       st.Levels,
	}

	rows := positionalRows(ds, 4096)
	// Warm once, then time whole batches until ~400ms has elapsed; the
	// ratio is stable well before that on every ensemble size.
	if _, err := f.PredictValuesBatch(rows); err != nil {
		return run{}, err
	}
	var done int
	bench := time.Now()
	for time.Since(bench) < 400*time.Millisecond {
		if _, err := f.PredictValuesBatch(rows); err != nil {
			return run{}, err
		}
		done += len(rows)
	}
	r.PredictRowsPerSec = float64(done) / time.Since(bench).Seconds()
	return r, nil
}

// positionalRows re-encodes the first n tuples as positional string rows
// in schema attribute order — the PredictValuesBatch wire form.
func positionalRows(ds *parclass.Dataset, n int) [][]string {
	tbl := ds.Table()
	s := tbl.Schema()
	if n > tbl.NumTuples() {
		n = tbl.NumTuples()
	}
	rows := make([][]string, n)
	for i := range rows {
		tu := tbl.Row(i)
		vals := make([]string, len(s.Attrs))
		for a := range s.Attrs {
			if s.Attrs[a].Kind == dataset.Continuous {
				vals[a] = strconv.FormatFloat(tu.Cont[a], 'g', -1, 64)
			} else {
				vals[a] = s.Attrs[a].Categories[tu.Cat[a]]
			}
		}
		rows[i] = vals
	}
	return rows
}

// compareReports diffs two benchjson documents run by run (matched on
// dataset, algorithm and processor count), prints per-run build-time ratios
// and allocation deltas, and returns an error when any matched run regressed
// by more than 10% — so `make benchcmp` fails the build on a perf loss.
// Serve rows are diffed too (matched on dataset, mode, batch size and the
// forest/levelsync columns when present — absent columns add nothing to the
// key, so rows written before a column existed still match), but only
// informationally: serving throughput on a shared host is too noisy to gate.
func compareReports(oldPath, newPath string) error {
	loadReport := func(path string) (*report, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep report
		if err := json.Unmarshal(buf, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &rep, nil
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	index := func(rep *report) (map[string]run, []string) {
		m := make(map[string]run, len(rep.Runs))
		var order []string
		for _, r := range rep.Runs {
			key := fmt.Sprintf("%s/%s/P=%d", r.Dataset, r.Algorithm, r.Procs)
			// Forest rows get their own key space; single-tree keys are
			// unchanged so old baselines still match ("(no baseline)" for
			// forest rows against a pre-forest file is expected).
			if r.Trees > 0 {
				key += fmt.Sprintf("/T=%d", r.Trees)
			}
			m[key] = r
			order = append(order, key)
		}
		return m, order
	}
	oldRuns, _ := index(oldRep)
	newRuns, order := index(newRep)

	const regressionTolerance = 1.10
	fmt.Printf("%-32s %10s %10s %8s %12s\n", "run", "old(s)", "new(s)", "ratio", "mallocs")
	var regressions []string
	matched := 0
	for _, key := range order {
		nr := newRuns[key]
		or, ok := oldRuns[key]
		if !ok {
			fmt.Printf("%-32s %10s %10.3f %8s %12d  (no baseline)\n",
				key, "-", nr.BuildSeconds, "-", nr.MallocsDelta)
			continue
		}
		matched++
		ratio := or.BuildSeconds / nr.BuildSeconds
		mark := ""
		if nr.BuildSeconds > or.BuildSeconds*regressionTolerance {
			mark = "  REGRESSION"
			regressions = append(regressions, key)
		}
		fmt.Printf("%-32s %10.3f %10.3f %7.2fx %12d%s\n",
			key, or.BuildSeconds, nr.BuildSeconds, ratio, nr.MallocsDelta, mark)
	}
	if matched == 0 {
		return fmt.Errorf("no runs of %s match any run of %s", newPath, oldPath)
	}
	compareServeRuns(oldRep, newRep)
	compareClusterRuns(oldRep, newRep)
	if len(regressions) > 0 {
		return fmt.Errorf("%d run(s) regressed by more than %.0f%%: %s",
			len(regressions), (regressionTolerance-1)*100, strings.Join(regressions, ", "))
	}
	fmt.Printf("%d runs compared, no regression above %.0f%%\n", matched, (regressionTolerance-1)*100)
	return nil
}

// serveKey identifies a serve row across reports. Optional columns (Trees,
// LevelSync) extend the key only when set, so rows from files written
// before those columns existed keep matching instead of all showing up as
// "(no baseline)".
func serveKey(r serveRun) string {
	key := fmt.Sprintf("serve/%s/%s/B=%d", r.Dataset, r.Mode, r.BatchPerReq)
	if r.Trees > 0 {
		key += fmt.Sprintf("/T=%d", r.Trees)
	}
	if r.LevelSync != "" {
		key += "/ls=" + r.LevelSync
	}
	return key
}

// compareServeRuns prints the serving-row diff: rows/s old vs new for every
// config present in both files. Informational only — closed-loop serving
// throughput on a shared 1-vCPU host swings far more than the 10% build
// gate, so a serve delta never fails the comparison.
func compareServeRuns(oldRep, newRep *report) {
	if len(newRep.ServeRuns) == 0 {
		return
	}
	oldServe := make(map[string]serveRun, len(oldRep.ServeRuns))
	for _, r := range oldRep.ServeRuns {
		oldServe[serveKey(r)] = r
	}
	fmt.Printf("\n%-52s %12s %12s %8s\n", "serve run (informational)", "old rows/s", "new rows/s", "ratio")
	for _, nr := range newRep.ServeRuns {
		key := serveKey(nr)
		or, ok := oldServe[key]
		if !ok {
			fmt.Printf("%-52s %12s %12.0f %8s  (no baseline)\n", key, "-", nr.RowsPerSec, "-")
			continue
		}
		ratio := 0.0
		if or.RowsPerSec > 0 {
			ratio = nr.RowsPerSec / or.RowsPerSec
		}
		fmt.Printf("%-52s %12.0f %12.0f %7.2fx\n", key, or.RowsPerSec, nr.RowsPerSec, ratio)
	}
	if oc, nc := oldRep.LevelSyncCrossoverRows, newRep.LevelSyncCrossoverRows; nc != 0 || oc != 0 {
		fmt.Printf("levelsync crossover: %d -> %d rows\n", oc, nc)
	}
	fmt.Println()
}

// compareClusterRuns prints the cluster-row diff informationally — a
// 3-node kill/restart scenario on a shared host is even noisier than the
// serve rows, so it never gates. A row with no baseline (the normal case
// when a cluster row first lands, or against any pre-cluster file)
// prints as "(no baseline)" instead of failing the comparison.
func compareClusterRuns(oldRep, newRep *report) {
	if len(newRep.ClusterRuns) == 0 {
		return
	}
	key := func(r clusterRun) string {
		return fmt.Sprintf("cluster/%s/N=%d", r.Dataset, r.Nodes)
	}
	oldRuns := make(map[string]clusterRun, len(oldRep.ClusterRuns))
	for _, r := range oldRep.ClusterRuns {
		oldRuns[key(r)] = r
	}
	fmt.Printf("%-40s %12s %12s\n", "cluster run (informational)", "old conv(s)", "new conv(s)")
	for _, nr := range newRep.ClusterRuns {
		k := key(nr)
		or, ok := oldRuns[k]
		if !ok {
			fmt.Printf("%-40s %12s %12.2f  (no baseline)\n", k, "-", nr.ConvergeSecs)
			continue
		}
		fmt.Printf("%-40s %12.2f %12.2f\n", k, or.ConvergeSecs, nr.ConvergeSecs)
	}
	fmt.Println()
}

// serveBench is `-serve` mode: it trains one model over spec, serves it
// in-process (httptest, so no port or separate process), and drives it with
// internal/loadtest — the same engine as cmd/loadgen — in three
// configurations: inline (micro-batching disabled), batched (server-side
// coalescing on), and batched-overload (open loop driven past the batched
// capacity, so the admission queue's shedding is measurable). The rows
// append to the report at outPath as "serve_runs", next to the build sweep.
func serveBench(outPath, spec string, seed int64, dur time.Duration, conc, batch int) error {
	ds, err := loadDataset(spec, seed)
	if err != nil {
		return err
	}
	model, err := parclass.Train(ds, parclass.Options{Algorithm: parclass.MWK, Procs: runtime.NumCPU()})
	if err != nil {
		return fmt.Errorf("training %s: %w", spec, err)
	}

	runOne := func(mode string, m parclass.Predictor, lsName string, batchRows int, bcfg *serve.BatchConfig, arrival float64) (serveRun, error) {
		s := serve.New(serve.DefaultModelName)
		if lsName != "" {
			lsMode, err := parclass.ParseLevelSyncMode(lsName)
			if err != nil {
				return serveRun{}, err
			}
			s.SetLevelSyncMode(lsMode)
		}
		if _, err := s.Load(serve.DefaultModelName, m, "benchjson -serve "+spec); err != nil {
			return serveRun{}, err
		}
		queueDepth := 0
		if bcfg != nil {
			if err := s.EnableBatching(*bcfg); err != nil {
				return serveRun{}, err
			}
			if queueDepth = bcfg.QueueDepth; queueDepth == 0 {
				queueDepth = serve.DefaultBatchQueueDepth
			}
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()

		cfg := loadtest.Config{
			BaseURL:    ts.URL,
			Positional: true,
			Batch:      batchRows,
			Duration:   dur,
			Seed:       seed,
		}
		if arrival > 0 {
			cfg.ArrivalRate = arrival
		} else {
			cfg.Concurrency = conc
		}
		res, err := loadtest.Run(cfg)
		if err != nil {
			return serveRun{}, err
		}
		if res.OK == 0 {
			return serveRun{}, fmt.Errorf("%s: no successful requests (%d shed, %d errors)", mode, res.Shed, res.Errors)
		}
		sr := serveRun{
			Dataset:     spec,
			Mode:        mode,
			Positional:  true,
			LevelSync:   lsName,
			Concurrency: cfg.Concurrency,
			ArrivalRate: arrival,
			BatchPerReq: batchRows,
			QueueDepth:  queueDepth,
			RowsPerSec:  res.RowsPerSec(),
			ReqPerSec:   res.ReqPerSec(),
			P50US:       res.Pct(50).Microseconds(),
			P95US:       res.Pct(95).Microseconds(),
			P99US:       res.Pct(99).Microseconds(),
			OK:          res.OK,
			Shed:        res.Shed,
			Errors:      res.Errors,
			ShedRate:    res.ShedRate(),
		}
		if nt := m.NumTrees(); nt > 1 {
			sr.Trees = nt
		}
		return sr, nil
	}

	var runs []serveRun
	inline, err := runOne("inline", model, "", batch, nil, 0)
	if err != nil {
		return err
	}
	runs = append(runs, inline)
	log.Printf("%-17s %s rows/s (%s req/s) p99=%v", "inline", fmtServeRate(inline.RowsPerSec),
		fmtServeRate(inline.ReqPerSec), time.Duration(inline.P99US)*time.Microsecond)

	batchedRun, err := runOne("batched", model, "", batch, &serve.BatchConfig{}, 0)
	if err != nil {
		return err
	}
	runs = append(runs, batchedRun)
	log.Printf("%-17s %s rows/s (%s req/s) p99=%v", "batched", fmtServeRate(batchedRun.RowsPerSec),
		fmtServeRate(batchedRun.ReqPerSec), time.Duration(batchedRun.P99US)*time.Microsecond)

	// Overload: open loop at twice the measured batched capacity. The point
	// is not throughput — it's that the admission queue sheds the excess
	// with 429 instead of queueing without bound. Queue depth is kept small
	// here so admission is the binding constraint even when request parsing
	// and dispatching share few cores (on a 1-CPU host the default 256-deep
	// queue never fills: arrival at the queue is itself CPU-limited).
	overloadRate := 2 * batchedRun.ReqPerSec
	if overloadRate < 100 {
		overloadRate = 100
	}
	overload, err := runOne("batched-overload", model, "", batch, &serve.BatchConfig{QueueDepth: 16}, overloadRate)
	if err != nil {
		return err
	}
	runs = append(runs, overload)
	log.Printf("%-17s %s rows/s ok, %.1f%% shed at %.0f req/s offered", "batched-overload",
		fmtServeRate(overload.RowsPerSec), 100*overload.ShedRate, overloadRate)

	// Walker vs level-sync A/B on a 25-member forest. The in-process pair
	// times the fused kernels directly (no HTTP, 256-row batches — the
	// micro-batcher's window size); the HTTP pair drives the same forest
	// through the full serve stack with the server-wide kernel mode forced
	// each way. The sweep also finds the batch size where the level kernel
	// overtakes the walker on this host — the auto-mode crossover.
	forest, err := parclass.TrainForest(ds, parclass.Options{Trees: 25, ForestSeed: seed})
	if err != nil {
		return fmt.Errorf("training %s forest: %w", spec, err)
	}
	abRuns, crossover, err := levelSyncAB(forest, ds, spec)
	if err != nil {
		return err
	}
	runs = append(runs, abRuns...)
	for _, lsName := range []string{"off", "on"} {
		r, err := runOne("batched-forest", forest, lsName, 256, &serve.BatchConfig{}, 0)
		if err != nil {
			return err
		}
		runs = append(runs, r)
		log.Printf("%-17s %s rows/s (%s req/s) p99=%v levelsync=%s", "batched-forest",
			fmtServeRate(r.RowsPerSec), fmtServeRate(r.ReqPerSec),
			time.Duration(r.P99US)*time.Microsecond, lsName)
	}

	// Append to the existing report so the serving rows live beside the
	// build sweep in one document; start a fresh one if outPath is new.
	rep, err := loadOrInitReport(outPath, seed)
	if err != nil {
		return err
	}
	rep.ServeRuns = runs
	rep.LevelSyncCrossoverRows = crossover
	return writeReport(outPath, rep, fmt.Sprintf("%d serve runs", len(runs)))
}

// driftBench is `-drift` mode: it trains an F1 model, serves it in-process
// with ingest and a periodic HIST retrain loop enabled, streams a labeled
// feed whose concept flips F1→F7 at driftAt, and measures how many rows
// (and how much wall time) the accuracy-tripwire retrain loop needs to
// recover to within 0.02 of pre-drift accuracy. The row appends to the
// report at outPath as "drift_runs", next to the build and serve sweeps.
func driftBench(outPath string, seed int64, rows, driftAt, windowCap int, interval time.Duration) error {
	base, err := parclass.Synthetic(parclass.SyntheticConfig{
		Function: 1, Attrs: 9, Tuples: 4000, Seed: seed,
	})
	if err != nil {
		return err
	}
	model, err := parclass.Train(base, parclass.Options{Algorithm: parclass.Hist})
	if err != nil {
		return fmt.Errorf("training drift seed model: %w", err)
	}

	s := serve.New(serve.DefaultModelName)
	if _, err := s.Load(serve.DefaultModelName, model, "benchjson -drift seed model (F1)"); err != nil {
		return err
	}
	if err := s.EnableBatching(serve.BatchConfig{}); err != nil {
		return err
	}
	if err := s.EnableIngest(serve.IngestConfig{WindowCap: windowCap}); err != nil {
		return err
	}
	minRows := 1000
	stop := s.StartRetrainLoop(serve.DefaultModelName, interval, ingest.RetrainConfig{MinRows: minRows})
	defer stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	scfg := synth.Config{
		Function: 1, DriftFunction: 7, DriftAt: driftAt,
		Attrs: 9, Tuples: rows, Seed: seed + 100,
	}
	// Pace at interval/4 so several ingest batches land per retrain cycle;
	// an unpaced run finishes before the first tick.
	res, err := loadtest.RunDrift(loadtest.DriftConfig{
		BaseURL: ts.URL,
		Synth:   scfg,
		Pace:    interval / 4,
	})
	if err != nil {
		return err
	}
	dr := driftRun{
		Dataset:         scfg.Name(),
		WindowCap:       windowCap,
		RetrainInterval: interval.Seconds(),
		RetrainMinRows:  minRows,
		DriftResult:     *res,
	}
	if dr.RecoveredAtRow >= 0 {
		log.Printf("drift %s: pre-drift %.4f, crater %.4f, recovered %.1fs / %d rows after flip (%d retrains, %d swaps, %d rejects)",
			dr.Dataset, dr.PreDriftAcc, dr.MinPostAcc, dr.RecoverySecs,
			dr.RecoveredAtRow-driftAt, dr.Retrains, dr.Swaps, dr.Rejects)
	} else {
		log.Printf("drift %s: pre-drift %.4f, crater %.4f, NOT recovered in %d rows (%d retrains, %d swaps, %d rejects)",
			dr.Dataset, dr.PreDriftAcc, dr.MinPostAcc, rows-driftAt,
			dr.Retrains, dr.Swaps, dr.Rejects)
	}

	rep, err := loadOrInitReport(outPath, seed)
	if err != nil {
		return err
	}
	rep.DriftRuns = []driftRun{dr}
	return writeReport(outPath, rep, "1 drift run")
}

// loadOrInitReport reads the report at path when one exists, or starts a
// fresh document stamped with the host facts, so every append-mode
// section (-serve, -drift, -cluster) shares one merge policy.
func loadOrInitReport(path string, seed int64) (*report, error) {
	var rep report
	if path != "" {
		if buf, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(buf, &rep); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	if rep.Tool == "" {
		rep = report{
			Tool: "benchjson", GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), Seed: seed,
		}
	}
	return &rep, nil
}

// writeReport marshals rep to path (stdout when path is empty).
func writeReport(path string, rep *report, what string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "" {
		os.Stdout.Write(buf)
		return nil
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%s)", path, what)
	return nil
}

// decodeBody decodes one JSON document from r.
func decodeBody(r io.Reader, out any) error {
	return json.NewDecoder(r).Decode(out)
}

// levelSyncAB times the forest's two batch kernels directly — the preorder
// walker (LevelSyncOff) against the level-synchronous kernel (LevelSyncOn)
// over identical 256-row positional batches — and sweeps batch sizes to
// find the auto-mode crossover: the smallest batch where the level kernel
// matches or beats the walker (0 when the walker wins at every size).
func levelSyncAB(f *parclass.Forest, ds *parclass.Dataset, spec string) ([]serveRun, int, error) {
	if err := f.Compile(); err != nil {
		return nil, 0, err
	}
	rate := func(rows [][]string, mode parclass.LevelSyncMode) (float64, error) {
		if _, err := f.PredictValuesBatchMode(rows, mode); err != nil {
			return 0, err
		}
		done := 0
		start := time.Now()
		for time.Since(start) < 300*time.Millisecond {
			if _, err := f.PredictValuesBatchMode(rows, mode); err != nil {
				return 0, err
			}
			done += len(rows)
		}
		return float64(done) / time.Since(start).Seconds(), nil
	}

	rows := positionalRows(ds, 256)
	walker, err := rate(rows, parclass.LevelSyncOff)
	if err != nil {
		return nil, 0, err
	}
	level, err := rate(rows, parclass.LevelSyncOn)
	if err != nil {
		return nil, 0, err
	}
	mk := func(mode, ls string, rps float64, batch int) serveRun {
		return serveRun{
			Dataset: spec, Mode: mode, Positional: true, Trees: f.NumTrees(),
			LevelSync: ls, BatchPerReq: batch, RowsPerSec: rps,
		}
	}
	out := []serveRun{
		mk("kernel-walker", "off", walker, 256),
		mk("kernel-levelsync", "on", level, 256),
	}
	log.Printf("%-17s %s rows/s walker vs %s rows/s levelsync (%.2fx, T=%d, 256-row batches)",
		"kernel A/B", fmtServeRate(walker), fmtServeRate(level), level/walker, f.NumTrees())

	crossover := 0
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		sw := positionalRows(ds, n)
		w, err := rate(sw, parclass.LevelSyncOff)
		if err != nil {
			return nil, 0, err
		}
		l, err := rate(sw, parclass.LevelSyncOn)
		if err != nil {
			return nil, 0, err
		}
		log.Printf("  crossover sweep B=%-5d walker=%s rows/s levelsync=%s rows/s (%.2fx)",
			n, fmtServeRate(w), fmtServeRate(l), l/w)
		if crossover == 0 && l >= w {
			crossover = n
		}
	}
	if crossover > 0 {
		log.Printf("  level-sync crossover: %d rows (DefaultLevelSyncCrossover should match)", crossover)
	} else {
		log.Printf("  level-sync crossover: walker won at every size tried")
	}
	return out, crossover, nil
}

func fmtServeRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

func loadDataset(spec string, seed int64) (*parclass.Dataset, error) {
	d, err := bench.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return parclass.Synthetic(parclass.SyntheticConfig{
		Function: d.Function, Attrs: d.Attrs, Tuples: d.Tuples, Seed: seed,
	})
}

func parseAlg(name string) (parclass.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "serial":
		return parclass.Serial, nil
	case "basic":
		return parclass.Basic, nil
	case "fwk":
		return parclass.FWK, nil
	case "mwk":
		return parclass.MWK, nil
	case "subtree":
		return parclass.Subtree, nil
	case "recpar":
		return parclass.RecordParallel, nil
	case "hist":
		return parclass.Hist, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad processor count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
