// Command datagen generates synthetic classification datasets with the
// Agrawal–Imielinski–Swami generator used in the paper's evaluation and
// writes them as CSV.
//
// Usage:
//
//	datagen -function 7 -attrs 32 -tuples 250000 -out F7-A32-D250K.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		function = flag.Int("function", 1, "classification function 1..10 (paper uses 1 and 7)")
		attrs    = flag.Int("attrs", 9, "total attribute count (>= 9; extras are noise)")
		tuples   = flag.Int("tuples", 10000, "number of tuples")
		seed     = flag.Int64("seed", 1, "generator seed")
		perturb  = flag.Float64("perturb", 0.05, "continuous-value perturbation fraction")
		noise    = flag.Float64("label-noise", 0, "label flip probability")
		classes  = flag.Int("classes", 0, "class count (default 2; F1 supports 3, F7-F10 support 2..26)")
		out      = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	cfg := synth.Config{
		Function:     *function,
		Attrs:        *attrs,
		Tuples:       *tuples,
		Seed:         *seed,
		Perturbation: *perturb,
		LabelNoise:   *noise,
		Classes:      *classes,
	}
	tbl, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := tbl.WriteCSVFile(*out); err != nil {
		log.Fatal(err)
	}
	hist := tbl.ClassHistogram()
	dist := ""
	for i, n := range hist {
		if i > 0 {
			dist += " "
		}
		dist += fmt.Sprintf("%s=%d", tbl.Schema().Classes[i], n)
	}
	fmt.Printf("%s: wrote %d tuples, %d attributes to %s (%s)\n",
		cfg.Name(), tbl.NumTuples(), tbl.Schema().NumAttrs(), *out, dist)
}
