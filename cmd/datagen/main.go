// Command datagen generates synthetic classification datasets with the
// Agrawal–Imielinski–Swami generator used in the paper's evaluation and
// writes them as CSV.
//
// Usage:
//
//	datagen -function 7 -attrs 32 -tuples 250000 -out F7-A32-D250K.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		function = flag.Int("function", 1, "classification function 1..10 (paper uses 1 and 7)")
		attrs    = flag.Int("attrs", 9, "total attribute count (>= 9; extras are noise)")
		tuples   = flag.Int("tuples", 10000, "number of tuples")
		seed     = flag.Int64("seed", 1, "generator seed")
		perturb  = flag.Float64("perturb", 0.05, "continuous-value perturbation fraction")
		noise    = flag.Float64("label-noise", 0, "label flip probability")
		classes  = flag.Int("classes", 0, "class count (default 2; F1 supports 3, F7-F10 support 2..26)")
		out      = flag.String("out", "", "output CSV path (default stdout)")
		stream   = flag.Bool("stream", false, "stream tuples straight to the output (constant memory; for D1M/D10M)")
	)
	flag.Parse()

	cfg := synth.Config{
		Function:     *function,
		Attrs:        *attrs,
		Tuples:       *tuples,
		Seed:         *seed,
		Perturbation: *perturb,
		LabelNoise:   *noise,
		Classes:      *classes,
	}
	if *stream {
		if err := streamOut(cfg, *out); err != nil {
			log.Fatal(err)
		}
		return
	}
	tbl, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := tbl.WriteCSVFile(*out); err != nil {
		log.Fatal(err)
	}
	hist := tbl.ClassHistogram()
	dist := ""
	for i, n := range hist {
		if i > 0 {
			dist += " "
		}
		dist += fmt.Sprintf("%s=%d", tbl.Schema().Classes[i], n)
	}
	fmt.Printf("%s: wrote %d tuples, %d attributes to %s (%s)\n",
		cfg.Name(), tbl.NumTuples(), tbl.Schema().NumAttrs(), *out, dist)
}

// streamOut generates the dataset tuple by tuple, writing each row as it is
// drawn. Memory use is constant in the tuple count, so D1M/D10M files can
// be produced on hosts that could never hold the table.
func streamOut(cfg synth.Config, out string) error {
	s, err := synth.NewStreamer(cfg)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if out != "" {
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw, err := dataset.NewCSVWriter(bw, s.Schema())
	if err != nil {
		return err
	}
	hist := make([]int, len(s.Schema().Classes))
	n := 0
	for {
		tu, ok := s.Next()
		if !ok {
			break
		}
		if err := cw.Write(tu); err != nil {
			return err
		}
		hist[tu.Class]++
		n++
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		dist := ""
		for i, c := range hist {
			if i > 0 {
				dist += " "
			}
			dist += fmt.Sprintf("%s=%d", s.Schema().Classes[i], c)
		}
		fmt.Printf("%s: streamed %d tuples, %d attributes to %s (%s)\n",
			cfg.Name(), n, s.Schema().NumAttrs(), out, dist)
	}
	return nil
}
