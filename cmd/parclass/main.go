// Command parclass trains a decision-tree classifier on a CSV dataset (or a
// synthetic one) with a chosen SMP scheme and reports the tree, timings and
// accuracy; it can also save trained models, reload them to score new data,
// and run k-fold cross-validation.
//
// Usage:
//
//	parclass -data train.csv -algorithm mwk -procs 4 -holdout 0.25 -rules
//	parclass -synthetic F7-A32-D100K -algorithm subtree -procs 8
//	parclass -data train.csv -save-model m.json
//	parclass -model m.json -predict new.csv
//	parclass -data train.csv -cv 10
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	parclass "repro"
	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parclass: ")
	var (
		data      = flag.String("data", "", "CSV dataset (header row; last column is the class)")
		synthetic = flag.String("synthetic", "", "synthetic dataset spec Fx-Ay-DzK (e.g. F7-A32-D100K)")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")
		algorithm = flag.String("algorithm", "serial", "serial | basic | fwk | mwk | subtree | recpar | hist")
		procs     = flag.Int("procs", 1, "worker processors for parallel schemes")
		windowK   = flag.Int("window", 4, "window size K for fwk/mwk")
		maxBins   = flag.Int("max-bins", 0, "histogram bins per continuous attribute for hist (0 = default 256)")
		storage   = flag.String("storage", "memory", "memory | disk (attribute-list backend)")
		tempdir   = flag.String("tempdir", "", "directory for disk attribute lists")
		probeKind = flag.String("probe", "bit", "bit | hash | relabel (tid probe design)")
		minSplit  = flag.Int("min-split", 2, "do not split nodes smaller than this")
		maxDepth  = flag.Int("max-depth", 0, "tree depth bound (0 = unlimited)")
		doPrune   = flag.Bool("prune", false, "apply MDL pruning after growth")
		holdout   = flag.Float64("holdout", 0, "fraction of rows held out for accuracy")
		showTree  = flag.Bool("tree", false, "print the tree")
		showRules = flag.Bool("rules", false, "print the rules")
		showSQL   = flag.Bool("sql", false, "print the SQL CASE expression")
		metrics   = flag.Bool("metrics", false, "print confusion matrix and per-class metrics")
		saveModel = flag.String("save-model", "", "write the trained model (JSON) here")
		modelPath = flag.String("model", "", "load a saved model instead of training")
		predict   = flag.String("predict", "", "classify this CSV with the model; predictions to stdout")
		cvFolds   = flag.Int("cv", 0, "run k-fold cross-validation instead of a single train")

		trees       = flag.Int("trees", 0, "train a bagged forest of this many trees (0/1 = single tree)")
		sampleFrac  = flag.Float64("sample-frac", 0, "bootstrap sample fraction per tree (0 = classic bootstrap)")
		featureFrac = flag.Float64("feature-frac", 0, "attribute subsample fraction per tree (0 = all attributes)")
		forestSeed  = flag.Int64("forest-seed", 0, "forest bootstrap/feature RNG seed")
	)
	flag.Parse()

	if *modelPath != "" {
		if err := runSavedModel(*modelPath, *predict, *data); err != nil {
			log.Fatal(err)
		}
		return
	}

	ds, err := loadDataset(*data, *synthetic, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opt := parclass.Options{
		Procs:    *procs,
		WindowK:  *windowK,
		TempDir:  *tempdir,
		MinSplit: *minSplit,
		MaxDepth: *maxDepth,
		Prune:    *doPrune,
	}
	switch strings.ToLower(*algorithm) {
	case "serial":
		opt.Algorithm = parclass.Serial
	case "basic":
		opt.Algorithm = parclass.Basic
	case "fwk":
		opt.Algorithm = parclass.FWK
	case "mwk":
		opt.Algorithm = parclass.MWK
	case "subtree":
		opt.Algorithm = parclass.Subtree
	case "recpar":
		opt.Algorithm = parclass.RecordParallel
	case "hist":
		opt.Algorithm = parclass.Hist
		opt.MaxBins = *maxBins
		// The -window default of 4 is an fwk/mwk knob; hist has no window
		// and Validate rejects a non-zero one.
		opt.WindowK = 0
	default:
		log.Fatalf("unknown algorithm %q", *algorithm)
	}
	switch strings.ToLower(*storage) {
	case "memory":
		opt.Storage = parclass.Memory
	case "disk":
		opt.Storage = parclass.Disk
	default:
		log.Fatalf("unknown storage %q", *storage)
	}
	switch strings.ToLower(*probeKind) {
	case "bit":
		opt.Probe = parclass.GlobalBitProbe
	case "hash":
		opt.Probe = parclass.LeafHashProbe
	case "relabel":
		opt.Probe = parclass.LeafRelabelProbe
	default:
		log.Fatalf("unknown probe %q", *probeKind)
	}

	if *cvFolds > 0 {
		res, err := parclass.CrossValidate(ds, *cvFolds, *seed, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-fold cross-validation (%v, procs=%d):\n", *cvFolds, opt.Algorithm, *procs)
		for i, a := range res.FoldAccuracy {
			fmt.Printf("  fold %d: %.4f\n", i+1, a)
		}
		fmt.Printf("mean accuracy %.4f ± %.4f\n", res.Mean, res.StdDev)
		return
	}

	train := ds
	var test *parclass.Dataset
	if *holdout > 0 {
		train, test = ds.SplitHoldout(*holdout)
	}

	var (
		model parclass.Predictor
		tm    parclass.Timings
	)
	if *trees > 1 || *sampleFrac != 0 || *featureFrac != 0 || *forestSeed != 0 {
		opt.Trees = *trees
		opt.SampleFrac = *sampleFrac
		opt.FeatureFrac = *featureFrac
		opt.ForestSeed = *forestSeed
		f, err := parclass.TrainForest(train, opt)
		if err != nil {
			log.Fatal(err)
		}
		model, tm = f, f.Timings()
	} else {
		m, err := parclass.Train(train, opt)
		if err != nil {
			log.Fatal(err)
		}
		model, tm = m, m.Timings()
	}

	st := model.Stats()
	fmt.Printf("trained on %d tuples, %d attributes with %v (procs=%d)\n",
		train.NumRows(), train.NumAttrs(), opt.Algorithm, *procs)
	if nt := model.NumTrees(); nt > 1 {
		fmt.Printf("forest: %d trees (sample-frac=%g feature-frac=%g seed=%d)\n",
			nt, *sampleFrac, *featureFrac, *forestSeed)
	}
	fmt.Printf("timings: setup=%v sort=%v build=%v total=%v\n",
		tm.Setup.Round(1000), tm.Sort.Round(1000), tm.Build.Round(1000), tm.Total().Round(1000))
	fmt.Printf("tree: %d nodes, %d leaves, %d levels, max %d leaves/level\n",
		st.Nodes, st.Leaves, st.Levels, st.MaxLeavesPerLevel)
	fmt.Printf("training accuracy: %.4f\n", model.Accuracy(train))
	if test != nil && test.NumRows() > 0 {
		fmt.Printf("holdout accuracy (%d tuples): %.4f\n", test.NumRows(), model.Accuracy(test))
	}
	// The single-tree extras: importance, rendering, pruning report, SQL.
	if m, ok := model.(*parclass.Model); ok {
		if *doPrune {
			fmt.Printf("pruning collapsed %d subtrees\n", m.PrunedSubtrees())
		}
		if imp := m.AttrImportance(); len(imp) > 0 {
			n := len(imp)
			if n > 5 {
				n = 5
			}
			fmt.Printf("top split attributes: %s\n", strings.Join(imp[:n], ", "))
		}
		if *showTree {
			fmt.Println("\n" + m.String())
		}
		if *showRules {
			fmt.Println()
			for _, r := range m.Rules() {
				fmt.Println(r)
			}
		}
		if *metrics {
			eva := train
			if test != nil && test.NumRows() > 0 {
				eva = test
			}
			fmt.Println("\n" + m.Evaluate(eva).Pretty)
		}
		if *showSQL {
			fmt.Println("\n" + m.SQL())
		}
	}
	if *saveModel != "" {
		if err := model.SaveModel(*saveModel); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}
	if *predict != "" {
		if err := scoreCSV(model, *predict); err != nil {
			log.Fatal(err)
		}
	}
}

// runSavedModel loads a model and optionally scores a CSV with it.
func runSavedModel(modelPath, predictPath, dataPath string) error {
	model, err := parclass.LoadModel(modelPath)
	if err != nil {
		return err
	}
	st := model.Stats()
	if nt := model.NumTrees(); nt > 1 {
		fmt.Printf("loaded forest: %d trees, %d nodes, %d leaves, %d levels\n",
			nt, st.Nodes, st.Leaves, st.Levels)
	} else {
		fmt.Printf("loaded model: %d nodes, %d leaves, %d levels\n", st.Nodes, st.Leaves, st.Levels)
	}
	if dataPath != "" {
		ds, err := parclass.LoadCSV(dataPath)
		if err != nil {
			return err
		}
		fmt.Printf("accuracy on %s (%d rows): %.4f\n", dataPath, ds.NumRows(), model.Accuracy(ds))
	}
	if predictPath != "" {
		return scoreCSV(model, predictPath)
	}
	return nil
}

// scoreCSV classifies every row of a labeled CSV and prints predictions
// plus accuracy against the CSV's own class column.
func scoreCSV(model parclass.Predictor, path string) error {
	ds, err := parclass.LoadCSV(path)
	if err != nil {
		return err
	}
	preds := model.PredictDataset(ds)
	for _, p := range preds {
		fmt.Println(p)
	}
	fmt.Printf("# %d rows; accuracy vs CSV labels: %.4f\n", ds.NumRows(), model.Accuracy(ds))
	return nil
}

func loadDataset(path, spec string, seed int64) (*parclass.Dataset, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("use only one of -data and -synthetic")
	case path != "":
		return parclass.LoadCSV(path)
	case spec != "":
		ds, err := bench.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		return parclass.Synthetic(parclass.SyntheticConfig{
			Function: ds.Function, Attrs: ds.Attrs, Tuples: ds.Tuples,
			Seed: seed, Perturbation: 0.05,
		})
	default:
		return nil, fmt.Errorf("need -data or -synthetic")
	}
}
