// Command benchtab regenerates the paper's evaluation: Table 1 (dataset
// characteristics and setup/sort times) and Figures 8–11 (build time and
// speedup of MWK and SUBTREE on the local-disk and main-memory
// configurations), plus the ablations the paper discusses in the text
// (BASIC vs FWK vs MWK, the window size K, and the probe designs).
//
// Parallel times come, by default, from the virtual-time SMP simulator fed
// with measured unit costs (see DESIGN.md §2 — this host may not have the
// paper's 4- and 8-way SMPs); pass -mode real to measure actual goroutine
// wall clock instead.
//
// Usage:
//
//	benchtab -exp all -tuples 250000
//	benchtab -exp fig10 -tuples 100000 -procs 8
//	benchtab -exp table1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	var (
		exp      = flag.String("exp", "all", "table1 | fig8 | fig9 | fig10 | fig11 | ablation-schemes | ablation-window | ablation-probe | all")
		tuples   = flag.Int("tuples", 100000, "tuples per dataset (the paper uses 250000)")
		maxProcs = flag.Int("procs", 0, "override max processor count (default: 4 disk, 8 memory)")
		maxDepth = flag.Int("max-depth", 0, "tree depth bound (0 = unlimited)")
		mode     = flag.String("mode", "sim", "sim (virtual-time replay) | real (goroutine wall clock)")
		traceDir = flag.String("trace-dir", "", "if set, save profiling traces as JSON here")
		parSetup = flag.Bool("parallel-setup", false, "model attribute-parallel setup/sort in total-time figures (the paper's follow-up)")
		csvDir   = flag.String("csv-dir", "", "if set, also write each figure's series as CSV here")
	)
	flag.Parse()

	var m bench.Mode
	switch *mode {
	case "sim":
		m = bench.Simulated
	case "real":
		m = bench.Real
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	r := &runner{tuples: *tuples, maxDepth: *maxDepth, mode: m,
		maxProcs: *maxProcs, traceDir: *traceDir, parSetup: *parSetup,
		csvDir: *csvDir}

	all := *exp == "all"
	ran := false
	for _, e := range []struct {
		name string
		fn   func() error
	}{
		{"table1", r.table1},
		{"fig8", func() error { return r.figure(8) }},
		{"fig9", func() error { return r.figure(9) }},
		{"fig10", func() error { return r.figure(10) }},
		{"fig11", func() error { return r.figure(11) }},
		{"ablation-schemes", r.ablationSchemes},
		{"ablation-window", r.ablationWindow},
		{"ablation-probe", r.ablationProbe},
	} {
		if all || *exp == e.name {
			ran = true
			start := time.Now()
			if err := e.fn(); err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
			fmt.Printf("\n[%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

type runner struct {
	tuples   int
	maxDepth int
	maxProcs int
	mode     bench.Mode
	traceDir string
	parSetup bool
	csvDir   string
}

// writeCSV saves a figure's series under csvDir when requested.
func (r *runner) writeCSV(name string, series []bench.Series) {
	if r.csvDir == "" {
		return
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		log.Printf("csv dir: %v", err)
		return
	}
	path := filepath.Join(r.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		log.Printf("csv: %v", err)
		return
	}
	defer f.Close()
	if err := bench.WriteSeriesCSV(f, series); err != nil {
		log.Printf("csv: %v", err)
	}
}

func (r *runner) sink() func(string, *trace.Trace) {
	if r.traceDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.traceDir, 0o755); err != nil {
		log.Printf("trace dir: %v", err)
		return nil
	}
	return func(name string, tr *trace.Trace) {
		path := filepath.Join(r.traceDir, name+".trace.json")
		if err := tr.WriteFile(path); err != nil {
			log.Printf("saving trace %s: %v", path, err)
		}
	}
}

func (r *runner) table1() error {
	rows, err := bench.RunTable1(bench.PaperSpecs(r.tuples), core.Memory, r.maxDepth)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: dataset characteristics, and sequential setup and sorting times")
	fmt.Println(strings.Repeat("-", 78))
	bench.FormatTable1(os.Stdout, rows)
	return nil
}

// figure reproduces one of the paper's four speedup figures.
func (r *runner) figure(n int) error {
	var (
		attrs   int
		storage core.Storage
		maxP    int
		title   string
	)
	switch n {
	case 8:
		attrs, storage, maxP = 32, core.Disk, 4
		title = "Figure 8. Local disk access: functions 1 and 7; 32 attributes"
	case 9:
		attrs, storage, maxP = 64, core.Disk, 4
		title = "Figure 9. Local disk access: functions 1 and 7; 64 attributes"
	case 10:
		attrs, storage, maxP = 32, core.Memory, 8
		title = "Figure 10. Main-memory access: functions 1 and 7; 32 attributes"
	case 11:
		attrs, storage, maxP = 64, core.Memory, 8
		title = "Figure 11. Main-memory access: functions 1 and 7; 64 attributes"
	default:
		return fmt.Errorf("no figure %d", n)
	}
	if r.maxProcs > 0 {
		maxP = r.maxProcs
	}
	procs := make([]int, maxP)
	for i := range procs {
		procs[i] = i + 1
	}
	series, err := bench.RunFigure(bench.FigureOpts{
		Specs: []bench.DataSpec{
			{Function: 1, Attrs: attrs, Tuples: r.tuples, Seed: 1},
			{Function: 7, Attrs: attrs, Tuples: r.tuples, Seed: 1},
		},
		Storage:       storage,
		Procs:         procs,
		Schemes:       []sim.Scheme{sim.MWK, sim.Subtree},
		MaxDepth:      r.maxDepth,
		Mode:          r.mode,
		TraceSink:     r.sink(),
		ParallelSetup: r.parSetup,
	})
	if err != nil {
		return err
	}
	title += fmt.Sprintf("; %d records (%s mode)", r.tuples, modeName(r.mode))
	bench.FormatFigure(os.Stdout, title, series)
	r.writeCSV(fmt.Sprintf("fig%d", n), series)
	if r.mode == bench.Real {
		if note := bench.GOMAXPROCSNote(maxP); note != "" {
			fmt.Println(note)
		}
	}
	return nil
}

// ablationSchemes compares BASIC, FWK, MWK, SUBTREE and the record-
// parallel baseline — the progression the paper
// describes in §3.2 and confirms experimentally ("MWK was indeed better
// than BASIC ... and performs as well or better than FWK").
func (r *runner) ablationSchemes() error {
	maxP := 4
	if r.maxProcs > 0 {
		maxP = r.maxProcs
	}
	procs := make([]int, maxP)
	for i := range procs {
		procs[i] = i + 1
	}
	series, err := bench.RunFigure(bench.FigureOpts{
		Specs:     []bench.DataSpec{{Function: 7, Attrs: 32, Tuples: r.tuples, Seed: 1}},
		Storage:   core.Memory,
		Procs:     procs,
		Schemes:   []sim.Scheme{sim.Basic, sim.FWK, sim.MWK, sim.Subtree, sim.SubtreeMWK, sim.RecPar},
		MaxDepth:  r.maxDepth,
		Mode:      r.mode,
		TraceSink: r.sink(),
	})
	if err != nil {
		return err
	}
	bench.FormatFigure(os.Stdout,
		fmt.Sprintf("Ablation A1: all schemes (incl. SUBTREE+MWK hybrid, §3.4), F7-A32, %d records", r.tuples), series)
	r.writeCSV("ablation-schemes", series)
	return nil
}

// ablationWindow sweeps the window size K for MWK; the paper found K=4 to
// work well in practice.
func (r *runner) ablationWindow() error {
	maxP := 4
	if r.maxProcs > 0 {
		maxP = r.maxProcs
	}
	spec := bench.DataSpec{Function: 7, Attrs: 32, Tuples: r.tuples, Seed: 1}
	tbl, err := spec.Generate()
	if err != nil {
		return err
	}
	tr := &trace.Trace{Dataset: spec.Name()}
	if _, _, err := core.Build(tbl, core.Config{
		Algorithm: core.Serial, MaxDepth: r.maxDepth, Trace: tr,
	}); err != nil {
		return err
	}
	fmt.Printf("Ablation A2: MWK window size K on %s, P=%d (simulated)\n", spec.Name(), maxP)
	fmt.Printf("  %4s %12s %14s %12s\n", "K", "build(s)", "speedup(build)", "efficiency")
	base, err := sim.Simulate(tr, sim.MWK, 1, 4, sim.DefaultParams())
	if err != nil {
		return err
	}
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		res, err := sim.Simulate(tr, sim.MWK, maxP, k, sim.DefaultParams())
		if err != nil {
			return err
		}
		fmt.Printf("  %4d %12.3f %14.2f %11.1f%%\n",
			k, res.BuildSeconds, base.BuildSeconds/res.BuildSeconds, 100*res.Efficiency())
	}
	return nil
}

// ablationProbe compares the three probe designs of §3.2.1 with real serial
// builds.
func (r *runner) ablationProbe() error {
	spec := bench.DataSpec{Function: 7, Attrs: 32, Tuples: r.tuples, Seed: 1}
	tbl, err := spec.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("Ablation B: probe structure on %s (real serial builds)\n", spec.Name())
	fmt.Printf("  %-14s %12s\n", "probe", "build(s)")
	for _, pk := range []probe.Kind{probe.GlobalBit, probe.LeafHash, probe.LeafRelabel} {
		best := -1.0
		for run := 0; run < 3; run++ {
			_, tm, err := core.Build(tbl, core.Config{
				Algorithm: core.Serial, MaxDepth: r.maxDepth, Probe: pk,
			})
			if err != nil {
				return err
			}
			if b := tm.Build.Seconds(); best < 0 || b < best {
				best = b
			}
		}
		fmt.Printf("  %-14s %12.3f\n", pk.String(), best)
	}
	return nil
}

func modeName(m bench.Mode) string {
	if m == bench.Real {
		return "real"
	}
	return "simulated"
}
